// Ecgrr reproduces the paper's cardiology application (§5.2): two 540-point
// electrocardiograms are broken with ε=10, the peaks table (the paper's
// Table 1) is derived from the representation alone, and the R-R interval
// query "find all ECGs with R-R intervals of length n ± ε" is answered
// through the inverted-file index of their Figure 10.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"seqrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ε=10 is the paper's ECG breaking tolerance; δ=1 separates the steep
	// R flanks from the near-flat baseline.
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		return err
	}

	// Two traces mirroring Figure 9: regular beats at RR≈145, and
	// slightly irregular beats around RR≈135.
	top, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{Samples: 540, RRInterval: 145, FirstR: 70})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	bottom, _, err := seqrep.GenerateECG(rng, seqrep.ECGOpts{Samples: 540, RRInterval: 135, RRJitter: 2.5, FirstR: 55})
	if err != nil {
		return err
	}
	if err := db.Ingest("ecg1", top); err != nil {
		return err
	}
	if err := db.Ingest("ecg2", bottom); err != nil {
		return err
	}

	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		series, err := db.Representation(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d samples -> %d segments, compression ~%.1fx (paper accounting)\n",
			id, rec.N, rec.NumSegments(), series.PaperCompressionRatio())

		table, err := seqrep.PeakTable(series, rec.Profile.Peaks)
		if err != nil {
			return err
		}
		fmt.Printf("\nPeaks information for %s (the paper's Table 1):\n%s\n", id, table)
		fmt.Printf("R-R interval sequence: %v\n\n", roundAll(rec.Profile.Intervals))
	}

	// The Figure 10 query: which ECG has an R-R interval of 135 ± 2?
	for _, q := range []struct{ n, eps float64 }{{135, 2}, {145, 1}, {200, 5}} {
		matches, err := db.IntervalQuery(q.n, q.eps)
		if err != nil {
			return err
		}
		fmt.Printf("RR interval %g±%g: ", q.n, q.eps)
		if len(matches) == 0 {
			fmt.Println("no ECGs")
			continue
		}
		for _, m := range matches {
			fmt.Printf("%s (intervals %v) ", m.ID, roundAll(m.Intervals))
		}
		fmt.Println()
	}
	return nil
}

func roundAll(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x + 0.5)
	}
	return out
}
