// Stocks reproduces the stock-market motivation of the paper's
// introduction: "in a stock market database we look at rises and drops of
// stock values". Price walks are represented as function sequences; rally
// and crash patterns are slope-sign queries over the representation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"seqrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := seqrep.New(seqrep.Config{
		Epsilon: 4,   // dollars of tolerated deviation per segment
		Delta:   0.2, // dollars/day slope considered "flat"
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(21))
	specs := []struct {
		id         string
		drift, vol float64
	}{
		{"steady-growth", 0.8, 0.8},
		{"volatile", 0.0, 4.0},
		{"decline", -0.7, 1.0},
		{"choppy", 0.1, 2.5},
	}
	for _, sp := range specs {
		s, err := seqrep.GenerateStock(rng, 500, 100, sp.drift, sp.vol)
		if err != nil {
			return err
		}
		if err := db.Ingest(sp.id, s); err != nil {
			return err
		}
	}

	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		fmt.Printf("%-14s %3d segments, symbols %s\n", id, rec.NumSegments(), abbreviate(rec.Profile.Symbols, 40))
	}
	fmt.Println()

	queries := []struct {
		name, pattern string
	}{
		{"sustained rally (3+ rising segments in a row)", "U{3,}"},
		{"crash then recovery", "D+U+"},
		{"double top (two peaks)", seqrep.PeakUnitPattern + "F*" + seqrep.PeakUnitPattern},
	}
	for _, q := range queries {
		hits, err := db.SearchPattern(q.pattern)
		if err != nil {
			return err
		}
		fmt.Printf("%s — pattern %q:\n", q.name, q.pattern)
		if len(hits) == 0 {
			fmt.Println("  no occurrences")
			continue
		}
		count := map[string]int{}
		first := map[string][2]float64{}
		for _, h := range hits {
			if count[h.ID] == 0 {
				first[h.ID] = [2]float64{h.TimeLo, h.TimeHi}
			}
			count[h.ID]++
		}
		for _, id := range db.IDs() {
			if count[id] == 0 {
				continue
			}
			span := first[id]
			fmt.Printf("  %-14s %d occurrence(s), first in days [%.0f, %.0f]\n", id, count[id], span[0], span[1])
		}
	}
	return nil
}

func abbreviate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
