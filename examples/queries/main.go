// Queries demonstrates the textual query language (the paper's §7 future
// work): one statement per query type, executed against a small clinical
// database.
package main

import (
	"fmt"
	"log"

	"seqrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive()})
	if err != nil {
		return err
	}

	two, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	shiftedPeaks, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97, FirstPeak: 10, SecondPeak: 18})
	if err != nil {
		return err
	}
	three, err := seqrep.GenerateThreePeakFever(97)
	if err != nil {
		return err
	}
	for id, s := range map[string]seqrep.Sequence{
		"ward-a": two, "ward-b": shiftedPeaks, "ward-c": three,
	} {
		if err := db.Ingest(id, s); err != nil {
			return err
		}
	}

	statements := []string{
		`MATCH PEAKS 2`,
		`MATCH PEAKS 2 TOLERANCE 1`,
		`MATCH PATTERN "[FD]*(U+F*D[FD]*){3}(U+F*)?"`,
		`FIND PATTERN "U+F*D"`,
		`MATCH INTERVAL 8 +- 0.5`,
		`MATCH VALUE LIKE ward-a EPS 0.5`,
		`MATCH SHAPE LIKE ward-a HEIGHT 0.25 SPACING 0.2`,
	}
	for _, stmt := range statements {
		res, err := seqrep.ExecQuery(db, stmt)
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		fmt.Printf("%-50s -> [%s] %v\n", stmt, res.Kind, res.IDs)
	}
	return nil
}
