// Seismic reproduces the seismology motivation of the paper's introduction:
// "in a seismic database we may look for sudden vigorous seismic activity".
// Raw seismograms live in a deliberately slow archive (the paper's remote
// tape store); the compact representation is searched locally with a
// slope-sign pattern, and only matching raw windows would ever be fetched.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"seqrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A slow archive: every raw read costs 50ms here, standing in for the
	// paper's "several days" seismic tape retrieval.
	archive := seqrep.NewMemArchive()
	archive.ReadLatency = 50 * time.Millisecond

	db, err := seqrep.New(seqrep.Config{
		Epsilon: 3, // burst amplitudes dwarf the noise floor
		Delta:   1,
		Archive: archive,
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(11))
	groundTruth := map[string][]int{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("station-%d", i+1)
		events := 1 + i%3
		s, starts, err := seqrep.GenerateSeismic(rng, seqrep.SeismicOpts{
			Samples: 2400, Events: events, MinSeparation: 500,
		})
		if err != nil {
			return err
		}
		if err := db.Ingest(id, s); err != nil {
			return err
		}
		groundTruth[id] = starts
	}

	// "Sudden vigorous activity": a steep rise immediately followed by
	// steep alternation — at least two consecutive peak units with no flat
	// running between them.
	const burst = "(U+D+){2,}"
	start := time.Now()
	hits, err := db.SearchPattern(burst)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("searched %d stations in %v without touching the archive\n\n", db.Len(), elapsed)
	perStation := map[string][][2]float64{}
	for _, h := range hits {
		perStation[h.ID] = append(perStation[h.ID], [2]float64{h.TimeLo, h.TimeHi})
	}
	for _, id := range db.IDs() {
		fmt.Printf("%s: ground-truth bursts at %v\n", id, groundTruth[id])
		for _, span := range perStation[id] {
			fmt.Printf("  detected activity in samples [%.0f, %.0f]\n", span[0], span[1])
		}
		if len(perStation[id]) == 0 {
			fmt.Println("  no vigorous activity")
		}
	}

	// Fetch raw data only for the first hit — the single slow operation.
	if len(hits) > 0 {
		start = time.Now()
		raw, err := db.Raw(hits[0].ID)
		if err != nil {
			return err
		}
		fmt.Printf("\nfetched raw %s (%d samples) from the slow archive in %v\n",
			hits[0].ID, len(raw), time.Since(start))
	}
	return nil
}
