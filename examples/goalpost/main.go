// Goalpost walks through the paper's central example (§2, §4.4): the
// goal-post fever query over two-peaked temperature curves and their
// feature-preserving transformations (the paper's Figure 5 family).
//
// It shows the failure of value-based ±ε matching on transformed
// sequences, and the success of the pattern and shape queries that operate
// on the function representation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"seqrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive()})
	if err != nil {
		return err
	}

	// The exemplar: a 24-hour, two-peak temperature log (Figure 3).
	exemplar, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}

	// The Figure 5 family: feature-preserving transformations of it.
	rng := rand.New(rand.NewSource(1996))
	family := map[string]seqrep.Sequence{
		"exemplar":        exemplar,
		"time-shift":      mustFever(seqrep.FeverOpts{Samples: 97, FirstPeak: 11, SecondPeak: 19}),
		"contraction":     mustFever(seqrep.FeverOpts{Samples: 97, FirstPeak: 10, SecondPeak: 14, PeakWidth: 1.1}),
		"dilation":        mustFever(seqrep.FeverOpts{Samples: 97, FirstPeak: 5, SecondPeak: 19, PeakWidth: 2.6}),
		"amplitude-shift": exemplar.ShiftValue(2.5),
		"amplitude-scale": exemplar.ScaleAbout(97, 1.5),
		"bounded-noise":   exemplar.AddNoise(rng, 0.15),
	}
	outsiders := map[string]seqrep.Sequence{
		"three-peaks": mustThree(97),
	}
	for id, s := range family {
		if err := db.Ingest(id, s); err != nil {
			return err
		}
	}
	for id, s := range outsiders {
		if err := db.Ingest(id, s); err != nil {
			return err
		}
	}

	valueMatches, err := db.ValueQuery(exemplar, 0.8)
	if err != nil {
		return err
	}
	patternIDs, err := db.MatchPattern(seqrep.TwoPeakPattern())
	if err != nil {
		return err
	}
	shapeMatches, err := db.ShapeQuery(exemplar, seqrep.ShapeTolerance{Height: 0.25, Spacing: 0.3})
	if err != nil {
		return err
	}

	inValue := map[string]bool{}
	for _, m := range valueMatches {
		inValue[m.ID] = true
	}
	inPattern := map[string]bool{}
	for _, id := range patternIDs {
		inPattern[id] = true
	}
	inShape := map[string]seqrep.Match{}
	for _, m := range shapeMatches {
		inShape[m.ID] = m
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sequence\tvalue ±0.8\tpattern (2 peaks)\tshape query\tspacing dev")
	for _, id := range db.IDs() {
		shapeCell := "-"
		devCell := ""
		if m, ok := inShape[id]; ok {
			if m.Exact {
				shapeCell = "exact"
			} else {
				shapeCell = "approx"
			}
			devCell = fmt.Sprintf("%.3f", m.Deviations["spacing"])
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%s\t%s\n", id, yes(inValue[id]), yes(inPattern[id]), shapeCell, devCell)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("\nThe value-based query (the prior art of the paper's Figure 1) finds only")
	fmt.Println("pointwise-close sequences; the pattern and shape queries recognize the whole")
	fmt.Println("transformed family while rejecting the three-peak outsider.")
	return nil
}

func yes(b bool) string {
	if b {
		return "match"
	}
	return "-"
}

func mustFever(opts seqrep.FeverOpts) seqrep.Sequence {
	s, err := seqrep.GenerateFever(opts)
	if err != nil {
		panic(err)
	}
	return s
}

func mustThree(samples int) seqrep.Sequence {
	s, err := seqrep.GenerateThreePeakFever(samples)
	if err != nil {
		panic(err)
	}
	return s
}
