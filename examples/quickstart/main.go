// Quickstart: ingest two temperature curves and ask for the one with
// exactly two peaks — the paper's goal-post fever query in a dozen lines.
package main

import (
	"fmt"
	"log"

	"seqrep"
)

func main() {
	db, err := seqrep.New(seqrep.Config{}) // paper defaults: ε=0.5, δ=0.25
	if err != nil {
		log.Fatal(err)
	}

	twoPeaks, err := seqrep.GenerateFever(seqrep.FeverOpts{})
	if err != nil {
		log.Fatal(err)
	}
	threePeaks, err := seqrep.GenerateThreePeakFever(97)
	if err != nil {
		log.Fatal(err)
	}

	if err := db.Ingest("patient-A", twoPeaks); err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("patient-B", threePeaks); err != nil {
		log.Fatal(err)
	}

	// Each ingested sequence is stored as a handful of line segments, not
	// hundreds of samples.
	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		fmt.Printf("%s: %d samples -> %d function segments (slope symbols %q)\n",
			id, rec.N, rec.NumSegments(), rec.Profile.Symbols)
	}

	// Goal-post fever: exactly two temperature peaks in 24 hours.
	ids, err := db.MatchPattern(seqrep.TwoPeakPattern())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goal-post fever patients: %v\n", ids)
}
