// Melody reproduces the music motivation of the paper's introduction: "in
// a music database we look for a melody regardless of key and tempo".
//
// Melodies are stored as piecewise-constant pitch curves. Their slope-sign
// symbol strings are exactly the melodic contour (the Parsons code), which
// transposition (amplitude shift) and tempo change (dilation) cannot
// disturb — so a contour query finds every rendition of the tune.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"seqrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// ε=0.3 (under half a semitone) keeps note plateaus unbroken while
	// forcing every pitch transition into its own segment; δ=0.1 stays
	// below the slope of even a 1-semitone glide stretched by tempo.
	db, err := seqrep.New(seqrep.Config{Epsilon: 0.3, Delta: 0.1})
	if err != nil {
		return err
	}

	// "Ode to Joy" opening, as semitone steps: E E F G | G F E D | C C D E.
	theme := []int{0, 1, 2, 0, -2, -1, -2, -2, 0, 2, 2}
	base, err := seqrep.GenerateMelody(theme, seqrep.MelodyOpts{})
	if err != nil {
		return err
	}
	// A faster performance is a new rendition at fewer samples per beat
	// (decimating recorded audio would discard the glides themselves).
	fast, err := seqrep.GenerateMelody(theme, seqrep.MelodyOpts{SamplesPerBeat: 4})
	if err != nil {
		return err
	}
	slow, err := seqrep.ChangeMelodyTempo(seqrep.TransposeMelody(base, -12), 1.5)
	if err != nil {
		return err
	}
	renditions := map[string]seqrep.Sequence{
		"original-in-C":       base,
		"up-a-fifth":          seqrep.TransposeMelody(base, 7),
		"down-an-octave-slow": slow,
		"fast":                fast,
	}
	for id, s := range renditions {
		if err := db.Ingest(id, s); err != nil {
			return err
		}
	}
	// Decoys: random melodies.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4; i++ {
		iv, err := seqrep.GenerateRandomMelody(rng, 12)
		if err != nil {
			return err
		}
		s, err := seqrep.GenerateMelody(iv, seqrep.MelodyOpts{})
		if err != nil {
			return err
		}
		if err := db.Ingest(fmt.Sprintf("decoy-%d", i+1), s); err != nil {
			return err
		}
	}

	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		fmt.Printf("%-20s contour %s\n", id, rec.Profile.Symbols)
	}

	// Query by example ("query by humming"): take the original's contour —
	// its symbol string with flats dropped — and match any symbol string
	// with the same up/down skeleton.
	origRec, _ := db.Record("original-in-C")
	skeleton := stripFlats(origRec.Profile.Symbols)
	pat := contourPattern(skeleton)
	fmt.Printf("\ncontour skeleton %s, key- and tempo-invariant query %s\n", skeleton, pat)
	ids, err := db.MatchPattern(pat)
	if err != nil {
		return err
	}
	fmt.Printf("matched: %v\n", ids)
	fmt.Println("\nEvery rendition matches — transposition shifts pitch and tempo stretches")
	fmt.Println("time, but neither changes the contour the representation stores.")
	return nil
}

// stripFlats reduces a symbol string to its up/down skeleton: one symbol
// per pitch transition (flats are the note plateaus between them).
func stripFlats(symbols string) string {
	var out []byte
	for i := 0; i < len(symbols); i++ {
		if c := symbols[i]; c != 'F' {
			out = append(out, c)
		}
	}
	return string(out)
}

// contourPattern builds a full-match pattern accepting any symbol string
// with the given up/down skeleton, however many flats or repeated-slope
// segments realize it.
func contourPattern(skeleton string) string {
	pat := "F*"
	for i := 0; i < len(skeleton); i++ {
		pat += string(skeleton[i]) + "+F*"
	}
	return pat
}
