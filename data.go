package seqrep

import (
	"math/rand"

	"seqrep/internal/multires"
	"seqrep/internal/synth"
)

// Workload generators, re-exported so applications and examples can
// reproduce the paper's evaluation data through the public API.

// FeverOpts parameterizes a goal-post fever temperature curve.
type FeverOpts = synth.FeverOpts

// ECGOpts parameterizes the synthetic electrocardiogram generator.
type ECGOpts = synth.ECGOpts

// SeismicOpts parameterizes the synthetic seismogram generator.
type SeismicOpts = synth.SeismicOpts

// GenerateFever produces a two-peaked 24-hour temperature curve (the
// paper's Figure 3 shape).
func GenerateFever(opts FeverOpts) (Sequence, error) { return synth.Fever(opts) }

// GenerateThreePeakFever produces a fever-like curve with three peaks,
// which the goal-post query must reject.
func GenerateThreePeakFever(samples int) (Sequence, error) {
	return synth.ThreePeakFever(samples)
}

// GenerateECG produces a synthetic electrocardiogram and the ground-truth
// R-peak positions. rng may be nil when no jitter or noise is requested.
func GenerateECG(rng *rand.Rand, opts ECGOpts) (Sequence, []float64, error) {
	return synth.ECG(rng, opts)
}

// GenerateSeismic produces a synthetic seismogram with transient bursts
// and returns the burst start indexes.
func GenerateSeismic(rng *rand.Rand, opts SeismicOpts) (Sequence, []int, error) {
	return synth.Seismic(rng, opts)
}

// GenerateStock produces a random-walk price series with drift.
func GenerateStock(rng *rand.Rand, n int, start, drift, volatility float64) (Sequence, error) {
	return synth.Stock(rng, n, start, drift, volatility)
}

// MelodyOpts parameterizes melody rendering (the music workload of the
// paper's introduction).
type MelodyOpts = synth.MelodyOpts

// GenerateMelody renders a note sequence (semitone steps between
// consecutive notes) as a piecewise-constant pitch curve.
func GenerateMelody(intervals []int, opts MelodyOpts) (Sequence, error) {
	return synth.Melody(intervals, opts)
}

// GenerateRandomMelody draws a random interval sequence for an n-note
// melody.
func GenerateRandomMelody(rng *rand.Rand, n int) ([]int, error) {
	return synth.RandomMelody(rng, n)
}

// TransposeMelody shifts a melody by semitones (key change).
func TransposeMelody(s Sequence, semitones float64) Sequence {
	return synth.Transpose(s, semitones)
}

// ChangeMelodyTempo stretches (factor > 1) or compresses a melody in time.
func ChangeMelodyTempo(s Sequence, factor float64) (Sequence, error) {
	return synth.ChangeTempo(s, factor)
}

// Pyramid is a multi-resolution ladder of coarsened sequence versions —
// the §7 "multiresolution analysis" direction: extract features from the
// compressed data instead of the original.
type Pyramid = multires.Pyramid

// MultiresResult reports a coarse-to-fine peak search on a Pyramid.
type MultiresResult = multires.Result

// BuildPyramid coarsens s by pairwise averaging up to maxLevels times.
func BuildPyramid(s Sequence, maxLevels int) (*Pyramid, error) {
	return multires.Build(s, maxLevels)
}
