package seqrep_test

import (
	"math/rand"
	"strings"
	"testing"

	"seqrep"
)

func TestFacadeQueryLanguage(t *testing.T) {
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("f", fever); err != nil {
		t.Fatal(err)
	}
	res, err := seqrep.ExecQuery(db, `MATCH PEAKS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "peaks" || len(res.IDs) != 1 || res.IDs[0] != "f" {
		t.Errorf("ExecQuery result: %+v", res)
	}
	if _, err := seqrep.ExecQuery(db, `garbage`); err == nil {
		t.Error("bad statement accepted")
	}
}

func TestFacadePyramid(t *testing.T) {
	ecg, rPeaks, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := seqrep.BuildPyramid(ecg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Levels() < 3 {
		t.Errorf("Levels = %d", p.Levels())
	}
	res, err := p.FindPeaks(10, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Peaks) != len(rPeaks) {
		t.Errorf("coarse-to-fine found %d peaks, want %d", len(res.Peaks), len(rPeaks))
	}
}

func TestFacadeMelody(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	iv, err := seqrep.GenerateRandomMelody(rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := seqrep.GenerateMelody(iv, seqrep.MelodyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	up := seqrep.TransposeMelody(m, 5)
	if up[0].V != m[0].V+5 {
		t.Error("TransposeMelody")
	}
	slow, err := seqrep.ChangeMelodyTempo(m, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) <= len(m) {
		t.Errorf("tempo change: %d -> %d samples", len(m), len(slow))
	}
}

func TestFacadePatternsAndArchive(t *testing.T) {
	if !strings.Contains(seqrep.ExactlyPeaksPattern(3), "{") &&
		seqrep.ExactlyPeaksPattern(3) == seqrep.ExactlyPeaksPattern(2) {
		t.Error("ExactlyPeaksPattern ignores k")
	}
	if seqrep.AtLeastPeaksPattern(2) == "" || seqrep.TwoPeakPattern() == "" {
		t.Error("empty canned patterns")
	}
	if seqrep.PeakUnitPattern != "U+F*D" {
		t.Errorf("PeakUnitPattern = %q", seqrep.PeakUnitPattern)
	}

	arch, err := seqrep.NewFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db, err := seqrep.New(seqrep.Config{Archive: arch, Epsilon: 10, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("e", ecg); err != nil {
		t.Fatal(err)
	}
	raw, err := db.Raw("e")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(ecg) {
		t.Errorf("file-archived raw: %d samples", len(raw))
	}
}

func TestFacadePeakTableAndPreprocess(t *testing.T) {
	chain := seqrep.StandardPreprocess(3, 3)
	if chain.Len() != 3 {
		t.Errorf("standard chain stages = %d", chain.Len())
	}
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("e", ecg); err != nil {
		t.Fatal(err)
	}
	rec, _ := db.Record("e")
	series, err := db.Representation("e")
	if err != nil {
		t.Fatal(err)
	}
	table, err := seqrep.PeakTable(series, rec.Profile.Peaks)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "Rising Function") {
		t.Error("PeakTable header missing")
	}
}

func TestFacadeSeismicStockGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, starts, err := seqrep.GenerateSeismic(rng, seqrep.SeismicOpts{Samples: 900, Events: 1})
	if err != nil || len(starts) != 1 || len(s) != 900 {
		t.Errorf("GenerateSeismic: %v %v", starts, err)
	}
	st, err := seqrep.GenerateStock(rng, 100, 50, 0, 1)
	if err != nil || len(st) != 100 {
		t.Errorf("GenerateStock: %v", err)
	}
	three, err := seqrep.GenerateThreePeakFever(49)
	if err != nil || len(three) != 49 {
		t.Errorf("GenerateThreePeakFever: %v", err)
	}
}
