package seqrep_test

import (
	"fmt"
	"log"

	"seqrep"
)

// The goal-post fever query end to end: ingest a two-peaked temperature
// curve and ask for patients whose chart peaks exactly twice.
func Example() {
	db, err := seqrep.New(seqrep.Config{}) // paper defaults: ε=0.5, δ=0.25
	if err != nil {
		log.Fatal(err)
	}
	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("patient-7", fever); err != nil {
		log.Fatal(err)
	}
	ids, err := db.MatchPattern(seqrep.TwoPeakPattern())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [patient-7]
}

// Breaking a sequence yields a handful of line segments in place of the
// raw samples; the compression is what makes local storage of large
// archives feasible.
func ExampleDB_Record() {
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		log.Fatal(err)
	}
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("ecg", ecg); err != nil {
		log.Fatal(err)
	}
	rec, _ := db.Record("ecg")
	fmt.Printf("%d samples -> %d segments, %d peaks\n",
		rec.N, rec.NumSegments(), len(rec.Profile.Peaks))
	// Output: 540 samples -> 16 segments, 4 peaks
}

// The inverted-file interval query of the paper's Figure 10.
func ExampleDB_IntervalQuery() {
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		log.Fatal(err)
	}
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{RRInterval: 130})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("ecg", ecg); err != nil {
		log.Fatal(err)
	}
	matches, err := db.IntervalQuery(130, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Println(m.ID, m.Intervals)
	}
	// Output: ecg [130 130 130]
}

// The textual query language covers every query type.
func ExampleExecQuery() {
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Ingest("f", fever); err != nil {
		log.Fatal(err)
	}
	res, err := seqrep.ExecQuery(db, `MATCH PEAKS 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Kind, res.IDs)
	// Output: peaks [f]
}

// A generalized approximate query: the exemplar stands for its whole
// transformation class; tolerances apply per feature dimension.
func ExampleDB_ShapeQuery() {
	db, err := seqrep.New(seqrep.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{})
	if err != nil {
		log.Fatal(err)
	}
	// Store a transposed, rescaled rendition only.
	if err := db.Ingest("variant", fever.ShiftValue(3).ScaleAbout(100, 1.2)); err != nil {
		log.Fatal(err)
	}
	matches, err := db.ShapeQuery(fever, seqrep.ShapeTolerance{Height: 0.25, Spacing: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Println(m.ID, m.Exact)
	}
	// Output: variant true
}
