package seqrep_test

// One benchmark per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Run with: go test -bench=. -benchmem
//
// The benchmarks measure the operations behind each experiment — breaking,
// representation, feature extraction, each query type, and the baselines —
// on the same workloads seqbench prints.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"seqrep"
	"seqrep/internal/dft"
)

// corpus builds a database of n two-peak fever curves (with varied peak
// positions) plus n/4 three-peak controls, archived raws included.
func corpus(b *testing.B, n int) (*seqrep.DB, seqrep.Sequence) {
	b.Helper()
	db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive()})
	if err != nil {
		b.Fatal(err)
	}
	exemplar, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		first := 5 + float64(i%8)
		second := first + 5 + float64(i%5)
		s, err := seqrep.GenerateFever(seqrep.FeverOpts{
			Samples: 97, FirstPeak: first, SecondPeak: second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Ingest(fmt.Sprintf("two-%03d", i), s); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n/4; i++ {
		s, err := seqrep.GenerateThreePeakFever(97)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Ingest(fmt.Sprintf("three-%03d", i), s.ShiftValue(float64(i)*0.01)); err != nil {
			b.Fatal(err)
		}
	}
	return db, exemplar
}

// ecgDB builds a database of n synthetic ECGs with varied heart rates.
func ecgDB(b *testing.B, n int) *seqrep.DB {
	b.Helper()
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		rr := 110 + float64(i%10)*8
		s, _, err := seqrep.GenerateECG(rng, seqrep.ECGOpts{RRInterval: rr, RRJitter: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Ingest(fmt.Sprintf("ecg-%03d", i), s); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkFig1ValueQuery measures the prior-art ±ε query (Figure 1
// semantics) over 64 stored raw sequences.
func BenchmarkFig1ValueQuery(b *testing.B) {
	db, exemplar := corpus(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ValueQuery(exemplar, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5PatternVsValue measures the pattern query that recognizes
// the transformed family value matching misses (Figures 2-5).
func BenchmarkFig5PatternVsValue(b *testing.B) {
	db, _ := corpus(b, 64)
	pat := seqrep.TwoPeakPattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.MatchPattern(pat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Break measures breaking + regression representation of one
// fever curve (Figure 6).
func BenchmarkFig6Break(b *testing.B) {
	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		b.Fatal(err)
	}
	breaker := seqrep.NewInterpolationBreaker(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := breaker.Break(fever); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoalpostQuery measures the full §4.4 goal-post query (two-peak
// regular expression over slope symbols) on an 80-sequence database.
func BenchmarkGoalpostQuery(b *testing.B) {
	db, _ := corpus(b, 64)
	pat := seqrep.ExactlyPeaksPattern(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := db.MatchPattern(pat)
		if err != nil {
			b.Fatal(err)
		}
		if len(ids) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkGoalpostShapeQuery measures the generalized approximate query
// with per-dimension tolerances (§2.2).
func BenchmarkGoalpostShapeQuery(b *testing.B) {
	db, exemplar := corpus(b, 64)
	tol := seqrep.ShapeTolerance{Peaks: 0, Height: 0.3, Spacing: 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ShapeQuery(exemplar, tol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ECGBreak measures breaking one 540-point ECG with ε=10
// (Figure 9).
func BenchmarkFig9ECGBreak(b *testing.B) {
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		b.Fatal(err)
	}
	breaker := seqrep.NewInterpolationBreaker(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := breaker.Break(ecg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1PeakExtraction measures deriving the peaks table from an
// ingested ECG's representation (Table 1).
func BenchmarkTable1PeakExtraction(b *testing.B) {
	db := ecgDB(b, 1)
	rec, ok := db.Record("ecg-000")
	if !ok {
		b.Fatal("record missing")
	}
	series, err := db.Representation("ecg-000")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seqrep.PeakTable(series, rec.Profile.Peaks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10RRQuery measures the inverted-index interval query over
// 64 ECGs (Figure 10).
func BenchmarkFig10RRQuery(b *testing.B) {
	db := ecgDB(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.IntervalQuery(134, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompression measures building the compact representation of a
// 540-point ECG (the §5.2 space-reduction pipeline).
func BenchmarkCompression(b *testing.B) {
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		b.Fatal(err)
	}
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("e%d", i)
		if err := db.Ingest(id, ecg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBreakers compares every breaking algorithm on the same ECG
// (§5.1): the interpolation breaker's near-linear time against the O(n²)
// dynamic program.
func BenchmarkBreakers(b *testing.B) {
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		b.Fatal(err)
	}
	for _, br := range []seqrep.Breaker{
		seqrep.NewInterpolationBreaker(10),
		seqrep.NewRegressionBreaker(10),
		seqrep.NewBezierBreaker(10),
		seqrep.NewDPBreaker(300, 1),
		seqrep.NewOnlineBreaker(10),
	} {
		b.Run(br.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := br.Break(ecg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBreakerScaling shows the interpolation breaker's growth with
// input length (the paper claims O(#peaks · n)).
func BenchmarkBreakerScaling(b *testing.B) {
	for _, n := range []int{540, 2160, 8640} {
		ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{Samples: n})
		if err != nil {
			b.Fatal(err)
		}
		br := seqrep.NewInterpolationBreaker(10)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := br.Break(ecg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngest measures the full pipeline: break, represent, extract,
// index.
func BenchmarkIngest(b *testing.B) {
	ecg, _, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		b.Fatal(err)
	}
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Ingest(fmt.Sprintf("ecg-%d", i), ecg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersistence measures snapshot save+load of a 16-record
// database.
func BenchmarkPersistence(b *testing.B) {
	db := ecgDB(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := db.SaveTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := seqrep.Load(&buf, seqrep.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- query planner: indexed vs scan ----

// queryBench holds the once-built 10k-sequence pair of databases: one
// with the DFT feature index (the planner's index route) and one with the
// index disabled (forcing the scan route). Both ingest the identical
// workload and share nothing, so the two benchmarks measure only the
// plans.
var queryBench struct {
	once     sync.Once
	indexed  *seqrep.DB
	scan     *seqrep.DB
	exemplar seqrep.Sequence
	err      error
}

const queryBenchN = 10000

func queryBenchDBs(b *testing.B) (indexed, scan *seqrep.DB, exemplar seqrep.Sequence) {
	b.Helper()
	queryBench.once.Do(func() {
		items := make([]seqrep.BatchItem, 0, queryBenchN)
		for i := 0; i < queryBenchN; i++ {
			first := 5 + float64(i%8)
			second := first + 5 + float64(i%5)
			s, err := seqrep.GenerateFever(seqrep.FeverOpts{
				Samples: 97, FirstPeak: first, SecondPeak: second,
			})
			if err != nil {
				queryBench.err = err
				return
			}
			items = append(items, seqrep.BatchItem{
				ID:  fmt.Sprintf("fever-%05d", i),
				Seq: s.ShiftValue(float64(i%100) * 0.05),
			})
		}
		for _, setup := range []struct {
			dst    **seqrep.DB
			coeffs int
		}{
			{&queryBench.indexed, 0}, // 0 = default (index on)
			{&queryBench.scan, -1},   // index disabled
		} {
			db, err := seqrep.New(seqrep.Config{
				Archive:     seqrep.NewMemArchive(),
				IndexCoeffs: setup.coeffs,
			})
			if err != nil {
				queryBench.err = err
				return
			}
			if _, err := db.IngestBatch(items); err != nil {
				queryBench.err = err
				return
			}
			*setup.dst = db
		}
		queryBench.exemplar, queryBench.err = seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	})
	if queryBench.err != nil {
		b.Fatal(queryBench.err)
	}
	return queryBench.indexed, queryBench.scan, queryBench.exemplar
}

// benchQueryReport is the machine-readable record BenchmarkDistanceQuery10k
// writes to BENCH_query.json, tracking the planner's perf trajectory.
type benchQueryReport struct {
	Benchmark     string  `json:"benchmark"`
	Sequences     int     `json:"sequences"`
	Metric        string  `json:"metric"`
	Eps           float64 `json:"eps"`
	IndexedNsOp   float64 `json:"indexed_ns_per_op"`
	ScanNsOp      float64 `json:"scan_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	Examined      int     `json:"examined"`
	Candidates    int     `json:"candidates"`
	Pruned        int     `json:"pruned"`
	PrunedPerExam float64 `json:"pruned_ratio"`
	Matches       int     `json:"matches"`
}

// BenchmarkDistanceQuery10k compares the planner's two DistanceQuery
// plans (L2, 10k stored sequences): the DFT feature index against the
// brute-force scan, reporting candidates-examined/pruned ratios and
// emitting BENCH_query.json. The index plan must beat the scan by ≥3x.
func BenchmarkDistanceQuery10k(b *testing.B) {
	indexed, scan, exemplar := queryBenchDBs(b)
	// eps admits the 0.15-shifted members of the exemplar's two-peak
	// family (L2 ≈ 1.48), so the index plan does real verification work.
	const eps = 2.0
	metric := seqrep.EuclideanMetric()
	report := benchQueryReport{
		Benchmark: "DistanceQuery10k",
		Sequences: queryBenchN,
		Metric:    metric.Name(),
		Eps:       eps,
	}
	b.Run("indexed", func(b *testing.B) {
		var stats seqrep.QueryStats
		for i := 0; i < b.N; i++ {
			var err error
			if _, stats, err = indexed.DistanceQueryStats(exemplar, metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		if stats.Plan != "index" {
			b.Fatalf("plan = %q, want index", stats.Plan)
		}
		b.ReportMetric(float64(stats.Candidates), "candidates/op")
		b.ReportMetric(float64(stats.Pruned), "pruned/op")
		b.ReportMetric(float64(stats.Pruned)/float64(stats.Examined), "pruned_ratio")
		report.IndexedNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		report.Examined = stats.Examined
		report.Candidates = stats.Candidates
		report.Pruned = stats.Pruned
		report.PrunedPerExam = float64(stats.Pruned) / float64(stats.Examined)
		report.Matches = stats.Matches
	})
	b.Run("scan", func(b *testing.B) {
		var stats seqrep.QueryStats
		for i := 0; i < b.N; i++ {
			var err error
			if _, stats, err = scan.DistanceQueryStats(exemplar, metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		if stats.Plan != "scan" {
			b.Fatalf("plan = %q, want scan", stats.Plan)
		}
		b.ReportMetric(float64(stats.Candidates), "candidates/op")
		report.ScanNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if report.IndexedNsOp > 0 && report.ScanNsOp > 0 {
		report.Speedup = report.ScanNsOp / report.IndexedNsOp
		b.ReportMetric(report.Speedup, "speedup")
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_query.json", append(blob, '\n'), 0o644); err != nil {
			b.Logf("BENCH_query.json not written: %v", err)
		}
	}
}

// BenchmarkTopK compares TOP-K best-so-far search against the ε-band
// search it improves on, at small K on the 10k corpus: the K nearest
// answers under a wide tolerance. The kNN radius feedback must examine
// strictly fewer feature vectors than the fixed-ε search (the acceptance
// bar of the bounded-query redesign) — the bench fails otherwise.
func BenchmarkTopK(b *testing.B) {
	indexed, _, exemplar := queryBenchDBs(b)
	// A wide tolerance: the ε-band search verifies the whole admitted
	// band; TOP 10 shrinks its radius to the 10th-nearest distance.
	const eps = 8.0
	metric := seqrep.EuclideanMetric()
	ctx := context.Background()

	var bandStats, topStats seqrep.QueryStats
	b.Run("epsband", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			if _, bandStats, err = indexed.DistanceQueryStats(exemplar, metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bandStats.Examined), "examined/op")
		b.ReportMetric(float64(bandStats.Matches), "matches/op")
	})
	b.Run("top10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			var matches []seqrep.Match
			if matches, topStats, err = indexed.DistanceQueryCtx(ctx, exemplar, metric, eps, seqrep.QueryOptions{TopK: 10}); err != nil {
				b.Fatal(err)
			}
			if len(matches) != 10 {
				b.Fatalf("top-10 returned %d matches", len(matches))
			}
		}
		b.ReportMetric(float64(topStats.Examined), "examined/op")
	})
	if topStats.Examined >= bandStats.Examined {
		b.Fatalf("TOP 10 examined %d vectors, ε-band %d: best-so-far pruning below the bar",
			topStats.Examined, bandStats.Examined)
	}
	b.Logf("TOP 10 examined %d of the ε-band's %d vectors (%.1f%%), verified %d vs %d candidates",
		topStats.Examined, bandStats.Examined,
		100*float64(topStats.Examined)/float64(bandStats.Examined),
		topStats.Candidates, bandStats.Candidates)
}

// BenchmarkValueQuery10k measures the planner's two ValueQuery plans on
// the same 10k corpus (the ±ε band admits the ε·√n feature bound).
func BenchmarkValueQuery10k(b *testing.B) {
	indexed, scan, exemplar := queryBenchDBs(b)
	const eps = 0.25
	b.Run("indexed", func(b *testing.B) {
		var stats seqrep.QueryStats
		for i := 0; i < b.N; i++ {
			var err error
			if _, stats, err = indexed.ValueQueryStats(exemplar, eps); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Candidates), "candidates/op")
		b.ReportMetric(float64(stats.Pruned)/float64(stats.Examined), "pruned_ratio")
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scan.ValueQueryStats(exemplar, eps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- hot path at 100k: VP-tree vs linear feature scan, incremental
// ---- sliding-window DFT vs per-window recompute ----

// hotpathBench holds the once-built 100k-sequence databases: one with
// vantage-point trees over the columnar feature store (the default) and
// one with the trees disabled (IndexLeaf < 0), pinning candidate
// generation to the linear feature scan the trees replaced. Identical
// workloads, so the benchmarks measure only candidate generation.
var hotpathBench struct {
	once    sync.Once
	vptree  *seqrep.DB
	linear  *seqrep.DB
	queries []seqrep.Sequence
	err     error
}

const hotpathN = 100000

func hotpathDBs(b *testing.B) (vptree, linear *seqrep.DB, queries []seqrep.Sequence) {
	b.Helper()
	hotpathBench.once.Do(func() {
		items := make([]seqrep.BatchItem, 0, hotpathN)
		for i := 0; i < hotpathN; i++ {
			first := 5 + float64(i%8)
			second := first + 5 + float64(i%5)
			s, err := seqrep.GenerateFever(seqrep.FeverOpts{
				Samples: 97, FirstPeak: first, SecondPeak: second,
			})
			if err != nil {
				hotpathBench.err = err
				return
			}
			items = append(items, seqrep.BatchItem{
				ID:  fmt.Sprintf("fever-%06d", i),
				Seq: s.ShiftValue(float64(i%2000) * 0.05),
			})
		}
		for _, setup := range []struct {
			dst  **seqrep.DB
			leaf int
		}{
			{&hotpathBench.vptree, 0},  // 0 = default (trees on)
			{&hotpathBench.linear, -1}, // trees disabled: linear feature scan
		} {
			db, err := seqrep.New(seqrep.Config{
				Archive:   seqrep.NewMemArchive(),
				IndexLeaf: setup.leaf,
			})
			if err != nil {
				hotpathBench.err = err
				return
			}
			if _, err := db.IngestBatch(items); err != nil {
				hotpathBench.err = err
				return
			}
			*setup.dst = db
		}
		q, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
		if err != nil {
			hotpathBench.err = err
			return
		}
		hotpathBench.queries = []seqrep.Sequence{q}
	})
	if hotpathBench.err != nil {
		b.Fatal(hotpathBench.err)
	}
	return hotpathBench.vptree, hotpathBench.linear, hotpathBench.queries
}

// benchHotpathReport is the machine-readable record BenchmarkHotpath100k
// writes to BENCH_hotpath.json: the successor of BENCH_query.json's 10k
// planner numbers, tracking the sub-linear hot path at 100k sequences.
type benchHotpathReport struct {
	Benchmark     string  `json:"benchmark"`
	Sequences     int     `json:"sequences"`
	Metric        string  `json:"metric"`
	Eps           float64 `json:"eps"`
	VPTreeNsOp    float64 `json:"vptree_ns_per_op"`
	LinearNsOp    float64 `json:"linear_feature_scan_ns_per_op"`
	Speedup       float64 `json:"speedup_vs_linear_feature_scan"`
	Examined      int     `json:"examined"`
	ExaminedRatio float64 `json:"examined_ratio"` // examined / sequences
	Candidates    int     `json:"candidates"`
	Matches       int     `json:"matches"`

	SubseqSamples       int     `json:"subseq_samples"`
	SubseqWindow        int     `json:"subseq_window"`
	SubseqIncrementalNs float64 `json:"subseq_incremental_ns_per_op"`
	SubseqRecomputeNs   float64 `json:"subseq_recompute_ns_per_op"`
	SubseqSpeedup       float64 `json:"subseq_speedup"`
}

// BenchmarkHotpath100k measures the rebuilt similarity hot path at 100k
// stored sequences: vantage-point-tree candidate generation against the
// linear columnar feature scan (identical answers, see
// core/equivalence_test.go), plus the incremental sliding-window DFT
// against its per-window-recompute baseline, and emits
// BENCH_hotpath.json. Acceptance floors: the tree must examine ≪ N
// vectors and beat the linear feature scan ≥ 3x; the incremental
// subsequence search must beat recompute ≥ 5x.
func BenchmarkHotpath100k(b *testing.B) {
	if os.Getenv("SEQREP_BENCH_100K") == "" {
		b.Skip("set SEQREP_BENCH_100K=1 to run (builds two 100k-sequence databases; minutes of setup) — CI's bench-smoke stays a compile-and-run smoke")
	}
	vptree, linear, queries := hotpathDBs(b)
	// eps admits the nearest stored shift level of the exemplar's two-peak
	// shape (50 sequences at L2 ≈ 1.48) and nothing beyond it, so the
	// query does real verification work while staying selective — the
	// regime a similarity index exists for.
	const eps = 2.0
	metric := seqrep.EuclideanMetric()
	report := benchHotpathReport{
		Benchmark: "Hotpath100k",
		Sequences: hotpathN,
		Metric:    metric.Name(),
		Eps:       eps,
	}
	b.Run("query/vptree", func(b *testing.B) {
		// Warm outside the timed region: the first query after ingest
		// builds the length group's trees (a one-time cost amortized over
		// the database's life, not a per-query one).
		if _, _, err := vptree.DistanceQueryStats(queries[0], metric, eps); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var stats seqrep.QueryStats
		for i := 0; i < b.N; i++ {
			var err error
			if _, stats, err = vptree.DistanceQueryStats(queries[0], metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(stats.Examined), "examined/op")
		b.ReportMetric(float64(stats.Examined)/float64(hotpathN), "examined_ratio")
		report.VPTreeNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		report.Examined = stats.Examined
		report.ExaminedRatio = float64(stats.Examined) / float64(hotpathN)
		report.Candidates = stats.Candidates
		report.Matches = stats.Matches
	})
	b.Run("query/linear", func(b *testing.B) {
		if _, _, err := linear.DistanceQueryStats(queries[0], metric, eps); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := linear.DistanceQueryStats(queries[0], metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		report.LinearNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	stored := dftBenchSequence(100000)
	q := stored.Slice(40000, 40256).Clone()
	report.SubseqSamples, report.SubseqWindow = len(stored), len(q)
	b.Run("subseq/incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits, err := dft.SubsequenceMatch("s", stored, q, 8, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			if len(hits) == 0 {
				b.Fatal("planted window not found")
			}
		}
		report.SubseqIncrementalNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("subseq/recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits, err := dft.SubsequenceMatchRecompute("s", stored, q, 8, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			if len(hits) == 0 {
				b.Fatal("planted window not found")
			}
		}
		report.SubseqRecomputeNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if report.VPTreeNsOp > 0 && report.LinearNsOp > 0 {
		report.Speedup = report.LinearNsOp / report.VPTreeNsOp
		b.ReportMetric(report.Speedup, "speedup")
	}
	if report.SubseqIncrementalNs > 0 && report.SubseqRecomputeNs > 0 {
		report.SubseqSpeedup = report.SubseqRecomputeNs / report.SubseqIncrementalNs
	}
	if report.Speedup > 0 && report.SubseqSpeedup > 0 {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_hotpath.json", append(blob, '\n'), 0o644); err != nil {
			b.Logf("BENCH_hotpath.json not written: %v", err)
		}
	}
}

// dftBenchSequence builds the long stored sequence the subsequence
// benchmarks slide over: a bounded random walk.
func dftBenchSequence(n int) seqrep.Sequence {
	rng := rand.New(rand.NewSource(4242))
	vals := make([]float64, n)
	level := 0.0
	for i := range vals {
		level = 0.999*level + rng.NormFloat64()
		vals[i] = level
	}
	return seqrep.NewSequence(vals)
}

// BenchmarkReconstruct measures evaluating a stored representation back
// into samples (the "interpolation of unsampled points" capability).
func BenchmarkReconstruct(b *testing.B) {
	db := ecgDB(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Reconstruct("ecg-000"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchProgressiveReport is the machine-readable record
// BenchmarkProgressiveQuery writes to BENCH_progressive.json: the
// sketch tier's first-answer latency against the exact scan it
// short-circuits, with the recall of the band-accepted answer.
type benchProgressiveReport struct {
	Benchmark      string  `json:"benchmark"`
	Sequences      int     `json:"sequences"`
	Metric         string  `json:"metric"`
	Eps            float64 `json:"eps"`
	SketchNsOp     float64 `json:"sketch_ns_per_op"`
	ExactScanNsOp  float64 `json:"exact_scan_ns_per_op"`
	Speedup        float64 `json:"speedup_vs_exact_scan"`
	Sketched       int     `json:"sketched"`
	BandAccepted   int     `json:"band_accepted"`
	ExactMatches   int     `json:"exact_matches"`
	Recall         float64 `json:"recall_within_band"`
	FalsePositives int     `json:"band_false_positives"`
}

// BenchmarkProgressiveQuery measures the progressive cascade's sketch
// tier on the 10k corpus: the time to a complete first answer (every
// record banded and finalized at APPROX sketch) against the exact scan
// plan answering the same statement, and emits BENCH_progressive.json.
// Acceptance floors: the sketch tier must answer ≥ 10x faster than the
// exact scan, and its band-accepted answer must have full recall — the
// per-record band guarantee means an exact match can never be dismissed
// at any tier (the property suite in core/progressive_test.go proves
// this bit-level; here it gates the benchmark too).
func BenchmarkProgressiveQuery(b *testing.B) {
	indexed, scan, exemplar := queryBenchDBs(b)
	// The same regime as BenchmarkDistanceQuery10k: eps admits the
	// 0.15-shifted members of the exemplar's two-peak family.
	const eps = 2.0
	metric := seqrep.EuclideanMetric()
	ctx := context.Background()
	sketchOpts := seqrep.QueryOptions{MaxTier: seqrep.TierSketch}
	report := benchProgressiveReport{
		Benchmark: "ProgressiveQuery10k",
		Sequences: queryBenchN,
		Metric:    metric.Name(),
		Eps:       eps,
	}

	// Ground truth and recall, outside the timed regions.
	exact, _, err := scan.DistanceQueryStats(exemplar, metric, eps)
	if err != nil {
		b.Fatal(err)
	}
	exactIDs := make(map[string]bool, len(exact))
	for _, m := range exact {
		exactIDs[m.ID] = true
	}
	accepted := make(map[string]bool)
	if _, err := indexed.DistanceQueryProgressive(ctx, exemplar, metric, eps, sketchOpts, func(pm seqrep.ProgressiveMatch) bool {
		if pm.Final && pm.Match != nil {
			accepted[pm.ID] = true
		}
		return true
	}); err != nil {
		b.Fatal(err)
	}
	recalled := 0
	for id := range exactIDs {
		if accepted[id] {
			recalled++
		}
	}
	report.ExactMatches = len(exactIDs)
	report.BandAccepted = len(accepted)
	report.FalsePositives = len(accepted) - recalled
	if len(exactIDs) > 0 {
		report.Recall = float64(recalled) / float64(len(exactIDs))
	}
	if recalled != len(exactIDs) {
		b.Fatalf("sketch tier dismissed %d of %d exact matches — the band guarantee is broken",
			len(exactIDs)-recalled, len(exactIDs))
	}

	measured := true // false under -benchtime=1x: CI's compile-and-run smoke
	b.Run("sketch", func(b *testing.B) {
		var stats seqrep.QueryStats
		for i := 0; i < b.N; i++ {
			var err error
			if stats, err = indexed.DistanceQueryProgressive(ctx, exemplar, metric, eps, sketchOpts, func(pm seqrep.ProgressiveMatch) bool {
				return true
			}); err != nil {
				b.Fatal(err)
			}
		}
		measured = measured && b.N > 1
		if stats.Plan != "progressive" {
			b.Fatalf("plan = %q, want progressive", stats.Plan)
		}
		b.ReportMetric(float64(stats.Sketched), "sketched/op")
		b.ReportMetric(float64(stats.BandAccepted), "band_accepted/op")
		report.SketchNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		report.Sketched = stats.Sketched
	})
	b.Run("exact/scan", func(b *testing.B) {
		var stats seqrep.QueryStats
		for i := 0; i < b.N; i++ {
			var err error
			if _, stats, err = scan.DistanceQueryStats(exemplar, metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		if stats.Plan != "scan" {
			b.Fatalf("plan = %q, want scan", stats.Plan)
		}
		report.ExactScanNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		measured = measured && b.N > 1
	})

	if report.SketchNsOp > 0 && report.ExactScanNsOp > 0 {
		report.Speedup = report.ExactScanNsOp / report.SketchNsOp
		b.ReportMetric(report.Speedup, "speedup")
		if measured && report.Speedup < 10 {
			b.Fatalf("sketch tier %.1fx faster than the exact scan, want >= 10x", report.Speedup)
		}
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_progressive.json", append(blob, '\n'), 0o644); err != nil {
			b.Logf("BENCH_progressive.json not written: %v", err)
		}
	}
}
