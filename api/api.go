// Package api defines the JSON wire types of the seqrep HTTP interface.
// Both sides of the wire — the server (internal/server, cmd/seqserved)
// and the typed Go client (package client) — share these definitions, so
// the package depends on nothing but the standard library and carries no
// behavior.
//
// Endpoints (see docs/SERVER.md for examples):
//
//	POST   /v1/query          QueryRequest   -> QueryResponse
//	POST   /v1/query/stream   QueryRequest   -> NDJSON stream of StreamFrame
//	POST   /v1/ingest         IngestRequest  -> IngestResponse
//	POST   /v1/ingest/batch   BatchRequest   -> BatchResponse
//	GET    /v1/records/{id}                  -> RecordResponse
//	DELETE /v1/records/{id}                  -> RemoveResponse
//	POST   /v1/snapshot/save                 -> SnapshotResponse
//	POST   /v1/snapshot/load                 -> SnapshotResponse
//	GET    /healthz                          -> HealthResponse
//	GET    /metrics                          -> Prometheus text format
//
// Errors are returned as ErrorResponse with a non-2xx status code.
// Requests shed by admission control answer 429 with a Retry-After
// header; writes against a storage-fault degraded database answer 503,
// and /healthz keeps its JSON body while answering 503 whenever the
// server is degraded or unhealthy (docs/RELIABILITY.md).
package api

import "math"

// QueryRequest executes one query-language statement.
type QueryRequest struct {
	// Query is the statement, e.g. `MATCH DISTANCE LIKE ecg1 METRIC l2
	// EPS 3` or `EXPLAIN MATCH VALUE LIKE ecg1`.
	Query string `json:"query"`
}

// Match is one similarity-query result.
type Match struct {
	ID    string `json:"id"`
	Exact bool   `json:"exact"`
	// Deviations maps feature dimension (or metric name) to the observed
	// deviation; 0 for exact dimensions.
	Deviations map[string]float64 `json:"deviations,omitempty"`
}

// PatternHit locates one pattern occurrence inside a sequence.
type PatternHit struct {
	ID     string  `json:"id"`
	SegLo  int     `json:"seg_lo"`
	SegHi  int     `json:"seg_hi"`
	TimeLo float64 `json:"time_lo"`
	TimeHi float64 `json:"time_hi"`
}

// IntervalMatch is one result of a peak-interval query.
type IntervalMatch struct {
	ID        string    `json:"id"`
	Positions []int     `json:"positions,omitempty"`
	Intervals []float64 `json:"intervals,omitempty"`
}

// QueryStats reports how a planner-routed (or EXPLAIN'ed) statement
// executed.
type QueryStats struct {
	Query      string `json:"query"`
	Metric     string `json:"metric,omitempty"`
	Plan       string `json:"plan"`
	Examined   int    `json:"examined"`
	Candidates int    `json:"candidates"`
	Pruned     int    `json:"pruned"`
	Matches    int    `json:"matches"`
	// Sketched counts the records banded at the progressive sketch tier
	// (progressive plan only).
	Sketched int `json:"sketched,omitempty"`
	// BandAccepted counts matches accepted on their error band alone,
	// without exact verification (progressive plan only).
	BandAccepted int `json:"band_accepted,omitempty"`
	// Truncated reports that a result bound (LIMIT / TOP n BY DISTANCE,
	// or the server's -query-limit cap) stopped the query early: the
	// unbounded answer may hold more matches.
	Truncated bool `json:"truncated,omitempty"`
}

// RefineFrame is one progressive refinement notice inside a
// /v1/query/stream response to a statement carrying WITHIN ERROR /
// APPROX. Each frame reports the current two-sided error band around
// one record's true distance at the quality tier that produced it
// ("sketch", "candidate" or "exact"). Bands for a record only ever
// tighten as the stream progresses, and the true distance always lies
// inside them. Final frames (Final true) are the record's verdict:
// accepted records additionally carry the item frame's Match in the
// same StreamFrame; rejected records end with just the band that ruled
// them out.
type RefineFrame struct {
	// ID is the record the band describes.
	ID string `json:"id"`
	// Tier is the cascade level that produced this band: "sketch",
	// "candidate" or "exact".
	Tier string `json:"tier"`
	// Lo is the band's lower edge: the true distance is ≥ Lo.
	Lo float64 `json:"lo"`
	// Hi is the band's upper edge: the true distance is ≤ Hi. Nil means
	// unbounded above (no upper estimate at this tier yet).
	Hi *float64 `json:"hi,omitempty"`
	// Final marks the record's last frame: its verdict is settled and no
	// further frames for it will arrive.
	Final bool `json:"final,omitempty"`
}

// QueryResponse is the uniform answer of /v1/query.
type QueryResponse struct {
	// Kind names the query family: "pattern", "find", "peaks",
	// "interval", "value", "distance", "shape".
	Kind string `json:"kind"`
	// Canonical is the statement's canonical form — the server's cache
	// key for this result.
	Canonical string `json:"canonical"`
	// IDs are the distinct matching sequence ids.
	IDs       []string        `json:"ids"`
	Matches   []Match         `json:"matches,omitempty"`
	Hits      []PatternHit    `json:"hits,omitempty"`
	Intervals []IntervalMatch `json:"intervals,omitempty"`
	// Stats is set for planner-routed statements and every EXPLAIN.
	Stats   *QueryStats `json:"stats,omitempty"`
	Explain bool        `json:"explain,omitempty"`
	// Generation is the database mutation generation the answer was
	// computed at; Cached reports whether it was served from the result
	// cache (always at the current generation — a mutation invalidates).
	Generation uint64 `json:"generation"`
	Cached     bool   `json:"cached"`
}

// StreamFrame is one NDJSON line of the /v1/query/stream response. A
// stream is: one header frame (Canonical set), zero or more item frames
// (exactly one of Match, Hit, Interval or ID set), then one trailer
// frame (Done true, with Kind, Stats and Generation) — or an error frame
// (Error set) terminating the stream early. Similarity matches stream as
// the engine verifies them (nearest-first under TOP n BY DISTANCE,
// discovery order otherwise); other result kinds are framed after the
// statement completes. Streamed answers bypass the server's result cache.
type StreamFrame struct {
	// Canonical marks the header frame: the statement's canonical form
	// (the same string /v1/query would use as its cache key).
	Canonical string `json:"canonical,omitempty"`

	// Item frames: exactly one field is set — except a progressive final
	// accept, where Refine (the verdict band) and Match (the result)
	// arrive together.
	Match    *Match         `json:"match,omitempty"`
	Hit      *PatternHit    `json:"hit,omitempty"`
	Interval *IntervalMatch `json:"interval,omitempty"`
	// Refine is one progressive refinement notice (statements with
	// WITHIN ERROR / APPROX only): a tier-tagged error band around one
	// record's true distance, tightening monotonically across frames.
	Refine *RefineFrame `json:"refine,omitempty"`
	// ID carries one matching id for kinds without a richer item form
	// (MATCH PATTERN).
	ID string `json:"id,omitempty"`

	// Trailer frame.
	Done bool `json:"done,omitempty"`
	// Kind names the query family (trailer only).
	Kind string `json:"kind,omitempty"`
	// Stats reports the execution plan (trailer; set for planner-routed
	// and EXPLAIN'ed statements). Stats.Truncated marks a bounded answer.
	Stats *QueryStats `json:"stats,omitempty"`
	// Generation is the database mutation generation the answer was
	// computed at (trailer only).
	Generation uint64 `json:"generation,omitempty"`
	Explain    bool   `json:"explain,omitempty"`

	// Error terminates the stream abnormally (the HTTP status is already
	// 200 by the time a mid-stream failure can occur).
	Error string `json:"error,omitempty"`
}

// Width returns the band's current width Hi − Lo, or +Inf while the
// band is still unbounded above. It is the client-side early-stop test:
// once every open record's Width is below the caller's tolerance, the
// remaining frames can only confirm what is already known and the
// stream may be abandoned.
func (f *RefineFrame) Width() float64 {
	if f.Hi == nil {
		return math.Inf(1)
	}
	return *f.Hi - f.Lo
}

// IngestRequest stores one sequence. Times may be omitted for uniformly
// sampled values (times 0, 1, 2, ...); when present it must parallel
// Values.
type IngestRequest struct {
	ID     string    `json:"id"`
	Times  []float64 `json:"times,omitempty"`
	Values []float64 `json:"values"`
}

// IngestResponse describes the stored record.
type IngestResponse struct {
	ID       string `json:"id"`
	Samples  int    `json:"samples"`
	Segments int    `json:"segments"`
	Symbols  string `json:"symbols"`
	// Generation is the database generation after the ingest committed.
	Generation uint64 `json:"generation"`
	// Duplicate is set only by the retrying client: a retried ingest that
	// answered 409 means an earlier attempt (whose response was lost)
	// already committed this id — the operation succeeded exactly once.
	Duplicate bool `json:"duplicate,omitempty"`
}

// BatchRequest ingests many sequences through the worker pool.
type BatchRequest struct {
	Items []IngestRequest `json:"items"`
}

// BatchItemError ties one failed batch item to its position in the
// request.
type BatchItemError struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	Error string `json:"error"`
}

// BatchResponse reports a batch outcome: items are independent, so a
// partial failure still ingests the rest (HTTP 207) and lists each
// failure individually.
type BatchResponse struct {
	Requested  int              `json:"requested"`
	Ingested   int              `json:"ingested"`
	Failed     []BatchItemError `json:"failed,omitempty"`
	Generation uint64           `json:"generation"`
}

// RecordResponse is the stored state of one sequence.
type RecordResponse struct {
	ID        string    `json:"id"`
	Samples   int       `json:"samples"`
	Segments  int       `json:"segments"`
	Peaks     int       `json:"peaks"`
	Symbols   string    `json:"symbols"`
	Intervals []float64 `json:"intervals,omitempty"`
}

// RemoveResponse acknowledges a DELETE.
type RemoveResponse struct {
	ID string `json:"id"`
	// Sequences is the count remaining after the removal.
	Sequences  int    `json:"sequences"`
	Generation uint64 `json:"generation"`
}

// SnapshotResponse reports a snapshot save or load.
type SnapshotResponse struct {
	// Op is "save", "load" — or "checkpoint" when the server runs a
	// durable data-dir database, where a save also truncates the
	// write-ahead log it just covered.
	Op        string `json:"op"`
	Sequences int    `json:"sequences"`
	// Generation is the database generation after the operation (for a
	// load: of the freshly restored database).
	Generation uint64 `json:"generation"`
	// WALRecords/WALBytes report the write-ahead log's depth after a
	// checkpoint (durable servers only; normally near zero — writes
	// committed during the checkpoint remain).
	WALRecords uint64 `json:"wal_records,omitempty"`
	WALBytes   int64  `json:"wal_bytes,omitempty"`
}

// HealthResponse is /healthz.
type HealthResponse struct {
	Status     string `json:"status"`
	Sequences  int    `json:"sequences"`
	Generation uint64 `json:"generation"`
	// Durable reports a data-dir server: writes are write-ahead-logged
	// and fsync'd before acknowledgement. The WAL* fields below are only
	// set when Durable.
	Durable bool `json:"durable,omitempty"`
	// WALRecords is the log depth: records a crash right now would
	// replay (appends since the last checkpoint).
	WALRecords uint64 `json:"wal_records,omitempty"`
	// WALBytes is the retained log size on disk.
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// WALSegments is the retained log segment file count.
	WALSegments int `json:"wal_segments,omitempty"`
	// LastCheckpointAgeSeconds is the time since the last completed
	// checkpoint (at boot: since the recovered segment manifest — or
	// legacy snapshot — was written). Nil when the database has never
	// checkpointed; clamped at zero against clock skew and
	// restored-from-backup file times.
	LastCheckpointAgeSeconds *float64 `json:"last_checkpoint_age_seconds,omitempty"`
	// CheckpointFailures counts checkpoints that failed since boot. A
	// growing count alongside growing WALRecords/WALBytes means the log
	// is no longer being truncated — the unbounded-disk alarm.
	CheckpointFailures uint64 `json:"checkpoint_failures,omitempty"`
	// LastCheckpointError is the most recent checkpoint failure, cleared
	// by the next success.
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
	// SegmentCount/SegmentEntries/SegmentTombstones/SegmentBytes report
	// the on-disk segment tier checkpoints flush into (durable servers
	// only): live segment files, entries across them, tombstone debt
	// compaction will drop, and the tier's byte footprint.
	SegmentCount      int   `json:"segment_count,omitempty"`
	SegmentEntries    int   `json:"segment_entries,omitempty"`
	SegmentTombstones int   `json:"segment_tombstones,omitempty"`
	SegmentBytes      int64 `json:"segment_bytes,omitempty"`
	// Compactions counts segment-tier compactions run since boot.
	Compactions uint64 `json:"compactions,omitempty"`
	// MemoryBudget is the byte budget for resident record payloads
	// (servers started with -memory-budget only): cold payloads are
	// evicted to the segment tier and paged back in on demand. The
	// residency fields below are present only when a budget is set.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// ResidentRecords/ResidentBytes are the payloads currently held in
	// RAM and their accounted size.
	ResidentRecords int   `json:"resident_records,omitempty"`
	ResidentBytes   int64 `json:"resident_bytes,omitempty"`
	// ResidentPinned counts records pinned resident because they are
	// dirty (WAL-covered, not yet checkpointed) — never evictable.
	ResidentPinned int `json:"resident_pinned,omitempty"`
	// Evictions counts payloads paged out since boot; ColdHits counts
	// reads that had to page a payload back in from the segment tier.
	Evictions uint64 `json:"evictions,omitempty"`
	ColdHits  uint64 `json:"cold_hits,omitempty"`
	// CheckpointFailStreak counts consecutive checkpoint failures; the
	// next success resets it. At or above the server's tolerance
	// (-checkpoint-fail-limit) /healthz answers 503.
	CheckpointFailStreak uint64 `json:"checkpoint_fail_streak,omitempty"`
	// Degraded reports storage-fault read-only mode: a write-ahead-log
	// append or fsync failed, writes are answering 503, reads keep
	// serving, and a supervised probe is retrying the disk. /healthz
	// itself answers 503 while Degraded.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedCause is the storage fault behind the current degraded
	// episode (set only while Degraded).
	DegradedCause string `json:"degraded_cause,omitempty"`
	// DegradedSince is seconds spent in the current degraded episode.
	DegradedSince *float64 `json:"degraded_since_seconds,omitempty"`
	// Recoveries counts successful returns from degraded to write
	// service since boot.
	Recoveries uint64 `json:"recoveries,omitempty"`
	// Admission reports the server's admission-control saturation.
	Admission *AdmissionStats `json:"admission,omitempty"`
}

// AdmissionStats is the admission controller's live saturation, reported
// in /healthz. The server bounds concurrent work by weight (a streaming
// query costs more than an ingest); requests beyond the limit wait in a
// bounded queue and overflow answers 429 with a Retry-After.
type AdmissionStats struct {
	// Limit is the total weighted concurrency the server admits.
	Limit int `json:"limit"`
	// Inflight is the weighted work currently admitted.
	Inflight int `json:"inflight"`
	// Queued is the weighted work currently waiting for admission.
	Queued int `json:"queued"`
	// QueueLimit bounds Queued; beyond it requests are rejected.
	QueueLimit int `json:"queue_limit"`
	// Rejected counts 429s answered since boot.
	Rejected uint64 `json:"rejected"`
	// Saturation is Inflight/Limit, 0..1.
	Saturation float64 `json:"saturation"`
	// PerRoute is each route's share of the limit currently admitted
	// (weight/Limit), for routes with work in flight.
	PerRoute map[string]float64 `json:"per_route,omitempty"`
}

// ErrorResponse carries any non-2xx outcome.
type ErrorResponse struct {
	Error string `json:"error"`
}
