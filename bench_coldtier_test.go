package seqrep_test

// BenchmarkColdTier measures beyond-RAM serving: a durable database
// whose residency budget holds ~10% of the corpus, against the same
// corpus fully resident. It reports cold-hit (page-in) latency and
// queries/sec for both, asserts resident bytes never exceed the budget,
// and emits BENCH_coldtier.json for CI's jq gate.
//
// The default 5000-record corpus keeps the smoke run cheap; set
// SEQREP_BENCH_100K=1 for the 100k-record acceptance configuration.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"seqrep"
)

type benchColdTierReport struct {
	Benchmark          string  `json:"benchmark"`
	Records            int     `json:"records"`
	FullyResidentBytes int64   `json:"fully_resident_bytes"`
	MemoryBudget       int64   `json:"memory_budget"`
	BudgetFraction     float64 `json:"budget_fraction"`
	ResidentBytesMax   int64   `json:"resident_bytes_max"`
	UnderBudget        bool    `json:"resident_bytes_under_budget"`
	ColdHitNsOp        float64 `json:"cold_hit_ns_per_op"`
	ColdHitsTotal      uint64  `json:"cold_hits_total"`
	EvictionsTotal     uint64  `json:"evictions_total"`
	PagedQueryNsOp     float64 `json:"paged_query_ns_per_op"`
	ResidentQueryNsOp  float64 `json:"resident_query_ns_per_op"`
	PagedQPS           float64 `json:"paged_queries_per_sec"`
	ResidentQPS        float64 `json:"resident_queries_per_sec"`
	PagedSlowdown      float64 `json:"paged_slowdown_vs_resident"`
}

// coldTierIngest fills db with n varied two-peak fever curves (no
// archive: verification must read representations, i.e. page).
func coldTierIngest(b *testing.B, db *seqrep.DB, n int) []string {
	b.Helper()
	ids := make([]string, n)
	const batch = 512
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		items := make([]seqrep.BatchItem, 0, hi-lo)
		for i := lo; i < hi; i++ {
			first := 5 + float64(i%8)
			second := first + 5 + float64(i%5)
			s, err := seqrep.GenerateFever(seqrep.FeverOpts{
				Samples: 97, FirstPeak: first, SecondPeak: second,
			})
			if err != nil {
				b.Fatal(err)
			}
			ids[i] = fmt.Sprintf("cold-%06d", i)
			items = append(items, seqrep.BatchItem{ID: ids[i], Seq: s})
		}
		if _, err := db.IngestBatch(items); err != nil {
			b.Fatal(err)
		}
	}
	return ids
}

func BenchmarkColdTier(b *testing.B) {
	n := 5000
	if os.Getenv("SEQREP_BENCH_100K") != "" {
		n = 100_000
	}

	// Fully-resident baseline: durable, no budget.
	resident, err := seqrep.OpenDir(b.TempDir(), seqrep.Config{Workers: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer resident.Close()
	coldTierIngest(b, resident, n)
	if err := resident.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	// The representation footprint, by the tracker's own accounting
	// formula (floats + segment structs + object overhead).
	rst := resident.Stats()
	fullBytes := int64(rst.StoredFloats)*8 + int64(rst.Segments)*48 + 64*int64(rst.Sequences)
	budget := fullBytes / 10

	// Paged database: same corpus under the ~10% budget.
	paged, err := seqrep.OpenDir(b.TempDir(), seqrep.Config{Workers: 16, MemoryBudget: budget})
	if err != nil {
		b.Fatal(err)
	}
	defer paged.Close()
	ids := coldTierIngest(b, paged, n)
	if err := paged.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	st, ok := paged.ResidencyStats()
	if !ok {
		b.Fatal("residency tracker not armed")
	}
	if st.ResidentBytes > budget {
		b.Fatalf("post-checkpoint resident bytes %d exceed the %d budget", st.ResidentBytes, budget)
	}

	report := benchColdTierReport{
		Benchmark:          "ColdTier",
		Records:            n,
		FullyResidentBytes: fullBytes,
		MemoryBudget:       budget,
		BudgetFraction:     float64(budget) / float64(fullBytes),
		ResidentBytesMax:   st.ResidentBytes,
	}
	trackMax := func() {
		if st, ok := paged.ResidencyStats(); ok && st.ResidentBytes > report.ResidentBytesMax {
			report.ResidentBytesMax = st.ResidentBytes
		}
	}

	// Cold-hit latency: a sequential sweep over a 10%-resident set is
	// adversarial for any recency policy — nearly every read pages in
	// from the segment tier.
	b.Run("coldhit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := paged.Representation(ids[i%n]); err != nil {
				b.Fatal(err)
			}
			trackMax()
		}
		report.ColdHitNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	// Queries/sec: the planner's indexed distance query; candidate
	// verification on the paged database reads through the residency
	// layer, on the baseline it is a pointer load.
	exemplar, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		b.Fatal(err)
	}
	const eps = 2.0
	metric := seqrep.EuclideanMetric()
	b.Run("query/paged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := paged.DistanceQuery(exemplar, metric, eps); err != nil {
				b.Fatal(err)
			}
			trackMax()
		}
		report.PagedQueryNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("query/resident", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := resident.DistanceQuery(exemplar, metric, eps); err != nil {
				b.Fatal(err)
			}
		}
		report.ResidentQueryNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	st, _ = paged.ResidencyStats()
	report.ColdHitsTotal = st.ColdHits
	report.EvictionsTotal = st.Evictions
	report.UnderBudget = report.ResidentBytesMax <= budget
	if report.PagedQueryNsOp > 0 {
		report.PagedQPS = 1e9 / report.PagedQueryNsOp
	}
	if report.ResidentQueryNsOp > 0 {
		report.ResidentQPS = 1e9 / report.ResidentQueryNsOp
	}
	if report.PagedQPS > 0 && report.ResidentQPS > 0 {
		report.PagedSlowdown = report.ResidentQPS / report.PagedQPS
	}

	if !report.UnderBudget {
		b.Errorf("resident bytes peaked at %d, above the %d budget", report.ResidentBytesMax, budget)
	}
	if report.ColdHitsTotal == 0 {
		b.Error("no cold hits: the benchmark never paged")
	}
	b.ReportMetric(float64(report.ResidentBytesMax), "resident_bytes_max")
	b.ReportMetric(float64(report.ColdHitsTotal), "cold_hits")

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_coldtier.json", append(blob, '\n'), 0o644); err != nil {
		b.Logf("BENCH_coldtier.json not written: %v", err)
	}
}
