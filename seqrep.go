// Package seqrep is a sequence database built on approximate
// representations, reproducing Shatkay & Zdonik, "Approximate Queries and
// Representations for Large Data Sequences" (ICDE 1996).
//
// Instead of storing raw samples, seqrep breaks each sequence into
// meaningful subsequences (at the points where behaviour changes) and
// stores one fitted real-valued function per subsequence. Features of
// interest — slope signs, peaks, peak-to-peak intervals — are read off the
// functions, powering generalized approximate queries: queries that denote
// a whole class of sequences closed under feature-preserving
// transformations (time/amplitude shift, dilation, contraction, bounded
// noise) rather than a single sequence with a ±ε band.
//
// # Quick start
//
//	db, err := seqrep.New(seqrep.Config{})     // paper defaults
//	...
//	err = db.Ingest("patient-7", temperatures) // break + represent + index
//	ids, err := db.MatchPattern(seqrep.TwoPeakPattern()) // goal-post fever
//
// The main entry points:
//
//   - DB: the database (New, Load); Ingest, IngestBatch (concurrent
//     worker-pool ingestion), Remove, Raw, Reconstruct. The DB is sharded
//     internally and safe for fully concurrent use; Config.Shards and
//     Config.Workers tune the parallelism.
//   - Queries: ValueQuery (prior-art ±ε matching), DistanceQuery (any
//     named distance metric), MatchPattern / SearchPattern (slope-sign
//     regular expressions), PeakCount, IntervalQuery (inverted-index
//     interval search), ShapeQuery (generalized approximate query with
//     per-dimension tolerances). ValueQuery and DistanceQuery are routed
//     through a query planner: metrics with a DFT feature-space lower
//     bound (l2, zl2, the ±ε band) generate candidates through a
//     columnar feature store searched by vantage-point trees — sub-linear
//     in the stored population, with guaranteed zero false dismissals —
//     before exact early-abandoning verification; everything else runs
//     as a shard-parallel scan. The *Stats variants (ValueQueryStats,
//     DistanceQueryStats) report the chosen plan and its examined/
//     candidate/pruned counts; Config.IndexCoeffs sizes the index
//     (negative disables it) and Config.IndexLeaf tunes the trees
//     (negative pins the linear feature scan). See docs/PERFORMANCE.md.
//   - Bounded, cancellable, streaming queries: every similarity query
//     has context-first variants taking QueryOptions — materialized
//     (DistanceQueryCtx, ValueQueryCtx, ShapeQueryCtx), streaming with
//     a yield callback (DistanceQueryStream, ...), and Go 1.23
//     iterators (DistanceQuerySeq, ...). QueryOptions.Limit stops after
//     N matches; QueryOptions.TopK returns the K nearest, feeding the
//     best-so-far distance back into the index as a shrinking pruning
//     radius. Cancelling the context aborts the scan, tree traversal
//     and verification fan-out promptly with no goroutine leaks.
//   - Distance kernels: Metric, MetricByName, and the EuclideanMetric /
//     ManhattanMetric / ChebyshevMetric / ZEuclideanMetric constructors
//     over the internal/dist kernel layer.
//   - Breaking algorithms: NewInterpolationBreaker (the paper's preferred
//     variant, breaks at extrema), NewRegressionBreaker, NewBezierBreaker,
//     NewDPBreaker (O(n²) optimal), NewOnlineBreaker (streaming).
//   - Generators: GenerateFever, GenerateECG, GenerateSeismic,
//     GenerateStock reproduce the paper's evaluation workloads.
package seqrep

import (
	"context"
	"io"

	"seqrep/internal/breaking"
	"seqrep/internal/core"
	"seqrep/internal/dist"
	"seqrep/internal/feature"
	"seqrep/internal/filter"
	"seqrep/internal/fit"
	"seqrep/internal/pattern"
	"seqrep/internal/querylang"
	"seqrep/internal/rep"
	"seqrep/internal/resident"
	"seqrep/internal/segment"
	"seqrep/internal/seq"
	"seqrep/internal/store"
)

// Core data types, aliased from the internal packages so downstream code
// names everything through this package.
type (
	// Point is a single (time, value) sample.
	Point = seq.Point
	// Sequence is an ordered series of samples.
	Sequence = seq.Sequence
	// Config parameterizes a database; the zero value gives the paper's
	// defaults.
	Config = core.Config
	// DB is the sequence database.
	DB = core.DB
	// Record is the stored state of one ingested sequence.
	Record = core.Record
	// BatchItem names one sequence of a concurrent batch ingest
	// (DB.IngestBatch).
	BatchItem = core.BatchItem
	// ItemError ties one failed batch item to its position and id
	// (DB.IngestBatchItems; the joined error of DB.IngestBatch unwraps to
	// these via errors.As).
	ItemError = core.ItemError
	// Metric is a named distance kernel usable with DB.DistanceQuery.
	Metric = dist.Metric
	// Match is one query result with per-dimension deviations.
	Match = core.Match
	// QueryStats reports how a planner-routed query executed: the chosen
	// plan (index vs scan), its examined/candidate/pruned counts, and
	// whether a result bound truncated the answer (DB.DistanceQueryStats,
	// DB.ValueQueryStats, the *Ctx/*Stream variants, EXPLAIN statements).
	QueryStats = core.QueryStats
	// QueryOptions bounds a similarity query's answer: Limit stops after
	// N matches, TopK keeps the K nearest (ordered by distance, with
	// best-so-far pruning fed back into the index search). Accepted by
	// every *Ctx, *Stream and *Seq query variant on DB.
	QueryOptions = core.QueryOptions
	// Tier names one quality level of the progressive cascade: TierSketch,
	// TierCandidate, TierExact (TierNone = no cap).
	Tier = core.Tier
	// Band is a two-sided error interval around a record's true distance;
	// progressive refinement only ever tightens it.
	Band = core.Band
	// ProgressiveMatch is one frame of a progressive query: the record's
	// current band, the tier that produced it, and — on final accepted
	// frames — the Match itself.
	ProgressiveMatch = core.ProgressiveMatch
	// IntervalMatch is one result of an interval query.
	IntervalMatch = core.IntervalMatch
	// PatternHit locates a pattern occurrence inside a sequence.
	PatternHit = core.PatternHit
	// ShapeTolerance holds per-dimension tolerances for ShapeQuery.
	ShapeTolerance = core.ShapeTolerance
	// FunctionSeries is the compact representation of one sequence.
	FunctionSeries = rep.FunctionSeries
	// RepSegment is one represented subsequence.
	RepSegment = rep.Segment
	// Peak is one detected peak with its Table 1 bookkeeping.
	Peak = feature.Peak
	// Profile bundles the features extracted from one representation.
	Profile = feature.Profile
	// Breaker segments sequences.
	Breaker = breaking.Breaker
	// Segment is one subsequence produced by a Breaker.
	Segment = breaking.Segment
	// Fitter fits one curve family to points.
	Fitter = fit.Fitter
	// Curve is a fitted real-valued function of time.
	Curve = fit.Curve
	// PreprocessChain is an ordered preprocessing pipeline.
	PreprocessChain = filter.Chain
	// Archive stores raw sequences.
	Archive = store.Archive
)

// Sentinel errors re-exported for errors.Is branching.
var (
	// ErrDuplicateID reports an Ingest under an already-taken id.
	ErrDuplicateID = core.ErrDuplicateID
	// ErrUnknownID reports an operation on an id the database lacks.
	ErrUnknownID = core.ErrUnknownID
	// ErrStorage reports a server-side storage fault answering a query:
	// a stored record's comparison form could not be read.
	ErrStorage = core.ErrStorage
	// ErrDegraded reports a write rejected because the database is in
	// storage-fault read-only mode (DB.DegradedStatus, DB.Recover).
	ErrDegraded = core.ErrDegraded
)

// New creates a database. A zero Config reproduces the paper's setup:
// interpolation breaking with ε = 0.5, slope threshold δ = 0.25, unit
// interval buckets, no preprocessing, no archive.
func New(cfg Config) (*DB, error) { return core.New(cfg) }

// Load restores a database snapshot written by DB.SaveTo. Scalar
// parameters come from the snapshot; breaker, representer, preprocessing
// and archive come from cfg.
func Load(r io.Reader, cfg Config) (*DB, error) { return core.Load(r, cfg) }

// SaveFile writes a database snapshot to path atomically (write to a
// temporary file in the same directory, then rename): a failure mid-write
// never corrupts an existing snapshot at path. The wrap hook, when
// non-nil, decorates the underlying writer (accounting, fault injection);
// production callers pass nil.
func SaveFile(db *DB, path string, wrap func(io.Writer) io.Writer) error {
	return db.SaveFile(path, wrap)
}

// LoadFile restores a database from a snapshot file written by SaveFile
// (see Load for how cfg combines with the stored parameters).
func LoadFile(path string, cfg Config) (*DB, error) { return core.LoadFile(path, cfg) }

// OpenDir opens (creating if needed) a durable database rooted at a data
// directory (layout: dir/segments/ + dir/wal/). It recovers the on-disk
// segment tier plus the write-ahead-log tail to the exact acknowledged
// pre-crash state — truncating a torn final record, skipping records the
// segments already cover — and leaves the log attached: every
// subsequent Ingest/Remove is appended and fsync'd (group-committed
// across concurrent writers) before it is acknowledged. DB.Checkpoint
// flushes only the records mutated since the last checkpoint into a new
// immutable segment (O(delta), not O(database)) and compacts the tier
// at Config.CompactThreshold; release the log and segment files with
// DB.Close. See docs/DURABILITY.md and docs/STORAGE.md.
func OpenDir(dir string, cfg Config) (*DB, error) { return core.OpenDir(dir, cfg) }

// WALStats describes a durable database's write-ahead-log depth
// (DB.WALStats): records/bytes a crash would replay, the last checkpoint
// time, and the checkpoint failure counter + last error health probes
// watch for unbounded log growth.
type WALStats = core.WALStats

// SegmentStats describes a durable database's on-disk segment tier
// (DB.SegmentStats): segment/entry/tombstone counts, byte footprint,
// compactions run, and the payload cache's occupancy and hit rates.
type SegmentStats = segment.Stats

// ResidencyStats reports the residency subsystem's paging counters
// (DB.ResidencyStats, durable databases with Config.MemoryBudget > 0):
// resident payload count and bytes against the budget, pinned (dirty)
// records, and the eviction / cold-hit totals. See docs/STORAGE.md
// "Residency & paging".
type ResidencyStats = resident.Stats

// RecoveryStats reports what OpenDir's boot-time replay did
// (DB.Recovery).
type RecoveryStats = core.RecoveryStats

// DegradedStatus describes storage-fault read-only mode
// (DB.DegradedStatus): whether writes are disabled, the fault that
// caused it, and the transition counters.
type DegradedStatus = core.DegradedStatus

// QueryResult is the uniform answer of a textual query.
type QueryResult = querylang.Result

// ExecQuery parses and runs one statement of the textual query language
// against db. The language covers every query type, each optionally
// bounded by trailing LIMIT / TOP n BY DISTANCE clauses:
//
//	MATCH PATTERN "UF*D(F|D)*UF*D"
//	FIND PATTERN "U+D+"
//	MATCH PEAKS 2 TOLERANCE 1
//	MATCH INTERVAL 135 +- 2
//	MATCH VALUE LIKE ecg1 EPS 0.5
//	MATCH DISTANCE LIKE ecg1 METRIC zl2 EPS 3
//	MATCH DISTANCE LIKE ecg1 EPS 3 WITHIN ERROR 0.5
//	MATCH VALUE LIKE ecg1 EPS 0.5 APPROX sketch
//	MATCH DISTANCE LIKE ecg1 TOP 10 BY DISTANCE
//	MATCH SHAPE LIKE exemplar HEIGHT 0.25 SPACING 0.3
//	MATCH PEAKS 2 LIMIT 5
//	EXPLAIN MATCH VALUE LIKE ecg1
func ExecQuery(db *DB, src string) (*QueryResult, error) {
	return querylang.Exec(db, src)
}

// ExecQueryCtx is ExecQuery under a context: the similarity statements
// (MATCH VALUE / DISTANCE / SHAPE, bounded or not) stop at the context's
// cancellation or deadline and return ctx.Err().
func ExecQueryCtx(ctx context.Context, db *DB, src string) (*QueryResult, error) {
	return querylang.ExecContext(ctx, db, src)
}

// CanonicalQuery parses one query-language statement and returns its
// canonical rendering — the spelling every equivalent statement
// normalizes to. Statements with equal canonical forms execute
// identically, so the canonical form is a sound cache key for query
// results (the serving layer keys its generation-invalidated result
// cache on it).
func CanonicalQuery(src string) (string, error) {
	return querylang.Canonical(src)
}

// ParsedQuery is one compiled query-language statement: String() is its
// canonical form, Run executes it. Parsing once and reusing the value
// avoids re-parsing on hot paths that need both (the serving layer's
// cache key + execution).
type ParsedQuery = querylang.Query

// ParseQuery compiles one statement without running it.
func ParseQuery(src string) (ParsedQuery, error) { return querylang.Parse(src) }

// RunQuery executes a compiled statement against db without cancellation
// (see RunQueryCtx).
func RunQuery(db *DB, q ParsedQuery) (*QueryResult, error) {
	return q.Run(context.Background(), db)
}

// RunQueryCtx executes a compiled statement under ctx: the similarity
// statements stop at the context's cancellation or deadline and return
// ctx.Err(); fixed-path statements (pattern, peaks, interval) complete
// regardless.
func RunQueryCtx(ctx context.Context, db *DB, q ParsedQuery) (*QueryResult, error) {
	return q.Run(ctx, db)
}

// StreamQuery executes a compiled statement with incremental match
// delivery: similarity statements yield each match as the engine
// verifies it (nearest-first under TOP n BY DISTANCE, discovery order
// otherwise — yield may run on any goroutine, calls are serialized, and
// returning false stops the query without error); other kinds
// materialize first and then deliver their matches through yield. The
// returned result carries the kind, stats and EXPLAIN flag; matches that
// travelled through yield are stripped from it, while payloads without a
// streamed form (pattern ids, FIND hits, interval matches) remain. This
// is the serving layer's engine hook for /v1/query/stream.
func StreamQuery(ctx context.Context, db *DB, q ParsedQuery, yield func(Match) bool) (*QueryResult, error) {
	return querylang.RunStream(ctx, db, q, querylang.StreamFunc(yield))
}

// Progressive cascade tiers, re-exported for switch statements over
// ProgressiveMatch.Tier and QueryOptions.MaxTier.
const (
	TierNone      = core.TierNone
	TierSketch    = core.TierSketch
	TierCandidate = core.TierCandidate
	TierExact     = core.TierExact
)

// IsProgressiveQuery reports whether a compiled statement carries a
// WITHIN ERROR or APPROX clause (through any EXPLAIN / bound wrappers)
// and so should be served through StreamQueryProgressive.
func IsProgressiveQuery(q ParsedQuery) bool { return querylang.IsProgressive(q) }

// StreamQueryProgressive executes a progressive statement (one carrying
// WITHIN ERROR / APPROX) with frame-level delivery: every refinement
// frame — sketch-tier bands, candidate tightenings, final verdicts —
// flows through yield tagged with its quality tier. Bands for a record
// only ever tighten, the true distance always lies inside them, and a
// client may stop consuming once the bands are tight enough. This is
// the serving layer's engine hook for progressive /v1/query/stream.
func StreamQueryProgressive(ctx context.Context, db *DB, q ParsedQuery, yield func(ProgressiveMatch) bool) (*QueryResult, error) {
	return querylang.RunProgressive(ctx, db, q, querylang.ProgressiveFunc(yield))
}

// LimitQuery caps a compiled statement's result count at n (a server-side
// guard rail): statements without their own LIMIT gain one, looser LIMITs
// tighten, tighter ones win; n <= 0 returns q unchanged. The returned
// statement canonicalizes differently from the original, so cache keys
// must come from the uncapped form.
func LimitQuery(q ParsedQuery, n int) ParsedQuery { return querylang.WithLimit(q, n) }

// NewSequence builds a uniformly sampled sequence from values, with times
// 0, 1, 2, ...
func NewSequence(values []float64) Sequence { return seq.New(values) }

// NewSequenceFromSamples builds a sequence from parallel time and value
// slices.
func NewSequenceFromSamples(times, values []float64) (Sequence, error) {
	return seq.FromSamples(times, values)
}

// ---- breaking algorithms ----

// NewInterpolationBreaker returns the paper's preferred breaker: the
// recursive Figure 8 template over endpoint-interpolation lines, which
// breaks sequences at extremum points.
func NewInterpolationBreaker(epsilon float64) Breaker { return breaking.Interpolation(epsilon) }

// NewRegressionBreaker returns the Figure 8 template over least-squares
// regression lines.
func NewRegressionBreaker(epsilon float64) Breaker { return breaking.Regression(epsilon) }

// NewBezierBreaker returns the modified Schneider Bézier-fitting breaker.
func NewBezierBreaker(epsilon float64) Breaker { return breaking.Bezier(epsilon) }

// NewDPBreaker returns the O(n²) dynamic-programming segmenter minimizing
// segmentCost·(#segments) + errorWeight·Σ SSE.
func NewDPBreaker(segmentCost, errorWeight float64) Breaker {
	return &breaking.DP{SegmentCost: segmentCost, ErrorWeight: errorWeight}
}

// NewOnlineBreaker returns the streaming sliding-window breaker that
// decides breakpoints as data arrives.
func NewOnlineBreaker(epsilon float64) Breaker { return breaking.NewOnline(epsilon) }

// ---- fitters (representation families) ----

// InterpolationFitter fits lines through subsequence endpoints.
func InterpolationFitter() Fitter { return fit.InterpolationFitter{} }

// RegressionFitter fits least-squares regression lines — the family the
// paper uses to represent subsequences in its goal-post example.
func RegressionFitter() Fitter { return fit.RegressionFitter{} }

// PolynomialFitter fits least-squares polynomials of the given degree.
func PolynomialFitter(degree int) Fitter { return fit.PolynomialFitter{Degree: degree} }

// BezierFitter fits cubic Bézier curves with Schneider's algorithm.
func BezierFitter() Fitter { return fit.BezierFitter{} }

// ---- patterns ----

// TwoPeakPattern returns the goal-post fever pattern of §4.4: exactly two
// peaks.
func TwoPeakPattern() string { return pattern.TwoPeak() }

// ExactlyPeaksPattern returns a pattern accepting exactly k peaks.
func ExactlyPeaksPattern(k int) string { return pattern.ExactlyPeaks(k) }

// AtLeastPeaksPattern returns a pattern accepting k or more peaks.
func AtLeastPeaksPattern(k int) string { return pattern.AtLeastPeaks(k) }

// PeakUnitPattern is a single peak in slope symbols ("U+F*D"), the
// building block for custom patterns over the U (up), F (flat), D (down)
// alphabet.
const PeakUnitPattern = pattern.PeakUnit

// PeakTable renders the paper's Table 1 for a representation: one row per
// peak with the rising/descending functions and their boundary points.
func PeakTable(fs *FunctionSeries, peaks []Peak) (string, error) {
	return feature.PeakTable(fs, peaks)
}

// ---- distance metrics ----

// MetricByName resolves a distance metric from its textual name
// ("l1", "l2", "linf", "norml1", "norml2", "zl2", plus aliases such as
// "euclidean"), for wiring user-supplied metric names into
// DB.DistanceQuery.
func MetricByName(name string) (Metric, error) { return dist.ByName(name) }

// EuclideanMetric is the L2 distance.
func EuclideanMetric() Metric { return dist.Euclidean }

// ManhattanMetric is the L1 distance.
func ManhattanMetric() Metric { return dist.Manhattan }

// ChebyshevMetric is the L∞ distance — the paper's ±ε band semantics.
func ChebyshevMetric() Metric { return dist.Chebyshev }

// ZEuclideanMetric is the z-normalized Euclidean distance, invariant to
// amplitude shift and scaling.
func ZEuclideanMetric() Metric { return dist.ZEuclidean }

// ---- archives ----

// NewMemArchive returns an in-memory raw-sequence archive. Latency fields
// on the returned value simulate slow archival media.
func NewMemArchive() *store.MemArchive { return store.NewMemArchive() }

// NewFileArchive returns a directory-backed raw-sequence archive.
func NewFileArchive(dir string) (*store.FileArchive, error) { return store.NewFileArchive(dir) }

// ---- preprocessing ----

// StandardPreprocess builds the paper's §7 pipeline: median despiking,
// moving-average smoothing and z-score normalization.
func StandardPreprocess(medianWidth, smoothWidth int) *PreprocessChain {
	return filter.Standard(medianWidth, smoothWidth)
}
