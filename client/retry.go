package client

// Retrying transport (docs/RELIABILITY.md): transient server verdicts —
// 429 from admission control, 503 from storage-fault read-only mode,
// 502/504 from intermediaries, connection failures — are retried with
// exponential backoff and full jitter, honoring the server's Retry-After
// when it sends one, under a per-call time budget. What is safe to retry
// depends on the operation: reads always; ingests always (a lost
// response followed by a retried 409 means an earlier attempt committed
// — the call reports success exactly once, flagged Duplicate); removes
// and batches only on verdicts the server guarantees it rejected before
// applying anything (429, 503). A circuit breaker trips after
// consecutive 503s so a degraded server drains instead of being polled
// by every pending call.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"time"
)

// Retry defaults (RetryPolicy zero-value resolution).
const (
	DefaultMaxAttempts      = 4
	DefaultBaseDelay        = 100 * time.Millisecond
	DefaultMaxDelay         = 5 * time.Second
	DefaultRetryBudget      = 30 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * time.Second
)

// ErrBreakerOpen reports a call refused locally: the circuit breaker has
// seen BreakerThreshold consecutive 503s and is in its cooldown, so the
// server is (still) telling clients to go away and this call did not add
// to the pile.
var ErrBreakerOpen = errors.New("client: circuit breaker open: server unavailable")

// RetryPolicy configures the client's retry behavior. The zero value
// means defaults; WithRetryPolicy installs a custom one;
// MaxAttempts < 0 disables retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, first included:
	// 0 means DefaultMaxAttempts, negative disables retrying.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n sleeps a
	// uniformly random duration in [0, min(MaxDelay, BaseDelay·2ⁿ)] —
	// full jitter, so synchronized clients do not retry in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
	// Budget bounds one call's total time across all attempts and
	// sleeps: a retry that cannot finish its sleep inside the budget is
	// not attempted and the last error returns. 0 means
	// DefaultRetryBudget, negative means unlimited.
	Budget time.Duration
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive 503 responses; 0 means DefaultBreakerThreshold,
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker refuses calls before
	// letting one probe through.
	BreakerCooldown time.Duration
}

// withDefaults resolves the zero value.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Budget == 0 {
		p.Budget = DefaultRetryBudget
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = DefaultBreakerThreshold
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = DefaultBreakerCooldown
	}
	return p
}

// WithRetryPolicy installs a retry policy (see RetryPolicy; zero fields
// mean defaults, MaxAttempts < 0 disables retrying).
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retryPolicy = p.withDefaults() }
}

// idemClass is what a retry may assume about an operation's server-side
// effect when its response was lost or negative.
type idemClass int

const (
	// idemSafe operations have no server-side effect (queries, reads,
	// health) or an effect that is safe to repeat (snapshot save): every
	// transient failure retries, including lost responses.
	idemSafe idemClass = iota
	// idemIngest is a single-record ingest: retried like idemSafe, and a
	// 409 on a retry is recognized as an earlier attempt having
	// committed (the caller reports success, flagged Duplicate).
	idemIngest
	// idemNone operations must not double-apply (remove, batch ingest):
	// only verdicts the server guarantees preceded any application — 429
	// load shed, 503 degraded fail-fast — retry. A lost response is
	// surfaced, never retried.
	idemNone
)

// breaker is a consecutive-503 circuit breaker. All methods are
// goroutine-safe.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

// allow reports whether a call may proceed (false while open).
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Now().After(b.openUntil)
}

// record feeds one attempt's verdict: 503s accumulate and trip the
// breaker at threshold; anything else resets it.
func (b *breaker) record(unavailable bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !unavailable {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
		b.consecutive = 0
	}
}

// retryable classifies one attempt's error under class: (shouldRetry,
// serverSaysWait) where serverSaysWait is the Retry-After floor in
// seconds (0 = none).
func retryable(class idemClass, err error) (bool, int) {
	// The caller giving up is never retried around.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, 0
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Load shed and degraded mode both reject before applying
			// anything: safe for every class.
			return true, ae.RetryAfter
		case http.StatusBadGateway, http.StatusGatewayTimeout:
			// Intermediary verdicts: the request may have applied, so only
			// classes that tolerate a repeat retry.
			return class != idemNone, ae.RetryAfter
		}
		return false, 0
	}
	// Anything else is a transport failure (dial refused, connection
	// reset, header timeout): the response — and whether the server acted
	// — is unknown.
	return class != idemNone, 0
}

// unavailableErr reports whether err is a 503 — the breaker's food.
func unavailableErr(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable
}

// retry runs fn up to the policy's attempt limit, backing off with full
// jitter between tries, honoring server Retry-After floors, and keeping
// the whole call inside the budget. It returns the number of attempts
// made alongside fn's last error.
func (c *Client) retry(ctx context.Context, class idemClass, fn func(context.Context) error) (int, error) {
	pol := c.retryPolicy
	if pol.MaxAttempts < 0 {
		return 1, fn(ctx)
	}
	if !c.breaker.allow() {
		return 0, ErrBreakerOpen
	}
	var deadline time.Time
	if pol.Budget > 0 {
		deadline = time.Now().Add(pol.Budget)
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn(ctx)
		c.breaker.record(unavailableErr(err))
		if err == nil || attempt >= pol.MaxAttempts {
			return attempt, err
		}
		again, floorSec := retryable(class, err)
		if !again {
			return attempt, err
		}
		if !c.breaker.allow() {
			// This call's own 503 may have tripped it: stop hammering.
			return attempt, err
		}
		delay := backoff(pol, attempt, floorSec)
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			return attempt, err // the budget cannot fund another attempt
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return attempt, fmt.Errorf("client: %w", ctx.Err())
		}
	}
}

// backoff computes attempt's sleep: full jitter over an exponentially
// growing window, floored by the server's Retry-After when present.
func backoff(pol RetryPolicy, attempt, floorSec int) time.Duration {
	window := pol.BaseDelay << (attempt - 1)
	if window > pol.MaxDelay || window <= 0 {
		window = pol.MaxDelay
	}
	delay := rand.N(window + 1)
	if floor := time.Duration(floorSec) * time.Second; delay < floor {
		delay = floor
	}
	return delay
}

// defaultHTTPClient is the transport New installs unless WithHTTPClient
// overrides it: bounded dial, TLS and response-header waits, so a hung
// server fails the call into the retry loop instead of blocking forever
// — but no whole-request timeout, which would sever long query streams.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   16,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}
