// Package client is the typed Go client of the seqrep HTTP server
// (cmd/seqserved, internal/server). It speaks the JSON wire types of
// package api and maps non-2xx responses onto *APIError values, so
// callers branch on status codes without touching HTTP plumbing:
//
//	c := client.New("http://localhost:8080")
//	if _, err := c.Ingest(ctx, api.IngestRequest{ID: "ecg1", Values: vals}); err != nil { ... }
//	res, err := c.Query(ctx, "MATCH DISTANCE LIKE ecg1 METRIC l2 EPS 3")
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"seqrep/api"
)

// APIError is any non-2xx server response.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's Retry-After header in whole seconds (0
	// when absent). Admission-control 429s always carry one; the retry
	// loop honors it as a backoff floor.
	RetryAfter int
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports a 404 (unknown sequence id).
func (e *APIError) IsNotFound() bool { return e.StatusCode == http.StatusNotFound }

// IsConflict reports a 409 (duplicate sequence id, or an endpoint the
// server is not configured for).
func (e *APIError) IsConflict() bool { return e.StatusCode == http.StatusConflict }

// IsOverloaded reports a 429: the server's admission queue is full and
// RetryAfter says when to come back.
func (e *APIError) IsOverloaded() bool { return e.StatusCode == http.StatusTooManyRequests }

// IsUnavailable reports a 503: the server is degraded (storage-fault
// read-only mode) or otherwise refusing service.
func (e *APIError) IsUnavailable() bool { return e.StatusCode == http.StatusServiceUnavailable }

// Client talks to one seqrep server. The zero value is not usable; create
// with New. Safe for concurrent use.
type Client struct {
	base        string
	http        *http.Client
	retryPolicy RetryPolicy
	breaker     *breaker // nil when disabled
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles) for the default bounded-timeout transport.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). Unless overridden, the client uses a
// transport with bounded dial/TLS/response-header timeouts
// (WithHTTPClient) and retries transient failures with jittered backoff
// under a circuit breaker (WithRetryPolicy).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		http:        defaultHTTPClient(),
		retryPolicy: RetryPolicy{}.withDefaults(),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.retryPolicy.MaxAttempts > 0 && c.retryPolicy.BreakerThreshold > 0 {
		c.breaker = &breaker{
			threshold: c.retryPolicy.BreakerThreshold,
			cooldown:  c.retryPolicy.BreakerCooldown,
		}
	}
	return c
}

// do issues one request under the retry policy and decodes the response
// into out (ignored when nil). Non-2xx responses become *APIError.
// okCodes lists the statuses treated as success; empty means any 2xx.
// It returns the attempt count so callers can recognize
// success-via-earlier-attempt shapes (Ingest's retried 409).
func (c *Client) do(ctx context.Context, class idemClass, method, path string, body, out any, okCodes ...int) (int, error) {
	var blob []byte
	if body != nil {
		var err error
		if blob, err = json.Marshal(body); err != nil {
			return 0, fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.retry(ctx, class, func(ctx context.Context) error {
		return c.attempt(ctx, method, path, blob, out, okCodes...)
	})
}

// attempt issues exactly one request.
func (c *Client) attempt(ctx context.Context, method, path string, blob []byte, out any, okCodes ...int) error {
	var rd io.Reader
	if blob != nil {
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer res.Body.Close()
	ok := res.StatusCode >= 200 && res.StatusCode < 300
	if len(okCodes) > 0 {
		ok = false
		for _, code := range okCodes {
			if res.StatusCode == code {
				ok = true
				break
			}
		}
	}
	if !ok {
		return apiErrorFrom(res)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// apiErrorFrom drains a non-2xx response into an *APIError, capturing
// the Retry-After header when present.
func apiErrorFrom(res *http.Response) *APIError {
	var apiErr api.ErrorResponse
	msg := ""
	if blob, readErr := io.ReadAll(io.LimitReader(res.Body, 1<<16)); readErr == nil {
		if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		} else {
			msg = strings.TrimSpace(string(blob))
		}
	}
	out := &APIError{StatusCode: res.StatusCode, Message: msg}
	if ra := res.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec > 0 {
			out.RetryAfter = sec
		}
	}
	return out
}

// Query executes one query-language statement.
func (c *Client) Query(ctx context.Context, statement string) (*api.QueryResponse, error) {
	var out api.QueryResponse
	if _, err := c.do(ctx, idemSafe, http.MethodPost, "/v1/query", api.QueryRequest{Query: statement}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryStream is an open /v1/query/stream response: an iterator over the
// statement's item frames, plus the header and trailer metadata. Close it
// when done (breaking out of Frames early is fine — Close aborts the
// stream, which cancels the server-side query).
type QueryStream struct {
	body      io.ReadCloser
	rd        *bufio.Reader
	canonical string
	trailer   *api.StreamFrame
	err       error
	done      bool
}

// StreamQuery executes one statement over /v1/query/stream: similarity
// matches arrive incrementally (nearest-first under TOP n BY DISTANCE),
// so bounded or abandoned queries never pay for the full answer. The
// returned stream has already consumed the header frame; iterate Frames
// (or call Next) for the items, then inspect Trailer.
//
// Statements carrying WITHIN ERROR / APPROX answer progressively: item
// frames then carry Refine — a tier-tagged error band around one
// record's true distance that only ever tightens — and final accepted
// records arrive with Refine and Match set together. Closing the stream
// once every band is tight enough (see api.RefineFrame.Width) abandons
// the remaining refinement work on the server.
func (c *Client) StreamQuery(ctx context.Context, statement string) (*QueryStream, error) {
	blob, err := json.Marshal(api.QueryRequest{Query: statement})
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	// Only stream setup retries: once the header frame is in, frames have
	// been delivered and a mid-stream failure is the caller's to handle.
	var qs *QueryStream
	_, err = c.retry(ctx, idemSafe, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query/stream", bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		res, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if res.StatusCode != http.StatusOK {
			defer res.Body.Close()
			return apiErrorFrom(res)
		}
		s := &QueryStream{body: res.Body, rd: bufio.NewReader(res.Body)}
		header, err := s.readFrame()
		if err != nil {
			s.Close()
			return err
		}
		if header == nil || header.Canonical == "" {
			s.Close()
			return fmt.Errorf("client: stream began without a header frame")
		}
		s.canonical = header.Canonical
		qs = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return qs, nil
}

// readFrame decodes one NDJSON line, or returns (nil, nil) at EOF.
func (s *QueryStream) readFrame() (*api.StreamFrame, error) {
	line, err := s.rd.ReadBytes('\n')
	if len(line) == 0 {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("client: reading stream: %w", err)
	}
	var f api.StreamFrame
	if jsonErr := json.Unmarshal(line, &f); jsonErr != nil {
		return nil, fmt.Errorf("client: decoding stream frame: %w", jsonErr)
	}
	return &f, nil
}

// Canonical returns the statement's canonical form from the header frame.
func (s *QueryStream) Canonical() string { return s.canonical }

// Next returns the next item frame, or (nil, nil) when the stream ended
// normally (Trailer is then available). A server-reported mid-stream
// failure surfaces as an *APIError; transport failures as other errors.
func (s *QueryStream) Next() (*api.StreamFrame, error) {
	if s.done || s.err != nil {
		return nil, s.err
	}
	f, err := s.readFrame()
	if err != nil {
		s.err = err
		return nil, err
	}
	switch {
	case f == nil:
		s.done = true
		s.err = fmt.Errorf("client: stream ended without a trailer frame")
		return nil, s.err
	case f.Error != "":
		s.done = true
		s.err = &APIError{StatusCode: http.StatusOK, Message: f.Error}
		return nil, s.err
	case f.Done:
		s.done = true
		s.trailer = f
		return nil, nil
	}
	return f, nil
}

// Frames iterates the item frames; a non-nil error (if any) is the final
// pair. Breaking out of the loop early is allowed — follow with Close.
func (s *QueryStream) Frames() iter.Seq2[*api.StreamFrame, error] {
	return func(yield func(*api.StreamFrame, error) bool) {
		for {
			f, err := s.Next()
			if err != nil {
				yield(nil, err)
				return
			}
			if f == nil {
				return
			}
			if !yield(f, nil) {
				return
			}
		}
	}
}

// Trailer returns the stream's trailer frame (kind, stats, generation),
// or nil before the stream has been fully consumed.
func (s *QueryStream) Trailer() *api.StreamFrame { return s.trailer }

// Close releases the stream. Closing before the trailer aborts the HTTP
// response, which the server observes as a client disconnect and cancels
// the running query.
func (s *QueryStream) Close() error { return s.body.Close() }

// Ingest stores one sequence. Ingest is idempotent under retries: when
// an attempt's response is lost and the retry answers 409 (duplicate
// id), an earlier attempt committed the record — the call returns
// success with Duplicate set rather than surfacing the conflict. A 409
// on the first attempt is a genuine conflict and still errors.
func (c *Client) Ingest(ctx context.Context, item api.IngestRequest) (*api.IngestResponse, error) {
	var out api.IngestResponse
	attempts, err := c.do(ctx, idemIngest, http.MethodPost, "/v1/ingest", item, &out)
	if err != nil {
		var ae *APIError
		if attempts > 1 && errors.As(err, &ae) && ae.StatusCode == http.StatusConflict {
			return &api.IngestResponse{ID: item.ID, Duplicate: true}, nil
		}
		return nil, err
	}
	return &out, nil
}

// IngestBatch stores many sequences through the server's worker pool.
// Items are independent: a partial failure (HTTP 207) is NOT an error
// here — inspect BatchResponse.Failed for the per-item outcomes.
func (c *Client) IngestBatch(ctx context.Context, items []api.IngestRequest) (*api.BatchResponse, error) {
	var out api.BatchResponse
	_, err := c.do(ctx, idemNone, http.MethodPost, "/v1/ingest/batch", api.BatchRequest{Items: items}, &out,
		http.StatusOK, http.StatusMultiStatus)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Record fetches the stored state of one sequence.
func (c *Client) Record(ctx context.Context, id string) (*api.RecordResponse, error) {
	var out api.RecordResponse
	if _, err := c.do(ctx, idemSafe, http.MethodGet, "/v1/records/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Remove deletes one sequence. Removal is not idempotent (a repeat
// answers 404), so only failures the server guarantees preceded any
// application — 429 load shed, 503 degraded — are retried.
func (c *Client) Remove(ctx context.Context, id string) (*api.RemoveResponse, error) {
	var out api.RemoveResponse
	if _, err := c.do(ctx, idemNone, http.MethodDelete, "/v1/records/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SaveSnapshot persists a point-in-time snapshot on the server.
func (c *Client) SaveSnapshot(ctx context.Context) (*api.SnapshotResponse, error) {
	var out api.SnapshotResponse
	if _, err := c.do(ctx, idemSafe, http.MethodPost, "/v1/snapshot/save", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// LoadSnapshot restores the server's database from its snapshot store.
func (c *Client) LoadSnapshot(ctx context.Context) (*api.SnapshotResponse, error) {
	var out api.SnapshotResponse
	if _, err := c.do(ctx, idemSafe, http.MethodPost, "/v1/snapshot/load", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks /healthz. A degraded or unhealthy server answers 503
// with the same JSON body — that is a successful health check here (the
// response reports Status "degraded"/"unhealthy"), not an error, so
// callers can read why the node is down.
func (c *Client) Health(ctx context.Context) (*api.HealthResponse, error) {
	var out api.HealthResponse
	_, err := c.do(ctx, idemSafe, http.MethodGet, "/healthz", nil, &out,
		http.StatusOK, http.StatusServiceUnavailable)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var text string
	_, err := c.retry(ctx, idemSafe, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		res, err := c.http.Do(req)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		defer res.Body.Close()
		blob, err := io.ReadAll(res.Body)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if res.StatusCode != http.StatusOK {
			return &APIError{StatusCode: res.StatusCode, Message: strings.TrimSpace(string(blob))}
		}
		text = string(blob)
		return nil
	})
	return text, err
}
