package client

// Unit tests of the wire plumbing: APIError mapping for JSON and
// non-JSON error bodies. The client's happy paths are exercised end to
// end against the real server in internal/server's test suite.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestAPIErrorMapping(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error": "core: unknown sequence id \"x\""}`))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic page", http.StatusBadGateway)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL + "/") // trailing slash is trimmed

	ctx := context.Background()
	_, err := c.Query(ctx, "MATCH VALUE LIKE x")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *APIError", err)
	}
	if !ae.IsNotFound() || ae.Message != `core: unknown sequence id "x"` {
		t.Fatalf("APIError = %+v, want 404 with the server message", ae)
	}

	// Non-JSON error bodies degrade to their trimmed text.
	_, err = c.Health(ctx)
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *APIError", err)
	}
	if ae.StatusCode != http.StatusBadGateway || ae.Message != "plain text panic page" {
		t.Fatalf("APIError = %+v, want 502 with the raw body", ae)
	}
	if ae.IsNotFound() || ae.IsConflict() {
		t.Fatal("502 misclassified")
	}
}
