package client

// Retry-path tests against deliberately flaky httptest servers: calls
// converge once the server heals, the server's Retry-After and the
// policy's budget are both honored, non-idempotent operations are never
// double-applied, a retried ingest recognizes 409 as
// success-after-retry, and the circuit breaker stops a client from
// polling a down server.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"seqrep/api"
)

// fastPolicy retries aggressively with negligible sleeps so tests stay
// quick; the breaker is off unless a test turns it on.
func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseDelay:        time.Millisecond,
		MaxDelay:         4 * time.Millisecond,
		Budget:           -1,
		BreakerThreshold: -1,
	}
}

// flaky answers with each status in sequence, then delegates to final.
func flaky(calls *atomic.Int64, statuses []int, retryAfter string, final http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= len(statuses) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(statuses[n-1])
			w.Write([]byte(`{"error":"injected flake"}`))
			return
		}
		final(w, r)
	}
}

func ingestOK(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	w.Write([]byte(`{"id":"x","samples":8,"generation":1}`))
}

func TestRetryConvergesAfterTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flaky(&calls, []int{503, 429}, "", ingestOK))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))
	res, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1, 2, 3}})
	if err != nil {
		t.Fatalf("ingest through flakes: %v", err)
	}
	if res.Duplicate {
		t.Fatal("clean success flagged Duplicate")
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (two flakes + success)", calls.Load())
	}
}

func TestRetryHonorsRetryAfterFloor(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flaky(&calls, []int{429}, "1", ingestOK))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))
	start := time.Now()
	if _, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v despite Retry-After: 1", elapsed)
	}
}

func TestRetryBudgetStopsUnfundableSleeps(t *testing.T) {
	var calls atomic.Int64
	always503 := func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"down"}`))
	}
	ts := httptest.NewServer(http.HandlerFunc(always503))
	defer ts.Close()
	pol := fastPolicy()
	pol.MaxAttempts = 10
	pol.Budget = 200 * time.Millisecond
	c := New(ts.URL, WithRetryPolicy(pol))
	start := time.Now()
	_, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1}})
	var ae *APIError
	if !errors.As(err, &ae) || !ae.IsUnavailable() {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget of 200ms let the call run %v", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls; a 5s Retry-After does not fit a 200ms budget", calls.Load())
	}
}

func TestNonIdempotentNeverRetriedOnAmbiguity(t *testing.T) {
	// 502 means the request may have applied: Remove and IngestBatch
	// must surface it after exactly one attempt.
	var rmCalls, batchCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("DELETE /v1/records/{id}", func(w http.ResponseWriter, r *http.Request) {
		rmCalls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	})
	mux.HandleFunc("POST /v1/ingest/batch", func(w http.ResponseWriter, r *http.Request) {
		batchCalls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))

	_, err := c.Remove(context.Background(), "x")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadGateway {
		t.Fatalf("remove err = %v", err)
	}
	if rmCalls.Load() != 1 {
		t.Fatalf("ambiguous remove retried: %d calls", rmCalls.Load())
	}
	if _, err := c.IngestBatch(context.Background(), []api.IngestRequest{{ID: "x", Values: []float64{1}}}); err == nil {
		t.Fatal("batch through 502 succeeded")
	}
	if batchCalls.Load() != 1 {
		t.Fatalf("ambiguous batch retried: %d calls", batchCalls.Load())
	}
}

func TestNonIdempotentRetriesGuaranteedUnapplied(t *testing.T) {
	// 429 (and 503) are rejected before any application: safe for Remove.
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("DELETE /v1/records/{id}", flaky(&calls, []int{429}, "", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"x","sequences":0,"generation":2}`))
	}))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))
	if _, err := c.Remove(context.Background(), "x"); err != nil {
		t.Fatalf("remove through 429: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

func TestIngestDuplicateAfterRetryIsSuccess(t *testing.T) {
	// Attempt 1: the server applies the ingest but an intermediary eats
	// the response (502). Attempt 2 answers 409 — which proves attempt 1
	// committed. The call must succeed exactly once, flagged Duplicate.
	var calls atomic.Int64
	h := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte(`{"error":"upstream burp"}`))
			return
		}
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"duplicate id \"x\""}`))
	}
	ts := httptest.NewServer(http.HandlerFunc(h))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))
	res, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1, 2}})
	if err != nil {
		t.Fatalf("retried ingest: %v", err)
	}
	if !res.Duplicate || res.ID != "x" {
		t.Fatalf("response = %+v, want Duplicate for id x", res)
	}
}

func TestIngestFirstAttempt409StaysConflict(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"duplicate id"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))
	_, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1}})
	var ae *APIError
	if !errors.As(err, &ae) || !ae.IsConflict() {
		t.Fatalf("first-attempt 409 = %v, want conflict error", err)
	}
}

func TestBreakerTripsOnConsecutive503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"degraded"}`))
	}))
	defer ts.Close()
	pol := fastPolicy()
	pol.MaxAttempts = 1 // one attempt per call: the breaker counts across calls
	pol.BreakerThreshold = 3
	pol.BreakerCooldown = time.Hour
	c := New(ts.URL, WithRetryPolicy(pol))
	for i := 0; i < 3; i++ {
		if _, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1}}); err == nil {
			t.Fatal("ingest against 503 succeeded")
		}
	}
	_, err := c.Ingest(context.Background(), api.IngestRequest{ID: "x", Values: []float64{1}})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("fourth call = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls after the breaker tripped, want 3", calls.Load())
	}
}

func TestHealthDecodes503Body(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"degraded","sequences":3,"generation":7,"degraded":true,"degraded_cause":"wal: disk gone"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastPolicy()))
	hr, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health against degraded server: %v", err)
	}
	if !hr.Degraded || hr.Status != "degraded" || hr.DegradedCause == "" {
		t.Fatalf("health body = %+v", hr)
	}
}
