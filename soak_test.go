package seqrep_test

// A larger-scale integration test: a mixed corpus of several hundred
// sequences across every workload, exercising all query types with
// count-level assertions, then a persistence round trip. This is the
// closest thing to the production usage the library targets.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"seqrep"
)

func TestSoakMixedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	db, err := seqrep.New(seqrep.Config{Epsilon: 0.5, Delta: 0.25, Archive: seqrep.NewMemArchive()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))

	const perKind = 60
	// Two-peak fevers with varied geometry.
	for i := 0; i < perKind; i++ {
		first := 4 + rng.Float64()*6
		s, err := seqrep.GenerateFever(seqrep.FeverOpts{
			Samples:    97,
			FirstPeak:  first,
			SecondPeak: first + 6 + rng.Float64()*6,
			PeakWidth:  1.2 + rng.Float64(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Ingest(fmt.Sprintf("fever-%03d", i), s.ShiftValue(rng.Float64()*2)); err != nil {
			t.Fatal(err)
		}
	}
	// Three-peak controls.
	for i := 0; i < perKind/2; i++ {
		s, err := seqrep.GenerateThreePeakFever(97)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Ingest(fmt.Sprintf("three-%03d", i), s.ShiftValue(rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	// Flat controls.
	for i := 0; i < perKind/3; i++ {
		if err := db.Ingest(fmt.Sprintf("flat-%03d", i), seqrep.NewSequence(constVals(97, 98+rng.Float64()))); err != nil {
			t.Fatal(err)
		}
	}
	total := perKind + perKind/2 + perKind/3
	if db.Len() != total {
		t.Fatalf("Len = %d, want %d", db.Len(), total)
	}

	// Peak-count query: exactly the fevers.
	twoPeak, err := db.PeakCount(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(twoPeak) != perKind {
		t.Errorf("two-peak matches = %d, want %d", len(twoPeak), perKind)
	}
	// Pattern query agrees with the peak counter on this corpus.
	patIDs, err := db.MatchPattern(seqrep.TwoPeakPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(patIDs) != perKind {
		t.Errorf("pattern matches = %d, want %d", len(patIDs), perKind)
	}
	// Three-peak pattern finds the controls.
	threeIDs, err := db.MatchPattern(seqrep.ExactlyPeaksPattern(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(threeIDs) != perKind/2 {
		t.Errorf("three-peak matches = %d, want %d", len(threeIDs), perKind/2)
	}
	// Peak-unit search: 2 per fever + 3 per control.
	hits, err := db.SearchPattern(seqrep.PeakUnitPattern)
	if err != nil {
		t.Fatal(err)
	}
	wantHits := perKind*2 + (perKind/2)*3
	if len(hits) != wantHits {
		t.Errorf("peak-unit hits = %d, want %d", len(hits), wantHits)
	}
	// Interval query over all two-peak spacings (6..12h): every fever.
	im, err := db.IntervalQuery(9, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(im) < perKind*9/10 {
		t.Errorf("interval matches = %d, want ~%d", len(im), perKind)
	}

	// Remove a slice of records and re-check global consistency.
	for i := 0; i < 10; i++ {
		if err := db.Remove(fmt.Sprintf("fever-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	twoPeak, err = db.PeakCount(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(twoPeak) != perKind-10 {
		t.Errorf("after removal: %d matches", len(twoPeak))
	}

	// Persistence round trip preserves every query result.
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := seqrep.Load(&buf, seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reIDs, err := loaded.MatchPattern(seqrep.TwoPeakPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(reIDs) != perKind-10 {
		t.Errorf("loaded pattern matches = %d", len(reIDs))
	}
	st := loaded.Stats()
	if st.Sequences != db.Len() || st.Segments == 0 {
		t.Errorf("loaded stats %+v", st)
	}
}

func constVals(n int, v float64) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return vals
}
