package main

// Kill -9 end-to-end test of the durable write path: a real seqserved
// process ingesting under concurrent load is SIGKILLed mid-flight —
// no drain, no final checkpoint, a torn WAL tail likely — and a second
// process booting the same data directory must still hold every write
// the first one acknowledged. This is the contract docs/DURABILITY.md
// states, tested at the outermost layer; CI runs it in the
// fault-injection job.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"seqrep/api"
	"seqrep/client"
)

// buildServer compiles the seqserved binary once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "seqserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building seqserved: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, cl *client.Client, timeout time.Duration) *api.HealthResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		h, err := cl.Health(ctx)
		cancel()
		if err == nil {
			return h
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("server did not become healthy in time")
	return nil
}

// killSeq renders a small two-bump curve; varying i keeps items distinct.
func killSeq(i int) []float64 {
	vals := make([]float64, 40)
	for j := range vals {
		d1 := float64(j - 8 - i%5)
		d2 := float64(j - 28 + i%7)
		vals[j] = 98 + 2.2/(1+d1*d1) + 1.4/(1+d2*d2)
	}
	return vals
}

func TestKillNineLosesNoAcknowledgedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real server process")
	}
	bin := buildServer(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr,
			"-data-dir", dataDir,
			"-checkpoint-interval", "300ms", // checkpoints race the load on purpose
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting seqserved: %v", err)
		}
		return cmd
	}

	cmd := start()
	defer cmd.Process.Kill()
	cl := client.New("http://" + addr)
	waitHealthy(t, cl, 10*time.Second)

	// Ingest under concurrent load until the process is shot. Only
	// writes whose HTTP response arrived count as acknowledged; a write
	// cut down mid-request may or may not have landed (the server can
	// have committed it but lost the response — recovery keeping it is
	// fine, we only assert nothing acknowledged is missing).
	const writers = 4
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		acked []string
	)
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("w%d-%d", g, i)
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := cl.Ingest(ctx, api.IngestRequest{ID: id, Values: killSeq(g*1000 + i)})
				cancel()
				if err != nil {
					return // the kill landed; in-flight write unacknowledged
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}(g)
	}

	// Let the load overlap at least one background checkpoint, then
	// shoot the process with no warning.
	time.Sleep(700 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	close(stop)
	wg.Wait()
	cmd.Wait()
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged before the kill; the test proved nothing")
	}
	t.Logf("killed server with %d acknowledged writes", len(acked))

	// Reboot the directory: every acknowledged write must be there.
	cmd2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	h := waitHealthy(t, cl, 20*time.Second)
	if !h.Durable {
		t.Fatal("rebooted server does not report durable mode")
	}
	if h.Sequences < len(acked) {
		t.Fatalf("rebooted server holds %d sequences, fewer than the %d acknowledged", h.Sequences, len(acked))
	}
	ctx := context.Background()
	for _, id := range acked {
		if _, err := cl.Record(ctx, id); err != nil {
			t.Errorf("acknowledged %s lost across kill -9: %v", id, err)
		}
	}
}

// TestSIGKILLWhileDegradedLosesNoAcknowledgedWrite is the kill-9 test's
// evil twin: the server's disk "fails" mid-service (an injected WAL
// sync fault armed by the chaos flags), the database degrades to
// read-only — and THEN the process is SIGKILLed, mid-episode, with no
// drain. The reboot, on a healthy disk, must hold every write the
// degraded server acknowledged before the fault and must be fully
// healthy. Writes rejected during the window may reappear (a failed
// fsync leaves the page cache unknowable — docs/RELIABILITY.md) but
// none of them was ever acknowledged, so nothing acknowledged is lost.
func TestSIGKILLWhileDegradedLosesNoAcknowledgedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real server process")
	}
	bin := buildServer(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)

	// First life: the WAL's 6th sync and every one after it fails.
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-chaos-wal-fail-after", "5",
		"-chaos-wal-fail-count", "-1",
		"-probe-interval", "-1s", // the disk never heals in this life
	)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting seqserved: %v", err)
	}
	defer cmd.Process.Kill()

	// No client-side retries: every response code is observed raw.
	cl := client.New("http://"+addr, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: -1}))
	waitHealthy(t, cl, 10*time.Second)

	// Write until the fault bites. Sequential ingests sync one frame
	// each, so acknowledgements stop at the armed boundary.
	ctx := context.Background()
	var acked []string
	degradedAt := -1
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("pre-%d", i)
		_, err := cl.Ingest(ctx, api.IngestRequest{ID: id, Values: killSeq(i)})
		if err == nil {
			acked = append(acked, id)
			continue
		}
		var ae *client.APIError
		if !errors.As(err, &ae) || !ae.IsUnavailable() {
			t.Fatalf("ingest %d failed outside the degraded contract: %v", i, err)
		}
		degradedAt = i
		break
	}
	if degradedAt < 0 {
		t.Fatalf("20 ingests all succeeded; the chaos fault never fired")
	}
	if len(acked) == 0 {
		t.Fatal("no writes acknowledged before the fault; the test proved nothing")
	}
	t.Logf("degraded after %d acknowledged writes", len(acked))

	// The degraded window: every write answers 503 — never a 2xx ack the
	// disk cannot honor, never a hang.
	for i := 0; i < 5; i++ {
		_, err := cl.Ingest(ctx, api.IngestRequest{ID: fmt.Sprintf("doomed-%d", i), Values: killSeq(i)})
		var ae *client.APIError
		if !errors.As(err, &ae) || !ae.IsUnavailable() {
			t.Fatalf("degraded write %d = %v, want 503", i, err)
		}
	}
	// Health tells the truth, and reads keep serving.
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("health while degraded: %v", err)
	}
	if !h.Degraded || h.Status != "degraded" {
		t.Fatalf("degraded health = %+v", h)
	}
	if _, err := cl.Record(ctx, acked[0]); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}

	// Shoot the degraded process. No drain, no checkpoint.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd.Wait()

	// Second life: healthy disk. Everything acknowledged must be there
	// and write service must be fully restored.
	cmd2 := exec.Command(bin, "-addr", addr, "-data-dir", dataDir)
	cmd2.Stdout, cmd2.Stderr = os.Stderr, os.Stderr
	if err := cmd2.Start(); err != nil {
		t.Fatalf("restarting seqserved: %v", err)
	}
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	h = waitHealthy(t, cl, 20*time.Second)
	if h.Degraded || h.Status != "ok" {
		t.Fatalf("rebooted health = %+v, want ok", h)
	}
	for _, id := range acked {
		if _, err := cl.Record(ctx, id); err != nil {
			t.Errorf("acknowledged %s lost across degraded kill -9: %v", id, err)
		}
	}
	if _, err := cl.Ingest(ctx, api.IngestRequest{ID: "post-reboot", Values: killSeq(99)}); err != nil {
		t.Fatalf("write after reboot: %v", err)
	}
}
