// Seqserved serves a seqrep sequence database over HTTP/JSON: the full
// query language (including EXPLAIN), worker-pool batch ingestion, record
// CRUD, checkpointing, health and Prometheus metrics — see
// docs/SERVER.md for the endpoint reference and docs/DURABILITY.md for
// the durability contract.
//
// Usage:
//
//	seqserved -addr :8080 -data-dir ./data -archive ./raws
//
// With -data-dir, the database is durable: boot recovers the directory's
// on-disk segment tier plus the write-ahead-log tail to the exact
// acknowledged pre-crash state, every write is WAL-appended and fsync'd
// (group commit) before it is acknowledged, and checkpoints — a delta
// segment flush, then log truncation, then threshold compaction — run on
// the -checkpoint-interval timer, on /v1/snapshot/save, and during
// graceful shutdown (see docs/STORAGE.md). Failed checkpoints are logged
// and surface in /healthz (checkpoint_failures, last_checkpoint_error)
// and /metrics (seqserved_checkpoint_failures_total) so unbounded log
// growth cannot go unnoticed. On SIGINT/SIGTERM the server stops
// accepting connections, drains in-flight requests (up to
// -drain-timeout, force-closing stragglers), then checkpoints and
// closes the log — the final checkpoint never races live traffic.
//
// With -memory-budget, a durable server serves datasets larger than
// RAM: record payloads beyond the budget are evicted (coldest first)
// and paged back in from the segment tier on demand; dirty records stay
// pinned resident until a checkpoint makes them durable. /healthz and
// /metrics report resident_records, resident_bytes, evictions and cold
// hits (see docs/STORAGE.md "Residency & paging").
//
// Overload and fault behavior (docs/RELIABILITY.md): admission control
// bounds concurrent work (-admission-limit, -admission-queue) and sheds
// overflow with 429 + Retry-After; a storage fault flips the database
// into read-only degraded mode (writes 503, reads keep serving) and a
// supervised probe (-probe-interval) restores write service when the
// disk recovers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seqrep"
	"seqrep/internal/chaos"
	"seqrep/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "seqserved: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dataDir  = flag.String("data-dir", "", "durable data directory (on-disk segments + write-ahead log): recovered at boot, WAL-appended on every write, checkpointed on the timer, on /v1/snapshot/save and at shutdown (empty = in-memory only)")
		ckptIvl  = flag.Duration("checkpoint-interval", 5*time.Minute, "background checkpoint period for -data-dir (0 disables the timer; checkpoints still run on /v1/snapshot/save and shutdown)")
		compact  = flag.Int("compact-threshold", 0, "segment count at which a checkpoint compacts the on-disk tier (0 = default 8, negative disables compaction)")
		segCach  = flag.Int64("segment-cache", 0, "segment payload LRU cache bytes (0 = default 32MiB, negative disables)")
		memBudg  = flag.Int64("memory-budget", 0, "resident record-payload byte budget for -data-dir servers: cold payloads are evicted to the segment tier and paged back in on demand (<= 0 keeps every record fully resident)")
		archive  = flag.String("archive", "", "directory for a file-backed raw-sequence archive (empty = no archive)")
		epsilon  = flag.Float64("epsilon", 0, "breaking tolerance for a new database (0 = default 0.5)")
		delta    = flag.Float64("delta", 0, "slope threshold for a new database (0 = default 0.25)")
		bucket   = flag.Float64("bucket", 0, "interval-index bucket width for a new database (0 = default 1)")
		shards   = flag.Int("shards", 0, "record shard count (0 = default 16)")
		workers  = flag.Int("workers", 0, "ingest/query worker pool size (0 = GOMAXPROCS)")
		coeffs   = flag.Int("coeffs", 0, "DFT coefficients in the query-planner feature index (0 = default 8, negative disables)")
		leaf     = flag.Int("leaf", 0, "vantage-point-tree leaf size in the feature index (0 = default 16, negative pins candidate generation to the linear feature scan)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty disables)")
		cache    = flag.Int("cache", 0, "result cache entries (0 = default 256, negative disables)")
		maxBody  = flag.Int64("max-body", 0, "request body cap in bytes (0 = default 32MiB, negative disables)")
		queryTO  = flag.Duration("query-timeout", 0, "per-statement execution cap for /v1/query and /v1/query/stream (0 disables; exceeded queries answer 504 / an error frame)")
		queryLim = flag.Int("query-limit", 0, "server-wide cap on results per statement (0 disables; capped answers report stats.truncated)")
		drainOld = flag.Duration("drain", 15*time.Second, "deprecated alias for -drain-timeout")
		drainTO  = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain timeout: in-flight requests get this long to finish before their connections are force-closed and the final checkpoint runs")
		readTO   = flag.Duration("read-timeout", time.Minute, "per-request read timeout (headers + body; 0 disables)")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout (0 disables)")
		admitLim = flag.Int("admission-limit", 0, "weighted admission-control concurrency budget: queries cost more slots than ingests, overflow queues then sheds with 429 + Retry-After (0 = default 64, negative disables)")
		admitQ   = flag.Int("admission-queue", 0, "bounded admission wait-queue weight beyond the concurrency budget (0 = default 256, negative disables queuing)")
		ckptFail = flag.Int("checkpoint-fail-limit", 0, "consecutive checkpoint failures at which /healthz reports unhealthy with 503 (0 = default 3, negative disables)")
		probeIvl = flag.Duration("probe-interval", 0, "storage-recovery probe period while degraded: each tick tests the write path and restores write service when the disk recovers (0 = default 2s, negative disables)")

		// Chaos flags for the reliability e2e suite only: arm a one-shot
		// fsync fault window in the write-ahead log so a test can observe
		// a real process degrade and recover (or be killed mid-episode).
		chaosAfter = flag.Int64("chaos-wal-fail-after", 0, "TESTING ONLY: number of WAL syncs that succeed before injected failures begin (with -chaos-wal-fail-count)")
		chaosCount = flag.Int64("chaos-wal-fail-count", 0, "TESTING ONLY: number of injected WAL sync failures; after the window the fault heals (negative = fail forever)")
	)
	flag.Parse()
	// -drain-timeout wins when both are given; the old spelling still
	// works alone.
	drain := drainTO
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["drain"] && !set["drain-timeout"] {
		drain = drainOld
	}

	cfg := seqrep.Config{
		Epsilon:               *epsilon,
		Delta:                 *delta,
		BucketWidth:           *bucket,
		Shards:                *shards,
		Workers:               *workers,
		IndexCoeffs:           *coeffs,
		IndexLeaf:             *leaf,
		CompactThreshold:      *compact,
		SegmentCacheBytes:     *segCach,
		MemoryBudget:          *memBudg,
		RecoveryProbeInterval: *probeIvl,
	}
	if *archive != "" {
		arch, err := seqrep.NewFileArchive(*archive)
		if err != nil {
			return err
		}
		cfg.Archive = arch
	}

	var (
		db   *seqrep.DB
		snap *server.DirSnapshotter
		err  error
	)
	if *dataDir != "" {
		snap = &server.DirSnapshotter{Dir: *dataDir, Config: cfg}
		db, err = snap.Open()
		if err != nil {
			return fmt.Errorf("opening data dir: %w", err)
		}
		rec := db.Recovery()
		log.Printf("recovered %s: %d sequences (wal replayed %d records: %d applied, %d covered by snapshot, %d failed)",
			*dataDir, db.Len(), rec.Replayed, rec.Applied, rec.SkippedDuplicate+rec.SkippedMissing, rec.Failed)
	} else {
		db, err = seqrep.New(cfg)
		if err != nil {
			return err
		}
	}
	defer db.Close()

	if *chaosCount != 0 {
		f := &chaos.Fault{Kind: chaos.DiskError, After: *chaosAfter, Count: *chaosCount}
		db.SetWALFault(nil, f.Hook())
		log.Printf("CHAOS: wal sync faults armed after %d syncs for %d failures", *chaosAfter, *chaosCount)
	}

	srvCfg := server.Config{
		DB:                  db,
		CacheSize:           *cache,
		MaxBodyBytes:        *maxBody,
		QueryTimeout:        *queryTO,
		QueryLimit:          *queryLim,
		AdmissionLimit:      *admitLim,
		AdmissionQueue:      *admitQ,
		CheckpointFailLimit: *ckptFail,
	}
	if snap != nil {
		srvCfg.Snapshotter = snap
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		return err
	}

	// Background checkpoints bound the log replay a crash would cost.
	// The loop stops with the process; a checkpoint racing shutdown's
	// final checkpoint is safe (they serialize inside the engine).
	if snap != nil && *ckptIvl > 0 {
		ticker := time.NewTicker(*ckptIvl)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				if err := srv.Snapshot(); err != nil {
					log.Printf("background checkpoint: %v", err)
				} else if st, ok := srv.DB().WALStats(); ok {
					log.Printf("checkpoint complete: %d sequences, wal depth %d records", srv.DB().Len(), st.Records)
				}
			}
		}()
	}

	// ReadTimeout covers the body too (a slow-body client cannot pin a
	// goroutine past it), IdleTimeout reaps parked keep-alives;
	// WriteTimeout stays off so long-running queries can stream their
	// answer.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
	}

	// The profiling endpoint listens on its own address so it is never
	// exposed on the serving port; it shares nothing with the API mux.
	if *pprofA != "" {
		dbgMux := http.NewServeMux()
		dbgMux.HandleFunc("/debug/pprof/", pprof.Index)
		dbgMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbgMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbgMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbgMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofA)
			if err := http.ListenAndServe(*pprofA, dbgMux); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %s, draining (timeout %s)", sig, *drain)
	}

	// Shutdown closes the listener immediately (no new connections) and
	// waits for in-flight requests; on timeout, Close force-drops the
	// stragglers. Either way nothing is accepting or in flight by the
	// time the final checkpoint runs — it never races live writes.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete, force-closing connections: %v", err)
		httpSrv.Close()
	}
	if snap != nil {
		// Every acknowledged write is already WAL-durable; the final
		// checkpoint just makes the next boot replay-free.
		if err := srv.Snapshot(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		log.Printf("checkpoint saved to %s (%d sequences)", *dataDir, srv.DB().Len())
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
