package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"
	"time"

	"seqrep/internal/breaking"
	"seqrep/internal/dft"
	"seqrep/internal/feature"
	"seqrep/internal/fit"
	"seqrep/internal/pattern"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
	"seqrep/internal/wavelet"
)

// expRobustness verifies §4.3 robustness empirically: points inserted on a
// segment's representing line shift breakpoints by at most one position.
func expRobustness(out io.Writer) error {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	b := breaking.Interpolation(0.5)
	base, err := b.Break(fever)
	if err != nil {
		return err
	}
	baseBPs := breaking.Breakpoints(base)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "insertion point\tbreakpoints before\tbreakpoints after\tmax shift (samples)")
	for _, g := range base {
		if g.Len() < 6 {
			continue
		}
		mid := (fever[g.Lo].T + fever[g.Hi].T) / 2
		tIns := mid + 0.01
		p := seq.Point{T: tIns, V: g.Curve.Eval(tIns)}
		augmented, err := fever.Insert(p)
		if err != nil {
			return err
		}
		segs2, err := b.Break(augmented)
		if err != nil {
			return err
		}
		after := breaking.Breakpoints(segs2)
		maxShift := breakpointShift(fever, augmented, baseBPs, after)
		fmt.Fprintf(w, "t=%.2f on segment [%d,%d]\t%d\t%d\t%s\n",
			tIns, g.Lo, g.Hi, len(baseBPs), len(after), maxShift)
	}
	return w.Flush()
}

// bpDiff counts breakpoints present in exactly one of the two sets.
func bpDiff(a, b []int) int {
	inA := map[int]bool{}
	for _, x := range a {
		inA[x] = true
	}
	diff := 0
	for _, x := range b {
		if !inA[x] {
			diff++
		} else {
			delete(inA, x)
		}
	}
	return diff + len(inA)
}

// breakpointShift reports the worst time displacement between matched
// breakpoints, or a count mismatch.
func breakpointShift(orig, aug seq.Sequence, before, after []int) string {
	if len(before) != len(after) {
		return fmt.Sprintf("COUNT CHANGED (%d -> %d)", len(before), len(after))
	}
	worst := 0.0
	for i := range before {
		d := math.Abs(orig[before[i]].T - aug[after[i]].T)
		if d > worst {
			worst = d
		}
	}
	// One sample step is the paper's permitted displacement.
	step := orig[1].T - orig[0].T
	return fmt.Sprintf("%.3f (%.2f sample steps)", worst, worst/step)
}

// expConsistency verifies §4.3 consistency: feature-preserving transforms
// produce corresponding breakpoints.
func expConsistency(out io.Writer) error {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	base, err := breaking.Interpolation(0.5).Break(fever)
	if err != nil {
		return err
	}
	baseBPs := breaking.Breakpoints(base)

	cases := []struct {
		name string
		s    seq.Sequence
		eps  float64
	}{
		{"time shift +100h", fever.ShiftTime(100), 0.5},
		{"amplitude shift +5", fever.ShiftValue(5), 0.5},
		{"amplitude scale x2 (ε rescaled)", fever.ScaleAbout(97, 2), 1.0},
		{"dilation x2 in time", fever.Dilate(2), 0.5},
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "transformation\tbreakpoint indexes equal?\tcount")
	fmt.Fprintf(w, "original\t-\t%d\n", len(baseBPs))
	for _, c := range cases {
		segs, err := breaking.Interpolation(c.eps).Break(c.s)
		if err != nil {
			return err
		}
		got := breaking.Breakpoints(segs)
		equal := len(got) == len(baseBPs)
		if equal {
			for i := range got {
				if got[i] != baseBPs[i] {
					equal = false
					break
				}
			}
		}
		fmt.Fprintf(w, "%s\t%v\t%d\n", c.name, equal, len(got))
	}
	return w.Flush()
}

// expDFTBaseline reproduces the §3 argument: main-frequency comparison
// (the DFT prior art) cannot recognize dilation/contraction similarity,
// while the feature representation can.
func expDFTBaseline(out io.Writer) error {
	// Periodic signals make the frequency argument crisp.
	base := synth.Sine(128, 10, 16, 0)
	dilated := synth.Sine(128, 10, 32, 0)   // frequency halved
	contracted := synth.Sine(128, 10, 8, 0) // frequency doubled
	shifted := base.ShiftValue(3)

	twoPlus := pattern.MustCompile(pattern.AtLeastPeaks(2))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sequence\tmain DFT bin\tDFT feature distance to base\tpeak structure match (U+F*D...)")
	// k=20 coefficients cover every dominant bin here, so the distances
	// reflect genuine spectral displacement rather than truncation.
	const k = 20
	for _, c := range []struct {
		name string
		s    seq.Sequence
	}{{"base (period 16)", base}, {"dilated (period 32)", dilated}, {"contracted (period 8)", contracted}, {"amplitude shift +3", shifted}} {
		bin, _ := dft.MainFrequency(c.s.Values())
		fb, err := dft.Features(base.Values(), k)
		if err != nil {
			return err
		}
		fc, err := dft.Features(c.s.Values(), k)
		if err != nil {
			return err
		}
		fd, err := dft.FeatureDistance(fb, fc)
		if err != nil {
			return err
		}
		segs, err := breaking.Interpolation(0.8).Break(c.s)
		if err != nil {
			return err
		}
		fs, err := rep.Build(c.s, segs, nil)
		if err != nil {
			return err
		}
		symbols, err := feature.Symbolize(fs, 0.25)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%v\n", c.name, bin, fd, twoPlus.Match(symbols))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nDilation/contraction moves the dominant frequency bin and blows up the DFT")
	fmt.Fprintln(out, "feature distance, so frequency-domain similarity misses them; the slope-sign")
	fmt.Fprintln(out, "representation still sees the same repeating peak structure.")
	return nil
}

// expAlgos compares every breaking algorithm on the same ECG (§5.1):
// segment count, error, fragmentation, and wall-clock time, including the
// O(peaks·n) vs O(n²) contrast the paper reports.
func expAlgos(out io.Writer) error {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		return err
	}
	breakers := []breaking.Breaker{
		breaking.Interpolation(10),
		breaking.Regression(10),
		breaking.Bezier(10),
		&breaking.Offline{Fitter: fit.PolynomialFitter{Degree: 2}, Epsilon: 10},
		&breaking.DP{SegmentCost: 300, ErrorWeight: 1},
		breaking.NewOnline(10),
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tsegments\tmax dev\tRMSE\tfragmentation\tavg len\ttime")
	for _, b := range breakers {
		start := time.Now()
		segs, err := b.Break(ecg)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		st, err := breaking.Measure(ecg, segs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2f\t%.2f\t%.1f\t%v\n",
			b.Name(), st.NumSegments, st.MaxDeviation, st.RMSE, st.Fragmentation, st.AvgLen,
			elapsed.Round(10*time.Microsecond))
	}
	return w.Flush()
}

// expOnline quantifies online-vs-offline breakpoint agreement on clean and
// noisy piecewise-linear data (§5.1: online algorithms' "obvious
// deficiency is possible lack of accuracy").
func expOnline(out io.Writer) error {
	mk := func(noise float64) seq.Sequence {
		vals := make([]float64, 90)
		for i := 0; i < 30; i++ {
			vals[i] = float64(i) * 2
		}
		for i := 30; i < 60; i++ {
			vals[i] = 60 - float64(i-30)*2
		}
		for i := 60; i < 90; i++ {
			vals[i] = float64(i-60) * 1.5
		}
		s := seq.New(vals)
		if noise > 0 {
			s = s.AddNoise(rand.New(rand.NewSource(4)), noise)
		}
		return s
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "input\toffline breakpoints\tonline breakpoints\tagreement (±2 samples)")
	for _, c := range []struct {
		name  string
		noise float64
		eps   float64
	}{{"clean corners", 0, 0.5}, {"noisy corners (σ=0.4)", 0.4, 1.5}} {
		s := mk(c.noise)
		off, err := breaking.Interpolation(c.eps).Break(s)
		if err != nil {
			return err
		}
		on, err := breaking.NewOnline(c.eps).Break(s)
		if err != nil {
			return err
		}
		offBPs := breaking.Breakpoints(off)
		onBPs := breaking.Breakpoints(on)
		agree := 0
		for _, ob := range offBPs {
			for _, nb := range onBPs {
				if math.Abs(float64(ob-nb)) <= 2 {
					agree++
					break
				}
			}
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%d/%d\n", c.name, offBPs, onBPs, agree, len(offBPs))
	}
	return w.Flush()
}

// expWavelet reproduces the §7 goal: compress with wavelets such that
// features (peaks) survive in the compressed form.
func expWavelet(out io.Writer) error {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kept coefficients\tRMSE\tpeaks in reconstruction\tground truth peaks")
	for _, keep := range []int{16, 32, 64, 128, 256} {
		c, orig, err := wavelet.Compress(ecg.Values(), 9, keep)
		if err != nil {
			return err
		}
		back, err := c.Decompress(orig)
		if err != nil {
			return err
		}
		recon := seq.New(back)
		segs, err := breaking.Interpolation(10).Break(recon)
		if err != nil {
			return err
		}
		fs, err := rep.Build(recon, segs, nil)
		if err != nil {
			return err
		}
		peaks, err := feature.Peaks(fs, 1)
		if err != nil {
			return err
		}
		var mse float64
		for i := range back {
			d := back[i] - ecg[i].V
			mse += d * d
		}
		fmt.Fprintf(w, "%d\t%.2f\t%d\t%d\n", c.StoredCoefficients(),
			math.Sqrt(mse/float64(len(back))), len(peaks), len(rPeaks))
	}
	return w.Flush()
}

// expEpsSweep ablates the ε tolerance: segments, compression and error as
// ε varies on the same ECG.
func expEpsSweep(out io.Writer) error {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ε\tsegments\tratio (paper accounting)\tRMSE\tmax dev")
	for _, eps := range []float64{2, 5, 10, 20, 40, 80} {
		segs, err := breaking.Interpolation(eps).Break(ecg)
		if err != nil {
			return err
		}
		fs, err := rep.Build(ecg, segs, nil)
		if err != nil {
			return err
		}
		rmse, linf, err := fs.ErrorAgainst(ecg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%g\t%d\t%.1fx\t%.2f\t%.1f\n", eps, fs.NumSegments(), fs.PaperCompressionRatio(), rmse, linf)
	}
	return w.Flush()
}

// expDeltaSweep ablates the slope threshold δ: how the symbol string and
// the two-peak query outcome change.
func expDeltaSweep(out io.Writer) error {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	segs, err := breaking.Interpolation(0.5).Break(fever)
	if err != nil {
		return err
	}
	fs, err := rep.Build(fever, segs, fit.RegressionFitter{})
	if err != nil {
		return err
	}
	two := pattern.MustCompile(pattern.TwoPeak())
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "δ\tsymbols\ttwo-peak match")
	for _, delta := range []float64{0, 0.1, 0.25, 0.5, 1, 2, 5} {
		symbols, err := feature.Symbolize(fs, delta)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%g\t%s\t%v\n", delta, symbols, two.Match(symbols))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nToo large a δ flattens the flanks away and the peaks disappear; the paper's")
	fmt.Fprintln(out, "δ=0.25 sits inside the wide stable band.")
	return nil
}

// expSplitRule ablates steps 4a-4c of Figure 8 (assign the breakpoint to
// the closer side) against the naive always-right assignment.
func expSplitRule(out io.Writer) error {
	rng := rand.New(rand.NewSource(9))
	walk, err := synth.RandomWalk(rng, 400)
	if err != nil {
		return err
	}
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		return err
	}
	// An asymmetric staircase: ownership of each riser point is genuinely
	// ambiguous between the plateaus, which is exactly what steps 4a-4c
	// arbitrate.
	stair := make([]float64, 0, 60)
	for lvl := 0; lvl < 3; lvl++ {
		for i := 0; i < 18; i++ {
			stair = append(stair, float64(lvl)*10)
		}
		stair = append(stair, float64(lvl)*10+6) // lone riser sample
	}
	staircase := seq.New(stair)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "input\trule\tsegments\tRMSE\tfragmentation\tbreakpoints moved vs paper rule")
	for _, c := range []struct {
		name string
		s    seq.Sequence
		eps  float64
	}{{"random walk", walk, 3}, {"ecg", ecg, 10}, {"staircase", staircase, 1}} {
		var paperBPs []int
		for _, naive := range []bool{false, true} {
			b := &breaking.Offline{Fitter: fit.InterpolationFitter{}, Epsilon: c.eps, NaiveSplit: naive}
			segs, err := b.Break(c.s)
			if err != nil {
				return err
			}
			st, err := breaking.Measure(c.s, segs)
			if err != nil {
				return err
			}
			bps := breaking.Breakpoints(segs)
			rule, movedCell := "closer-side (paper)", "-"
			if naive {
				rule = "naive right"
				movedCell = fmt.Sprintf("%d", bpDiff(paperBPs, bps))
			} else {
				paperBPs = bps
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\t%.2f\t%s\n", c.name, rule, st.NumSegments, st.RMSE, st.Fragmentation, movedCell)
		}
	}
	return w.Flush()
}
