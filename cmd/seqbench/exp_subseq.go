package main

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"seqrep/internal/core"
	"seqrep/internal/dft"
	"seqrep/internal/synth"
)

// expSubseq quantifies the paper's §3 claim against the FRM94 baseline:
// "their approach is based on indexing over all fixed-length subsequences
// of each sequence. We claim that not all subsequences are of interest."
// The feature-level subsequence query (a pattern over ~16 slope symbols)
// is compared with the sliding-window Euclidean matcher that must visit
// all ~400 windows of raw samples.
func expSubseq(out io.Writer) error {
	top, bottom, err := ecgPair()
	if err != nil {
		return err
	}
	db, err := core.New(core.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		return err
	}
	if err := db.Ingest("ecg1", top); err != nil {
		return err
	}
	if err := db.Ingest("ecg2", bottom); err != nil {
		return err
	}

	// Feature-level query: one heartbeat anywhere — a rise, an optional
	// flat crest, a fall.
	start := time.Now()
	hits, err := db.SearchPattern("U+F*D+")
	if err != nil {
		return err
	}
	featTime := time.Since(start)

	// Baseline: FRM sliding window with a one-beat exemplar cut from ecg1
	// (samples 40..110 bracket the first R peak), ε chosen to catch every
	// beat of both traces.
	exemplar := top.Slice(40, 110).Clone()
	start = time.Now()
	w1, err := dft.SubsequenceMatch("ecg1", top, exemplar, 4, 120)
	if err != nil {
		return err
	}
	w2, err := dft.SubsequenceMatch("ecg2", bottom, exemplar, 4, 120)
	if err != nil {
		return err
	}
	frmTime := time.Since(start)

	// Count distinct beats found by the baseline: cluster overlapping
	// window hits, per sequence.
	beats := 0
	for _, hits := range [][]dft.WindowMatch{w1, w2} {
		lastEnd := -1 << 30
		for _, h := range hits {
			if h.Offset > lastEnd {
				beats++
				lastEnd = h.Offset + len(exemplar)/2
			}
		}
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tunits examined\tbeats found\ttime")
	totalSymbols := 0
	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		totalSymbols += len(rec.Profile.Symbols)
	}
	fmt.Fprintf(w, "feature pattern U+F*D+ over representation\t%d symbols\t%d\t%v\n",
		totalSymbols, len(hits), featTime.Round(time.Microsecond))
	windows := (len(top) - len(exemplar) + 1) + (len(bottom) - len(exemplar) + 1)
	fmt.Fprintf(w, "FRM sliding window over raw samples\t%d windows x %d samples\t%d\t%v\n",
		windows, len(exemplar), beats, frmTime.Round(time.Microsecond))
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nThe feature query finds all 8 beats from ~30 symbols; the window matcher")
	fmt.Fprintln(out, "re-examines nearly every raw sample per window and, being value-based, can")
	fmt.Fprintln(out, "still miss an irregular beat at a fixed ε — the §3 point that indexing all")
	fmt.Fprintln(out, "subsequences is costly and no substitute for feature-level matching.")
	return nil
}

// expMelody demonstrates the music motivation: contour queries invariant
// to transposition and tempo (see examples/melody for the full program).
func expMelody(out io.Writer) error {
	theme := []int{0, 1, 2, 0, -2, -1, -2, -2, 0, 2, 2}
	db, err := core.New(core.Config{Epsilon: 0.3, Delta: 0.1})
	if err != nil {
		return err
	}
	base, err := synth.Melody(theme, synth.MelodyOpts{})
	if err != nil {
		return err
	}
	fast, err := synth.Melody(theme, synth.MelodyOpts{SamplesPerBeat: 4})
	if err != nil {
		return err
	}
	slow, err := synth.ChangeTempo(synth.Transpose(base, -12), 1.5)
	if err != nil {
		return err
	}
	if err := db.Ingest("original", base); err != nil {
		return err
	}
	if err := db.Ingest("transposed", synth.Transpose(base, 7)); err != nil {
		return err
	}
	if err := db.Ingest("slow-low", slow); err != nil {
		return err
	}
	if err := db.Ingest("fast", fast); err != nil {
		return err
	}
	other, err := synth.Melody([]int{2, 2, 1, -1, -2, -2, 3}, synth.MelodyOpts{})
	if err != nil {
		return err
	}
	if err := db.Ingest("different-tune", other); err != nil {
		return err
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rendition\tcontour symbols")
	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		fmt.Fprintf(w, "%s\t%s\n", id, rec.Profile.Symbols)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Contour query built from the original's skeleton.
	rec, _ := db.Record("original")
	pat := "F*"
	for i := 0; i < len(rec.Profile.Symbols); i++ {
		if c := rec.Profile.Symbols[i]; c != 'F' {
			pat += string(c) + "+F*"
		}
	}
	ids, err := db.MatchPattern(pat)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ncontour query %s\nmatched: %v (the different tune is excluded)\n", pat, ids)
	return nil
}
