package main

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"seqrep/internal/breaking"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

// expPredict exercises the representation property the paper lists in
// §2.3: "can be used to predict/deduce unsampled points". Every k-th
// sample is withheld before breaking; the representation is then evaluated
// at the withheld times and compared against the true values.
func expPredict(out io.Writer) error {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 193}) // dense ground truth
	if err != nil {
		return err
	}
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sequence\tε\twithheld\tprediction RMSE\tprediction max err")
	for _, c := range []struct {
		name string
		s    seq.Sequence
		eps  float64
	}{{"fever", fever, 0.5}, {"ecg", ecg, 10}} {
		for _, k := range []int{2, 4} {
			var kept seq.Sequence
			var held []seq.Point
			for i, p := range c.s {
				if i%k == k-1 {
					held = append(held, p)
				} else {
					kept = append(kept, p)
				}
			}
			segs, err := breaking.Interpolation(c.eps).Break(kept)
			if err != nil {
				return err
			}
			fs, err := rep.Build(kept, segs, nil)
			if err != nil {
				return err
			}
			var sse, worst float64
			for _, p := range held {
				got, err := fs.ValueAt(p.T)
				if err != nil {
					return err
				}
				d := math.Abs(got - p.V)
				sse += d * d
				if d > worst {
					worst = d
				}
			}
			fmt.Fprintf(w, "%s\t%g\t1 in %d\t%.3f\t%.3f\n",
				c.name, c.eps, k, math.Sqrt(sse/float64(len(held))), worst)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "\nWithheld samples are recovered well under the breaking tolerance in RMS")
	fmt.Fprintln(out, "terms; the worst errors sit at the sharpest feature (the R-peak crest,")
	fmt.Fprintln(out, "~2ε). The continuous functions interpolate unsampled points, as §2.3 asks.")
	return nil
}
