package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment into a buffer: each must
// succeed and produce non-trivial output. This keeps the reproduction
// harness itself from rotting.
func TestAllExperimentsRun(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if seen[e.name] {
				t.Fatalf("duplicate experiment name %q", e.name)
			}
			seen[e.name] = true
			// Experiments that drop artifacts (queryplan's
			// BENCH_query.json) must not litter the source tree.
			t.Chdir(t.TempDir())
			var buf bytes.Buffer
			if err := e.run(&buf); err != nil {
				t.Fatalf("experiment failed: %v", err)
			}
			if buf.Len() < 40 {
				t.Errorf("suspiciously short output (%d bytes):\n%s", buf.Len(), buf.String())
			}
		})
	}
}

// Spot-check load-bearing claims in experiment output.
func TestExperimentClaims(t *testing.T) {
	var buf bytes.Buffer
	if err := expGoalpost(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"exemplar", "three-peaks", "contraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("goalpost output missing %q", want)
		}
	}
	// The three-peak control must not match the two-peak pattern: its row
	// should contain no "match" in the pattern column. Cheap proxy: the
	// line contains at least two "-" cells.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "three-peaks") && strings.Count(line, "match") > 0 {
			t.Errorf("three-peaks unexpectedly matched: %q", line)
		}
	}

	buf.Reset()
	if err := expRRSeq(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "145 145 145") {
		t.Errorf("RR sequence output missing the regular trace: %q", buf.String())
	}

	buf.Reset()
	if err := expFig10(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "ecg2") || !strings.Contains(out, "no ECGs") {
		t.Errorf("fig10 output incomplete:\n%s", out)
	}
}
