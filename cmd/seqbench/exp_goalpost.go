package main

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"seqrep/internal/breaking"
	"seqrep/internal/core"
	"seqrep/internal/dist"
	"seqrep/internal/feature"
	"seqrep/internal/fit"
	"seqrep/internal/pattern"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// familySeed keeps every goal-post experiment on identical data.
const familySeed = 1996

// buildFamilyDB ingests the exemplar, the Figure 5 family, the three-peak
// control and a flat control into a fresh database backed by an archive.
func buildFamilyDB() (*core.DB, seq.Sequence, map[string]seq.Sequence, error) {
	db, err := core.New(core.Config{Archive: store.NewMemArchive()})
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(familySeed))
	exemplar, variants, err := synth.TwoPeakFamily(rng, 97)
	if err != nil {
		return nil, nil, nil, err
	}
	all := map[string]seq.Sequence{"exemplar": exemplar}
	for v, s := range variants {
		all[v.String()] = s
	}
	three, err := synth.ThreePeakFever(97)
	if err != nil {
		return nil, nil, nil, err
	}
	all["three-peaks"] = three
	all["flat"] = synth.Const(97, 98)
	for id, s := range all {
		if err := db.Ingest(id, s); err != nil {
			return nil, nil, nil, err
		}
	}
	return db, exemplar, all, nil
}

// expFig1 demonstrates the prior-art semantics: a query curve with a ±ε
// band, a wiggled variant inside the band, a shifted one outside.
func expFig1(out io.Writer) error {
	exemplar, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(familySeed))
	inside := exemplar.AddNoise(rng, 0.1)
	outside := exemplar.ShiftValue(1.5)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stored sequence\tL∞ distance\twithin ε=0.5?")
	for _, c := range []struct {
		name string
		s    seq.Sequence
	}{{"exemplar itself", exemplar}, {"pointwise wiggle (σ=0.1)", inside}, {"shifted by +1.5", outside}} {
		d, err := dist.LInf(exemplar, c.s)
		if err != nil {
			return err
		}
		ok, err := dist.WithinBand(exemplar, c.s, 0.5)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.3f\t%v\n", c.name, d, ok)
	}
	return w.Flush()
}

// expFig5 reports, per family member, its value distance from the exemplar
// (all transformed members fall far outside any reasonable ε) while every
// member still has exactly two peaks.
func expFig5(out io.Writer) error {
	db, exemplar, all, err := buildFamilyDB()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sequence\tL∞ vs exemplar\twithin ε=0.5\tpeaks (from representation)")
	for _, id := range db.IDs() {
		s := all[id]
		d, err := dist.LInf(exemplar, s)
		if err != nil {
			return err
		}
		rec, _ := db.Record(id)
		fmt.Fprintf(w, "%s\t%.2f\t%v\t%d\n", id, d, d <= 0.5, len(rec.Profile.Peaks))
	}
	return w.Flush()
}

// expFig6 reproduces Figure 6: break a two-peak temperature sequence at
// extrema and annotate every subsequence with its regression line.
func expFig6(out io.Writer) error {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	segs, err := breaking.Interpolation(0.5).Break(fever)
	if err != nil {
		return err
	}
	fs, err := rep.Build(fever, segs, fit.RegressionFitter{})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "segment\tsamples\ttime span (h)\tregression line\tslope symbol (δ=0.25)")
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		c, err := sg.Curve()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t[%d,%d]\t[%.1f,%.1f]\t%s\t%s\n",
			i+1, sg.Lo, sg.Hi, sg.StartT, sg.EndT, c, feature.Classify(sg.Slope(), 0.25).PaperString())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "%d samples -> %d regression-line segments\n\n", len(fever), fs.NumSegments())
	return asciiPlot(out, fever, 72, 12, breaking.Breakpoints(segs))
}

// expFig7 breaks three two-peak variants and shows each yields the same
// rise/fall structure (and therefore matches the two-peak pattern).
func expFig7(out io.Writer) error {
	variants := []struct {
		name string
		opts synth.FeverOpts
	}{
		{"original (peaks 8h/16h)", synth.FeverOpts{Samples: 97}},
		{"shifted peaks (11h/19h)", synth.FeverOpts{Samples: 97, FirstPeak: 11, SecondPeak: 19}},
		{"contracted (10h/14h)", synth.FeverOpts{Samples: 97, FirstPeak: 10, SecondPeak: 14, PeakWidth: 1.1}},
	}
	two := pattern.MustCompile(pattern.TwoPeak())
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tsegments\tslope symbols (paper notation)\ttwo-peak pattern")
	for _, v := range variants {
		s, err := synth.Fever(v.opts)
		if err != nil {
			return err
		}
		segs, err := breaking.Interpolation(0.5).Break(s)
		if err != nil {
			return err
		}
		fs, err := rep.Build(s, segs, fit.RegressionFitter{})
		if err != nil {
			return err
		}
		symbols, err := feature.Symbolize(fs, 0.25)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%v\n", v.name, fs.NumSegments(),
			feature.PaperSymbols(symbols), two.Match(symbols))
	}
	return w.Flush()
}

// expGoalpost runs the full §4.4 pipeline: symbol index + regular
// expression query, value query, and shape query side by side.
func expGoalpost(out io.Writer) error {
	db, exemplar, _, err := buildFamilyDB()
	if err != nil {
		return err
	}
	valueMatches, err := db.ValueQuery(exemplar, 0.8)
	if err != nil {
		return err
	}
	patternIDs, err := db.MatchPattern(pattern.TwoPeak())
	if err != nil {
		return err
	}
	shapeMatches, err := db.ShapeQuery(exemplar, core.ShapeTolerance{Height: 0.25, Spacing: 0.3})
	if err != nil {
		return err
	}
	inValue := map[string]bool{}
	for _, m := range valueMatches {
		inValue[m.ID] = true
	}
	inPattern := map[string]bool{}
	for _, id := range patternIDs {
		inPattern[id] = true
	}
	inShape := map[string]core.Match{}
	for _, m := range shapeMatches {
		inShape[m.ID] = m
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sequence\tsymbols\tvalue ±0.8\ttwo-peak pattern\tshape query")
	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		shapeCell := "-"
		if m, ok := inShape[id]; ok {
			if m.Exact {
				shapeCell = "exact"
			} else {
				shapeCell = fmt.Sprintf("approx (spacing %.2f)", m.Deviations["spacing"])
			}
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", id, rec.Profile.Symbols,
			mark(inValue[id]), mark(inPattern[id]), shapeCell)
	}
	return w.Flush()
}

func mark(b bool) string {
	if b {
		return "match"
	}
	return "-"
}
