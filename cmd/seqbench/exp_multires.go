package main

import (
	"fmt"
	"io"
	"text/tabwriter"

	"seqrep/internal/multires"
	"seqrep/internal/synth"
)

// expMultires demonstrates the §7 future-work direction implemented in
// internal/multires: extract peaks from progressively compressed versions
// of the ECG, then run the coarse-to-fine search and report the work
// saving.
func expMultires(out io.Writer) error {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		return err
	}
	p, err := multires.Build(ecg, 4)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "level\tsamples\tpeaks found\tground truth")
	for k := 0; k < p.Levels(); k++ {
		lvl, err := p.Level(k)
		if err != nil {
			return err
		}
		peaks, err := p.PeaksAtLevel(k, 10, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", k, len(lvl), len(peaks), len(rPeaks))
	}
	if err := w.Flush(); err != nil {
		return err
	}

	res, err := p.FindPeaks(10, 1, 128)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ncoarse-to-fine: detected at level %d, refined on the original —\n", res.Level)
	fmt.Fprintf(out, "examined %d coarse + %d refinement samples = %d of %d (%.0f%% of a full scan)\n",
		res.CoarseSamples, res.RefineSamples, res.CoarseSamples+res.RefineSamples, len(ecg),
		100*float64(res.CoarseSamples+res.RefineSamples)/float64(len(ecg)))
	for i, pk := range res.Peaks {
		fmt.Fprintf(out, "peak %d refined to t=%.0f (ground truth %.0f)\n", i+1, pk.Time, rPeaks[i])
	}
	fmt.Fprintln(out, "\nPeaks survive while their flanks span multiple coarse samples (levels 0-2")
	fmt.Fprintln(out, "here); beyond that the feature dissolves — the boundary the paper's §7")
	fmt.Fprintln(out, "compression experiments were probing.")
	return nil
}
