package main

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"seqrep/internal/breaking"
	"seqrep/internal/core"
	"seqrep/internal/feature"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

const ecgSeed = 7

// ecgPair regenerates the Figure 9 stand-ins deterministically.
func ecgPair() (top, bottom seq.Sequence, err error) {
	rng := rand.New(rand.NewSource(ecgSeed))
	top, bottom, _, _, err = synth.PaperECGPair(rng)
	return top, bottom, err
}

// ecgRep breaks one ECG with the paper's ε=10 and keeps the byproduct
// interpolation lines, exactly as in their Figure 9.
func ecgRep(s seq.Sequence) (*rep.FunctionSeries, error) {
	segs, err := breaking.Interpolation(10).Break(s)
	if err != nil {
		return nil, err
	}
	return rep.Build(s, segs, nil)
}

// expFig9 prints each ECG's segmentation: the interpolation line per
// subsequence, flagging the steep R flanks.
func expFig9(out io.Writer) error {
	top, bottom, err := ecgPair()
	if err != nil {
		return err
	}
	for _, tr := range []struct {
		name string
		s    seq.Sequence
	}{{"ecg1 (top)", top}, {"ecg2 (bottom)", bottom}} {
		name, s := tr.name, tr.s
		fs, err := ecgRep(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d samples -> %d interpolation-line segments\n", name, len(s), fs.NumSegments())
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "segment\tsamples\tline\trole")
		for i := range fs.Segments {
			sg := &fs.Segments[i]
			c, err := sg.Curve()
			if err != nil {
				return err
			}
			role := ""
			switch {
			case sg.Slope() > 10:
				role = "R rising flank"
			case sg.Slope() < -10:
				role = "R descending flank"
			}
			fmt.Fprintf(w, "%d\t[%d,%d]\t%s\t%s\n", i+1, sg.Lo, sg.Hi, c, role)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		var bps []int
		for i := 1; i < len(fs.Segments); i++ {
			bps = append(bps, fs.Segments[i].Lo)
		}
		if err := asciiPlot(out, s, 90, 12, bps); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// expTable1 renders the paper's Table 1 from the representation alone.
func expTable1(out io.Writer) error {
	top, _, err := ecgPair()
	if err != nil {
		return err
	}
	fs, err := ecgRep(top)
	if err != nil {
		return err
	}
	peaks, err := feature.Peaks(fs, 1)
	if err != nil {
		return err
	}
	table, err := feature.PeakTable(fs, peaks)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, table)
	return err
}

// expRRSeq prints the R-R distance sequences of both ECGs (§5.2 lists
// "the sequence is (145 145 145)" style output).
func expRRSeq(out io.Writer) error {
	top, bottom, err := ecgPair()
	if err != nil {
		return err
	}
	for _, tr := range []struct {
		name string
		s    seq.Sequence
	}{{"ecg1", top}, {"ecg2", bottom}} {
		name, s := tr.name, tr.s
		fs, err := ecgRep(s)
		if err != nil {
			return err
		}
		profile, err := feature.Extract(fs, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d peaks, R-R distance sequence (", name, len(profile.Peaks))
		for i, iv := range profile.Intervals {
			if i > 0 {
				fmt.Fprint(out, " ")
			}
			fmt.Fprintf(out, "%.0f", iv)
		}
		fmt.Fprintln(out, ")")
	}
	return nil
}

// expFig10 builds the inverted-file index over both ECGs and runs the
// paper's range queries against it.
func expFig10(out io.Writer) error {
	db, err := core.New(core.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		return err
	}
	top, bottom, err := ecgPair()
	if err != nil {
		return err
	}
	if err := db.Ingest("ecg1", top); err != nil {
		return err
	}
	if err := db.Ingest("ecg2", bottom); err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tresult")
	for _, q := range []struct{ n, eps float64 }{{135, 2}, {145, 1}, {140, 10}, {200, 5}} {
		matches, err := db.IntervalQuery(q.n, q.eps)
		if err != nil {
			return err
		}
		cell := "no ECGs"
		if len(matches) > 0 {
			cell = ""
			for _, m := range matches {
				cell += fmt.Sprintf("%s (intervals %v at positions %v) ", m.ID, rounded(m.Intervals), m.Positions)
			}
		}
		fmt.Fprintf(w, "RR = %g ± %g\t%s\n", q.n, q.eps, cell)
	}
	return w.Flush()
}

// expCompression quantifies the §5.2 space-reduction claim across the
// workloads.
func expCompression(out io.Writer) error {
	top, bottom, err := ecgPair()
	if err != nil {
		return err
	}
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))
	seismic, _, err := synth.Seismic(rng, synth.SeismicOpts{})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "sequence\tsamples\tε\tsegments\tstored floats\tratio (full)\tratio (paper accounting)\trecon RMSE")
	cases := []struct {
		name string
		s    seq.Sequence
		eps  float64
	}{
		{"ecg1", top, 10}, {"ecg2", bottom, 10},
		{"fever", fever, 0.5}, {"seismic", seismic, 3},
	}
	for _, c := range cases {
		segs, err := breaking.Interpolation(c.eps).Break(c.s)
		if err != nil {
			return err
		}
		fs, err := rep.Build(c.s, segs, nil)
		if err != nil {
			return err
		}
		rmse, _, err := fs.ErrorAgainst(c.s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%g\t%d\t%d\t%.1fx\t%.1fx\t%.2f\n",
			c.name, len(c.s), c.eps, fs.NumSegments(), fs.StoredFloats(),
			fs.CompressionRatio(), fs.PaperCompressionRatio(), rmse)
	}
	return w.Flush()
}

// expArchive reproduces the paper's storage motivation: feature queries
// touch only the local representation, while raw access pays archive
// latency and bytes.
func expArchive(out io.Writer) error {
	arch := store.NewMemArchive()
	arch.ReadLatency = 25 * time.Millisecond
	db, err := core.New(core.Config{Epsilon: 10, Delta: 1, Archive: arch})
	if err != nil {
		return err
	}
	top, bottom, err := ecgPair()
	if err != nil {
		return err
	}
	if err := db.Ingest("ecg1", top); err != nil {
		return err
	}
	if err := db.Ingest("ecg2", bottom); err != nil {
		return err
	}
	arch.ResetStats()

	start := time.Now()
	if _, err := db.IntervalQuery(135, 2); err != nil {
		return err
	}
	indexed := time.Since(start)
	afterIndexed := arch.Stats()

	start = time.Now()
	if _, err := db.Raw("ecg2"); err != nil {
		return err
	}
	rawTime := time.Since(start)
	afterRaw := arch.Stats()

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "operation\ttime\tarchive reads\tarchive bytes")
	fmt.Fprintf(w, "interval query via index\t%v\t%d\t%d\n", indexed.Round(time.Microsecond), afterIndexed.Reads, afterIndexed.BytesRead)
	fmt.Fprintf(w, "raw fetch of one ECG\t%v\t%d\t%d\n", rawTime.Round(time.Millisecond), afterRaw.Reads-afterIndexed.Reads, afterRaw.BytesRead-afterIndexed.BytesRead)
	return w.Flush()
}

func rounded(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x + 0.5)
	}
	return out
}
