// Seqbench regenerates every table and figure of Shatkay & Zdonik (ICDE
// 1996) as text output, one experiment per -exp value. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for paper-vs-measured records.
//
// Usage:
//
//	seqbench -exp all        # run everything
//	seqbench -exp fig9       # one experiment
//	seqbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
)

// experiment is one reproducible unit: a paper artifact and the code that
// regenerates it.
type experiment struct {
	name  string
	paper string // which paper artifact it reproduces
	run   func(out io.Writer) error
}

// experiments lists every artifact in presentation order.
var experiments = []experiment{
	{"fig1", "Figure 1: value-based ±ε query semantics (prior art)", expFig1},
	{"fig5", "Figures 2-5: transformed two-peak family defeats value matching", expFig5},
	{"fig6", "Figure 6: breaking at extrema + regression-line representation", expFig6},
	{"fig7", "Figure 7: three two-peak variants broken consistently", expFig7},
	{"goalpost", "§4.4: slope-sign index + two-peak regular expression", expGoalpost},
	{"fig9", "Figure 9: two 540-point ECGs broken with ε=10", expFig9},
	{"table1", "Table 1: peaks information for the top ECG", expTable1},
	{"rrseq", "§5.2: R-R distance sequences", expRRSeq},
	{"fig10", "Figure 10: inverted-file index answering RR = n ± ε", expFig10},
	{"compression", "§5.2: ~17x space reduction claim", expCompression},
	{"robustness", "§4.3: robustness — inserted points barely move breakpoints", expRobustness},
	{"consistency", "§4.3: consistency under feature-preserving transforms", expConsistency},
	{"dftbaseline", "§3: DFT main-frequency comparison fails under dilation", expDFTBaseline},
	{"algos", "§5.1: breaking algorithm comparison (incl. O(n²) DP)", expAlgos},
	{"online", "§5.1: online vs offline breaking agreement", expOnline},
	{"wavelet", "§7: feature-preserving wavelet compression", expWavelet},
	{"multires", "§7: multiresolution analysis — features from compressed data", expMultires},
	{"subseq", "§3: feature subsequence query vs FRM sliding-window baseline", expSubseq},
	{"queryplan", "planner: DFT feature index vs full scan, candidates/pruned ratios", expQueryPlan},
	{"melody", "§1 motivation: contour queries regardless of key and tempo", expMelody},
	{"predict", "§2.3: predicting unsampled points from the representation", expPredict},
	{"epssweep", "ablation: ε vs segments / compression / error", expEpsSweep},
	{"deltasweep", "ablation: slope threshold δ vs query outcome", expDeltaSweep},
	{"splitrule", "ablation: Figure 8 steps 4a-4c closer-side rule vs naive split", expSplitRule},
	{"archive", "§2.3 motivation: slow archive vs local representation", expArchive},
}

func main() { os.Exit(run()) }

// run holds main's body so deferred cleanup (profile flush) survives the
// error exits, which os.Exit would bypass.
func run() int {
	exp := flag.String("exp", "all", "experiment name, or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (inspect with go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.paper)
		}
		return 0
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && e.name != *exp {
			continue
		}
		banner := fmt.Sprintf("== %s — %s ==", e.name, e.paper)
		fmt.Println(banner)
		if err := e.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %s: %v\n", e.name, err)
			return 1
		}
		fmt.Println(strings.Repeat("-", len(banner)))
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "seqbench: unknown experiment %q (use -list)\n", *exp)
		return 2
	}
	return 0
}
