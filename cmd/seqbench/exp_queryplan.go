package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"seqrep/internal/core"
	"seqrep/internal/dist"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// expQueryPlan measures the query planner's two routes over the same
// corpus: the DFT feature index (Agrawal/Faloutsos/Swami-style
// lower-bound pruning, zero false dismissals) against the brute-force
// scan, for every plannable query. It prints candidates-examined/pruned
// ratios and writes the machine-readable BENCH_query.json used to track
// the perf trajectory.
func expQueryPlan(out io.Writer) error {
	const n = 2000
	items := make([]core.BatchItem, 0, n)
	for i := 0; i < n; i++ {
		first := 5 + float64(i%8)
		second := first + 5 + float64(i%5)
		s, err := synth.Fever(synth.FeverOpts{Samples: 97, FirstPeak: first, SecondPeak: second})
		if err != nil {
			return err
		}
		items = append(items, core.BatchItem{
			ID:  fmt.Sprintf("fever-%05d", i),
			Seq: s.ShiftValue(float64(i%100) * 0.05),
		})
	}
	build := func(coeffs int) (*core.DB, error) {
		db, err := core.New(core.Config{Archive: store.NewMemArchive(), IndexCoeffs: coeffs})
		if err != nil {
			return nil, err
		}
		if _, err := db.IngestBatch(items); err != nil {
			return nil, err
		}
		return db, nil
	}
	indexed, err := build(0) // default: index on
	if err != nil {
		return err
	}
	scan, err := build(-1) // index disabled
	if err != nil {
		return err
	}
	exemplar, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		return err
	}

	const rounds = 5
	timeQuery := func(db *core.DB, m dist.Metric, eps float64) (time.Duration, core.QueryStats, error) {
		var stats core.QueryStats
		start := time.Now()
		for r := 0; r < rounds; r++ {
			_, st, err := db.DistanceQueryStats(exemplar, m, eps)
			if err != nil {
				return 0, stats, err
			}
			stats = st
		}
		return time.Since(start) / rounds, stats, nil
	}
	timeValue := func(db *core.DB, eps float64) (time.Duration, core.QueryStats, error) {
		var stats core.QueryStats
		start := time.Now()
		for r := 0; r < rounds; r++ {
			_, st, err := db.ValueQueryStats(exemplar, eps)
			if err != nil {
				return 0, stats, err
			}
			stats = st
		}
		return time.Since(start) / rounds, stats, nil
	}

	type row struct {
		Query   string  `json:"query"`
		Metric  string  `json:"metric"`
		Eps     float64 `json:"eps"`
		IndexUs float64 `json:"indexed_us"`
		ScanUs  float64 `json:"scan_us"`
		Speedup float64 `json:"speedup"`
		Cands   int     `json:"candidates"`
		Pruned  int     `json:"pruned"`
		Ratio   float64 `json:"pruned_ratio"`
		Matches int     `json:"matches"`
	}
	var rows []row
	add := func(query, metric string, eps float64, it, st time.Duration, istats core.QueryStats) {
		rows = append(rows, row{
			Query: query, Metric: metric, Eps: eps,
			IndexUs: float64(it.Microseconds()),
			ScanUs:  float64(st.Microseconds()),
			Speedup: float64(st) / float64(it),
			Cands:   istats.Candidates,
			Pruned:  istats.Pruned,
			Ratio:   float64(istats.Pruned) / float64(istats.Examined),
			Matches: istats.Matches,
		})
	}

	for _, c := range []struct {
		m   dist.Metric
		eps float64
	}{
		{dist.Euclidean, 2},
		{dist.ZEuclidean, 2},
	} {
		it, istats, err := timeQuery(indexed, c.m, c.eps)
		if err != nil {
			return err
		}
		st, _, err := timeQuery(scan, c.m, c.eps)
		if err != nil {
			return err
		}
		add("distance", c.m.Name(), c.eps, it, st, istats)
	}
	it, istats, err := timeValue(indexed, 0.25)
	if err != nil {
		return err
	}
	st, _, err := timeValue(scan, 0.25)
	if err != nil {
		return err
	}
	add("value", "band", 0.25, it, st, istats)

	fmt.Fprintf(out, "query planner over %d sequences (feature index %d coefficients vs full scan):\n\n",
		n, indexed.Stats().IndexCoeffs)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tmetric\teps\tindexed\tscan\tspeedup\tcandidates\tpruned\tpruned%\tmatches")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%g\t%.0fµs\t%.0fµs\t%.1fx\t%d\t%d\t%.1f%%\t%d\n",
			r.Query, r.Metric, r.Eps, r.IndexUs, r.ScanUs, r.Speedup,
			r.Cands, r.Pruned, 100*r.Ratio, r.Matches)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	blob, err := json.MarshalIndent(map[string]any{
		"experiment": "queryplan",
		"sequences":  n,
		"rows":       rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_query.json", append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(out, "\n(BENCH_query.json not written: %v)\n", err)
		return nil
	}
	fmt.Fprintln(out, "\nwrote BENCH_query.json")
	return nil
}
