package main

import (
	"fmt"
	"io"
	"strings"

	"seqrep/internal/seq"
)

// asciiPlot renders a sequence as a WxH character grid — enough to make
// the reproduced figures legible in experiment output. Breakpoint sample
// indexes are marked with '|' along the bottom axis.
func asciiPlot(out io.Writer, s seq.Sequence, width, height int, breakpoints []int) error {
	if len(s) == 0 || width < 8 || height < 4 {
		return fmt.Errorf("plot: need data and a at least 8x4 canvas")
	}
	_, lo, err := s.Min()
	if err != nil {
		return err
	}
	_, hi, err := s.Max()
	if err != nil {
		return err
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int { return i * (width - 1) / max(len(s)-1, 1) }
	row := func(v float64) int {
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return r
	}
	for i, p := range s {
		grid[row(p.V)][col(i)] = '*'
	}
	axis := []byte(strings.Repeat("-", width))
	for _, bp := range breakpoints {
		if bp >= 0 && bp < len(s) {
			axis[col(bp)] = '|'
		}
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.4g ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.4g ", lo)
		}
		if _, err := fmt.Fprintf(out, "%s%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(out, "        %s  ('|' = breakpoint)\n", string(axis)); err != nil {
		return err
	}
	return nil
}
