// Seqdb is a command-line front end to the seqrep sequence database:
// generate workloads, ingest sequences, inspect their function
// representations, and run generalized approximate queries.
//
// Usage:
//
//	seqdb generate -kind fever -out fever.csv
//	seqdb ingest   -db db.bin -id patient7 -in fever.csv
//	seqdb ingestdir -db db.bin -dir ./csvs
//	seqdb list     -db db.bin
//	seqdb segments -db db.bin -id patient7
//	seqdb query    -db db.bin -pattern "U+F*D"
//	seqdb query    -db db.bin -peaks 2 -tol 1
//	seqdb query    -db db.bin -interval 135 -eps 2
//	seqdb query    -db db.bin -q 'EXPLAIN MATCH DISTANCE LIKE ecg1 METRIC l2 EPS 3'
//	seqdb query    -db db.bin -q 'MATCH DISTANCE LIKE ecg1 TOP 5 BY DISTANCE' -timeout 2s
//	seqdb query    -db db.bin -pattern "U+F*D" -limit 10
//	seqdb stats    -db db.bin
//
// The database file is created on first ingest. Scalar parameters
// (-epsilon, -delta) apply when the database is created and are persisted
// with it.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "generate":
		err = cmdGenerate(args)
	case "ingest":
		err = cmdIngest(args)
	case "ingestdir":
		err = cmdIngestDir(args)
	case "list":
		err = cmdList(args)
	case "segments":
		err = cmdSegments(args)
	case "query":
		err = cmdQuery(args)
	case "remove":
		err = cmdRemove(args)
	case "export":
		err = cmdExport(args)
	case "stats":
		err = cmdStats(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "seqdb: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqdb: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `seqdb — sequence database on approximate representations

commands:
  generate  -kind fever|three|ecg|seismic|stock -out FILE [-samples N] [-seed N]
  ingest    -db FILE -id NAME -in FILE [-epsilon E] [-delta D]
  ingestdir -db FILE -dir DIR [-epsilon E] [-delta D] [-workers N]
  list      -db FILE
  segments  -db FILE -id NAME
  query     -db FILE [-q STMT | -pattern P | -peaks K [-tol T] | -interval N [-eps E]]
            [-limit N] [-timeout DUR]   (bounded/cancellable; statements also take LIMIT / TOP n BY DISTANCE)
  remove    -db FILE -id NAME
  export    -db FILE -id NAME -out FILE   (reconstructed from the representation)
  stats     -db FILE`)
}

// newFlagSet builds a flag set that prints its own errors.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
