package main

import (
	"os"
	"path/filepath"
	"testing"

	"seqrep"
)

// withDir runs the test from a temp directory so command outputs land in
// isolated scratch space.
func withDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	return dir
}

func TestGenerateAndIngestFlow(t *testing.T) {
	dir := withDir(t)
	csvPath := filepath.Join(dir, "fever.csv")
	dbPath := filepath.Join(dir, "test.db")

	if err := cmdGenerate([]string{"-kind", "fever", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Fatal(err)
	}
	if err := cmdIngest([]string{"-db", dbPath, "-id", "f1", "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdList([]string{"-db", dbPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSegments([]string{"-db", dbPath, "-id", "f1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-db", dbPath}); err != nil {
		t.Fatal(err)
	}
	// All query forms.
	for _, args := range [][]string{
		{"-db", dbPath, "-pattern", "[FD]*(U+F*D[FD]*){2}(U+F*)?"},
		{"-db", dbPath, "-search", "U+F*D"},
		{"-db", dbPath, "-peaks", "2"},
		{"-db", dbPath, "-interval", "8", "-eps", "1"},
		{"-db", dbPath, "-q", "MATCH PEAKS 2"},
		{"-db", dbPath, "-q", `FIND PATTERN "U+F*D"`},
	} {
		if err := cmdQuery(args); err != nil {
			t.Errorf("query %v: %v", args, err)
		}
	}
}

func TestGenerateKinds(t *testing.T) {
	dir := withDir(t)
	for _, kind := range []string{"fever", "three", "ecg", "seismic", "stock"} {
		out := filepath.Join(dir, kind+".csv")
		if err := cmdGenerate([]string{"-kind", kind, "-out", out, "-seed", "5"}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if err := cmdGenerate([]string{"-kind", "bogus", "-out", filepath.Join(dir, "x.csv")}); err == nil {
		t.Error("bogus kind accepted")
	}
	if err := cmdGenerate([]string{"-kind", "fever"}); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestCommandValidation(t *testing.T) {
	dir := withDir(t)
	dbPath := filepath.Join(dir, "x.db")
	if err := cmdIngest([]string{"-db", dbPath}); err == nil {
		t.Error("ingest without id/in accepted")
	}
	if err := cmdList([]string{}); err == nil {
		t.Error("list without db accepted")
	}
	if err := cmdSegments([]string{"-db", dbPath}); err == nil {
		t.Error("segments without id accepted")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Error("stats without db accepted")
	}
	if err := cmdQuery([]string{"-db", dbPath}); err == nil {
		t.Error("query without any predicate accepted")
	}
	if err := cmdQuery([]string{"-db", dbPath, "-q", "bogus"}); err == nil {
		t.Error("bad query-language statement accepted")
	}
}

func TestSegmentsUnknownID(t *testing.T) {
	dir := withDir(t)
	csvPath := filepath.Join(dir, "f.csv")
	dbPath := filepath.Join(dir, "d.db")
	if err := cmdGenerate([]string{"-kind", "fever", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdIngest([]string{"-db", dbPath, "-id", "f", "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSegments([]string{"-db", dbPath, "-id", "ghost"}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	dir := withDir(t)
	path := filepath.Join(dir, "rt.csv")
	s, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("round trip: %d vs %d samples", len(back), len(s))
	}
	for i := range s {
		if back[i] != s[i] {
			t.Fatalf("sample %d: %v vs %v", i, back[i], s[i])
		}
	}
}

func TestReadCSVSingleColumn(t *testing.T) {
	dir := withDir(t)
	path := filepath.Join(dir, "single.csv")
	if err := os.WriteFile(path, []byte("1.5\n2.5\n3.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[1].T != 1 || s[1].V != 2.5 {
		t.Errorf("single column: %v", s)
	}
}

func TestReadCSVErrors(t *testing.T) {
	dir := withDir(t)
	cases := map[string]string{
		"bad-number.csv": "1,notanumber\n",
		"bad-time.csv":   "zzz,1\n",
		"bad-cols.csv":   "1,2,3\n",
		"bad-single.csv": "abc\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readCSV(path); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := readCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRemoveAndExport(t *testing.T) {
	dir := withDir(t)
	csvPath := filepath.Join(dir, "f.csv")
	dbPath := filepath.Join(dir, "d.db")
	outPath := filepath.Join(dir, "export.csv")
	if err := cmdGenerate([]string{"-kind", "fever", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdIngest([]string{"-db", dbPath, "-id", "f", "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExport([]string{"-db", dbPath, "-id", "f", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	back, err := readCSV(outPath)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := readCSV(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("export %d samples, original %d", len(back), len(orig))
	}
	// Reconstruction stays within the breaking tolerance.
	for i := range orig {
		d := back[i].V - orig[i].V
		if d < 0 {
			d = -d
		}
		if d > 0.5+1e-9 {
			t.Errorf("sample %d deviates %g from original", i, d)
		}
	}
	if err := cmdRemove([]string{"-db", dbPath, "-id", "f"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRemove([]string{"-db", dbPath, "-id", "f"}); err == nil {
		t.Error("double remove accepted")
	}
	if err := cmdExport([]string{"-db", dbPath, "-id", "f", "-out", outPath}); err == nil {
		t.Error("export of removed id accepted")
	}
	if err := cmdRemove([]string{"-db", dbPath}); err == nil {
		t.Error("remove without id accepted")
	}
	if err := cmdExport([]string{"-db", dbPath}); err == nil {
		t.Error("export without id/out accepted")
	}
}

func TestIngestDuplicateID(t *testing.T) {
	dir := withDir(t)
	csvPath := filepath.Join(dir, "f.csv")
	dbPath := filepath.Join(dir, "d.db")
	if err := cmdGenerate([]string{"-kind", "fever", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdIngest([]string{"-db", dbPath, "-id", "f", "-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdIngest([]string{"-db", dbPath, "-id", "f", "-in", csvPath}); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestIngestDir(t *testing.T) {
	dir := withDir(t)
	csvDir := filepath.Join(dir, "csvs")
	if err := os.Mkdir(csvDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, kind := range []string{"fever", "three", "seismic"} {
		out := filepath.Join(csvDir, kind+".csv")
		if err := cmdGenerate([]string{"-kind", kind, "-out", out, "-seed", "3"}); err != nil {
			t.Fatalf("generate %d: %v", i, err)
		}
	}
	dbPath := filepath.Join(dir, "d.db")
	if err := cmdIngestDir([]string{"-db", dbPath, "-dir", csvDir, "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	db, err := openDB(dbPath, seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Errorf("ingested %d sequences, want 3", db.Len())
	}
	if _, ok := db.Record("fever"); !ok {
		t.Error("sequence id not derived from file name")
	}
	// A second run fails on duplicates but leaves the database intact.
	if err := cmdIngestDir([]string{"-db", dbPath, "-dir", csvDir}); err == nil {
		t.Error("duplicate batch accepted")
	}
	if err := cmdIngestDir([]string{"-db", dbPath}); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := cmdIngestDir([]string{"-db", dbPath, "-dir", dir}); err == nil {
		t.Error("directory without CSVs accepted")
	}
}

func TestOpenDBRejectsCorrupt(t *testing.T) {
	dir := withDir(t)
	bad := filepath.Join(dir, "corrupt.db")
	if err := os.WriteFile(bad, []byte("not a database"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openDB(bad, seqrep.Config{}); err == nil {
		t.Error("corrupt database accepted")
	}
}
