package main

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"seqrep"
)

// cmdGenerate writes a synthetic workload as CSV (time,value per row).
func cmdGenerate(args []string) error {
	fs := newFlagSet("generate")
	kind := fs.String("kind", "fever", "fever | three | ecg | seismic | stock")
	out := fs.String("out", "", "output CSV path (required)")
	samples := fs.Int("samples", 0, "sample count (0 = kind default)")
	seed := fs.Int64("seed", 1, "random seed for stochastic kinds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	rng := rand.New(rand.NewSource(*seed))
	var (
		s   seqrep.Sequence
		err error
	)
	switch *kind {
	case "fever":
		s, err = seqrep.GenerateFever(seqrep.FeverOpts{Samples: *samples})
	case "three":
		n := *samples
		if n == 0 {
			n = 97
		}
		s, err = seqrep.GenerateThreePeakFever(n)
	case "ecg":
		s, _, err = seqrep.GenerateECG(rng, seqrep.ECGOpts{Samples: *samples, RRJitter: 2})
	case "seismic":
		s, _, err = seqrep.GenerateSeismic(rng, seqrep.SeismicOpts{Samples: *samples})
	case "stock":
		n := *samples
		if n == 0 {
			n = 500
		}
		s, err = seqrep.GenerateStock(rng, n, 100, 0.1, 2)
	default:
		return fmt.Errorf("generate: unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	return writeCSV(*out, s)
}

// openDB loads the database file, or returns a fresh one when absent.
// cfg supplies the scalar parameters for a fresh database and the code
// components (workers, archive, ...) in either case.
func openDB(path string, cfg seqrep.Config) (*seqrep.DB, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return seqrep.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seqrep.Load(f, cfg)
}

// saveDB writes the database atomically: SaveFile stages the bytes in a
// temporary file next to the destination (same filesystem, so the final
// rename is atomic) and never clobbers an existing database on error.
func saveDB(path string, db *seqrep.DB) error {
	return seqrep.SaveFile(db, path, nil)
}

func cmdIngest(args []string) error {
	fs := newFlagSet("ingest")
	dbPath := fs.String("db", "", "database file (required)")
	id := fs.String("id", "", "sequence id (required)")
	in := fs.String("in", "", "input CSV (required)")
	epsilon := fs.Float64("epsilon", 0, "breaking tolerance for a new database (0 = default 0.5)")
	delta := fs.Float64("delta", 0, "slope threshold for a new database (0 = default 0.25)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *id == "" || *in == "" {
		return fmt.Errorf("ingest: -db, -id and -in are required")
	}
	s, err := readCSV(*in)
	if err != nil {
		return err
	}
	db, err := openDB(*dbPath, seqrep.Config{Epsilon: *epsilon, Delta: *delta})
	if err != nil {
		return err
	}
	if err := db.Ingest(*id, s); err != nil {
		return err
	}
	if err := saveDB(*dbPath, db); err != nil {
		return err
	}
	rec, _ := db.Record(*id)
	fmt.Printf("ingested %q: %d samples -> %d segments (symbols %s)\n",
		*id, rec.N, rec.NumSegments(), rec.Profile.Symbols)
	return nil
}

// cmdIngestDir batch-ingests every *.csv file in a directory through the
// concurrent worker-pool API; the sequence id is the file name without
// its extension.
func cmdIngestDir(args []string) error {
	fs := newFlagSet("ingestdir")
	dbPath := fs.String("db", "", "database file (required)")
	dir := fs.String("dir", "", "directory of CSV files (required)")
	epsilon := fs.Float64("epsilon", 0, "breaking tolerance for a new database (0 = default 0.5)")
	delta := fs.Float64("delta", 0, "slope threshold for a new database (0 = default 0.25)")
	workers := fs.Int("workers", 0, "ingestion workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *dir == "" {
		return fmt.Errorf("ingestdir: -db and -dir are required")
	}
	names, err := filepath.Glob(filepath.Join(*dir, "*.csv"))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("ingestdir: no *.csv files in %s", *dir)
	}
	sort.Strings(names)
	items := make([]seqrep.BatchItem, 0, len(names))
	for _, name := range names {
		s, err := readCSV(name)
		if err != nil {
			return err
		}
		base := filepath.Base(name)
		items = append(items, seqrep.BatchItem{
			ID:  strings.TrimSuffix(base, filepath.Ext(base)),
			Seq: s,
		})
	}
	db, err := openDB(*dbPath, seqrep.Config{Epsilon: *epsilon, Delta: *delta, Workers: *workers})
	if err != nil {
		return err
	}
	n, batchErr := db.IngestBatch(items)
	if n > 0 {
		if err := saveDB(*dbPath, db); err != nil {
			return err
		}
	}
	fmt.Printf("ingested %d of %d sequences (%d total in database)\n", n, len(items), db.Len())
	if batchErr != nil {
		return fmt.Errorf("ingestdir: some items failed:\n%w", batchErr)
	}
	return nil
}

func cmdList(args []string) error {
	fs := newFlagSet("list")
	dbPath := fs.String("db", "", "database file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("list: -db is required")
	}
	db, err := openDB(*dbPath, seqrep.Config{})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "id\tsamples\tsegments\tpeaks\tsymbols")
	for _, id := range db.IDs() {
		rec, _ := db.Record(id)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\n", id, rec.N, rec.NumSegments(),
			len(rec.Profile.Peaks), rec.Profile.Symbols)
	}
	return w.Flush()
}

func cmdSegments(args []string) error {
	fs := newFlagSet("segments")
	dbPath := fs.String("db", "", "database file (required)")
	id := fs.String("id", "", "sequence id (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *id == "" {
		return fmt.Errorf("segments: -db and -id are required")
	}
	db, err := openDB(*dbPath, seqrep.Config{})
	if err != nil {
		return err
	}
	rec, ok := db.Record(*id)
	if !ok {
		return fmt.Errorf("segments: unknown id %q", *id)
	}
	series, err := db.Representation(*id)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "segment\tsamples\ttime span\tfunction\tslope")
	for i := range series.Segments {
		sg := &series.Segments[i]
		c, err := sg.Curve()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t[%d,%d]\t[%.3g,%.3g]\t%s\t%.3g\n",
			i+1, sg.Lo, sg.Hi, sg.StartT, sg.EndT, c, sg.Slope())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("compression: %.1fx full accounting, %.1fx paper accounting\n",
		series.CompressionRatio(), series.PaperCompressionRatio())
	if len(rec.Profile.Peaks) > 0 {
		table, err := seqrep.PeakTable(series, rec.Profile.Peaks)
		if err != nil {
			return err
		}
		fmt.Printf("\npeaks:\n%s", table)
		fmt.Printf("intervals: %v\n", rec.Profile.Intervals)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := newFlagSet("query")
	dbPath := fs.String("db", "", "database file (required)")
	q := fs.String("q", "", `query-language statement, e.g. 'MATCH PEAKS 2' or 'MATCH INTERVAL 135 +- 2'`)
	pat := fs.String("pattern", "", "slope-sign pattern over U/F/D (full match)")
	search := fs.String("search", "", "slope-sign pattern searched within sequences")
	peaks := fs.Int("peaks", -1, "peak-count query: number of peaks")
	tol := fs.Int("tol", 0, "peak-count tolerance")
	interval := fs.Float64("interval", 0, "interval query: peak spacing n")
	eps := fs.Float64("eps", 0, "interval query tolerance ε")
	limit := fs.Int("limit", 0, "cap the number of results (0 = unlimited); capped answers note the truncation")
	timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no deadline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("query: -db is required")
	}
	if *limit < 0 {
		return fmt.Errorf("query: negative -limit %d", *limit)
	}
	db, err := openDB(*dbPath, seqrep.Config{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *q != "" {
		parsed, err := seqrep.ParseQuery(*q)
		if err != nil {
			return err
		}
		if seqrep.IsProgressiveQuery(parsed) {
			err := runProgressiveQuery(ctx, db, seqrep.LimitQuery(parsed, *limit))
			if err != nil && errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("query: timed out after %s", *timeout)
			}
			return err
		}
		res, err := seqrep.RunQueryCtx(ctx, db, seqrep.LimitQuery(parsed, *limit))
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("query: timed out after %s", *timeout)
			}
			return err
		}
		for _, id := range res.IDs {
			fmt.Println(id)
		}
		for _, h := range res.Hits {
			fmt.Printf("  %s segments [%d,%d) time [%.3g,%.3g]\n", h.ID, h.SegLo, h.SegHi, h.TimeLo, h.TimeHi)
		}
		for _, m := range res.Matches {
			if !m.Exact {
				fmt.Printf("  %s approximate, deviations %v\n", m.ID, m.Deviations)
			}
		}
		fmt.Printf("%d match(es) [%s]\n", len(res.IDs), res.Kind)
		reportTruncation(res)
		if res.Explain && res.Stats != nil {
			fmt.Println(res.Stats)
		}
		return nil
	}
	// The direct flag paths materialize their (cheap, fixed-path) answer
	// and truncate afterwards, reporting exactly how much -limit dropped.
	capped := func(n int) (int, int) {
		if *limit > 0 && n > *limit {
			return *limit, n - *limit
		}
		return n, 0
	}
	switch {
	case *pat != "":
		ids, err := db.MatchPattern(*pat)
		if err != nil {
			return err
		}
		keep, dropped := capped(len(ids))
		for _, id := range ids[:keep] {
			fmt.Println(id)
		}
		fmt.Printf("%d match(es)\n", keep)
		reportDropped(dropped)
	case *search != "":
		hits, err := db.SearchPattern(*search)
		if err != nil {
			return err
		}
		keep, dropped := capped(len(hits))
		for _, h := range hits[:keep] {
			fmt.Printf("%s segments [%d,%d) time [%.3g,%.3g]\n", h.ID, h.SegLo, h.SegHi, h.TimeLo, h.TimeHi)
		}
		fmt.Printf("%d hit(s)\n", keep)
		reportDropped(dropped)
	case *peaks >= 0:
		matches, err := db.PeakCount(*peaks, *tol)
		if err != nil {
			return err
		}
		keep, dropped := capped(len(matches))
		for _, m := range matches[:keep] {
			kind := "approx"
			if m.Exact {
				kind = "exact"
			}
			fmt.Printf("%s (%s, deviation %g)\n", m.ID, kind, m.Deviations["peaks"])
		}
		fmt.Printf("%d match(es)\n", keep)
		reportDropped(dropped)
	case *interval > 0:
		matches, err := db.IntervalQuery(*interval, *eps)
		if err != nil {
			return err
		}
		keep, dropped := capped(len(matches))
		for _, m := range matches[:keep] {
			fmt.Printf("%s intervals %v at positions %v\n", m.ID, m.Intervals, m.Positions)
		}
		fmt.Printf("%d match(es)\n", keep)
		reportDropped(dropped)
	default:
		return fmt.Errorf("query: one of -pattern, -search, -peaks, -interval is required")
	}
	return nil
}

// runProgressiveQuery executes a WITHIN ERROR / APPROX statement with
// frame-level printing: every refinement frame appears as it is
// produced, tagged with its quality tier, so the terminal shows the
// coarse sketch bands first and watches them tighten toward verdicts.
func runProgressiveQuery(ctx context.Context, db *seqrep.DB, q seqrep.ParsedQuery) error {
	accepted := 0
	res, err := seqrep.StreamQueryProgressive(ctx, db, q, func(pm seqrep.ProgressiveMatch) bool {
		hi := "?"
		if !math.IsInf(pm.Band.Hi, 1) {
			hi = fmt.Sprintf("%.4g", pm.Band.Hi)
		}
		switch {
		case pm.Final && pm.Match != nil:
			accepted++
			fmt.Printf("[%s] %s band [%.4g, %s] ACCEPT\n", pm.Tier, pm.ID, pm.Band.Lo, hi)
		case pm.Final:
			fmt.Printf("[%s] %s band [%.4g, %s] reject\n", pm.Tier, pm.ID, pm.Band.Lo, hi)
		default:
			fmt.Printf("[%s] %s band [%.4g, %s]\n", pm.Tier, pm.ID, pm.Band.Lo, hi)
		}
		return true
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d match(es) [%s]\n", accepted, res.Kind)
	reportTruncation(res)
	if res.Stats != nil {
		fmt.Println(res.Stats)
	}
	return nil
}

// reportDropped notes results a -limit cut from a materialized answer.
func reportDropped(n int) {
	if n > 0 {
		fmt.Printf("(%d result(s) truncated by -limit)\n", n)
	}
}

// reportTruncation notes how a bounded statement's answer was cut short:
// fixed-path statements know exactly how many results the LIMIT dropped;
// streamed similarity statements stop early instead, so only the fact of
// truncation is knowable.
func reportTruncation(res *seqrep.QueryResult) {
	switch {
	case res.Dropped > 0:
		fmt.Printf("(%d result(s) truncated by the limit)\n", res.Dropped)
	case res.Stats != nil && res.Stats.Truncated:
		fmt.Println("(results truncated: the bound stopped the query early; more matches may exist)")
	}
}

func cmdRemove(args []string) error {
	fs := newFlagSet("remove")
	dbPath := fs.String("db", "", "database file (required)")
	id := fs.String("id", "", "sequence id (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *id == "" {
		return fmt.Errorf("remove: -db and -id are required")
	}
	db, err := openDB(*dbPath, seqrep.Config{})
	if err != nil {
		return err
	}
	if err := db.Remove(*id); err != nil {
		return err
	}
	if err := saveDB(*dbPath, db); err != nil {
		return err
	}
	fmt.Printf("removed %q (%d sequences remain)\n", *id, db.Len())
	return nil
}

func cmdExport(args []string) error {
	fs := newFlagSet("export")
	dbPath := fs.String("db", "", "database file (required)")
	id := fs.String("id", "", "sequence id (required)")
	out := fs.String("out", "", "output CSV (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *id == "" || *out == "" {
		return fmt.Errorf("export: -db, -id and -out are required")
	}
	db, err := openDB(*dbPath, seqrep.Config{})
	if err != nil {
		return err
	}
	s, err := db.Reconstruct(*id)
	if err != nil {
		return err
	}
	return writeCSV(*out, s)
}

func cmdStats(args []string) error {
	fs := newFlagSet("stats")
	dbPath := fs.String("db", "", "database file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("stats: -db is required")
	}
	db, err := openDB(*dbPath, seqrep.Config{})
	if err != nil {
		return err
	}
	cfg := db.Config()
	st := db.Stats()
	fmt.Printf("sequences:       %d\n", st.Sequences)
	fmt.Printf("epsilon/delta:   %g / %g\n", cfg.Epsilon, cfg.Delta)
	fmt.Printf("total samples:   %d\n", st.Samples)
	fmt.Printf("total segments:  %d\n", st.Segments)
	fmt.Printf("symbol groups:   %d\n", st.SymbolGroups)
	fmt.Printf("interval index:  %d postings in %d buckets\n", st.IntervalCount, st.IntervalBucket)
	if st.IndexCoeffs > 0 {
		fmt.Printf("feature index:   %d of %d sequences, %d DFT coefficients\n",
			st.FeatureIndexed, st.Sequences, st.IndexCoeffs)
	} else {
		fmt.Printf("feature index:   disabled\n")
	}
	if st.StoredFloats > 0 {
		fmt.Printf("compression:     %.1fx (samples vs stored floats)\n",
			float64(st.Samples)/float64(st.StoredFloats))
	}
	return nil
}

// writeCSV stores a sequence as "t,v" rows.
func writeCSV(path string, s seqrep.Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	for _, p := range s {
		if err := w.Write([]string{
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.FormatFloat(p.V, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples to %s\n", len(s), path)
	return nil
}

// readCSV loads "t,v" rows (or single-column values with implied times).
func readCSV(path string) (seqrep.Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var times, values []float64
	for i, row := range rows {
		switch len(row) {
		case 1:
			v, err := strconv.ParseFloat(row[0], 64)
			if err != nil {
				return nil, fmt.Errorf("%s row %d: %w", path, i+1, err)
			}
			times = append(times, float64(i))
			values = append(values, v)
		case 2:
			t, err := strconv.ParseFloat(row[0], 64)
			if err != nil {
				return nil, fmt.Errorf("%s row %d: %w", path, i+1, err)
			}
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				return nil, fmt.Errorf("%s row %d: %w", path, i+1, err)
			}
			times = append(times, t)
			values = append(values, v)
		default:
			return nil, fmt.Errorf("%s row %d: want 1 or 2 columns, got %d", path, i+1, len(row))
		}
	}
	return seqrep.NewSequenceFromSamples(times, values)
}
