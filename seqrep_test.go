package seqrep_test

import (
	"bytes"
	"math/rand"
	"testing"

	"seqrep"
)

// TestPublicAPIEndToEnd exercises the whole facade the way a downstream
// user would: generate data, build a database, run every query type, save
// and reload.
func TestPublicAPIEndToEnd(t *testing.T) {
	db, err := seqrep.New(seqrep.Config{Archive: seqrep.NewMemArchive()})
	if err != nil {
		t.Fatal(err)
	}

	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	three, err := seqrep.GenerateThreePeakFever(97)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("two", fever); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("three", three); err != nil {
		t.Fatal(err)
	}

	// Pattern query.
	ids, err := db.MatchPattern(seqrep.TwoPeakPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "two" {
		t.Errorf("MatchPattern = %v", ids)
	}

	// Peak count with tolerance.
	matches, err := db.PeakCount(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || !matches[0].Exact || matches[1].Exact {
		t.Errorf("PeakCount = %+v", matches)
	}

	// Shape query.
	shape, err := db.ShapeQuery(fever, seqrep.ShapeTolerance{Height: 0.2, Spacing: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 1 || shape[0].ID != "two" {
		t.Errorf("ShapeQuery = %+v", shape)
	}

	// Value query via archive.
	val, err := db.ValueQuery(fever, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(val) != 1 || !val[0].Exact {
		t.Errorf("ValueQuery = %+v", val)
	}

	// Persistence round trip.
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := seqrep.Load(&buf, seqrep.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Errorf("loaded %d records", loaded.Len())
	}
}

func TestPublicECGFlow(t *testing.T) {
	db, err := seqrep.New(seqrep.Config{Epsilon: 10, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	ecg, rPeaks, err := seqrep.GenerateECG(nil, seqrep.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("ecg", ecg); err != nil {
		t.Fatal(err)
	}
	rec, ok := db.Record("ecg")
	if !ok {
		t.Fatal("record missing")
	}
	if len(rec.Profile.Peaks) != len(rPeaks) {
		t.Errorf("peaks %d, ground truth %d", len(rec.Profile.Peaks), len(rPeaks))
	}
	im, err := db.IntervalQuery(130, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(im) != 1 || im[0].ID != "ecg" {
		t.Errorf("IntervalQuery = %+v", im)
	}
}

func TestPublicBreakersAndFitters(t *testing.T) {
	fever, err := seqrep.GenerateFever(seqrep.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	breakers := []seqrep.Breaker{
		seqrep.NewInterpolationBreaker(0.5),
		seqrep.NewRegressionBreaker(0.5),
		seqrep.NewBezierBreaker(0.5),
		seqrep.NewDPBreaker(0.5, 1),
		seqrep.NewOnlineBreaker(0.5),
	}
	for _, b := range breakers {
		segs, err := b.Break(fever)
		if err != nil {
			t.Errorf("%s: %v", b.Name(), err)
			continue
		}
		if len(segs) < 2 {
			t.Errorf("%s: %d segments", b.Name(), len(segs))
		}
	}
	for _, f := range []seqrep.Fitter{
		seqrep.InterpolationFitter(),
		seqrep.RegressionFitter(),
		seqrep.PolynomialFitter(2),
		seqrep.BezierFitter(),
	} {
		c, err := f.Fit(fever[:10])
		if err != nil {
			t.Errorf("%s: %v", f.Name(), err)
			continue
		}
		if c == nil {
			t.Errorf("%s returned nil curve", f.Name())
		}
	}
}

func TestPublicPreprocessAndGenerators(t *testing.T) {
	chain := seqrep.StandardPreprocess(3, 3)
	db, err := seqrep.New(seqrep.Config{Preprocess: chain, Epsilon: 0.05, Delta: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	seismic, starts, err := seqrep.GenerateSeismic(rng, seqrep.SeismicOpts{Samples: 1200, Events: 2})
	if err != nil || len(starts) != 2 {
		t.Fatalf("seismic: %v %v", starts, err)
	}
	if err := db.Ingest("quake", seismic); err != nil {
		t.Fatal(err)
	}
	stock, err := seqrep.GenerateStock(rng, 300, 100, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("stock", stock); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("Len = %d", db.Len())
	}
	seqs := seqrep.NewSequence([]float64{1, 2, 3})
	if len(seqs) != 3 {
		t.Error("NewSequence")
	}
	if _, err := seqrep.NewSequenceFromSamples([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched samples accepted")
	}
}
