module seqrep

go 1.24
