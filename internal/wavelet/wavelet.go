// Package wavelet implements the Haar discrete wavelet transform and the
// threshold compression the paper uses as preprocessing (§7): reducing the
// amount of data "in a way that allows extracting features from the
// compressed data rather than from the original sequences".
//
// Only the Haar basis is provided; it is the transform used by the
// multiresolution-curve work the paper cites (Finkelstein & Salesin 1994)
// and is sufficient to reproduce the feature-preserving-compression
// experiments.
package wavelet

import (
	"fmt"
	"math"
	"sort"
)

// sqrt2 normalizes the Haar filters so the transform is orthonormal and
// energy-preserving.
var sqrt2 = math.Sqrt(2)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two >= n (n must be > 0).
func NextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Pad extends vals to the next power-of-two length by repeating the final
// value, which avoids introducing an artificial edge (step) that would
// register as a feature. It returns the padded slice and the original
// length. If vals is already a power of two long, a copy is returned.
func Pad(vals []float64) (padded []float64, origLen int) {
	origLen = len(vals)
	n := NextPowerOfTwo(max(origLen, 1))
	padded = make([]float64, n)
	copy(padded, vals)
	if origLen > 0 {
		last := vals[origLen-1]
		for i := origLen; i < n; i++ {
			padded[i] = last
		}
	}
	return padded, origLen
}

// Forward computes the orthonormal Haar DWT of vals in place over the given
// number of levels and returns the coefficient slice: approximation
// coefficients first, then detail coefficients from coarsest to finest.
// len(vals) must be a power of two and levels must satisfy
// 1 <= levels <= log2(len(vals)).
func Forward(vals []float64, levels int) ([]float64, error) {
	n := len(vals)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	if maxL := log2(n); levels < 1 || levels > maxL {
		return nil, fmt.Errorf("wavelet: levels %d out of range [1,%d]", levels, maxL)
	}
	out := make([]float64, n)
	copy(out, vals)
	tmp := make([]float64, n)
	width := n
	for l := 0; l < levels; l++ {
		half := width / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			tmp[i] = (a + b) / sqrt2      // approximation
			tmp[half+i] = (a - b) / sqrt2 // detail
		}
		copy(out[:width], tmp[:width])
		width = half
	}
	return out, nil
}

// Inverse reconstructs the signal from Haar coefficients produced by
// Forward with the same number of levels.
func Inverse(coeffs []float64, levels int) ([]float64, error) {
	n := len(coeffs)
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	if maxL := log2(n); levels < 1 || levels > maxL {
		return nil, fmt.Errorf("wavelet: levels %d out of range [1,%d]", levels, maxL)
	}
	out := make([]float64, n)
	copy(out, coeffs)
	tmp := make([]float64, n)
	width := n >> levels
	for l := 0; l < levels; l++ {
		double := width * 2
		for i := 0; i < width; i++ {
			a, d := out[i], out[width+i]
			tmp[2*i] = (a + d) / sqrt2
			tmp[2*i+1] = (a - d) / sqrt2
		}
		copy(out[:double], tmp[:double])
		width = double
	}
	return out, nil
}

// Threshold zeroes all but the keep largest-magnitude coefficients,
// returning the number actually kept. The first coefficient (the overall
// mean at full depth) is always kept in addition to the keep budget when
// keep > 0, since dropping it shifts the whole reconstruction.
func Threshold(coeffs []float64, keep int) (int, error) {
	if keep < 0 {
		return 0, fmt.Errorf("wavelet: negative keep count %d", keep)
	}
	if keep >= len(coeffs) {
		return len(coeffs), nil
	}
	type mag struct {
		idx int
		abs float64
	}
	mags := make([]mag, len(coeffs))
	for i, c := range coeffs {
		mags[i] = mag{i, math.Abs(c)}
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i].abs > mags[j].abs })
	keepSet := make(map[int]bool, keep+1)
	for i := 0; i < keep; i++ {
		keepSet[mags[i].idx] = true
	}
	if keep > 0 {
		keepSet[0] = true
	}
	for i := range coeffs {
		if !keepSet[i] {
			coeffs[i] = 0
		}
	}
	return len(keepSet), nil
}

// Compressed is a sparse wavelet representation: the values of the retained
// coefficients and their positions.
type Compressed struct {
	N      int // original (padded) length
	Levels int
	Index  []int32
	Coeff  []float64
}

// Compress transforms vals (padding to a power of two if needed), keeps the
// `keep` largest coefficients, and returns the sparse representation along
// with the original length before padding.
func Compress(vals []float64, levels, keep int) (*Compressed, int, error) {
	padded, orig := Pad(vals)
	if levels > log2(len(padded)) {
		levels = log2(len(padded))
	}
	if levels < 1 {
		levels = 1
	}
	coeffs, err := Forward(padded, levels)
	if err != nil {
		return nil, 0, err
	}
	if _, err := Threshold(coeffs, keep); err != nil {
		return nil, 0, err
	}
	c := &Compressed{N: len(padded), Levels: levels}
	for i, v := range coeffs {
		if v != 0 {
			c.Index = append(c.Index, int32(i))
			c.Coeff = append(c.Coeff, v)
		}
	}
	return c, orig, nil
}

// Decompress reconstructs a dense signal of length origLen from the sparse
// representation.
func (c *Compressed) Decompress(origLen int) ([]float64, error) {
	if origLen < 0 || origLen > c.N {
		return nil, fmt.Errorf("wavelet: original length %d out of range [0,%d]", origLen, c.N)
	}
	dense := make([]float64, c.N)
	for i, idx := range c.Index {
		if idx < 0 || int(idx) >= c.N {
			return nil, fmt.Errorf("wavelet: corrupt coefficient index %d", idx)
		}
		dense[idx] = c.Coeff[i]
	}
	full, err := Inverse(dense, c.Levels)
	if err != nil {
		return nil, err
	}
	return full[:origLen], nil
}

// StoredCoefficients returns how many coefficients the sparse form retains.
func (c *Compressed) StoredCoefficients() int { return len(c.Coeff) }

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
