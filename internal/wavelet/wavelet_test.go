package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPowerOfTwoHelpers(t *testing.T) {
	for n, want := range map[int]bool{1: true, 2: true, 3: false, 4: true, 0: false, -4: false, 1024: true, 1000: false} {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v", n, got)
		}
	}
	for n, want := range map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024} {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPad(t *testing.T) {
	p, orig := Pad([]float64{1, 2, 3})
	if orig != 3 || len(p) != 4 || p[3] != 3 {
		t.Errorf("Pad: %v orig=%d", p, orig)
	}
	p2, orig2 := Pad([]float64{1, 2})
	if orig2 != 2 || len(p2) != 2 {
		t.Errorf("Pad pow2: %v", p2)
	}
	p3, orig3 := Pad(nil)
	if orig3 != 0 || len(p3) != 1 {
		t.Errorf("Pad empty: %v orig=%d", p3, orig3)
	}
}

func TestForwardKnownValues(t *testing.T) {
	// One level on [a,b] gives [(a+b)/√2, (a-b)/√2].
	c, err := Forward([]float64{3, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c[0], 4/sqrt2, 1e-12) || !almostEq(c[1], 2/sqrt2, 1e-12) {
		t.Errorf("Forward([3,1]) = %v", c)
	}
	// Constant signal: all detail coefficients vanish.
	c2, err := Forward([]float64{5, 5, 5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c2); i++ {
		if !almostEq(c2[i], 0, 1e-12) {
			t.Errorf("constant signal detail[%d] = %g", i, c2[i])
		}
	}
	if !almostEq(c2[0], 10, 1e-12) { // 5*sqrt(4)
		t.Errorf("constant approx = %g, want 10", c2[0])
	}
}

func TestForwardErrors(t *testing.T) {
	if _, err := Forward([]float64{1, 2, 3}, 1); err == nil {
		t.Error("non power-of-two accepted")
	}
	if _, err := Forward([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Error("levels=0 accepted")
	}
	if _, err := Forward([]float64{1, 2, 3, 4}, 3); err == nil {
		t.Error("too many levels accepted")
	}
	if _, err := Inverse([]float64{1, 2, 3}, 1); err == nil {
		t.Error("inverse non power-of-two accepted")
	}
	if _, err := Inverse([]float64{1, 2, 3, 4}, 9); err == nil {
		t.Error("inverse too many levels accepted")
	}
}

func TestPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 64, 256} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		maxLevels := log2(n)
		for levels := 1; levels <= maxLevels; levels++ {
			c, err := Forward(vals, levels)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Inverse(c, levels)
			if err != nil {
				t.Fatal(err)
			}
			for i := range vals {
				if !almostEq(back[i], vals[i], 1e-9) {
					t.Fatalf("n=%d levels=%d: reconstruction[%d] = %g, want %g", n, levels, i, back[i], vals[i])
				}
			}
		}
	}
}

// Orthonormal Haar preserves energy (Parseval).
func TestEnergyPreservation(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		n := 1
		for n*2 <= len(raw) && n < 128 {
			n *= 2
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e6)
		}
		c, err := Forward(vals, log2(n))
		if err != nil {
			return n == 1 // level range invalid only for n=1
		}
		var e1, e2 float64
		for i := range vals {
			e1 += vals[i] * vals[i]
			e2 += c[i] * c[i]
		}
		return almostEq(e1, e2, 1e-6*(1+e1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThreshold(t *testing.T) {
	coeffs := []float64{10, -8, 0.1, 3, -0.2, 5, 0, 1}
	kept, err := Threshold(coeffs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 3 { // 10, -8, 5 — index 0 already among the top 3
		t.Errorf("kept = %d, want 3", kept)
	}
	if coeffs[0] != 10 || coeffs[1] != -8 || coeffs[5] != 5 {
		t.Errorf("top coefficients modified: %v", coeffs)
	}
	if coeffs[2] != 0 || coeffs[3] != 0 {
		t.Errorf("small coefficients survived: %v", coeffs)
	}

	// Index 0 is kept even when not in the top-k.
	c2 := []float64{0.01, 5, -4, 3}
	kept2, err := Threshold(c2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kept2 != 3 || c2[0] != 0.01 {
		t.Errorf("mean coefficient dropped: kept=%d %v", kept2, c2)
	}

	if _, err := Threshold(c2, -1); err == nil {
		t.Error("negative keep accepted")
	}
	c3 := []float64{1, 2}
	if kept, _ := Threshold(c3, 10); kept != 2 {
		t.Errorf("keep>len kept %d", kept)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 100) // not a power of two: exercises padding
	for i := range vals {
		vals[i] = math.Sin(float64(i)/7) * 20
	}
	noisy := make([]float64, len(vals))
	for i := range vals {
		noisy[i] = vals[i] + rng.NormFloat64()*0.5
	}
	c, orig, err := Compress(noisy, 7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if orig != 100 {
		t.Errorf("orig = %d", orig)
	}
	if c.StoredCoefficients() > 41 {
		t.Errorf("stored %d coefficients, budget 40+mean", c.StoredCoefficients())
	}
	back, err := c.Decompress(orig)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 100 {
		t.Fatalf("decompressed length %d", len(back))
	}
	// Smooth signal: 20 of 128 coefficients should reconstruct well.
	var mse float64
	for i := range vals {
		d := back[i] - vals[i]
		mse += d * d
	}
	mse /= float64(len(vals))
	if rmse := math.Sqrt(mse); rmse > 2.0 {
		t.Errorf("RMSE %g too high for smooth signal", rmse)
	}
}

func TestCompressLevelClamping(t *testing.T) {
	// levels larger than log2(n) must be clamped, not fail.
	c, orig, err := Compress([]float64{1, 2, 3, 4}, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress(orig)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if !almostEq(back[i], want, 1e-9) {
			t.Errorf("back[%d] = %g", i, back[i])
		}
	}
	// levels < 1 clamped too.
	if _, _, err := Compress([]float64{1, 2}, 0, 2); err != nil {
		t.Errorf("levels=0 not clamped: %v", err)
	}
}

func TestDecompressErrors(t *testing.T) {
	c, _, err := Compress([]float64{1, 2, 3, 4}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(-1); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := c.Decompress(c.N + 1); err == nil {
		t.Error("oversize length accepted")
	}
	corrupt := &Compressed{N: 4, Levels: 2, Index: []int32{99}, Coeff: []float64{1}}
	if _, err := corrupt.Decompress(4); err == nil {
		t.Error("corrupt index accepted")
	}
}
