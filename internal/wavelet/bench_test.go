package wavelet

import (
	"math/rand"
	"testing"
)

func benchSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	return vals
}

func BenchmarkForward1024(b *testing.B) {
	vals := benchSignal(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Forward(vals, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInverse1024(b *testing.B) {
	vals := benchSignal(1024)
	coeffs, err := Forward(vals, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(coeffs, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompress1024Keep64(b *testing.B) {
	vals := benchSignal(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(vals, 10, 64); err != nil {
			b.Fatal(err)
		}
	}
}
