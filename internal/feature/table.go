package feature

import (
	"fmt"
	"strings"

	"seqrep/internal/rep"
)

// PeakTable renders the paper's Table 1 for a representation: one row per
// peak with the rising and descending functions and the start/end points
// of the respective subsequences. Functions are printed in the paper's
// annotation style (e.g. "22x-5839").
func PeakTable(fs *rep.FunctionSeries, peaks []Peak) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-18s %-12s %-12s %-18s %-12s %-12s\n",
		"Peak", "Rising Function", "RStart", "REnd", "Descending Function", "DStart", "DEnd")
	for i, p := range peaks {
		if p.RisingSeg < 0 || p.RisingSeg >= len(fs.Segments) ||
			p.DescendingSeg < 0 || p.DescendingSeg >= len(fs.Segments) {
			return "", fmt.Errorf("feature: peak %d references segment out of range", i)
		}
		rc, err := fs.Segments[p.RisingSeg].Curve()
		if err != nil {
			return "", fmt.Errorf("feature: peak %d rising curve: %w", i, err)
		}
		dc, err := fs.Segments[p.DescendingSeg].Curve()
		if err != nil {
			return "", fmt.Errorf("feature: peak %d descending curve: %w", i, err)
		}
		fmt.Fprintf(&b, "%-5d %-18s %-12s %-12s %-18s %-12s %-12s\n",
			i+1,
			rc.String(),
			fmtPoint(p.RStart.T, p.RStart.V),
			fmtPoint(p.REnd.T, p.REnd.V),
			dc.String(),
			fmtPoint(p.DStart.T, p.DStart.V),
			fmtPoint(p.DEnd.T, p.DEnd.V),
		)
	}
	return b.String(), nil
}

func fmtPoint(t, v float64) string {
	return fmt.Sprintf("(%.0f,%.0f)", t, v)
}
