// Package feature extracts application-level features from the function
// representation — without touching raw samples. This is the payoff of the
// paper's approach (§4.4, §5.2): the behaviour of a sequence is read off
// the behaviour of its representing functions.
//
// Features provided:
//
//   - slope-sign symbols over the alphabet {1, 0, -1} with threshold δ
//     (the paper's §4.4 index alphabet, here spelled Up/Flat/Down);
//   - peaks, found as a rising segment followed (possibly after flats) by
//     a descending segment, with the peak placed at the higher of the
//     rising end point and the descending start point (their Table 1
//     construction);
//   - R-R intervals: time differences between successive peaks (§5.2).
package feature

import (
	"fmt"
	"strings"

	"seqrep/internal/rep"
	"seqrep/internal/seq"
)

// Symbol classifies one segment's slope against the threshold δ.
type Symbol byte

// The slope-sign alphabet. The paper writes {1, 0, -1}; the byte values
// here are chosen so symbol strings read naturally in patterns.
const (
	Up   Symbol = 'U' // slope > δ    (the paper's "1")
	Flat Symbol = 'F' // -δ ≤ slope ≤ δ  (the paper's "0")
	Down Symbol = 'D' // slope < -δ   (the paper's "-1")
)

// PaperString renders a symbol in the paper's notation.
func (s Symbol) PaperString() string {
	switch s {
	case Up:
		return "1"
	case Flat:
		return "0"
	case Down:
		return "-1"
	default:
		return fmt.Sprintf("Symbol(%c)", byte(s))
	}
}

// Classify maps a slope to its symbol under threshold delta.
func Classify(slope, delta float64) Symbol {
	switch {
	case slope > delta:
		return Up
	case slope < -delta:
		return Down
	default:
		return Flat
	}
}

// Symbolize maps every segment of the representation to its slope-sign
// symbol, producing the string that pattern queries run against. The paper
// takes δ = 0.25 for the goal-post example. delta must be non-negative.
func Symbolize(fs *rep.FunctionSeries, delta float64) (string, error) {
	if delta < 0 {
		return "", fmt.Errorf("feature: negative slope threshold %g", delta)
	}
	if fs == nil || len(fs.Segments) == 0 {
		return "", fmt.Errorf("feature: empty representation")
	}
	var b strings.Builder
	for _, slope := range fs.Slopes() {
		b.WriteByte(byte(Classify(slope, delta)))
	}
	return b.String(), nil
}

// PaperSymbols renders a symbol string in the paper's {1, 0, -1} notation,
// space separated, for experiment output.
func PaperSymbols(symbols string) string {
	parts := make([]string, 0, len(symbols))
	for i := 0; i < len(symbols); i++ {
		parts = append(parts, Symbol(symbols[i]).PaperString())
	}
	return strings.Join(parts, " ")
}

// Peak is one detected peak, carrying the bookkeeping of the paper's
// Table 1: the rising and descending segments and their boundary points.
type Peak struct {
	RisingSeg     int // index of the rising segment in the representation
	DescendingSeg int // index of the descending segment

	RStart seq.Point // start of the rising subsequence
	REnd   seq.Point // end of the rising subsequence
	DStart seq.Point // start of the descending subsequence
	DEnd   seq.Point // end of the descending subsequence

	Time  float64 // where the peak occurred: the higher of REnd/DStart
	Value float64 // amplitude at the peak
}

// Peaks detects peaks from the representation alone: a rising segment,
// optionally followed by flat segments, followed by a descending segment
// (the "1 0* -1" pattern of §4.4). When several consecutive segments rise,
// the last one is the rising flank. The peak position follows the paper's
// §5.2 step 3: the boundary point with the larger amplitude.
func Peaks(fs *rep.FunctionSeries, delta float64) ([]Peak, error) {
	symbols, err := Symbolize(fs, delta)
	if err != nil {
		return nil, err
	}
	var peaks []Peak
	n := len(symbols)
	for i := 0; i < n; i++ {
		if symbols[i] != byte(Up) {
			continue
		}
		// Take the last Up of this rising run.
		for i+1 < n && symbols[i+1] == byte(Up) {
			i++
		}
		rise := i
		// Skip flats between the flanks.
		j := i + 1
		for j < n && symbols[j] == byte(Flat) {
			j++
		}
		if j >= n || symbols[j] != byte(Down) {
			continue // no descending flank: not a peak
		}
		rs, ds := &fs.Segments[rise], &fs.Segments[j]
		p := Peak{
			RisingSeg:     rise,
			DescendingSeg: j,
			RStart:        seq.Point{T: rs.StartT, V: rs.StartV},
			REnd:          seq.Point{T: rs.EndT, V: rs.EndV},
			DStart:        seq.Point{T: ds.StartT, V: ds.StartV},
			DEnd:          seq.Point{T: ds.EndT, V: ds.EndV},
		}
		if p.REnd.V >= p.DStart.V {
			p.Time, p.Value = p.REnd.T, p.REnd.V
		} else {
			p.Time, p.Value = p.DStart.T, p.DStart.V
		}
		peaks = append(peaks, p)
		i = j - 1 // resume scanning at the descending flank
	}
	return peaks, nil
}

// Intervals returns the time differences between successive peaks — the
// R-R interval sequence of §5.2 when applied to electrocardiograms.
func Intervals(peaks []Peak) []float64 {
	if len(peaks) < 2 {
		return nil
	}
	out := make([]float64, 0, len(peaks)-1)
	for i := 1; i < len(peaks); i++ {
		out = append(out, peaks[i].Time-peaks[i-1].Time)
	}
	return out
}

// Profile bundles every representation-derived feature of one sequence;
// the query engine stores one per ingested sequence.
type Profile struct {
	Symbols   string
	Slopes    []float64
	Peaks     []Peak
	Intervals []float64
}

// Extract computes the full feature profile under slope threshold delta.
func Extract(fs *rep.FunctionSeries, delta float64) (*Profile, error) {
	symbols, err := Symbolize(fs, delta)
	if err != nil {
		return nil, err
	}
	peaks, err := Peaks(fs, delta)
	if err != nil {
		return nil, err
	}
	return &Profile{
		Symbols:   symbols,
		Slopes:    fs.Slopes(),
		Peaks:     peaks,
		Intervals: Intervals(peaks),
	}, nil
}

// Steepness summarizes slope magnitudes — one of the paper's example
// approximation dimensions ("the steepness of the slopes").
type Steepness struct {
	MaxRise float64 // largest positive slope
	MaxDrop float64 // most negative slope
	MeanAbs float64 // mean |slope|
}

// MeasureSteepness computes slope statistics over the representation.
func MeasureSteepness(fs *rep.FunctionSeries) Steepness {
	var st Steepness
	slopes := fs.Slopes()
	if len(slopes) == 0 {
		return st
	}
	sum := 0.0
	for _, s := range slopes {
		if s > st.MaxRise {
			st.MaxRise = s
		}
		if s < st.MaxDrop {
			st.MaxDrop = s
		}
		if s < 0 {
			sum -= s
		} else {
			sum += s
		}
	}
	st.MeanAbs = sum / float64(len(slopes))
	return st
}
