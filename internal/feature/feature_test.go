package feature

import (
	"math"
	"strings"
	"testing"

	"seqrep/internal/breaking"
	"seqrep/internal/fit"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

// represent breaks s with the interpolation breaker and keeps byproduct
// curves — the pipeline the paper uses for its feature examples.
func represent(t *testing.T, s seq.Sequence, eps float64) *rep.FunctionSeries {
	t.Helper()
	segs, err := breaking.Interpolation(eps).Break(s)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := rep.Build(s, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestClassify(t *testing.T) {
	cases := []struct {
		slope, delta float64
		want         Symbol
	}{
		{1, 0.25, Up},
		{0.26, 0.25, Up},
		{0.25, 0.25, Flat},
		{0, 0.25, Flat},
		{-0.25, 0.25, Flat},
		{-0.26, 0.25, Down},
		{-3, 0.25, Down},
		{0.1, 0, Up},
		{0, 0, Flat},
		{-0.1, 0, Down},
	}
	for _, c := range cases {
		if got := Classify(c.slope, c.delta); got != c.want {
			t.Errorf("Classify(%g, %g) = %c, want %c", c.slope, c.delta, got, c.want)
		}
	}
}

func TestSymbolPaperString(t *testing.T) {
	if Up.PaperString() != "1" || Flat.PaperString() != "0" || Down.PaperString() != "-1" {
		t.Error("paper notation broken")
	}
	if !strings.Contains(Symbol('x').PaperString(), "Symbol") {
		t.Error("unknown symbol rendering")
	}
	if got := PaperSymbols("UFD"); got != "1 0 -1" {
		t.Errorf("PaperSymbols = %q", got)
	}
}

func TestSymbolizeFever(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	fs := represent(t, fever, 0.5)
	symbols, err := Symbolize(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(symbols) != fs.NumSegments() {
		t.Fatalf("symbol count %d, segments %d", len(symbols), fs.NumSegments())
	}
	// Two-peak shape: must contain exactly two U-runs, each followed by a
	// D after optional Fs.
	peaks, err := Peaks(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 2 {
		t.Fatalf("fever peaks = %d (symbols %q)", len(peaks), symbols)
	}
}

func TestSymbolizeErrors(t *testing.T) {
	fever, _ := synth.Fever(synth.FeverOpts{})
	fs := represent(t, fever, 0.5)
	if _, err := Symbolize(fs, -1); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := Symbolize(nil, 0.5); err == nil {
		t.Error("nil representation accepted")
	}
	if _, err := Symbolize(&rep.FunctionSeries{}, 0.5); err == nil {
		t.Error("empty representation accepted")
	}
}

func TestPeaksOnFeverGroundTruth(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	fs := represent(t, fever, 0.5)
	peaks, err := Peaks(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 2 {
		t.Fatalf("peaks = %d, want 2", len(peaks))
	}
	// Ground truth: peaks at 8h and 16h.
	if math.Abs(peaks[0].Time-8) > 1.5 {
		t.Errorf("peak 1 at %g, want ~8", peaks[0].Time)
	}
	if math.Abs(peaks[1].Time-16) > 1.5 {
		t.Errorf("peak 2 at %g, want ~16", peaks[1].Time)
	}
	// Peak values near the generated maximum (~105).
	for i, p := range peaks {
		if p.Value < 103 || p.Value > 106 {
			t.Errorf("peak %d value %g", i, p.Value)
		}
		if p.RisingSeg >= p.DescendingSeg {
			t.Errorf("peak %d segment order", i)
		}
		// Boundary points are consistent: rising ends before descending starts
		// (possibly with flats between).
		if p.REnd.T > p.DStart.T {
			t.Errorf("peak %d REnd after DStart", i)
		}
	}
}

func TestPeaksThreePeakFever(t *testing.T) {
	s, err := synth.ThreePeakFever(97)
	if err != nil {
		t.Fatal(err)
	}
	fs := represent(t, s, 0.5)
	peaks, err := Peaks(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 3 {
		t.Errorf("three-peak fever detected %d peaks", len(peaks))
	}
}

func TestPeaksMonotoneHasNone(t *testing.T) {
	line := synth.Line(50, 1, 0)
	fs := represent(t, line, 0.1)
	peaks, err := Peaks(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 0 {
		t.Errorf("monotone line has %d peaks", len(peaks))
	}
	// Valley (descending then rising) is not a peak either.
	valley := make([]float64, 40)
	for i := range valley {
		valley[i] = math.Abs(float64(i) - 20)
	}
	vfs := represent(t, seq.New(valley), 0.1)
	vp, err := Peaks(vfs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(vp) != 0 {
		t.Errorf("valley detected as %d peaks", len(vp))
	}
}

func TestPeakPositionUsesHigherBoundary(t *testing.T) {
	// Build a representation by hand: rising segment ends at value 10,
	// descending starts at value 12 (a flat in between rose slightly within
	// tolerance) — peak must sit at DStart.
	fs := &rep.FunctionSeries{N: 9, Segments: []rep.Segment{
		{Lo: 0, Hi: 2, StartT: 0, StartV: 0, EndT: 2, EndV: 10, Kind: fit.KindLine, Params: []float64{5, 0}},
		{Lo: 3, Hi: 5, StartT: 3, StartV: 11, EndT: 5, EndV: 12, Kind: fit.KindLine, Params: []float64{0.2, 10.4}},
		{Lo: 6, Hi: 8, StartT: 6, StartV: 12, EndT: 8, EndV: 0, Kind: fit.KindLine, Params: []float64{-6, 48}},
	}}
	peaks, err := Peaks(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 1 {
		t.Fatalf("peaks = %d", len(peaks))
	}
	if peaks[0].Time != 6 || peaks[0].Value != 12 {
		t.Errorf("peak at (%g, %g), want (6, 12) from DStart", peaks[0].Time, peaks[0].Value)
	}
}

func TestIntervals(t *testing.T) {
	peaks := []Peak{{Time: 10}, {Time: 25}, {Time: 45}}
	got := Intervals(peaks)
	if len(got) != 2 || got[0] != 15 || got[1] != 20 {
		t.Errorf("Intervals = %v", got)
	}
	if Intervals(peaks[:1]) != nil {
		t.Error("single peak should have no intervals")
	}
	if Intervals(nil) != nil {
		t.Error("no peaks should have no intervals")
	}
}

func TestECGRRIntervals(t *testing.T) {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := represent(t, ecg, 10)
	profile, err := Extract(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile.Peaks) != len(rPeaks) {
		t.Fatalf("detected %d peaks, ground truth %d (symbols %q)",
			len(profile.Peaks), len(rPeaks), profile.Symbols)
	}
	for i, p := range profile.Peaks {
		if math.Abs(p.Time-rPeaks[i]) > 5 {
			t.Errorf("peak %d at %g, ground truth %g", i, p.Time, rPeaks[i])
		}
	}
	// RR intervals near the generator's 130 samples.
	for i, rr := range profile.Intervals {
		if math.Abs(rr-130) > 8 {
			t.Errorf("interval %d = %g, want ~130", i, rr)
		}
	}
}

func TestExtractProfileConsistency(t *testing.T) {
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	fs := represent(t, fever, 0.5)
	p, err := Extract(fs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slopes) != len(p.Symbols) {
		t.Errorf("slopes %d vs symbols %d", len(p.Slopes), len(p.Symbols))
	}
	if len(p.Intervals) != len(p.Peaks)-1 {
		t.Errorf("intervals %d for %d peaks", len(p.Intervals), len(p.Peaks))
	}
	if _, err := Extract(nil, 0.25); err == nil {
		t.Error("nil representation accepted")
	}
}

func TestMeasureSteepness(t *testing.T) {
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	fs := represent(t, fever, 0.5)
	st := MeasureSteepness(fs)
	if st.MaxRise <= 0 || st.MaxDrop >= 0 {
		t.Errorf("steepness %+v", st)
	}
	if st.MeanAbs <= 0 || st.MeanAbs > st.MaxRise {
		t.Errorf("MeanAbs = %g", st.MeanAbs)
	}
	if got := MeasureSteepness(&rep.FunctionSeries{}); got != (Steepness{}) {
		t.Errorf("empty steepness %+v", got)
	}
}

func TestPeakTable(t *testing.T) {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fs := represent(t, ecg, 10)
	peaks, err := Peaks(fs, 1)
	if err != nil {
		t.Fatal(err)
	}
	table, err := PeakTable(fs, peaks)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "Rising Function") || !strings.Contains(table, "DEnd") {
		t.Errorf("table header missing:\n%s", table)
	}
	lines := strings.Count(table, "\n")
	if lines != len(peaks)+1 {
		t.Errorf("table has %d lines for %d peaks", lines, len(peaks))
	}
	// Out-of-range peak reference fails loudly.
	bad := []Peak{{RisingSeg: 999, DescendingSeg: 0}}
	if _, err := PeakTable(fs, bad); err == nil {
		t.Error("bad peak reference accepted")
	}
}
