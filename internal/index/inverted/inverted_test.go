package inverted

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func mustIndex(t *testing.T, width float64) *Index {
	t.Helper()
	ix, err := New(width)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewValidation(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(w); err == nil {
			t.Errorf("width %g accepted", w)
		}
	}
}

func TestAddQueryRoundTrip(t *testing.T) {
	ix := mustIndex(t, 1)
	// The paper's example: RR intervals of the two ECGs.
	for i, rr := range []float64{145, 145, 145} {
		if err := ix.Add(rr, Ref{ID: "ecg1", Pos: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, rr := range []float64{136, 133, 137} {
		if err := ix.Add(rr, Ref{ID: "ecg2", Pos: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 6 {
		t.Errorf("Len = %d", ix.Len())
	}

	// The paper's query: interval 135 ± 2 finds only ecg2.
	ids, err := ix.QueryIDs(133, 137)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "ecg2" {
		t.Errorf("QueryIDs(133,137) = %v, want [ecg2]", ids)
	}

	// Wide range finds both, each once.
	ids, err = ix.QueryIDs(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "ecg1" || ids[1] != "ecg2" {
		t.Errorf("QueryIDs(100,200) = %v", ids)
	}

	// Empty range.
	ids, err = ix.QueryIDs(300, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("empty range returned %v", ids)
	}
}

func TestQueryRefsSortedAndDeduped(t *testing.T) {
	ix := mustIndex(t, 1)
	refs := []Ref{{"b", 2}, {"a", 1}, {"b", 1}, {"a", 0}}
	for _, r := range refs {
		if err := ix.Add(50, r); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate add is a no-op.
	if err := ix.Add(50, Ref{"a", 1}); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 4 {
		t.Errorf("Len = %d after duplicate", ix.Len())
	}
	got, err := ix.Query(50, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []Ref{{"a", 0}, {"a", 1}, {"b", 1}, {"b", 2}}
	if len(got) != len(want) {
		t.Fatalf("Query = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Query[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddValidation(t *testing.T) {
	ix := mustIndex(t, 1)
	if err := ix.Add(math.NaN(), Ref{"x", 0}); err == nil {
		t.Error("NaN accepted")
	}
	if err := ix.Add(math.Inf(-1), Ref{"x", 0}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	ix := mustIndex(t, 1)
	if _, err := ix.Query(5, 4); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := ix.Query(math.NaN(), 4); err == nil {
		t.Error("NaN bound accepted")
	}
}

func TestBucketing(t *testing.T) {
	ix := mustIndex(t, 10)
	if err := ix.Add(14, Ref{"a", 0}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(19.9, Ref{"b", 0}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(20, Ref{"c", 0}); err != nil {
		t.Fatal(err)
	}
	if ix.Buckets() != 2 {
		t.Errorf("Buckets = %d, want 2", ix.Buckets())
	}
	// Querying 10..19 hits the first bucket only.
	ids, err := ix.QueryIDs(10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("bucket query = %v", ids)
	}
	if ix.BucketWidth() != 10 {
		t.Error("BucketWidth")
	}
	// Negative values bucket consistently (floor semantics).
	if err := ix.Add(-5, Ref{"neg", 0}); err != nil {
		t.Fatal(err)
	}
	ids, err = ix.QueryIDs(-10, -1)
	if err != nil || len(ids) != 1 || ids[0] != "neg" {
		t.Errorf("negative bucket query = %v, %v", ids, err)
	}
}

func TestRemoveID(t *testing.T) {
	ix := mustIndex(t, 1)
	for i := 0; i < 5; i++ {
		if err := ix.Add(float64(100+i), Ref{ID: "keep", Pos: int32(i)}); err != nil {
			t.Fatal(err)
		}
		if err := ix.Add(float64(100+i), Ref{ID: "drop", Pos: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.RemoveID("drop"); got != 5 {
		t.Errorf("RemoveID removed %d", got)
	}
	if got := ix.RemoveID("drop"); got != 0 {
		t.Errorf("second RemoveID removed %d", got)
	}
	if ix.Len() != 5 {
		t.Errorf("Len = %d", ix.Len())
	}
	ids, err := ix.QueryIDs(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "keep" {
		t.Errorf("after removal: %v", ids)
	}
}

func TestRemoveIDDropsEmptyBuckets(t *testing.T) {
	ix := mustIndex(t, 1)
	if err := ix.Add(42, Ref{"only", 0}); err != nil {
		t.Fatal(err)
	}
	ix.RemoveID("only")
	if ix.Buckets() != 0 {
		t.Errorf("empty bucket retained: %d", ix.Buckets())
	}
}

// Differential test against a brute-force reference.
func TestQueryAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ix := mustIndex(t, 2.5)
	type entry struct {
		v float64
		r Ref
	}
	var all []entry
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 300
		r := Ref{ID: string(rune('a' + rng.Intn(20))), Pos: int32(rng.Intn(10))}
		if err := ix.Add(v, r); err != nil {
			t.Fatal(err)
		}
		all = append(all, entry{v, r})
	}
	bucket := func(v float64) int64 { return int64(math.Floor(v / 2.5)) }
	for trial := 0; trial < 40; trial++ {
		lo := rng.Float64() * 300
		hi := lo + rng.Float64()*50
		got, err := ix.Query(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[Ref]bool{}
		var want []Ref
		for _, e := range all {
			if bucket(e.v) >= bucket(lo) && bucket(e.v) <= bucket(hi) && !seen[e.r] {
				seen[e.r] = true
				want = append(want, e.r)
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].ID != want[j].ID {
				return want[i].ID < want[j].ID
			}
			return want[i].Pos < want[j].Pos
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d refs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d ref %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
