// Package inverted implements the inverted-file index of the paper's
// Figure 10: a B-tree over bucketed feature values (R-R interval lengths
// for the cardiology application) pointing to postings — the sets of
// sequence representations containing those values. A query of the form
// "interval = n ± ε" becomes a range scan of the B-tree followed by a walk
// of the matching postings.
//
// The paper notes such an index is reasonable because the indexed quantity
// is physically bounded ("the interval can not exceed a certain integer and
// can not go below some threshold for any living patient"), so there is a
// limited number of bucket values.
package inverted

import (
	"fmt"
	"math"
	"sort"

	"seqrep/internal/index/btree"
)

// Ref is one posting: the sequence that contains the feature value and the
// position (e.g. which inter-peak gap) where it occurs.
type Ref struct {
	ID  string
	Pos int32
}

// postings is a bucket of the postings file: all references filed under
// one bucket key, kept sorted by (ID, Pos).
type postings struct {
	refs []Ref
}

// Index is the inverted file: bucketed float keys → postings.
type Index struct {
	bucketWidth float64
	tree        *btree.Tree[int64, *postings]
	count       int
}

// New creates an index whose keys are bucketed to the given width: values
// v and w share a bucket when floor(v/width) == floor(w/width). Width 1
// with integer-valued features reproduces the paper's integer buckets.
func New(bucketWidth float64) (*Index, error) {
	if bucketWidth <= 0 || math.IsNaN(bucketWidth) || math.IsInf(bucketWidth, 0) {
		return nil, fmt.Errorf("inverted: bucket width must be positive and finite, got %g", bucketWidth)
	}
	tr, err := btree.New[int64, *postings](btree.DefaultOrder)
	if err != nil {
		return nil, err
	}
	return &Index{bucketWidth: bucketWidth, tree: tr}, nil
}

// bucket maps a value to its bucket key.
func (ix *Index) bucket(v float64) int64 {
	return int64(math.Floor(v / ix.bucketWidth))
}

// BucketWidth returns the configured bucket width.
func (ix *Index) BucketWidth() float64 { return ix.bucketWidth }

// Len returns the total number of postings stored.
func (ix *Index) Len() int { return ix.count }

// Buckets returns the number of distinct occupied buckets.
func (ix *Index) Buckets() int { return ix.tree.Len() }

// Add files ref under the bucket of value. Duplicate (value-bucket, ref)
// pairs are ignored. It returns an error for non-finite values.
func (ix *Index) Add(value float64, ref Ref) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("inverted: non-finite value")
	}
	key := ix.bucket(value)
	p, ok := ix.tree.Get(key)
	if !ok {
		p = &postings{}
		ix.tree.Put(key, p)
	}
	i := sort.Search(len(p.refs), func(i int) bool {
		if p.refs[i].ID != ref.ID {
			return p.refs[i].ID > ref.ID
		}
		return p.refs[i].Pos >= ref.Pos
	})
	if i < len(p.refs) && p.refs[i] == ref {
		return nil // duplicate
	}
	p.refs = append(p.refs, Ref{})
	copy(p.refs[i+1:], p.refs[i:])
	p.refs[i] = ref
	ix.count++
	return nil
}

// Query returns all postings whose bucketed value falls within [lo, hi]
// (the paper's "n ± ε" range query: pass lo = n-ε, hi = n+ε). Results are
// deduplicated by reference and ordered by (ID, Pos).
func (ix *Index) Query(lo, hi float64) ([]Ref, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, fmt.Errorf("inverted: NaN query bound")
	}
	if hi < lo {
		return nil, fmt.Errorf("inverted: inverted range [%g,%g]", lo, hi)
	}
	var out []Ref
	ix.tree.Range(ix.bucket(lo), ix.bucket(hi), func(_ int64, p *postings) bool {
		out = append(out, p.refs...)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Pos < out[j].Pos
	})
	return dedupe(out), nil
}

// QueryIDs is Query reduced to the distinct sequence IDs, which is what
// the physician-facing interval query of §5.2 returns ("the set of
// pointers to the ECG representations which contain those interval
// lengths").
func (ix *Index) QueryIDs(lo, hi float64) ([]string, error) {
	refs, err := ix.Query(lo, hi)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, r := range refs {
		if len(ids) == 0 || ids[len(ids)-1] != r.ID {
			ids = append(ids, r.ID)
		}
	}
	return ids, nil
}

// RemoveID drops every posting belonging to the sequence. It returns the
// number of postings removed. The scan is linear in the number of buckets,
// acceptable because re-ingestion is rare compared to queries.
func (ix *Index) RemoveID(id string) int {
	removed := 0
	var emptied []int64
	ix.tree.Ascend(func(key int64, p *postings) bool {
		kept := p.refs[:0]
		for _, r := range p.refs {
			if r.ID == id {
				removed++
				continue
			}
			kept = append(kept, r)
		}
		p.refs = kept
		if len(p.refs) == 0 {
			emptied = append(emptied, key)
		}
		return true
	})
	for _, key := range emptied {
		ix.tree.Delete(key)
	}
	ix.count -= removed
	return removed
}

func dedupe(refs []Ref) []Ref {
	if len(refs) < 2 {
		return refs
	}
	out := refs[:1]
	for _, r := range refs[1:] {
		if r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	return out
}
