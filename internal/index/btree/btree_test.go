package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func mustTree(t *testing.T, order int) *Tree[int64, string] {
	t.Helper()
	tr, err := New[int64, string](order)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewRejectsTinyOrder(t *testing.T) {
	for _, o := range []int{-1, 0, 1, 2} {
		if _, err := New[int64, int](o); err == nil {
			t.Errorf("order %d accepted", o)
		}
	}
}

func TestPutGetBasic(t *testing.T) {
	tr := mustTree(t, 4)
	if _, ok := tr.Get(1); ok {
		t.Error("empty tree returned a value")
	}
	tr.Put(1, "a")
	tr.Put(2, "b")
	tr.Put(3, "c")
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	for k, want := range map[int64]string{1: "a", 2: "b", 3: "c"} {
		if got, ok := tr.Get(k); !ok || got != want {
			t.Errorf("Get(%d) = %q, %v", k, got, ok)
		}
	}
	// Upsert replaces without growing.
	tr.Put(2, "B")
	if tr.Len() != 3 {
		t.Errorf("upsert grew tree to %d", tr.Len())
	}
	if got, _ := tr.Get(2); got != "B" {
		t.Errorf("upsert lost: %q", got)
	}
}

func TestSplitsAndInvariants(t *testing.T) {
	tr := mustTree(t, 3) // smallest legal order: splits happen immediately
	for i := int64(0); i < 200; i++ {
		tr.Put(i, "v")
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Len() != 200 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDescendingInsertion(t *testing.T) {
	tr := mustTree(t, 4)
	for i := int64(100); i > 0; i-- {
		tr.Put(i, "v")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	k, _, ok := tr.Min()
	if !ok || k != 1 {
		t.Errorf("Min = %d, %v", k, ok)
	}
	k, _, ok = tr.Max()
	if !ok || k != 100 {
		t.Errorf("Max = %d, %v", k, ok)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	tr := mustTree(t, 4)
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty")
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := mustTree(t, 4)
	for i := int64(0); i < 50; i++ {
		tr.Put(i, "v")
	}
	if !tr.Delete(25) {
		t.Error("existing key not deleted")
	}
	if tr.Delete(25) {
		t.Error("double delete succeeded")
	}
	if tr.Delete(999) {
		t.Error("missing key deleted")
	}
	if _, ok := tr.Get(25); ok {
		t.Error("deleted key still present")
	}
	if tr.Len() != 49 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	for _, order := range []int{3, 4, 5, 8} {
		tr := mustTree(t, order)
		const n = 300
		perm := rand.New(rand.NewSource(7)).Perm(n)
		for _, i := range perm {
			tr.Put(int64(i), "v")
		}
		perm2 := rand.New(rand.NewSource(8)).Perm(n)
		for step, i := range perm2 {
			if !tr.Delete(int64(i)) {
				t.Fatalf("order %d: delete %d failed", order, i)
			}
			if step%37 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("order %d after %d deletes: %v", order, step+1, err)
				}
			}
		}
		if tr.Len() != 0 {
			t.Errorf("order %d: %d keys remain", order, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRange(t *testing.T) {
	tr := mustTree(t, 4)
	for i := int64(0); i < 100; i += 2 { // even keys only
		tr.Put(i, "v")
	}
	var got []int64
	tr.Range(11, 21, func(k int64, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int64{12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 98, func(int64, string) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
	// Inverted range is empty.
	tr.Range(50, 40, func(int64, string) bool {
		t.Error("inverted range visited a key")
		return false
	})
	// Range outside the keyspace.
	tr.Range(1000, 2000, func(int64, string) bool {
		t.Error("out-of-range visited a key")
		return false
	})
}

func TestAscend(t *testing.T) {
	tr := mustTree(t, 5)
	keys := []int64{5, 1, 9, 3, 7}
	for _, k := range keys {
		tr.Put(k, "v")
	}
	var got []int64
	tr.Ascend(func(k int64, _ string) bool {
		got = append(got, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Ascend = %v", got)
		}
	}
	// Early stop.
	n := 0
	tr.Ascend(func(int64, string) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// Randomized differential test against a reference map, with invariant
// checks throughout. Exercises splits, merges, borrows at several orders.
func TestRandomOpsAgainstReference(t *testing.T) {
	for _, order := range []int{3, 4, 7, 32} {
		rng := rand.New(rand.NewSource(int64(order) * 1000))
		tr := mustTree(t, order)
		ref := map[int64]string{}
		const ops = 3000
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1: // insert biased so the tree grows
				v := string(rune('a' + rng.Intn(26)))
				tr.Put(k, v)
				ref[k] = v
			case 2:
				delTree := tr.Delete(k)
				_, inRef := ref[k]
				if delTree != inRef {
					t.Fatalf("order %d op %d: Delete(%d) = %v, ref %v", order, i, k, delTree, inRef)
				}
				delete(ref, k)
			}
			if i%97 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("order %d op %d: %v", order, i, err)
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("order %d: Len %d != ref %d", order, tr.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := tr.Get(k); !ok || got != v {
				t.Fatalf("order %d: Get(%d) = %q,%v want %q", order, k, got, ok, v)
			}
		}
		// Full ascent equals sorted reference keys.
		var keys []int64
		tr.Ascend(func(k int64, _ string) bool { keys = append(keys, k); return true })
		if len(keys) != len(ref) {
			t.Fatalf("order %d: ascend %d keys, ref %d", order, len(keys), len(ref))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("order %d: ascend out of order", order)
			}
		}
	}
}

// Range results agree with a reference computed from a map.
func TestRangeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tr := mustTree(t, 4)
	ref := map[int64]string{}
	for i := 0; i < 400; i++ {
		k := int64(rng.Intn(1000))
		tr.Put(k, "v")
		ref[k] = "v"
	}
	for trial := 0; trial < 50; trial++ {
		lo := int64(rng.Intn(1000))
		hi := lo + int64(rng.Intn(200))
		var got []int64
		tr.Range(lo, hi, func(k int64, _ string) bool {
			got = append(got, k)
			return true
		})
		var want []int64
		for k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("Range(%d,%d) = %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range(%d,%d)[%d] = %d, want %d", lo, hi, i, got[i], want[i])
			}
		}
	}
}

func TestStringKeys(t *testing.T) {
	tr, err := New[string, int](4)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"peak", "flat", "drop", "rise", "fall", "apex"}
	for i, w := range words {
		tr.Put(w, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []string
	tr.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) {
		t.Errorf("Ascend over strings not sorted: %v", got)
	}
}
