// Package btree implements an in-memory B+tree, the index structure behind
// the paper's inverted-file organization for R-R interval queries (their
// Figure 10 shows "a B-Tree structure which points to the postings file").
//
// Keys live only in internal nodes as separators; all values sit in leaves
// linked left-to-right, so range scans — the paper's "n ± ε" interval
// queries — walk sibling leaves without re-descending.
package btree

import (
	"cmp"
	"fmt"
)

// DefaultOrder is the default maximum number of children per internal node.
const DefaultOrder = 32

// Tree is an in-memory B+tree mapping ordered keys to values.
// The zero value is not usable; construct with New.
type Tree[K cmp.Ordered, V any] struct {
	order int
	root  node[K, V]
	size  int
}

// node is either an *internal or a *leaf.
type node[K cmp.Ordered, V any] interface {
	// findLeaf descends to the leaf that does or would contain key.
	findLeaf(key K) *leaf[K, V]
	// insert adds key/value; on overflow it returns the separator key and
	// the new right sibling (split), else ok=false.
	insert(key K, value V, maxKeys int) (sep K, right node[K, V], split bool, added bool)
	// remove deletes key, reporting whether it was present and whether
	// the node is now underfull (for the parent to rebalance).
	remove(key K, minLeaf, minInternal int) (removed, underfull bool)
	// firstKey returns the smallest key in the subtree.
	firstKey() K
	// depth returns the subtree height (leaf = 1).
	depth() int
}

type leaf[K cmp.Ordered, V any] struct {
	keys   []K
	values []V
	next   *leaf[K, V]
	prev   *leaf[K, V]
}

type internal[K cmp.Ordered, V any] struct {
	keys     []K // len(children)-1 separators
	children []node[K, V]
}

// New creates a B+tree with the given order (maximum children per internal
// node). Order must be at least 3; use DefaultOrder when in doubt.
func New[K cmp.Ordered, V any](order int) (*Tree[K, V], error) {
	if order < 3 {
		return nil, fmt.Errorf("btree: order %d too small (minimum 3)", order)
	}
	return &Tree[K, V]{order: order, root: &leaf[K, V]{}}, nil
}

// Len returns the number of stored keys.
func (t *Tree[K, V]) Len() int { return t.size }

// maxLeafKeys returns the leaf capacity.
func (t *Tree[K, V]) maxLeafKeys() int { return t.order - 1 }

// minLeafKeys is the minimum fill for a non-root leaf.
func (t *Tree[K, V]) minLeafKeys() int { return t.order / 2 }

// minInternalKeys is the minimum separator count for a non-root internal.
func (t *Tree[K, V]) minInternalKeys() int { return (t.order+1)/2 - 1 }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	lf := t.root.findLeaf(key)
	i, ok := search(lf.keys, key)
	if !ok {
		var zero V
		return zero, false
	}
	return lf.values[i], true
}

// Put stores value under key, replacing any existing value.
func (t *Tree[K, V]) Put(key K, value V) {
	sep, right, split, added := t.root.insert(key, value, t.maxLeafKeys())
	if added {
		t.size++
	}
	if split {
		t.root = &internal[K, V]{
			keys:     []K{sep},
			children: []node[K, V]{t.root, right},
		}
	}
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	removed, _ := t.root.remove(key, t.minLeafKeys(), t.minInternalKeys())
	if removed {
		t.size--
	}
	// Collapse a root that lost all separators.
	if in, ok := t.root.(*internal[K, V]); ok && len(in.children) == 1 {
		t.root = in.children[0]
	}
	return removed
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	lf := t.leftmost()
	for lf != nil && len(lf.keys) == 0 {
		lf = lf.next
	}
	if lf == nil {
		var k K
		var v V
		return k, v, false
	}
	return lf.keys[0], lf.values[0], true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	n := t.root
	for {
		if in, ok := n.(*internal[K, V]); ok {
			n = in.children[len(in.children)-1]
			continue
		}
		lf := n.(*leaf[K, V])
		for lf != nil && len(lf.keys) == 0 {
			lf = lf.prev
		}
		if lf == nil {
			var k K
			var v V
			return k, v, false
		}
		return lf.keys[len(lf.keys)-1], lf.values[len(lf.values)-1], true
	}
}

// Range calls fn for every key in [lo, hi] in ascending order; fn returning
// false stops the scan early.
func (t *Tree[K, V]) Range(lo, hi K, fn func(key K, value V) bool) {
	if hi < lo {
		return
	}
	lf := t.root.findLeaf(lo)
	i, _ := search(lf.keys, lo)
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			k := lf.keys[i]
			if k > hi {
				return
			}
			if !fn(k, lf.values[i]) {
				return
			}
		}
		lf = lf.next
		i = 0
	}
}

// Ascend calls fn for every key in ascending order; fn returning false
// stops the scan.
func (t *Tree[K, V]) Ascend(fn func(key K, value V) bool) {
	for lf := t.leftmost(); lf != nil; lf = lf.next {
		for i := range lf.keys {
			if !fn(lf.keys[i], lf.values[i]) {
				return
			}
		}
	}
}

func (t *Tree[K, V]) leftmost() *leaf[K, V] {
	n := t.root
	for {
		if in, ok := n.(*internal[K, V]); ok {
			n = in.children[0]
			continue
		}
		return n.(*leaf[K, V])
	}
}

// search finds the index of key in sorted keys, or the insertion position.
func search[K cmp.Ordered](keys []K, key K) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == key
}

// ---- leaf operations ----

func (lf *leaf[K, V]) findLeaf(K) *leaf[K, V] { return lf }

func (lf *leaf[K, V]) firstKey() K { return lf.keys[0] }

func (lf *leaf[K, V]) depth() int { return 1 }

func (lf *leaf[K, V]) insert(key K, value V, maxKeys int) (K, node[K, V], bool, bool) {
	i, found := search(lf.keys, key)
	if found {
		lf.values[i] = value
		var zero K
		return zero, nil, false, false
	}
	lf.keys = append(lf.keys, key)
	copy(lf.keys[i+1:], lf.keys[i:])
	lf.keys[i] = key
	lf.values = append(lf.values, value)
	copy(lf.values[i+1:], lf.values[i:])
	lf.values[i] = value
	if len(lf.keys) <= maxKeys {
		var zero K
		return zero, nil, false, true
	}
	// Split: right half moves to a new sibling.
	mid := len(lf.keys) / 2
	right := &leaf[K, V]{
		keys:   append([]K(nil), lf.keys[mid:]...),
		values: append([]V(nil), lf.values[mid:]...),
		next:   lf.next,
		prev:   lf,
	}
	if lf.next != nil {
		lf.next.prev = right
	}
	lf.keys = lf.keys[:mid:mid]
	lf.values = lf.values[:mid:mid]
	lf.next = right
	return right.keys[0], right, true, true
}

func (lf *leaf[K, V]) remove(key K, minLeaf, _ int) (bool, bool) {
	i, found := search(lf.keys, key)
	if !found {
		return false, false
	}
	lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
	lf.values = append(lf.values[:i], lf.values[i+1:]...)
	return true, len(lf.keys) < minLeaf
}

// ---- internal node operations ----

func (in *internal[K, V]) findLeaf(key K) *leaf[K, V] {
	return in.children[in.childIndex(key)].findLeaf(key)
}

func (in *internal[K, V]) firstKey() K { return in.children[0].firstKey() }

func (in *internal[K, V]) depth() int { return 1 + in.children[0].depth() }

// childIndex returns the child subtree that covers key.
func (in *internal[K, V]) childIndex(key K) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if in.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (in *internal[K, V]) insert(key K, value V, maxKeys int) (K, node[K, V], bool, bool) {
	ci := in.childIndex(key)
	sep, right, split, added := in.children[ci].insert(key, value, maxKeys)
	if !split {
		var zero K
		return zero, nil, false, added
	}
	// Insert separator and new child after position ci.
	in.keys = append(in.keys, sep)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = sep
	in.children = append(in.children, right)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = right
	if len(in.children) <= maxKeys+1 {
		var zero K
		return zero, nil, false, added
	}
	// Split the internal node: middle separator moves up.
	midKey := len(in.keys) / 2
	upSep := in.keys[midKey]
	rightNode := &internal[K, V]{
		keys:     append([]K(nil), in.keys[midKey+1:]...),
		children: append([]node[K, V](nil), in.children[midKey+1:]...),
	}
	in.keys = in.keys[:midKey:midKey]
	in.children = in.children[: midKey+1 : midKey+1]
	return upSep, rightNode, true, added
}

func (in *internal[K, V]) remove(key K, minLeaf, minInternal int) (bool, bool) {
	ci := in.childIndex(key)
	removed, under := in.children[ci].remove(key, minLeaf, minInternal)
	if !removed {
		return false, false
	}
	if under {
		in.rebalance(ci, minLeaf, minInternal)
	}
	return true, len(in.keys) < minInternal
}

// rebalance fixes an underfull child at index ci by borrowing from a
// sibling or merging with one.
func (in *internal[K, V]) rebalance(ci, minLeaf, minInternal int) {
	switch child := in.children[ci].(type) {
	case *leaf[K, V]:
		// Try borrowing from the left sibling.
		if ci > 0 {
			left := in.children[ci-1].(*leaf[K, V])
			if len(left.keys) > minLeaf {
				k := left.keys[len(left.keys)-1]
				v := left.values[len(left.values)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.values = left.values[:len(left.values)-1]
				child.keys = append([]K{k}, child.keys...)
				child.values = append([]V{v}, child.values...)
				in.keys[ci-1] = k
				return
			}
		}
		// Try borrowing from the right sibling.
		if ci < len(in.children)-1 {
			right := in.children[ci+1].(*leaf[K, V])
			if len(right.keys) > minLeaf {
				child.keys = append(child.keys, right.keys[0])
				child.values = append(child.values, right.values[0])
				right.keys = append(right.keys[:0], right.keys[1:]...)
				right.values = append(right.values[:0], right.values[1:]...)
				in.keys[ci] = right.keys[0]
				return
			}
		}
		// Merge with a sibling.
		if ci > 0 {
			in.mergeLeaves(ci - 1)
		} else {
			in.mergeLeaves(ci)
		}
	case *internal[K, V]:
		if ci > 0 {
			left := in.children[ci-1].(*internal[K, V])
			if len(left.keys) > minInternal {
				// Rotate right through the separator.
				child.keys = append([]K{in.keys[ci-1]}, child.keys...)
				child.children = append([]node[K, V]{left.children[len(left.children)-1]}, child.children...)
				in.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
				return
			}
		}
		if ci < len(in.children)-1 {
			right := in.children[ci+1].(*internal[K, V])
			if len(right.keys) > minInternal {
				// Rotate left through the separator.
				child.keys = append(child.keys, in.keys[ci])
				child.children = append(child.children, right.children[0])
				in.keys[ci] = right.keys[0]
				right.keys = append(right.keys[:0], right.keys[1:]...)
				right.children = append(right.children[:0], right.children[1:]...)
				return
			}
		}
		if ci > 0 {
			in.mergeInternals(ci - 1)
		} else {
			in.mergeInternals(ci)
		}
	}
}

// mergeLeaves merges children li and li+1 (both leaves) into li.
func (in *internal[K, V]) mergeLeaves(li int) {
	left := in.children[li].(*leaf[K, V])
	right := in.children[li+1].(*leaf[K, V])
	left.keys = append(left.keys, right.keys...)
	left.values = append(left.values, right.values...)
	left.next = right.next
	if right.next != nil {
		right.next.prev = left
	}
	in.keys = append(in.keys[:li], in.keys[li+1:]...)
	in.children = append(in.children[:li+1], in.children[li+2:]...)
}

// mergeInternals merges children li and li+1 (both internal) into li,
// pulling the separator down.
func (in *internal[K, V]) mergeInternals(li int) {
	left := in.children[li].(*internal[K, V])
	right := in.children[li+1].(*internal[K, V])
	left.keys = append(left.keys, in.keys[li])
	left.keys = append(left.keys, right.keys...)
	left.children = append(left.children, right.children...)
	in.keys = append(in.keys[:li], in.keys[li+1:]...)
	in.children = append(in.children[:li+1], in.children[li+2:]...)
}

// CheckInvariants verifies structural B+tree invariants (ordering, uniform
// depth, minimum fill, leaf chain consistency). Intended for tests; returns
// the first violation found.
func (t *Tree[K, V]) CheckInvariants() error {
	// Uniform depth.
	if in, ok := t.root.(*internal[K, V]); ok {
		d := in.children[0].depth()
		for i, c := range in.children {
			if c.depth() != d {
				return fmt.Errorf("btree: child %d depth %d != %d", i, c.depth(), d)
			}
		}
	}
	// Ordering and fill, recursively.
	if err := t.check(t.root, nil, nil, true); err != nil {
		return err
	}
	// Leaf chain sorted and consistent with size.
	count := 0
	var prev *K
	for lf := t.leftmost(); lf != nil; lf = lf.next {
		for i := range lf.keys {
			if prev != nil && !(*prev < lf.keys[i]) {
				return fmt.Errorf("btree: leaf chain out of order at key %v", lf.keys[i])
			}
			k := lf.keys[i]
			prev = &k
			count++
		}
		if lf.next != nil && lf.next.prev != lf {
			return fmt.Errorf("btree: broken leaf back-link")
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but leaf chain holds %d", t.size, count)
	}
	return nil
}

func (t *Tree[K, V]) check(n node[K, V], lo, hi *K, isRoot bool) error {
	switch v := n.(type) {
	case *leaf[K, V]:
		if !isRoot && len(v.keys) < t.minLeafKeys() {
			return fmt.Errorf("btree: leaf underfull (%d < %d)", len(v.keys), t.minLeafKeys())
		}
		if len(v.keys) > t.maxLeafKeys() {
			return fmt.Errorf("btree: leaf overfull (%d > %d)", len(v.keys), t.maxLeafKeys())
		}
		if len(v.keys) != len(v.values) {
			return fmt.Errorf("btree: leaf keys/values mismatch")
		}
		for i, k := range v.keys {
			if i > 0 && !(v.keys[i-1] < k) {
				return fmt.Errorf("btree: leaf keys out of order")
			}
			if lo != nil && k < *lo {
				return fmt.Errorf("btree: key %v below bound %v", k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("btree: key %v not below bound %v", k, *hi)
			}
		}
		return nil
	case *internal[K, V]:
		if len(v.children) != len(v.keys)+1 {
			return fmt.Errorf("btree: internal has %d children for %d keys", len(v.children), len(v.keys))
		}
		if !isRoot && len(v.keys) < t.minInternalKeys() {
			return fmt.Errorf("btree: internal underfull (%d < %d)", len(v.keys), t.minInternalKeys())
		}
		if len(v.children) > t.order {
			return fmt.Errorf("btree: internal overfull (%d > %d children)", len(v.children), t.order)
		}
		for i, k := range v.keys {
			if i > 0 && !(v.keys[i-1] < k) {
				return fmt.Errorf("btree: separators out of order")
			}
			if lo != nil && k < *lo {
				return fmt.Errorf("btree: separator %v below bound", k)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("btree: separator %v above bound", k)
			}
		}
		for i, c := range v.children {
			var childLo, childHi *K
			if i > 0 {
				childLo = &v.keys[i-1]
			} else {
				childLo = lo
			}
			if i < len(v.keys) {
				childHi = &v.keys[i]
			} else {
				childHi = hi
			}
			if err := t.check(c, childLo, childHi, false); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("btree: unknown node type %T", n)
	}
}
