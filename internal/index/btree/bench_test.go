package btree

import (
	"math/rand"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	tr, err := New[int64, int](DefaultOrder)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(rng.Int63n(1<<20), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr, err := New[int64, int](DefaultOrder)
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 100000; i++ {
		tr.Put(i, int(i))
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(rng.Int63n(100000))
	}
}

func BenchmarkRange100(b *testing.B) {
	tr, err := New[int64, int](DefaultOrder)
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 100000; i++ {
		tr.Put(i, int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i % 90000)
		count := 0
		tr.Range(lo, lo+99, func(int64, int) bool { count++; return true })
		if count != 100 {
			b.Fatalf("count = %d", count)
		}
	}
}
