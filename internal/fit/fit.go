// Package fit provides the real-valued function families the paper uses to
// represent subsequences (§4.2): interpolation lines, least-squares
// regression lines, fixed-degree polynomials, and cubic Bézier curves
// fitted with Schneider's algorithm (the paper's §5.1 instantiations).
//
// A fitted Curve approximates one subsequence; its behaviour (slope,
// extrema) stands in for the behaviour of the raw points, which is what
// makes generalized approximate queries answerable from the representation
// alone.
package fit

import (
	"fmt"
	"math"

	"seqrep/internal/seq"
)

// Kind identifies a curve family. It is persisted in the binary codec, so
// values must remain stable.
type Kind uint8

// The supported curve families.
const (
	KindInvalid Kind = iota
	KindLine
	KindPoly
	KindBezier
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindLine:
		return "line"
	case KindPoly:
		return "poly"
	case KindBezier:
		return "bezier"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Curve is a fitted real-valued function of time, the representation unit
// of the paper's divide-and-conquer approach.
type Curve interface {
	// Eval returns the curve's value at time t.
	Eval(t float64) float64
	// Kind identifies the curve family for persistence and indexing.
	Kind() Kind
	// Params returns the family-specific parameter vector; together with
	// Kind it fully determines the curve (see Decode).
	Params() []float64
	// String renders the curve the way the paper annotates its figures,
	// e.g. ".94x+97.66".
	String() string
}

// Fitter fits one curve of a fixed family to a run of points.
type Fitter interface {
	// Fit returns the best curve of the fitter's family for pts.
	// pts must be non-empty and time-ordered.
	Fit(pts []seq.Point) (Curve, error)
	// Name identifies the fitter in experiment output.
	Name() string
}

// Deviator is implemented by curves that measure their own deviation
// profile (Bézier curves measure geometric rather than vertical distance).
type Deviator interface {
	MaxDeviation(pts []seq.Point) (idx int, dev float64)
}

// MaxDeviation returns the index and size of the largest deviation between
// pts and the curve. For plain function curves the deviation is vertical
// (|v - c(t)|, the measure the paper's ε is expressed in); curves
// implementing Deviator use their own measure.
func MaxDeviation(c Curve, pts []seq.Point) (idx int, dev float64) {
	if d, ok := c.(Deviator); ok {
		return d.MaxDeviation(pts)
	}
	for i, p := range pts {
		if d := math.Abs(p.V - c.Eval(p.T)); d > dev {
			idx, dev = i, d
		}
	}
	return idx, dev
}

// RMSE returns the root-mean-square vertical error of the curve on pts.
// It returns 0 for empty input.
func RMSE(c Curve, pts []seq.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		d := p.V - c.Eval(p.T)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pts)))
}

// Decode reconstructs a curve from its persisted Kind and parameter
// vector. It is the inverse of (Kind, Params) and is used by the
// representation codec.
func Decode(k Kind, params []float64) (Curve, error) {
	switch k {
	case KindLine:
		if len(params) != 2 {
			return nil, fmt.Errorf("fit: line wants 2 params, got %d", len(params))
		}
		return Line{Slope: params[0], Intercept: params[1]}, nil
	case KindPoly:
		if len(params) < 2 {
			return nil, fmt.Errorf("fit: poly wants >= 2 params, got %d", len(params))
		}
		coeffs := make([]float64, len(params)-1)
		copy(coeffs, params[1:])
		return Polynomial{Origin: params[0], Coeffs: coeffs}, nil
	case KindBezier:
		if len(params) != 8 {
			return nil, fmt.Errorf("fit: bezier wants 8 params, got %d", len(params))
		}
		var b Bezier
		for i := 0; i < 4; i++ {
			b.P[i] = vec2{params[2*i], params[2*i+1]}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("fit: unknown curve kind %d", k)
	}
}

// fmtCoef renders a coefficient in the compact style of the paper's figure
// annotations (".94" rather than "0.94").
func fmtCoef(v float64) string {
	s := fmt.Sprintf("%.3g", v)
	if len(s) > 1 && s[0] == '0' && s[1] == '.' {
		return s[1:]
	}
	if len(s) > 2 && s[0] == '-' && s[1] == '0' && s[2] == '.' {
		return "-" + s[2:]
	}
	return s
}
