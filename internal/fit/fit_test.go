package fit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"seqrep/internal/seq"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// p2 builds a point with an explicit time.
func p2(t, v float64) seq.Point { return seq.Point{T: t, V: v} }

func pts(vals ...float64) []seq.Point {
	out := make([]seq.Point, len(vals))
	for i, v := range vals {
		out[i] = seq.Point{T: float64(i), V: v}
	}
	return out
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindLine: "line", KindPoly: "poly", KindBezier: "bezier", Kind(42): "Kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestLineBasics(t *testing.T) {
	l := Line{Slope: 2, Intercept: -3}
	if l.Eval(5) != 7 {
		t.Errorf("Eval(5) = %g", l.Eval(5))
	}
	if l.Kind() != KindLine {
		t.Error("Kind")
	}
	p := l.Params()
	if len(p) != 2 || p[0] != 2 || p[1] != -3 {
		t.Errorf("Params = %v", p)
	}
	if got := l.String(); got != "2x-3" {
		t.Errorf("String = %q", got)
	}
	// Paper style: leading zero dropped.
	if got := (Line{Slope: 0.94, Intercept: 97.66}).String(); got != ".94x+97.7" {
		t.Errorf("String = %q", got)
	}
	if got := (Line{Slope: -0.5, Intercept: 0.25}).String(); got != "-.5x+.25" {
		t.Errorf("String = %q", got)
	}
}

func TestLineThrough(t *testing.T) {
	l, err := LineThrough(seq.Point{T: 1, V: 1}, seq.Point{T: 3, V: 5})
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope != 2 || l.Intercept != -1 {
		t.Errorf("line = %+v", l)
	}
	if _, err := LineThrough(seq.Point{T: 1, V: 1}, seq.Point{T: 1, V: 5}); err == nil {
		t.Error("vertical line accepted")
	}
}

func TestRegressLineExact(t *testing.T) {
	// Points exactly on a line regress to that line.
	points := []seq.Point{p2(0, 1), p2(1, 3), p2(2, 5), p2(3, 7)}
	l, err := RegressLine(points)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.Slope, 2, 1e-12) || !almostEq(l.Intercept, 1, 1e-12) {
		t.Errorf("regression = %+v", l)
	}
}

func TestRegressLineKnown(t *testing.T) {
	// Hand-computed: (0,0),(1,2),(2,1) → slope .5, intercept .5.
	l, err := RegressLine([]seq.Point{p2(0, 0), p2(1, 2), p2(2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(l.Slope, 0.5, 1e-12) || !almostEq(l.Intercept, 0.5, 1e-12) {
		t.Errorf("regression = %+v", l)
	}
}

func TestRegressLineDegenerate(t *testing.T) {
	if _, err := RegressLine(nil); err == nil {
		t.Error("empty accepted")
	}
	l, err := RegressLine([]seq.Point{p2(5, 9)})
	if err != nil || l.Slope != 0 || l.Intercept != 9 {
		t.Errorf("single point: %+v %v", l, err)
	}
	if _, err := RegressLine([]seq.Point{p2(1, 0), p2(1, 5)}); err == nil {
		t.Error("zero time-variance accepted")
	}
}

func TestRunningRegressionAddRemove(t *testing.T) {
	var r RunningRegression
	if _, err := r.Line(); err == nil {
		t.Error("empty accumulator accepted")
	}
	samples := []seq.Point{p2(0, 1), p2(1, 2), p2(2, 2), p2(3, 5)}
	for _, p := range samples {
		r.Add(p.T, p.V)
	}
	if r.N() != 4 {
		t.Errorf("N = %d", r.N())
	}
	direct, _ := RegressLine(samples)
	got, err := r.Line()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got.Slope, direct.Slope, 1e-12) || !almostEq(got.Intercept, direct.Intercept, 1e-12) {
		t.Errorf("running %+v vs direct %+v", got, direct)
	}
	// Remove the last sample; must equal regression over the prefix.
	r.Remove(3, 5)
	direct3, _ := RegressLine(samples[:3])
	got3, _ := r.Line()
	if !almostEq(got3.Slope, direct3.Slope, 1e-12) || !almostEq(got3.Intercept, direct3.Intercept, 1e-12) {
		t.Errorf("after remove: %+v vs %+v", got3, direct3)
	}
}

func TestFitters(t *testing.T) {
	points := pts(1, 5, 2, 8)
	interp, err := InterpolationFitter{}.Fit(points)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolation passes through endpoints exactly.
	if !almostEq(interp.Eval(0), 1, 1e-12) || !almostEq(interp.Eval(3), 8, 1e-12) {
		t.Errorf("interpolation endpoints: %g %g", interp.Eval(0), interp.Eval(3))
	}
	reg, err := RegressionFitter{}.Fit(points)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Kind() != KindLine {
		t.Error("regression kind")
	}
	if (InterpolationFitter{}).Name() != "interpolation" || (RegressionFitter{}).Name() != "regression" {
		t.Error("fitter names")
	}
	if _, err := (InterpolationFitter{}).Fit(nil); err == nil {
		t.Error("empty accepted")
	}
	single, err := InterpolationFitter{}.Fit(pts(7))
	if err != nil || single.Eval(0) != 7 {
		t.Errorf("singleton fit: %v %v", single, err)
	}
}

func TestMaxDeviation(t *testing.T) {
	l := Line{Slope: 0, Intercept: 0}
	points := []seq.Point{p2(0, 0.1), p2(1, -2), p2(2, 0.5)}
	idx, dev := MaxDeviation(l, points)
	if idx != 1 || dev != 2 {
		t.Errorf("MaxDeviation = (%d, %g)", idx, dev)
	}
	if idx, dev := MaxDeviation(l, nil); idx != 0 || dev != 0 {
		t.Error("empty deviation")
	}
}

func TestRMSE(t *testing.T) {
	l := Line{Slope: 0, Intercept: 0}
	if got := RMSE(l, []seq.Point{p2(0, 3), p2(1, -4)}); !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %g", got)
	}
	if RMSE(l, nil) != 0 {
		t.Error("empty RMSE")
	}
}

func TestPolynomialEvalString(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, -2, 3}} // 3x^2 - 2x + 1
	if got := p.Eval(2); got != 9 {
		t.Errorf("Eval(2) = %g", got)
	}
	if got := p.String(); got != "3x^2-2x+1" {
		t.Errorf("String = %q", got)
	}
	shifted := Polynomial{Origin: 4, Coeffs: []float64{5}}
	if !strings.Contains(shifted.String(), "@4") {
		t.Errorf("origin not rendered: %q", shifted.String())
	}
	if (Polynomial{}).String() != "0" {
		t.Error("empty polynomial String")
	}
	if (Polynomial{Coeffs: []float64{0, 0}}).String() != "0" {
		t.Error("zero polynomial String")
	}
}

func TestFitPolynomialRecoversExact(t *testing.T) {
	// v = 2t^2 - 3t + 1 sampled at 6 points.
	points := make([]seq.Point, 6)
	for i := range points {
		x := float64(i)
		points[i] = seq.Point{T: x, V: 2*x*x - 3*x + 1}
	}
	p, err := FitPolynomial(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range points {
		if !almostEq(p.Eval(q.T), q.V, 1e-9) {
			t.Errorf("Eval(%g) = %g, want %g", q.T, p.Eval(q.T), q.V)
		}
	}
	if p.Degree() != 2 {
		t.Errorf("degree = %d", p.Degree())
	}
}

func TestFitPolynomialDegreeClamp(t *testing.T) {
	p, err := FitPolynomial(pts(1, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() > 1 {
		t.Errorf("degree %d not clamped for 2 points", p.Degree())
	}
	if _, err := FitPolynomial(nil, 2); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitPolynomial(pts(1), -1); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestPolynomialFitter(t *testing.T) {
	f := PolynomialFitter{Degree: 3}
	if f.Name() != "poly3" {
		t.Errorf("Name = %q", f.Name())
	}
	c, err := f.Fit(pts(0, 1, 8, 27, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c.Eval(3), 27, 1e-6) {
		t.Errorf("cubic fit Eval(3) = %g", c.Eval(3))
	}
}

func TestPolynomialCompare(t *testing.T) {
	p1 := Polynomial{Coeffs: []float64{1, 2}}    // 2x+1
	p2 := Polynomial{Coeffs: []float64{9, 2}}    // 2x+9
	p3 := Polynomial{Coeffs: []float64{0, 0, 1}} // x^2
	if p1.Compare(p2) != -1 || p2.Compare(p1) != 1 {
		t.Error("coefficient ordering")
	}
	if p1.Compare(p1) != 0 {
		t.Error("self comparison")
	}
	// Degrees dominate coefficients.
	if p2.Compare(p3) != -1 || p3.Compare(p2) != 1 {
		t.Error("degree ordering")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	curves := []Curve{
		Line{Slope: 1.5, Intercept: -2},
		Polynomial{Origin: 3, Coeffs: []float64{1, 0, -4}},
		Bezier{P: [4]vec2{{0, 0}, {1, 2}, {2, -1}, {3, 0}}},
	}
	for _, c := range curves {
		back, err := Decode(c.Kind(), c.Params())
		if err != nil {
			t.Fatalf("%v: %v", c.Kind(), err)
		}
		for _, x := range []float64{0, 0.7, 1.5, 2.9} {
			if !almostEq(back.Eval(x), c.Eval(x), 1e-9) {
				t.Errorf("%v: decoded curve differs at %g: %g vs %g", c.Kind(), x, back.Eval(x), c.Eval(x))
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		k Kind
		p []float64
	}{
		{KindLine, []float64{1}},
		{KindLine, []float64{1, 2, 3}},
		{KindPoly, []float64{1}},
		{KindBezier, make([]float64, 7)},
		{Kind(99), []float64{1, 2}},
	}
	for _, c := range cases {
		if _, err := Decode(c.k, c.p); err == nil {
			t.Errorf("Decode(%v, %d params) accepted", c.k, len(c.p))
		}
	}
}

// Property: regression line minimizes squared error — any perturbed line
// does no better.
func TestRegressionOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(raw []float64, ds, di float64) bool {
		if len(raw) < 3 {
			return true
		}
		n := len(raw)
		if n > 40 {
			n = 40
		}
		points := make([]seq.Point, n)
		for i := 0; i < n; i++ {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			points[i] = seq.Point{T: float64(i), V: math.Mod(v, 1e4)}
		}
		l, err := RegressLine(points)
		if err != nil {
			return true
		}
		ds = math.Mod(ds, 1)
		di = math.Mod(di, 1)
		if math.IsNaN(ds) || math.IsNaN(di) || (ds == 0 && di == 0) {
			ds, di = 0.01, 0.01
		}
		perturbed := Line{Slope: l.Slope + ds, Intercept: l.Intercept + di}
		sse := func(c Curve) float64 {
			s := 0.0
			for _, p := range points {
				d := p.V - c.Eval(p.T)
				s += d * d
			}
			return s
		}
		return sse(l) <= sse(perturbed)+1e-6*(1+sse(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
