package fit

import (
	"math"
	"testing"

	"seqrep/internal/seq"
)

func TestBezierEndpointInterpolation(t *testing.T) {
	points := pts(0, 3, 1, 4, 1, 5, 9, 2)
	bz, err := FitBezier(points, 4)
	if err != nil {
		t.Fatal(err)
	}
	first, last := points[0], points[len(points)-1]
	if !almostEq(bz.P[0].X, first.T, 1e-12) || !almostEq(bz.P[0].Y, first.V, 1e-12) {
		t.Errorf("P0 = %v, want endpoint %v", bz.P[0], first)
	}
	if !almostEq(bz.P[3].X, last.T, 1e-12) || !almostEq(bz.P[3].Y, last.V, 1e-12) {
		t.Errorf("P3 = %v, want endpoint %v", bz.P[3], last)
	}
}

func TestBezierFitsLineExactly(t *testing.T) {
	// Points on a straight line must fit with ~zero deviation.
	points := make([]seq.Point, 12)
	for i := range points {
		points[i] = seq.Point{T: float64(i), V: 2*float64(i) + 1}
	}
	bz, err := FitBezier(points, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, dev := bz.MaxDeviation(points)
	if dev > 1e-6 {
		t.Errorf("deviation on straight line = %g", dev)
	}
	// Eval at intermediate times agrees with the line.
	for _, x := range []float64{0.5, 3.3, 10.9} {
		if !almostEq(bz.Eval(x), 2*x+1, 1e-3) {
			t.Errorf("Eval(%g) = %g, want %g", x, bz.Eval(x), 2*x+1)
		}
	}
}

func TestBezierFitsSmoothArc(t *testing.T) {
	// A single smooth hump is well approximated by one cubic.
	points := make([]seq.Point, 21)
	for i := range points {
		x := float64(i) / 20
		points[i] = seq.Point{T: x * 10, V: 50 * math.Sin(math.Pi*x)}
	}
	bz, err := FitBezier(points, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, dev := bz.MaxDeviation(points)
	if dev > 2.0 {
		t.Errorf("deviation on smooth arc = %g (amplitude 50)", dev)
	}
}

func TestBezierEvalClamping(t *testing.T) {
	bz, err := FitBezier(pts(1, 2, 3, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if bz.Eval(-5) != 1 {
		t.Errorf("Eval before start = %g, want first value", bz.Eval(-5))
	}
	if bz.Eval(99) != 4 {
		t.Errorf("Eval after end = %g, want last value", bz.Eval(99))
	}
}

func TestBezierErrors(t *testing.T) {
	if _, err := FitBezier(pts(1), 4); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitBezier(nil, 4); err == nil {
		t.Error("empty accepted")
	}
	// Negative iterations clamp to zero rather than failing.
	if _, err := FitBezier(pts(1, 2, 3), -3); err != nil {
		t.Errorf("negative iterations: %v", err)
	}
}

func TestBezierFitterInterface(t *testing.T) {
	f := BezierFitter{}
	if f.Name() != "bezier" {
		t.Error("Name")
	}
	c, err := f.Fit(pts(0, 1, 4, 9, 16))
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != KindBezier {
		t.Error("Kind")
	}
	if len(c.Params()) != 8 {
		t.Errorf("Params len = %d", len(c.Params()))
	}
	// Singleton degenerates to a constant curve.
	single, err := f.Fit(pts(7))
	if err != nil {
		t.Fatal(err)
	}
	if single.Eval(0) != 7 {
		t.Errorf("singleton Eval = %g", single.Eval(0))
	}
}

func TestBezierMaxDeviationViaInterface(t *testing.T) {
	// MaxDeviation dispatches to the Deviator implementation.
	points := pts(0, 5, 0, -5, 0)
	bz, err := FitBezier(points, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx1, dev1 := MaxDeviation(bz, points)
	idx2, dev2 := bz.MaxDeviation(points)
	if idx1 != idx2 || dev1 != dev2 {
		t.Errorf("interface dispatch mismatch: (%d,%g) vs (%d,%g)", idx1, dev1, idx2, dev2)
	}
}

func TestBezierString(t *testing.T) {
	bz := Bezier{P: [4]vec2{{0, 0}, {1, 1}, {2, 2}, {3, 3}}}
	if got := bz.String(); got == "" || got[:6] != "bezier" {
		t.Errorf("String = %q", got)
	}
}

func TestChordLengthParamsDegenerate(t *testing.T) {
	// All points coincident: parameters spread uniformly, no NaN.
	points := []seq.Point{p2(0, 5), p2(0, 5), p2(0, 5)}
	u := chordLengthParams(points)
	for i, v := range u {
		if math.IsNaN(v) {
			t.Fatalf("u[%d] is NaN", i)
		}
	}
	if u[0] != 0 || u[2] != 1 {
		t.Errorf("u = %v", u)
	}
}
