package fit

// Golden fits over a rendered melody: the exact curve families and their
// rendered forms each fitter produces for a known note-plus-glide window
// are pinned, so representation drift is caught at the fitter rather
// than downstream. Degenerate inputs (constant, sub-3-point, NaN) pin
// the corner-case contract.

import (
	"math"
	"testing"

	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func TestGoldenMelodyFits(t *testing.T) {
	melody, err := synth.Melody([]int{2, 2, -4}, synth.MelodyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	pts := []seq.Point(melody)[0:11] // the first note and its glide up

	cases := []struct {
		f          Fitter
		wantKind   Kind
		wantString string
	}{
		{InterpolationFitter{}, KindLine, ".2x+60"},
		{RegressionFitter{}, KindLine, ".158x+59.6"},
		{PolynomialFitter{Degree: 2}, KindPoly, ".0435x^2+.158x+59.9 @5"},
		{BezierFitter{}, KindBezier, "bezier[(0,60)(4.82,60)(5.81,59.2)(10,62)]"},
	}
	for _, tc := range cases {
		t.Run(tc.f.Name(), func(t *testing.T) {
			c, err := tc.f.Fit(pts)
			if err != nil {
				t.Fatal(err)
			}
			if c.Kind() != tc.wantKind {
				t.Errorf("kind = %v, want %v", c.Kind(), tc.wantKind)
			}
			if got := c.String(); got != tc.wantString {
				t.Errorf("fit drifted: %q, want %q", got, tc.wantString)
			}
			// Whatever the family, the fit must stay within the window's
			// own 2-semitone span.
			if _, dev := MaxDeviation(c, pts); dev > 2.0 {
				t.Errorf("max deviation %v over a 2-semitone window", dev)
			}
		})
	}
}

// TestFittersDegenerateInputs pins fitter behaviour at the edges:
// constant and sub-3-point windows fit exactly, empty input errors.
func TestFittersDegenerateInputs(t *testing.T) {
	fitters := []Fitter{InterpolationFitter{}, RegressionFitter{}, PolynomialFitter{Degree: 2}, BezierFitter{}}
	for _, f := range fitters {
		if _, err := f.Fit(nil); err == nil {
			t.Errorf("%s: empty input accepted", f.Name())
		}
		one := []seq.Point{{T: 3, V: 7}}
		if c, err := f.Fit(one); err != nil {
			t.Errorf("%s / one point: %v", f.Name(), err)
		} else if got := c.Eval(3); math.Abs(got-7) > 1e-9 {
			t.Errorf("%s / one point: Eval(3) = %v, want 7", f.Name(), got)
		}
		two := []seq.Point{{T: 0, V: 1}, {T: 2, V: 5}}
		if c, err := f.Fit(two); err != nil {
			t.Errorf("%s / two points: %v", f.Name(), err)
		} else {
			for _, p := range two {
				if got := c.Eval(p.T); math.Abs(got-p.V) > 1e-9 {
					t.Errorf("%s / two points: Eval(%v) = %v, want %v", f.Name(), p.T, got, p.V)
				}
			}
		}
		flat := []seq.Point(synth.Const(9, 4.5))
		if c, err := f.Fit(flat); err != nil {
			t.Errorf("%s / constant: %v", f.Name(), err)
		} else if _, dev := MaxDeviation(c, flat); dev > 1e-9 {
			t.Errorf("%s / constant: deviation %v, want 0", f.Name(), dev)
		}
	}
}

// TestFittersNaNContainment documents where non-finite inputs are
// handled: the breaking layer rejects them before any fitter runs (see
// breaking.TestBreakersRejectNonFinite), so fitters themselves must
// merely not panic — endpoint-only families may even produce a finite
// curve, while least-squares families propagate the NaN into their
// parameters instead of silently inventing data.
func TestFittersNaNContainment(t *testing.T) {
	bad := []seq.Point{{T: 0, V: 1}, {T: 1, V: math.NaN()}, {T: 2, V: 3}}
	for _, f := range []Fitter{InterpolationFitter{}, RegressionFitter{}, PolynomialFitter{Degree: 2}, BezierFitter{}} {
		c, err := f.Fit(bad) // must not panic
		if err != nil || c == nil {
			continue
		}
		finite := true
		for _, p := range c.Params() {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				finite = false
			}
		}
		if finite {
			// Only endpoint interpolation can legitimately ignore the
			// interior NaN; its curve must then honor the endpoints.
			if math.Abs(c.Eval(0)-1) > 1e-9 || math.Abs(c.Eval(2)-3) > 1e-9 {
				t.Errorf("%s: finite curve %v ignores its endpoints", f.Name(), c)
			}
		}
	}
}
