package fit

import (
	"fmt"
	"math"
	"strings"

	"seqrep/internal/seq"
)

// Polynomial is v = Σ Coeffs[k]·(t-Origin)^k. Times are centred on Origin
// (the mean sample time of the fitted window) for numerical stability; the
// paper orders polynomial families lexicographically "by degrees and
// coefficients where degrees are more significant" (§4.2), which Compare
// implements.
type Polynomial struct {
	Origin float64
	Coeffs []float64 // ascending powers; len = degree+1
}

// Eval evaluates the polynomial at time t by Horner's rule.
func (p Polynomial) Eval(t float64) float64 {
	x := t - p.Origin
	v := 0.0
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		v = v*x + p.Coeffs[k]
	}
	return v
}

// Kind returns KindPoly.
func (p Polynomial) Kind() Kind { return KindPoly }

// Params returns [origin, c0, c1, ...].
func (p Polynomial) Params() []float64 {
	out := make([]float64, 0, len(p.Coeffs)+1)
	out = append(out, p.Origin)
	return append(out, p.Coeffs...)
}

// Degree returns the polynomial degree (len(Coeffs)-1), or 0 when empty.
func (p Polynomial) Degree() int {
	if len(p.Coeffs) == 0 {
		return 0
	}
	return len(p.Coeffs) - 1
}

// String renders e.g. "1.2x^2-3x+.5 @4" (the @ suffix is the origin when
// non-zero).
func (p Polynomial) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		c := p.Coeffs[k]
		if c == 0 && !(first && k == 0) {
			continue
		}
		if !first && c >= 0 {
			b.WriteByte('+')
		}
		switch k {
		case 0:
			b.WriteString(fmtCoef(c))
		case 1:
			b.WriteString(fmtCoef(c) + "x")
		default:
			fmt.Fprintf(&b, "%sx^%d", fmtCoef(c), k)
		}
		first = false
	}
	if first {
		b.WriteString("0")
	}
	if p.Origin != 0 {
		fmt.Fprintf(&b, " @%s", fmtCoef(p.Origin))
	}
	return b.String()
}

// Compare orders polynomials lexicographically by degree, then by
// coefficients from the highest power down — the paper's §4.2 ordering for
// indexing within a function family. It returns -1, 0 or +1.
func (p Polynomial) Compare(q Polynomial) int {
	if d1, d2 := p.Degree(), q.Degree(); d1 != d2 {
		if d1 < d2 {
			return -1
		}
		return 1
	}
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		var a, b float64
		if k < len(p.Coeffs) {
			a = p.Coeffs[k]
		}
		if k < len(q.Coeffs) {
			b = q.Coeffs[k]
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
	}
	return 0
}

// FitPolynomial fits a least-squares polynomial of the given degree to pts.
// The effective degree is reduced when there are too few points to
// determine it (n points determine degree ≤ n-1). Times are centred on
// their mean before solving the normal equations.
func FitPolynomial(pts []seq.Point, degree int) (Polynomial, error) {
	if len(pts) == 0 {
		return Polynomial{}, fmt.Errorf("fit: polynomial on empty point set")
	}
	if degree < 0 {
		return Polynomial{}, fmt.Errorf("fit: negative degree %d", degree)
	}
	if degree > len(pts)-1 {
		degree = len(pts) - 1
	}
	origin := 0.0
	for _, p := range pts {
		origin += p.T
	}
	origin /= float64(len(pts))

	m := degree + 1
	// Normal equations: A c = b with A[j][k] = Σ x^(j+k), b[j] = Σ v·x^j.
	pow := make([]float64, 2*degree+1)
	b := make([]float64, m)
	for _, p := range pts {
		x := p.T - origin
		xp := 1.0
		for j := 0; j <= 2*degree; j++ {
			pow[j] += xp
			if j <= degree {
				b[j] += p.V * xp
			}
			xp *= x
		}
	}
	a := make([][]float64, m)
	for j := 0; j < m; j++ {
		a[j] = make([]float64, m)
		for k := 0; k < m; k++ {
			a[j][k] = pow[j+k]
		}
	}
	coeffs, err := solveLinear(a, b)
	if err != nil {
		return Polynomial{}, fmt.Errorf("fit: degree-%d polynomial: %w", degree, err)
	}
	return Polynomial{Origin: origin, Coeffs: coeffs}, nil
}

// PolynomialFitter fits fixed-degree least-squares polynomials; Degree 1
// behaves like RegressionFitter but returns a Polynomial curve.
type PolynomialFitter struct {
	Degree int
}

// Name implements Fitter.
func (f PolynomialFitter) Name() string { return fmt.Sprintf("poly%d", f.Degree) }

// Fit implements Fitter.
func (f PolynomialFitter) Fit(pts []seq.Point) (Curve, error) {
	return FitPolynomial(pts, f.Degree)
}

// solveLinear solves the square system a·x = b by Gaussian elimination with
// partial pivoting, destroying a and b. It returns an error when the system
// is singular to working precision.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("singular system (pivot %g at column %d)", best, col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
