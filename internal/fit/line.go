package fit

import (
	"fmt"
	"math"

	"seqrep/internal/seq"
)

// Line is v = Slope*t + Intercept, the function family used throughout the
// paper's experiments (their Figures 6, 7 and 9 annotate each subsequence
// with exactly such a line).
type Line struct {
	Slope     float64
	Intercept float64
}

// Eval returns Slope*t + Intercept.
func (l Line) Eval(t float64) float64 { return l.Slope*t + l.Intercept }

// Kind returns KindLine.
func (l Line) Kind() Kind { return KindLine }

// Params returns [slope, intercept].
func (l Line) Params() []float64 { return []float64{l.Slope, l.Intercept} }

// String renders like the paper's annotations: ".94x+97.66".
func (l Line) String() string {
	sign := "+"
	b := l.Intercept
	if b < 0 {
		sign, b = "-", -b
	}
	return fmt.Sprintf("%sx%s%s", fmtCoef(l.Slope), sign, fmtCoef(b))
}

// LineThrough returns the line interpolating two points. It returns an
// error if the points share a time (vertical line).
func LineThrough(a, b seq.Point) (Line, error) {
	if a.T == b.T {
		return Line{}, fmt.Errorf("fit: cannot interpolate through two points at time %g", a.T)
	}
	slope := (b.V - a.V) / (b.T - a.T)
	return Line{Slope: slope, Intercept: a.V - slope*a.T}, nil
}

// RegressLine returns the least-squares regression line through pts.
// A single point yields a horizontal line through it. It returns an error
// for empty input or when all times coincide.
func RegressLine(pts []seq.Point) (Line, error) {
	switch len(pts) {
	case 0:
		return Line{}, fmt.Errorf("fit: regression on empty point set")
	case 1:
		return Line{Slope: 0, Intercept: pts[0].V}, nil
	}
	var r RunningRegression
	for _, p := range pts {
		r.Add(p.T, p.V)
	}
	return r.Line()
}

// InterpolationFitter fits the line through the first and last point of the
// subsequence — the paper's preferred breaking instantiation ("simpler and
// produces better results", §5.1). A single point yields a horizontal line.
type InterpolationFitter struct{}

// Name implements Fitter.
func (InterpolationFitter) Name() string { return "interpolation" }

// Fit implements Fitter.
func (InterpolationFitter) Fit(pts []seq.Point) (Curve, error) {
	switch len(pts) {
	case 0:
		return nil, fmt.Errorf("fit: interpolation on empty point set")
	case 1:
		return Line{Slope: 0, Intercept: pts[0].V}, nil
	}
	return LineThrough(pts[0], pts[len(pts)-1])
}

// RegressionFitter fits the least-squares regression line, the family the
// paper uses to *represent* subsequences once broken (their Figure 6).
type RegressionFitter struct{}

// Name implements Fitter.
func (RegressionFitter) Name() string { return "regression" }

// Fit implements Fitter.
func (RegressionFitter) Fit(pts []seq.Point) (Curve, error) {
	return RegressLine(pts)
}

// RunningRegression accumulates least-squares sums incrementally so the
// online breaking algorithm can extend a window by one point in O(1).
// The zero value is an empty accumulator.
type RunningRegression struct {
	n                        int
	sumT, sumV, sumTT, sumTV float64
}

// Add includes the sample (t, v).
func (r *RunningRegression) Add(t, v float64) {
	r.n++
	r.sumT += t
	r.sumV += v
	r.sumTT += t * t
	r.sumTV += t * v
}

// Remove excludes a previously added sample (t, v).
func (r *RunningRegression) Remove(t, v float64) {
	r.n--
	r.sumT -= t
	r.sumV -= v
	r.sumTT -= t * t
	r.sumTV -= t * v
}

// N reports the number of accumulated samples.
func (r *RunningRegression) N() int { return r.n }

// Line returns the current least-squares line. It returns an error when
// no samples are present or all times coincide (zero variance in t).
func (r *RunningRegression) Line() (Line, error) {
	if r.n == 0 {
		return Line{}, fmt.Errorf("fit: regression on empty accumulator")
	}
	if r.n == 1 {
		return Line{Slope: 0, Intercept: r.sumV}, nil
	}
	n := float64(r.n)
	den := n*r.sumTT - r.sumT*r.sumT
	if math.Abs(den) < 1e-12*(1+math.Abs(r.sumTT)*n) {
		return Line{}, fmt.Errorf("fit: regression times have zero variance")
	}
	slope := (n*r.sumTV - r.sumT*r.sumV) / den
	return Line{Slope: slope, Intercept: (r.sumV - slope*r.sumT) / n}, nil
}
