package fit

import (
	"fmt"
	"math"

	"seqrep/internal/seq"
)

// This file implements single-segment cubic Bézier fitting after
// P. J. Schneider, "An Algorithm for Automatically Fitting Digitized
// Curves" (Graphics Gems, 1990) — the algorithm the paper's Figure 8
// template generalizes. The recursive splitting lives in package breaking;
// here we fit one cubic to one run of points: chord-length
// parameterization, least-squares placement of the two inner control
// points along end tangents, and Newton–Raphson reparameterization.

// vec2 is a 2-D point/vector in (time, value) space.
type vec2 struct{ X, Y float64 }

func (a vec2) add(b vec2) vec2      { return vec2{a.X + b.X, a.Y + b.Y} }
func (a vec2) sub(b vec2) vec2      { return vec2{a.X - b.X, a.Y - b.Y} }
func (a vec2) scale(f float64) vec2 { return vec2{a.X * f, a.Y * f} }
func (a vec2) dot(b vec2) float64   { return a.X*b.X + a.Y*b.Y }
func (a vec2) norm() float64        { return math.Hypot(a.X, a.Y) }

func (a vec2) unit() (vec2, bool) {
	n := a.norm()
	if n == 0 {
		return vec2{}, false
	}
	return a.scale(1 / n), true
}

// Bezier is a cubic Bézier curve with control points P[0..3] in
// (time, value) space. P[0] and P[3] interpolate the subsequence
// endpoints.
type Bezier struct {
	P [4]vec2
}

// bernstein weights for a cubic at parameter u.
func b0(u float64) float64 { v := 1 - u; return v * v * v }
func b1(u float64) float64 { v := 1 - u; return 3 * u * v * v }
func b2(u float64) float64 { v := 1 - u; return 3 * u * u * v }
func b3(u float64) float64 { return u * u * u }

// at evaluates the curve position at parameter u by de Casteljau.
func (bz Bezier) at(u float64) vec2 {
	p := bz.P
	for k := 1; k < 4; k++ {
		for i := 0; i < 4-k; i++ {
			p[i] = p[i].scale(1 - u).add(p[i+1].scale(u))
		}
	}
	return p[0]
}

// d1 evaluates the first derivative (a quadratic Bézier) at u.
func (bz Bezier) d1(u float64) vec2 {
	q := [3]vec2{
		bz.P[1].sub(bz.P[0]).scale(3),
		bz.P[2].sub(bz.P[1]).scale(3),
		bz.P[3].sub(bz.P[2]).scale(3),
	}
	for k := 1; k < 3; k++ {
		for i := 0; i < 3-k; i++ {
			q[i] = q[i].scale(1 - u).add(q[i+1].scale(u))
		}
	}
	return q[0]
}

// d2 evaluates the second derivative (a linear Bézier) at u.
func (bz Bezier) d2(u float64) vec2 {
	a := bz.P[2].sub(bz.P[1].scale(2)).add(bz.P[0]).scale(6)
	b := bz.P[3].sub(bz.P[2].scale(2)).add(bz.P[1]).scale(6)
	return a.scale(1 - u).add(b.scale(u))
}

// Eval returns the curve's value at time t. The parametric curve is
// inverted for u such that x(u) = t; with chord-length fitting over
// time-ordered points x(u) is monotone in practice, so bisection suffices.
// Times outside [P0.X, P3.X] clamp to the endpoint values.
func (bz Bezier) Eval(t float64) float64 {
	if t <= bz.P[0].X {
		return bz.P[0].Y
	}
	if t >= bz.P[3].X {
		return bz.P[3].Y
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if bz.at(mid).X < t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return bz.at((lo + hi) / 2).Y
}

// Kind returns KindBezier.
func (bz Bezier) Kind() Kind { return KindBezier }

// Params returns the 8 control-point coordinates [x0,y0,...,x3,y3].
func (bz Bezier) Params() []float64 {
	out := make([]float64, 0, 8)
	for _, p := range bz.P {
		out = append(out, p.X, p.Y)
	}
	return out
}

// String renders the control polygon compactly.
func (bz Bezier) String() string {
	return fmt.Sprintf("bezier[(%s,%s)(%s,%s)(%s,%s)(%s,%s)]",
		fmtCoef(bz.P[0].X), fmtCoef(bz.P[0].Y),
		fmtCoef(bz.P[1].X), fmtCoef(bz.P[1].Y),
		fmtCoef(bz.P[2].X), fmtCoef(bz.P[2].Y),
		fmtCoef(bz.P[3].X), fmtCoef(bz.P[3].Y))
}

// MaxDeviation implements Deviator using geometric (Euclidean) distance
// between each point and its closest approach on the curve, which is how
// Schneider's algorithm measures error. Closest parameters are found by a
// dense scan of the curve followed by Newton refinement, so the measure is
// meaningful for a standalone curve independent of how it was fitted.
func (bz Bezier) MaxDeviation(pts []seq.Point) (int, float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	samples := 4 * len(pts)
	if samples < 32 {
		samples = 32
	}
	curve := make([]vec2, samples+1)
	for j := 0; j <= samples; j++ {
		curve[j] = bz.at(float64(j) / float64(samples))
	}
	idx, dev := 0, 0.0
	for i, p := range pts {
		target := vec2{p.T, p.V}
		bestU, bestD := 0.0, math.Inf(1)
		for j := 0; j <= samples; j++ {
			if d := curve[j].sub(target).norm(); d < bestD {
				bestU, bestD = float64(j)/float64(samples), d
			}
		}
		for k := 0; k < 3; k++ {
			bestU = bz.newtonStep(target, bestU)
		}
		if d := bz.at(bestU).sub(target).norm(); d < bestD {
			bestD = d
		}
		if bestD > dev {
			idx, dev = i, bestD
		}
	}
	return idx, dev
}

// chordLengthParams assigns each point a parameter proportional to the
// accumulated polyline length, normalized to [0, 1].
func chordLengthParams(pts []seq.Point) []float64 {
	u := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		d := vec2{pts[i].T, pts[i].V}.sub(vec2{pts[i-1].T, pts[i-1].V}).norm()
		u[i] = u[i-1] + d
	}
	total := u[len(u)-1]
	if total == 0 {
		// Degenerate (coincident points); spread uniformly.
		for i := range u {
			u[i] = float64(i) / float64(max(len(u)-1, 1))
		}
		return u
	}
	for i := range u {
		u[i] /= total
	}
	return u
}

// reparameterize applies one Newton–Raphson step per point to move each
// parameter toward the curve's closest approach of that point.
func (bz Bezier) reparameterize(pts []seq.Point, u []float64) []float64 {
	out := make([]float64, len(u))
	for i, p := range pts {
		out[i] = bz.newtonStep(vec2{p.T, p.V}, u[i])
	}
	return out
}

func (bz Bezier) newtonStep(p vec2, u float64) float64 {
	q := bz.at(u).sub(p)
	q1 := bz.d1(u)
	q2 := bz.d2(u)
	num := q.dot(q1)
	den := q1.dot(q1) + q.dot(q2)
	if math.Abs(den) < 1e-12 {
		return u
	}
	next := u - num/den
	if next < 0 {
		return 0
	}
	if next > 1 {
		return 1
	}
	return next
}

// FitBezier fits a single cubic Bézier to pts using Schneider's method
// with nIterations Newton reparameterization passes (Schneider uses 4).
// It returns an error for fewer than two points.
func FitBezier(pts []seq.Point, nIterations int) (Bezier, error) {
	if len(pts) < 2 {
		return Bezier{}, fmt.Errorf("fit: bezier needs >= 2 points, got %d", len(pts))
	}
	if nIterations < 0 {
		nIterations = 0
	}
	v := make([]vec2, len(pts))
	for i, p := range pts {
		v[i] = vec2{p.T, p.V}
	}
	tHat1 := leftTangent(v)
	tHat2 := rightTangent(v)
	u := chordLengthParams(pts)
	bz := generateBezier(v, u, tHat1, tHat2)
	for iter := 0; iter < nIterations; iter++ {
		u = bz.reparameterize(pts, u)
		bz = generateBezier(v, u, tHat1, tHat2)
	}
	return bz, nil
}

// leftTangent estimates the unit tangent at the first point.
func leftTangent(v []vec2) vec2 {
	for i := 1; i < len(v); i++ {
		if t, ok := v[i].sub(v[0]).unit(); ok {
			return t
		}
	}
	return vec2{1, 0}
}

// rightTangent estimates the unit tangent at the last point (pointing
// backward into the curve, per Schneider's convention).
func rightTangent(v []vec2) vec2 {
	last := len(v) - 1
	for i := last - 1; i >= 0; i-- {
		if t, ok := v[i].sub(v[last]).unit(); ok {
			return t
		}
	}
	return vec2{-1, 0}
}

// generateBezier solves the 2x2 least-squares system for the distances of
// the two inner control points along the end tangents (Schneider's
// GenerateBezier), with the Wu–Barsky fallback when the system is
// degenerate.
func generateBezier(v []vec2, u []float64, tHat1, tHat2 vec2) Bezier {
	first, last := v[0], v[len(v)-1]
	var c00, c01, c11, x0, x1 float64
	for i := range v {
		a0 := tHat1.scale(b1(u[i]))
		a1 := tHat2.scale(b2(u[i]))
		c00 += a0.dot(a0)
		c01 += a0.dot(a1)
		c11 += a1.dot(a1)
		base := first.scale(b0(u[i]) + b1(u[i])).add(last.scale(b2(u[i]) + b3(u[i])))
		diff := v[i].sub(base)
		x0 += a0.dot(diff)
		x1 += a1.dot(diff)
	}
	detC := c00*c11 - c01*c01
	var alpha1, alpha2 float64
	if math.Abs(detC) > 1e-12 {
		alpha1 = (x0*c11 - x1*c01) / detC
		alpha2 = (c00*x1 - c01*x0) / detC
	}
	segLen := last.sub(first).norm()
	eps := 1e-6 * segLen
	if alpha1 < eps || alpha2 < eps {
		// Wu–Barsky heuristic: place control points at 1/3 of the chord.
		alpha1 = segLen / 3
		alpha2 = segLen / 3
	}
	return Bezier{P: [4]vec2{
		first,
		first.add(tHat1.scale(alpha1)),
		last.add(tHat2.scale(alpha2)),
		last,
	}}
}

// BezierFitter fits single cubic Bézier segments (Schneider's algorithm)
// for use with the breaking template.
type BezierFitter struct {
	// Iterations is the number of Newton reparameterization passes
	// (default 4 when zero, Schneider's choice).
	Iterations int
}

// Name implements Fitter.
func (f BezierFitter) Name() string { return "bezier" }

// Fit implements Fitter.
func (f BezierFitter) Fit(pts []seq.Point) (Curve, error) {
	iters := f.Iterations
	if iters == 0 {
		iters = 4
	}
	if len(pts) == 1 {
		p := vec2{pts[0].T, pts[0].V}
		return Bezier{P: [4]vec2{p, p, p, p}}, nil
	}
	return FitBezier(pts, iters)
}
