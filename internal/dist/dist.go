// Package dist provides the distance kernels shared by every similarity
// path in seqrep: the ±ε band check of value-based queries (the prior-art
// semantics of the paper's Figure 1), the Euclidean verification step of
// the DFT feature index, and the benchmark comparisons in cmd/seqbench.
//
// The kernels come in two layers. The Sequence functions (L1, L2, LInf,
// WithinBand, ...) operate on seq.Sequence values, compare samples
// pairwise by position, and return ErrLengthMismatch when the operands
// disagree in length. The Values functions (L1Values, L2Values, ...) are
// the same kernels over bare []float64 sample vectors, for hot paths that
// already hold raw values (e.g. sliding-window matching) and must not
// re-wrap them per window.
//
// WithinBand and BandDistance early-abandon: they stop at the first
// sample pair whose difference exceeds the tolerance, so a scan over a
// database of mostly non-matching sequences inspects only a prefix of
// each. This is the standard trick of data-series similarity search (cf.
// the early-abandoning Euclidean distance in the Lernaean Hydra study).
//
// The Metric interface names a kernel so engines can be parameterized by
// distance at run time (core.DB.DistanceQuery, CLI flags). ByName resolves
// the textual names used on command lines.
package dist

import (
	"errors"
	"fmt"
	"math"

	"seqrep/internal/seq"
)

// ErrLengthMismatch is returned (wrapped, with both lengths) whenever two
// operands of a pairwise distance disagree in length.
var ErrLengthMismatch = errors.New("dist: sequence length mismatch")

// checkLen validates that two operand lengths agree.
func checkLen(na, nb int) error {
	if na != nb {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, na, nb)
	}
	return nil
}

// ---- kernels over sequences ----

// L1 returns the Manhattan distance Σ|aᵢ-bᵢ| between two equal-length
// sequences, comparing values pairwise by position.
func L1(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i].V - b[i].V)
	}
	return sum, nil
}

// L2 returns the Euclidean distance sqrt(Σ(aᵢ-bᵢ)²) between two
// equal-length sequences.
func L2(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		d := a[i].V - b[i].V
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// LInf returns the Chebyshev distance max|aᵢ-bᵢ| between two equal-length
// sequences. A stored sequence lies within the ±ε band of an exemplar
// exactly when LInf(exemplar, stored) ≤ ε.
func LInf(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i].V - b[i].V); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// WithinBand reports whether every sample of s lies within ±eps of the
// corresponding sample of q — the prior-art query semantics the paper
// generalizes away from. It abandons at the first violating sample, so
// rejecting a far-away sequence costs O(1) rather than O(n).
func WithinBand(q, s seq.Sequence, eps float64) (bool, error) {
	if eps < 0 {
		return false, fmt.Errorf("dist: negative tolerance %g", eps)
	}
	if err := checkLen(len(q), len(s)); err != nil {
		return false, err
	}
	for i := range q {
		if math.Abs(q[i].V-s[i].V) > eps {
			return false, nil
		}
	}
	return true, nil
}

// BandDistance combines WithinBand and LInf in one early-abandoning pass:
// it returns (LInf(q,s), true) when s lies within the ±eps band of q, and
// (partial, false) as soon as a sample violates the band (partial is then
// only a lower bound on the true distance). This is the kernel behind
// core.DB.ValueQuery, which needs both the accept/reject decision and the
// deviation of accepted matches.
func BandDistance(q, s seq.Sequence, eps float64) (float64, bool, error) {
	if eps < 0 {
		return 0, false, fmt.Errorf("dist: negative tolerance %g", eps)
	}
	if err := checkLen(len(q), len(s)); err != nil {
		return 0, false, err
	}
	worst := 0.0
	for i := range q {
		d := math.Abs(q[i].V - s[i].V)
		if d > eps {
			return d, false, nil
		}
		if d > worst {
			worst = d
		}
	}
	return worst, true, nil
}

// ---- normalized variants ----

// NormalizedL1 returns the mean absolute deviation L1(a,b)/n: the L1
// distance normalized by length, comparable across sequence lengths.
func NormalizedL1(a, b seq.Sequence) (float64, error) {
	d, err := L1(a, b)
	if err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, nil
	}
	return d / float64(len(a)), nil
}

// NormalizedL2 returns the root-mean-square deviation L2(a,b)/sqrt(n):
// the Euclidean distance normalized by length.
func NormalizedL2(a, b seq.Sequence) (float64, error) {
	d, err := L2(a, b)
	if err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, nil
	}
	return d / math.Sqrt(float64(len(a))), nil
}

// ZNormalizedL2 z-normalizes both value vectors (subtract mean, divide by
// standard deviation) and returns their Euclidean distance. This is the
// standard amplitude- and offset-invariant measure of data-series
// similarity search. A constant sequence z-normalizes to all zeros.
func ZNormalizedL2(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, nil
	}
	ma, sa := meanStd(a)
	mb, sb := meanStd(b)
	sum := 0.0
	for i := range a {
		d := znorm(a[i].V, ma, sa) - znorm(b[i].V, mb, sb)
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// meanStd computes the population mean and standard deviation over the
// sequence's values directly, without materializing a value slice. The
// accumulation order is identical to meanStdValues, so the two agree
// bit-for-bit — the feature-index transform and verification must use the
// same arithmetic or the lower bound breaks.
func meanStd(s seq.Sequence) (mean, std float64) {
	for _, p := range s {
		mean += p.V
	}
	mean /= float64(len(s))
	ss := 0.0
	for _, p := range s {
		d := p.V - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(s)))
}

// meanStdValues is the one population mean/std computation every
// z-normalization path shares (ZNormalizedL2 verification and the
// feature-index transform must agree exactly, or the lower bound breaks).
func meanStdValues(vals []float64) (mean, std float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(vals)))
}

// ZNormalizeValues returns the z-normalized copy of vals using the same
// population mean/std and zero-variance convention as ZNormalizedL2, so
// L2Values over two ZNormalizeValues outputs equals ZNormalizedL2 over
// the original sequences. This is the transform behind the z-normalized
// lower bound of the core feature index.
func ZNormalizeValues(vals []float64) []float64 {
	out := make([]float64, len(vals))
	if len(vals) == 0 {
		return out
	}
	mean, std := meanStdValues(vals)
	for i, v := range vals {
		out[i] = znorm(v, mean, std)
	}
	return out
}

func znorm(v, mean, std float64) float64 {
	if std == 0 {
		return 0
	}
	return (v - mean) / std
}

// ---- kernels over bare value vectors ----

// L1Values is L1 over raw sample vectors.
func L1Values(a, b []float64) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum, nil
}

// L2Values is L2 over raw sample vectors — the verification kernel of
// sliding-window subsequence matching, where re-wrapping every window
// into a Sequence would dominate the cost.
func L2Values(a, b []float64) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// LInfValues is LInf over raw sample vectors.
func LInfValues(a, b []float64) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// L2ValuesWithin is the early-abandoning threshold form of L2Values: it
// reports whether the Euclidean distance between a and b is at most eps,
// accumulating squared differences and bailing as soon as the partial sum
// already exceeds eps² — no sqrt is taken on the reject path. When within
// is true, d equals L2Values(a, b) bit-for-bit; when false, d is only a
// lower bound on the true distance.
func L2ValuesWithin(a, b []float64, eps float64) (d float64, within bool, err error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	bail := abandonSq(eps)
	sum := 0.0
	for i := range a {
		dd := a[i] - b[i]
		sum += dd * dd
		if sum > bail {
			return math.Sqrt(sum), false, nil
		}
	}
	d = math.Sqrt(sum)
	return d, d <= eps, nil
}

// ---- early-abandoning threshold kernels ----
//
// The *Within kernels answer "is the distance at most eps?" cheaper than
// computing the distance in full: they accumulate in squared (or summed)
// space, compare against a pre-scaled threshold, and abandon mid-loop the
// moment the partial accumulation already decides the answer. Abandoning
// uses a threshold widened by a whisker of floating-point headroom
// (abandonSlack), while a loop that runs to completion decides with the
// exact `d <= eps` comparison — so every kernel returns exactly the same
// accept/reject decision and, on acceptance, bit-identical distances to
// its full counterpart. Query plans that share these kernels therefore
// stay byte-equivalent with plans that never abandon.

// abandonSlack widens an abandon threshold so accumulated rounding can
// never cause a kernel to bail on a pair its full counterpart accepts.
func abandonSlack(t float64) float64 { return t * (1 + 1e-9) }

// abandonSq is the abandon threshold for squared-space accumulation
// against tolerance eps.
func abandonSq(eps float64) float64 { return abandonSlack(eps * eps) }

func l1Within(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	bail := abandonSlack(eps)
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i].V - b[i].V)
		if sum > bail {
			return sum, false, nil
		}
	}
	return sum, sum <= eps, nil
}

func l2Within(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	bail := abandonSq(eps)
	sum := 0.0
	for i := range a {
		d := a[i].V - b[i].V
		sum += d * d
		if sum > bail {
			return math.Sqrt(sum), false, nil
		}
	}
	d := math.Sqrt(sum)
	return d, d <= eps, nil
}

func linfWithin(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i].V - b[i].V); d > worst {
			if d > eps {
				return d, false, nil
			}
			worst = d
		}
	}
	// The final exact comparison (not a bare `true`) keeps the contract
	// for degenerate tolerances: worst can be 0 while eps is negative.
	return worst, worst <= eps, nil
}

func norml1Within(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	if len(a) == 0 {
		return 0, 0 <= eps, nil
	}
	n := float64(len(a))
	bail := abandonSlack(eps * n)
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i].V - b[i].V)
		if sum > bail {
			return sum / n, false, nil
		}
	}
	d := sum / n
	return d, d <= eps, nil
}

func norml2Within(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	if len(a) == 0 {
		return 0, 0 <= eps, nil
	}
	n := float64(len(a))
	bail := abandonSlack(eps * eps * n)
	sum := 0.0
	for i := range a {
		d := a[i].V - b[i].V
		sum += d * d
		if sum > bail {
			return math.Sqrt(sum) / math.Sqrt(n), false, nil
		}
	}
	d := math.Sqrt(sum) / math.Sqrt(n)
	return d, d <= eps, nil
}

// zl2Within is the threshold form of ZNormalizedL2: mean/std of each
// operand are computed in one pass over the Sequence (no value slices are
// materialized), then the z-normalized squared differences accumulate with
// early abandoning against eps².
func zl2Within(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, false, err
	}
	if len(a) == 0 {
		return 0, 0 <= eps, nil
	}
	ma, sa := meanStd(a)
	mb, sb := meanStd(b)
	bail := abandonSq(eps)
	sum := 0.0
	for i := range a {
		d := znorm(a[i].V, ma, sa) - znorm(b[i].V, mb, sb)
		sum += d * d
		if sum > bail {
			return math.Sqrt(sum), false, nil
		}
	}
	d := math.Sqrt(sum)
	return d, d <= eps, nil
}

// ---- named metrics ----

// Metric is a named distance kernel over sequences, the unit of run-time
// parameterization: core.DB.DistanceQuery scans the database under any
// Metric, and command-line tools resolve user-supplied names via ByName.
type Metric interface {
	// Name returns the metric's canonical textual name (e.g. "l2").
	Name() string
	// Distance returns the distance between two equal-length sequences.
	Distance(a, b seq.Sequence) (float64, error)
}

// Thresholded is implemented by metrics that can decide "distance within
// eps?" cheaper than computing the distance in full (early abandoning,
// squared-space comparison). DistanceWithin must return exactly the same
// decision as `Distance(a,b) <= eps` and, when within is true, the exact
// distance; when within is false, d is only a lower bound.
type Thresholded interface {
	DistanceWithin(a, b seq.Sequence, eps float64) (d float64, within bool, err error)
}

// DistanceWithin reports whether m's distance between a and b is at most
// eps, routing through the metric's early-abandoning kernel when it has
// one and falling back to a full Distance otherwise. This is the one
// verification entry point of the query planner's hot path.
func DistanceWithin(m Metric, a, b seq.Sequence, eps float64) (d float64, within bool, err error) {
	if tm, ok := m.(Thresholded); ok {
		return tm.DistanceWithin(a, b, eps)
	}
	d, err = m.Distance(a, b)
	if err != nil {
		return 0, false, err
	}
	return d, d <= eps, nil
}

type metricFunc struct {
	name string
	fn   func(a, b seq.Sequence) (float64, error)
	// within is the metric's early-abandoning threshold kernel; nil falls
	// back to a full fn evaluation.
	within func(a, b seq.Sequence, eps float64) (float64, bool, error)
}

func (m metricFunc) Name() string                                { return m.name }
func (m metricFunc) Distance(a, b seq.Sequence) (float64, error) { return m.fn(a, b) }

// DistanceWithin implements Thresholded.
func (m metricFunc) DistanceWithin(a, b seq.Sequence, eps float64) (float64, bool, error) {
	if m.within != nil {
		return m.within(a, b, eps)
	}
	d, err := m.fn(a, b)
	if err != nil {
		return 0, false, err
	}
	return d, d <= eps, nil
}

// The built-in metrics.
var (
	// Manhattan is L1, named "l1".
	Manhattan Metric = metricFunc{"l1", L1, l1Within}
	// Euclidean is L2, named "l2".
	Euclidean Metric = metricFunc{"l2", L2, l2Within}
	// Chebyshev is LInf, named "linf" — the ±ε band semantics.
	Chebyshev Metric = metricFunc{"linf", LInf, linfWithin}
	// MeanAbs is length-normalized L1, named "norml1".
	MeanAbs Metric = metricFunc{"norml1", NormalizedL1, norml1Within}
	// RMS is length-normalized L2, named "norml2".
	RMS Metric = metricFunc{"norml2", NormalizedL2, norml2Within}
	// ZEuclidean is z-normalized L2, named "zl2".
	ZEuclidean Metric = metricFunc{"zl2", ZNormalizedL2, zl2Within}
)

// Metrics returns every built-in metric, in a stable order.
func Metrics() []Metric {
	return []Metric{Manhattan, Euclidean, Chebyshev, MeanAbs, RMS, ZEuclidean}
}

// ByName resolves a metric from its textual name (canonical names plus
// the aliases "manhattan", "euclidean", "chebyshev", "max", "rms", and
// "zeuclidean"; matching is case-sensitive, names are lower-case).
func ByName(name string) (Metric, error) {
	switch name {
	case "l1", "manhattan":
		return Manhattan, nil
	case "l2", "euclidean":
		return Euclidean, nil
	case "linf", "chebyshev", "max":
		return Chebyshev, nil
	case "norml1":
		return MeanAbs, nil
	case "norml2", "rms":
		return RMS, nil
	case "zl2", "zeuclidean":
		return ZEuclidean, nil
	}
	return nil, fmt.Errorf("dist: unknown metric %q (have l1, l2, linf, norml1, norml2, zl2)", name)
}
