// Package dist provides the distance kernels shared by every similarity
// path in seqrep: the ±ε band check of value-based queries (the prior-art
// semantics of the paper's Figure 1), the Euclidean verification step of
// the DFT feature index, and the benchmark comparisons in cmd/seqbench.
//
// The kernels come in two layers. The Sequence functions (L1, L2, LInf,
// WithinBand, ...) operate on seq.Sequence values, compare samples
// pairwise by position, and return ErrLengthMismatch when the operands
// disagree in length. The Values functions (L1Values, L2Values, ...) are
// the same kernels over bare []float64 sample vectors, for hot paths that
// already hold raw values (e.g. sliding-window matching) and must not
// re-wrap them per window.
//
// WithinBand and BandDistance early-abandon: they stop at the first
// sample pair whose difference exceeds the tolerance, so a scan over a
// database of mostly non-matching sequences inspects only a prefix of
// each. This is the standard trick of data-series similarity search (cf.
// the early-abandoning Euclidean distance in the Lernaean Hydra study).
//
// The Metric interface names a kernel so engines can be parameterized by
// distance at run time (core.DB.DistanceQuery, CLI flags). ByName resolves
// the textual names used on command lines.
package dist

import (
	"errors"
	"fmt"
	"math"

	"seqrep/internal/seq"
)

// ErrLengthMismatch is returned (wrapped, with both lengths) whenever two
// operands of a pairwise distance disagree in length.
var ErrLengthMismatch = errors.New("dist: sequence length mismatch")

// checkLen validates that two operand lengths agree.
func checkLen(na, nb int) error {
	if na != nb {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, na, nb)
	}
	return nil
}

// ---- kernels over sequences ----

// L1 returns the Manhattan distance Σ|aᵢ-bᵢ| between two equal-length
// sequences, comparing values pairwise by position.
func L1(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i].V - b[i].V)
	}
	return sum, nil
}

// L2 returns the Euclidean distance sqrt(Σ(aᵢ-bᵢ)²) between two
// equal-length sequences.
func L2(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		d := a[i].V - b[i].V
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// LInf returns the Chebyshev distance max|aᵢ-bᵢ| between two equal-length
// sequences. A stored sequence lies within the ±ε band of an exemplar
// exactly when LInf(exemplar, stored) ≤ ε.
func LInf(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i].V - b[i].V); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// WithinBand reports whether every sample of s lies within ±eps of the
// corresponding sample of q — the prior-art query semantics the paper
// generalizes away from. It abandons at the first violating sample, so
// rejecting a far-away sequence costs O(1) rather than O(n).
func WithinBand(q, s seq.Sequence, eps float64) (bool, error) {
	if eps < 0 {
		return false, fmt.Errorf("dist: negative tolerance %g", eps)
	}
	if err := checkLen(len(q), len(s)); err != nil {
		return false, err
	}
	for i := range q {
		if math.Abs(q[i].V-s[i].V) > eps {
			return false, nil
		}
	}
	return true, nil
}

// BandDistance combines WithinBand and LInf in one early-abandoning pass:
// it returns (LInf(q,s), true) when s lies within the ±eps band of q, and
// (partial, false) as soon as a sample violates the band (partial is then
// only a lower bound on the true distance). This is the kernel behind
// core.DB.ValueQuery, which needs both the accept/reject decision and the
// deviation of accepted matches.
func BandDistance(q, s seq.Sequence, eps float64) (float64, bool, error) {
	if eps < 0 {
		return 0, false, fmt.Errorf("dist: negative tolerance %g", eps)
	}
	if err := checkLen(len(q), len(s)); err != nil {
		return 0, false, err
	}
	worst := 0.0
	for i := range q {
		d := math.Abs(q[i].V - s[i].V)
		if d > eps {
			return d, false, nil
		}
		if d > worst {
			worst = d
		}
	}
	return worst, true, nil
}

// ---- normalized variants ----

// NormalizedL1 returns the mean absolute deviation L1(a,b)/n: the L1
// distance normalized by length, comparable across sequence lengths.
func NormalizedL1(a, b seq.Sequence) (float64, error) {
	d, err := L1(a, b)
	if err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, nil
	}
	return d / float64(len(a)), nil
}

// NormalizedL2 returns the root-mean-square deviation L2(a,b)/sqrt(n):
// the Euclidean distance normalized by length.
func NormalizedL2(a, b seq.Sequence) (float64, error) {
	d, err := L2(a, b)
	if err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, nil
	}
	return d / math.Sqrt(float64(len(a))), nil
}

// ZNormalizedL2 z-normalizes both value vectors (subtract mean, divide by
// standard deviation) and returns their Euclidean distance. This is the
// standard amplitude- and offset-invariant measure of data-series
// similarity search. A constant sequence z-normalizes to all zeros.
func ZNormalizedL2(a, b seq.Sequence) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	if len(a) == 0 {
		return 0, nil
	}
	ma, sa := meanStd(a)
	mb, sb := meanStd(b)
	sum := 0.0
	for i := range a {
		d := znorm(a[i].V, ma, sa) - znorm(b[i].V, mb, sb)
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

func meanStd(s seq.Sequence) (mean, std float64) {
	return meanStdValues(s.Values())
}

// meanStdValues is the one population mean/std computation every
// z-normalization path shares (ZNormalizedL2 verification and the
// feature-index transform must agree exactly, or the lower bound breaks).
func meanStdValues(vals []float64) (mean, std float64) {
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(vals)))
}

// ZNormalizeValues returns the z-normalized copy of vals using the same
// population mean/std and zero-variance convention as ZNormalizedL2, so
// L2Values over two ZNormalizeValues outputs equals ZNormalizedL2 over
// the original sequences. This is the transform behind the z-normalized
// lower bound of the core feature index.
func ZNormalizeValues(vals []float64) []float64 {
	out := make([]float64, len(vals))
	if len(vals) == 0 {
		return out
	}
	mean, std := meanStdValues(vals)
	for i, v := range vals {
		out[i] = znorm(v, mean, std)
	}
	return out
}

func znorm(v, mean, std float64) float64 {
	if std == 0 {
		return 0
	}
	return (v - mean) / std
}

// ---- kernels over bare value vectors ----

// L1Values is L1 over raw sample vectors.
func L1Values(a, b []float64) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum, nil
}

// L2Values is L2 over raw sample vectors — the verification kernel of
// sliding-window subsequence matching, where re-wrapping every window
// into a Sequence would dominate the cost.
func L2Values(a, b []float64) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// LInfValues is LInf over raw sample vectors.
func LInfValues(a, b []float64) (float64, error) {
	if err := checkLen(len(a), len(b)); err != nil {
		return 0, err
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// ---- named metrics ----

// Metric is a named distance kernel over sequences, the unit of run-time
// parameterization: core.DB.DistanceQuery scans the database under any
// Metric, and command-line tools resolve user-supplied names via ByName.
type Metric interface {
	// Name returns the metric's canonical textual name (e.g. "l2").
	Name() string
	// Distance returns the distance between two equal-length sequences.
	Distance(a, b seq.Sequence) (float64, error)
}

type metricFunc struct {
	name string
	fn   func(a, b seq.Sequence) (float64, error)
}

func (m metricFunc) Name() string                                { return m.name }
func (m metricFunc) Distance(a, b seq.Sequence) (float64, error) { return m.fn(a, b) }

// The built-in metrics.
var (
	// Manhattan is L1, named "l1".
	Manhattan Metric = metricFunc{"l1", L1}
	// Euclidean is L2, named "l2".
	Euclidean Metric = metricFunc{"l2", L2}
	// Chebyshev is LInf, named "linf" — the ±ε band semantics.
	Chebyshev Metric = metricFunc{"linf", LInf}
	// MeanAbs is length-normalized L1, named "norml1".
	MeanAbs Metric = metricFunc{"norml1", NormalizedL1}
	// RMS is length-normalized L2, named "norml2".
	RMS Metric = metricFunc{"norml2", NormalizedL2}
	// ZEuclidean is z-normalized L2, named "zl2".
	ZEuclidean Metric = metricFunc{"zl2", ZNormalizedL2}
)

// Metrics returns every built-in metric, in a stable order.
func Metrics() []Metric {
	return []Metric{Manhattan, Euclidean, Chebyshev, MeanAbs, RMS, ZEuclidean}
}

// ByName resolves a metric from its textual name (canonical names plus
// the aliases "manhattan", "euclidean", "chebyshev", "max", "rms", and
// "zeuclidean"; matching is case-sensitive, names are lower-case).
func ByName(name string) (Metric, error) {
	switch name {
	case "l1", "manhattan":
		return Manhattan, nil
	case "l2", "euclidean":
		return Euclidean, nil
	case "linf", "chebyshev", "max":
		return Chebyshev, nil
	case "norml1":
		return MeanAbs, nil
	case "norml2", "rms":
		return RMS, nil
	case "zl2", "zeuclidean":
		return ZEuclidean, nil
	}
	return nil, fmt.Errorf("dist: unknown metric %q (have l1, l2, linf, norml1, norml2, zl2)", name)
}
