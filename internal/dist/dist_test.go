package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/seq"
)

// almost compares floats to 1e-12 absolute tolerance.
func almost(got, want float64) bool { return math.Abs(got-want) <= 1e-12 }

// Golden values, hand-computed over a = (1,2,3,4), b = (2,2,1,8):
// diffs (1,0,2,4) → L1 = 7, L2 = sqrt(21), LInf = 4.
func TestGoldenValues(t *testing.T) {
	a := seq.New([]float64{1, 2, 3, 4})
	b := seq.New([]float64{2, 2, 1, 8})

	if d, err := L1(a, b); err != nil || !almost(d, 7) {
		t.Errorf("L1 = %v, %v; want 7", d, err)
	}
	if d, err := L2(a, b); err != nil || !almost(d, math.Sqrt(21)) {
		t.Errorf("L2 = %v, %v; want sqrt(21)", d, err)
	}
	if d, err := LInf(a, b); err != nil || !almost(d, 4) {
		t.Errorf("LInf = %v, %v; want 4", d, err)
	}
	if d, err := NormalizedL1(a, b); err != nil || !almost(d, 7.0/4) {
		t.Errorf("NormalizedL1 = %v, %v; want 7/4", d, err)
	}
	if d, err := NormalizedL2(a, b); err != nil || !almost(d, math.Sqrt(21)/2) {
		t.Errorf("NormalizedL2 = %v, %v; want sqrt(21)/2", d, err)
	}

	// The value-vector kernels agree with the sequence kernels.
	av, bv := a.Values(), b.Values()
	if d, _ := L1Values(av, bv); !almost(d, 7) {
		t.Errorf("L1Values = %v, want 7", d)
	}
	if d, _ := L2Values(av, bv); !almost(d, math.Sqrt(21)) {
		t.Errorf("L2Values = %v, want sqrt(21)", d)
	}
	if d, _ := LInfValues(av, bv); !almost(d, 4) {
		t.Errorf("LInfValues = %v, want 4", d)
	}
}

func TestWithinBandGolden(t *testing.T) {
	q := seq.New([]float64{1, 2, 3, 4})
	s := seq.New([]float64{1.4, 1.6, 3.5, 4})
	// LInf(q, s) = 0.5 exactly.
	for _, c := range []struct {
		eps  float64
		want bool
	}{{0.5, true}, {0.49, false}, {4, true}, {0, false}} {
		got, err := WithinBand(q, s, c.eps)
		if err != nil {
			t.Fatalf("WithinBand(eps=%g): %v", c.eps, err)
		}
		if got != c.want {
			t.Errorf("WithinBand(eps=%g) = %v, want %v", c.eps, got, c.want)
		}
	}
	if ok, err := WithinBand(q, q, 0); err != nil || !ok {
		t.Errorf("WithinBand(q, q, 0) = %v, %v; want true", ok, err)
	}
	if _, err := WithinBand(q, s, -1); err == nil {
		t.Error("WithinBand with negative tolerance: no error")
	}
}

func TestBandDistance(t *testing.T) {
	q := seq.New([]float64{1, 2, 3, 4})
	s := seq.New([]float64{1.4, 1.6, 3.5, 4})
	d, within, err := BandDistance(q, s, 0.5)
	if err != nil || !within || !almost(d, 0.5) {
		t.Errorf("BandDistance = (%v, %v, %v), want (0.5, true, nil)", d, within, err)
	}
	if _, within, err := BandDistance(q, s, 0.4); err != nil || within {
		t.Errorf("BandDistance(eps=0.4) within = %v, want false", within)
	}
	if _, _, err := BandDistance(q, s, -0.1); err == nil {
		t.Error("BandDistance with negative tolerance: no error")
	}
}

func TestZNormalizedL2(t *testing.T) {
	a := seq.New([]float64{1, 2, 3, 2, 1})
	// b is a shifted and amplitude-scaled copy of a: z-distance 0.
	b := seq.New([]float64{10, 30, 50, 30, 10})
	if d, err := ZNormalizedL2(a, b); err != nil || !almost(d, 0) {
		t.Errorf("ZNormalizedL2(scaled copy) = %v, %v; want 0", d, err)
	}
	// Constant sequences z-normalize to zero vectors.
	c := seq.New([]float64{7, 7, 7, 7, 7})
	if d, err := ZNormalizedL2(c, c); err != nil || !almost(d, 0) {
		t.Errorf("ZNormalizedL2(const, const) = %v, %v; want 0", d, err)
	}
}

func TestLengthMismatch(t *testing.T) {
	a := seq.New([]float64{1, 2, 3})
	b := seq.New([]float64{1, 2})
	if _, err := L1(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("L1 mismatch error = %v", err)
	}
	if _, err := L2(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("L2 mismatch error = %v", err)
	}
	if _, err := LInf(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("LInf mismatch error = %v", err)
	}
	if _, err := WithinBand(a, b, 1); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("WithinBand mismatch error = %v", err)
	}
	if _, _, err := BandDistance(a, b, 1); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("BandDistance mismatch error = %v", err)
	}
	if _, err := ZNormalizedL2(a, b); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("ZNormalizedL2 mismatch error = %v", err)
	}
	if _, err := L2Values([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("L2Values mismatch error = %v", err)
	}
	for _, m := range Metrics() {
		if _, err := m.Distance(a, b); !errors.Is(err, ErrLengthMismatch) {
			t.Errorf("metric %s mismatch error = %v", m.Name(), err)
		}
	}
}

// Property: WithinBand(q, s, ε) ⇔ LInf(q, s) ≤ ε, on random sequences and
// tolerances including the exact boundary ε = LInf(q, s).
func TestWithinBandMatchesLInf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(64)
		qv := make([]float64, n)
		sv := make([]float64, n)
		for i := range qv {
			qv[i] = rng.NormFloat64() * 10
			sv[i] = qv[i] + rng.NormFloat64()
		}
		q, s := seq.New(qv), seq.New(sv)
		linf, err := LInf(q, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, linf / 2, linf, linf * 1.5, rng.Float64() * 5} {
			within, err := WithinBand(q, s, eps)
			if err != nil {
				t.Fatal(err)
			}
			if want := linf <= eps; within != want {
				t.Fatalf("trial %d: WithinBand(eps=%g) = %v but LInf = %g", trial, eps, within, linf)
			}
			d, bWithin, err := BandDistance(q, s, eps)
			if err != nil {
				t.Fatal(err)
			}
			if bWithin != (linf <= eps) {
				t.Fatalf("trial %d: BandDistance within = %v but LInf = %g, eps = %g", trial, bWithin, linf, eps)
			}
			if bWithin && !almost(d, linf) {
				t.Fatalf("trial %d: BandDistance dist = %g, LInf = %g", trial, d, linf)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, m := range Metrics() {
		got, err := ByName(m.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", m.Name(), err)
			continue
		}
		if got.Name() != m.Name() {
			t.Errorf("ByName(%q).Name() = %q", m.Name(), got.Name())
		}
	}
	for alias, want := range map[string]Metric{
		"euclidean": Euclidean, "manhattan": Manhattan, "chebyshev": Chebyshev,
		"max": Chebyshev, "rms": RMS, "zeuclidean": ZEuclidean,
	} {
		got, err := ByName(alias)
		if err != nil || got.Name() != want.Name() {
			t.Errorf("ByName(%q) = %v, %v; want %s", alias, got, err, want.Name())
		}
	}
	if _, err := ByName("dtw"); err == nil {
		t.Error("ByName(dtw): expected error")
	}
}

// benchSequences builds a query and a store sequence that violates the
// band at position k, to measure the early-abandoning path.
func benchSequences(n, k int) (q, s seq.Sequence) {
	qv := make([]float64, n)
	sv := make([]float64, n)
	for i := range qv {
		qv[i] = math.Sin(float64(i) / 10)
		sv[i] = qv[i]
		if i >= k {
			sv[i] = qv[i] + 10 // far outside any small band
		}
	}
	return seq.New(qv), seq.New(sv)
}

// BenchmarkWithinBandAbandonEarly measures the early-abandoning fast
// path: the first sample already violates the band, so cost is O(1)
// regardless of n.
func BenchmarkWithinBandAbandonEarly(b *testing.B) {
	q, s := benchSequences(4096, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, err := WithinBand(q, s, 0.5); ok || err != nil {
			b.Fatal("unexpected match")
		}
	}
}

// BenchmarkWithinBandFullScan measures the worst case: the sequence stays
// inside the band throughout, so every sample is inspected.
func BenchmarkWithinBandFullScan(b *testing.B) {
	q, s := benchSequences(4096, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, err := WithinBand(q, s, 0.5); !ok || err != nil {
			b.Fatal("unexpected mismatch")
		}
	}
}

// BenchmarkLInfFullScan is the no-abandon baseline the band check is
// measured against.
func BenchmarkLInfFullScan(b *testing.B) {
	q, s := benchSequences(4096, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LInf(q, s); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDistanceWithinMatchesDistance is the threshold-kernel contract: for
// every built-in metric, DistanceWithin must return exactly the decision
// `Distance(a,b) <= eps` and, on acceptance, the bit-identical distance.
// eps values are drawn around the true distance so the boundary (where an
// unsafe early abandon would flip a decision) is exercised heavily.
func TestDistanceWithinMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSeq := func(n int) seq.Sequence {
		s := make(seq.Sequence, n)
		for i := range s {
			s[i] = seq.Point{T: float64(i), V: 20 * (rng.Float64() - 0.5)}
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		a, b := randSeq(n), randSeq(n)
		if trial%5 == 0 {
			b = a.Clone() // exact pairs hit the d == eps == 0 boundary
		}
		for _, m := range Metrics() {
			want, err := m.Distance(a, b)
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range []float64{0, want * 0.5, want, want * (1 + 1e-15), want * 2, math.Nextafter(want, 0), math.Nextafter(want, math.Inf(1))} {
				d, within, err := DistanceWithin(m, a, b, eps)
				if err != nil {
					t.Fatal(err)
				}
				if within != (want <= eps) {
					t.Fatalf("%s n=%d eps=%v: within=%v, want %v (d=%v)", m.Name(), n, eps, within, want <= eps, want)
				}
				if within && d != want {
					t.Fatalf("%s n=%d eps=%v: accepted d=%v differs from Distance=%v", m.Name(), n, eps, d, want)
				}
			}
		}
	}
}

// TestL2ValuesWithin checks the bare-vector threshold kernel against its
// full counterpart on the same boundary-heavy workload.
func TestL2ValuesWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		want, err := L2Values(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0, want, math.Nextafter(want, 0), want * 2} {
			d, within, err := L2ValuesWithin(a, b, eps)
			if err != nil {
				t.Fatal(err)
			}
			if within != (want <= eps) {
				t.Fatalf("n=%d eps=%v: within=%v, want %v", n, eps, within, want <= eps)
			}
			if within && d != want {
				t.Fatalf("n=%d eps=%v: d=%v != %v", n, eps, d, want)
			}
		}
	}
	if _, _, err := L2ValuesWithin([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestMeanStdOnePass pins the one-pass meanStd to the Values-based
// computation bit-for-bit (the z-normalized lower bound depends on it).
func TestMeanStdOnePass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		s := make(seq.Sequence, n)
		for i := range s {
			s[i] = seq.Point{T: float64(i), V: 1000 * rng.NormFloat64()}
		}
		m1, s1 := meanStd(s)
		m2, s2 := meanStdValues(s.Values())
		if m1 != m2 || s1 != s2 {
			t.Fatalf("n=%d: one-pass (%v,%v) != values (%v,%v)", n, m1, s1, m2, s2)
		}
	}
}

// TestDistanceWithinAllocs guards the hot verification kernels against
// allocation creep: a threshold check must not allocate at all.
func TestDistanceWithinAllocs(t *testing.T) {
	a := seq.New(make([]float64, 256))
	b := a.Clone()
	for i := range b {
		b[i].V += 0.001 * float64(i%7)
	}
	for _, m := range Metrics() {
		m := m
		allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := DistanceWithin(m, a, b, 1e9); err != nil {
				t.Fatal(err)
			}
			if _, _, err := DistanceWithin(m, a, b, 1e-12); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s: DistanceWithin allocates %.1f per run", m.Name(), allocs)
		}
	}
}

// TestDistanceWithinNegativeEps: the Thresholded contract holds even for
// degenerate tolerances — identical sequences are not "within" eps < 0.
func TestDistanceWithinNegativeEps(t *testing.T) {
	a := seq.New([]float64{1, 2, 3})
	for _, m := range Metrics() {
		if _, within, err := DistanceWithin(m, a, a.Clone(), -1); err != nil || within {
			t.Errorf("%s: within=%v err=%v for eps=-1 on identical sequences", m.Name(), within, err)
		}
	}
}
