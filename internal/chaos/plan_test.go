package chaos

// The fault plan: every write site in the storage stack — the
// write-ahead log's frame write and its fsync, the checkpoint's segment
// writer, the archive's put — crossed with every failure kind the site
// can express. Each cell asserts the same three invariants:
//
//  1. No acknowledged write is ever lost: after the fault (and a
//     reboot), every id that was acknowledged is present and every id
//     that errored is absent or explicitly unacknowledged.
//  2. Faults map to honest error classes: log faults degrade the
//     database (ErrDegraded, the 503 family), data-layer faults are
//     storage errors (ErrStorage, 500) or plain checkpoint failures —
//     never a silent success, never a corrupted read.
//  3. The state machine tells the truth: DegradedStatus reflects
//     exactly the episodes that happened, and service recovers once
//     the fault clears.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"seqrep"
)

func chaosSeq(seed int) seqrep.Sequence {
	vals := make([]float64, 48)
	for i := range vals {
		v := 100.0 + 0.1*float64(seed%7)
		v += 2.5 * math.Exp(-math.Pow(float64(i)-12, 2)/8)
		v += 1.5 * math.Exp(-math.Pow(float64(i)-34, 2)/6)
		vals[i] = v
	}
	return seqrep.NewSequence(vals)
}

func openChaosDB(t *testing.T, dir string) *seqrep.DB {
	t.Helper()
	db, err := seqrep.OpenDir(dir, seqrep.Config{RecoveryProbeInterval: -1})
	if err != nil {
		t.Fatalf("OpenDir(%s): %v", dir, err)
	}
	return db
}

// rebootAsserts closes db, reopens the directory, and verifies exactly
// the acknowledged ids survive. lost ids must NOT have been resurrected
// as acknowledged state they never earned — but a sync-site fault may
// leave their bytes on disk (the fsync outcome was unknowable), so
// allowLost tolerates their presence without requiring it.
func rebootAsserts(t *testing.T, db *seqrep.DB, dir string, acked, lost []string, allowLost bool) {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db2 := openChaosDB(t, dir)
	defer db2.Close()
	for _, id := range acked {
		if _, ok := db2.Record(id); !ok {
			t.Fatalf("acknowledged %q lost across reboot", id)
		}
	}
	if !allowLost {
		for _, id := range lost {
			if _, ok := db2.Record(id); ok {
				t.Fatalf("unacknowledged %q resurrected across reboot", id)
			}
		}
	}
}

// TestWALWriteSiteFaults walks the log's frame-write hook. A write
// fault means no bytes reached the device, so failed ids must stay gone
// forever.
func TestWALWriteSiteFaults(t *testing.T) {
	for _, kind := range []Kind{DiskError, NoSpace, SlowWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := openChaosDB(t, dir)
			defer db.Close()
			var acked, lost []string
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("pre-%d", i)
				if err := db.Ingest(id, chaosSeq(i)); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}

			f := &Fault{Kind: kind, Count: -1}
			db.SetWALFault(f.Hook(), nil)
			err := db.Ingest("during", chaosSeq(9))
			if kind == SlowWrite {
				// A slow disk is not a failed disk: the write must succeed
				// and the database must NOT degrade.
				if err != nil {
					t.Fatalf("slow write failed: %v", err)
				}
				acked = append(acked, "during")
				if db.DegradedStatus().Degraded {
					t.Fatal("slow write degraded the database")
				}
			} else {
				if !errors.Is(err, seqrep.ErrDegraded) {
					t.Fatalf("ingest under %s = %v, want ErrDegraded", kind, err)
				}
				lost = append(lost, "during")
				st := db.DegradedStatus()
				if !st.Degraded || st.Transitions != 1 {
					t.Fatalf("DegradedStatus = %+v", st)
				}
				// Reads serve throughout.
				if _, ok := db.Record("pre-0"); !ok {
					t.Fatal("read failed while degraded")
				}
				// Heal, recover, write again.
				f.Clear()
				if err := db.Recover(); err != nil {
					t.Fatalf("Recover: %v", err)
				}
				if err := db.Ingest("after", chaosSeq(10)); err != nil {
					t.Fatalf("ingest after recovery: %v", err)
				}
				acked = append(acked, "after")
			}
			if f.Trips() == 0 {
				t.Fatal("fault never fired")
			}
			rebootAsserts(t, db, dir, acked, lost, false)
		})
	}
}

// TestWALSyncSiteFaults walks the log's fsync hook. The fsyncgate
// semantics: after a failed fsync the page cache is unknowable, so the
// write is unacknowledged — but its bytes may still be on disk, and may
// legitimately reappear after recovery.
func TestWALSyncSiteFaults(t *testing.T) {
	for _, kind := range []Kind{DiskError, NoSpace} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := openChaosDB(t, dir)
			defer db.Close()
			if err := db.Ingest("pre", chaosSeq(1)); err != nil {
				t.Fatal(err)
			}
			f := &Fault{Kind: kind, Count: -1}
			db.SetWALFault(nil, f.Hook())
			if err := db.Ingest("during", chaosSeq(2)); !errors.Is(err, seqrep.ErrDegraded) {
				t.Fatalf("ingest under %s = %v, want ErrDegraded", kind, err)
			}
			if _, ok := db.Record("during"); ok {
				t.Fatal("unacknowledged write visible in memory")
			}
			f.Clear()
			if err := db.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if err := db.Ingest("after", chaosSeq(3)); err != nil {
				t.Fatalf("ingest after recovery: %v", err)
			}
			rebootAsserts(t, db, dir, []string{"pre", "after"}, []string{"during"}, true)
		})
	}
}

// TestCheckpointWriterSiteFaults walks the checkpoint's segment writer.
// A failed checkpoint must not lose anything (the log still covers the
// dirty records), must not degrade write service, and must succeed once
// the fault clears.
func TestCheckpointWriterSiteFaults(t *testing.T) {
	for _, kind := range []Kind{DiskError, NoSpace, TornWrite, SlowWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := openChaosDB(t, dir)
			defer db.Close()
			var acked []string
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("r-%d", i)
				if err := db.Ingest(id, chaosSeq(i)); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}
			f := &Fault{Kind: kind, Count: -1}
			db.WrapCheckpointWriter(f.WrapWriter())
			err := db.Checkpoint()
			if kind == SlowWrite {
				if err != nil {
					t.Fatalf("slow checkpoint failed: %v", err)
				}
			} else if err == nil {
				t.Fatalf("checkpoint under %s succeeded", kind)
			}
			if db.DegradedStatus().Degraded {
				t.Fatalf("checkpoint fault (%s) degraded the database: the log is fine", kind)
			}
			// Writes keep working through a failed checkpoint.
			if err := db.Ingest("after", chaosSeq(9)); err != nil {
				t.Fatalf("ingest after failed checkpoint: %v", err)
			}
			acked = append(acked, "after")
			f.Clear()
			db.WrapCheckpointWriter(nil)
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after fault cleared: %v", err)
			}
			rebootAsserts(t, db, dir, acked, nil, false)
		})
	}
}

// TestArchivePutSiteFaults walks the raw-sequence archive's put. An
// archive fault is a data-layer storage error (the 500 family), fails
// the ingest before anything is logged or committed, and must not
// degrade the log.
func TestArchivePutSiteFaults(t *testing.T) {
	for _, kind := range []Kind{DiskError, NoSpace, TornWrite, SlowWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			arch, err := seqrep.NewFileArchive(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			db, err := seqrep.OpenDir(dir, seqrep.Config{RecoveryProbeInterval: -1, Archive: arch})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.Ingest("pre", chaosSeq(1)); err != nil {
				t.Fatal(err)
			}
			f := &Fault{Kind: kind, Count: -1}
			arch.WrapWriter = f.WrapWriter()
			err = db.Ingest("during", chaosSeq(2))
			var acked, lost []string
			acked = append(acked, "pre")
			if kind == SlowWrite {
				if err != nil {
					t.Fatalf("slow archive put failed ingest: %v", err)
				}
				acked = append(acked, "during")
			} else {
				if !errors.Is(err, seqrep.ErrStorage) {
					t.Fatalf("ingest under archive %s = %v, want ErrStorage", kind, err)
				}
				if _, ok := db.Record("during"); ok {
					t.Fatal("failed ingest visible in memory")
				}
				lost = append(lost, "during")
			}
			if db.DegradedStatus().Degraded {
				t.Fatal("archive fault degraded the database: the log is fine")
			}
			f.Clear()
			arch.WrapWriter = nil
			if err := db.Ingest("after", chaosSeq(3)); err != nil {
				t.Fatalf("ingest after fault cleared: %v", err)
			}
			acked = append(acked, "after")
			rebootAsserts(t, db, dir, acked, lost, false)
		})
	}
}

// TestColdReadSiteFaults walks the residency subsystem's cold-read site:
// the segment tier's point lookup behind DB.SetSegmentReadFault, hit
// when a query pages an evicted payload back in. The contract differs
// from every write site — a read fault is query-scoped. It surfaces as
// ErrStorage to that caller, never degrades the database (the log is
// fine), never loses a record, and never disturbs the resident set; a
// SlowWrite (stalling pread) must simply succeed late.
func TestColdReadSiteFaults(t *testing.T) {
	for _, kind := range []Kind{DiskError, SlowWrite} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := seqrep.OpenDir(dir, seqrep.Config{RecoveryProbeInterval: -1, MemoryBudget: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			var acked []string
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("pre-%d", i)
				if err := db.Ingest(id, chaosSeq(i)); err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}
			// The checkpoint makes every payload durable; the 1-byte
			// budget evicts them all, so the next read must page in.
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}

			f := &Fault{Kind: kind, Count: 1}
			db.SetSegmentReadFault(f.Hook())
			_, err = db.Representation("pre-0")
			if kind == SlowWrite {
				if err != nil {
					t.Fatalf("stalled cold read failed: %v", err)
				}
			} else {
				if !errors.Is(err, seqrep.ErrStorage) {
					t.Fatalf("cold read under %s = %v, want ErrStorage", kind, err)
				}
				// Query-scoped: the record is still committed and the
				// database is healthy.
				if _, ok := db.Record("pre-0"); !ok {
					t.Fatal("record lost to a failed cold read")
				}
				// The fault window closed: the retry succeeds.
				if _, err := db.Representation("pre-0"); err != nil {
					t.Fatalf("cold read after fault window: %v", err)
				}
			}
			if db.DegradedStatus().Degraded {
				t.Fatal("cold-read fault degraded the database: the log is fine")
			}
			if f.Trips() == 0 {
				t.Fatal("fault never fired")
			}
			db.SetSegmentReadFault(nil)
			rebootAsserts(t, db, dir, acked, nil, false)
		})
	}
}
