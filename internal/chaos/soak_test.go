package chaos

// The soak half of the chaos suite drives the full HTTP stack — server,
// admission control, degraded mode — the way an outage does: an
// open-loop burst far beyond capacity, then a storage fault in the
// middle of service. The invariants are the overload contract from
// docs/RELIABILITY.md: work beyond the limit queues boundedly, overflow
// answers 429 with a Retry-After (never an unbounded pileup, never a
// 500 storm), a storage fault turns writes into clean 503s while reads
// and health keep answering, and service restores itself when the fault
// clears.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seqrep/api"
	"seqrep/internal/server"
)

// ingestBody builds a 48-sample ingest request for id.
func ingestBody(id string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"id":%q,"values":[`, id)
	for i := 0; i < 48; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", 100.0+float64(i%7))
	}
	b.WriteString("]}")
	return b.String()
}

func getHealth(t *testing.T, base string) (int, api.HealthResponse) {
	t.Helper()
	res, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer res.Body.Close()
	var hr api.HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&hr); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return res.StatusCode, hr
}

func TestOverloadThenStorageFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dir := t.TempDir()
	db := openChaosDB(t, dir)
	defer db.Close()
	const admitLimit, admitQueue = 8, 8
	srv, err := server.New(server.Config{DB: db, AdmissionLimit: admitLimit, AdmissionQueue: admitQueue})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	httpc := &http.Client{Timeout: 30 * time.Second}

	// ---- Phase 1: open-loop overload. ----
	// A slightly slow log makes requests genuinely pile up instead of
	// draining faster than the burst can arrive.
	slow := &Fault{Kind: SlowWrite, Count: -1, Delay: 2 * time.Millisecond}
	db.SetWALFault(slow.Hook(), nil)

	// Watch saturation while the burst runs: the queue must never
	// exceed its bound (that is the bounded-memory claim, observed at
	// the admission ledger).
	stopWatch := make(chan struct{})
	var watch sync.WaitGroup
	var maxQueued, maxInflight atomic.Int64
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			if _, hr := getHealth(t, ts.URL); hr.Admission != nil {
				if q := int64(hr.Admission.Queued); q > maxQueued.Load() {
					maxQueued.Store(q)
				}
				if inf := int64(hr.Admission.Inflight); inf > maxInflight.Load() {
					maxInflight.Store(inf)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const burst = 200
	var wg sync.WaitGroup
	var ok2xx, shed429, server5xx, other atomic.Int64
	var missingRetryAfter atomic.Int64
	var ackedMu sync.Mutex
	var acked []string
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("soak-%d", i)
			res, err := httpc.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(ingestBody(id)))
			if err != nil {
				other.Add(1)
				return
			}
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			switch {
			case res.StatusCode >= 200 && res.StatusCode < 300:
				ok2xx.Add(1)
				ackedMu.Lock()
				acked = append(acked, id)
				ackedMu.Unlock()
			case res.StatusCode == http.StatusTooManyRequests:
				shed429.Add(1)
				if res.Header.Get("Retry-After") == "" {
					missingRetryAfter.Add(1)
				}
			case res.StatusCode >= 500:
				server5xx.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	close(stopWatch)
	watch.Wait()
	slow.Clear()

	t.Logf("overload: %d ok, %d shed (429), %d 5xx, %d other; max queued %d, max inflight %d",
		ok2xx.Load(), shed429.Load(), server5xx.Load(), other.Load(), maxQueued.Load(), maxInflight.Load())
	if server5xx.Load() != 0 {
		t.Fatalf("overload produced %d server 5xx responses; load shedding must answer 429", server5xx.Load())
	}
	if other.Load() != 0 {
		t.Fatalf("%d requests failed outside the overload contract", other.Load())
	}
	if ok2xx.Load() == 0 {
		t.Fatal("overload starved every request; some work must still complete")
	}
	if shed429.Load() == 0 {
		t.Fatalf("burst of %d against capacity %d shed nothing; admission control is not engaging", burst, admitLimit+admitQueue)
	}
	if missingRetryAfter.Load() != 0 {
		t.Fatalf("%d 429s lacked a Retry-After header", missingRetryAfter.Load())
	}
	if q := maxQueued.Load(); q > admitQueue {
		t.Fatalf("admission queue reached %d, bound is %d", q, admitQueue)
	}

	// ---- Phase 2: storage fault mid-service. ----
	fault := &Fault{Kind: DiskError, Count: -1}
	db.SetWALFault(fault.Hook(), nil)
	res, err := httpc.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(ingestBody("faulted")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write during storage fault answered %d, want 503", res.StatusCode)
	}
	// Every further write answers 503 — fail fast, no 500s, no hangs.
	for i := 0; i < 5; i++ {
		res, err := httpc.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(ingestBody(fmt.Sprintf("faulted-%d", i))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded write answered %d, want 503", res.StatusCode)
		}
	}
	// Health tells the truth: 503 with the degraded body.
	code, hr := getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable || !hr.Degraded || hr.Status != "degraded" || hr.DegradedCause == "" {
		t.Fatalf("degraded healthz = %d %+v", code, hr)
	}
	// Reads keep serving.
	if len(acked) == 0 {
		t.Fatal("no acked id to read back")
	}
	res, err = httpc.Get(ts.URL + "/v1/records/" + acked[0])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded answered %d, want 200", res.StatusCode)
	}

	// ---- Phase 3: the disk returns. ----
	fault.Clear()
	if err := db.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	code, hr = getHealth(t, ts.URL)
	if code != http.StatusOK || hr.Degraded || hr.Status != "ok" {
		t.Fatalf("recovered healthz = %d %+v", code, hr)
	}
	res, err = httpc.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(ingestBody("post-recovery")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("write after recovery answered %d, want 201", res.StatusCode)
	}
	acked = append(acked, "post-recovery")

	// ---- Epilogue: nothing acknowledged was lost. ----
	ts.Close()
	rebootAsserts(t, db, dir, acked, []string{"faulted"}, false)
}
