// Package chaos is the systematic fault plan behind the reliability
// suite (docs/RELIABILITY.md). The storage stack exposes narrow
// injection hooks — the write-ahead log's write/fsync hooks
// (DB.SetWALFault), the checkpoint segment writer
// (DB.WrapCheckpointWriter), and the archive's temp-file writer
// (store.FileArchive.WrapWriter) — and this package gives them one
// vocabulary: a fault Kind (disk error, no space, slow write, torn
// write), a Fault trigger that arms at call site N for M failures, and
// writer/hook adapters that express each kind at each site. The tests
// walk every (site × kind) pair asserting the invariants that define
// graceful degradation: no acknowledged write is ever lost, faults map
// to honest statuses (429/503/500 — never a cascade of cascading
// failures), and health always tells the truth.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind is the failure shape a fault expresses.
type Kind int

const (
	// DiskError fails the operation outright with ErrInjected (EIO-like:
	// the device refused the write).
	DiskError Kind = iota
	// NoSpace fails with ENOSPC after accepting part of the write, the
	// disk-full shape.
	NoSpace
	// SlowWrite delays the write (default 50ms) but lets it succeed —
	// the gray-failure shape that overload handling, not fault handling,
	// must absorb.
	SlowWrite
	// TornWrite accepts exactly half the buffer and then fails — the
	// power-cut-mid-write shape for crash-recovery scanning.
	TornWrite
)

// String names the kind for test labels.
func (k Kind) String() string {
	switch k {
	case DiskError:
		return "disk-error"
	case NoSpace:
		return "no-space"
	case SlowWrite:
		return "slow-write"
	case TornWrite:
		return "torn-write"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the device-error verdict DiskError and TornWrite
// faults fail with.
var ErrInjected = errors.New("chaos: injected disk error")

// ErrNoSpace is the disk-full verdict, carrying the real ENOSPC so
// errno-sensitive callers classify it exactly like the kernel's.
var ErrNoSpace = fmt.Errorf("chaos: injected disk full: %w", syscall.ENOSPC)

// Fault is an armed failure trigger: calls 1..After succeed, calls
// After+1..After+Count fail (or misbehave per Kind), and every call
// after that succeeds again — a fault that heals, so recovery paths get
// exercised, not just failure paths. Count < 0 means fail forever until
// Clear. The zero value fails on the first call, once.
type Fault struct {
	Kind  Kind
	After int64 // calls that succeed before the fault fires
	Count int64 // failures injected; negative = until Clear
	// Delay is SlowWrite's stall (default 50ms).
	Delay time.Duration

	calls atomic.Int64
	trips atomic.Int64
	off   atomic.Bool
}

// Clear heals the fault: subsequent calls succeed regardless of
// position.
func (f *Fault) Clear() { f.off.Store(true) }

// Trips reports how many times the fault actually fired.
func (f *Fault) Trips() int64 { return f.trips.Load() }

// Calls reports how many times the guarded site was reached.
func (f *Fault) Calls() int64 { return f.calls.Load() }

// active reports (and counts) whether this call should misbehave.
func (f *Fault) active() bool {
	n := f.calls.Add(1)
	if f.off.Load() {
		return false
	}
	if n <= f.After {
		return false
	}
	if f.Count >= 0 && n > f.After+f.Count {
		return false
	}
	f.trips.Add(1)
	return true
}

// err is the verdict a tripped fault reports (nil for SlowWrite, which
// stalls instead).
func (f *Fault) err() error {
	switch f.Kind {
	case NoSpace:
		return ErrNoSpace
	case SlowWrite:
		return nil
	default:
		return ErrInjected
	}
}

// delay is SlowWrite's stall duration.
func (f *Fault) delay() time.Duration {
	if f.Delay > 0 {
		return f.Delay
	}
	return 50 * time.Millisecond
}

// Hook adapts the fault to the WAL's hook shape (DB.SetWALFault): a
// func returning the fault's verdict when tripped. SlowWrite stalls and
// succeeds.
func (f *Fault) Hook() func() error {
	return func() error {
		if !f.active() {
			return nil
		}
		if f.Kind == SlowWrite {
			time.Sleep(f.delay())
			return nil
		}
		return f.err()
	}
}

// WrapWriter adapts the fault to the writer-decorator shape shared by
// DB.WrapCheckpointWriter, segment.Store.SetWrapWriter and
// store.FileArchive.WrapWriter. The fault triggers per Write call.
func (f *Fault) WrapWriter() func(io.Writer) io.Writer {
	return func(w io.Writer) io.Writer { return &faultWriter{f: f, w: w} }
}

// faultWriter expresses the fault at io.Writer granularity.
type faultWriter struct {
	f *Fault
	w io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if !fw.f.active() {
		return fw.w.Write(p)
	}
	switch fw.f.Kind {
	case SlowWrite:
		time.Sleep(fw.f.delay())
		return fw.w.Write(p)
	case NoSpace:
		// Disk-full accepts what fits, then refuses: write half, report
		// ENOSPC — a short write with the errno, like a real full device.
		n, _ := fw.w.Write(p[:len(p)/2])
		return n, ErrNoSpace
	case TornWrite:
		n, _ := fw.w.Write(p[:len(p)/2])
		return n, ErrInjected
	default:
		return 0, ErrInjected
	}
}
