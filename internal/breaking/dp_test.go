package breaking

import (
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/fit"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func TestDPStraightLine(t *testing.T) {
	s := synth.Line(40, 1.5, 2)
	d := &DP{SegmentCost: 1}
	segs := mustBreak(t, d, s)
	if len(segs) != 1 {
		t.Errorf("%d segments on a straight line, want 1", len(segs))
	}
}

func TestDPPiecewiseLine(t *testing.T) {
	// Two perfect linear pieces with a sharp corner: optimal segmentation
	// with small segment cost is exactly two segments.
	vals := make([]float64, 60)
	for i := 0; i < 30; i++ {
		vals[i] = float64(i)
	}
	for i := 30; i < 60; i++ {
		vals[i] = 30 - float64(i-30)*2
	}
	s := seq.New(vals)
	segs := mustBreak(t, &DP{SegmentCost: 0.5}, s)
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2", len(segs))
	}
	if segs[0].Hi < 28 || segs[0].Hi > 30 {
		t.Errorf("corner found at %d, want ~29", segs[0].Hi)
	}
}

func TestDPErrors(t *testing.T) {
	s := synth.Line(10, 1, 0)
	if _, err := (&DP{SegmentCost: 0}).Break(s); err == nil {
		t.Error("zero segment cost accepted")
	}
	if _, err := (&DP{SegmentCost: 1, ErrorWeight: -1}).Break(s); err == nil {
		t.Error("negative error weight accepted")
	}
	if _, err := (&DP{SegmentCost: 1}).Break(nil); err == nil {
		t.Error("empty accepted")
	}
	bad := seq.Sequence{{T: 1, V: 0}, {T: 0, V: 0}}
	if _, err := (&DP{SegmentCost: 1}).Break(bad); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestDPMaxSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	walk, err := synth.RandomWalk(rng, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny segment cost would otherwise produce many segments.
	uncapped := mustBreak(t, &DP{SegmentCost: 0.01}, walk)
	if len(uncapped) < 4 {
		t.Skipf("walk too smooth: %d segments", len(uncapped))
	}
	capped := mustBreak(t, &DP{SegmentCost: 0.01, MaxSegments: 3}, walk)
	if len(capped) > 3 {
		t.Errorf("cap violated: %d segments", len(capped))
	}
}

// enumerate all segmentations of n samples (boundaries as a bitmask) and
// return the minimal DP cost.
func bruteForceBest(t *testing.T, d *DP, s seq.Sequence) float64 {
	t.Helper()
	n := len(s)
	best := math.Inf(1)
	for mask := 0; mask < 1<<(n-1); mask++ {
		var segs []Segment
		lo := 0
		valid := true
		for i := 0; i < n-1; i++ {
			if mask&(1<<i) != 0 {
				line, err := fit.RegressLine(s[lo : i+1])
				if err != nil {
					valid = false
					break
				}
				segs = append(segs, Segment{Lo: lo, Hi: i, Curve: line})
				lo = i + 1
			}
		}
		if !valid {
			continue
		}
		line, err := fit.RegressLine(s[lo:])
		if err != nil {
			continue
		}
		segs = append(segs, Segment{Lo: lo, Hi: n - 1, Curve: line})
		if d.MaxSegments > 0 && len(segs) > d.MaxSegments {
			continue
		}
		c, err := d.Cost(s, segs)
		if err != nil {
			t.Fatal(err)
		}
		if c < best {
			best = c
		}
	}
	return best
}

// DP optimality: the DP result cost equals exhaustive-search cost on small
// random inputs.
func TestDPOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(5) // 6..10 samples
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 5
		}
		s := seq.New(vals)
		d := &DP{SegmentCost: 0.5 + rng.Float64()*2, ErrorWeight: 0.5 + rng.Float64()}
		segs, err := d.Break(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Cost(s, segs)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceBest(t, d, s)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("trial %d (n=%d): DP cost %g, brute force %g", trial, n, got, want)
		}
	}
}

func TestDPCostValidation(t *testing.T) {
	s := synth.Line(10, 1, 0)
	d := &DP{SegmentCost: 1}
	if _, err := d.Cost(s, nil); err == nil {
		t.Error("invalid segmentation accepted by Cost")
	}
	segs := mustBreak(t, d, s)
	c, err := d.Cost(s, segs)
	if err != nil {
		t.Fatal(err)
	}
	// One segment, zero error: cost equals the per-segment charge.
	if math.Abs(c-1) > 1e-9 {
		t.Errorf("cost = %g, want 1", c)
	}
}

func TestPrefixSumsSSE(t *testing.T) {
	s := seq.Sequence{{T: 0, V: 0}, {T: 1, V: 2}, {T: 2, V: 1}, {T: 3, V: 3}}
	ps := newPrefixSums(s)
	// Compare each range against direct residual computation.
	for i := 0; i < len(s); i++ {
		for j := i; j < len(s); j++ {
			want := 0.0
			if j > i {
				line, err := fit.RegressLine(s[i : j+1])
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range s[i : j+1] {
					d := p.V - line.Eval(p.T)
					want += d * d
				}
			}
			if got := ps.sse(i, j); math.Abs(got-want) > 1e-9 {
				t.Errorf("sse(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestPrefixSumsZeroTimeVariance(t *testing.T) {
	// Duplicate times cannot reach sse via Break (Validate rejects them),
	// but the helper itself must stay finite.
	s := seq.Sequence{{T: 1, V: 0}, {T: 1, V: 4}}
	ps := newPrefixSums(s)
	if got := ps.sse(0, 1); math.IsNaN(got) || got < 0 {
		t.Errorf("sse = %g", got)
	}
}
