package breaking

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"seqrep/internal/fit"
	"seqrep/internal/seq"
)

// Property: on arbitrary finite inputs every breaker yields a valid
// segmentation, and the offline interpolation breaker additionally
// respects the ε invariant on every segment longer than two samples.
func TestBreakersAlwaysValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	mk := func(raw []float64) seq.Sequence {
		n := len(raw)
		if n < 1 {
			n = 1
		}
		if n > 120 {
			n = 120
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			v := 0.0
			if i < len(raw) {
				v = raw[i]
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e4)
		}
		return seq.New(vals)
	}

	breakers := []Breaker{
		Interpolation(1.5),
		Regression(1.5),
		&DP{SegmentCost: 2},
		NewOnline(1.5),
	}
	f := func(raw []float64) bool {
		s := mk(raw)
		for _, b := range breakers {
			segs, err := b.Break(s)
			if err != nil {
				t.Logf("%s: %v", b.Name(), err)
				return false
			}
			if err := Validate(segs, len(s)); err != nil {
				t.Logf("%s: %v", b.Name(), err)
				return false
			}
		}
		// ε invariant for the interpolation breaker.
		segs, err := Interpolation(1.5).Break(s)
		if err != nil {
			return false
		}
		for _, g := range segs {
			if g.Len() <= 2 {
				continue
			}
			if _, dev := fit.MaxDeviation(g.Curve, s[g.Lo:g.Hi+1]); dev > 1.5+1e-9 {
				t.Logf("segment [%d,%d] deviates %g", g.Lo, g.Hi, dev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: breakpoints returned by any breaker are strictly increasing
// interior positions.
func TestBreakpointsWellFormedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		local := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = local.NormFloat64() * 10
		}
		s := seq.New(vals)
		segs, err := Interpolation(2).Break(s)
		if err != nil {
			return false
		}
		bps := Breakpoints(segs)
		prev := 0
		for _, bp := range bps {
			if bp <= prev || bp >= len(s) {
				return false
			}
			prev = bp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// The polynomial family also drives the Figure 8 template (the paper's
// "polynomials of a fixed degree" instantiation).
func TestOfflineWithPolynomialFitter(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	vals := make([]float64, 120)
	for i := range vals {
		x := float64(i)
		vals[i] = 0.02*x*x - 1.5*x + 7 // smooth quadratic
	}
	s := seq.New(vals).AddNoise(rng, 0.2)
	b := &Offline{Fitter: fit.PolynomialFitter{Degree: 2}, Epsilon: 1.5}
	segs := mustBreak(t, b, s)
	// A quadratic with mild noise should need very few quadratic segments.
	if len(segs) > 3 {
		t.Errorf("%d segments for a quadratic input", len(segs))
	}
	if b.Name() != "offline-poly2" {
		t.Errorf("Name = %q", b.Name())
	}
}

// Degenerate inputs that once triggered corner cases.
func TestOfflineDegenerateInputs(t *testing.T) {
	cases := map[string]seq.Sequence{
		"two points":        seq.New([]float64{1, 9}),
		"three points":      seq.New([]float64{1, 9, 1}),
		"alternating":       seq.New([]float64{0, 10, 0, 10, 0, 10}),
		"plateau then jump": seq.New([]float64{5, 5, 5, 5, 5, 50}),
		"single spike":      seq.New([]float64{0, 0, 0, 100, 0, 0, 0}),
		"all equal":         seq.New([]float64{3, 3, 3, 3}),
	}
	for name, s := range cases {
		for _, b := range []Breaker{Interpolation(0.5), Regression(0.5), Bezier(0.5), NewOnline(0.5), &DP{SegmentCost: 1}} {
			segs, err := b.Break(s)
			if err != nil {
				t.Errorf("%s / %s: %v", name, b.Name(), err)
				continue
			}
			if err := Validate(segs, len(s)); err != nil {
				t.Errorf("%s / %s: %v", name, b.Name(), err)
			}
		}
	}
}
