package breaking

import (
	"fmt"
	"math"

	"seqrep/internal/fit"
	"seqrep/internal/seq"
)

// DP is the dynamic-programming segmenter the paper mentions as the
// expensive alternative (§5.1): it minimizes the global cost
//
//	SegmentCost · (#segments) + ErrorWeight · Σ SSE(segment)
//
// where SSE is the sum of squared vertical errors of each segment's
// least-squares regression line. It runs in O(n²) time using O(1)
// per-range regression errors from prefix sums, against which the
// O(peaks·n) interpolation breaker is benchmarked.
type DP struct {
	// SegmentCost is the per-segment charge a (must be > 0 or the
	// optimum degenerates to one segment per point).
	SegmentCost float64
	// ErrorWeight is the charge b per unit of squared error (default 1
	// when zero).
	ErrorWeight float64
	// MaxSegments optionally caps the number of segments (0 = no cap).
	MaxSegments int
}

// Name implements Breaker.
func (d *DP) Name() string { return "dp-optimal" }

// prefixSums supports O(1) least-squares error queries over any sample
// range via running sums of t, v, t², v² and t·v.
type prefixSums struct {
	t, v, tt, vv, tv []float64
}

func newPrefixSums(s seq.Sequence) *prefixSums {
	n := len(s)
	p := &prefixSums{
		t:  make([]float64, n+1),
		v:  make([]float64, n+1),
		tt: make([]float64, n+1),
		vv: make([]float64, n+1),
		tv: make([]float64, n+1),
	}
	for i, q := range s {
		p.t[i+1] = p.t[i] + q.T
		p.v[i+1] = p.v[i] + q.V
		p.tt[i+1] = p.tt[i] + q.T*q.T
		p.vv[i+1] = p.vv[i] + q.V*q.V
		p.tv[i+1] = p.tv[i] + q.T*q.V
	}
	return p
}

// sse returns the sum of squared residuals of the least-squares line over
// samples [i, j] inclusive.
func (p *prefixSums) sse(i, j int) float64 {
	n := float64(j - i + 1)
	if n <= 1 {
		return 0
	}
	st := p.t[j+1] - p.t[i]
	sv := p.v[j+1] - p.v[i]
	stt := p.tt[j+1] - p.tt[i]
	svv := p.vv[j+1] - p.vv[i]
	stv := p.tv[j+1] - p.tv[i]
	sxx := stt - st*st/n
	syy := svv - sv*sv/n
	sxy := stv - st*sv/n
	if sxx <= 1e-12 {
		return math.Max(syy, 0)
	}
	sse := syy - sxy*sxy/sxx
	if sse < 0 {
		return 0 // numeric noise
	}
	return sse
}

// Break implements Breaker, returning the cost-optimal segmentation with
// regression-line curves.
func (d *DP) Break(s seq.Sequence) ([]Segment, error) {
	if d.SegmentCost <= 0 {
		return nil, fmt.Errorf("breaking: DP segment cost must be > 0, got %g", d.SegmentCost)
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("breaking: empty sequence")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("breaking: %w", err)
	}
	errW := d.ErrorWeight
	if errW == 0 {
		errW = 1
	}
	if errW < 0 {
		return nil, fmt.Errorf("breaking: negative error weight %g", errW)
	}

	n := len(s)
	ps := newPrefixSums(s)

	// best[j] = minimal cost of segmenting s[0..j-1]; parent[j] = start of
	// the final segment in that optimum.
	best := make([]float64, n+1)
	parent := make([]int, n+1)
	segCount := make([]int, n+1)
	best[0] = 0
	for j := 1; j <= n; j++ {
		best[j] = math.Inf(1)
		for i := 0; i < j; i++ {
			if math.IsInf(best[i], 1) {
				continue
			}
			if d.MaxSegments > 0 && segCount[i]+1 > d.MaxSegments {
				continue
			}
			c := best[i] + d.SegmentCost + errW*ps.sse(i, j-1)
			if c < best[j] {
				best[j] = c
				parent[j] = i
				segCount[j] = segCount[i] + 1
			}
		}
	}
	if math.IsInf(best[n], 1) {
		return nil, fmt.Errorf("breaking: DP found no segmentation within %d segments", d.MaxSegments)
	}

	// Reconstruct boundaries right to left.
	var bounds []int
	for j := n; j > 0; j = parent[j] {
		bounds = append(bounds, parent[j])
	}
	segs := make([]Segment, 0, len(bounds))
	hi := n - 1
	for _, lo := range bounds {
		line, err := fit.RegressLine(s[lo : hi+1])
		if err != nil {
			return nil, fmt.Errorf("breaking: DP regression on [%d,%d]: %w", lo, hi, err)
		}
		segs = append(segs, Segment{Lo: lo, Hi: hi, Curve: line})
		hi = lo - 1
	}
	// Reverse into ascending order.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs, nil
}

// Cost returns the DP objective value of an arbitrary segmentation of s,
// letting tests verify optimality against exhaustive search.
func (d *DP) Cost(s seq.Sequence, segs []Segment) (float64, error) {
	if err := Validate(segs, len(s)); err != nil {
		return 0, err
	}
	errW := d.ErrorWeight
	if errW == 0 {
		errW = 1
	}
	ps := newPrefixSums(s)
	total := 0.0
	for _, g := range segs {
		total += d.SegmentCost + errW*ps.sse(g.Lo, g.Hi)
	}
	return total, nil
}
