package breaking

// Golden segmentations of the paper's evaluation workloads: the exact
// breakpoints each breaker produces on a fixed-seed ECG and a rendered
// melody are pinned, so any change to the breaking math shows up as a
// diff here rather than as silent drift in downstream representations
// (and in the progressive sketches built from them).

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func TestGoldenSegmentations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ecg, _, err := synth.ECG(rng, synth.ECGOpts{Samples: 260})
	if err != nil {
		t.Fatal(err)
	}
	melody, err := synth.Melody([]int{2, 2, -4, 5, -2, 3}, synth.MelodyOpts{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		b     Breaker
		input seq.Sequence
		want  []int
	}{
		// ECG at the paper's ε=10 scale: the interpolation breaker cuts
		// at the QRS extrema of both beats, regression fragments the
		// steep R spikes, Bézier spans each beat with two curves.
		{"ecg/interpolation", Interpolation(10), ecg, []int{57, 65, 72, 77, 187, 195, 203}},
		{"ecg/regression", Regression(10), ecg, []int{59, 60, 61, 62, 63, 64, 65, 66, 68, 70, 72, 188, 189, 190, 191, 192, 193, 194, 195, 197, 199, 201, 202, 203}},
		{"ecg/bezier", Bezier(10), ecg, []int{65, 73, 187, 195}},
		// Melody at ε=0.5 (semitone scale): every breaker cuts near the
		// note transitions of the six-interval line.
		{"melody/interpolation", Interpolation(0.5), melody, []int{8, 10, 18, 20, 28, 31, 38, 41, 48, 50, 57, 61}},
		{"melody/regression", Regression(0.5), melody, []int{8, 9, 19, 20, 28, 29, 30, 38, 39, 40, 48, 49, 58, 59, 60}},
		{"melody/bezier", Bezier(0.5), melody, []int{10, 20, 27, 37, 40, 47, 57}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			segs, err := tc.b.Break(tc.input)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(segs, len(tc.input)); err != nil {
				t.Fatal(err)
			}
			if got := Breakpoints(segs); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("breakpoints drifted:\n got  %v\n want %v", got, tc.want)
			}
		})
	}
}

// TestBreakersRejectNonFinite pins the degenerate-input contract: a NaN
// or Inf sample is a hard, descriptive error from every breaker — never
// a panic, never a silent segmentation over garbage.
func TestBreakersRejectNonFinite(t *testing.T) {
	inputs := map[string]seq.Sequence{
		"nan":    seq.New([]float64{1, 2, math.NaN(), 4, 5, 6, 7, 8}),
		"posinf": seq.New([]float64{1, 2, math.Inf(1), 4, 5, 6, 7, 8}),
		"neginf": seq.New([]float64{1, math.Inf(-1), 3, 4, 5, 6, 7, 8}),
	}
	breakers := []Breaker{
		Interpolation(0.5), Regression(0.5), Bezier(0.5),
		NewOnline(0.5), &DP{SegmentCost: 1},
	}
	for name, s := range inputs {
		for _, b := range breakers {
			segs, err := b.Break(s)
			if err == nil {
				t.Errorf("%s / %s: accepted non-finite input (%d segments)", name, b.Name(), len(segs))
				continue
			}
			if !strings.Contains(err.Error(), "non-finite") {
				t.Errorf("%s / %s: undescriptive error %q", name, b.Name(), err)
			}
		}
	}
}

// TestBreakersShortInputs pins behaviour below the shortest interesting
// length: empty input errors, one and two points segment trivially.
func TestBreakersShortInputs(t *testing.T) {
	breakers := []Breaker{Interpolation(0.5), Regression(0.5), Bezier(0.5)}
	for _, b := range breakers {
		if _, err := b.Break(nil); err == nil {
			t.Errorf("%s: empty input accepted", b.Name())
		}
		for n := 1; n < 3; n++ {
			s := synth.Const(n, 7)
			segs, err := b.Break(s)
			if err != nil {
				t.Errorf("%s / len=%d: %v", b.Name(), n, err)
				continue
			}
			if len(segs) != 1 {
				t.Errorf("%s / len=%d: %d segments, want 1", b.Name(), n, len(segs))
			}
			if err := Validate(segs, n); err != nil {
				t.Errorf("%s / len=%d: %v", b.Name(), n, err)
			}
		}
	}
}
