// Package breaking implements the paper's breaking algorithms (§4.3, §5):
// partitioning a sequence into meaningful subsequences at the points where
// its behaviour changes, so that each subsequence is well approximated by
// one function.
//
// The central algorithm is the offline recursive curve-fitting template of
// the paper's Figure 8 — a generalization of Schneider's Bézier-fitting
// recursion — instantiated with endpoint-interpolation lines (the paper's
// preferred variant, which breaks at extrema), least-squares regression
// lines, or cubic Bézier curves. An O(n²) dynamic-programming segmenter
// (the expensive alternative mentioned in §5.1) and an online sliding-
// window breaker (§5.1) complete the set.
package breaking

import (
	"fmt"
	"math"

	"seqrep/internal/fit"
	"seqrep/internal/seq"
)

// Segment is one subsequence of a broken sequence: the inclusive sample
// index range [Lo, Hi] and the curve fitted to it by the breaking process
// (the "byproduct" function of §5.2, which may later be replaced by a
// different representing function).
type Segment struct {
	Lo, Hi int
	Curve  fit.Curve
}

// Len returns the number of samples covered by the segment.
func (g Segment) Len() int { return g.Hi - g.Lo + 1 }

// Breaker produces a segmentation of a sequence.
type Breaker interface {
	// Break partitions s into contiguous segments covering every sample.
	Break(s seq.Sequence) ([]Segment, error)
	// Name identifies the algorithm in experiment output.
	Name() string
}

// Offline is the recursive curve-fitting template of the paper's Figure 8:
//
//  1. fit a curve of the chosen family to the sequence;
//  2. find the point of maximum deviation;
//  3. if the deviation is within ε, emit the sequence as one segment;
//  4. otherwise fit curves to the two halves on either side of that point,
//     associate the breakpoint with the closer side (steps 4a–4c, the
//     paper's adjustment to Schneider's original, which duplicated it),
//     and recurse on both parts.
type Offline struct {
	// Fitter selects the curve family (the paper instantiates
	// interpolation lines, regression lines and Bézier curves).
	Fitter fit.Fitter
	// Epsilon is the deviation tolerance ε; the paper used ε=10 for its
	// ECG experiments (Figure 9).
	Epsilon float64
	// NaiveSplit disables steps 4a–4c and assigns the breakpoint to the
	// right-hand part unconditionally. Exposed for the ablation
	// experiment comparing against the paper's closer-side rule.
	NaiveSplit bool
}

// Interpolation returns the paper's preferred breaker: the Figure 8
// template over endpoint-interpolation lines, which "effectively breaks
// sequences at extremum points" (§5.1).
func Interpolation(epsilon float64) *Offline {
	return &Offline{Fitter: fit.InterpolationFitter{}, Epsilon: epsilon}
}

// Regression returns the template over least-squares regression lines.
func Regression(epsilon float64) *Offline {
	return &Offline{Fitter: fit.RegressionFitter{}, Epsilon: epsilon}
}

// Bezier returns the template over cubic Bézier curves — the modified
// Schneider algorithm of §5.1.
func Bezier(epsilon float64) *Offline {
	return &Offline{Fitter: fit.BezierFitter{}, Epsilon: epsilon}
}

// Name implements Breaker.
func (o *Offline) Name() string {
	if o.Fitter == nil {
		return "offline"
	}
	return "offline-" + o.Fitter.Name()
}

// Break implements Breaker. The returned segments are contiguous, ordered,
// and cover all of s. It returns an error for an empty or invalid sequence
// or a negative tolerance.
func (o *Offline) Break(s seq.Sequence) ([]Segment, error) {
	if o.Fitter == nil {
		return nil, fmt.Errorf("breaking: offline breaker has no fitter")
	}
	if o.Epsilon < 0 {
		return nil, fmt.Errorf("breaking: negative tolerance %g", o.Epsilon)
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("breaking: empty sequence")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("breaking: %w", err)
	}

	var segs []Segment
	// Explicit stack (LIFO) processed left-range-first so segments come
	// out in order without sorting; depth is bounded by the recursion
	// tree, not the stack slice.
	type rng struct{ lo, hi int }
	stack := []rng{{0, len(s) - 1}}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lo, hi := top.lo, top.hi

		pts := []seq.Point(s[lo : hi+1])
		curve, err := o.Fitter.Fit(pts)
		if err != nil {
			return nil, fmt.Errorf("breaking: fitting [%d,%d]: %w", lo, hi, err)
		}
		idx, dev := fit.MaxDeviation(curve, pts)
		if dev <= o.Epsilon || hi-lo+1 <= 2 {
			segs = append(segs, Segment{Lo: lo, Hi: hi, Curve: curve})
			continue
		}
		split := lo + idx
		if split == lo {
			split = lo + 1 // the split must leave a non-empty left part
		}

		// Steps 4a-4c: decide which side owns the breakpoint sample.
		// Option A: [lo,split] + [split+1,hi]; Option B: [lo,split-1] + [split,hi].
		takeLeft := false
		if !o.NaiveSplit && split < hi {
			d1, err := o.sideDeviation(s, lo, split-1, s[split])
			if err != nil {
				return nil, err
			}
			d2, err := o.sideDeviation(s, split, hi, s[split])
			if err != nil {
				return nil, err
			}
			takeLeft = d1 <= d2
		}
		var left, right rng
		if takeLeft {
			left, right = rng{lo, split}, rng{split + 1, hi}
		} else {
			left, right = rng{lo, split - 1}, rng{split, hi}
		}
		// Push right first so the left range is processed next (in-order).
		stack = append(stack, right, left)
	}
	return segs, nil
}

// sideDeviation fits the breaker's curve family to s[lo..hi] and returns
// the deviation of point p from that curve (step 4c's "closer" test).
func (o *Offline) sideDeviation(s seq.Sequence, lo, hi int, p seq.Point) (float64, error) {
	if hi < lo {
		return math.Inf(1), nil
	}
	curve, err := o.Fitter.Fit(s[lo : hi+1])
	if err != nil {
		return 0, fmt.Errorf("breaking: fitting side [%d,%d]: %w", lo, hi, err)
	}
	_, dev := fit.MaxDeviation(curve, []seq.Point{p})
	return dev, nil
}

// Breakpoints returns the starting sample index of every segment after the
// first — the points "on which a new subsequence starts" (§4.3).
func Breakpoints(segs []Segment) []int {
	if len(segs) <= 1 {
		return nil
	}
	out := make([]int, 0, len(segs)-1)
	for _, g := range segs[1:] {
		out = append(out, g.Lo)
	}
	return out
}

// Validate checks that segs is a proper segmentation of an n-sample
// sequence: non-empty, ordered, contiguous, covering [0, n-1], with a
// curve on every segment.
func Validate(segs []Segment, n int) error {
	if n <= 0 {
		return fmt.Errorf("breaking: validating against non-positive length %d", n)
	}
	if len(segs) == 0 {
		return fmt.Errorf("breaking: no segments")
	}
	if segs[0].Lo != 0 {
		return fmt.Errorf("breaking: first segment starts at %d, want 0", segs[0].Lo)
	}
	if last := segs[len(segs)-1].Hi; last != n-1 {
		return fmt.Errorf("breaking: last segment ends at %d, want %d", last, n-1)
	}
	prev := -1
	for i, g := range segs {
		if g.Lo > g.Hi {
			return fmt.Errorf("breaking: segment %d inverted [%d,%d]", i, g.Lo, g.Hi)
		}
		if g.Lo != prev+1 {
			return fmt.Errorf("breaking: segment %d starts at %d, want %d (gap or overlap)", i, g.Lo, prev+1)
		}
		if g.Curve == nil {
			return fmt.Errorf("breaking: segment %d has no curve", i)
		}
		prev = g.Hi
	}
	return nil
}

// Stats summarizes a segmentation for the fragmentation-avoidance and
// compression experiments.
type Stats struct {
	NumSegments   int
	MinLen        int
	MaxLen        int
	AvgLen        float64
	Fragmentation float64 // fraction of segments with <= 2 samples (§4.3: "most subsequences should be of length >> 2")
	MaxDeviation  float64 // worst per-segment max deviation
	RMSE          float64 // pooled root-mean-square error across all samples
}

// Measure computes segmentation statistics against the source sequence.
func Measure(s seq.Sequence, segs []Segment) (Stats, error) {
	if err := Validate(segs, len(s)); err != nil {
		return Stats{}, err
	}
	st := Stats{NumSegments: len(segs), MinLen: segs[0].Len()}
	var sse float64
	var short int
	for _, g := range segs {
		l := g.Len()
		if l < st.MinLen {
			st.MinLen = l
		}
		if l > st.MaxLen {
			st.MaxLen = l
		}
		if l <= 2 {
			short++
		}
		pts := []seq.Point(s[g.Lo : g.Hi+1])
		if _, dev := fit.MaxDeviation(g.Curve, pts); dev > st.MaxDeviation {
			st.MaxDeviation = dev
		}
		for _, p := range pts {
			d := p.V - g.Curve.Eval(p.T)
			sse += d * d
		}
	}
	st.AvgLen = float64(len(s)) / float64(len(segs))
	st.Fragmentation = float64(short) / float64(len(segs))
	st.RMSE = math.Sqrt(sse / float64(len(s)))
	return st, nil
}
