package breaking

import (
	"math"
	"testing"

	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func TestOnlineStraightLine(t *testing.T) {
	s := synth.Line(60, 0.5, 1)
	segs := mustBreak(t, NewOnline(0.1), s)
	if len(segs) != 1 {
		t.Errorf("%d segments on straight line, want 1", len(segs))
	}
}

func TestOnlineSharpCorner(t *testing.T) {
	vals := make([]float64, 40)
	for i := 0; i < 20; i++ {
		vals[i] = float64(i)
	}
	for i := 20; i < 40; i++ {
		vals[i] = 20 - float64(i-20)
	}
	segs := mustBreak(t, NewOnline(0.5), seq.New(vals))
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2", len(segs))
	}
	if c := segs[0].Hi; c < 18 || c > 21 {
		t.Errorf("corner at %d, want ~19-20", c)
	}
}

func TestOnlineFeedFlushIncremental(t *testing.T) {
	o := NewOnline(0.5)
	var emitted []Segment
	s := synth.Sawtooth(60, 15, 10)
	for _, p := range s {
		seg, err := o.Feed(p)
		if err != nil {
			t.Fatal(err)
		}
		if seg != nil {
			emitted = append(emitted, *seg)
		}
	}
	tail, err := o.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if tail != nil {
		emitted = append(emitted, *tail)
	}
	if err := Validate(emitted, len(s)); err != nil {
		t.Fatalf("incremental segments invalid: %v", err)
	}
	// Flushing again without new data yields nothing.
	again, err := o.Flush()
	if err != nil || again != nil {
		t.Errorf("second flush: %v %v", again, err)
	}
}

func TestOnlineFeedOrderEnforced(t *testing.T) {
	o := NewOnline(1)
	if _, err := o.Feed(seq.Point{T: 5, V: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Feed(seq.Point{T: 5, V: 1}); err == nil {
		t.Error("duplicate time accepted")
	}
	if _, err := o.Feed(seq.Point{T: 4, V: 1}); err == nil {
		t.Error("backward time accepted")
	}
}

func TestOnlineNegativeEpsilon(t *testing.T) {
	o := NewOnline(-1)
	if _, err := o.Feed(seq.Point{T: 0, V: 0}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestOnlineBreakResetsState(t *testing.T) {
	o := NewOnline(0.5)
	s := synth.Sawtooth(50, 10, 5)
	first := mustBreak(t, o, s)
	second := mustBreak(t, o, s)
	if len(first) != len(second) {
		t.Fatalf("reuse changed segmentation: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Lo != second[i].Lo || first[i].Hi != second[i].Hi {
			t.Errorf("segment %d differs between runs", i)
		}
	}
}

func TestOnlineMaxWindowBounded(t *testing.T) {
	o := NewOnline(0.5)
	o.MaxWindow = 8
	s := synth.Sawtooth(120, 20, 15)
	segs := mustBreak(t, o, s)
	if len(segs) < 2 {
		t.Errorf("bounded window found %d segments", len(segs))
	}
}

func TestOnlineBreakErrors(t *testing.T) {
	if _, err := NewOnline(1).Break(nil); err == nil {
		t.Error("empty accepted")
	}
	bad := seq.Sequence{{T: 1, V: 0}, {T: 0, V: 0}}
	if _, err := NewOnline(1).Break(bad); err == nil {
		t.Error("invalid accepted")
	}
}

// Offline vs online agreement (§5.1, E16): on a clean piecewise-linear
// signal the online breaker should find nearly the offline breakpoints.
func TestOnlineOfflineAgreement(t *testing.T) {
	vals := make([]float64, 90)
	for i := 0; i < 30; i++ {
		vals[i] = float64(i) * 2
	}
	for i := 30; i < 60; i++ {
		vals[i] = 60 - float64(i-30)*2
	}
	for i := 60; i < 90; i++ {
		vals[i] = float64(i-60) * 1.5
	}
	s := seq.New(vals)
	off := mustBreak(t, Interpolation(0.5), s)
	on := mustBreak(t, NewOnline(0.5), s)
	offBPs := Breakpoints(off)
	onBPs := Breakpoints(on)
	if len(offBPs) != len(onBPs) {
		t.Fatalf("offline %v vs online %v", offBPs, onBPs)
	}
	for i := range offBPs {
		if math.Abs(float64(offBPs[i]-onBPs[i])) > 2 {
			t.Errorf("breakpoint %d: offline %d vs online %d", i, offBPs[i], onBPs[i])
		}
	}
}
