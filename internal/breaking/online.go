package breaking

import (
	"fmt"

	"seqrep/internal/fit"
	"seqrep/internal/seq"
)

// Online is the sliding-window breaker of §5.1: it decides breakpoints
// while data is being gathered, "based on the data seen so far with no
// overall view of the sequence". The window grows point by point with an
// incrementally maintained regression line; when the window's deviation
// from that line exceeds ε, the segment is closed at the previous sample
// and a new window starts.
//
// Its merit is that no post-processing pass is needed; its deficiency —
// which the experiments quantify against the offline breakers — is
// possible loss of accuracy (§5.1).
type Online struct {
	// Epsilon is the deviation tolerance ε.
	Epsilon float64
	// MaxWindow optionally bounds the look-back used for the deviation
	// check (0 = whole current window). Smaller windows trade accuracy
	// for strictly bounded per-point cost.
	MaxWindow int

	window []seq.Point
	reg    fit.RunningRegression
	start  int // global index of the first sample in the window
	nextIx int // global index of the next sample to arrive
}

// NewOnline returns an incremental breaker with tolerance epsilon.
func NewOnline(epsilon float64) *Online {
	return &Online{Epsilon: epsilon}
}

// Name implements Breaker.
func (o *Online) Name() string { return "online-window" }

// Feed appends one sample and returns any segment completed by its
// arrival (at most one). Samples must arrive in time order.
func (o *Online) Feed(p seq.Point) (*Segment, error) {
	if o.Epsilon < 0 {
		return nil, fmt.Errorf("breaking: negative tolerance %g", o.Epsilon)
	}
	if n := len(o.window); n > 0 && p.T <= o.window[n-1].T {
		return nil, fmt.Errorf("breaking: online sample at time %g not after %g", p.T, o.window[n-1].T)
	}
	o.window = append(o.window, p)
	o.reg.Add(p.T, p.V)
	o.nextIx++
	if len(o.window) <= 2 {
		return nil, nil
	}

	line, err := o.reg.Line()
	if err != nil {
		return nil, fmt.Errorf("breaking: online regression: %w", err)
	}
	if o.maxDeviation(line) <= o.Epsilon {
		return nil, nil
	}

	// The newly extended window broke the tolerance: close the segment at
	// the previous sample and restart the window at p.
	closed := o.window[:len(o.window)-1]
	segLine, err := fit.RegressLine(closed)
	if err != nil {
		return nil, fmt.Errorf("breaking: online segment fit: %w", err)
	}
	seg := &Segment{Lo: o.start, Hi: o.start + len(closed) - 1, Curve: segLine}

	o.window = append(o.window[:0:0], p)
	o.reg = fit.RunningRegression{}
	o.reg.Add(p.T, p.V)
	o.start = seg.Hi + 1
	return seg, nil
}

// maxDeviation returns the worst vertical deviation of the (possibly
// capped) window from the line.
func (o *Online) maxDeviation(line fit.Line) float64 {
	pts := o.window
	if o.MaxWindow > 0 && len(pts) > o.MaxWindow {
		pts = pts[len(pts)-o.MaxWindow:]
	}
	_, dev := fit.MaxDeviation(line, pts)
	return dev
}

// Flush closes and returns the trailing segment, if any, and resets the
// breaker for reuse.
func (o *Online) Flush() (*Segment, error) {
	if len(o.window) == 0 {
		return nil, nil
	}
	line, err := fit.RegressLine(o.window)
	if err != nil {
		return nil, fmt.Errorf("breaking: online flush fit: %w", err)
	}
	seg := &Segment{Lo: o.start, Hi: o.start + len(o.window) - 1, Curve: line}
	o.window = nil
	o.reg = fit.RunningRegression{}
	o.start = seg.Hi + 1
	o.nextIx = seg.Hi + 1
	return seg, nil
}

// Reset discards all buffered state, restarting global indexing at zero.
func (o *Online) Reset() {
	o.window = nil
	o.reg = fit.RunningRegression{}
	o.start = 0
	o.nextIx = 0
}

// Break implements Breaker by streaming the whole sequence through Feed
// and flushing, so the online algorithm can be compared directly with the
// offline ones.
func (o *Online) Break(s seq.Sequence) ([]Segment, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("breaking: empty sequence")
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("breaking: %w", err)
	}
	o.Reset()
	var segs []Segment
	for _, p := range s {
		done, err := o.Feed(p)
		if err != nil {
			return nil, err
		}
		if done != nil {
			segs = append(segs, *done)
		}
	}
	tail, err := o.Flush()
	if err != nil {
		return nil, err
	}
	if tail != nil {
		segs = append(segs, *tail)
	}
	return segs, nil
}
