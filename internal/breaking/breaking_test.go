package breaking

import (
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/fit"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func mustBreak(t *testing.T, b Breaker, s seq.Sequence) []Segment {
	t.Helper()
	segs, err := b.Break(s)
	if err != nil {
		t.Fatalf("%s: %v", b.Name(), err)
	}
	if err := Validate(segs, len(s)); err != nil {
		t.Fatalf("%s: invalid segmentation: %v", b.Name(), err)
	}
	return segs
}

func TestOfflineStraightLineOneSegment(t *testing.T) {
	s := synth.Line(50, 2, -3)
	for _, b := range []Breaker{Interpolation(0.1), Regression(0.1), Bezier(0.1)} {
		segs := mustBreak(t, b, s)
		if len(segs) != 1 {
			t.Errorf("%s: %d segments on straight line, want 1", b.Name(), len(segs))
		}
	}
}

func TestOfflineConstantOneSegment(t *testing.T) {
	s := synth.Const(30, 7)
	segs := mustBreak(t, Interpolation(0.01), s)
	if len(segs) != 1 {
		t.Errorf("%d segments on constant, want 1", len(segs))
	}
}

// The ε invariant: every emitted segment longer than 2 samples deviates at
// most ε from its curve.
func TestOfflineEpsilonInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	walk, err := synth.RandomWalk(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 2, 10} {
		b := Interpolation(eps)
		segs := mustBreak(t, b, walk)
		for _, g := range segs {
			if g.Len() <= 2 {
				continue
			}
			_, dev := fit.MaxDeviation(g.Curve, walk[g.Lo:g.Hi+1])
			if dev > eps+1e-9 {
				t.Errorf("eps=%g: segment [%d,%d] deviates %g", eps, g.Lo, g.Hi, dev)
			}
		}
	}
}

// The interpolation breaker breaks at extremum points (§5.1): on the fever
// curve the breakpoints should bracket the two peaks, and the segment
// slopes should alternate between rising and falling around each peak.
func TestInterpolationBreaksAtExtrema(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	segs := mustBreak(t, Interpolation(0.5), fever)
	if len(segs) < 4 {
		t.Fatalf("only %d segments; expected the two peaks to induce >= 4", len(segs))
	}
	// Ground truth peak times are 8h and 16h.
	var nearPeak1, nearPeak2 bool
	for _, bp := range Breakpoints(segs) {
		pt := fever[bp].T
		if math.Abs(pt-8) < 1.5 {
			nearPeak1 = true
		}
		if math.Abs(pt-16) < 1.5 {
			nearPeak2 = true
		}
	}
	if !nearPeak1 || !nearPeak2 {
		t.Errorf("breakpoints %v (times) miss the peaks at 8h/16h",
			breakpointTimes(fever, segs))
	}
}

func breakpointTimes(s seq.Sequence, segs []Segment) []float64 {
	var ts []float64
	for _, bp := range Breakpoints(segs) {
		ts = append(ts, s[bp].T)
	}
	return ts
}

func TestOfflineErrors(t *testing.T) {
	s := synth.Line(10, 1, 0)
	if _, err := (&Offline{Fitter: nil, Epsilon: 1}).Break(s); err == nil {
		t.Error("nil fitter accepted")
	}
	if _, err := Interpolation(-1).Break(s); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Interpolation(1).Break(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	bad := seq.Sequence{{T: 0, V: 1}, {T: 0, V: 2}}
	if _, err := Interpolation(1).Break(bad); err == nil {
		t.Error("invalid sequence accepted")
	}
}

func TestOfflineSinglePoint(t *testing.T) {
	s := seq.New([]float64{5})
	segs := mustBreak(t, Interpolation(0.1), s)
	if len(segs) != 1 || segs[0].Len() != 1 {
		t.Errorf("segments = %+v", segs)
	}
}

func TestNaiveSplitAblation(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	naive := &Offline{Fitter: fit.InterpolationFitter{}, Epsilon: 0.5, NaiveSplit: true}
	segs := mustBreak(t, naive, fever)
	// Still a valid segmentation with the ε invariant.
	for _, g := range segs {
		if g.Len() <= 2 {
			continue
		}
		_, dev := fit.MaxDeviation(g.Curve, fever[g.Lo:g.Hi+1])
		if dev > 0.5+1e-9 {
			t.Errorf("naive split violates epsilon: %g", dev)
		}
	}
}

func TestBreakpoints(t *testing.T) {
	segs := []Segment{{Lo: 0, Hi: 4}, {Lo: 5, Hi: 9}, {Lo: 10, Hi: 20}}
	bps := Breakpoints(segs)
	if len(bps) != 2 || bps[0] != 5 || bps[1] != 10 {
		t.Errorf("Breakpoints = %v", bps)
	}
	if Breakpoints(segs[:1]) != nil {
		t.Error("single segment has no breakpoints")
	}
	if Breakpoints(nil) != nil {
		t.Error("empty has no breakpoints")
	}
}

func TestValidateRejectsBadSegmentations(t *testing.T) {
	l := fit.Line{}
	cases := map[string][]Segment{
		"empty":     {},
		"bad start": {{Lo: 1, Hi: 9, Curve: l}},
		"bad end":   {{Lo: 0, Hi: 8, Curve: l}},
		"gap":       {{Lo: 0, Hi: 3, Curve: l}, {Lo: 5, Hi: 9, Curve: l}},
		"overlap":   {{Lo: 0, Hi: 5, Curve: l}, {Lo: 5, Hi: 9, Curve: l}},
		"inverted":  {{Lo: 0, Hi: 5, Curve: l}, {Lo: 9, Hi: 6, Curve: l}},
		"nil curve": {{Lo: 0, Hi: 9, Curve: nil}},
	}
	for name, segs := range cases {
		if err := Validate(segs, 10); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := Validate([]Segment{{Lo: 0, Hi: 9, Curve: l}}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if err := Validate([]Segment{{Lo: 0, Hi: 9, Curve: l}}, 10); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
}

func TestMeasure(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	segs := mustBreak(t, Interpolation(0.5), fever)
	st, err := Measure(fever, segs)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments != len(segs) {
		t.Errorf("NumSegments = %d", st.NumSegments)
	}
	if st.MinLen < 1 || st.MaxLen < st.MinLen {
		t.Errorf("lengths min=%d max=%d", st.MinLen, st.MaxLen)
	}
	if st.AvgLen <= 0 || st.AvgLen > float64(len(fever)) {
		t.Errorf("AvgLen = %g", st.AvgLen)
	}
	if st.Fragmentation < 0 || st.Fragmentation > 1 {
		t.Errorf("Fragmentation = %g", st.Fragmentation)
	}
	if st.MaxDeviation > 0.5+1e-9 {
		t.Errorf("MaxDeviation = %g exceeds epsilon", st.MaxDeviation)
	}
	if st.RMSE <= 0 || st.RMSE > st.MaxDeviation {
		t.Errorf("RMSE = %g (max dev %g)", st.RMSE, st.MaxDeviation)
	}
	// Fragmentation avoidance (§4.3) on the smooth fever curve.
	if st.Fragmentation > 0.34 {
		t.Errorf("fragmentation %g too high on smooth input", st.Fragmentation)
	}
	if _, err := Measure(fever, nil); err == nil {
		t.Error("invalid segmentation accepted")
	}
}

// Robustness (§4.3): adding a point that lies within ε of the representing
// line shifts breakpoints by at most one position.
func TestRobustnessProperty(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.5
	b := Interpolation(eps)
	segs := mustBreak(t, b, fever)
	before := Breakpoints(segs)

	// Insert a point on a segment's own interpolation line, inside the
	// segment's interior.
	var target Segment
	for _, g := range segs {
		if g.Len() >= 6 {
			target = g
			break
		}
	}
	if target.Curve == nil {
		t.Skip("no long segment found")
	}
	mid := (fever[target.Lo].T + fever[target.Hi].T) / 2
	tIns := mid + 0.01 // avoid colliding with a sample time
	pIns := seq.Point{T: tIns, V: target.Curve.Eval(tIns)}
	augmented, err := fever.Insert(pIns)
	if err != nil {
		t.Fatal(err)
	}
	segs2 := mustBreak(t, b, augmented)
	after := Breakpoints(segs2)

	if len(after) != len(before) {
		t.Fatalf("breakpoint count changed: %d -> %d", len(before), len(after))
	}
	// Compare breakpoint times; each may shift by at most one sample
	// position (the inserted point shifts indexes by one).
	for i := range before {
		tb := fever[before[i]].T
		ta := augmented[after[i]].T
		// One sample step in this curve is 0.25h.
		if math.Abs(tb-ta) > 0.26 {
			t.Errorf("breakpoint %d moved from t=%g to t=%g", i, tb, ta)
		}
	}
}

// Consistency (§4.3): feature-preserving transformations (time shift,
// amplitude shift, amplitude scaling about the baseline with rescaled ε)
// yield corresponding breakpoints.
func TestConsistencyUnderTransforms(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.5
	base := mustBreak(t, Interpolation(eps), fever)
	baseBPs := Breakpoints(base)

	cases := []struct {
		name string
		s    seq.Sequence
		eps  float64
	}{
		{"time-shift", fever.ShiftTime(100), eps},
		{"amplitude-shift", fever.ShiftValue(5), eps},
		{"amplitude-scale", fever.ScaleAbout(97, 2), eps * 2},
	}
	for _, c := range cases {
		segs := mustBreak(t, Interpolation(c.eps), c.s)
		got := Breakpoints(segs)
		if len(got) != len(baseBPs) {
			t.Errorf("%s: breakpoint count %d, want %d", c.name, len(got), len(baseBPs))
			continue
		}
		for i := range got {
			if got[i] != baseBPs[i] {
				t.Errorf("%s: breakpoint %d at index %d, want %d", c.name, i, got[i], baseBPs[i])
			}
		}
	}
}

// Fragmentation avoidance on an adversarial sawtooth: with ε below the
// tooth height every tooth must break, but segments between teeth stay
// long.
func TestSawtoothFragmentation(t *testing.T) {
	saw := synth.Sawtooth(200, 10, 20)
	segs := mustBreak(t, Interpolation(1), saw)
	st, err := Measure(saw, segs)
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgLen < 5 {
		t.Errorf("average segment length %g — fragmented", st.AvgLen)
	}
}

func TestBreakerNames(t *testing.T) {
	names := map[string]Breaker{
		"offline-interpolation": Interpolation(1),
		"offline-regression":    Regression(1),
		"offline-bezier":        Bezier(1),
		"dp-optimal":            &DP{SegmentCost: 1},
		"online-window":         NewOnline(1),
	}
	for want, b := range names {
		if got := b.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
	if (&Offline{}).Name() != "offline" {
		t.Error("fitterless name")
	}
}

// The ECG experiment shape (Fig 9): 540 samples, ε=10 → breakpoints around
// every R peak, segment count near the paper's ~10 per trace.
func TestECGBreaking(t *testing.T) {
	ecg, rPeaks, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	segs := mustBreak(t, Interpolation(10), ecg)
	st, err := Measure(ecg, segs)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSegments < 2*len(rPeaks) || st.NumSegments > 60 {
		t.Errorf("segments = %d for %d R peaks", st.NumSegments, len(rPeaks))
	}
	// Every R peak must be bracketed by a breakpoint within 6 samples.
	bps := Breakpoints(segs)
	for _, rp := range rPeaks {
		found := false
		for _, bp := range bps {
			if math.Abs(float64(bp)-rp) <= 6 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no breakpoint near R peak at %g", rp)
		}
	}
}
