package core

// Segment-tier regression tests: a checkpoint flushes only the records
// dirtied since the previous one, a legacy full snapshot migrates into
// the segment tier on its first checkpoint, a checkpoint that fails
// between log rotation and truncation strands sealed WAL segments that
// the next successful checkpoint reclaims (without churning empty
// segments in the meantime), and OpenDir refuses each corrupt boot
// state loudly instead of booting empty over it.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"seqrep/internal/segment"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/wal"
)

func segStats(t *testing.T, db *DB) segment.Stats {
	t.Helper()
	st, ok := db.SegmentStats()
	if !ok {
		t.Fatal("SegmentStats unavailable on a durable database")
	}
	return st
}

func countGlob(t *testing.T, pattern string) int {
	t.Helper()
	names, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

func TestCheckpointFlushesOnlyDelta(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	for i := 0; i < 40; i++ {
		mustIngest(t, db, fmt.Sprintf("r%02d", i), durSeq(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("base checkpoint: %v", err)
	}
	st := segStats(t, db)
	if st.Segments != 1 || st.Entries != 40 || st.Tombstones != 0 {
		t.Fatalf("after base checkpoint SegmentStats = %+v; want 1 segment, 40 entries", st)
	}
	baseBytes := st.Bytes

	// 2 inserts + 1 remove of churn: the next checkpoint must write a
	// delta segment holding exactly those three ids, not rewrite the 40.
	mustIngest(t, db, "r40", durSeq(40))
	mustIngest(t, db, "r41", durSeq(41))
	if err := db.Remove("r00"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("delta checkpoint: %v", err)
	}
	st = segStats(t, db)
	if st.Segments != 2 || st.Entries != 43 || st.Tombstones != 1 {
		t.Fatalf("after delta checkpoint SegmentStats = %+v; want a 3-entry delta on top of the base", st)
	}
	if delta := st.Bytes - baseBytes; delta <= 0 || delta*4 > baseBytes {
		t.Fatalf("delta segment cost %d bytes on a %d-byte base; a delta flush must not rewrite the tier", delta, baseBytes)
	}

	// No churn since the last checkpoint: the manifest advances its LSN
	// but no segment is written.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("no-op checkpoint: %v", err)
	}
	if st = segStats(t, db); st.Segments != 2 || st.Entries != 43 {
		t.Fatalf("no-op checkpoint changed the tier: %+v", st)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 41 {
		t.Fatalf("rebooted Len = %d, want 41", db2.Len())
	}
	if rec := db2.Recovery(); rec.Replayed != 0 {
		t.Fatalf("Recovery = %+v; checkpointed boot must not replay", rec)
	}
	if _, ok := db2.Record("r00"); ok {
		t.Fatal("r00 resurrected: its tombstone did not overlay the base segment")
	}
	for _, id := range []string{"r01", "r39", "r40", "r41"} {
		if _, ok := db2.Record(id); !ok {
			t.Fatalf("%s missing after segment-tier reboot", id)
		}
	}
}

func TestLegacySnapshotMigration(t *testing.T) {
	dir := t.TempDir()
	mem, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustIngest(t, mem, fmt.Sprintf("legacy-%d", i), durSeq(i))
	}
	if err := mem.SaveFile(filepath.Join(dir, SnapshotFileName), nil); err != nil {
		t.Fatal(err)
	}
	mem.Close()

	// Boot adopts the pre-segment-tier snapshot as-is...
	db := mustOpenDir(t, dir)
	if db.Len() != 3 {
		t.Fatalf("migrated boot Len = %d, want 3", db.Len())
	}
	if st := segStats(t, db); st.Segments != 0 {
		t.Fatalf("boot from a legacy snapshot fabricated segments: %+v", st)
	}
	// ...and the first checkpoint moves everything into the segment
	// tier and deletes the legacy file.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("migrating checkpoint: %v", err)
	}
	if st := segStats(t, db); st.Segments != 1 || st.Entries != 3 {
		t.Fatalf("after migrating checkpoint SegmentStats = %+v; want all 3 records", st)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFileName)); !os.IsNotExist(err) {
		t.Fatalf("legacy snapshot survived its migration: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 3 {
		t.Fatalf("post-migration reboot Len = %d, want 3", db2.Len())
	}
	for i := 0; i < 3; i++ {
		if _, ok := db2.Record(fmt.Sprintf("legacy-%d", i)); !ok {
			t.Fatalf("legacy-%d lost by the migration", i)
		}
	}
}

// TestCheckpointFailureStrandsAndReclaims pins the rotate-then-fail
// crash window: a checkpoint that rotates the log but dies before
// truncating it leaves a sealed WAL segment behind. That segment must
// survive (its records are the only durable copy), repeated failing
// checkpoints must not churn new empty segments, and the next
// successful checkpoint must reclaim everything.
func TestCheckpointFailureStrandsAndReclaims(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	for i := 0; i < 3; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	walGlob := filepath.Join(dir, WALDirName, "wal-*.log")
	segGlob := filepath.Join(dir, SegmentsDirName, "*.sseg")
	if n := countGlob(t, walGlob); n != 1 {
		t.Fatalf("%d wal segments before any checkpoint, want 1", n)
	}

	db.WrapCheckpointWriter(func(w io.Writer) io.Writer {
		return store.NewFailAfterWriter(w, 1)
	})
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint with a failing segment writer succeeded")
	}
	// Rotation happened, truncation did not: the sealed segment is
	// stranded — and must be, because the flush that would have covered
	// its records never committed.
	if n := countGlob(t, walGlob); n != 2 {
		t.Fatalf("%d wal segments after failed checkpoint, want the stranded seal + live = 2", n)
	}
	if n := countGlob(t, segGlob); n != 0 {
		t.Fatalf("failed flush littered %d segment files", n)
	}
	st, _ := db.WALStats()
	if st.CheckpointFailures != 1 || st.LastCheckpointError == "" {
		t.Fatalf("WALStats after failure = %+v; want the failure counted and described", st)
	}
	if st.Records != 3 {
		t.Fatalf("failed checkpoint lost log records: %+v", st)
	}

	// A second failure with no intervening writes: the empty live
	// segment must not be rotated into a fresh stranded seal each try.
	if err := db.Checkpoint(); err == nil {
		t.Fatal("second failing checkpoint succeeded")
	}
	if n := countGlob(t, walGlob); n != 2 {
		t.Fatalf("%d wal segments after repeated failures, want no churn (2)", n)
	}
	if st, _ = db.WALStats(); st.CheckpointFailures != 2 {
		t.Fatalf("failure counter = %d, want 2", st.CheckpointFailures)
	}

	// Heal: one successful checkpoint flushes the (restored) dirty set
	// and reclaims the stranded seal.
	db.WrapCheckpointWriter(nil)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("healed checkpoint: %v", err)
	}
	if n := countGlob(t, walGlob); n != 1 {
		t.Fatalf("%d wal segments after healed checkpoint, want the stranded seal reclaimed (1)", n)
	}
	st, _ = db.WALStats()
	if st.Records != 0 || st.LastCheckpointError != "" {
		t.Fatalf("WALStats after healed checkpoint = %+v; want empty log, cleared error", st)
	}
	if st.CheckpointFailures != 2 {
		t.Fatalf("success reset the cumulative failure counter: %+v", st)
	}
	if seg := segStats(t, db); seg.Segments != 1 || seg.Entries != 3 {
		t.Fatalf("healed checkpoint wrote %+v; want all 3 records", seg)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 3 {
		t.Fatalf("rebooted Len = %d, want 3", db2.Len())
	}
}

func TestOpenDirBootErrorMatrix(t *testing.T) {
	t.Run("corrupt snapshot magic", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SnapshotFileName), []byte("XXXX not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDir(dir, Config{}); err == nil {
			t.Fatal("OpenDir booted over a corrupt snapshot")
		}
		if n := countGlob(t, filepath.Join(dir, ".tmp-*")); n != 0 {
			t.Fatalf("refused boot littered %d temp files", n)
		}
	})

	t.Run("unreadable wal directory", func(t *testing.T) {
		dir := t.TempDir()
		// A regular file where the log directory belongs: MkdirAll gets
		// ENOTDIR regardless of permissions (tests may run as root, so
		// mode bits alone cannot force the failure).
		if err := os.WriteFile(filepath.Join(dir, WALDirName), []byte("not a directory"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDir(dir, Config{}); err == nil {
			t.Fatal("OpenDir booted without its write-ahead log")
		}
	})

	t.Run("corrupt manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, SegmentsDirName), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, SegmentsDirName, "MANIFEST"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDir(dir, Config{}); err == nil {
			t.Fatal("OpenDir booted over a corrupt manifest")
		}
	})

	t.Run("replay pipeline failure is counted not fatal", func(t *testing.T) {
		dir := t.TempDir()
		w, err := wal.Open(filepath.Join(dir, WALDirName), wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Non-increasing timestamps fail sequence validation — the same
		// deterministic rejection the original caller saw, so replay
		// counts it and moves on rather than refusing to boot.
		bad, err := encodeWALIngest("bad", seq.Sequence{{T: 1, V: 1}, {T: 1, V: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(walOpIngest, 0, bad); err != nil {
			t.Fatal(err)
		}
		good, err := encodeWALIngest("good", durSeq(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(walOpIngest, 0, good); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		db := mustOpenDir(t, dir)
		defer db.Close()
		rec := db.Recovery()
		if rec.Replayed != 2 || rec.Applied != 1 || rec.Failed != 1 {
			t.Fatalf("Recovery = %+v; want 1 applied, 1 failed", rec)
		}
		if _, ok := db.Record("good"); !ok {
			t.Fatal("good record lost alongside the failing one")
		}
		if _, ok := db.Record("bad"); ok {
			t.Fatal("invalid record materialized from replay")
		}
	})
}
