package core

// The progressive guarantee property suite: for every metric × breaker ×
// index configuration × quality level it checks the contract stated at
// the top of progressive.go — every frame's band contains the record's
// true distance, refinement only tightens, nothing true is dismissed,
// early accepts stay within eps + MaxError, and the fully refined
// MaxError=0 run returns exactly the exact query's answer.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"seqrep/internal/breaking"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// progressiveCorpus builds the suite's workload: the paper's two-peak
// fever family, an ECG beat, a rendered melody, flat and oscillating
// degenerates — all at the exemplar's length — plus off-length records
// the length filter must silently skip.
func progressiveCorpus(t testing.TB) map[string]seq.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(1996))
	corpus := map[string]seq.Sequence{}

	exemplar, variants, err := synth.TwoPeakFamily(rng, 97)
	if err != nil {
		t.Fatal(err)
	}
	corpus["exemplar"] = exemplar
	for v, s := range variants {
		corpus[v.String()] = s
	}

	ecg, _, err := synth.ECG(rng, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	corpus["ecg"] = seq.New(resampleTo(ecg.Values(), 97))

	intervals, err := synth.RandomMelody(rng, 8)
	if err != nil {
		t.Fatal(err)
	}
	melody, err := synth.Melody(intervals, synth.MelodyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	corpus["melody"] = seq.New(resampleTo(melody.Values(), 97))

	corpus["const"] = synth.Const(97, 36.8)
	corpus["sine"] = synth.Sine(97, 2.5, 24, 0)
	walk, err := synth.RandomWalk(rng, 97)
	if err != nil {
		t.Fatal(err)
	}
	corpus["walk"] = walk

	// Off-length records: must never appear in any frame.
	short, err := synth.Fever(synth.FeverOpts{Samples: 49})
	if err != nil {
		t.Fatal(err)
	}
	corpus["short-fever"] = short
	corpus["short-const"] = synth.Const(31, 5)
	return corpus
}

// resampleTo stretches or shrinks vals to exactly n samples by linear
// interpolation, so generator outputs of any natural length can join the
// fixed-length corpus.
func resampleTo(vals []float64, n int) []float64 {
	out := make([]float64, n)
	if len(vals) == 1 {
		for i := range out {
			out[i] = vals[0]
		}
		return out
	}
	for i := range out {
		pos := float64(i) * float64(len(vals)-1) / float64(n-1)
		j := int(pos)
		if j >= len(vals)-1 {
			out[i] = vals[len(vals)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = vals[j]*(1-frac) + vals[j+1]*frac
	}
	return out
}

func progressiveDB(t testing.TB, cfg Config, corpus map[string]seq.Sequence) *DB {
	t.Helper()
	db := mustDB(t, cfg)
	for id, s := range corpus {
		mustIngest(t, db, id, s)
	}
	return db
}

// collectFrames runs a progressive query and groups its frames per
// record in arrival order.
func collectFrames(t testing.TB, run func(yield func(ProgressiveMatch) bool) (QueryStats, error)) (map[string][]ProgressiveMatch, QueryStats) {
	t.Helper()
	frames := map[string][]ProgressiveMatch{}
	stats, err := run(func(pm ProgressiveMatch) bool {
		frames[pm.ID] = append(frames[pm.ID], pm)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return frames, stats
}

// trueDistances computes the suite's independent ground truth: the exact
// metric distance from the exemplar to every length-matching corpus
// sequence, straight through the metric kernel with no engine involved.
func trueDistances(t testing.TB, corpus map[string]seq.Sequence, exemplar seq.Sequence, m dist.Metric) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for id, s := range corpus {
		if len(s) != len(exemplar) {
			continue
		}
		d, err := m.Distance(exemplar, s)
		if err != nil {
			t.Fatalf("distance to %q: %v", id, err)
		}
		out[id] = d
	}
	return out
}

// checkFrameContract asserts the per-record frame invariants on one
// run's frames: exactly one final frame and it is last, tiers never
// regress, bands only tighten, and (when the record's true distance is
// known) every band contains it.
func checkFrameContract(t *testing.T, frames map[string][]ProgressiveMatch, truth map[string]float64) {
	t.Helper()
	for id, fs := range frames {
		for i, f := range fs {
			if f.Final != (i == len(fs)-1) {
				t.Fatalf("%s: frame %d/%d finality wrong: %+v", id, i, len(fs), f)
			}
			if f.Band.Lo < 0 || f.Band.Hi < f.Band.Lo {
				t.Fatalf("%s: malformed band %+v", id, f.Band)
			}
		}
		for i := 1; i < len(fs); i++ {
			prev, cur := fs[i-1], fs[i]
			if cur.Tier < prev.Tier {
				t.Errorf("%s: tier regressed %v -> %v", id, prev.Tier, cur.Tier)
			}
			if cur.Band.Lo < prev.Band.Lo || cur.Band.Hi > prev.Band.Hi {
				t.Errorf("%s: band widened %+v -> %+v", id, prev.Band, cur.Band)
			}
		}
		d, known := truth[id]
		if !known {
			t.Errorf("%s: frames for a record with no ground truth (off-length?)", id)
			continue
		}
		for _, f := range fs {
			if !f.Band.Contains(d) {
				t.Errorf("%s: band [%v, %v] at tier %v excludes true distance %v",
					id, f.Band.Lo, f.Band.Hi, f.Tier, d)
			}
		}
	}
}

// acceptedOf extracts the final accepted matches of a frame log.
func acceptedOf(frames map[string][]ProgressiveMatch) map[string]Match {
	out := map[string]Match{}
	for id, fs := range frames {
		last := fs[len(fs)-1]
		if last.Final && last.Match != nil {
			out[id] = *last.Match
		}
	}
	return out
}

// medianEps picks a tolerance from the corpus's own distance spread, so
// every metric gets an eps that genuinely splits the records.
func medianEps(truth map[string]float64) float64 {
	ds := make([]float64, 0, len(truth))
	for _, d := range truth {
		ds = append(ds, d)
	}
	for i := 1; i < len(ds); i++ { // insertion sort; the slice is tiny
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

// progressiveRunner abstracts DistanceQueryProgressive vs
// ValueQueryProgressive so the whole suite runs over both families.
type progressiveRunner struct {
	name string
	// truth computes the family's exact deviation (metric distance; max
	// pointwise deviation for value queries).
	truth func(t testing.TB, corpus map[string]seq.Sequence, exemplar seq.Sequence) map[string]float64
	run   func(db *DB, ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions, yield func(ProgressiveMatch) bool) (QueryStats, error)
	// exact runs the family's non-progressive query for the equivalence
	// property.
	exact func(db *DB, ctx context.Context, exemplar seq.Sequence, eps float64) ([]Match, error)
	// devKey is the Deviations key exact verification reports under.
	devKey string
}

func progressiveRunners() []progressiveRunner {
	runners := []progressiveRunner{{
		name: "value",
		truth: func(t testing.TB, corpus map[string]seq.Sequence, exemplar seq.Sequence) map[string]float64 {
			return trueDistances(t, corpus, exemplar, dist.Chebyshev)
		},
		run: func(db *DB, ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions, yield func(ProgressiveMatch) bool) (QueryStats, error) {
			return db.ValueQueryProgressive(ctx, exemplar, eps, opts, yield)
		},
		exact: func(db *DB, ctx context.Context, exemplar seq.Sequence, eps float64) ([]Match, error) {
			ms, _, err := db.ValueQueryCtx(ctx, exemplar, eps, QueryOptions{})
			return ms, err
		},
		devKey: "value",
	}}
	for _, m := range dist.Metrics() {
		m := m
		runners = append(runners, progressiveRunner{
			name: m.Name(),
			truth: func(t testing.TB, corpus map[string]seq.Sequence, exemplar seq.Sequence) map[string]float64 {
				return trueDistances(t, corpus, exemplar, m)
			},
			run: func(db *DB, ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions, yield func(ProgressiveMatch) bool) (QueryStats, error) {
				return db.DistanceQueryProgressive(ctx, exemplar, m, eps, opts, yield)
			},
			exact: func(db *DB, ctx context.Context, exemplar seq.Sequence, eps float64) ([]Match, error) {
				ms, _, err := db.DistanceQueryCtx(ctx, exemplar, m, eps, QueryOptions{})
				return ms, err
			},
			devKey: m.Name(),
		})
	}
	return runners
}

// TestProgressiveGuarantees is the property suite: every metric (plus
// the value family) × every paper breaker × index on/off, checking band
// containment, monotone tightening, exact equivalence at MaxError 0,
// bounded false positives under a MaxError budget, and tier caps.
func TestProgressiveGuarantees(t *testing.T) {
	corpus := progressiveCorpus(t)
	exemplar := corpus["exemplar"]
	breakers := []struct {
		name string
		br   breaking.Breaker
	}{
		{"interpolation", breaking.Interpolation(0.5)},
		{"regression", breaking.Regression(0.5)},
		{"bezier", breaking.Bezier(0.5)},
	}
	for _, b := range breakers {
		for _, indexed := range []bool{true, false} {
			for _, storage := range []string{"archive", "paged"} {
				cfg := Config{Breaker: b.br}
				if !indexed {
					cfg.IndexCoeffs = -1
				}
				var db *DB
				truthCorpus := corpus
				if storage == "archive" {
					cfg.Archive = store.NewMemArchive()
					db = progressiveDB(t, cfg, corpus)
				} else {
					// Paged: durable database, no archive, 1-byte
					// residency budget. After the checkpoint every exact
					// verification pages its payload in from the segment
					// tier; ground truth is computed on reconstructions,
					// because that is what archiveless verification
					// compares — the progressive contract must hold
					// bit-identically through the paging layer.
					db = pagedDB(t, cfg)
					for id, s := range corpus {
						mustIngest(t, db, id, s)
					}
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
					truthCorpus = reconCorpus(t, db, corpus)
				}
				t.Run(fmt.Sprintf("%s/indexed=%v/%s", b.name, indexed, storage), func(t *testing.T) {
					for _, r := range progressiveRunners() {
						r := r
						t.Run(r.name, func(t *testing.T) {
							checkProgressiveFamily(t, db, truthCorpus, exemplar, r)
						})
					}
				})
			}
		}
	}
}

// reconCorpus replaces each corpus sequence with the database's stored
// reconstruction: without an archive, exact verification compares
// reconstructions, so ground truth must be computed on them too.
func reconCorpus(t testing.TB, db *DB, corpus map[string]seq.Sequence) map[string]seq.Sequence {
	t.Helper()
	out := make(map[string]seq.Sequence, len(corpus))
	for id := range corpus {
		s, err := db.Reconstruct(id)
		if err != nil {
			t.Fatalf("reconstruct %q: %v", id, err)
		}
		out[id] = s
	}
	return out
}

func checkProgressiveFamily(t *testing.T, db *DB, corpus map[string]seq.Sequence, exemplar seq.Sequence, r progressiveRunner) {
	ctx := context.Background()
	truth := r.truth(t, corpus, exemplar)

	// Property 1 — unbounded run: every length-matching record appears,
	// every band contains the true distance, bands only tighten, and
	// with MaxError 0 every final verdict is exact-tier with a point
	// band at (within float slack of) the true distance.
	frames, stats := collectFrames(t, func(yield func(ProgressiveMatch) bool) (QueryStats, error) {
		return r.run(db, ctx, exemplar, math.Inf(1), QueryOptions{}, yield)
	})
	checkFrameContract(t, frames, truth)
	if len(frames) != len(truth) {
		t.Errorf("unbounded run banded %d records, corpus has %d length-matching", len(frames), len(truth))
	}
	if stats.Plan != PlanProgressive {
		t.Errorf("plan = %q, want %q", stats.Plan, PlanProgressive)
	}
	for id, fs := range frames {
		last := fs[len(fs)-1]
		if last.Match == nil {
			t.Errorf("%s: unbounded run rejected a record", id)
			continue
		}
		if last.Tier != TierExact {
			t.Errorf("%s: MaxError=0 finalized at tier %v", id, last.Tier)
		}
		d := truth[id]
		if rel := math.Abs(last.Band.Hi-d) / math.Max(1, d); rel > 1e-9 {
			t.Errorf("%s: exact frame band [%v,%v] vs true distance %v", id, last.Band.Lo, last.Band.Hi, d)
		}
	}

	// Property 2 — exact equivalence: a finite-eps MaxError=0 run
	// returns exactly the exact query's match set, deviations included.
	eps := medianEps(truth)
	frames, _ = collectFrames(t, func(yield func(ProgressiveMatch) bool) (QueryStats, error) {
		return r.run(db, ctx, exemplar, eps, QueryOptions{}, yield)
	})
	checkFrameContract(t, frames, truth)
	accepted := acceptedOf(frames)
	exact, err := r.exact(db, ctx, exemplar, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(accepted) {
		t.Errorf("eps=%v: progressive accepted %d, exact query matched %d", eps, len(accepted), len(exact))
	}
	for _, em := range exact {
		pm, ok := accepted[em.ID]
		if !ok {
			t.Errorf("eps=%v: exact match %q missing from progressive answer (false dismissal)", eps, em.ID)
			continue
		}
		if pm.Deviations[r.devKey] != em.Deviations[r.devKey] {
			t.Errorf("%q: progressive deviation %v != exact %v", em.ID, pm.Deviations[r.devKey], em.Deviations[r.devKey])
		}
	}

	// Property 3 — error budget: with MaxError = w, early accepts have
	// band width ≤ w, and every accepted record's true distance is
	// within eps + accepted width. Exact matches must all still appear.
	w := eps / 2
	if w > 0 {
		frames, _ = collectFrames(t, func(yield func(ProgressiveMatch) bool) (QueryStats, error) {
			return r.run(db, ctx, exemplar, eps, QueryOptions{MaxError: w}, yield)
		})
		checkFrameContract(t, frames, truth)
		for id, fs := range frames {
			last := fs[len(fs)-1]
			if last.Match == nil {
				continue
			}
			if last.Tier != TierExact && last.Band.Width() > w {
				t.Errorf("%s: band-accepted with width %v > MaxError %v", id, last.Band.Width(), w)
			}
			if d := truth[id]; d > (eps+last.Band.Width())*(1+1e-9)+1e-12 {
				t.Errorf("%s: accepted with true distance %v > eps %v + width %v", id, d, eps, last.Band.Width())
			}
		}
		accepted = acceptedOf(frames)
		for _, em := range exact {
			if _, ok := accepted[em.ID]; !ok {
				t.Errorf("MaxError=%v: exact match %q missing (false dismissal)", w, em.ID)
			}
		}
	}

	// Property 4 — tier caps: capping at sketch or candidate finalizes
	// every surviving record at (or before) the cap, with bands still
	// containing the truth and exact matches never dismissed.
	for _, tierCap := range []Tier{TierSketch, TierCandidate} {
		frames, _ = collectFrames(t, func(yield func(ProgressiveMatch) bool) (QueryStats, error) {
			return r.run(db, ctx, exemplar, eps, QueryOptions{MaxTier: tierCap}, yield)
		})
		checkFrameContract(t, frames, truth)
		accepted = acceptedOf(frames)
		for id, fs := range frames {
			last := fs[len(fs)-1]
			if last.Tier > tierCap {
				t.Errorf("%s: tier %v beyond cap %v", id, last.Tier, tierCap)
			}
		}
		for _, em := range exact {
			if _, ok := accepted[em.ID]; !ok {
				t.Errorf("cap=%v: exact match %q missing (false dismissal)", tierCap, em.ID)
			}
		}
	}
}

// TestProgressiveRejectsTopK pins the documented incompatibility: a
// band-accepted answer has no exact distance to rank by.
func TestProgressiveRejectsTopK(t *testing.T) {
	corpus := progressiveCorpus(t)
	db := progressiveDB(t, Config{Archive: store.NewMemArchive()}, corpus)
	_, err := db.DistanceQueryProgressive(context.Background(), corpus["exemplar"], dist.Euclidean, 1,
		QueryOptions{TopK: 3}, func(ProgressiveMatch) bool { return true })
	if err == nil {
		t.Fatal("TopK + progressive accepted")
	}
}

// TestProgressiveLimit pins Limit semantics on the cascade: the run
// stops after Limit final accepts and reports truncation.
func TestProgressiveLimit(t *testing.T) {
	corpus := progressiveCorpus(t)
	db := progressiveDB(t, Config{Archive: store.NewMemArchive()}, corpus)
	accepts := 0
	stats, err := db.DistanceQueryProgressive(context.Background(), corpus["exemplar"], dist.Euclidean, math.Inf(1),
		QueryOptions{Limit: 2}, func(pm ProgressiveMatch) bool {
			if pm.Final && pm.Match != nil {
				accepts++
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if accepts != 2 || stats.Matches != 2 || !stats.Truncated {
		t.Fatalf("limit run: accepts=%d stats=%+v", accepts, stats)
	}
}

// TestProgressiveCancellation: a cancelled context aborts the cascade
// with ctx.Err().
func TestProgressiveCancellation(t *testing.T) {
	corpus := progressiveCorpus(t)
	db := progressiveDB(t, Config{Archive: store.NewMemArchive()}, corpus)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.DistanceQueryProgressive(ctx, corpus["exemplar"], dist.Euclidean, math.Inf(1),
		QueryOptions{}, func(ProgressiveMatch) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProgressiveChurn runs the cascade concurrently with ingest/remove
// churn (meaningful under -race): the per-record frame contract must
// hold throughout, and records outside the churn set keep their band
// guarantee against the stable ground truth.
func TestProgressiveChurn(t *testing.T) {
	t.Run("resident", func(t *testing.T) { progressiveChurn(t, false) })
	t.Run("paged", func(t *testing.T) { progressiveChurn(t, true) })
}

func progressiveChurn(t *testing.T, paged bool) {
	corpus := progressiveCorpus(t)
	exemplar := corpus["exemplar"]
	var db *DB
	if paged {
		// Durable, archiveless, 1-byte budget: the churn recycles ids
		// (remove then re-ingest the same id), so the tracker's
		// ref-identity rules and the tombstone-authoritative fault-in
		// path run under the race detector while checkpoints below
		// evict and unpin concurrently.
		db = pagedDB(t, Config{})
		for id, s := range corpus {
			mustIngest(t, db, id, s)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		corpus = reconCorpus(t, db, corpus)
	} else {
		db = progressiveDB(t, Config{Archive: store.NewMemArchive()}, corpus)
	}
	truth := trueDistances(t, corpus, exemplar, dist.Euclidean)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(42 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("churn-%d-%d", g, i%8)
				walk, err := synth.RandomWalk(rng, 97)
				if err != nil {
					t.Error(err)
					return
				}
				if err := db.Ingest(id, walk); err != nil && !errors.Is(err, ErrDuplicateID) {
					t.Errorf("churn ingest: %v", err)
					return
				}
				if i%3 == 2 {
					if err := db.Remove(id); err != nil && !errors.Is(err, ErrUnknownID) {
						t.Errorf("churn remove: %v", err)
						return
					}
				}
			}
		}(g)
	}

	for i := 0; i < 30; i++ {
		if paged && i%10 == 5 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		frames := map[string][]ProgressiveMatch{}
		_, err := db.DistanceQueryProgressive(context.Background(), exemplar, dist.Euclidean, math.Inf(1),
			QueryOptions{}, func(pm ProgressiveMatch) bool {
				frames[pm.ID] = append(frames[pm.ID], pm)
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		// The contract holds per record even mid-churn; ground truth is
		// only checked for the stable base corpus.
		stable := map[string][]ProgressiveMatch{}
		for id, fs := range frames {
			if _, ok := truth[id]; ok {
				stable[id] = fs
			} else {
				// Churn records still obey finality and tightening.
				for j, f := range fs {
					if f.Final != (j == len(fs)-1) {
						t.Fatalf("%s: churn frame finality wrong", id)
					}
				}
			}
		}
		checkFrameContract(t, stable, truth)
		for id := range truth {
			if _, ok := stable[id]; !ok {
				t.Errorf("iteration %d: stable record %q missing from answer", i, id)
			}
		}
	}
	close(stop)
	wg.Wait()
}
