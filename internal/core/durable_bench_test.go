package core

// BenchmarkDurableIngest measures the durable write path end-to-end: a
// concurrent IngestBatch (whose worker-pool appends share fsyncs)
// against the same records ingested one at a time (each append paying
// its own fsync). Representation building shares the clock with the
// fsyncs here, so the batch/serial gap is a lower bound on the
// group-commit win — internal/wal's BenchmarkWALIngest isolates it at
// the log layer and is the one BENCH_wal.json and the CI gate use.

import (
	"fmt"
	"testing"
)

func BenchmarkDurableIngest(b *testing.B) {
	const (
		workers = 16 // appenders in flight: the group a single fsync can cover
		batch   = 64
	)
	openBench := func(b *testing.B) *DB {
		b.Helper()
		db, err := OpenDir(b.TempDir(), Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		return db
	}
	s := durSeq(3)

	b.Run("Batched", func(b *testing.B) {
		db := openBench(b)
		next := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			items := make([]BatchItem, batch)
			for j := range items {
				items[j] = BatchItem{ID: fmt.Sprintf("g%08d", next), Seq: s}
				next++
			}
			if _, err := db.IngestBatch(items); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/record")
	})
	b.Run("OneAtATime", func(b *testing.B) {
		db := openBench(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Ingest(fmt.Sprintf("s%08d", i), s); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/record")
	})
}
