package core

// This file is the streaming, cancellable, bounded query engine. Every
// similarity query — DistanceQuery, ValueQuery, ShapeQuery, and the
// planner routes behind them — flows through one internal path,
// runQuery: candidate generation (feature index or shard scan) feeds a
// verification fan-out whose accepted matches pass through a collector
// that enforces QueryOptions (Limit, TopK), tightens the top-K pruning
// radius, and hands results to the caller's yield callback.
// Cancellation is cooperative: the caller's context is checked in shard
// scans, in vantage-point-tree traversal, and before every verification,
// and the worker pool always drains before runQuery returns — a
// cancelled query returns ctx.Err() promptly with no goroutine left
// behind.

import (
	"context"
	"fmt"
	"iter"
	"math"
	"sync"
	"sync/atomic"

	"seqrep/internal/dft"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// querySpec is one similarity query, compiled for runQuery: the stats
// labels, the candidate filter, the optional index route, and the
// verification kernel.
type querySpec struct {
	kind   string
	metric string
	// n is the exemplar length; > 0 restricts candidates to records of
	// that length (and selects the feature-index group).
	n int
	// lb is the feature-space pruning rule; nil forces the scan plan.
	lb *lowerBound
	// boundOf maps a verification radius onto the feature-space bound —
	// consulted mid-traversal when top-K shrinks the radius.
	boundOf func(radius float64) float64
	// initEps is the starting verification radius (+Inf = unbounded).
	initEps float64
	// prunes marks query kinds whose match deviation equals the distance
	// the radius bounds, so the top-K best-so-far feedback is sound.
	prunes bool
	// verify compares one record's exact samples at the given radius.
	verify func(rec *Record, radius float64) (Match, bool, error)
}

// chanClosed is the cheap cooperative-cancellation probe: a non-blocking
// receive on ctx.Done() (nil for background contexts, which never match).
func chanClosed(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// runQuery executes spec under opts, calling yield once per match. It is
// the single execution path of every similarity query.
//
// yield is called from the query's worker goroutines — never
// concurrently, but on an unspecified goroutine — and returning false
// stops the query early (not an error). Without TopK, matches arrive as
// they are found, in no particular order; with TopK they arrive
// nearest-first after the search completes. On cancellation runQuery
// returns ctx.Err(); matches already yielded are valid members of the
// full answer.
func (db *DB) runQuery(ctx context.Context, spec *querySpec, opts QueryOptions, yield func(Match) bool) (QueryStats, error) {
	if err := opts.validate(); err != nil {
		return QueryStats{}, err
	}
	stats := QueryStats{Query: spec.kind, Metric: spec.metric}
	col := newCollector(opts, spec.initEps, spec.prunes && opts.TopK > 0, yield)
	if db.findex != nil && spec.lb != nil {
		stats.Plan = PlanIndex
		if opts.TopK > 0 {
			db.produceIndexedTopK(ctx, spec, col, &stats)
		} else {
			db.produceIndexed(ctx, spec, col, &stats)
		}
	} else {
		stats.Plan = PlanScan
		db.produceScan(ctx, spec, col, &stats)
	}
	if err := col.err(); err != nil {
		return QueryStats{}, err
	}
	if col.aborted.Load() {
		if err := ctx.Err(); err != nil {
			return QueryStats{}, err
		}
		return QueryStats{}, context.Canceled
	}
	col.drain()
	col.mu.Lock()
	stats.Matches = col.emitted
	stats.Truncated = col.truncated
	col.mu.Unlock()
	return stats, nil
}

// produceScan is the shard-parallel full-scan producer: workers claim
// whole shard snapshots and verify every length-matching record, checking
// the stop conditions between records.
func (db *DB) produceScan(ctx context.Context, spec *querySpec, col *collector, stats *QueryStats) {
	shardRecs := db.snapshotRecords()
	done := ctx.Done()
	var examined, candidates atomic.Int64
	db.forEachClaimed(len(shardRecs), func(i int) {
		var ex, cand int64
		for _, rec := range shardRecs[i] {
			if col.stopped() {
				break
			}
			if chanClosed(done) {
				col.aborted.Store(true)
				break
			}
			ex++
			if spec.n > 0 && rec.N != spec.n {
				continue
			}
			cand++
			radius := col.radius()
			m, ok, err := spec.verify(rec, radius)
			if err != nil {
				col.fail(err)
				break
			}
			if ok {
				col.found(m)
			} else if radius < spec.initEps {
				// Rejected at a tightened radius: it may have matched the
				// query's own tolerance, so the bounded answer is (possibly)
				// short of the unbounded one.
				col.noteTruncated()
			}
		}
		examined.Add(ex)
		candidates.Add(cand)
	})
	stats.Examined = int(examined.Load())
	stats.Candidates = int(candidates.Load())
}

// produceIndexed is the two-phase index producer used when no radius
// feedback is possible: candidates are generated under the length group's
// read lock into pooled scratch, then verified by the worker pool outside
// every lock (the archive- and reconstruction-reading part).
func (db *DB) produceIndexed(ctx context.Context, spec *querySpec, col *collector, stats *QueryStats) {
	done := ctx.Done()
	stop := func() bool {
		if col.stopped() {
			return true
		}
		if chanClosed(done) {
			col.aborted.Store(true)
			return true
		}
		return false
	}
	scratch := candPool.Get().(*[]*Record)
	cands := (*scratch)[:0]
	cands, stats.Examined, stats.Pruned = db.findex.collect(spec.n, *spec.lb, cands, stop)
	stats.Candidates = len(cands)
	db.forEachClaimed(len(cands), func(i int) {
		if stop() {
			return
		}
		m, ok, err := spec.verify(cands[i], col.radius())
		if err != nil {
			col.fail(err)
			return
		}
		if ok {
			col.found(m)
		}
	})
	clear(cands) // drop record pointers before pooling the scratch
	*scratch = cands[:0]
	candPool.Put(scratch)
}

// produceIndexedTopK is the interleaved index producer behind top-K:
// candidate generation streams rows to a verification fan-out while the
// vantage-point-tree traversal re-reads the pruning bound at every node,
// so the best K verified so far shrink the search mid-flight — the
// search examines strictly fewer vectors than the equivalent unbounded
// query whenever the K-th best distance drops below the tolerance.
func (db *DB) produceIndexedTopK(ctx context.Context, spec *querySpec, col *collector, stats *QueryStats) {
	done := ctx.Done()
	workers := db.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	candCh := make(chan *Record, 4*workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for rec := range candCh {
				if col.stopped() {
					continue // drain
				}
				if chanClosed(done) {
					col.aborted.Store(true)
					continue
				}
				radius := col.radius()
				m, ok, err := spec.verify(rec, radius)
				if err != nil {
					col.fail(err)
					continue
				}
				if ok {
					col.found(m)
				} else if radius < spec.initEps {
					col.noteTruncated() // see produceScan
				}
			}
		}()
	}
	var shrunk atomic.Bool
	bound := func() float64 {
		if col.stopped() {
			return -1
		}
		if chanClosed(done) {
			col.aborted.Store(true)
			return -1
		}
		r := col.radius()
		if r < spec.initEps {
			shrunk.Store(true)
		}
		return spec.boundOf(r)
	}
	emit := func(rec *Record) bool {
		select {
		case candCh <- rec:
			return true
		case <-done:
			col.aborted.Store(true)
			return false
		case <-col.haltCh:
			return false
		}
	}
	stats.Examined, stats.Pruned, stats.Candidates = db.findex.collectStream(spec.n, *spec.lb, bound, emit)
	close(candCh)
	wg.Wait()
	// A feature-pruned row under a tightened bound may have been an
	// unbounded match (by Parseval a true match's feature distance never
	// exceeds its real distance, so only a shrunken bound can prune one):
	// the answer is then possibly short of the unbounded one.
	if shrunk.Load() && stats.Pruned > 0 {
		col.noteTruncated()
	}
}

// ---- spec builders ----

func checkEps(eps float64) error {
	if math.IsNaN(eps) {
		return fmt.Errorf("core: tolerance is NaN")
	}
	if eps < 0 {
		return fmt.Errorf("core: negative tolerance %g", eps)
	}
	return nil
}

// distanceSpec compiles a DistanceQuery. eps may be +Inf (pure nearest-
// neighbour search under TopK).
func (db *DB) distanceSpec(exemplar seq.Sequence, m dist.Metric, eps float64) (*querySpec, error) {
	if len(exemplar) == 0 {
		return nil, fmt.Errorf("core: empty exemplar")
	}
	if m == nil {
		return nil, fmt.Errorf("core: nil metric")
	}
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	spec := &querySpec{
		kind:    "distance",
		metric:  m.Name(),
		n:       len(exemplar),
		initEps: eps,
		prunes:  true,
		verify: func(rec *Record, radius float64) (Match, bool, error) {
			return db.distanceVerify(rec, exemplar, m, radius)
		},
	}
	if db.findex != nil {
		if lb, boundOf, ok := db.distanceLowerBound(exemplar, m, eps); ok {
			spec.lb, spec.boundOf = lb, boundOf
		}
	}
	return spec, nil
}

// valueSpec compiles a ValueQuery (±eps band semantics; the L2 detour
// eps·√n admits the feature bound).
func (db *DB) valueSpec(exemplar seq.Sequence, eps float64) (*querySpec, error) {
	if len(exemplar) == 0 {
		return nil, fmt.Errorf("core: empty exemplar")
	}
	if err := checkEps(eps); err != nil {
		return nil, err
	}
	spec := &querySpec{
		kind:    "value",
		metric:  "band",
		n:       len(exemplar),
		initEps: eps,
		prunes:  true,
		verify: func(rec *Record, radius float64) (Match, bool, error) {
			return db.valueVerify(rec, exemplar, radius)
		},
	}
	if db.findex != nil {
		if qf, err := dft.Features(exemplar.Values(), db.findex.k); err == nil {
			scale := math.Sqrt(float64(len(exemplar)))
			boundOf := func(r float64) float64 { return lbSlack(r * scale) }
			spec.lb = &lowerBound{qf: qf, bound: boundOf(eps)}
			spec.boundOf = boundOf
		}
	}
	return spec, nil
}

// shapeSpec compiles a ShapeQuery: a full scan with fixed per-dimension
// tolerances (no distance radius, so top-K bounds memory and output but
// cannot feed pruning back).
func (db *DB) shapeSpec(exemplar seq.Sequence, tol ShapeTolerance) (*querySpec, error) {
	if tol.Peaks < 0 || tol.Height < 0 || tol.Spacing < 0 {
		return nil, fmt.Errorf("core: negative shape tolerance %+v", tol)
	}
	qf, err := db.profileOf(exemplar)
	if err != nil {
		return nil, err
	}
	qSig, err := shapeSignature(qf.peaks, qf.span, qf.base)
	if err != nil {
		return nil, fmt.Errorf("core: exemplar: %w", err)
	}
	return &querySpec{
		kind:    "shape",
		initEps: math.Inf(1),
		verify: func(rec *Record, _ float64) (Match, bool, error) {
			// Shape verification reads segment boundaries, so the
			// representation must be resident; a record removed mid-scan
			// is skipped like every other verification path.
			fs, err := db.materialize(rec)
			if err != nil {
				if err = db.verifyReadError(rec, err); err != nil {
					return Match{}, false, fmt.Errorf("core: shape query reading %q: %w", rec.ID, err)
				}
				return Match{}, false, nil
			}
			return shapeVerify(rec, fs, qSig, tol)
		},
	}, nil
}

// ---- exported context-first variants ----

// collectSorted materializes a streamed query into the classic sorted
// slice.
func (db *DB) collectSorted(ctx context.Context, spec *querySpec, opts QueryOptions) ([]Match, QueryStats, error) {
	var out []Match
	stats, err := db.runQuery(ctx, spec, opts, func(m Match) bool {
		out = append(out, m)
		return true
	})
	if err != nil {
		return nil, QueryStats{}, err
	}
	SortMatches(out)
	return out, stats, nil
}

// DistanceQueryCtx is DistanceQuery with a context and result bounds: the
// query stops at ctx's deadline or cancellation (returning ctx.Err()),
// after opts.Limit matches, or — with opts.TopK — returns the K nearest
// matches, feeding the best-so-far distance back into the index search as
// a shrinking pruning radius. eps may be math.Inf(1) under TopK for pure
// nearest-neighbour search.
func (db *DB) DistanceQueryCtx(ctx context.Context, exemplar seq.Sequence, m dist.Metric, eps float64, opts QueryOptions) ([]Match, QueryStats, error) {
	spec, err := db.distanceSpec(exemplar, m, eps)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return db.collectSorted(ctx, spec, opts)
}

// ValueQueryCtx is ValueQuery with a context and result bounds (see
// DistanceQueryCtx).
func (db *DB) ValueQueryCtx(ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions) ([]Match, QueryStats, error) {
	spec, err := db.valueSpec(exemplar, eps)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return db.collectSorted(ctx, spec, opts)
}

// ShapeQueryCtx is ShapeQuery with a context and result bounds (see
// DistanceQueryCtx; the shape dimensions admit no pruning radius, so
// TopK bounds the answer without accelerating the scan).
func (db *DB) ShapeQueryCtx(ctx context.Context, exemplar seq.Sequence, tol ShapeTolerance, opts QueryOptions) ([]Match, QueryStats, error) {
	spec, err := db.shapeSpec(exemplar, tol)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return db.collectSorted(ctx, spec, opts)
}

// ---- exported streaming variants ----

// DistanceQueryStream streams a distance query's matches through yield as
// they are verified (see runQuery for the yield contract: serialized
// calls on unspecified goroutines; unordered unless opts.TopK is set;
// returning false stops the query without error). The returned stats
// describe the work actually performed, including early termination.
func (db *DB) DistanceQueryStream(ctx context.Context, exemplar seq.Sequence, m dist.Metric, eps float64, opts QueryOptions, yield func(Match) bool) (QueryStats, error) {
	spec, err := db.distanceSpec(exemplar, m, eps)
	if err != nil {
		return QueryStats{}, err
	}
	return db.runQuery(ctx, spec, opts, yield)
}

// ValueQueryStream streams a ±eps band query (see DistanceQueryStream).
func (db *DB) ValueQueryStream(ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions, yield func(Match) bool) (QueryStats, error) {
	spec, err := db.valueSpec(exemplar, eps)
	if err != nil {
		return QueryStats{}, err
	}
	return db.runQuery(ctx, spec, opts, yield)
}

// ShapeQueryStream streams a generalized approximate query (see
// DistanceQueryStream).
func (db *DB) ShapeQueryStream(ctx context.Context, exemplar seq.Sequence, tol ShapeTolerance, opts QueryOptions, yield func(Match) bool) (QueryStats, error) {
	spec, err := db.shapeSpec(exemplar, tol)
	if err != nil {
		return QueryStats{}, err
	}
	return db.runQuery(ctx, spec, opts, yield)
}

// ---- iterator (range-over-func) variants ----

// seqOf adapts a streamed query into an iter.Seq2 whose yield runs on the
// consumer's goroutine: a bridge goroutine executes the query and feeds a
// channel; breaking out of the range loop cancels the query and waits for
// it to unwind, so no goroutine outlives the loop.
func seqOf(ctx context.Context, run func(ctx context.Context, yield func(Match) bool) error) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := make(chan Match)
		errc := make(chan error, 1)
		go func() {
			err := run(ctx, func(m Match) bool {
				select {
				case ch <- m:
					return true
				case <-ctx.Done():
					return false
				}
			})
			close(ch)
			errc <- err
		}()
		stopped := false
		for m := range ch {
			if stopped {
				continue // drain after the consumer broke out
			}
			if !yield(m, nil) {
				stopped = true
				cancel()
			}
		}
		if err := <-errc; err != nil && !stopped {
			yield(Match{}, err)
		}
	}
}

// DistanceQuerySeq returns the distance query as a Go 1.23 range-over-func
// iterator: matches stream as they are verified (nearest-first under
// opts.TopK, unordered otherwise), and a query failure or cancellation
// arrives as the final pair's non-nil error. Breaking out of the loop
// cancels the underlying query.
//
//	for m, err := range db.DistanceQuerySeq(ctx, exemplar, metric, eps, opts) {
//		if err != nil { ... }
//	}
func (db *DB) DistanceQuerySeq(ctx context.Context, exemplar seq.Sequence, m dist.Metric, eps float64, opts QueryOptions) iter.Seq2[Match, error] {
	return seqOf(ctx, func(ctx context.Context, yield func(Match) bool) error {
		_, err := db.DistanceQueryStream(ctx, exemplar, m, eps, opts, yield)
		return err
	})
}

// ValueQuerySeq is the iterator form of ValueQuery (see DistanceQuerySeq).
func (db *DB) ValueQuerySeq(ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions) iter.Seq2[Match, error] {
	return seqOf(ctx, func(ctx context.Context, yield func(Match) bool) error {
		_, err := db.ValueQueryStream(ctx, exemplar, eps, opts, yield)
		return err
	})
}

// ShapeQuerySeq is the iterator form of ShapeQuery (see DistanceQuerySeq).
func (db *DB) ShapeQuerySeq(ctx context.Context, exemplar seq.Sequence, tol ShapeTolerance, opts QueryOptions) iter.Seq2[Match, error] {
	return seqOf(ctx, func(ctx context.Context, yield func(Match) bool) error {
		_, err := db.ShapeQueryStream(ctx, exemplar, tol, opts, yield)
		return err
	})
}
