package core

import (
	"bytes"
	"testing"

	"seqrep/internal/pattern"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := feverDB(t)
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), db.Len())
	}
	cfg := loaded.Config()
	if cfg.Epsilon != 0.5 || cfg.Delta != 0.25 || cfg.BucketWidth != 1 {
		t.Errorf("scalars not restored: %+v", cfg)
	}

	// Queries behave identically after the round trip.
	before, err := db.MatchPattern(pattern.TwoPeak())
	if err != nil {
		t.Fatal(err)
	}
	after, err := loaded.MatchPattern(pattern.TwoPeak())
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("pattern matches %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("match %d: %q vs %q", i, before[i], after[i])
		}
	}

	// Interval index rebuilt: same result set.
	bm, err := db.IntervalQuery(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	am, err := loaded.IntervalQuery(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm) != len(am) {
		t.Fatalf("interval matches %d vs %d", len(bm), len(am))
	}
	for i := range bm {
		if bm[i].ID != am[i].ID || len(bm[i].Positions) != len(am[i].Positions) {
			t.Errorf("interval match %d differs", i)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	db := feverDB(t)
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)/3],
	}
	for name, blob := range cases {
		if _, err := Load(bytes.NewReader(blob), Config{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadHugeCountRejected(t *testing.T) {
	// magic + 3 scalars + count 0xffffffff
	blob := append([]byte{}, dbMagic[:]...)
	blob = append(blob, make([]byte, 24)...)
	blob = append(blob, 0xff, 0xff, 0xff, 0xff)
	if _, err := Load(bytes.NewReader(blob), Config{}); err == nil {
		t.Error("huge record count accepted")
	}
}

func TestSaveEmptyDB(t *testing.T) {
	db := mustDB(t, Config{})
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("loaded %d records from empty snapshot", loaded.Len())
	}
}
