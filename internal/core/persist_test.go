package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"reflect"
	"sort"
	"testing"

	"seqrep/internal/dist"
	"seqrep/internal/multires"
	"seqrep/internal/pattern"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := feverDB(t)
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d records, want %d", loaded.Len(), db.Len())
	}
	cfg := loaded.Config()
	if cfg.Epsilon != 0.5 || cfg.Delta != 0.25 || cfg.BucketWidth != 1 {
		t.Errorf("scalars not restored: %+v", cfg)
	}

	// Queries behave identically after the round trip.
	before, err := db.MatchPattern(pattern.TwoPeak())
	if err != nil {
		t.Fatal(err)
	}
	after, err := loaded.MatchPattern(pattern.TwoPeak())
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("pattern matches %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("match %d: %q vs %q", i, before[i], after[i])
		}
	}

	// Interval index rebuilt: same result set.
	bm, err := db.IntervalQuery(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	am, err := loaded.IntervalQuery(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm) != len(am) {
		t.Fatalf("interval matches %d vs %d", len(bm), len(am))
	}
	for i := range bm {
		if bm[i].ID != am[i].ID || len(bm[i].Positions) != len(am[i].Positions) {
			t.Errorf("interval match %d differs", i)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	db := feverDB(t)
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)/3],
	}
	for name, blob := range cases {
		if _, err := Load(bytes.NewReader(blob), Config{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadHugeCountRejected(t *testing.T) {
	// magic + 3 scalars + icoeffs + fsource + count 0xffffffff. Zero
	// stored coefficients mean "index disabled", which Load must
	// tolerate.
	blob := append([]byte{}, dbMagic[:]...)
	blob = append(blob, make([]byte, 33)...)
	blob = append(blob, 0xff, 0xff, 0xff, 0xff)
	if _, err := Load(bytes.NewReader(blob), Config{}); err == nil {
		t.Error("huge record count accepted")
	}
}

// TestSaveLoadPreservesFeatureIndex is the planner's persistence
// contract: a reloaded database answers indexed queries with the same
// matches and the same plan statistics, without recomputing a single
// feature vector (no archive reads during Load).
func TestSaveLoadPreservesFeatureIndex(t *testing.T) {
	counting := store.NewCountingArchive(store.NewMemArchive())
	db := mustDB(t, Config{Archive: counting})
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "fever", fever)
	mustIngest(t, db, "near", fever.ShiftValue(0.05))
	mustIngest(t, db, "far", fever.ShiftValue(50))

	exemplar := fever.Clone()
	before, beforeStats, err := db.DistanceQueryStats(exemplar, dist.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	counting.ResetStats()
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{Archive: counting})
	if err != nil {
		t.Fatal(err)
	}
	if reads := counting.Stats().Reads; reads != 0 {
		t.Errorf("Load read the archive %d times: feature vectors were rebuilt, not restored", reads)
	}
	if got, want := loaded.Stats().FeatureIndexed, db.Stats().FeatureIndexed; got != want {
		t.Errorf("FeatureIndexed = %d after load, want %d", got, want)
	}

	after, afterStats, err := loaded.DistanceQueryStats(exemplar, dist.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("matches changed across the round trip: %+v vs %+v", before, after)
	}
	if beforeStats != afterStats {
		t.Errorf("stats changed across the round trip: %+v vs %+v", beforeStats, afterStats)
	}
	if afterStats.Plan != PlanIndex || afterStats.Pruned == 0 {
		t.Errorf("loaded planner stats: %+v", afterStats)
	}
}

// TestLoadRebuildsVectorsOnComparisonSourceChange covers the unsound
// case: a snapshot saved from an archive-backed database (vectors over
// raw samples) loaded without an archive (verification over
// reconstructions). Restoring the raw-derived vectors verbatim would
// prune against one form and verify against another — a false
// dismissal. Load must rebuild instead, keeping the plans equivalent.
func TestLoadRebuildsVectorsOnComparisonSourceChange(t *testing.T) {
	db := mustDB(t, Config{Archive: store.NewMemArchive()})
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "fever", fever)
	mustIngest(t, db, "far", fever.ShiftValue(50))

	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{}) // no archive
	if err != nil {
		t.Fatal(err)
	}

	// The exact reconstruction must match itself at every tolerance on
	// both plans.
	reconstruction, err := loaded.Reconstruct("fever")
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0, 0.001, 0.01, 0.1, 1} {
		indexed, istats, err := loaded.DistanceQueryStats(reconstruction, dist.Euclidean, eps)
		if err != nil {
			t.Fatal(err)
		}
		scanned, _, err := loaded.distanceScan(reconstruction, dist.Euclidean, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("eps=%g: indexed %+v != scan %+v (stale raw-derived vectors?)", eps, indexed, scanned)
		}
		if istats.Plan != PlanIndex {
			t.Errorf("eps=%g: plan = %q, want index", eps, istats.Plan)
		}
		if len(indexed) == 0 {
			t.Fatalf("eps=%g: self-match dismissed", eps)
		}
	}
	if got := loaded.Stats().FeatureIndexed; got != 2 {
		t.Errorf("FeatureIndexed = %d, want 2 (rebuilt from reconstructions)", got)
	}
}

// TestLoadLegacySnapshotRebuildsFeatures feeds Load a hand-built SDB1
// stream (the pre-feature-index layout) and checks the feature vectors
// are rebuilt from the representations so the planner still prunes.
func TestLoadLegacySnapshotRebuildsFeatures(t *testing.T) {
	db := mustDB(t, Config{})
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "fever", fever)
	mustIngest(t, db, "far", fever.ShiftValue(50))

	var buf bytes.Buffer
	buf.Write(dbMagicV1[:])
	var f64 [8]byte
	for _, v := range []float64{db.cfg.Epsilon, db.cfg.Delta, db.cfg.BucketWidth} {
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
		buf.Write(f64[:])
	}
	ids := db.IDs()
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ids)))
	buf.Write(u32[:])
	for _, id := range ids {
		rec, _ := db.Record(id)
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(id)))
		buf.Write(u16[:])
		buf.WriteString(id)
		blob, err := rec.rep.Load().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(u32[:], uint32(len(blob)))
		buf.Write(u32[:])
		buf.Write(blob)
	}

	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if got := loaded.Stats().FeatureIndexed; got != 2 {
		t.Errorf("FeatureIndexed = %d, want 2 (rebuilt)", got)
	}
	reconstructed, err := loaded.Reconstruct("fever")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := loaded.DistanceQueryStats(reconstructed, dist.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != PlanIndex || stats.Pruned == 0 {
		t.Errorf("legacy-loaded planner did not prune: %+v", stats)
	}
}

func TestSaveEmptyDB(t *testing.T) {
	db := mustDB(t, Config{})
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("loaded %d records from empty snapshot", loaded.Len())
	}
}

// TestSaveLoadRestoresSketches pins the SDB3 restore path: with the
// comparison source unchanged across the round trip, every record's
// progressive sketch is restored bit-for-bit from the snapshot rather
// than rebuilt, and progressive queries on the loaded database behave
// identically.
func TestSaveLoadRestoresSketches(t *testing.T) {
	db := mustDB(t, Config{}) // no archive: sketches over reconstructions
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "fever", fever)
	mustIngest(t, db, "near", fever.ShiftValue(0.5))
	mustIngest(t, db, "far", fever.ShiftValue(50))

	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Config().SketchBlock; got != db.cfg.SketchBlock {
		t.Fatalf("SketchBlock = %d, want %d", got, db.cfg.SketchBlock)
	}
	for _, id := range db.IDs() {
		orig, _ := db.Record(id)
		got, ok := loaded.Record(id)
		if !ok {
			t.Fatalf("%q missing after load", id)
		}
		if orig.sketch == nil {
			t.Fatalf("%q had no sketch before the save", id)
		}
		if !reflect.DeepEqual(got.sketch, orig.sketch) {
			t.Errorf("%q: sketch not restored bit-for-bit:\n got  %+v\n want %+v", id, got.sketch, orig.sketch)
		}
	}

	// The loaded database answers progressively with the same accepts.
	exemplar, err := db.Reconstruct("fever")
	if err != nil {
		t.Fatal(err)
	}
	var accepts []string
	_, err = loaded.DistanceQueryProgressive(context.Background(), exemplar, dist.Euclidean, 5, QueryOptions{}, func(pm ProgressiveMatch) bool {
		if pm.Final && pm.Match != nil {
			accepts = append(accepts, pm.ID)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(accepts)
	matches, err := db.DistanceQuery(exemplar, dist.Euclidean, 5)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, m := range matches {
		want = append(want, m.ID)
	}
	sort.Strings(want)
	if !reflect.DeepEqual(accepts, want) {
		t.Errorf("progressive accepts after load %v, want %v", accepts, want)
	}
}

// TestLoadRebuildsSketchesOnSourceChange pins the soundness rule for
// sketches across a comparison-source change: a snapshot saved from an
// archive-backed database loaded without the archive must not trust the
// stored sketches (they band raw values the new configuration cannot
// verify against) — it rebuilds them from the reconstructions instead.
func TestLoadRebuildsSketchesOnSourceChange(t *testing.T) {
	db := feverDB(t) // archive-backed: sketches over raw values
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := 0
	for _, id := range loaded.IDs() {
		rec, _ := loaded.Record(id)
		if rec.sketch == nil {
			t.Fatalf("%q: sketch missing after source-change load", id)
		}
		// The rebuilt sketch must equal one built fresh from the loaded
		// database's own comparison form...
		vals, ok := loaded.comparisonValues(rec, nil)
		if !ok {
			t.Fatalf("%q: no comparison values", id)
		}
		want := multires.BuildSketch(vals, loaded.cfg.SketchBlock)
		if !reflect.DeepEqual(rec.sketch, want) {
			t.Errorf("%q: sketch does not match the reconstruction form", id)
		}
		// ...and differ from the raw-value sketch wherever lossy
		// representation actually moved the signal.
		orig, _ := db.Record(id)
		if !reflect.DeepEqual(rec.sketch, orig.sketch) {
			rebuilt++
		}
	}
	if rebuilt == 0 {
		t.Error("every sketch survived a comparison-source change verbatim; rebuild path untested")
	}
}

// TestSaveLoadSketchesDisabled pins the disabled configuration: a
// snapshot from a SketchBlock<0 database round-trips with sketches still
// off, and progressive queries degrade gracefully (uninformative sketch
// tier, exact answers).
func TestSaveLoadSketchesDisabled(t *testing.T) {
	db := mustDB(t, Config{SketchBlock: -1})
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "fever", fever)
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Config().SketchBlock; got > 0 {
		t.Fatalf("SketchBlock = %d after disabled round trip", got)
	}
	rec, _ := loaded.Record("fever")
	if rec.sketch != nil {
		t.Error("disabled configuration restored a sketch")
	}
	exemplar, err := loaded.Reconstruct("fever")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	_, err = loaded.DistanceQueryProgressive(context.Background(), exemplar, dist.Euclidean, 5, QueryOptions{}, func(pm ProgressiveMatch) bool {
		if pm.ID == "fever" && pm.Final && pm.Match != nil {
			found = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("sketchless progressive query lost the matching record")
	}
}
