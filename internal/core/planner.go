package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"seqrep/internal/dft"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// Plan names for QueryStats.Plan.
const (
	// PlanIndex is the feature-index route: lower-bound candidate
	// generation over the columnar DFT feature store (through its
	// vantage-point tree when the length group is large enough), exact
	// verification of the survivors only.
	PlanIndex = "index"
	// PlanScan is the shard-parallel full scan.
	PlanScan = "scan"
	// PlanProgressive is the coarse-to-fine cascade: sketch bands, then
	// DFT candidate pruning, then exact verification (see progressive.go).
	PlanProgressive = "progressive"
)

// QueryStats reports how a query was executed: which plan the planner
// chose and how much work each stage did. Candidates + Pruned = Examined
// on the index plan; the scan plan verifies every length-matching record
// (Pruned stays 0). On the index plan Examined counts feature vectors
// actually compared — with a vantage-point tree up, that is typically far
// below the length group's population, the rest having been discarded
// wholesale by the tree's triangle-inequality pruning.
type QueryStats struct {
	// Query is the query family: "distance" or "value".
	Query string
	// Metric is the distance metric name ("band" for ValueQuery's ±ε
	// semantics).
	Metric string
	// Plan is PlanIndex or PlanScan.
	Plan string
	// Examined counts the records the plan looked at: feature vectors
	// compared (plus unindexed records) on the index plan, all records
	// on the scan plan.
	Examined int
	// Candidates counts the records whose exact samples were compared.
	Candidates int
	// Pruned counts the records eliminated by the feature lower bound
	// without reading their samples.
	Pruned int
	// Matches counts the results returned.
	Matches int
	// Sketched counts the records banded at the progressive sketch tier
	// (0 on non-progressive plans and when sketches are disabled).
	Sketched int
	// BandAccepted counts matches accepted on their error band alone —
	// finalized at a non-exact tier without reading samples.
	BandAccepted int
	// Truncated reports that a result bound (QueryOptions.Limit or TopK)
	// took effect: the query stopped before enumerating the full match
	// set, so the unbounded answer may hold more (or, under TopK, other)
	// matches. It is exact for Limit; under TopK it is conservative —
	// once the pruning radius has tightened, discarded work can no longer
	// be told apart from true non-matches, so Truncated may be true even
	// when the unbounded answer held exactly K matches. Counts above
	// describe only the work actually performed.
	Truncated bool
}

// String renders the stats as one EXPLAIN-style line.
func (st QueryStats) String() string {
	s := fmt.Sprintf("plan=%s query=%s metric=%s examined=%d candidates=%d pruned=%d matches=%d",
		st.Plan, st.Query, st.Metric, st.Examined, st.Candidates, st.Pruned, st.Matches)
	if st.Sketched > 0 || st.BandAccepted > 0 {
		s += fmt.Sprintf(" sketched=%d band_accepted=%d", st.Sketched, st.BandAccepted)
	}
	if st.Truncated {
		s += " truncated=true"
	}
	return s
}

// lowerBound is one metric's pruning rule on the feature index: the query
// feature vector, the feature-space threshold, and whether it compares
// against the z-normalized rows of the columnar store.
type lowerBound struct {
	qf    []float64
	bound float64
	z     bool
}

// lbSlack widens a lower-bound threshold by a whisker of floating-point
// headroom: the no-false-dismissal guarantee is exact in real arithmetic,
// and the slack keeps DFT rounding at the decision boundary from ever
// turning it into a dismissal.
func lbSlack(bound float64) float64 { return bound*(1+1e-9) + 1e-12 }

// distanceLowerBound returns the feature-space pruning rule for metric m
// on this exemplar — plus the mapping from a verification radius onto
// the feature-space bound, for top-K searches that tighten the radius
// mid-flight — or ok=false when m admits no valid lower bound from the
// stored features and the planner must scan.
//
// The metric is recognized by its canonical name, and the rule is sound
// for the built-in semantics bearing that name:
//
//   - "l2": feature distance lower-bounds Euclidean distance (Parseval).
//   - "zl2": the same bound over the z-normalized feature vectors.
//
// L1 and L∞ fall through — the feature distance lower-bounds L2, which
// neither bounds L∞ from below nor is worth routing for L1 — as do the
// length-normalized variants and any custom metric.
func (db *DB) distanceLowerBound(exemplar seq.Sequence, m dist.Metric, eps float64) (*lowerBound, func(float64) float64, bool) {
	k := db.findex.k
	switch m.Name() {
	case dist.Euclidean.Name():
		qf, err := dft.Features(exemplar.Values(), k)
		if err != nil {
			return nil, nil, false
		}
		return &lowerBound{qf: qf, bound: lbSlack(eps)}, lbSlack, true
	case dist.ZEuclidean.Name():
		qf, err := dft.Features(dist.ZNormalizeValues(exemplar.Values()), k)
		if err != nil {
			return nil, nil, false
		}
		return &lowerBound{qf: qf, bound: lbSlack(eps), z: true}, lbSlack, true
	}
	return nil, nil, false
}

// DistanceQueryStats is DistanceQuery plus execution statistics. The
// planner routes metrics with a feature-space lower bound (l2, zl2)
// through the index — pruning candidates whose feature distance already
// exceeds the tolerance, then verifying survivors exactly — and falls
// back to the shard-parallel scan for everything else. Both plans return
// byte-identical match sets.
func (db *DB) DistanceQueryStats(exemplar seq.Sequence, m dist.Metric, eps float64) ([]Match, QueryStats, error) {
	return db.DistanceQueryCtx(context.Background(), exemplar, m, eps, QueryOptions{})
}

// ValueQueryStats is ValueQuery plus execution statistics. The ±ε band
// semantics admit an L2 detour: a sequence inside the band satisfies
// L∞ ≤ ε, hence L2 ≤ ε·√n, hence feature distance ≤ ε·√n — so the index
// prunes with the scaled bound and verifies survivors with the same
// early-abandoning band kernel as the scan.
func (db *DB) ValueQueryStats(exemplar seq.Sequence, eps float64) ([]Match, QueryStats, error) {
	return db.ValueQueryCtx(context.Background(), exemplar, eps, QueryOptions{})
}

// verifyReadError classifies a storedSequence failure during query
// verification: when the record has since been removed (or replaced) the
// miss is just the scan's point-in-time snapshot outliving a concurrent
// Remove — the record is skipped, not an error. A read failure for a
// record still committed is a genuine storage fault and aborts the
// query.
func (db *DB) verifyReadError(rec *Record, err error) error {
	if cur, ok := db.Record(rec.ID); !ok || cur != rec {
		return nil
	}
	return err
}

// distanceVerify compares one record's exact samples against the
// exemplar under m — the shared verification step of both plans. The
// comparison runs through the metric's early-abandoning threshold kernel
// (squared-space accumulation, mid-loop bail; see dist.DistanceWithin),
// which returns the same decisions and distances as a full evaluation.
func (db *DB) distanceVerify(rec *Record, exemplar seq.Sequence, m dist.Metric, eps float64) (Match, bool, error) {
	stored, err := db.storedSequence(rec)
	if err != nil {
		if err = db.verifyReadError(rec, err); err != nil {
			return Match{}, false, fmt.Errorf("core: distance query reading %q: %w", rec.ID, err)
		}
		return Match{}, false, nil // removed mid-scan; skip
	}
	d, within, err := dist.DistanceWithin(m, exemplar, stored, eps)
	if err != nil {
		if errors.Is(err, dist.ErrLengthMismatch) {
			return Match{}, false, nil // reconstruction drifted in length; incomparable
		}
		return Match{}, false, fmt.Errorf("core: distance query %q under %s: %w", rec.ID, m.Name(), err)
	}
	if !within {
		return Match{}, false, nil
	}
	return Match{
		ID:         rec.ID,
		Exact:      d == 0,
		Deviations: map[string]float64{m.Name(): d},
	}, true, nil
}

// valueVerify runs the early-abandoning ±eps band check on one record —
// the shared verification step of both ValueQuery plans.
func (db *DB) valueVerify(rec *Record, exemplar seq.Sequence, eps float64) (Match, bool, error) {
	stored, err := db.storedSequence(rec)
	if err != nil {
		if err = db.verifyReadError(rec, err); err != nil {
			return Match{}, false, fmt.Errorf("core: value query reading %q: %w", rec.ID, err)
		}
		return Match{}, false, nil // removed mid-scan; skip
	}
	d, within, err := dist.BandDistance(exemplar, stored, eps)
	if err != nil || !within {
		return Match{}, false, nil // incomparable lengths or outside the band
	}
	return Match{
		ID:         rec.ID,
		Exact:      d == 0,
		Deviations: map[string]float64{"value": d},
	}, true, nil
}

// candPool recycles the planner's candidate scratch so steady-state
// queries allocate nothing for candidate generation.
var candPool = sync.Pool{
	New: func() any {
		s := make([]*Record, 0, 128)
		return &s
	},
}
