package core

// The planner's contract: both plans of a routed query return
// byte-identical match sets — the feature index prunes but never
// dismisses a true match. These tests check the contract on randomized
// workloads across every breaker × every metric × archive on/off, and
// under concurrent Ingest/Remove churn (run them with -race).

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"seqrep/internal/breaking"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
	"seqrep/internal/store"
)

// smoothWalk builds a random but breaker-friendly sequence: a random walk
// whose step size is small against the breaking tolerance, riding on a
// slow oscillation so peaks and slope changes exist.
func smoothWalk(rng *rand.Rand, n int) seq.Sequence {
	vals := make([]float64, n)
	level := 10 * rng.Float64()
	for i := range vals {
		level += 0.4 * (rng.Float64() - 0.5)
		vals[i] = level + 3*float64(i%16)/16.0
	}
	return seq.New(vals)
}

// jitter returns a copy of s with per-sample noise of the given scale, so
// workloads contain near-duplicate families the interesting tolerances
// separate.
func jitter(rng *rand.Rand, s seq.Sequence, scale float64) seq.Sequence {
	out := s.Clone()
	for i := range out {
		out[i].V += scale * (rng.Float64() - 0.5)
	}
	return out
}

// equivalenceWorkload ingests a mixed-length corpus: two near-duplicate
// families plus singletons at the query length, and a handful of
// sequences at a different length.
func equivalenceWorkload(t *testing.T, db *DB, rng *rand.Rand, n int) (exemplar seq.Sequence) {
	t.Helper()
	baseA := smoothWalk(rng, n)
	baseB := smoothWalk(rng, n)
	for i := 0; i < 8; i++ {
		mustIngest(t, db, fmt.Sprintf("a-%02d", i), jitter(rng, baseA, 0.2))
		mustIngest(t, db, fmt.Sprintf("b-%02d", i), jitter(rng, baseB, 0.2))
	}
	for i := 0; i < 6; i++ {
		mustIngest(t, db, fmt.Sprintf("solo-%02d", i), smoothWalk(rng, n))
	}
	for i := 0; i < 4; i++ {
		mustIngest(t, db, fmt.Sprintf("short-%02d", i), smoothWalk(rng, n/2))
	}
	return jitter(rng, baseA, 0.1)
}

func breakersUnderTest() map[string]breaking.Breaker {
	return map[string]breaking.Breaker{
		"interpolation": breaking.Interpolation(0.5),
		"regression":    breaking.Regression(0.5),
		"bezier":        breaking.Bezier(0.5),
		"dp":            &breaking.DP{SegmentCost: 10, ErrorWeight: 1},
		"online":        breaking.NewOnline(0.5),
	}
}

// leafConfigs are the candidate-generation modes under test: the default
// (trees once groups are large enough), leaf 1 (vantage-point trees
// forced even on the suite's small groups), and -1 (trees disabled, the
// linear columnar feature scan).
var leafConfigs = []int{0, 1, -1}

// storageModes is the residency/storage dimension of the equivalence
// suite: fully resident in-memory ("mem"), archive-backed verification
// ("archive"), and a durable database under a 1-byte memory budget
// ("paged") where every exact verification pages its payload back in
// from the segment tier — the answers must be bit-identical in all
// three.
var storageModes = []string{"mem", "archive", "paged"}

// TestIndexedQueryEquivalence is the zero-false-dismissal property suite:
// for every breaker, every storage mode (in-memory, archived, paged
// under a tiny residency budget), for every candidate-generation mode
// (vantage-point tree, linear feature scan, default), under every
// built-in metric and a spread of tolerances, the planner's answer must
// equal the brute-force scan's exactly — ids, deviations, exactness and
// order.
func TestIndexedQueryEquivalence(t *testing.T) {
	epsCands := []float64{0, 0.3, 1, 4, 16, 64}
	totalPruned := 0
	for name, br := range breakersUnderTest() {
		for _, storage := range storageModes {
			for _, leaf := range leafConfigs {
				t.Run(fmt.Sprintf("%s/storage=%s/leaf=%d", name, storage, leaf), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(len(name)) * 7779))
					cfg := Config{Breaker: br, IndexLeaf: leaf}
					var db *DB
					switch storage {
					case "archive":
						cfg.Archive = store.NewMemArchive()
						db = mustDB(t, cfg)
					case "paged":
						db = pagedDB(t, cfg)
					default:
						db = mustDB(t, cfg)
					}
					exemplar := equivalenceWorkload(t, db, rng, 64)
					if storage == "paged" {
						// The checkpoint makes every payload durable and
						// unpinned; the 1-byte budget then evicts them
						// all, so each verification below pages in.
						if err := db.Checkpoint(); err != nil {
							t.Fatal(err)
						}
						st, ok := db.ResidencyStats()
						if !ok || st.Pinned != 0 || st.ResidentBytes > st.MemoryBudget {
							t.Fatalf("residency after checkpoint = %+v", st)
						}
					}
					if leaf == 1 {
						// Warm a query so the trees exist, then verify the
						// tree path is actually engaged.
						if _, _, err := db.DistanceQueryStats(exemplar, dist.Euclidean, 1); err != nil {
							t.Fatal(err)
						}
						if g := db.findex.group(len(exemplar), false); g == nil || g.tree == nil {
							t.Fatal("vantage-point tree not engaged at leaf=1")
						}
					}

					for _, m := range dist.Metrics() {
						for _, eps := range epsCands {
							indexed, istats, err := db.DistanceQueryStats(exemplar, m, eps)
							if err != nil {
								t.Fatalf("indexed %s eps=%g: %v", m.Name(), eps, err)
							}
							scanned, _, err := db.distanceScan(exemplar, m, eps)
							if err != nil {
								t.Fatalf("scan %s eps=%g: %v", m.Name(), eps, err)
							}
							if !reflect.DeepEqual(indexed, scanned) {
								t.Errorf("%s eps=%g: indexed %+v != scan %+v", m.Name(), eps, indexed, scanned)
							}
							switch m.Name() {
							case "l2", "zl2":
								if istats.Plan != PlanIndex {
									t.Errorf("%s: plan = %q, want index", m.Name(), istats.Plan)
								}
								if istats.Candidates+istats.Pruned != istats.Examined {
									t.Errorf("%s: stats don't add up: %+v", m.Name(), istats)
								}
								totalPruned += istats.Pruned
							default:
								if istats.Plan != PlanScan {
									t.Errorf("%s: plan = %q, want scan", m.Name(), istats.Plan)
								}
							}
						}
					}

					for _, eps := range epsCands {
						indexed, istats, err := db.ValueQueryStats(exemplar, eps)
						if err != nil {
							t.Fatalf("indexed value eps=%g: %v", eps, err)
						}
						scanned, _, err := db.valueScan(exemplar, eps)
						if err != nil {
							t.Fatalf("scan value eps=%g: %v", eps, err)
						}
						if !reflect.DeepEqual(indexed, scanned) {
							t.Errorf("value eps=%g: indexed %+v != scan %+v", eps, indexed, scanned)
						}
						if istats.Plan != PlanIndex {
							t.Errorf("value: plan = %q, want index", istats.Plan)
						}
						totalPruned += istats.Pruned
					}
				})
			}
		}
	}
	if totalPruned == 0 {
		t.Error("no query ever pruned a candidate: the suite is not exercising the index")
	}
}

// TestIndexedQueryEquivalenceConcurrentChurn interleaves the equivalence
// check with concurrent Ingest/Remove churn on a disjoint id space, once
// per candidate-generation mode (churn at leaf=1 hammers the tree
// tombstone/tail/rebuild machinery under the race detector). The two
// plans snapshot at different instants, so churned ids may legitimately
// differ between them — but the stable ids must agree exactly in every
// pair of answers, and fully once the churn stops.
func TestIndexedQueryEquivalenceConcurrentChurn(t *testing.T) {
	for _, leaf := range leafConfigs {
		for _, paged := range []bool{false, true} {
			t.Run(fmt.Sprintf("leaf=%d/paged=%v", leaf, paged), func(t *testing.T) {
				churnEquivalence(t, leaf, paged)
			})
		}
	}
}

func churnEquivalence(t *testing.T, leaf int, paged bool) {
	rng := rand.New(rand.NewSource(42))
	var db *DB
	if paged {
		// Paged: no archive (verification reads reconstructions through
		// the residency layer), 1-byte budget, durable tier to page
		// from. Checkpoints below race the churn, so eviction, paging,
		// pinning and tombstoning all run under the race detector.
		db = pagedDB(t, Config{IndexCoeffs: 4, IndexLeaf: leaf})
	} else {
		db = mustDB(t, Config{Archive: store.NewMemArchive(), IndexCoeffs: 4, IndexLeaf: leaf})
	}
	base := smoothWalk(rng, 64)
	for i := 0; i < 16; i++ {
		mustIngest(t, db, fmt.Sprintf("base-%02d", i), jitter(rng, base, 0.2))
	}
	if paged {
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	exemplar := jitter(rng, base, 0.1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			churnRng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("churn-%d-%d", w, i)
				if err := db.Ingest(id, jitter(churnRng, base, 0.2)); err != nil {
					t.Errorf("churn ingest: %v", err)
					return
				}
				if err := db.Remove(id); err != nil {
					t.Errorf("churn remove: %v", err)
					return
				}
			}
		}(w)
	}

	stable := func(matches []Match) []Match {
		out := make([]Match, 0, len(matches))
		for _, m := range matches {
			if len(m.ID) >= 5 && m.ID[:5] == "base-" {
				out = append(out, m)
			}
		}
		return out
	}
	for i := 0; i < 40; i++ {
		if paged && i%10 == 5 {
			// Mid-churn checkpoint: flushes and unpins the churned
			// records while queries below are paging — the eviction /
			// unpin / fault-in races the residency invariants must hold
			// through.
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		eps := float64(i%5) * 2
		indexed, _, err := db.DistanceQueryStats(exemplar, dist.Euclidean, eps)
		if err != nil {
			t.Fatalf("indexed: %v", err)
		}
		scanned, _, err := db.distanceScan(exemplar, dist.Euclidean, eps)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if got, want := stable(indexed), stable(scanned); !reflect.DeepEqual(got, want) {
			t.Fatalf("eps=%g: stable sets diverge: indexed %+v, scan %+v", eps, got, want)
		}
		vIndexed, _, err := db.ValueQueryStats(exemplar, eps)
		if err != nil {
			t.Fatalf("indexed value: %v", err)
		}
		vScanned, _, err := db.valueScan(exemplar, eps)
		if err != nil {
			t.Fatalf("scan value: %v", err)
		}
		if got, want := stable(vIndexed), stable(vScanned); !reflect.DeepEqual(got, want) {
			t.Fatalf("value eps=%g: stable sets diverge: indexed %+v, scan %+v", eps, got, want)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: full equivalence, no filtering.
	for _, eps := range []float64{0, 1, 8, 64} {
		indexed, _, err := db.DistanceQueryStats(exemplar, dist.ZEuclidean, eps)
		if err != nil {
			t.Fatal(err)
		}
		scanned, _, err := db.distanceScan(exemplar, dist.ZEuclidean, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Errorf("quiesced eps=%g: indexed %+v != scan %+v", eps, indexed, scanned)
		}
	}
}
