package core

import (
	"strings"
	"testing"

	"seqrep/internal/dist"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

func plannerDB(t *testing.T, cfg Config) *DB {
	t.Helper()
	cfg.Archive = store.NewMemArchive()
	db := mustDB(t, cfg)
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "fever", fever)
	mustIngest(t, db, "near", fever.ShiftValue(0.05))
	mustIngest(t, db, "far", fever.ShiftValue(50))
	three, err := synth.ThreePeakFever(97)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "three", three)
	short, err := synth.Fever(synth.FeverOpts{Samples: 33})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "short", short)
	return db
}

func TestPlannerRouting(t *testing.T) {
	db := plannerDB(t, Config{})
	fever, _ := db.Raw("fever")
	cases := []struct {
		metric dist.Metric
		plan   string
	}{
		{dist.Euclidean, PlanIndex},
		{dist.ZEuclidean, PlanIndex},
		{dist.Manhattan, PlanScan},
		{dist.Chebyshev, PlanScan},
		{dist.MeanAbs, PlanScan},
		{dist.RMS, PlanScan},
	}
	for _, c := range cases {
		_, stats, err := db.DistanceQueryStats(fever, c.metric, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.metric.Name(), err)
		}
		if stats.Plan != c.plan {
			t.Errorf("%s: plan = %q, want %q", c.metric.Name(), stats.Plan, c.plan)
		}
		if stats.Query != "distance" || stats.Metric != c.metric.Name() {
			t.Errorf("%s: stats labels %+v", c.metric.Name(), stats)
		}
	}
	_, stats, err := db.ValueQueryStats(fever, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != PlanIndex || stats.Query != "value" || stats.Metric != "band" {
		t.Errorf("value stats = %+v", stats)
	}
}

func TestPlannerDisabledIndexFallsBack(t *testing.T) {
	db := plannerDB(t, Config{IndexCoeffs: -1})
	if db.Stats().IndexCoeffs != 0 {
		t.Errorf("disabled index reports coefficients: %+v", db.Stats())
	}
	fever, _ := db.Raw("fever")
	matches, stats, err := db.DistanceQueryStats(fever, dist.Euclidean, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != PlanScan {
		t.Errorf("plan = %q, want scan", stats.Plan)
	}
	if len(matches) != 2 { // fever itself + the 0.05-shifted copy (L2 ≈ 0.49)
		t.Errorf("matches = %+v", matches)
	}
}

func TestPlannerPrunesAndCounts(t *testing.T) {
	db := plannerDB(t, Config{})
	fever, _ := db.Raw("fever")
	matches, stats, err := db.DistanceQueryStats(fever, dist.Euclidean, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Four sequences share the exemplar's length; "far" (50 degrees away)
	// and "three" must be pruned in feature space at this tolerance.
	if stats.Examined != 4 {
		t.Errorf("Examined = %d, want 4 (the length group)", stats.Examined)
	}
	if stats.Pruned == 0 {
		t.Errorf("nothing pruned: %+v", stats)
	}
	if stats.Candidates+stats.Pruned != stats.Examined {
		t.Errorf("stats don't add up: %+v", stats)
	}
	if stats.Matches != len(matches) {
		t.Errorf("Matches = %d, len = %d", stats.Matches, len(matches))
	}
	if s := stats.String(); !strings.Contains(s, "plan=index") || !strings.Contains(s, "pruned=") {
		t.Errorf("String() = %q", s)
	}
}

func TestPlannerSeesRemove(t *testing.T) {
	db := plannerDB(t, Config{})
	fever, _ := db.Raw("fever")
	_, before, err := db.DistanceQueryStats(fever, dist.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Remove("far"); err != nil {
		t.Fatal(err)
	}
	matches, after, err := db.DistanceQueryStats(fever, dist.Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after.Examined != before.Examined-1 {
		t.Errorf("Examined %d -> %d, want one fewer", before.Examined, after.Examined)
	}
	for _, m := range matches {
		if m.ID == "far" {
			t.Errorf("removed sequence matched: %+v", matches)
		}
	}
}

func TestPlannerValidation(t *testing.T) {
	db := plannerDB(t, Config{})
	fever, _ := db.Raw("fever")
	if _, _, err := db.DistanceQueryStats(nil, dist.Euclidean, 1); err == nil {
		t.Error("empty exemplar accepted")
	}
	if _, _, err := db.DistanceQueryStats(fever, nil, 1); err == nil {
		t.Error("nil metric accepted")
	}
	if _, _, err := db.DistanceQueryStats(fever, dist.Euclidean, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, _, err := db.ValueQueryStats(nil, 1); err == nil {
		t.Error("empty value exemplar accepted")
	}
	if _, _, err := db.ValueQueryStats(fever, -1); err == nil {
		t.Error("negative value tolerance accepted")
	}
}
