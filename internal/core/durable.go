package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"time"

	"seqrep/internal/segment"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/wal"
)

// Durable write path (docs/DURABILITY.md, docs/STORAGE.md): a database
// opened with OpenDir owns a write-ahead log and an on-disk segment
// tier. Every Ingest and Remove appends its operation to the log — and
// waits for the fsync — before the in-memory commit, so an acknowledged
// write survives any crash; boot loads the segment tier's manifest and
// records, replays the log tail on top, and leaves the log attached.
// Checkpoint flushes only the records dirtied since the last checkpoint
// into a new segment (removals as tombstones) and truncates the log —
// O(delta) in the churn, not O(database).

// Data-directory layout.
const (
	// SnapshotFileName is the legacy monolithic snapshot inside an
	// OpenDir data directory. Databases that last checkpointed before
	// the segment tier existed boot from it once (every record enters
	// the dirty set, so the first checkpoint migrates them into
	// segments) and it is removed after that checkpoint commits.
	SnapshotFileName = "snapshot.sdb"
	// WALDirName is the write-ahead-log subdirectory.
	WALDirName = "wal"
)

// WAL record ops. Payload layouts are versioned implicitly by these
// constants: a new layout gets a new op.
const (
	walOpIngest byte = 1 // idLen u16 | id | n u32 | (t f64, v f64) × n
	walOpRemove byte = 2 // idLen u16 | id
)

// RecoveryStats reports what a boot-time WAL replay did. Skips are the
// normal overlap between a checkpoint snapshot and the log records it
// covers (replay is idempotent); Failed counts records whose pipeline
// failed again during replay exactly as it did (unacknowledged) before
// the crash.
type RecoveryStats struct {
	// Replayed is the number of log records examined.
	Replayed int
	// Applied is the number of operations re-executed.
	Applied int
	// SkippedDuplicate counts ingests whose id the snapshot already held.
	SkippedDuplicate int
	// SkippedMissing counts removes whose id was already gone.
	SkippedMissing int
	// Failed counts operations that errored during replay (deterministic
	// pipeline failures — the original call returned the same error and
	// was never acknowledged).
	Failed int
}

// OpenDir opens (creating if needed) a durable database rooted at dir:
// layout dir/segments/ + dir/wal/ (plus a legacy dir/snapshot.sdb the
// first post-upgrade checkpoint migrates away). Boot loads the segment
// manifest and adopts every live record, replays the write-ahead log
// tail on top — truncating a torn final record, skipping records the
// segments already cover — then reclaims any sealed log segments the
// manifest's LSN shows are covered (the stranded leftovers of a
// checkpoint that died between its rotation and its truncation). The
// caller owns the returned database and must Close it to release the
// log and the segment files.
//
// cfg contributes the code components exactly as in Load; when a
// manifest (or legacy snapshot) exists its stored scalar parameters win.
func OpenDir(dir string, cfg Config) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating data dir: %w", err)
	}
	cache := segment.NewCache(segCacheBytes(cfg.SegmentCacheBytes))
	segs, err := segment.Open(filepath.Join(dir, SegmentsDirName), cache, cfg.CompactThreshold)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			segs.Close()
		}
	}()

	snapPath := filepath.Join(dir, SnapshotFileName)
	var (
		db       *DB
		ckptTime time.Time
		migrated []string // legacy snapshot ids to seed the dirty set with
	)
	if segs.HasManifest() {
		// The manifest is the commit point of the newest checkpoint: it
		// wins over any leftover snapshot (a migration that crashed after
		// its first segment flush but before deleting the old file).
		if db, err = bootFromSegments(segs, cfg); err != nil {
			return nil, err
		}
		if err := os.Remove(snapPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("core: removing stale snapshot %s: %w", snapPath, err)
		}
		if info, statErr := os.Stat(filepath.Join(filepath.Join(dir, SegmentsDirName), segment.ManifestFileName)); statErr == nil {
			ckptTime = info.ModTime()
		}
	} else {
		switch info, statErr := os.Stat(snapPath); {
		case statErr == nil:
			// Legacy layout: boot from the monolithic snapshot, then mark
			// every record dirty so the first checkpoint migrates the whole
			// database into the segment tier.
			if db, err = LoadFile(snapPath, cfg); err != nil {
				return nil, err
			}
			migrated = db.IDs()
			ckptTime = info.ModTime()
		case errors.Is(statErr, fs.ErrNotExist):
			if db, err = New(cfg); err != nil {
				return nil, err
			}
		default:
			// "Cannot tell" must not silently boot empty: replaying the WAL
			// over a fresh database when a snapshot actually exists would
			// resurrect only the tail of the data.
			return nil, fmt.Errorf("core: checking snapshot %s: %w", snapPath, statErr)
		}
	}

	// Attach the segment tier and arm residency before dirty tracking
	// and replay: replayed links then register with the tracker like any
	// live ingest (admitted pinned — their payloads are not in the tier
	// yet). bootFromSegments already armed it on the manifest path; on
	// the legacy-snapshot path every migrated record is about to be
	// marked dirty, so each is admitted pinned here for the same reason.
	db.segs = segs
	db.armResidency()
	for _, id := range migrated {
		if rec, ok := db.Record(id); ok {
			db.res.Admit(rec.ID, rec.repBytes, &rec.hot, true)
		}
	}

	// Arm delta tracking after adoption (the manifest covers those
	// records) and before replay: a WAL record is by definition not yet
	// in a committed segment, so everything replay applies must flush at
	// the next checkpoint — were it not marked, truncation would lose it.
	db.enableDirtyTracking()
	for _, id := range migrated {
		db.markDirty(id, true)
	}

	w, err := wal.Open(filepath.Join(dir, WALDirName), wal.Options{})
	if err != nil {
		return nil, err
	}
	if err := w.Replay(db.applyWALRecord); err != nil {
		w.Close()
		return nil, fmt.Errorf("core: replaying wal: %w", err)
	}
	// Reclaim sealed log segments the manifest already covers — the
	// crash window between a checkpoint's rotation and its truncation
	// strands them; their records were just replayed idempotently (and
	// any that actually mattered are in the dirty set now).
	if segs.HasManifest() {
		if err := w.TruncateBefore(segs.LSN()); err != nil {
			w.Close()
			return nil, fmt.Errorf("core: reclaiming covered wal segments: %w", err)
		}
	}
	db.wal = w
	db.dataDir = dir
	db.probeStop = make(chan struct{})
	if !ckptTime.IsZero() {
		db.lastCkpt.Store(&ckptTime)
	}
	ok = true
	return db, nil
}

// applyWALRecord re-executes one logged operation during boot replay.
// Replay is idempotent on top of any checkpoint state: an ingest whose
// id is already stored is skipped (the snapshot covered it — per id,
// operations are serialized and only acknowledged ones are logged, so
// the stored value is either this record's or that of a later logged
// ingest that will overwrite it via the interleaved remove), and a
// remove of an absent id is skipped likewise. db.wal is still nil here,
// so the re-executed operations do not re-append themselves.
func (db *DB) applyWALRecord(r wal.Record) error {
	db.recovery.Replayed++
	switch r.Op {
	case walOpIngest:
		id, s, err := decodeWALIngest(r.Payload)
		if err != nil {
			return fmt.Errorf("core: wal record %d: %w", r.LSN, err)
		}
		if _, ok := db.Record(id); ok {
			db.recovery.SkippedDuplicate++
			return nil
		}
		if _, err := db.IngestRecord(id, s); err != nil {
			// The same deterministic failure the original caller saw: the
			// operation was logged but never acknowledged, so skipping it
			// reproduces the pre-crash state.
			db.recovery.Failed++
			return nil
		}
	case walOpRemove:
		id, err := decodeWALRemove(r.Payload)
		if err != nil {
			return fmt.Errorf("core: wal record %d: %w", r.LSN, err)
		}
		if _, ok := db.Record(id); !ok {
			db.recovery.SkippedMissing++
			return nil
		}
		if err := db.Remove(id); err != nil && !errors.Is(err, store.ErrNotFound) {
			// The in-memory removal succeeded (the id was present above);
			// only an archive fault can land here. A missing raw is the
			// expected replay overlap — the original remove already
			// deleted it — anything else is a real storage fault.
			db.recovery.Failed++
			return nil
		}
	default:
		return fmt.Errorf("core: wal record %d: unknown op %d", r.LSN, r.Op)
	}
	db.recovery.Applied++
	return nil
}

// Recovery reports what the boot-time replay did (zero value when the
// database was not opened via OpenDir or had nothing to replay).
func (db *DB) Recovery() RecoveryStats { return db.recovery }

// walAppend logs one operation and waits until it is fsync-durable,
// stamping the current mutation generation into the record. Called with
// db.ckptMu held for reading: the append→commit window must complete
// before a checkpoint may rotate the log (otherwise a record could land
// in a sealed segment while its in-memory commit misses the snapshot —
// truncation would then lose an acknowledged write).
func (db *DB) walAppend(op byte, payload []byte) error {
	if _, err := db.wal.Append(op, db.gen.Load(), payload); err != nil {
		// A poisoned log means the device failed (not a per-call problem
		// like an oversized payload or a racing Close): transition to
		// storage-fault read-only mode, and classify this very write's
		// failure as the degradation so the serving layer answers 503,
		// not 500 — the write was rejected, not half-applied.
		if poison := db.wal.Err(); poison != nil {
			db.enterDegraded(poison)
			return fmt.Errorf("core: %w: wal append: %w", ErrDegraded, err)
		}
		return fmt.Errorf("core: wal append: %w", err)
	}
	return nil
}

func encodeWALIngest(id string, s seq.Sequence) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("core: id of %d bytes exceeds the wal record limit", len(id))
	}
	buf := make([]byte, 0, 2+len(id)+4+16*len(s))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	for _, p := range s {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.V))
	}
	return buf, nil
}

func decodeWALIngest(payload []byte) (string, seq.Sequence, error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("truncated ingest payload")
	}
	idLen := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if len(payload) < idLen+4 {
		return "", nil, fmt.Errorf("truncated ingest payload")
	}
	id := string(payload[:idLen])
	payload = payload[idLen:]
	n := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) != 16*n {
		return "", nil, fmt.Errorf("ingest payload holds %d bytes for %d samples", len(payload), n)
	}
	s := make(seq.Sequence, n)
	for i := range s {
		s[i].T = math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i:]))
		s[i].V = math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i+8:]))
	}
	return id, s, nil
}

func encodeWALRemove(id string) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("core: id of %d bytes exceeds the wal record limit", len(id))
	}
	buf := make([]byte, 0, 2+len(id))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	return append(buf, id...), nil
}

func decodeWALRemove(payload []byte) (string, error) {
	if len(payload) < 2 {
		return "", fmt.Errorf("truncated remove payload")
	}
	idLen := int(binary.LittleEndian.Uint16(payload))
	if len(payload) != 2+idLen {
		return "", fmt.Errorf("remove payload holds %d bytes for a %d-byte id", len(payload)-2, idLen)
	}
	return string(payload[2:]), nil
}

// Checkpoint flushes the records dirtied since the last checkpoint into
// a new immutable segment and truncates the write-ahead log:
//
//  1. rotate the log and swap out the dirty set, atomically (briefly
//     excluding the append→commit windows, so every record in the
//     sealed log segments is committed in memory and marked dirty),
//  2. encode the dirty records — current payload for live ids,
//     tombstones for removed ones — and flush them as one segment, the
//     manifest committing both the segment and the covered log offset,
//  3. truncate the sealed log segments,
//  4. compact the segment tier if it has reached threshold.
//
// Cost is O(delta): only churned records are written, however large the
// database. A crash between any two steps is safe: before the manifest
// commits, the old segment set plus the full log still replay to the
// acknowledged state; after it, truncation is bookkeeping boot redoes
// from the manifest's LSN. On failure the swapped-out dirty set is
// merged back (the next attempt re-flushes those records — without this
// a later checkpoint would truncate their log entries unflushed) and
// the error is retained for WALStats until a checkpoint succeeds.
// Checkpoints serialize; concurrent writes keep committing throughout
// except during the rotation itself.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("core: database has no write-ahead log (not opened via OpenDir)")
	}
	db.ckptRun.Lock()
	defer db.ckptRun.Unlock()
	if err := db.checkpoint(); err != nil {
		db.ckptFails.Add(1)
		db.ckptStreak.Add(1)
		msg := err.Error()
		db.ckptErr.Store(&msg)
		return err
	}
	db.ckptErr.Store(nil)
	db.ckptStreak.Store(0)
	now := time.Now()
	db.lastCkpt.Store(&now)
	return nil
}

// checkpoint is Checkpoint's body, with failure accounting left to the
// caller. ckptRun is held.
func (db *DB) checkpoint() error {
	degradedFlush := db.degraded.Load()
	db.ckptMu.Lock()
	var (
		base uint64
		err  error
	)
	if degradedFlush {
		// Storage-fault read-only mode: the poisoned log cannot rotate,
		// but the in-memory state is intact and the segment tier may
		// still accept writes — flush the dirty records from memory
		// anyway, so a fault that outlives the process costs no more
		// replay than necessary. Writes are failing fast with
		// ErrDegraded, so every acknowledged record below NextLSN is
		// covered by this flush plus the existing segments; what the log
		// holds beyond that was never acknowledged.
		base = db.wal.Stats().NextLSN
	} else {
		base, err = db.wal.Rotate()
		if err != nil {
			// A rotation fault poisons the log just like an append fault:
			// enter read-only mode so the next write fails fast instead of
			// discovering the dead log itself.
			if poison := db.wal.Err(); poison != nil {
				db.enterDegraded(poison)
			}
		}
	}
	var dirty map[string]bool
	if err == nil {
		dirty = db.swapDirty()
	}
	db.ckptMu.Unlock()
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}

	entries, flushed, err := db.encodeDirty(dirty)
	if err != nil {
		db.restoreDirty(dirty)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	meta, err := json.Marshal(db.manifestMeta())
	if err != nil {
		db.restoreDirty(dirty)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := db.segs.Flush(entries, base, meta); err != nil {
		db.restoreDirty(dirty)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	// The manifest has committed: every flushed record's payload is
	// durably in the segment tier, so its residency pin — held since its
	// link to keep eviction away from the only copy — is released. The
	// ref pointer scopes each unpin to the exact record object flushed;
	// a same-id successor from a remove+re-ingest (necessarily in a
	// later dirty epoch) holds its own pin under its own ref.
	for _, rec := range flushed {
		db.res.Unpin(rec.ID, &rec.hot)
	}
	// The dirty records are durably in the
	// segment tier, so the swapped-out set is retired for good. What
	// follows is reclamation — a failure here leaves only garbage (extra
	// sealed log segments, an uncompacted tier, a stale legacy snapshot),
	// which boot and the next checkpoint clean up.
	if err := db.wal.TruncateBefore(base); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	snapPath := filepath.Join(db.dataDir, SnapshotFileName)
	if err := os.Remove(snapPath); err == nil {
		if err := store.SyncDir(db.dataDir); err != nil {
			return fmt.Errorf("core: checkpoint: %w", err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("core: checkpoint: removing legacy snapshot: %w", err)
	}
	if _, err := db.segs.Compact(); err != nil {
		return fmt.Errorf("core: checkpoint: compacting segments: %w", err)
	}
	return nil
}

// WALStats describes the durable write path's current depth, for health
// reporting and checkpoint scheduling.
type WALStats struct {
	// Records is the number of log records a crash right now would
	// replay (appends since the last completed checkpoint).
	Records uint64
	// Bytes is the on-disk size of the retained log segments.
	Bytes int64
	// Segments is the retained segment file count.
	Segments int
	// LastCheckpoint is when the last checkpoint completed — at boot,
	// the loaded manifest's (or legacy snapshot's) modification time.
	// Zero when this database has never checkpointed and booted empty.
	LastCheckpoint time.Time
	// CheckpointFailures counts Checkpoint calls that returned an error
	// since boot. A growing count with a growing Records/Bytes is the
	// unbounded-log alarm health probes watch for.
	CheckpointFailures uint64
	// CheckpointFailStreak counts consecutive Checkpoint failures; the
	// next success resets it to zero. Health probes treat a streak at or
	// above their tolerance as unhealthy even if the node otherwise
	// serves.
	CheckpointFailStreak uint64
	// LastCheckpointError is the most recent checkpoint failure, cleared
	// by the next success. Empty when the last checkpoint succeeded (or
	// none has run).
	LastCheckpointError string
}

// WALStats reports the write-ahead log's depth; ok is false when the
// database has no log (not opened via OpenDir).
func (db *DB) WALStats() (WALStats, bool) {
	if db.wal == nil {
		return WALStats{}, false
	}
	st := db.wal.Stats()
	out := WALStats{
		Records:              st.Records,
		Bytes:                st.Bytes,
		Segments:             st.Segments,
		CheckpointFailures:   db.ckptFails.Load(),
		CheckpointFailStreak: db.ckptStreak.Load(),
	}
	if t := db.lastCkpt.Load(); t != nil {
		out.LastCheckpoint = *t
	}
	if msg := db.ckptErr.Load(); msg != nil {
		out.LastCheckpointError = *msg
	}
	return out, true
}

// Close releases the write-ahead log (flushing and syncing its tail)
// and the segment tier's open files. Writes racing with Close fail
// unacknowledged; queries against resident records are unaffected. A
// database without a log closes trivially.
func (db *DB) Close() error {
	db.stopProbe()
	var first error
	if db.wal != nil {
		first = db.wal.Close()
	}
	if db.segs != nil {
		if err := db.segs.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
