package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"time"

	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/wal"
)

// Durable write path (docs/DURABILITY.md): a database opened with
// OpenDir owns a write-ahead log next to its snapshot. Every Ingest and
// Remove appends its operation to the log — and waits for the fsync —
// before the in-memory commit, so an acknowledged write survives any
// crash; boot recovers the snapshot and replays the log tail back to the
// exact acknowledged state. Checkpoint folds the log into a fresh
// snapshot and truncates it.

// Data-directory layout.
const (
	// SnapshotFileName is the snapshot inside an OpenDir data directory.
	SnapshotFileName = "snapshot.sdb"
	// WALDirName is the write-ahead-log subdirectory.
	WALDirName = "wal"
)

// WAL record ops. Payload layouts are versioned implicitly by these
// constants: a new layout gets a new op.
const (
	walOpIngest byte = 1 // idLen u16 | id | n u32 | (t f64, v f64) × n
	walOpRemove byte = 2 // idLen u16 | id
)

// RecoveryStats reports what a boot-time WAL replay did. Skips are the
// normal overlap between a checkpoint snapshot and the log records it
// covers (replay is idempotent); Failed counts records whose pipeline
// failed again during replay exactly as it did (unacknowledged) before
// the crash.
type RecoveryStats struct {
	// Replayed is the number of log records examined.
	Replayed int
	// Applied is the number of operations re-executed.
	Applied int
	// SkippedDuplicate counts ingests whose id the snapshot already held.
	SkippedDuplicate int
	// SkippedMissing counts removes whose id was already gone.
	SkippedMissing int
	// Failed counts operations that errored during replay (deterministic
	// pipeline failures — the original call returned the same error and
	// was never acknowledged).
	Failed int
}

// OpenDir opens (creating if needed) a durable database rooted at dir:
// layout dir/snapshot.sdb + dir/wal/. It loads the snapshot when
// present, replays the write-ahead log tail on top of it — truncating a
// torn final record, skipping records the snapshot already covers — and
// leaves the log attached, so every subsequent Ingest/Remove is
// fsync-durable before it is acknowledged. The caller owns the returned
// database and must Close it to release the log.
//
// cfg contributes the code components exactly as in Load; when a
// snapshot exists its stored scalar parameters win.
func OpenDir(dir string, cfg Config) (*DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating data dir: %w", err)
	}
	snapPath := filepath.Join(dir, SnapshotFileName)
	var (
		db       *DB
		err      error
		snapTime time.Time
	)
	switch info, statErr := os.Stat(snapPath); {
	case statErr == nil:
		if db, err = LoadFile(snapPath, cfg); err != nil {
			return nil, err
		}
		snapTime = info.ModTime()
	case errors.Is(statErr, fs.ErrNotExist):
		if db, err = New(cfg); err != nil {
			return nil, err
		}
	default:
		// "Cannot tell" must not silently boot empty: replaying the WAL
		// over a fresh database when a snapshot actually exists would
		// resurrect only the tail of the data.
		return nil, fmt.Errorf("core: checking snapshot %s: %w", snapPath, statErr)
	}
	w, err := wal.Open(filepath.Join(dir, WALDirName), wal.Options{})
	if err != nil {
		return nil, err
	}
	if err := w.Replay(db.applyWALRecord); err != nil {
		w.Close()
		return nil, fmt.Errorf("core: replaying wal: %w", err)
	}
	db.wal = w
	db.dataDir = dir
	if !snapTime.IsZero() {
		db.lastCkpt.Store(&snapTime)
	}
	return db, nil
}

// applyWALRecord re-executes one logged operation during boot replay.
// Replay is idempotent on top of any checkpoint state: an ingest whose
// id is already stored is skipped (the snapshot covered it — per id,
// operations are serialized and only acknowledged ones are logged, so
// the stored value is either this record's or that of a later logged
// ingest that will overwrite it via the interleaved remove), and a
// remove of an absent id is skipped likewise. db.wal is still nil here,
// so the re-executed operations do not re-append themselves.
func (db *DB) applyWALRecord(r wal.Record) error {
	db.recovery.Replayed++
	switch r.Op {
	case walOpIngest:
		id, s, err := decodeWALIngest(r.Payload)
		if err != nil {
			return fmt.Errorf("core: wal record %d: %w", r.LSN, err)
		}
		if _, ok := db.Record(id); ok {
			db.recovery.SkippedDuplicate++
			return nil
		}
		if _, err := db.IngestRecord(id, s); err != nil {
			// The same deterministic failure the original caller saw: the
			// operation was logged but never acknowledged, so skipping it
			// reproduces the pre-crash state.
			db.recovery.Failed++
			return nil
		}
	case walOpRemove:
		id, err := decodeWALRemove(r.Payload)
		if err != nil {
			return fmt.Errorf("core: wal record %d: %w", r.LSN, err)
		}
		if _, ok := db.Record(id); !ok {
			db.recovery.SkippedMissing++
			return nil
		}
		if err := db.Remove(id); err != nil && !errors.Is(err, store.ErrNotFound) {
			// The in-memory removal succeeded (the id was present above);
			// only an archive fault can land here. A missing raw is the
			// expected replay overlap — the original remove already
			// deleted it — anything else is a real storage fault.
			db.recovery.Failed++
			return nil
		}
	default:
		return fmt.Errorf("core: wal record %d: unknown op %d", r.LSN, r.Op)
	}
	db.recovery.Applied++
	return nil
}

// Recovery reports what the boot-time replay did (zero value when the
// database was not opened via OpenDir or had nothing to replay).
func (db *DB) Recovery() RecoveryStats { return db.recovery }

// walAppend logs one operation and waits until it is fsync-durable,
// stamping the current mutation generation into the record. Called with
// db.ckptMu held for reading: the append→commit window must complete
// before a checkpoint may rotate the log (otherwise a record could land
// in a sealed segment while its in-memory commit misses the snapshot —
// truncation would then lose an acknowledged write).
func (db *DB) walAppend(op byte, payload []byte) error {
	if _, err := db.wal.Append(op, db.gen.Load(), payload); err != nil {
		return fmt.Errorf("core: wal append: %w", err)
	}
	return nil
}

func encodeWALIngest(id string, s seq.Sequence) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("core: id of %d bytes exceeds the wal record limit", len(id))
	}
	buf := make([]byte, 0, 2+len(id)+4+16*len(s))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	for _, p := range s {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.V))
	}
	return buf, nil
}

func decodeWALIngest(payload []byte) (string, seq.Sequence, error) {
	if len(payload) < 2 {
		return "", nil, fmt.Errorf("truncated ingest payload")
	}
	idLen := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if len(payload) < idLen+4 {
		return "", nil, fmt.Errorf("truncated ingest payload")
	}
	id := string(payload[:idLen])
	payload = payload[idLen:]
	n := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) != 16*n {
		return "", nil, fmt.Errorf("ingest payload holds %d bytes for %d samples", len(payload), n)
	}
	s := make(seq.Sequence, n)
	for i := range s {
		s[i].T = math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i:]))
		s[i].V = math.Float64frombits(binary.LittleEndian.Uint64(payload[16*i+8:]))
	}
	return id, s, nil
}

func encodeWALRemove(id string) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("core: id of %d bytes exceeds the wal record limit", len(id))
	}
	buf := make([]byte, 0, 2+len(id))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	return append(buf, id...), nil
}

func decodeWALRemove(payload []byte) (string, error) {
	if len(payload) < 2 {
		return "", fmt.Errorf("truncated remove payload")
	}
	idLen := int(binary.LittleEndian.Uint16(payload))
	if len(payload) != 2+idLen {
		return "", fmt.Errorf("remove payload holds %d bytes for a %d-byte id", len(payload)-2, idLen)
	}
	return string(payload[2:]), nil
}

// Checkpoint folds the write-ahead log into a fresh snapshot:
//
//  1. rotate the log (briefly excluding the append→commit windows, so
//     every record in the sealed segments is committed in memory),
//  2. save a point-in-time snapshot — it covers at least every sealed
//     record,
//  3. truncate the sealed segments.
//
// A crash between any two steps is safe: before the truncation the old
// snapshot plus the full log still replay to the acknowledged state
// (records the new snapshot also holds are skipped idempotently), and
// the snapshot write itself is atomic-and-durable (temp file, fsync,
// rename, directory sync). Checkpoints serialize; concurrent writes keep
// committing throughout except during the rotation itself.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("core: database has no write-ahead log (not opened via OpenDir)")
	}
	db.ckptRun.Lock()
	defer db.ckptRun.Unlock()
	db.ckptMu.Lock()
	base, err := db.wal.Rotate()
	db.ckptMu.Unlock()
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := db.SaveFile(filepath.Join(db.dataDir, SnapshotFileName), nil); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := db.wal.TruncateBefore(base); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	now := time.Now()
	db.lastCkpt.Store(&now)
	return nil
}

// WALStats describes the durable write path's current depth, for health
// reporting and checkpoint scheduling.
type WALStats struct {
	// Records is the number of log records a crash right now would
	// replay (appends since the last completed checkpoint).
	Records uint64
	// Bytes is the on-disk size of the retained log segments.
	Bytes int64
	// Segments is the retained segment file count.
	Segments int
	// LastCheckpoint is when the last checkpoint completed — at boot,
	// the loaded snapshot's modification time. Zero when this database
	// has never checkpointed and booted without a snapshot.
	LastCheckpoint time.Time
}

// WALStats reports the write-ahead log's depth; ok is false when the
// database has no log (not opened via OpenDir).
func (db *DB) WALStats() (WALStats, bool) {
	if db.wal == nil {
		return WALStats{}, false
	}
	st := db.wal.Stats()
	out := WALStats{Records: st.Records, Bytes: st.Bytes, Segments: st.Segments}
	if t := db.lastCkpt.Load(); t != nil {
		out.LastCheckpoint = *t
	}
	return out, true
}

// Close releases the write-ahead log (flushing and syncing its tail).
// Writes racing with Close fail unacknowledged; queries are unaffected.
// A database without a log closes trivially.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}
