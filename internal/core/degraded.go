package core

import (
	"fmt"
	"time"
)

// Storage-fault read-only mode (docs/RELIABILITY.md). A write-ahead-log
// append or fsync error means the log's on-disk tail — and, per the
// fsyncgate lesson, the page cache behind it — can no longer be
// trusted, so no further write may be acknowledged. Instead of
// surfacing that as an endless stream of per-request storage errors
// while the process keeps accepting writes it cannot make durable, the
// database transitions to an explicit degraded state:
//
//	healthy --wal fault--> degraded --probe succeeds--> healthy
//
// While degraded, Ingest/Remove fail fast with ErrDegraded (the serving
// layer answers 503 so load balancers drain the node), reads and stats
// keep serving, and a supervised probe loop re-tests the disk every
// Config.RecoveryProbeInterval: a scratch append+fsync in the log
// directory (wal.Probe), then a rescan-and-reopen of the log's active
// segment (wal.Reset) that discards only never-acknowledged tail bytes.
// When both succeed the database re-enters write service by itself.

// DegradedStatus describes the storage-fault read-only state for health
// reporting.
type DegradedStatus struct {
	// Degraded reports that writes are currently disabled.
	Degraded bool
	// Cause is the storage fault that triggered the current episode
	// (empty when healthy).
	Cause string
	// Since is when the current episode began (zero when healthy).
	Since time.Time
	// Transitions counts entries into degraded mode since boot.
	Transitions uint64
	// Recoveries counts successful returns to write service since boot.
	Recoveries uint64
}

// DegradedStatus reports whether the database is in storage-fault
// read-only mode, why, and for how long.
func (db *DB) DegradedStatus() DegradedStatus {
	st := DegradedStatus{
		Degraded:    db.degraded.Load(),
		Transitions: db.degTotal.Load(),
		Recoveries:  db.recoveries.Load(),
	}
	if c := db.degCause.Load(); c != nil {
		st.Cause = *c
	}
	if t := db.degSince.Load(); t != nil {
		st.Since = *t
	}
	return st
}

// writable fails fast with ErrDegraded while the database is in
// storage-fault read-only mode; nil otherwise.
func (db *DB) writable() error {
	if !db.degraded.Load() {
		return nil
	}
	cause := "storage fault"
	if c := db.degCause.Load(); c != nil {
		cause = *c
	}
	return fmt.Errorf("core: %w (%s)", ErrDegraded, cause)
}

// enterDegraded transitions the database into read-only mode (idempotent
// while an episode is running) and, when OpenDir armed a probe interval,
// starts the supervised recovery loop for this episode.
func (db *DB) enterDegraded(cause error) {
	if !db.degraded.CompareAndSwap(false, true) {
		return
	}
	msg := cause.Error()
	now := time.Now()
	db.degCause.Store(&msg)
	db.degSince.Store(&now)
	db.degTotal.Add(1)
	if db.cfg.RecoveryProbeInterval > 0 && db.probeStop != nil {
		db.probeWG.Add(1)
		go db.probeLoop()
	}
}

// probeLoop retries Recover every RecoveryProbeInterval until the disk
// comes back or the database closes. One loop runs per degraded
// episode.
func (db *DB) probeLoop() {
	defer db.probeWG.Done()
	ticker := time.NewTicker(db.cfg.RecoveryProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-db.probeStop:
			return
		case <-ticker.C:
			if db.Recover() == nil && !db.degraded.Load() {
				return
			}
		}
	}
}

// Recover attempts to bring a degraded database back into write
// service: it probes the disk with a scratch append+fsync in the log
// directory, then resets the write-ahead log (rescanning the active
// segment's acknowledged prefix and truncating the unknowable tail —
// see wal.Reset). On success the database immediately accepts writes
// again. On a healthy database Recover is a no-op. The supervised
// probe loop calls this on a timer; operators and tests may call it
// directly for an immediate attempt.
func (db *DB) Recover() error {
	if db.wal == nil {
		return fmt.Errorf("core: database has no write-ahead log (not opened via OpenDir)")
	}
	if !db.degraded.Load() {
		return nil
	}
	if err := db.wal.Probe(); err != nil {
		return fmt.Errorf("core: recovery probe: %w", err)
	}
	if err := db.wal.Reset(); err != nil {
		return fmt.Errorf("core: recovery reset: %w", err)
	}
	// Order matters: the log accepts appends before degraded clears, so
	// a writer that observes the healthy state always finds a working
	// log.
	db.degCause.Store(nil)
	db.degSince.Store(nil)
	db.degraded.Store(false)
	db.recoveries.Add(1)
	return nil
}

// SetWALFault arms (nils disarm) the write-ahead log's fault-injection
// hooks: write runs before every frame write, sync before every data
// fsync; a non-nil return is treated as the device failing there,
// poisoning the log and degrading the database exactly like a real
// fault. No-op on a database without a log. For chaos tests only.
func (db *DB) SetWALFault(write, sync func() error) {
	if db.wal != nil {
		db.wal.SetFault(write, sync)
	}
}

// stopProbe halts the supervised recovery loop, if one is running; part
// of Close.
func (db *DB) stopProbe() {
	if db.probeStop == nil {
		return
	}
	db.probeHalt.Do(func() { close(db.probeStop) })
	db.probeWG.Wait()
}
