package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"seqrep/internal/segment"
)

// Segment-tier glue (docs/STORAGE.md): an OpenDir database checkpoints
// into a tier of immutable on-disk segments under dir/segments instead
// of rewriting one monolithic snapshot. Only the records dirtied since
// the last checkpoint are flushed — O(delta), not O(database) — with
// removals becoming tombstones; the tier's MANIFEST records the WAL
// offset the segments cover, which is both the replay resume point and
// the truncation bound.

// SegmentsDirName is the segment-tier subdirectory of an OpenDir data
// directory.
const SegmentsDirName = "segments"

// manifestMeta is the configuration blob the checkpoint path stores in
// the segment manifest: the scalar parameters a reboot must restore
// before it can decode payloads and rebuild indexes — the same set the
// legacy snapshot header carried, with the same comparison-source
// soundness rule for feature vectors and sketches.
type manifestMeta struct {
	Epsilon      float64 `json:"epsilon"`
	Delta        float64 `json:"delta"`
	Bucket       float64 `json:"bucket"`
	IndexCoeffs  int64   `json:"index_coeffs"` // <= 0: feature index disabled
	FeatSource   byte    `json:"feat_source"`
	SketchBlock  int64   `json:"sketch_block"` // <= 0: sketches disabled
	SketchSource byte    `json:"sketch_source"`
}

func (db *DB) manifestMeta() manifestMeta {
	mm := manifestMeta{
		Epsilon:      db.cfg.Epsilon,
		Delta:        db.cfg.Delta,
		Bucket:       db.cfg.BucketWidth,
		IndexCoeffs:  int64(db.cfg.IndexCoeffs),
		FeatSource:   db.featSource(),
		SketchBlock:  int64(db.cfg.SketchBlock),
		SketchSource: db.sketchSource(),
	}
	if db.findex == nil {
		mm.IndexCoeffs = -1
	}
	if db.cfg.SketchBlock <= 0 {
		mm.SketchBlock = -1
	}
	return mm
}

// applyManifestMeta folds stored scalar parameters into cfg, mirroring
// what Load does with a snapshot header: stored data parameters win,
// code components stay cfg's.
func applyManifestMeta(cfg Config, mm manifestMeta) (Config, error) {
	const maxCoeffs, maxBlock = 1 << 20, 1 << 20
	if mm.IndexCoeffs > maxCoeffs {
		return cfg, fmt.Errorf("core: implausible index coefficient count %d", mm.IndexCoeffs)
	}
	if mm.SketchBlock > maxBlock {
		return cfg, fmt.Errorf("core: implausible sketch block size %d", mm.SketchBlock)
	}
	if mm.FeatSource > featSourceRecon {
		return cfg, fmt.Errorf("core: unknown feature-vector source %d", mm.FeatSource)
	}
	if mm.SketchSource > featSourceRecon {
		return cfg, fmt.Errorf("core: unknown sketch source %d", mm.SketchSource)
	}
	cfg.Epsilon, cfg.Delta, cfg.BucketWidth = mm.Epsilon, mm.Delta, mm.Bucket
	if mm.IndexCoeffs <= 0 {
		cfg.IndexCoeffs = -1
	} else {
		cfg.IndexCoeffs = int(mm.IndexCoeffs)
	}
	if mm.SketchBlock <= 0 {
		cfg.SketchBlock = -1
	} else {
		cfg.SketchBlock = int(mm.SketchBlock)
	}
	return cfg, nil
}

// segCacheBytes resolves the Config.SegmentCacheBytes knob: zero means
// the 32 MiB default, negative disables the cache.
func segCacheBytes(v int64) int64 {
	if v == 0 {
		return 32 << 20
	}
	if v < 0 {
		return 0
	}
	return v
}

// markDirty notes that id was mutated (live = an upsert, !live = a
// removal that must flush as a tombstone). Last op wins. No-op while
// tracking is disabled (non-durable databases; the segment-adoption
// window at boot, whose records the manifest already covers).
//
// dirtyMu, not ckptMu, guards the map: writers call this holding ckptMu
// only for reading, so two writers would otherwise race each other. The
// read hold still gives the ordering that matters — a checkpoint's
// rotate+swap (exclusive) cannot fall between a writer's WAL append and
// its mark, so a mark always lands in the same dirty epoch as its log
// record and truncation can never outrun the dirty set.
func (db *DB) markDirty(id string, live bool) {
	db.dirtyMu.Lock()
	if db.dirty != nil {
		db.dirty[id] = live
	}
	db.dirtyMu.Unlock()
}

// enableDirtyTracking arms checkpoint delta tracking (OpenDir boot,
// after segment adoption and before WAL replay).
func (db *DB) enableDirtyTracking() {
	db.dirtyMu.Lock()
	db.dirty = make(map[string]bool)
	db.dirtyMu.Unlock()
}

// swapDirty exchanges the dirty set for a fresh one, returning the old.
// Called by Checkpoint under ckptMu (exclusive), alongside the WAL
// rotation it must be atomic with.
func (db *DB) swapDirty() map[string]bool {
	db.dirtyMu.Lock()
	old := db.dirty
	db.dirty = make(map[string]bool, len(old))
	db.dirtyMu.Unlock()
	return old
}

// restoreDirty merges a swapped-out dirty set back after a failed
// checkpoint, so the next attempt re-flushes those records. Ids the
// current set already holds keep their newer mark (last op wins). This
// is correctness, not hygiene: the failed checkpoint did not truncate,
// but a later successful one will truncate past these records' log
// entries — they must be in its flush or they are lost.
func (db *DB) restoreDirty(old map[string]bool) {
	db.dirtyMu.Lock()
	if db.dirty != nil {
		for id, live := range old {
			if _, ok := db.dirty[id]; !ok {
				db.dirty[id] = live
			}
		}
	}
	db.dirtyMu.Unlock()
}

// encodeDirty builds the segment entries for one checkpoint: the
// current payload for each live dirty record, a tombstone for each
// removed one, sorted by id as the segment format requires. A dirty id
// whose record vanished between the swap and here (removed concurrently)
// also becomes a tombstone — safe, because the drop only happens after
// the remove's WAL append fsync'd, so the removal is durable in the log
// tail this checkpoint leaves behind.
//
// The second return value lists the live records whose payloads went
// into the entries: once the checkpoint's manifest commits, these are
// the records whose residency pins the checkpoint releases (their only
// copy is no longer RAM + WAL).
func (db *DB) encodeDirty(dirty map[string]bool) ([]segment.Entry, []*Record, error) {
	ids := make([]string, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]segment.Entry, 0, len(ids))
	flushed := make([]*Record, 0, len(ids))
	for _, id := range ids {
		rec, ok := db.Record(id)
		if !ok {
			entries = append(entries, segment.Entry{ID: id, Tombstone: true})
			continue
		}
		// A dirty record is pinned resident, so this is a pointer load,
		// never a fault-in; the defensive error path covers a remove
		// racing between the lookup above and here.
		fs, err := db.materialize(rec)
		if err != nil {
			if err = db.verifyReadError(rec, err); err != nil {
				return nil, nil, fmt.Errorf("core: encoding %q: %w", id, err)
			}
			entries = append(entries, segment.Entry{ID: id, Tombstone: true})
			continue
		}
		payload, err := encodeRecordPayload(fs, rec)
		if err != nil {
			return nil, nil, fmt.Errorf("core: encoding %q: %w", id, err)
		}
		entries = append(entries, segment.Entry{ID: id, Payload: payload})
		flushed = append(flushed, rec)
	}
	return entries, flushed, nil
}

// bootFromSegments populates a fresh database from the committed
// segment tier: manifest meta resolves the scalar configuration, then
// every live record is decoded and adopted. Runs before dirty tracking
// is enabled — the manifest already covers these records, so re-flushing
// them at the next checkpoint would defeat the O(delta) contract.
func bootFromSegments(segs *segment.Store, cfg Config) (*DB, error) {
	var mm manifestMeta
	meta := segs.Meta()
	if len(meta) == 0 {
		return nil, fmt.Errorf("core: segment manifest carries no configuration metadata")
	}
	if err := json.Unmarshal(meta, &mm); err != nil {
		return nil, fmt.Errorf("core: segment manifest metadata: %w", err)
	}
	cfg, err := applyManifestMeta(cfg, mm)
	if err != nil {
		return nil, err
	}
	db, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Attach the tier and arm residency before adoption: each adopted
	// record is admitted clean (dirty tracking is still off and its
	// payload is durably in the tier), so under a memory budget the
	// eviction sweep bounds resident bytes while records stream in —
	// boot never materializes more than the budget plus one record.
	db.segs = segs
	db.armResidency()
	restoreVectors := mm.FeatSource == db.featSource()
	restoreSketches := mm.SketchSource == db.sketchSource()
	err = segs.Iterate(func(id string, payload []byte) error {
		fs, feats, zfeats, sk, err := decodeRecordPayload(db, id, payload, restoreVectors, restoreSketches)
		if err != nil {
			return err
		}
		return db.adopt(id, fs, feats, zfeats, sk)
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// SegmentStats reports the on-disk segment tier's footprint — segment
// and tombstone counts, bytes, compactions, payload-cache occupancy —
// for health endpoints. ok is false when the database has no segment
// tier (not opened via OpenDir).
func (db *DB) SegmentStats() (segment.Stats, bool) {
	if db.segs == nil {
		return segment.Stats{}, false
	}
	return db.segs.Stats(), true
}

// WrapCheckpointWriter installs a writer decorator on segment flushes —
// the checkpoint fault-injection hook tests use to make Checkpoint fail
// mid-write (compare store.FileArchive.WrapWriter). Pass nil to remove.
// No-op without a segment tier.
func (db *DB) WrapCheckpointWriter(wrap func(io.Writer) io.Writer) {
	if db.segs != nil {
		db.segs.SetWrapWriter(wrap)
	}
}

// SetSegmentReadFault installs a fault hook on the segment tier's point
// lookups — the residency subsystem's cold-read path (chaos tests).
// Pass nil to remove. No-op without a segment tier.
func (db *DB) SetSegmentReadFault(hook func() error) {
	if db.segs != nil {
		db.segs.SetReadFault(hook)
	}
}
