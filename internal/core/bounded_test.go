package core

// Tests for the bounded, cancellable query path: TOP-K exactness (the
// bounded answer is literally the unbounded answer sorted and
// truncated, across every metric and plan), best-so-far pruning (the
// index examines strictly fewer vectors under a small K), LIMIT
// semantics, and cancellation hygiene (ctx.Err() surfaces promptly and
// no goroutine outlives a cancelled query). Run with -race.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"seqrep/internal/dist"
	"seqrep/internal/seq"
	"seqrep/internal/store"
)

// peakySeq builds a two-peak curve riding at the given baseline shift, so
// shape queries have peaked records and exemplars to work with.
func peakySeq(shift float64) seq.Sequence {
	vals := make([]float64, 60)
	for i := range vals {
		x := float64(i)
		vals[i] = shift + 5*math.Exp(-(x-15)*(x-15)/20) + 4*math.Exp(-(x-40)*(x-40)/30)
	}
	return seq.New(vals)
}

// sortTrunc is the TOP-K oracle: the unbounded result in canonical
// order, cut to k.
func sortTrunc(matches []Match, k int) []Match {
	out := append([]Match(nil), matches...)
	SortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// TestTopKEquivalence pins the satellite property: TOP n over any metric,
// with the index on or off, equals sorting the unbounded result and
// truncating — including n larger than the match count and an unbounded
// (+Inf) radius.
func TestTopKEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, coeffs := range []int{0, -1} { // 0 = default index on, -1 = off
		t.Run(fmt.Sprintf("coeffs=%d", coeffs), func(t *testing.T) {
			rng := rand.New(rand.NewSource(4242))
			db := mustDB(t, Config{IndexCoeffs: coeffs, Archive: store.NewMemArchive()})
			exemplar := equivalenceWorkload(t, db, rng, 64)

			for _, m := range dist.Metrics() {
				for _, eps := range []float64{1, 16, math.Inf(1)} {
					full, _, err := db.DistanceQueryCtx(ctx, exemplar, m, eps, QueryOptions{})
					if err != nil {
						t.Fatalf("unbounded %s eps=%g: %v", m.Name(), eps, err)
					}
					for _, k := range []int{1, 3, 10, 1000} {
						got, stats, err := db.DistanceQueryCtx(ctx, exemplar, m, eps, QueryOptions{TopK: k})
						if err != nil {
							t.Fatalf("top-%d %s eps=%g: %v", k, m.Name(), eps, err)
						}
						want := sortTrunc(full, k)
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s eps=%g top-%d: got %+v, want %+v", m.Name(), eps, k, got, want)
						}
						// Truncated is exact except at len(full) == k, where
						// post-fill pruning cannot be told apart from true
						// non-matches (conservative true is allowed).
						switch {
						case len(full) > k && !stats.Truncated:
							t.Errorf("%s eps=%g top-%d: %d matches cut but Truncated not reported", m.Name(), eps, k, len(full))
						case len(full) < k && stats.Truncated:
							t.Errorf("%s eps=%g top-%d: nothing cut but Truncated reported", m.Name(), eps, k)
						}
					}
				}
			}

			for _, eps := range []float64{0.3, 2, 8} {
				full, _, err := db.ValueQueryCtx(ctx, exemplar, eps, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range []int{1, 4, 100} {
					got, _, err := db.ValueQueryCtx(ctx, exemplar, eps, QueryOptions{TopK: k})
					if err != nil {
						t.Fatal(err)
					}
					if want := sortTrunc(full, k); !reflect.DeepEqual(got, want) {
						t.Errorf("value eps=%g top-%d: got %+v, want %+v", eps, k, got, want)
					}
				}
			}

			// Shape queries need a peaked exemplar; the smooth walks above
			// may break without peaks, so add a two-peak family.
			for i := 0; i < 6; i++ {
				mustIngest(t, db, fmt.Sprintf("peak-%d", i), peakySeq(float64(i)))
			}
			shapeEx := peakySeq(0.5)
			tol := ShapeTolerance{Peaks: 2, Height: 1, Spacing: 1}
			full, err := db.ShapeQuery(shapeEx, tol)
			if err != nil {
				t.Fatal(err)
			}
			if len(full) < 3 {
				t.Fatalf("shape workload too sparse: %d matches", len(full))
			}
			for _, k := range []int{1, 5} {
				got, _, err := db.ShapeQueryCtx(ctx, shapeEx, tol, QueryOptions{TopK: k})
				if err != nil {
					t.Fatal(err)
				}
				if want := sortTrunc(full, k); !reflect.DeepEqual(got, want) {
					t.Errorf("shape top-%d: got %+v, want %+v", k, got, want)
				}
			}
		})
	}
}

// TestTopKIndexExaminesFewer pins the acceptance criterion behind
// best-so-far pruning: on a clustered corpus, TOP n BY DISTANCE through
// the index examines strictly fewer feature vectors than the equivalent
// unbounded query — the shrinking radius cuts subtrees the fixed radius
// must visit.
func TestTopKIndexExaminesFewer(t *testing.T) {
	db, items := clusteredDB(t, Config{Workers: 2}, 2000, 64)
	exemplar := items[7].Seq
	// eps admits every cluster (inter-cluster feature distance is a few
	// hundred), so the unbounded search must examine the whole group
	// while top-5 shrinks its radius to within-cluster scale after the
	// first verified handful.
	const eps = 5000

	_, full, err := db.DistanceQueryStats(exemplar, dist.Euclidean, eps)
	if err != nil {
		t.Fatal(err)
	}
	if full.Plan != PlanIndex {
		t.Fatalf("unbounded plan = %q, want index", full.Plan)
	}
	got, topk, err := db.DistanceQueryCtx(context.Background(), exemplar, dist.Euclidean, eps, QueryOptions{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("top-5 returned %d matches", len(got))
	}
	if topk.Plan != PlanIndex {
		t.Fatalf("top-k plan = %q, want index", topk.Plan)
	}
	if topk.Examined >= full.Examined {
		t.Errorf("top-5 examined %d vectors, unbounded %d: best-so-far pruning is not engaged",
			topk.Examined, full.Examined)
	}
}

// TestQueryLimit pins LIMIT semantics on both plans: at most n matches,
// every one a member of the unbounded answer, truncation reported
// exactly when the bound bit.
func TestQueryLimit(t *testing.T) {
	ctx := context.Background()
	for _, coeffs := range []int{0, -1} {
		rng := rand.New(rand.NewSource(99))
		db := mustDB(t, Config{IndexCoeffs: coeffs})
		exemplar := equivalenceWorkload(t, db, rng, 64)
		full, _, err := db.DistanceQueryCtx(ctx, exemplar, dist.Euclidean, 64, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(full) < 4 {
			t.Fatalf("workload too sparse: %d matches", len(full))
		}
		members := map[string]bool{}
		for _, m := range full {
			members[m.ID] = true
		}
		limited, stats, err := db.DistanceQueryCtx(ctx, exemplar, dist.Euclidean, 64, QueryOptions{Limit: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(limited) != 3 {
			t.Fatalf("coeffs=%d: limit 3 returned %d matches", coeffs, len(limited))
		}
		if !stats.Truncated {
			t.Errorf("coeffs=%d: limit hit but Truncated not reported", coeffs)
		}
		for _, m := range limited {
			if !members[m.ID] {
				t.Errorf("coeffs=%d: limited result %q not in the unbounded answer", coeffs, m.ID)
			}
		}
		// A limit the answer never reaches changes nothing.
		loose, stats, err := db.DistanceQueryCtx(ctx, exemplar, dist.Euclidean, 64, QueryOptions{Limit: len(full) + 10})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(loose, full) {
			t.Errorf("coeffs=%d: unreached limit altered the answer", coeffs)
		}
		if stats.Truncated {
			t.Errorf("coeffs=%d: unreached limit reported Truncated", coeffs)
		}
	}
}

// slowDB builds an archived database whose reads cost readLatency, so a
// query's verification phase is slow enough to cancel mid-flight.
func slowDB(t testing.TB, n int, readLatency time.Duration) (*DB, seq.Sequence) {
	t.Helper()
	arch := store.NewMemArchive()
	db := mustDB(t, Config{Archive: arch, Workers: 2})
	rng := rand.New(rand.NewSource(5150))
	var exemplar seq.Sequence
	for i := 0; i < n; i++ {
		s := smoothWalk(rng, 48)
		if i == 0 {
			exemplar = s.Clone()
		}
		mustIngest(t, db, fmt.Sprintf("slow-%04d", i), s)
	}
	arch.ReadLatency = readLatency // after ingest: only query reads pay it
	return db, exemplar
}

// settleGoroutines polls until the goroutine count returns to (near) the
// baseline, tolerating runtime background goroutines.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancelled query: baseline %d, now %d\n%s",
				baseline, now, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryCancellation is the cancellation-hygiene guard: a query
// cancelled mid-scan returns ctx.Err() promptly — within one
// verification batch, not after finishing the scan — and leaves zero
// goroutines behind.
func TestQueryCancellation(t *testing.T) {
	const perRead = 2 * time.Millisecond
	db, exemplar := slowDB(t, 400, perRead)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	yielded := 0
	start := time.Now()
	_, err := db.DistanceQueryStream(ctx, exemplar, dist.Euclidean, math.Inf(1), QueryOptions{}, func(Match) bool {
		yielded++
		cancel() // cancel as soon as the first match arrives
		return true
	})
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("cancelled query returned %v, want context.Canceled (after %d yields)", err, yielded)
	}
	// The full scan costs ~400 reads × 2ms / 2 workers ≈ 400ms; a prompt
	// cancellation stops after a handful of in-flight verifications.
	if elapsed > 250*time.Millisecond {
		t.Errorf("cancelled query took %s, want well under the full-scan cost", elapsed)
	}
	settleGoroutines(t, baseline)

	// A context cancelled before the query starts never scans at all.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := db.DistanceQueryCtx(pre, exemplar, dist.Euclidean, 1, QueryOptions{}); err != context.Canceled {
		t.Fatalf("pre-cancelled query returned %v", err)
	}
	settleGoroutines(t, baseline)
}

// TestQueryDeadline: a deadline context surfaces DeadlineExceeded.
func TestQueryDeadline(t *testing.T) {
	db, exemplar := slowDB(t, 300, 2*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := db.DistanceQueryCtx(ctx, exemplar, dist.Euclidean, math.Inf(1), QueryOptions{})
	if err != context.DeadlineExceeded {
		t.Fatalf("deadline query returned %v", err)
	}
}

// TestQuerySeqEarlyBreak: breaking out of the iterator form cancels the
// underlying query and leaks nothing; the break is not an error.
func TestQuerySeqEarlyBreak(t *testing.T) {
	db, exemplar := slowDB(t, 300, time.Millisecond)
	baseline := runtime.NumGoroutine()
	seen := 0
	for m, err := range db.DistanceQuerySeq(context.Background(), exemplar, dist.Euclidean, math.Inf(1), QueryOptions{}) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if m.ID == "" {
			t.Fatal("empty match")
		}
		seen++
		break
	}
	if seen != 1 {
		t.Fatalf("saw %d matches before break", seen)
	}
	settleGoroutines(t, baseline)

	// Full consumption delivers the whole (sorted, under TopK) answer.
	var ids []string
	for m, err := range db.DistanceQuerySeq(context.Background(), exemplar, dist.Euclidean, math.Inf(1), QueryOptions{TopK: 3}) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		ids = append(ids, m.ID)
	}
	if len(ids) != 3 {
		t.Fatalf("top-3 iterator yielded %v", ids)
	}
	want, _, err := db.DistanceQueryCtx(context.Background(), exemplar, dist.Euclidean, math.Inf(1), QueryOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range want {
		if ids[i] != m.ID {
			t.Fatalf("iterator order %v != materialized %+v", ids, want)
		}
	}
	settleGoroutines(t, baseline)
}

// TestQueryOptionsValidation rejects nonsense bounds.
func TestQueryOptionsValidation(t *testing.T) {
	db := mustDB(t, Config{})
	mustIngest(t, db, "one", smoothWalk(rand.New(rand.NewSource(1)), 32))
	ex, err := db.Reconstruct("one")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.DistanceQueryCtx(context.Background(), ex, dist.Euclidean, 1, QueryOptions{Limit: -1}); err == nil {
		t.Error("negative limit accepted")
	}
	if _, _, err := db.DistanceQueryCtx(context.Background(), ex, dist.Euclidean, 1, QueryOptions{TopK: -2}); err == nil {
		t.Error("negative top-k accepted")
	}
	if _, _, err := db.DistanceQueryCtx(context.Background(), ex, dist.Euclidean, math.NaN(), QueryOptions{}); err == nil {
		t.Error("NaN tolerance accepted")
	}
}
