package core

import (
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/pattern"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// The paper's central claim (Figures 3-5 + §4.4): a value-based ε query
// finds only pointwise-close sequences, while the pattern query finds the
// whole transformed two-peak family.
func TestGoalpostValueVsPattern(t *testing.T) {
	db := feverDB(t)
	exemplar, _ := synth.Fever(synth.FeverOpts{Samples: 97})

	// Value-based query: only the exemplar itself (distance 0) and the
	// bounded-noise variant (small pointwise deviations) should match.
	valueMatches, err := db.ValueQuery(exemplar, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range valueMatches {
		got[m.ID] = true
	}
	if !got["exemplar"] {
		t.Error("value query missed the exemplar itself")
	}
	if !got["bounded-noise"] {
		t.Error("value query missed the bounded-noise variant")
	}
	for _, fails := range []string{"contraction", "dilation", "time-shift", "amplitude-shift", "amplitude-scale"} {
		if got[fails] {
			t.Errorf("value query should NOT match %q (the paper's Figure 5 point)", fails)
		}
	}

	// Pattern query: the whole two-peak family matches; three-peaks and
	// flat do not.
	ids, err := db.MatchPattern(pattern.TwoPeak())
	if err != nil {
		t.Fatal(err)
	}
	matched := map[string]bool{}
	for _, id := range ids {
		matched[id] = true
	}
	for _, want := range []string{"exemplar", "contraction", "dilation", "time-shift", "amplitude-shift", "amplitude-scale", "bounded-noise"} {
		if !matched[want] {
			rec, _ := db.Record(want)
			t.Errorf("pattern query missed %q (symbols %q)", want, rec.Profile.Symbols)
		}
	}
	if matched["three-peaks"] {
		t.Error("pattern query matched the three-peak sequence")
	}
	if matched["flat"] {
		t.Error("pattern query matched the flat sequence")
	}
}

func TestValueQueryExactFlag(t *testing.T) {
	db := feverDB(t)
	exemplar, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	matches, err := db.ValueQuery(exemplar, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != "exemplar" || !matches[0].Exact {
		t.Errorf("first match should be the exact exemplar: %+v", matches)
	}
	for _, m := range matches[1:] {
		if m.Exact {
			t.Errorf("%q claimed exact", m.ID)
		}
		if m.Deviations["value"] <= 0 {
			t.Errorf("%q deviation %g", m.ID, m.Deviations["value"])
		}
	}
}

func TestValueQueryUsesArchiveWhenPresent(t *testing.T) {
	arch := store.NewMemArchive()
	db := mustDB(t, Config{Archive: arch})
	fever, _ := synth.Fever(synth.FeverOpts{})
	mustIngest(t, db, "f", fever)
	arch.ResetStats()
	if _, err := db.ValueQuery(fever, 0.1); err != nil {
		t.Fatal(err)
	}
	if arch.Stats().Reads == 0 {
		t.Error("value query did not read the archive")
	}
}

func TestValueQueryValidation(t *testing.T) {
	db := feverDB(t)
	if _, err := db.ValueQuery(nil, 1); err == nil {
		t.Error("empty exemplar accepted")
	}
	fever, _ := synth.Fever(synth.FeverOpts{})
	if _, err := db.ValueQuery(fever, -1); err == nil {
		t.Error("negative eps accepted")
	}
	// Length-mismatched sequences are skipped silently.
	short, _ := synth.Fever(synth.FeverOpts{Samples: 49})
	matches, err := db.ValueQuery(short, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("length-mismatched query matched %v", matches)
	}
}

func TestMatchPatternBadPattern(t *testing.T) {
	db := feverDB(t)
	if _, err := db.MatchPattern("("); err == nil {
		t.Error("bad pattern accepted")
	}
	if _, err := db.SearchPattern("("); err == nil {
		t.Error("bad pattern accepted by search")
	}
}

func TestSearchPattern(t *testing.T) {
	db := feverDB(t)
	hits, err := db.SearchPattern(pattern.PeakUnit)
	if err != nil {
		t.Fatal(err)
	}
	// Every two-peak sequence yields two peak-unit hits; three-peaks
	// yields three.
	counts := map[string]int{}
	for _, h := range hits {
		counts[h.ID]++
		if h.SegHi <= h.SegLo {
			t.Errorf("empty hit %+v", h)
		}
		if h.TimeHi <= h.TimeLo {
			t.Errorf("hit with empty time span %+v", h)
		}
	}
	if counts["exemplar"] != 2 {
		t.Errorf("exemplar peak-unit hits = %d", counts["exemplar"])
	}
	if counts["three-peaks"] != 3 {
		t.Errorf("three-peaks hits = %d", counts["three-peaks"])
	}
	if counts["flat"] != 0 {
		t.Errorf("flat hits = %d", counts["flat"])
	}
	// Hit time spans should bracket the ground-truth peaks at 8h/16h.
	var spans [][2]float64
	for _, h := range hits {
		if h.ID == "exemplar" {
			spans = append(spans, [2]float64{h.TimeLo, h.TimeHi})
		}
	}
	for i, peakT := range []float64{8, 16} {
		if peakT < spans[i][0] || peakT > spans[i][1] {
			t.Errorf("peak at %gh outside hit span %v", peakT, spans[i])
		}
	}
}

func TestPeakCount(t *testing.T) {
	db := feverDB(t)
	exact, err := db.PeakCount(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 7 { // exemplar + 6 variants
		t.Errorf("exact two-peak matches = %d: %+v", len(exact), exact)
	}
	for _, m := range exact {
		if !m.Exact || m.Deviations["peaks"] != 0 {
			t.Errorf("match %+v not exact", m)
		}
	}
	// Tolerance 1 picks up the three-peak sequence as approximate.
	loose, err := db.PeakCount(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	foundThree := false
	for _, m := range loose {
		if m.ID == "three-peaks" {
			foundThree = true
			if m.Exact || m.Deviations["peaks"] != 1 {
				t.Errorf("three-peaks match %+v", m)
			}
		}
	}
	if !foundThree {
		t.Error("tolerance 1 missed three-peaks")
	}
	// Exact matches sort before approximate ones.
	for i := 1; i < len(loose); i++ {
		if !loose[i-1].Exact && loose[i].Exact {
			t.Error("approximate sorted before exact")
		}
	}
	if _, err := db.PeakCount(-1, 0); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := db.PeakCount(2, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

// The ECG inverted-index query of §5.2 / Figure 10.
func TestIntervalQueryECG(t *testing.T) {
	db := mustDB(t, Config{Epsilon: 10, Delta: 1})
	rng := rand.New(rand.NewSource(7))
	top, bottom, _, _, err := synth.PaperECGPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "ecg1", top)
	mustIngest(t, db, "ecg2", bottom)

	rec1, _ := db.Record("ecg1")
	rec2, _ := db.Record("ecg2")
	if len(rec1.Profile.Intervals) < 2 || len(rec2.Profile.Intervals) < 2 {
		t.Fatalf("intervals: %v / %v", rec1.Profile.Intervals, rec2.Profile.Intervals)
	}

	// ecg1 beats at ~145; ecg2 at ~135. Query 135±4 must return only ecg2.
	matches, err := db.IntervalQuery(135, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "ecg2" {
		t.Fatalf("IntervalQuery(135±4) = %+v", matches)
	}
	for i, iv := range matches[0].Intervals {
		if iv < 130 || iv > 140 {
			t.Errorf("returned interval %d = %g outside range", i, iv)
		}
	}
	// Query 145±2 must return only ecg1.
	matches, err = db.IntervalQuery(145, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "ecg1" {
		t.Fatalf("IntervalQuery(145±2) = %+v", matches)
	}
	// Far range: nothing.
	matches, err = db.IntervalQuery(500, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("far query = %+v", matches)
	}
	if _, err := db.IntervalQuery(100, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

// The generalized approximate query (§2.2): the exemplar denotes the class
// closed under feature-preserving transformations.
func TestShapeQueryFindsTransformedFamily(t *testing.T) {
	db := feverDB(t)
	exemplar, _ := synth.Fever(synth.FeverOpts{Samples: 97})

	matches, err := db.ShapeQuery(exemplar, ShapeTolerance{Peaks: 0, Height: 0.25, Spacing: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Match{}
	for _, m := range matches {
		got[m.ID] = m
	}
	// The whole two-peak family matches within tolerances.
	for _, want := range []string{"exemplar", "time-shift", "amplitude-shift", "amplitude-scale", "bounded-noise", "contraction", "dilation"} {
		if _, ok := got[want]; !ok {
			t.Errorf("shape query missed %q", want)
		}
	}
	// Three peaks: excluded by the peaks dimension.
	if _, ok := got["three-peaks"]; ok {
		t.Error("shape query matched three-peaks")
	}
	if _, ok := got["flat"]; ok {
		t.Error("shape query matched flat")
	}
	// The exemplar itself is an exact match; shift/scale variants are
	// exact too (invariant signature), spacing-changed ones approximate.
	if !got["exemplar"].Exact {
		t.Error("exemplar not exact")
	}
	if !got["amplitude-shift"].Exact {
		t.Errorf("amplitude shift deviations: %v", got["amplitude-shift"].Deviations)
	}
	if got["contraction"].Exact {
		t.Error("contraction should be approximate (different relative spacing)")
	}
	if dev := got["contraction"].Deviations["spacing"]; dev <= 0 {
		t.Errorf("contraction spacing deviation = %g", dev)
	}
}

func TestShapeQueryTightTolerances(t *testing.T) {
	db := feverDB(t)
	exemplar, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	matches, err := db.ShapeQuery(exemplar, ShapeTolerance{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range matches {
		got[m.ID] = true
	}
	// Zero tolerances: only feature-identical sequences (exemplar and its
	// pure shift/scale images) survive.
	if !got["exemplar"] || !got["amplitude-shift"] || !got["time-shift"] || !got["amplitude-scale"] {
		t.Errorf("zero-tolerance matches: %v", matches)
	}
	if got["contraction"] || got["dilation"] {
		t.Error("spacing-changed variants matched at zero tolerance")
	}
}

func TestShapeQueryValidation(t *testing.T) {
	db := feverDB(t)
	exemplar, _ := synth.Fever(synth.FeverOpts{})
	if _, err := db.ShapeQuery(nil, ShapeTolerance{}); err == nil {
		t.Error("empty exemplar accepted")
	}
	if _, err := db.ShapeQuery(exemplar, ShapeTolerance{Peaks: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	// A featureless exemplar (no peaks) cannot anchor a shape query.
	flat := synth.Const(30, 5)
	if _, err := db.ShapeQuery(flat, ShapeTolerance{}); err == nil {
		t.Error("flat exemplar accepted")
	}
}

func TestMatchOrdering(t *testing.T) {
	a := Match{ID: "b", Exact: true, Deviations: map[string]float64{"x": 0}}
	b := Match{ID: "a", Exact: false, Deviations: map[string]float64{"x": 1}}
	if !matchLess(a, b) {
		t.Error("exact should sort first")
	}
	c := Match{ID: "c", Deviations: map[string]float64{"x": 0.5}}
	d := Match{ID: "d", Deviations: map[string]float64{"x": 0.9}}
	if !matchLess(c, d) || matchLess(d, c) {
		t.Error("deviation ordering")
	}
	e := Match{ID: "e", Deviations: map[string]float64{"x": 0.5}}
	if !matchLess(c, e) {
		t.Error("id tiebreak")
	}
}

func TestTotalDeviation(t *testing.T) {
	m := Match{Deviations: map[string]float64{"a": 1, "b": 2.5}}
	if got := totalDeviation(m); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("totalDeviation = %g", got)
	}
}
