package core

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// QueryOptions bounds a similarity query's answer. The zero value asks
// for the classic unbounded behaviour: every match within the tolerance.
//
// Limit caps the number of matches returned; once the cap is reached the
// query stops generating and verifying work. Without TopK the retained
// matches are the first Limit found (scan order is unspecified), so two
// runs of the same limited query may keep different members of the full
// match set.
//
// TopK keeps only the K nearest matches, ordered nearest-first (the same
// exact-first, smallest-deviation, then id order every materialized query
// returns). Unlike Limit it is deterministic — it is exactly the
// unbounded result sorted and truncated to K — and it feeds the
// best-so-far distance back into the search as a shrinking pruning
// radius: once K matches are held, no candidate further than the current
// K-th best is verified, and on the index plan the feature-space bound
// tightens mid-traversal (the classic kNN optimization).
//
// When both are set the effective bound is min(TopK, Limit).
//
// MaxError and MaxTier only affect the progressive entry points
// (DistanceQueryProgressive, ValueQueryProgressive); the exact query paths
// ignore them. Progressive execution is incompatible with TopK — a
// band-accepted answer has no exact distance to rank by.
type QueryOptions struct {
	// Limit caps the result count (0 = unlimited).
	Limit int
	// TopK keeps the K nearest matches by distance (0 = off).
	TopK int
	// MaxError is the progressive quality knob: a record whose error band
	// has tightened to width ≤ MaxError may be accepted without exact
	// verification, so any false positive is within eps+MaxError of the
	// exemplar. 0 demands exact answers (the progressive run then returns
	// exactly the exact query's matches).
	MaxError float64
	// MaxTier caps how deep the progressive cascade refines: TierSketch
	// or TierCandidate answer from bands alone, TierExact (or 0) refines
	// all the way to exact verification.
	MaxTier Tier
}

func (o QueryOptions) validate() error {
	if o.Limit < 0 {
		return fmt.Errorf("core: negative query limit %d", o.Limit)
	}
	if o.TopK < 0 {
		return fmt.Errorf("core: negative top-k %d", o.TopK)
	}
	if math.IsNaN(o.MaxError) || o.MaxError < 0 {
		return fmt.Errorf("core: invalid max error %g", o.MaxError)
	}
	if o.MaxTier < 0 || o.MaxTier > TierExact {
		return fmt.Errorf("core: invalid quality tier %d", o.MaxTier)
	}
	return nil
}

// bound returns the effective result cap: min of the set bounds, 0 when
// neither is set.
func (o QueryOptions) bound() int {
	switch {
	case o.TopK > 0 && o.Limit > 0:
		return min(o.TopK, o.Limit)
	case o.TopK > 0:
		return o.TopK
	default:
		return o.Limit
	}
}

// matchHeap is a bounded worst-at-root heap ordered by matchCompare, so
// the root is the match the next better candidate evicts.
type matchHeap []Match

func (h matchHeap) Len() int           { return len(h) }
func (h matchHeap) Less(i, j int) bool { return matchCompare(h[i], h[j]) > 0 }
func (h matchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x any)        { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() any          { old := *h; n := len(old); m := old[n-1]; *h = old[:n-1]; return m }

// collector funnels verified matches from the query workers into the
// caller: it enforces Limit, maintains the TopK heap and its pruning
// radius, serializes the yield callback, and carries the stop flag and
// first hard error of a run. One collector lives per query execution.
type collector struct {
	yield func(Match) bool // serialized under mu; nil while heaping

	k      int  // TopK heap size (0 = streaming mode)
	limit  int  // emit cap in streaming mode (0 = unlimited)
	prunes bool // whether the heap radius feeds back into verification

	// radiusBits holds math.Float64bits of the current pruning radius —
	// the query tolerance, shrunk to the K-th best distance once the heap
	// fills. Read lock-free on the hot path; updated under mu.
	radiusBits atomic.Uint64

	// halted flags a voluntary stop (limit reached, or the yield callback
	// returned false); haltCh unblocks channel-based producers. aborted
	// flags an involuntary stop: a producer observed the caller's context
	// done and bailed, so runQuery must report ctx.Err().
	halted   atomic.Bool
	haltOnce sync.Once
	haltCh   chan struct{}
	aborted  atomic.Bool

	mu        sync.Mutex
	heap      matchHeap
	emitted   int
	truncated bool
	firstErr  error
}

func newCollector(opts QueryOptions, initRadius float64, prunes bool, yield func(Match) bool) *collector {
	c := &collector{
		yield:  yield,
		limit:  opts.Limit,
		prunes: prunes,
		haltCh: make(chan struct{}),
	}
	if opts.TopK > 0 {
		c.k = opts.bound()
		c.limit = 0 // folded into k
	}
	c.radiusBits.Store(math.Float64bits(initRadius))
	return c
}

// radius returns the current verification radius. It only ever shrinks.
func (c *collector) radius() float64 {
	return math.Float64frombits(c.radiusBits.Load())
}

func (c *collector) halt() {
	c.halted.Store(true)
	c.haltOnce.Do(func() { close(c.haltCh) })
}

// stopped reports whether producers should stop generating work.
func (c *collector) stopped() bool { return c.halted.Load() }

// noteTruncated records that work beyond the result bound was discarded
// (a candidate rejected at a radius the top-K feedback tightened below
// the query's own tolerance — it might have been an unbounded match).
func (c *collector) noteTruncated() {
	c.mu.Lock()
	c.truncated = true
	c.mu.Unlock()
}

// fail records the first hard verification error and stops the run.
func (c *collector) fail(err error) {
	c.mu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.mu.Unlock()
	c.halt()
}

func (c *collector) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

// found accepts one verified match from a worker. In top-K mode it feeds
// the bounded heap (tightening the pruning radius once full); in
// streaming mode it yields immediately, stopping the run at the limit.
func (c *collector) found(m Match) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.halted.Load() {
		return
	}
	if c.k > 0 {
		if len(c.heap) < c.k {
			heap.Push(&c.heap, m)
		} else if matchCompare(m, c.heap[0]) < 0 {
			c.heap[0] = m
			heap.Fix(&c.heap, 0)
			c.truncated = true
		} else {
			c.truncated = true
			return
		}
		if len(c.heap) == c.k && c.prunes {
			c.radiusBits.Store(math.Float64bits(totalDeviation(c.heap[0])))
		}
		return
	}
	if c.limit > 0 && c.emitted >= c.limit {
		c.truncated = true
		c.halt()
		return
	}
	c.emitted++
	if !c.yield(m) {
		c.halt()
		return
	}
	if c.limit > 0 && c.emitted == c.limit {
		c.truncated = true
		c.halt()
	}
}

// drain empties the top-K heap in nearest-first order through yield.
// Called once, after every producer has finished.
func (c *collector) drain() {
	if c.k == 0 {
		return
	}
	c.mu.Lock()
	ordered := make([]Match, len(c.heap))
	for i := len(c.heap) - 1; i >= 0; i-- {
		ordered[i] = heap.Pop(&c.heap).(Match)
	}
	yield := c.yield
	c.mu.Unlock()
	for _, m := range ordered {
		c.emitted++
		if !yield(m) {
			c.halt()
			return
		}
	}
}
