package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// errDisk simulates a device-level write failure.
var errDisk = errors.New("injected: input/output error")

// degradedDB opens a durable database with the supervised probe
// disabled, so tests drive recovery explicitly.
func degradedDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenDir(dir, Config{RecoveryProbeInterval: -1})
	if err != nil {
		t.Fatalf("OpenDir(%s): %v", dir, err)
	}
	return db
}

func TestWALFaultDegradesThenRecovers(t *testing.T) {
	dir := t.TempDir()
	db := degradedDB(t, dir)
	defer db.Close()

	mustIngest(t, db, "before", durSeq(1))

	// Fail every frame write (a write fault, not a sync fault, so the
	// doomed record's bytes never reach the device and the
	// never-resurrected assertion below is exact): the next write
	// poisons the log and the database must enter read-only mode.
	db.SetWALFault(func() error { return errDisk }, nil)
	if err := db.Ingest("lost", durSeq(2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest during fault = %v, want ErrDegraded", err)
	}
	if _, ok := db.Record("lost"); ok {
		t.Fatal("unacknowledged write visible after fault")
	}

	st := db.DegradedStatus()
	if !st.Degraded || st.Cause == "" || st.Since.IsZero() || st.Transitions != 1 {
		t.Fatalf("DegradedStatus = %+v", st)
	}

	// Writes fail fast without touching the log; reads keep serving.
	if err := db.Ingest("fast", durSeq(3)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("fail-fast ingest = %v, want ErrDegraded", err)
	}
	if err := db.Remove("before"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("fail-fast remove = %v, want ErrDegraded", err)
	}
	if _, ok := db.Record("before"); !ok {
		t.Fatal("read failed while degraded")
	}
	if _, err := db.ValueQuery(durSeq(1), 5); err != nil {
		t.Fatalf("query failed while degraded: %v", err)
	}

	// Recovery must not succeed while the disk is still broken.
	if err := db.Recover(); err == nil {
		t.Fatal("Recover succeeded with fault still armed")
	}
	if !db.DegradedStatus().Degraded {
		t.Fatal("degraded cleared by a failed recovery")
	}

	// Disk comes back: recovery restores write service.
	db.SetWALFault(nil, nil)
	if err := db.Recover(); err != nil {
		t.Fatalf("Recover after fault cleared: %v", err)
	}
	st = db.DegradedStatus()
	if st.Degraded || st.Cause != "" || st.Recoveries != 1 {
		t.Fatalf("post-recovery DegradedStatus = %+v", st)
	}
	mustIngest(t, db, "after", durSeq(4))

	// Everything acknowledged — and nothing else — survives a reboot.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	for _, id := range []string{"before", "after"} {
		if _, ok := db2.Record(id); !ok {
			t.Fatalf("%q missing after reboot", id)
		}
	}
	if _, ok := db2.Record("lost"); ok {
		t.Fatal("never-acknowledged record resurrected by reboot")
	}
}

func TestDegradedCheckpointFlushesFromMemory(t *testing.T) {
	dir := t.TempDir()
	db := degradedDB(t, dir)
	defer db.Close()

	for i := 0; i < 3; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	db.SetWALFault(func() error { return errDisk }, nil)
	if err := db.Ingest("x", durSeq(9)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest during fault = %v, want ErrDegraded", err)
	}

	// The log is poisoned but the segment tier still works: checkpoint
	// flushes the dirty set from memory so a crash now replays nothing.
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("degraded checkpoint: %v", err)
	}
	st, ok := db.WALStats()
	if !ok {
		t.Fatal("WALStats not ok")
	}
	if st.CheckpointFailStreak != 0 {
		t.Fatalf("CheckpointFailStreak = %d after success", st.CheckpointFailStreak)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 3 {
		t.Fatalf("Len after reboot = %d, want 3", db2.Len())
	}
	if rec := db2.Recovery(); rec.Applied != 0 {
		t.Fatalf("replay applied %d records; degraded checkpoint should have covered them", rec.Applied)
	}
}

func TestSupervisedProbeRestoresService(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, Config{RecoveryProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	mustIngest(t, db, "a", durSeq(1))
	db.SetWALFault(func() error { return errDisk }, nil)
	if err := db.Ingest("b", durSeq(2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ingest during fault = %v, want ErrDegraded", err)
	}

	// The probe keeps failing while the fault is armed.
	time.Sleep(25 * time.Millisecond)
	if !db.DegradedStatus().Degraded {
		t.Fatal("probe recovered with fault still armed")
	}

	// Clear the fault: the supervised loop restores writes on its own.
	db.SetWALFault(nil, nil)
	deadline := time.Now().Add(5 * time.Second)
	for db.DegradedStatus().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("probe never recovered after fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mustIngest(t, db, "b", durSeq(2))
}

func TestCheckpointFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	db := degradedDB(t, dir)
	defer db.Close()

	mustIngest(t, db, "a", durSeq(1))
	// Fault the rotation fsync: Checkpoint's rotate poisons the log and
	// the database must degrade rather than keep taking doomed writes.
	db.SetWALFault(nil, func() error { return errDisk })
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded with rotation fsync failing")
	}
	if !db.DegradedStatus().Degraded {
		t.Fatal("checkpoint fault did not degrade the database")
	}
	st, ok := db.WALStats()
	if !ok || st.CheckpointFailStreak != 1 || st.CheckpointFailures != 1 {
		t.Fatalf("WALStats = %+v, %v", st, ok)
	}

	db.SetWALFault(nil, nil)
	if err := db.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after recovery: %v", err)
	}
	if st, _ := db.WALStats(); st.CheckpointFailStreak != 0 {
		t.Fatalf("streak = %d after success", st.CheckpointFailStreak)
	}
}
