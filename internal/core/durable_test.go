package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seqrep/internal/seq"
)

// durSeq builds a small but non-trivial sequence (two bumps over a
// baseline) that exercises the full ingest pipeline.
func durSeq(seed int) seq.Sequence {
	s := make(seq.Sequence, 48)
	for i := range s {
		v := 98.0 + 0.1*float64(seed%7)
		v += 2.5 * math.Exp(-math.Pow(float64(i)-12, 2)/8)
		v += 1.5 * math.Exp(-math.Pow(float64(i)-34, 2)/6)
		s[i] = seq.Point{T: float64(i), V: v}
	}
	return s
}

func mustOpenDir(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatalf("OpenDir(%s): %v", dir, err)
	}
	return db
}

func TestOpenDirFreshReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	for i := 0; i < 3; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	if st, ok := db.WALStats(); !ok || st.Records != 3 {
		t.Fatalf("WALStats = %+v, %v; want 3 records", st, ok)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// No checkpoint ever ran: boot state comes entirely from the log.
	if _, err := os.Stat(filepath.Join(dir, SnapshotFileName)); !os.IsNotExist(err) {
		t.Fatalf("snapshot exists before any checkpoint: %v", err)
	}
	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 3 {
		t.Fatalf("recovered Len = %d, want 3", db2.Len())
	}
	rec := db2.Recovery()
	if rec.Replayed != 3 || rec.Applied != 3 || rec.Failed != 0 {
		t.Fatalf("Recovery = %+v", rec)
	}
	for i := 0; i < 3; i++ {
		if _, ok := db2.Record(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("r%d missing after recovery", i)
		}
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	for i := 0; i < 3; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st, ok := db.WALStats()
	if !ok || st.Records != 0 {
		t.Fatalf("after checkpoint WALStats = %+v; want empty log", st)
	}
	if st.LastCheckpoint.IsZero() {
		t.Fatal("LastCheckpoint not stamped")
	}
	// Post-checkpoint mutations land in the (now short) log.
	mustIngest(t, db, "r3", durSeq(3))
	mustIngest(t, db, "r4", durSeq(4))
	if err := db.Remove("r0"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 4 {
		t.Fatalf("recovered Len = %d, want 4", db2.Len())
	}
	rec := db2.Recovery()
	if rec.Replayed != 3 || rec.Applied != 3 {
		t.Fatalf("Recovery = %+v; want exactly the 3 post-checkpoint records replayed", rec)
	}
	if _, ok := db2.Record("r0"); ok {
		t.Fatal("r0 resurrected: the replayed remove was lost")
	}
	for _, id := range []string{"r1", "r2", "r3", "r4"} {
		if _, ok := db2.Record(id); !ok {
			t.Fatalf("%s missing after recovery", id)
		}
	}
	if st, _ := db2.WALStats(); st.LastCheckpoint.IsZero() {
		t.Fatal("boot did not adopt the snapshot time as LastCheckpoint")
	}
}

// TestReplayIdempotentOverlap simulates a crash in the checkpoint window
// after the snapshot was written but before the log was truncated: every
// log record is also in the snapshot, and replay must skip them all —
// no duplicate ingests.
func TestReplayIdempotentOverlap(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	for i := 0; i < 3; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	if err := db.SaveFile(filepath.Join(dir, SnapshotFileName), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 3 {
		t.Fatalf("recovered Len = %d, want 3", db2.Len())
	}
	rec := db2.Recovery()
	if rec.Replayed != 3 || rec.SkippedDuplicate != 3 || rec.Applied != 0 {
		t.Fatalf("Recovery = %+v; want all 3 skipped as duplicates", rec)
	}
}

// TestReplaySkipsRemoveOfAbsent covers the other overlap direction: the
// segment tier already reflects a remove that is still in the log (a
// checkpoint that committed its flush but never truncated).
func TestReplaySkipsRemoveOfAbsent(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	mustIngest(t, db, "victim", durSeq(1))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove("victim"); err != nil {
		t.Fatal(err)
	}
	// Crash-window flush: the tombstone lands in the segment tier, the
	// log still holds the remove. Keeping the old manifest LSN mirrors
	// the real window too — boot's covered-segment reclaim must not cut
	// the still-replaying record.
	entries, _, err := db.encodeDirty(db.swapDirty())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := json.Marshal(db.manifestMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.segs.Flush(entries, db.segs.LSN(), meta); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 0 {
		t.Fatalf("recovered Len = %d, want 0", db2.Len())
	}
	rec := db2.Recovery()
	if rec.SkippedMissing != 1 || rec.Applied != 0 {
		t.Fatalf("Recovery = %+v; want the remove skipped as missing", rec)
	}
}

// TestRecoverTornWALTail: garbage appended to the live segment (what a
// crash mid-append leaves) must not cost any acknowledged record.
func TestRecoverTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	mustIngest(t, db, "a", durSeq(1))
	mustIngest(t, db, "b", durSeq(2))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, WALDirName, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("wal segments: %v, %v", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", db2.Len())
	}
	// And the recovered database keeps writing durably.
	mustIngest(t, db2, "c", durSeq(3))
}

// TestCrashCutPrefixes cuts the WAL at a spread of byte offsets —
// including mid-frame — and requires every prefix to boot to exactly the
// records whose frames are wholly before the cut, with nothing
// duplicated and nothing partial. (The exhaustive every-offset sweep
// lives in internal/wal; this asserts the same property end-to-end
// through OpenDir.)
func TestCrashCutPrefixes(t *testing.T) {
	src := t.TempDir()
	db := mustOpenDir(t, src)
	const n = 3
	for i := 0; i < n; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(src, WALDirName, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("wal segments: %v, %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	// Walk the frames to find each record's end offset (13-byte segment
	// header, then crc u32 | blen u32 | body frames).
	var whole []int
	off := 13
	for off < len(data) {
		blen := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8 + blen
		whole = append(whole, off)
	}
	if len(whole) != n || off != len(data) {
		t.Fatalf("frame walk found %d records ending at %d (file %d bytes)", len(whole), off, len(data))
	}

	for cut := 0; cut <= len(data); cut += 11 {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, WALDirName), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, WALDirName, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		dbc := mustOpenDir(t, dir)
		want := 0
		for want < n && whole[want] <= cut {
			want++
		}
		if dbc.Len() != want {
			t.Fatalf("cut %d: Len = %d, want %d", cut, dbc.Len(), want)
		}
		for i := 0; i < want; i++ {
			if _, ok := dbc.Record(fmt.Sprintf("r%d", i)); !ok {
				t.Fatalf("cut %d: acknowledged r%d lost", cut, i)
			}
		}
		dbc.Close()
	}
}

// TestConcurrentIngestAndCheckpoint races writers against checkpoints
// (run under -race in CI): every acknowledged write must survive the
// final reboot, however the checkpoint windows interleaved.
func TestConcurrentIngestAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	const (
		writers = 4
		each    = 6
	)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		acked []string
	)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := fmt.Sprintf("w%d-%d", g, i)
				if err := db.Ingest(id, durSeq(g*each+i)); err != nil {
					t.Errorf("ingest %s: %v", id, err)
					return
				}
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
		}(g)
	}
	ckptDone := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 4 && err == nil; i++ {
			err = db.Checkpoint()
		}
		ckptDone <- err
	}()
	wg.Wait()
	if err := <-ckptDone; err != nil {
		t.Fatalf("concurrent checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != len(acked) {
		t.Fatalf("recovered Len = %d, want %d", db2.Len(), len(acked))
	}
	for _, id := range acked {
		if _, ok := db2.Record(id); !ok {
			t.Fatalf("acknowledged %s lost across checkpointed reboot", id)
		}
	}
}

func TestWALCodecRoundTrip(t *testing.T) {
	s := durSeq(5)
	payload, err := encodeWALIngest("some-id", s)
	if err != nil {
		t.Fatal(err)
	}
	id, got, err := decodeWALIngest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != "some-id" || len(got) != len(s) {
		t.Fatalf("decoded id %q, %d samples", id, len(got))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], s[i])
		}
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, _, err := decodeWALIngest(payload[:cut]); err == nil && cut < len(payload) {
			t.Fatalf("truncated ingest payload (%d of %d bytes) decoded", cut, len(payload))
		}
	}

	rp, err := encodeWALRemove("gone")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := decodeWALRemove(rp)
	if err != nil || rid != "gone" {
		t.Fatalf("remove round trip: %q, %v", rid, err)
	}
	if _, err := decodeWALRemove(rp[:1]); err == nil {
		t.Fatal("truncated remove payload decoded")
	}
}

func TestDurableValidation(t *testing.T) {
	if _, err := OpenDir("", Config{}); err == nil {
		t.Fatal("OpenDir(\"\") succeeded")
	}
	db := mustDB(t, Config{})
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a log-less database succeeded")
	}
	if _, ok := db.WALStats(); ok {
		t.Fatal("WALStats ok on a log-less database")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on a log-less database: %v", err)
	}
}

// TestWritesFailAfterClose: a closed durable database must refuse writes
// rather than acknowledge them without logging.
func TestWritesFailAfterClose(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDir(t, dir)
	mustIngest(t, db, "a", durSeq(1))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("b", durSeq(2)); err == nil {
		t.Fatal("Ingest after Close acknowledged")
	}
	if err := db.Remove("a"); err == nil {
		t.Fatal("Remove after Close acknowledged")
	}
	// The unacknowledged post-Close writes must not surface at boot.
	db2 := mustOpenDir(t, dir)
	defer db2.Close()
	if db2.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1", db2.Len())
	}
	if _, ok := db2.Record("a"); !ok {
		t.Fatal("a missing")
	}
}

// TestRemoveInvisibleUntilDurable pins the write-ahead ordering of
// Remove: the record must stay observable until the remove's log record
// is fsync-durable. Were it dropped from its shard first, a checkpoint
// in that window would snapshot the state without the record and
// truncate the covering ingest while no remove was yet logged — a crash
// then (or a failed append) loses an acknowledged ingest for a removal
// that was never acknowledged.
func TestRemoveInvisibleUntilDurable(t *testing.T) {
	db := mustOpenDir(t, t.TempDir())
	defer db.Close()
	mustIngest(t, db, "x", durSeq(1))

	// Hold the checkpoint lock: Remove's append→unlink window takes it
	// for reading, so the removal parks right before its WAL append —
	// exactly where a crash or checkpoint could interleave.
	db.ckptMu.Lock()
	done := make(chan error, 1)
	go func() { done <- db.Remove("x") }()

	sh := db.shardOf("x")
	deadline := time.Now().Add(5 * time.Second)
	for {
		sh.mu.RLock()
		_, parked := sh.pending["x"]
		sh.mu.RUnlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Remove never reached its write-ahead append")
		}
		time.Sleep(time.Millisecond)
	}
	// The removal is in flight but not yet durable: the record must
	// still be observable, and the in-flight removal must hold the id —
	// a duplicate Remove linearizes behind it and sees the id as gone.
	if _, ok := db.Record("x"); !ok {
		t.Fatal("record vanished before its remove was durable")
	}
	if err := db.Remove("x"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("concurrent duplicate Remove: %v, want ErrUnknownID", err)
	}
	select {
	case err := <-done:
		t.Fatalf("Remove returned while the checkpoint lock was held: %v", err)
	default:
	}

	db.ckptMu.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, ok := db.Record("x"); ok {
		t.Fatal("record still observable after Remove returned")
	}
	// The id is free again: a fresh ingest must succeed.
	mustIngest(t, db, "x", durSeq(2))
}
