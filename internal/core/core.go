// Package core assembles the substrates into the paper's system: a
// sequence database that stores compact function representations instead
// of raw samples and answers generalized approximate queries from those
// representations.
//
// The ingestion pipeline follows §4-§5: optional preprocessing (filtering,
// normalization), breaking into meaningful subsequences, fitting a
// representing function per subsequence, slope-sign symbolization, peak
// extraction, and inverted-file indexing of peak-to-peak intervals. Raw
// sequences are relegated to archival storage, consulted only by
// value-based queries that need full resolution.
package core

import (
	"fmt"
	"sort"
	"sync"

	"seqrep/internal/breaking"
	"seqrep/internal/feature"
	"seqrep/internal/filter"
	"seqrep/internal/fit"
	"seqrep/internal/index/inverted"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
	"seqrep/internal/store"
)

// Config parameterizes a DB. The zero value is usable: it yields the
// paper's defaults (interpolation breaking, byproduct representation,
// ε = 0.5, δ = 0.25, unit interval buckets, no preprocessing, no archive).
type Config struct {
	// Epsilon is the breaking tolerance ε (default 0.5; the paper used
	// 0.5 for temperature curves and 10 for ECGs).
	Epsilon float64
	// Delta is the slope-sign threshold δ of §4.4 (default 0.25, the
	// paper's choice).
	Delta float64
	// BucketWidth is the inverted-index bucket width for peak-interval
	// values (default 1, integer buckets as in Figure 10).
	BucketWidth float64
	// Breaker overrides the breaking algorithm (default: the Figure 8
	// template over interpolation lines with tolerance Epsilon).
	Breaker breaking.Breaker
	// Representer refits each segment for representation; nil keeps the
	// breaker's byproduct functions. The paper represents with regression
	// lines in its goal-post example (§4.4).
	Representer fit.Fitter
	// Preprocess is an optional pipeline applied before breaking (§7).
	Preprocess *filter.Chain
	// Archive optionally stores the raw sequences; required only by
	// value-based queries at full resolution.
	Archive store.Archive
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Epsilon == 0 {
		out.Epsilon = 0.5
	}
	if out.Delta == 0 {
		out.Delta = 0.25
	}
	if out.BucketWidth == 0 {
		out.BucketWidth = 1
	}
	if out.Breaker == nil {
		out.Breaker = breaking.Interpolation(out.Epsilon)
	}
	return out
}

// Record is everything the database keeps for one ingested sequence: the
// compact representation and the features derived from it. Raw samples are
// not part of the record.
type Record struct {
	ID      string
	N       int // original sample count
	Rep     *rep.FunctionSeries
	Profile *feature.Profile
}

// DB is the sequence database. It is safe for concurrent use.
type DB struct {
	cfg Config

	mu      sync.RWMutex
	records map[string]*Record
	ids     []string // sorted
	rrIndex *inverted.Index
	// symIndex groups sequence ids by their symbol string, so pattern
	// queries evaluate each distinct string once no matter how many
	// sequences share it.
	symIndex map[string][]string
}

// New creates a database from cfg (zero value = paper defaults).
func New(cfg Config) (*DB, error) {
	c := cfg.withDefaults()
	if c.Epsilon < 0 {
		return nil, fmt.Errorf("core: negative epsilon %g", c.Epsilon)
	}
	if c.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta %g", c.Delta)
	}
	ix, err := inverted.New(c.BucketWidth)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &DB{
		cfg:      c,
		records:  make(map[string]*Record),
		rrIndex:  ix,
		symIndex: make(map[string][]string),
	}, nil
}

// Config returns the database's effective configuration.
func (db *DB) Config() Config { return db.cfg }

// Len returns the number of ingested sequences.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// IDs returns all sequence ids in sorted order.
func (db *DB) IDs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.ids...)
}

// Record returns the stored record for id.
func (db *DB) Record(id string) (*Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.records[id]
	return r, ok
}

// Ingest runs the full pipeline on s and stores the result under id. The
// raw sequence goes to the archive (when configured) before preprocessing,
// so full resolution is never lost. Duplicate ids are rejected; Remove
// first to replace.
func (db *DB) Ingest(id string, s seq.Sequence) error {
	if id == "" {
		return fmt.Errorf("core: empty sequence id")
	}
	if len(s) == 0 {
		return fmt.Errorf("core: ingesting empty sequence %q", id)
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("core: ingesting %q: %w", id, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.records[id]; dup {
		return fmt.Errorf("core: duplicate sequence id %q", id)
	}

	if db.cfg.Archive != nil {
		if err := db.cfg.Archive.Put(id, s); err != nil {
			return fmt.Errorf("core: archiving %q: %w", id, err)
		}
	}

	work := s
	if db.cfg.Preprocess != nil {
		pre, err := db.cfg.Preprocess.Run(s)
		if err != nil {
			return fmt.Errorf("core: preprocessing %q: %w", id, err)
		}
		if err := pre.Validate(); err != nil {
			return fmt.Errorf("core: preprocessing %q produced invalid sequence: %w", id, err)
		}
		work = pre
	}

	segs, err := db.cfg.Breaker.Break(work)
	if err != nil {
		return fmt.Errorf("core: breaking %q: %w", id, err)
	}
	fs, err := rep.Build(work, segs, db.cfg.Representer)
	if err != nil {
		return fmt.Errorf("core: representing %q: %w", id, err)
	}
	profile, err := feature.Extract(fs, db.cfg.Delta)
	if err != nil {
		return fmt.Errorf("core: extracting features of %q: %w", id, err)
	}

	rec := &Record{ID: id, N: len(s), Rep: fs, Profile: profile}
	for pos, interval := range profile.Intervals {
		if err := db.rrIndex.Add(interval, inverted.Ref{ID: id, Pos: int32(pos)}); err != nil {
			return fmt.Errorf("core: indexing %q: %w", id, err)
		}
	}
	db.records[id] = rec
	i := sort.SearchStrings(db.ids, id)
	db.ids = append(db.ids, "")
	copy(db.ids[i+1:], db.ids[i:])
	db.ids[i] = id
	db.symIndex[profile.Symbols] = insertSorted(db.symIndex[profile.Symbols], id)
	return nil
}

// Remove deletes a sequence from the database, its interval postings, and
// the archive (when configured).
func (db *DB) Remove(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.records[id]
	if !ok {
		return fmt.Errorf("core: unknown sequence id %q", id)
	}
	delete(db.records, id)
	i := sort.SearchStrings(db.ids, id)
	db.ids = append(db.ids[:i], db.ids[i+1:]...)
	db.rrIndex.RemoveID(id)
	db.symIndex[rec.Profile.Symbols] = removeSorted(db.symIndex[rec.Profile.Symbols], id)
	if len(db.symIndex[rec.Profile.Symbols]) == 0 {
		delete(db.symIndex, rec.Profile.Symbols)
	}
	if db.cfg.Archive != nil {
		if err := db.cfg.Archive.Delete(id); err != nil {
			return fmt.Errorf("core: removing %q from archive: %w", id, err)
		}
	}
	return nil
}

// Raw retrieves the full-resolution sequence from the archive. It fails
// when the database was built without one.
func (db *DB) Raw(id string) (seq.Sequence, error) {
	if db.cfg.Archive == nil {
		return nil, fmt.Errorf("core: no archive configured")
	}
	return db.cfg.Archive.Get(id)
}

// Reconstruct evaluates the stored representation of id at its original
// sample positions — the approximate stand-in for Raw that needs no
// archive access.
func (db *DB) Reconstruct(id string) (seq.Sequence, error) {
	db.mu.RLock()
	rec, ok := db.records[id]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown sequence id %q", id)
	}
	return rec.Rep.Reconstruct()
}

// Stats summarizes the database for monitoring and the CLI.
type Stats struct {
	Sequences      int
	Samples        int // original samples represented
	Segments       int // stored function segments
	StoredFloats   int // total floats held by all representations
	SymbolGroups   int // distinct slope-symbol strings
	IntervalCount  int // postings in the interval index
	IntervalBucket int // occupied interval buckets
}

// Stats returns a snapshot of database-wide counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := Stats{
		Sequences:      len(db.records),
		SymbolGroups:   len(db.symIndex),
		IntervalCount:  db.rrIndex.Len(),
		IntervalBucket: db.rrIndex.Buckets(),
	}
	for _, rec := range db.records {
		st.Samples += rec.N
		st.Segments += rec.Rep.NumSegments()
		st.StoredFloats += rec.Rep.StoredFloats()
	}
	return st
}
