// Package core assembles the substrates into the paper's system: a
// sequence database that stores compact function representations instead
// of raw samples and answers generalized approximate queries from those
// representations.
//
// The ingestion pipeline follows §4-§5: optional preprocessing (filtering,
// normalization), breaking into meaningful subsequences, fitting a
// representing function per subsequence, slope-sign symbolization, peak
// extraction, and inverted-file indexing of peak-to-peak intervals. Raw
// sequences are relegated to archival storage, consulted only by
// value-based queries that need full resolution.
//
// Concurrency design (see docs/ARCHITECTURE.md): records live in
// lock-striped shards keyed by sequence id, so ingests of different
// sequences contend only on their shard; the pipeline itself (breaking,
// fitting, feature extraction) runs outside every lock. The global query
// indexes (sorted id list, interval inverted file, symbol groups) sit
// behind one separate RWMutex and are updated only after a record is
// committed to its shard. IngestBatch fans a workload across a worker
// pool, and the linear query scans (ValueQuery, ShapeQuery,
// DistanceQuery) partition the shards across the same number of workers.
package core

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"seqrep/internal/breaking"
	"seqrep/internal/feature"
	"seqrep/internal/filter"
	"seqrep/internal/fit"
	"seqrep/internal/index/inverted"
	"seqrep/internal/multires"
	"seqrep/internal/rep"
	"seqrep/internal/resident"
	"seqrep/internal/segment"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/wal"
)

// Config parameterizes a DB. The zero value is usable: it yields the
// paper's defaults (interpolation breaking, byproduct representation,
// ε = 0.5, δ = 0.25, unit interval buckets, no preprocessing, no archive,
// 16 record shards, GOMAXPROCS workers).
type Config struct {
	// Epsilon is the breaking tolerance ε (default 0.5; the paper used
	// 0.5 for temperature curves and 10 for ECGs).
	Epsilon float64
	// Delta is the slope-sign threshold δ of §4.4 (default 0.25, the
	// paper's choice).
	Delta float64
	// BucketWidth is the inverted-index bucket width for peak-interval
	// values (default 1, integer buckets as in Figure 10).
	BucketWidth float64
	// Breaker overrides the breaking algorithm (default: the Figure 8
	// template over interpolation lines with tolerance Epsilon).
	Breaker breaking.Breaker
	// Representer refits each segment for representation; nil keeps the
	// breaker's byproduct functions. The paper represents with regression
	// lines in its goal-post example (§4.4).
	Representer fit.Fitter
	// Preprocess is an optional pipeline applied before breaking (§7).
	Preprocess *filter.Chain
	// Archive optionally stores the raw sequences; required only by
	// value-based queries at full resolution.
	Archive store.Archive
	// Shards is the number of lock-striped record shards (default 16).
	// More shards reduce contention between concurrent ingests and
	// record lookups at a small fixed memory cost.
	Shards int
	// Workers bounds the concurrency of IngestBatch and of the parallel
	// query scans (default runtime.GOMAXPROCS(0)).
	Workers int
	// IndexCoeffs is the number of leading DFT coefficients kept per
	// sequence in the feature index that accelerates DistanceQuery (l2,
	// zl2 metrics) and ValueQuery through lower-bound candidate pruning
	// (default 8, i.e. 16-dimensional feature vectors; negative disables
	// the index and every query runs as a shard-parallel scan).
	IndexCoeffs int
	// IndexLeaf is the leaf size of the vantage-point trees the feature
	// index builds over each sequence-length group for sub-linear
	// candidate generation (default 16). Smaller leaves prune harder at
	// the cost of deeper trees; length groups below twice the leaf size
	// are scanned linearly. Negative disables the trees entirely, pinning
	// candidate generation to the linear columnar feature scan (the
	// pre-tree behaviour — useful as a benchmark baseline and as an
	// escape hatch).
	IndexLeaf int
	// SketchBlock is the block size of the per-record multiresolution
	// sketch behind progressive queries (default 16 samples per block;
	// negative disables sketches, pinning the progressive sketch tier to
	// uninformative bands). Smaller blocks band tighter at the cost of
	// more stored means per record.
	SketchBlock int
	// CompactThreshold is the on-disk segment count at which a checkpoint
	// triggers a full-merge compaction of the segment tier (OpenDir
	// databases only; default segment.DefaultCompactThreshold, negative
	// disables compaction — segments then accumulate one per checkpoint).
	CompactThreshold int
	// SegmentCacheBytes bounds the shared LRU through which record
	// payloads are read from on-disk segments (OpenDir databases only;
	// default 32 MiB, negative disables caching so every segment read
	// goes to disk).
	SegmentCacheBytes int64
	// MemoryBudget bounds the bytes of record representations held
	// resident in RAM (OpenDir databases only; <= 0 keeps every
	// representation resident — the pre-residency behavior). Under a
	// budget, ids, feature vectors and sketches stay resident (candidate
	// generation and the progressive sketch tier never touch disk) while
	// cold representation payloads are evicted and paged back in from
	// the segment tier on demand; dirty records (WAL-covered, not yet
	// checkpointed) are pinned resident until a checkpoint commits them.
	MemoryBudget int64
	// RecoveryProbeInterval is how often a degraded database (one whose
	// write-ahead log took an I/O fault, disabling writes — see
	// ErrDegraded) probes the disk for recovery and, on success, restores
	// write service (OpenDir databases only; default 2s, negative
	// disables the supervised probe — DB.Recover still works manually).
	RecoveryProbeInterval time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Epsilon == 0 {
		out.Epsilon = 0.5
	}
	if out.Delta == 0 {
		out.Delta = 0.25
	}
	if out.BucketWidth == 0 {
		out.BucketWidth = 1
	}
	if out.Breaker == nil {
		out.Breaker = breaking.Interpolation(out.Epsilon)
	}
	if out.Shards == 0 {
		out.Shards = 16
	}
	if out.Workers == 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.IndexCoeffs == 0 {
		out.IndexCoeffs = 8
	}
	if out.SketchBlock == 0 {
		out.SketchBlock = 16
	}
	if out.RecoveryProbeInterval == 0 {
		out.RecoveryProbeInterval = 2 * time.Second
	}
	return out
}

// Sentinel errors callers (the serving layer, CLIs) branch on with
// errors.Is; the wrapping message carries the offending id.
var (
	// ErrDuplicateID reports an Ingest under an id that already names a
	// stored or in-flight sequence.
	ErrDuplicateID = errors.New("duplicate sequence id")
	// ErrUnknownID reports an operation on an id the database does not
	// hold.
	ErrUnknownID = errors.New("unknown sequence id")
	// ErrStorage reports a server-side storage fault while answering a
	// query: the comparison form of a *stored* record could not be read
	// (archive read failure, missing raws, reconstruction failure) or a
	// raw sequence could not be written to or removed from the archive.
	// The request was fine; the data layer was not.
	ErrStorage = errors.New("storage fault")
	// ErrDegraded reports a write rejected because the database is in
	// storage-fault read-only mode: its write-ahead log took an append or
	// fsync error, after which no write can be made durable (the on-disk
	// log tail — and, per fsyncgate, the page cache behind it — can no
	// longer be trusted). Reads keep serving; writes fail fast with this
	// error until the supervised recovery probe (or a manual DB.Recover)
	// restores the log. The serving layer maps it to HTTP 503.
	ErrDegraded = errors.New("database degraded: storage fault, writes disabled")
)

// Record is everything the database keeps for one ingested sequence: the
// compact representation and the features derived from it. Raw samples are
// not part of the record.
//
// Everything except the representation pointer is immutable after commit
// and always resident. The representation itself is held behind an atomic
// pointer so the residency subsystem can evict it (store nil) and page it
// back in from the segment tier without replacing the Record object —
// index postings, shard entries and in-flight scans all keep pointing at
// the same record across any number of evict/fault-in cycles.
type Record struct {
	ID      string
	N       int // original sample count
	Profile *feature.Profile

	// rep is the function-series representation; nil while evicted
	// (cold). Use DB.materialize to read it — never assume it is
	// resident. The series itself is immutable; only the pointer moves.
	rep atomic.Pointer[rep.FunctionSeries]
	// repSegments/repFloats/repBytes cache the representation's
	// dimensions at build time so Stats and the residency accounting
	// work while the payload is cold.
	repSegments int
	repFloats   int
	repBytes    int64
	// hot is the CLOCK reference bit shared with the residency tracker:
	// every materialize sets it, the eviction sweep clears it, and its
	// address doubles as the record's identity token in the tracker.
	hot atomic.Bool

	// feats and zfeats are the record's DFT feature vectors over its
	// comparison form and the z-normalized comparison form, computed once
	// at build time for the feature index (nil when the index is disabled
	// or the comparison form could not be read — such records are never
	// pruned). Immutable after commit, like everything else here.
	feats  []float64
	zfeats []float64

	// sketch is the record's block-mean multiresolution sketch over the
	// same comparison form, built at ingest for the progressive query
	// cascade (nil when sketches are disabled or the comparison form
	// could not be read — such records get an uninformative band and are
	// never dismissed early).
	sketch *multires.Sketch
}

// setRep installs the representation and caches its dimensions. Called
// once at build/adopt/decode time, before the record is published.
func (r *Record) setRep(fs *rep.FunctionSeries) {
	r.repSegments = fs.NumSegments()
	r.repFloats = fs.StoredFloats()
	// The residency cost estimate: stored floats, per-segment struct
	// overhead, and the record's own fixed overhead.
	r.repBytes = int64(r.repFloats)*8 + int64(r.repSegments)*48 + 64
	r.rep.Store(fs)
}

// NumSegments reports how many function segments represent the sequence.
// It reads a build-time cache, so it works whether or not the
// representation is resident.
func (r *Record) NumSegments() int { return r.repSegments }

// StoredFloats reports how many floats the representation stores,
// cached at build time like NumSegments.
func (r *Record) StoredFloats() int { return r.repFloats }

// shard is one lock stripe of the record store. pending holds ids whose
// ingestion pipeline is in flight: the id is reserved (duplicate ingests
// fail fast) but no record is visible yet.
type shard struct {
	mu      sync.RWMutex
	records map[string]*Record
	pending map[string]struct{}
}

// reserve claims id for an in-flight ingest. It reports false when the id
// already names a stored or in-flight sequence.
func (sh *shard) reserve(id string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.records[id]; dup {
		return false
	}
	if _, dup := sh.pending[id]; dup {
		return false
	}
	sh.pending[id] = struct{}{}
	return true
}

// commit publishes the record built for a reserved id.
func (sh *shard) commit(rec *Record) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.pending, rec.ID)
	sh.records[rec.ID] = rec
}

// abort releases a reservation whose pipeline failed.
func (sh *shard) abort(id string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.pending, id)
}

// drop removes a committed record (or does nothing if absent) and reports
// whether it was present.
func (sh *shard) drop(id string) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.records[id]
	delete(sh.records, id)
	return ok
}

// DB is the sequence database. It is safe for concurrent use: any number
// of ingests, removals and queries may run in parallel.
type DB struct {
	cfg    Config
	seed   maphash.Seed
	shards []*shard

	// imu guards the global query indexes: the sorted id list, the
	// peak-interval inverted file, and the symbol-string groups. A
	// sequence enters these indexes only after its record is committed
	// to its shard, so index readers never observe a half-built record.
	// findex is the columnar, length-grouped DFT feature store behind
	// the query planner (nil when Config.IndexCoeffs < 0). Its group
	// locks are leaf locks: they may be taken while holding imu (link)
	// but never the other way around; queries take them alone.
	findex *featIndex

	// gen counts committed mutations (Ingest, Remove, snapshot adoption).
	// It only ever grows, so an observer holding a generation number can
	// tell whether the database has changed since — the invalidation
	// signal behind the serving layer's result cache.
	gen atomic.Uint64

	// Durable write path (OpenDir; nil/zero otherwise). wal is the
	// write-ahead log every Ingest/Remove appends to — and waits for the
	// fsync — before its in-memory commit. ckptMu brackets each
	// append→commit window for reading; Checkpoint takes it exclusively
	// around the log rotation so every record in a sealed (about to be
	// flushed and truncated) segment is committed in memory first.
	// ckptRun serializes whole checkpoints; lastCkpt, ckptFails, ckptErr
	// and recovery feed health reporting.
	wal      *wal.WAL
	dataDir  string
	ckptMu   sync.RWMutex
	ckptRun  sync.Mutex
	lastCkpt atomic.Pointer[time.Time]
	recovery RecoveryStats

	// segs is the on-disk segment tier checkpoints flush into (OpenDir
	// only). dirty is the id set mutated since the last checkpoint — true
	// for a live upsert, false for a removal that must become a tombstone
	// — making checkpoint cost O(delta); nil disables tracking (non-
	// durable databases, and the boot window while segments are adopted).
	// dirtyMu guards the map itself: writers mark while holding ckptMu
	// only for *reading*, so concurrent marks race with each other even
	// though they cannot race the checkpoint's swap.
	segs       *segment.Store
	dirtyMu    sync.Mutex
	dirty      map[string]bool
	// res is the residency tracker bounding resident representation
	// bytes (OpenDir with Config.MemoryBudget > 0 only; nil keeps every
	// representation resident). See residency.go. Lock order: tracker
	// calls may take a shard read lock (the eviction callback) but never
	// dirtyMu or imu, and no tracker method is called while holding
	// dirtyMu or a shard lock.
	res        *resident.Tracker
	ckptFails  atomic.Uint64
	ckptStreak atomic.Uint64 // consecutive checkpoint failures; reset on success
	ckptErr    atomic.Pointer[string]

	// Storage-fault read-only mode (degraded.go): degraded flips when a
	// WAL append/fsync fault poisons the log; writes then fail fast with
	// ErrDegraded while reads keep serving. degCause/degSince describe
	// the episode, degTotal/recoveries count transitions, and the probe
	// fields run the supervised disk-recovery loop OpenDir arms.
	degraded   atomic.Bool
	degCause   atomic.Pointer[string]
	degSince   atomic.Pointer[time.Time]
	degTotal   atomic.Uint64
	recoveries atomic.Uint64
	probeStop  chan struct{}
	probeHalt  sync.Once
	probeWG    sync.WaitGroup

	imu     sync.RWMutex
	ids     []string // sorted
	rrIndex *inverted.Index
	// symIndex groups sequence ids by their symbol string, so pattern
	// queries evaluate each distinct string once no matter how many
	// sequences share it.
	symIndex map[string][]string
}

// New creates a database from cfg (zero value = paper defaults).
func New(cfg Config) (*DB, error) {
	c := cfg.withDefaults()
	if c.Epsilon < 0 {
		return nil, fmt.Errorf("core: negative epsilon %g", c.Epsilon)
	}
	if c.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta %g", c.Delta)
	}
	if c.Shards < 0 {
		return nil, fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if c.Workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", c.Workers)
	}
	ix, err := inverted.New(c.BucketWidth)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	shards := make([]*shard, c.Shards)
	for i := range shards {
		shards[i] = &shard{
			records: make(map[string]*Record),
			pending: make(map[string]struct{}),
		}
	}
	db := &DB{
		cfg:      c,
		seed:     maphash.MakeSeed(),
		shards:   shards,
		rrIndex:  ix,
		symIndex: make(map[string][]string),
	}
	if c.IndexCoeffs > 0 {
		db.findex = newFeatIndex(c.IndexCoeffs, c.IndexLeaf)
	}
	return db, nil
}

// shardOf maps a sequence id onto its lock stripe.
func (db *DB) shardOf(id string) *shard {
	return db.shards[maphash.String(db.seed, id)%uint64(len(db.shards))]
}

// Config returns the database's effective configuration.
func (db *DB) Config() Config { return db.cfg }

// Generation returns the database's mutation generation: a counter bumped
// by every committed Ingest, Remove and snapshot adoption. Two equal
// generations bracket a span in which no write was committed, so any
// derived result (e.g. a cached query answer) computed at that generation
// is still valid; a change invalidates it.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// Len returns the number of ingested sequences.
func (db *DB) Len() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		n += len(sh.records)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns all fully indexed sequence ids in sorted order.
func (db *DB) IDs() []string {
	db.imu.RLock()
	defer db.imu.RUnlock()
	return append([]string(nil), db.ids...)
}

// Record returns the stored record for id.
func (db *DB) Record(id string) (*Record, bool) {
	sh := db.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.records[id]
	return r, ok
}

// build runs the ingestion pipeline (archive, preprocess, break,
// represent, extract) without touching any lock.
func (db *DB) build(id string, s seq.Sequence) (*Record, error) {
	if db.cfg.Archive != nil {
		if err := db.cfg.Archive.Put(id, s); err != nil {
			// The request was fine; the archive medium was not. The
			// ErrStorage wrap classifies it server-side as a 500, never a
			// client fault.
			return nil, fmt.Errorf("core: archiving %q: %w: %w", id, ErrStorage, err)
		}
	}

	work := s
	if db.cfg.Preprocess != nil {
		pre, err := db.cfg.Preprocess.Run(s)
		if err != nil {
			return nil, fmt.Errorf("core: preprocessing %q: %w", id, err)
		}
		if err := pre.Validate(); err != nil {
			return nil, fmt.Errorf("core: preprocessing %q produced invalid sequence: %w", id, err)
		}
		work = pre
	}

	segs, err := db.cfg.Breaker.Break(work)
	if err != nil {
		return nil, fmt.Errorf("core: breaking %q: %w", id, err)
	}
	fs, err := rep.Build(work, segs, db.cfg.Representer)
	if err != nil {
		return nil, fmt.Errorf("core: representing %q: %w", id, err)
	}
	profile, err := feature.Extract(fs, db.cfg.Delta)
	if err != nil {
		return nil, fmt.Errorf("core: extracting features of %q: %w", id, err)
	}
	rec := &Record{ID: id, N: len(s), Profile: profile}
	rec.setRep(fs)
	if db.findex != nil || db.cfg.SketchBlock > 0 {
		// The DFT feature vectors and the progressive sketch are part of
		// the build so they, too, run outside every lock; s is the raw
		// sequence just archived, saving the archive round-trip.
		if vals, ok := db.comparisonValues(rec, s); ok {
			if db.findex != nil {
				db.findex.computeFeatures(rec, vals)
			}
			if db.cfg.SketchBlock > 0 {
				rec.sketch = multires.BuildSketch(vals, db.cfg.SketchBlock)
			}
		}
	}
	return rec, nil
}

// link publishes a committed record to the global query indexes. On an
// indexing error it removes the partial postings again so the indexes
// stay coherent.
func (db *DB) link(rec *Record) error {
	db.imu.Lock()
	defer db.imu.Unlock()
	for pos, interval := range rec.Profile.Intervals {
		if err := db.rrIndex.Add(interval, inverted.Ref{ID: rec.ID, Pos: int32(pos)}); err != nil {
			db.rrIndex.RemoveID(rec.ID)
			return fmt.Errorf("core: indexing %q: %w", rec.ID, err)
		}
	}
	db.ids = insertSorted(db.ids, rec.ID)
	db.symIndex[rec.Profile.Symbols] = insertSorted(db.symIndex[rec.Profile.Symbols], rec.ID)
	if db.findex != nil {
		db.findex.add(rec)
	}
	db.gen.Add(1)
	// Register the representation with the residency tracker. A record
	// about to be marked dirty is admitted pinned in the same tracker
	// critical section: its payload is not in the segment tier yet, so
	// eviction must not touch it until a checkpoint flushes it (the
	// checkpoint unpins after its manifest commit). During boot adoption
	// dirty tracking is off and the payload came from the tier, so the
	// record is admitted clean — immediately evictable, which bounds
	// resident bytes while the tier streams in.
	if db.res != nil {
		db.res.Admit(rec.ID, rec.repBytes, &rec.hot, db.dirtyTracking())
	}
	// The record is now committed: mark it for the next checkpoint's
	// delta flush. For WAL'd writes this runs inside the caller's ckptMu
	// read window, so the mark lands in the same dirty epoch as the log
	// record (the checkpoint's rotate+swap cannot fall between them).
	db.markDirty(rec.ID, true)
	return nil
}

// Ingest runs the full pipeline on s and stores the result under id. The
// raw sequence goes to the archive (when configured) before preprocessing,
// so full resolution is never lost. Duplicate ids are rejected; Remove
// first to replace.
//
// The pipeline runs outside every lock: concurrent ingests of different
// sequences proceed in parallel, serializing only on the brief shard and
// index updates at the end.
func (db *DB) Ingest(id string, s seq.Sequence) error {
	_, err := db.IngestRecord(id, s)
	return err
}

// IngestRecord is Ingest returning the committed record, for callers
// that report on what was stored (the serving layer) without re-reading
// shared state — a lookup by id after Ingest returns can already observe
// a concurrent removal or replacement.
func (db *DB) IngestRecord(id string, s seq.Sequence) (*Record, error) {
	if id == "" {
		return nil, fmt.Errorf("core: empty sequence id")
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("core: ingesting empty sequence %q", id)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: ingesting %q: %w", id, err)
	}
	if err := db.writable(); err != nil {
		// Fail fast before the pipeline runs: a degraded database cannot
		// make the write durable, so spending CPU on it only deepens the
		// overload that usually accompanies a storage fault.
		return nil, err
	}
	sh := db.shardOf(id)
	if !sh.reserve(id) {
		return nil, fmt.Errorf("core: %w %q", ErrDuplicateID, id)
	}
	rec, err := db.build(id, s)
	if err != nil {
		sh.abort(id)
		return nil, err
	}
	if db.wal != nil {
		// Write-ahead: the operation is fsync-durable before the commit
		// that makes it observable, so an acknowledged ingest can always
		// be replayed. ckptMu (read) spans append→commit: a checkpoint
		// may not seal this record away into a truncatable segment until
		// the commit it describes is snapshot-visible.
		payload, err := encodeWALIngest(id, s)
		if err != nil {
			sh.abort(id)
			return nil, err
		}
		db.ckptMu.RLock()
		if err := db.walAppend(walOpIngest, payload); err != nil {
			db.ckptMu.RUnlock()
			sh.abort(id)
			return nil, err
		}
		defer db.ckptMu.RUnlock()
	}
	sh.commit(rec)
	if err := db.link(rec); err != nil {
		sh.drop(id)
		return nil, err
	}
	return rec, nil
}

// BatchItem names one sequence of a batch ingest.
type BatchItem struct {
	ID  string
	Seq seq.Sequence
}

// ItemError ties one failed batch item to its position and id, so batch
// callers (the serving layer, CLI reporting) can surface structured
// per-item failures instead of one flattened string.
type ItemError struct {
	// Index is the item's position in the submitted batch.
	Index int
	// ID is the sequence id the item carried.
	ID string
	// Err is the underlying ingestion error.
	Err error
}

// Error implements error.
func (e *ItemError) Error() string {
	return fmt.Sprintf("item %d (%q): %v", e.Index, e.ID, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ItemError) Unwrap() error { return e.Err }

// IngestBatch ingests many sequences concurrently through a pool of
// Config.Workers workers. It returns the number of sequences successfully
// ingested and an error joining every per-item failure (each a *ItemError,
// inspectable via errors.As). Items are independent: one failing item does
// not stop the others. Callers that need the failures individually should
// use IngestBatchItems.
func (db *DB) IngestBatch(items []BatchItem) (int, error) {
	n, itemErrs := db.IngestBatchItems(items)
	errs := make([]error, len(itemErrs))
	for i, ie := range itemErrs {
		errs[i] = ie
	}
	return n, errors.Join(errs...)
}

// IngestBatchItems is IngestBatch with structured failures: it returns the
// number of sequences successfully ingested and one *ItemError per failed
// item, ordered by batch position.
func (db *DB) IngestBatchItems(items []BatchItem) (int, []*ItemError) {
	if len(items) == 0 {
		return 0, nil
	}
	var ok atomic.Int64
	errs := make([]*ItemError, len(items))
	db.forEachClaimed(len(items), func(i int) {
		if err := db.Ingest(items[i].ID, items[i].Seq); err != nil {
			errs[i] = &ItemError{Index: i, ID: items[i].ID, Err: err}
			return
		}
		ok.Add(1)
	})
	failed := make([]*ItemError, 0, len(items)-int(ok.Load()))
	for _, ie := range errs {
		if ie != nil {
			failed = append(failed, ie)
		}
	}
	return int(ok.Load()), failed
}

// forEachClaimed runs fn over the indices [0, n), fanned across up to
// Config.Workers goroutines that claim the next index from a shared
// counter — the one worker-pool primitive behind IngestBatch and the
// parallel query scans.
func (db *DB) forEachClaimed(n int, fn func(i int)) {
	workers := min(db.cfg.Workers, n)
	if workers < 1 {
		workers = 1
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Remove deletes a sequence from the database, its interval postings, and
// the archive (when configured). While the unlink is in flight the id is
// held in its shard's pending set, so a concurrent Ingest of the same id
// fails with the duplicate error rather than interleaving with the
// removal; once Remove returns, the id is free to reuse.
func (db *DB) Remove(id string) error {
	if err := db.writable(); err != nil {
		return err
	}
	sh := db.shardOf(id)
	sh.mu.Lock()
	rec, ok := sh.records[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("core: %w %q", ErrUnknownID, id)
	}
	if _, busy := sh.pending[id]; busy {
		// Another Remove of this id is in flight (an ingest cannot be:
		// reserve fails while the record is stored). Linearize behind it.
		sh.mu.Unlock()
		return fmt.Errorf("core: %w %q", ErrUnknownID, id)
	}
	sh.pending[id] = struct{}{}
	sh.mu.Unlock()
	defer sh.abort(id) // release the hold when the unlink is done

	if db.wal != nil {
		// Write-ahead, mirroring Ingest: the removal is fsync-durable
		// before it becomes observable. The record stays in its shard
		// (pending blocks re-ingest) until the log record lands — were it
		// dropped first, a checkpoint in that window would snapshot the
		// state without the record and truncate the covering ingest while
		// no remove was yet logged, so a crash (or a failed append) could
		// lose the acknowledged ingest for a removal never acknowledged.
		// ckptMu (read) then spans append→unlink, as in Ingest.
		payload, err := encodeWALRemove(id)
		if err != nil {
			return err
		}
		db.ckptMu.RLock()
		if err := db.walAppend(walOpRemove, payload); err != nil {
			db.ckptMu.RUnlock()
			return err
		}
		defer db.ckptMu.RUnlock()
	}

	sh.drop(id)
	// Withdraw the record from the residency tracker. The ref pointer
	// scopes the drop to exactly this record object: a later re-ingest
	// under the same id carries a different ref, so a racing stale drop
	// cannot touch the successor's entry.
	db.res.Drop(id, &rec.hot)

	db.imu.Lock()
	db.ids = removeSorted(db.ids, id)
	db.rrIndex.RemoveID(id)
	syms := rec.Profile.Symbols
	db.symIndex[syms] = removeSorted(db.symIndex[syms], id)
	if len(db.symIndex[syms]) == 0 {
		delete(db.symIndex, syms)
	}
	if db.findex != nil {
		db.findex.remove(rec)
	}
	db.gen.Add(1)
	db.imu.Unlock()

	// Mark the removal for the next checkpoint (a tombstone in the delta
	// flush). As in link, the WAL'd path runs this inside the ckptMu read
	// window taken above, pinning the mark to the log record's epoch.
	db.markDirty(id, false)

	if db.cfg.Archive != nil {
		if err := db.cfg.Archive.Delete(id); err != nil {
			return fmt.Errorf("core: removing %q from archive: %w: %w", id, ErrStorage, err)
		}
	}
	return nil
}

// Raw retrieves the full-resolution sequence from the archive. It fails
// when the database was built without one.
func (db *DB) Raw(id string) (seq.Sequence, error) {
	if db.cfg.Archive == nil {
		return nil, fmt.Errorf("core: no archive configured")
	}
	return db.cfg.Archive.Get(id)
}

// Reconstruct evaluates the stored representation of id at its original
// sample positions — the approximate stand-in for Raw that needs no
// archive access.
func (db *DB) Reconstruct(id string) (seq.Sequence, error) {
	rec, ok := db.Record(id)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownID, id)
	}
	fs, err := db.materialize(rec)
	if err != nil {
		return nil, err
	}
	return fs.Reconstruct()
}

// Stats summarizes the database for monitoring and the CLI.
type Stats struct {
	Sequences      int
	Samples        int // original samples represented
	Segments       int // stored function segments
	StoredFloats   int // total floats held by all representations
	SymbolGroups   int // distinct slope-symbol strings
	IntervalCount  int // postings in the interval index
	IntervalBucket int // occupied interval buckets
	Shards         int // lock stripes in the record store
	IndexCoeffs    int // DFT coefficients per feature vector (0 = index disabled)
	FeatureIndexed int // sequences carrying feature vectors in the query-planner index
}

// Stats returns a snapshot of database-wide counters. Counters are read
// shard by shard, so under concurrent writes the snapshot is per-shard
// (not globally) consistent.
func (db *DB) Stats() Stats {
	db.imu.RLock()
	st := Stats{
		SymbolGroups:   len(db.symIndex),
		IntervalCount:  db.rrIndex.Len(),
		IntervalBucket: db.rrIndex.Buckets(),
		Shards:         len(db.shards),
	}
	db.imu.RUnlock()
	if db.findex != nil {
		st.IndexCoeffs = db.findex.k
		st.FeatureIndexed = db.findex.indexedCount()
	}
	for _, sh := range db.shards {
		sh.mu.RLock()
		st.Sequences += len(sh.records)
		for _, rec := range sh.records {
			st.Samples += rec.N
			st.Segments += rec.NumSegments()
			st.StoredFloats += rec.StoredFloats()
		}
		sh.mu.RUnlock()
	}
	return st
}

// snapshotRecords copies each shard's record pointers, shard by shard,
// for lock-free scanning. Records are immutable after commit, so the
// snapshot is safe to read without further locking.
func (db *DB) snapshotRecords() [][]*Record {
	out := make([][]*Record, len(db.shards))
	for i, sh := range db.shards {
		sh.mu.RLock()
		recs := make([]*Record, 0, len(sh.records))
		for _, rec := range sh.records {
			recs = append(recs, rec)
		}
		sh.mu.RUnlock()
		out[i] = recs
	}
	return out
}
