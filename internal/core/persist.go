package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"seqrep/internal/feature"
	"seqrep/internal/multires"
	"seqrep/internal/rep"
	"seqrep/internal/store"
)

// Database snapshot format. Representations and the query-planner feature
// vectors are persisted — the symbol/interval indexes are cheap to rebuild
// and doing so guarantees a loaded database always agrees with its
// configuration, but the feature vectors are kept because they may derive
// from archived raws the loading process cannot necessarily re-read (and
// reloading must not change what the planner prunes).
//
//	magic   "SDB3" (4 bytes)
//	epsilon f64
//	delta   f64
//	bucket  f64
//	icoeffs i64 (IndexCoeffs; <= 0 means the feature index was disabled)
//	fsource u8  (comparison source of the feature vectors: featSource*)
//	sblock  i64 (SketchBlock; <= 0 means sketches were disabled)
//	ssource u8  (comparison source of the sketches: featSource*)
//	count   u32
//	per record:
//	  idLen u16, id bytes
//	  blobLen u32, FunctionSeries blob
//	  featLen u32, featLen f64s   (0 = record had no feature vector)
//	  zfeatLen u32, zfeatLen f64s
//	  sketch  u8 (0 = absent); if 1:
//	    meanLen u32, meanLen f64s, r1 f64, r2 f64, rinf f64   (plain)
//	    zmeanLen u32, zmeanLen f64s, zr1 f64, zr2 f64, zrinf f64
//
// Loading also accepts the legacy "SDB2" layout (no sketch block or
// per-record sketches; sketches are rebuilt from each record's comparison
// form) and "SDB1" (no icoeffs and no feature vectors either; both are
// rebuilt).
var (
	dbMagic   = [4]byte{'S', 'D', 'B', '3'}
	dbMagicV2 = [4]byte{'S', 'D', 'B', '2'}
	dbMagicV1 = [4]byte{'S', 'D', 'B', '1'}
)

// Feature vectors lower-bound distances against the comparison form they
// were computed from, so a snapshot records which source that was. A
// load whose configuration implies a different source must rebuild the
// vectors — restoring them verbatim would prune against one form while
// verifying against another, which can falsely dismiss true matches.
const (
	featSourceNone    = 0 // index disabled, no vectors
	featSourceArchive = 1 // archived raw samples
	featSourceRecon   = 2 // representation reconstructions
)

// featSource names the comparison source the db's vectors derive from.
func (db *DB) featSource() byte {
	switch {
	case db.findex == nil:
		return featSourceNone
	case db.cfg.Archive != nil:
		return featSourceArchive
	default:
		return featSourceRecon
	}
}

// sketchSource names the comparison source the db's progressive sketches
// derive from — the same soundness rule as featSource: a sketch bands
// distances against the form it summarized, so restoring one against a
// different comparison form could dismiss true matches.
func (db *DB) sketchSource() byte {
	switch {
	case db.cfg.SketchBlock <= 0:
		return featSourceNone
	case db.cfg.Archive != nil:
		return featSourceArchive
	default:
		return featSourceRecon
	}
}

// SaveTo writes a snapshot of every stored representation and its feature
// vectors. The snapshot is a point-in-time copy: records are collected
// from the sorted id list first, so a save running concurrently with
// writes sees each sequence either fully or not at all.
func (db *DB) SaveTo(w io.Writer) error {
	recs := make([]*Record, 0, db.Len())
	for _, id := range db.IDs() {
		if rec, ok := db.Record(id); ok {
			recs = append(recs, rec)
		}
	}
	// Materialize every representation before the record count is
	// written: under a memory budget some may be cold, and a record
	// removed mid-save must be dropped from the snapshot here, while the
	// count can still exclude it.
	series := make([]*rep.FunctionSeries, 0, len(recs))
	live := recs[:0]
	for _, rec := range recs {
		fs, err := db.materialize(rec)
		if err != nil {
			if err = db.verifyReadError(rec, err); err != nil {
				return fmt.Errorf("core: save %q: %w", rec.ID, err)
			}
			continue // removed mid-save
		}
		live = append(live, rec)
		series = append(series, fs)
	}
	recs = live
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(dbMagic[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	var f64 [8]byte
	for _, v := range []float64{db.cfg.Epsilon, db.cfg.Delta, db.cfg.BucketWidth} {
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
		if _, err := bw.Write(f64[:]); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	icoeffs := int64(db.cfg.IndexCoeffs)
	if db.findex == nil {
		icoeffs = -1
	}
	binary.LittleEndian.PutUint64(f64[:], uint64(icoeffs))
	if _, err := bw.Write(f64[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := bw.WriteByte(db.featSource()); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	sblock := int64(db.cfg.SketchBlock)
	if sblock <= 0 {
		sblock = -1
	}
	binary.LittleEndian.PutUint64(f64[:], uint64(sblock))
	if _, err := bw.Write(f64[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if err := bw.WriteByte(db.sketchSource()); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(recs)))
	if _, err := bw.Write(u32[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	for i, rec := range recs {
		id := rec.ID
		if len(id) > math.MaxUint16 {
			return fmt.Errorf("core: save: id %q too long", id[:32])
		}
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(id)))
		if _, err := bw.Write(u16[:]); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		if _, err := bw.WriteString(id); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		body, err := encodeRecordPayload(series[i], rec)
		if err != nil {
			return fmt.Errorf("core: save %q: %w", id, err)
		}
		if _, err := bw.Write(body); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// encodeRecordPayload serializes one record's body — the per-record
// section of the snapshot format minus the id prefix:
//
//	blobLen u32 | FunctionSeries blob | featLen u32 | feats |
//	zfeatLen u32 | zfeats | sketch marker (+ sketch halves)
//
// The same bytes are a record's payload in an on-disk segment
// (internal/segment), so snapshot loading and segment boot share one
// decoder and can never drift.
// fs is the record's materialized representation — callers resolve it
// (hot pointer or fault-in) so encoding itself never touches disk.
func encodeRecordPayload(fs *rep.FunctionSeries, rec *Record) ([]byte, error) {
	blob, err := fs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	var u32 [4]byte
	var f64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(blob)))
	bw.Write(u32[:])
	bw.Write(blob)
	for _, vec := range [][]float64{rec.feats, rec.zfeats} {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(vec)))
		bw.Write(u32[:])
		for _, v := range vec {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
			bw.Write(f64[:])
		}
	}
	if err := saveSketch(bw, rec.sketch); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeRecordPayload parses a body written by encodeRecordPayload.
// restoreVectors/restoreSketches mirror Load's comparison-source
// soundness rule: when false, the stored vectors (or sketch) are parsed
// but discarded so adopt rebuilds them from this configuration's
// comparison form.
func decodeRecordPayload(db *DB, id string, payload []byte, restoreVectors, restoreSketches bool) (*rep.FunctionSeries, []float64, []float64, *multires.Sketch, error) {
	br := bytes.NewReader(payload)
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: record %q blob length: %w", id, err)
	}
	blobLen := binary.LittleEndian.Uint32(u32[:])
	const maxBlob = 1 << 30
	if blobLen > maxBlob {
		return nil, nil, nil, nil, fmt.Errorf("core: record %q: implausible blob size %d", id, blobLen)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: record %q blob: %w", id, err)
	}
	var fs rep.FunctionSeries
	if err := fs.UnmarshalBinary(blob); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: record %q: %w", id, err)
	}
	feats, err := loadVector(br, db, id)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	zfeats, err := loadVector(br, db, id)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if !restoreVectors {
		feats, zfeats = nil, nil
	}
	sk, err := loadSketch(br, id, fs.N, db.cfg.SketchBlock)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if !restoreSketches {
		sk = nil
	}
	if br.Len() != 0 {
		return nil, nil, nil, nil, fmt.Errorf("core: record %q: %d trailing payload bytes", id, br.Len())
	}
	return &fs, feats, zfeats, sk, nil
}

// SaveFile writes a snapshot to path atomically: the bytes go to a
// temporary file in path's directory (so the final step is a same-
// filesystem rename) and the destination is replaced only after the write
// fully succeeds. A failure mid-write leaves any existing snapshot at path
// untouched and removes the temporary file.
//
// wrap, when non-nil, decorates the underlying writer — the hook the
// fault-injection and accounting tests use (compare store.CountingArchive);
// production callers pass nil.
func (db *DB) SaveFile(path string, wrap func(io.Writer) io.Writer) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var w io.Writer = tmp
	if wrap != nil {
		w = wrap(tmp)
	}
	if err = db.SaveTo(w); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	// The rename put the snapshot's name into the directory, but that
	// entry lives in directory metadata: without syncing the directory a
	// power loss can forget the rename even though the file's bytes were
	// fsync'd above.
	if err = store.SyncDir(dir); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a snapshot file written by SaveFile into a fresh
// database (see Load for how cfg combines with the stored parameters).
func LoadFile(path string, cfg Config) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, cfg)
}

// Load reads a snapshot into a fresh database. The snapshot's scalar
// parameters (ε, δ, bucket width, index coefficient count) are restored;
// breaker, representer, preprocessing and archive come from cfg since
// they are code, not data. Features and the interval index are rebuilt
// from the representations; the query-planner feature vectors are
// restored verbatim (current snapshots) or rebuilt from each record's
// comparison form (legacy SDB1 snapshots).
//
// Snapshots do not carry raw sequences: those live in the archive. When
// cfg supplies a persistent archive (e.g. a FileArchive over the same
// directory as before), value queries keep working at full resolution;
// with a fresh empty archive they fail for ids the archive lacks.
func Load(r io.Reader, cfg Config) (*DB, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: load magic: %w", err)
	}
	legacy := magic == dbMagicV1
	v2 := magic == dbMagicV2
	if magic != dbMagic && !v2 && !legacy {
		return nil, fmt.Errorf("core: bad snapshot magic %q", magic)
	}
	var f64 [8]byte
	scalars := make([]float64, 3)
	for i := range scalars {
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return nil, fmt.Errorf("core: load scalars: %w", err)
		}
		scalars[i] = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
	}
	cfg.Epsilon, cfg.Delta, cfg.BucketWidth = scalars[0], scalars[1], scalars[2]
	var source byte
	if !legacy {
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return nil, fmt.Errorf("core: load index coefficients: %w", err)
		}
		icoeffs := int64(binary.LittleEndian.Uint64(f64[:]))
		const maxCoeffs = 1 << 20
		if icoeffs > maxCoeffs {
			return nil, fmt.Errorf("core: implausible index coefficient count %d", icoeffs)
		}
		if icoeffs <= 0 {
			cfg.IndexCoeffs = -1
		} else {
			cfg.IndexCoeffs = int(icoeffs)
		}
		var b [1]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, fmt.Errorf("core: load feature source: %w", err)
		}
		source = b[0]
		if source > featSourceRecon {
			return nil, fmt.Errorf("core: unknown feature-vector source %d", source)
		}
	}
	var ssource byte
	hasSketches := magic == dbMagic
	if hasSketches {
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return nil, fmt.Errorf("core: load sketch block: %w", err)
		}
		sblock := int64(binary.LittleEndian.Uint64(f64[:]))
		const maxBlock = 1 << 20
		if sblock > maxBlock {
			return nil, fmt.Errorf("core: implausible sketch block size %d", sblock)
		}
		if sblock <= 0 {
			cfg.SketchBlock = -1
		} else {
			cfg.SketchBlock = int(sblock)
		}
		var b [1]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return nil, fmt.Errorf("core: load sketch source: %w", err)
		}
		ssource = b[0]
		if ssource > featSourceRecon {
			return nil, fmt.Errorf("core: unknown sketch source %d", ssource)
		}
	}
	db, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Stored vectors are only sound against the comparison form this
	// configuration will verify with; on a source mismatch (archive added
	// or dropped since the save) they are discarded and rebuilt by adopt.
	// The same rule governs the progressive sketches.
	restoreVectors := source == db.featSource()
	restoreSketches := hasSketches && ssource == db.sketchSource()

	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("core: load count: %w", err)
	}
	count := binary.LittleEndian.Uint32(u32[:])
	const maxRecords = 1 << 24
	if count > maxRecords {
		return nil, fmt.Errorf("core: implausible record count %d", count)
	}
	for i := uint32(0); i < count; i++ {
		var u16 [2]byte
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return nil, fmt.Errorf("core: load record %d id length: %w", i, err)
		}
		idLen := binary.LittleEndian.Uint16(u16[:])
		idBytes := make([]byte, idLen)
		if _, err := io.ReadFull(br, idBytes); err != nil {
			return nil, fmt.Errorf("core: load record %d id: %w", i, err)
		}
		id := string(idBytes)
		if id == "" {
			return nil, fmt.Errorf("core: load record %d: empty id", i)
		}
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, fmt.Errorf("core: load %q blob length: %w", id, err)
		}
		blobLen := binary.LittleEndian.Uint32(u32[:])
		const maxBlob = 1 << 30
		if blobLen > maxBlob {
			return nil, fmt.Errorf("core: load %q: implausible blob size %d", id, blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("core: load %q blob: %w", id, err)
		}
		var fs rep.FunctionSeries
		if err := fs.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("core: load %q: %w", id, err)
		}
		var feats, zfeats []float64
		if !legacy {
			if feats, err = loadVector(br, db, id); err != nil {
				return nil, err
			}
			if zfeats, err = loadVector(br, db, id); err != nil {
				return nil, err
			}
			if !restoreVectors {
				feats, zfeats = nil, nil
			}
		}
		var sk *multires.Sketch
		if hasSketches {
			if sk, err = loadSketch(br, id, fs.N, db.cfg.SketchBlock); err != nil {
				return nil, err
			}
			if !restoreSketches {
				sk = nil
			}
		}
		if err := db.adopt(id, &fs, feats, zfeats, sk); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// saveSketch writes one record's sketch payload (a presence byte, then
// both halves of the summary).
func saveSketch(bw *bufio.Writer, sk *multires.Sketch) error {
	if sk == nil {
		return bw.WriteByte(0)
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	var u32 [4]byte
	var f64 [8]byte
	for _, half := range []struct {
		means []float64
		norms [3]float64
	}{
		{sk.Means, [3]float64{sk.R1, sk.R2, sk.Rinf}},
		{sk.ZMeans, [3]float64{sk.ZR1, sk.ZR2, sk.ZRinf}},
	} {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(half.means)))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
		for _, v := range half.means {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
			if _, err := bw.Write(f64[:]); err != nil {
				return err
			}
		}
		for _, v := range half.norms {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v))
			if _, err := bw.Write(f64[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadSketch reads one record's sketch payload, validating the mean
// counts against the record's length and the snapshot's block size.
func loadSketch(br io.Reader, id string, n, block int) (*multires.Sketch, error) {
	var b [1]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, fmt.Errorf("core: load %q sketch: %w", id, err)
	}
	if b[0] == 0 {
		return nil, nil
	}
	if b[0] != 1 {
		return nil, fmt.Errorf("core: load %q: bad sketch marker %d", id, b[0])
	}
	want := 0
	if block > 0 {
		want = multires.NumBlocks(n, block)
	}
	sk := &multires.Sketch{N: n, Block: block}
	var u32 [4]byte
	var f64 [8]byte
	for half := 0; half < 2; half++ {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, fmt.Errorf("core: load %q sketch: %w", id, err)
		}
		got := binary.LittleEndian.Uint32(u32[:])
		if int(got) != want {
			return nil, fmt.Errorf("core: load %q: sketch has %d means, want %d", id, got, want)
		}
		means := make([]float64, got)
		for i := range means {
			if _, err := io.ReadFull(br, f64[:]); err != nil {
				return nil, fmt.Errorf("core: load %q sketch: %w", id, err)
			}
			means[i] = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
		}
		norms := [3]float64{}
		for i := range norms {
			if _, err := io.ReadFull(br, f64[:]); err != nil {
				return nil, fmt.Errorf("core: load %q sketch: %w", id, err)
			}
			norms[i] = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
		}
		if half == 0 {
			sk.Means, sk.R1, sk.R2, sk.Rinf = means, norms[0], norms[1], norms[2]
		} else {
			sk.ZMeans, sk.ZR1, sk.ZR2, sk.ZRinf = means, norms[0], norms[1], norms[2]
		}
	}
	return sk, nil
}

// loadVector reads one length-prefixed feature vector, validating its
// width against the database's coefficient count (real vectors are always
// 2·IndexCoeffs wide; 0 marks an absent vector).
func loadVector(br io.Reader, db *DB, id string) ([]float64, error) {
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("core: load %q feature length: %w", id, err)
	}
	n := binary.LittleEndian.Uint32(u32[:])
	if n == 0 {
		return nil, nil
	}
	want := 0
	if db.findex != nil {
		want = 2 * db.findex.k
	}
	if int(n) != want {
		return nil, fmt.Errorf("core: load %q: feature vector has %d entries, want %d", id, n, want)
	}
	vec := make([]float64, n)
	var f64 [8]byte
	for i := range vec {
		if _, err := io.ReadFull(br, f64[:]); err != nil {
			return nil, fmt.Errorf("core: load %q feature vector: %w", id, err)
		}
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(f64[:]))
	}
	return vec, nil
}

// adopt installs an already-built representation, rebuilding features and
// index postings (used by Load). It follows the same reserve → commit →
// link protocol as Ingest. Snapshot-supplied feature vectors and sketches
// are restored verbatim; with none (legacy snapshots, or a comparison-
// source mismatch), they are recomputed from the record's comparison
// form.
func (db *DB) adopt(id string, fs *rep.FunctionSeries, feats, zfeats []float64, sk *multires.Sketch) error {
	profile, err := feature.Extract(fs, db.cfg.Delta)
	if err != nil {
		return fmt.Errorf("core: adopting %q: %w", id, err)
	}
	sh := db.shardOf(id)
	if !sh.reserve(id) {
		return fmt.Errorf("core: duplicate id %q in snapshot", id)
	}
	rec := &Record{ID: id, N: fs.N, Profile: profile, feats: feats, zfeats: zfeats, sketch: sk}
	rec.setRep(fs)
	needFeats := db.findex != nil && rec.feats == nil
	needSketch := db.cfg.SketchBlock > 0 && rec.sketch == nil
	if needFeats || needSketch {
		if vals, ok := db.comparisonValues(rec, nil); ok {
			if needFeats {
				db.findex.computeFeatures(rec, vals)
			}
			if needSketch {
				rec.sketch = multires.BuildSketch(vals, db.cfg.SketchBlock)
			}
		}
	}
	sh.commit(rec)
	if err := db.link(rec); err != nil {
		sh.drop(id)
		return err
	}
	return nil
}

func insertSorted(ids []string, id string) []string {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ids = append(ids, "")
	copy(ids[lo+1:], ids[lo:])
	ids[lo] = id
	return ids
}

func removeSorted(ids []string, id string) []string {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == id {
		return append(ids[:lo], ids[lo+1:]...)
	}
	return ids
}
