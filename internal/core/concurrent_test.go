package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"seqrep/internal/dist"
	"seqrep/internal/pattern"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

// feverBatch builds n distinct two-peak fever variants as batch items.
func feverBatch(t *testing.T, n int) []BatchItem {
	t.Helper()
	base, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{
			ID:  fmt.Sprintf("fever-%03d", i),
			Seq: base.ShiftValue(float64(i) * 0.01),
		}
	}
	return items
}

// IngestBatch ingests everything exactly once and reports the count; the
// result is indistinguishable from sequential ingestion.
func TestIngestBatchMatchesSequential(t *testing.T) {
	items := feverBatch(t, 40)

	seqDB := mustDB(t, Config{})
	for _, it := range items {
		mustIngest(t, seqDB, it.ID, it.Seq)
	}

	batchDB := mustDB(t, Config{Workers: 8, Shards: 4})
	n, err := batchDB.IngestBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(items) {
		t.Fatalf("IngestBatch ingested %d of %d", n, len(items))
	}

	seqIDs, batchIDs := seqDB.IDs(), batchDB.IDs()
	if len(seqIDs) != len(batchIDs) {
		t.Fatalf("id counts differ: %d vs %d", len(seqIDs), len(batchIDs))
	}
	for i := range seqIDs {
		if seqIDs[i] != batchIDs[i] {
			t.Fatalf("ids[%d]: %q vs %q", i, seqIDs[i], batchIDs[i])
		}
	}
	if !sort.StringsAreSorted(batchIDs) {
		t.Error("batch IDs not sorted")
	}
	ss, bs := seqDB.Stats(), batchDB.Stats()
	ss.Shards, bs.Shards = 0, 0 // configured differently on purpose
	if ss != bs {
		t.Errorf("stats differ:\nsequential %+v\nbatch      %+v", ss, bs)
	}
}

// Per-item failures are reported joined and do not abort the batch.
func TestIngestBatchPartialFailure(t *testing.T) {
	items := feverBatch(t, 10)
	items[3].ID = items[0].ID // duplicate
	items[7].Seq = nil        // empty sequence

	db := mustDB(t, Config{Workers: 4})
	n, err := db.IngestBatch(items)
	if n != 8 {
		t.Errorf("ingested %d, want 8", n)
	}
	if err == nil {
		t.Fatal("expected a joined error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "item 3") || !strings.Contains(msg, "item 7") {
		t.Errorf("error misses failing items: %v", err)
	}
	if db.Len() != 8 {
		t.Errorf("Len = %d, want 8", db.Len())
	}
}

func TestIngestBatchEmpty(t *testing.T) {
	db := mustDB(t, Config{})
	if n, err := db.IngestBatch(nil); n != 0 || err != nil {
		t.Errorf("IngestBatch(nil) = %d, %v", n, err)
	}
}

// The central tentpole test: batched ingestion, removals and every query
// family running at once. Run under -race this validates the sharded
// locking protocol end to end.
func TestConcurrentIngestQueryRemove(t *testing.T) {
	db := mustDB(t, Config{Shards: 8, Workers: 4, Archive: store.NewMemArchive()})
	items := feverBatch(t, 48)
	exemplar := items[0].Seq

	// Pre-ingest a stable half so queries always have data.
	stable, volatile := items[:24], items[24:]
	if n, err := db.IngestBatch(stable); err != nil || n != len(stable) {
		t.Fatalf("pre-ingest: %d, %v", n, err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	fail := make(chan error, 64)

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, err := db.IngestBatch(volatile); err != nil {
			fail <- err
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			id := stable[rng.Intn(len(stable))].ID
			if _, ok := db.Record(id); !ok {
				fail <- fmt.Errorf("stable record %q missing", id)
			}
			db.Stats()
			db.Len()
		}
	}()

	queries := []func() error{
		func() error { _, err := db.ValueQuery(exemplar, 0.5); return err },
		func() error { _, err := db.DistanceQuery(exemplar, dist.Euclidean, 10); return err },
		func() error { _, err := db.MatchPattern(pattern.TwoPeak()); return err },
		func() error { _, err := db.SearchPattern("U+D"); return err },
		func() error { _, err := db.PeakCount(2, 1); return err },
		func() error { _, err := db.IntervalQuery(8, 4); return err },
		func() error { _, err := db.ShapeQuery(exemplar, ShapeTolerance{Height: 0.3, Spacing: 0.3}); return err },
	}
	for _, q := range queries {
		wg.Add(1)
		go func(q func() error) {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				if err := q(); err != nil {
					fail <- err
					return
				}
			}
		}(q)
	}

	// Churn: ingest and remove a disjoint id range concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("churn-%d", i)
			if err := db.Ingest(id, exemplar.ShiftValue(5)); err != nil {
				fail <- err
				return
			}
			if err := db.Remove(id); err != nil {
				fail <- err
				return
			}
		}
	}()

	close(start)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}

	if got, want := db.Len(), len(items); got != want {
		t.Errorf("final Len = %d, want %d", got, want)
	}
	// Every stored sequence is an exact-length fever variant: the band
	// query at a generous tolerance must return all of them.
	matches, err := db.ValueQuery(exemplar, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(items) {
		t.Errorf("ValueQuery found %d of %d after churn", len(matches), len(items))
	}
}

// Concurrent ingests of the same id: exactly one wins, the rest fail
// with the duplicate error.
func TestConcurrentDuplicateIngest(t *testing.T) {
	db := mustDB(t, Config{})
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	const racers = 8
	errs := make([]error, racers)
	var wg sync.WaitGroup
	wg.Add(racers)
	for i := 0; i < racers; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = db.Ingest("contested", fever)
		}(i)
	}
	wg.Wait()
	won := 0
	for _, err := range errs {
		if err == nil {
			won++
		} else if !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if won != 1 {
		t.Errorf("%d ingests of the same id succeeded, want 1", won)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
}

// Removing an id while racing re-ingests of the same id must never
// corrupt the indexes: whoever wins, the shard and every global index
// agree afterwards.
func TestConcurrentRemoveReingest(t *testing.T) {
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	for trial := 0; trial < 20; trial++ {
		db := mustDB(t, Config{Shards: 2})
		mustIngest(t, db, "x", fever)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Ignore "duplicate" (remover not done yet) — retry once after.
			for i := 0; i < 3; i++ {
				if db.Ingest("x", fever) == nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			_ = db.Remove("x")
		}()
		wg.Wait()

		// Invariant: the shard record and the indexes tell the same story.
		_, inShard := db.Record("x")
		ids := db.IDs()
		inIDs := len(ids) == 1 && ids[0] == "x"
		if len(ids) > 1 {
			t.Fatalf("trial %d: duplicate index entries %v", trial, ids)
		}
		if inShard != inIDs {
			t.Fatalf("trial %d: shard has x=%v but id index has x=%v", trial, inShard, inIDs)
		}
		st := db.Stats()
		if inShard {
			if st.Sequences != 1 || st.IntervalCount == 0 || st.SymbolGroups != 1 {
				t.Fatalf("trial %d: present but stats %+v", trial, st)
			}
		} else if st.Sequences != 0 || st.IntervalCount != 0 || st.SymbolGroups != 0 {
			t.Fatalf("trial %d: removed but stats %+v", trial, st)
		}
	}
}

// ValueQuery early-abandons via the band kernel yet reports the same
// matches and deviations as a full LInf scan.
func TestValueQueryMatchesLInfScan(t *testing.T) {
	db := mustDB(t, Config{Workers: 4})
	items := feverBatch(t, 16)
	if _, err := db.IngestBatch(items); err != nil {
		t.Fatal(err)
	}
	exemplar := items[0].Seq
	const eps = 0.08
	matches, err := db.ValueQuery(exemplar, eps)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, m := range matches {
		got[m.ID] = m.Deviations["value"]
	}
	for _, id := range db.IDs() {
		stored, err := db.Reconstruct(id)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dist.LInf(exemplar, stored)
		if err != nil {
			t.Fatal(err)
		}
		dev, matched := got[id]
		if matched != (d <= eps) {
			t.Errorf("%s: matched=%v but LInf=%g", id, matched, d)
		}
		if matched && dev != d {
			t.Errorf("%s: deviation %g, LInf %g", id, dev, d)
		}
	}
}

func TestDistanceQueryMetrics(t *testing.T) {
	// The archive matters: z-normalized comparisons run on raw samples,
	// where value-shifted copies are exactly equivalent.
	db := mustDB(t, Config{Archive: store.NewMemArchive()})
	items := feverBatch(t, 8)
	if _, err := db.IngestBatch(items); err != nil {
		t.Fatal(err)
	}
	exemplar := items[0].Seq

	// Generous Euclidean tolerance: everything matches, exemplar's own
	// variant first (distance ≈ 0 to its reconstruction).
	matches, err := db.DistanceQuery(exemplar, dist.Euclidean, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(items) {
		t.Fatalf("matched %d of %d", len(matches), len(items))
	}
	if _, ok := matches[0].Deviations["l2"]; !ok {
		t.Errorf("deviations not keyed by metric name: %v", matches[0].Deviations)
	}
	// The variants differ only by a value shift, which z-normalization
	// cancels: under ZEuclidean every distance collapses to ~0.
	zm, err := db.DistanceQuery(exemplar, dist.ZEuclidean, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(zm) != len(items) {
		t.Errorf("ZEuclidean matched %d of %d shifted copies", len(zm), len(items))
	}

	if _, err := db.DistanceQuery(exemplar, nil, 1); err == nil {
		t.Error("nil metric: expected error")
	}
	if _, err := db.DistanceQuery(exemplar, dist.Euclidean, -1); err == nil {
		t.Error("negative tolerance: expected error")
	}
	if _, err := db.DistanceQuery(nil, dist.Euclidean, 1); err == nil {
		t.Error("empty exemplar: expected error")
	}
}

// A failed batch item must not leave a stale reservation behind: the id
// stays ingestable.
func TestFailedIngestReleasesReservation(t *testing.T) {
	db := mustDB(t, Config{})
	bad, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	bad = bad[:1] // single sample breaks the breaker
	if err := db.Ingest("x", bad); err == nil {
		t.Skip("single-sample sequence unexpectedly ingestable")
	}
	good, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	if err := db.Ingest("x", good); err != nil {
		t.Fatalf("id not reusable after failed ingest: %v", err)
	}
}

// Sharding is invisible to persistence: save/load round-trips across
// different shard counts.
func TestPersistAcrossShardCounts(t *testing.T) {
	db := mustDB(t, Config{Shards: 3})
	items := feverBatch(t, 9)
	if _, err := db.IngestBatch(items); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := db.SaveTo(&nopWriter{&buf}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(buf.String()), Config{Shards: 11})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != db.Len() {
		t.Errorf("loaded %d sequences, want %d", loaded.Len(), db.Len())
	}
	a, b := db.IDs(), loaded.IDs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ids diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// nopWriter adapts a strings.Builder to io.Writer (Builder already is
// one; this keeps the byte path explicit for the test).
type nopWriter struct{ b *strings.Builder }

func (w *nopWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
