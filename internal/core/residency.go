// Residency: the paging layer between the lock-striped shards and the
// on-disk segment tier. With Config.MemoryBudget > 0 on an OpenDir
// database, record representations become a bounded hot cache: a
// resident.Tracker accounts every representation's bytes, evicts cold
// clean payloads when the budget is exceeded (Record.rep flips to nil),
// and the exact-verification / GetRecord / archive paths page missing
// payloads back in from the segment tier through materialize.
//
// Invariants (see docs/STORAGE.md "Residency & paging"):
//
//   - Eviction never drops the only copy: a record is admitted pinned
//     while dirty (WAL-covered, not yet checkpointed) and unpinned only
//     after a checkpoint's manifest commit puts its payload in the
//     tier. A cold record is therefore always clean, and a clean record
//     is always readable from the tier.
//   - Tombstoned ids stay authoritative: a fault-in that finds a
//     tombstone (the record was removed under the scan) classifies as
//     ErrUnknownID, which query verification treats exactly like the
//     removed-mid-scan case; a record still present whose payload is
//     missing from the tier is an invariant breach and surfaces as
//     ErrStorage.
//   - A failed pread never evicts: faultIn admits to the tracker only
//     after the read and decode succeeded, so an injected disk fault on
//     the cold path leaves residency exactly as it was.
package core

import (
	"fmt"

	"seqrep/internal/rep"
	"seqrep/internal/resident"
	"sync/atomic"
)

// armResidency creates the residency tracker when the configuration and
// storage support it: a memory budget is set and a segment tier exists
// to page from. Called single-threaded during OpenDir boot, after
// db.segs is attached and before any record is adopted or replayed.
func (db *DB) armResidency() {
	if db.res != nil {
		return // already armed (bootFromSegments runs before OpenDir's call)
	}
	if db.cfg.MemoryBudget > 0 && db.segs != nil {
		db.res = resident.New(db.cfg.MemoryBudget, db.onEvictRep)
	}
}

// onEvictRep is the tracker's eviction callback: release id's
// representation payload. ref scopes the eviction to the record object
// the tracker entry was created for — if the id now names a different
// record (removed and re-ingested), the entry is stale and is dropped
// without touching the successor. Runs with the tracker lock held; it
// takes only a shard read lock (lock order: tracker before shard,
// nothing takes the tracker lock while holding a shard lock).
func (db *DB) onEvictRep(id string, ref *atomic.Bool) bool {
	rec, ok := db.Record(id)
	if !ok || &rec.hot != ref {
		return true // record gone or replaced: forget the stale entry
	}
	rec.rep.Store(nil)
	return true
}

// dirtyTracking reports whether dirty tracking is live — the condition
// under which a newly linked record must be admitted pinned (its
// payload exists nowhere but RAM and the WAL until a checkpoint runs).
func (db *DB) dirtyTracking() bool {
	db.dirtyMu.Lock()
	defer db.dirtyMu.Unlock()
	return db.dirty != nil
}

// materialize returns rec's representation, paging it in from the
// segment tier if it was evicted. The hot flag is set on every call, so
// a use between two eviction sweeps grants the payload a second chance.
func (db *DB) materialize(rec *Record) (*rep.FunctionSeries, error) {
	if fs := rec.rep.Load(); fs != nil {
		rec.hot.Store(true)
		return fs, nil
	}
	return db.faultIn(rec)
}

// faultIn resolves a cold representation: segment-tier point lookup
// (bloom filters + payload LRU), payload decode, then admission to the
// hot set. The admit happens strictly after a successful read+decode —
// a failed pread surfaces as an error for this caller only and leaves
// the resident set untouched.
func (db *DB) faultIn(rec *Record) (*rep.FunctionSeries, error) {
	if db.segs == nil {
		// Unreachable by construction (evictions require a tier), kept as
		// an honest failure rather than a nil dereference.
		return nil, fmt.Errorf("core: representation of %q evicted with no segment tier to page from: %w", rec.ID, ErrStorage)
	}
	payload, tomb, found, err := db.segs.Get(rec.ID)
	if err != nil {
		return nil, fmt.Errorf("core: paging %q from segment tier: %w: %w", rec.ID, ErrStorage, err)
	}
	if !found || tomb {
		if cur, ok := db.Record(rec.ID); !ok || cur != rec {
			// The record was removed while this scan held its pointer;
			// the tombstone is authoritative. Query verification skips
			// such records (verifyReadError), Representation reports
			// the id unknown.
			return nil, fmt.Errorf("core: paging %q: %w", rec.ID, ErrUnknownID)
		}
		// Still live but its payload is not in the tier: the clean ⇒
		// durable invariant broke somewhere — never skip silently.
		return nil, fmt.Errorf("core: paging %q: payload missing from segment tier: %w", rec.ID, ErrStorage)
	}
	fs, _, _, _, err := decodeRecordPayload(db, rec.ID, payload, false, false)
	if err != nil {
		return nil, fmt.Errorf("core: decoding paged payload of %q: %w: %w", rec.ID, ErrStorage, err)
	}
	if !rec.rep.CompareAndSwap(nil, fs) {
		// Lost the race to a concurrent fault-in: share the winner's
		// series if it is still there, otherwise (evicted again already)
		// install ours — either way every reader sees one valid series.
		if cur := rec.rep.Load(); cur != nil {
			rec.hot.Store(true)
			return cur, nil
		}
		rec.rep.Store(fs)
	}
	db.res.ColdHit()
	db.res.Admit(rec.ID, rec.repBytes, &rec.hot, false)
	// A Remove racing this admit may have issued its Drop before the
	// entry existed; re-check liveness and withdraw so a removed record
	// cannot strand a tracker entry.
	if cur, ok := db.Record(rec.ID); !ok || cur != rec {
		db.res.Drop(rec.ID, &rec.hot)
	}
	return fs, nil
}

// Representation returns the stored function series for id, paging it
// in from the segment tier when it is not resident. The returned series
// is immutable and remains valid even if the record is evicted or
// removed afterwards.
func (db *DB) Representation(id string) (*rep.FunctionSeries, error) {
	rec, ok := db.Record(id)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownID, id)
	}
	fs, err := db.materialize(rec)
	if err != nil {
		if cur, ok := db.Record(id); !ok || cur != rec {
			return nil, fmt.Errorf("core: %w %q", ErrUnknownID, id)
		}
		return nil, err
	}
	return fs, nil
}

// ResidencyStats reports the residency tracker's counters. ok is false
// when no memory budget is configured (fully resident operation).
func (db *DB) ResidencyStats() (resident.Stats, bool) {
	if db.res == nil {
		return resident.Stats{}, false
	}
	return db.res.Stats(), true
}
