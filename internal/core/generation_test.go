package core

// Tests for the mutation generation counter, the structured batch-error
// API, and the atomic snapshot file writer — the core contracts the
// serving layer's result cache and /v1/snapshot endpoint build on.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqrep/internal/seq"
	"seqrep/internal/store"
)

func rampSeq(n int, shift float64) seq.Sequence {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = shift + float64(i%7) + float64(i)/float64(n)
	}
	return seq.New(vals)
}

func TestGenerationBumpsOnMutations(t *testing.T) {
	db := mustDB(t, Config{})
	if g := db.Generation(); g != 0 {
		t.Fatalf("fresh database generation = %d, want 0", g)
	}
	mustIngest(t, db, "a", rampSeq(32, 0))
	g1 := db.Generation()
	if g1 == 0 {
		t.Fatal("generation unchanged after Ingest")
	}
	mustIngest(t, db, "b", rampSeq(32, 1))
	g2 := db.Generation()
	if g2 <= g1 {
		t.Fatalf("generation %d after second ingest, want > %d", g2, g1)
	}
	// A failed ingest (duplicate id) commits nothing and must not bump.
	if err := db.Ingest("a", rampSeq(32, 2)); err == nil {
		t.Fatal("duplicate ingest unexpectedly succeeded")
	}
	if g := db.Generation(); g != g2 {
		t.Fatalf("generation %d after failed ingest, want %d", g, g2)
	}
	if err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	g3 := db.Generation()
	if g3 <= g2 {
		t.Fatalf("generation %d after Remove, want > %d", g3, g2)
	}
	// A failed remove must not bump either.
	if err := db.Remove("missing"); err == nil {
		t.Fatal("removing unknown id unexpectedly succeeded")
	}
	if g := db.Generation(); g != g3 {
		t.Fatalf("generation %d after failed remove, want %d", g, g3)
	}
}

func TestGenerationBumpsOnLoad(t *testing.T) {
	db := mustDB(t, Config{})
	for i := 0; i < 3; i++ {
		mustIngest(t, db, fmt.Sprintf("s-%d", i), rampSeq(32, float64(i)))
	}
	var buf bytes.Buffer
	if err := db.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if g := loaded.Generation(); g == 0 {
		t.Fatal("loaded database generation = 0, want > 0 (adoption is a mutation)")
	}
}

func TestIngestBatchItemsStructuredErrors(t *testing.T) {
	db := mustDB(t, Config{})
	mustIngest(t, db, "taken", rampSeq(32, 0))
	items := []BatchItem{
		{ID: "ok-0", Seq: rampSeq(32, 1)},
		{ID: "taken", Seq: rampSeq(32, 2)}, // duplicate: fails
		{ID: "ok-1", Seq: rampSeq(32, 3)},
		{ID: "", Seq: rampSeq(32, 4)}, // empty id: fails
		{ID: "ok-2", Seq: nil},        // empty sequence: fails
	}
	n, itemErrs := db.IngestBatchItems(items)
	if n != 2 {
		t.Fatalf("ingested %d, want 2", n)
	}
	if len(itemErrs) != 3 {
		t.Fatalf("got %d item errors, want 3: %v", len(itemErrs), itemErrs)
	}
	wantIdx := []int{1, 3, 4}
	wantID := []string{"taken", "", "ok-2"}
	for i, ie := range itemErrs {
		if ie.Index != wantIdx[i] || ie.ID != wantID[i] {
			t.Errorf("item error %d = (index %d, id %q), want (index %d, id %q)",
				i, ie.Index, ie.ID, wantIdx[i], wantID[i])
		}
		if ie.Err == nil {
			t.Errorf("item error %d carries no underlying error", i)
		}
	}

	// IngestBatch joins the same failures, each reachable via errors.As.
	db2 := mustDB(t, Config{})
	mustIngest(t, db2, "taken", rampSeq(32, 0))
	n, err := db2.IngestBatch(items)
	if n != 2 {
		t.Fatalf("IngestBatch ingested %d, want 2", n)
	}
	var ie *ItemError
	if !errors.As(err, &ie) {
		t.Fatalf("joined batch error %v does not unwrap to *ItemError", err)
	}
	if !strings.Contains(err.Error(), `item 1 ("taken")`) {
		t.Errorf("joined error text lost the item position: %v", err)
	}
}

// TestSaveFileAtomic pins the write-to-temp + rename contract: a save
// whose writer fails mid-stream must leave the previous snapshot intact
// and no temporary litter behind.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.bin")

	db := mustDB(t, Config{})
	mustIngest(t, db, "keep", rampSeq(48, 0))
	if err := db.SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	db2 := mustDB(t, Config{})
	mustIngest(t, db2, "other", rampSeq(48, 1))
	failing := func(w io.Writer) io.Writer { return store.NewFailAfterWriter(w, 16) }
	if err := db2.SaveFile(path, failing); err == nil {
		t.Fatal("save over a failing writer unexpectedly succeeded")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save corrupted the existing snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after failed save, want just the snapshot", len(entries))
	}
	restored, err := LoadFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.Record("keep"); !ok {
		t.Fatal("old snapshot no longer loads its record")
	}
}
