package core

// This file is the progressive query cascade: the coarse-to-fine
// execution mode in which a similarity query answers first from compact
// per-record sketches with a guaranteed two-sided error band, then
// refines survivors through DFT feature-distance pruning, and finally
// verifies what remains against exact samples — the Lernaean-Hydra-style
// δ-ε progressive contract layered over the existing query machinery.
//
// The guarantee, relied on by the property suite and the serving layer:
//
//   - Every emitted frame's band contains the record's true distance
//     (Lo ≤ d ≤ Hi, bit-level — the band math carries floating-point
//     slack on both sides).
//   - A record's frames only ever tighten: each successive frame's band
//     is contained in the previous one.
//   - No false dismissals: a record is dropped only when its band's
//     lower edge exceeds the tolerance, so every true match is either
//     accepted or refined further.
//   - False positives are bounded: a match accepted at a non-exact tier
//     has true distance ≤ eps + the accepted band's width, and bands are
//     only accepted early when their width ≤ QueryOptions.MaxError. With
//     MaxError = 0 and full refinement the accepted set is exactly the
//     exact query's match set.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"seqrep/internal/dft"
	"seqrep/internal/dist"
	"seqrep/internal/multires"
	"seqrep/internal/seq"
)

// Tier is a progressive quality level: how far through the cascade an
// answer (or a refinement cap) has come.
type Tier int

const (
	// TierNone is the zero value; as QueryOptions.MaxTier it means "no
	// cap" (refine all the way to TierExact).
	TierNone Tier = iota
	// TierSketch answers from the per-record multiresolution sketches
	// alone: one band per record, no sample or feature reads.
	TierSketch
	// TierCandidate tightens sketch bands with the DFT feature-distance
	// lower bound (Parseval), still without reading samples.
	TierCandidate
	// TierExact verifies against exact samples; its bands are points.
	TierExact
)

// String names the tier as it appears in wire frames and querylang.
func (t Tier) String() string {
	switch t {
	case TierSketch:
		return "sketch"
	case TierCandidate:
		return "candidate"
	case TierExact:
		return "exact"
	default:
		return ""
	}
}

// ParseTier resolves a quality-level name ("sketch", "candidate",
// "exact") to its Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "sketch":
		return TierSketch, nil
	case "candidate":
		return TierCandidate, nil
	case "exact":
		return TierExact, nil
	default:
		return TierNone, fmt.Errorf("core: unknown quality tier %q (want sketch, candidate or exact)", s)
	}
}

// Band is a two-sided bound on a record's true distance to the exemplar:
// Lo ≤ d ≤ Hi. Hi may be +Inf when nothing bounds the distance from
// above (a record without a sketch).
type Band struct {
	Lo, Hi float64
}

// Width is the band's uncertainty; +Inf when Hi is unbounded.
func (b Band) Width() float64 { return b.Hi - b.Lo }

// Contains reports whether d lies within the band (inclusive).
func (b Band) Contains(d float64) bool { return b.Lo <= d && d <= b.Hi }

// ProgressiveMatch is one frame of a progressive query's answer stream.
// A record may appear in several frames — its band tightening tier by
// tier — and every record that appears gets exactly one Final frame:
// with a Match when it is accepted, without one when refinement ruled it
// out. Records dismissed before their first frame never appear.
type ProgressiveMatch struct {
	ID   string
	Tier Tier // the tier that produced this frame
	Band Band // current bound on the true distance; tightens monotonically
	// Final marks the record's last frame. Accepted records carry the
	// Match; for answers finalized before exact verification (a band
	// accept or a Tier cap) the Match's deviation is the band's upper
	// edge — an upper bound on the true distance, not the distance
	// itself — and Band still reports both edges.
	Final bool
	Match *Match
}

// progSpec extends a compiled querySpec with the cascade's coarse tiers:
// the query-side sketch and the feature-space lower-bound scaling.
type progSpec struct {
	spec *querySpec
	// devKey is the Match.Deviations key of this query family ("value"
	// for value queries, the metric name for distance queries).
	devKey string
	// qsk is the exemplar's sketch; nil when sketches are disabled.
	qsk *multires.Sketch
	// qf is the exemplar's DFT feature vector (z-normalized when useZ)
	// and fscale maps feature distance onto a lower bound of the query
	// metric; fscale 0 disables the candidate tier.
	qf     []float64
	fscale float64
	useZ   bool
}

// bandFloor shrinks a mathematically sound lower bound by the same
// floating-point whisker the band math uses, so summation-order rounding
// can never raise it above the true distance.
func bandFloor(x float64) float64 {
	x = x*(1-1e-9) - 1e-12
	if x < 0 {
		return 0
	}
	return x
}

// featureScale returns the factor mapping the DFT feature distance (a
// Euclidean lower bound by Parseval) onto a lower bound of the named
// metric, and whether the z-normalized vectors are the right ones. A
// zero scale means the metric admits no sound feature bound.
//
//	l1:          L1 ≥ L2 ≥ F
//	l2, zl2:     L2 ≥ F
//	linf, band:  L∞ ≥ L2/√n ≥ F/√n
//	norml2:      L2/√n ≥ F/√n
//	norml1:      L1/n ≥ L2/n ≥ F/n
func featureScale(metric string, n int) (scale float64, useZ bool) {
	fn := float64(n)
	switch metric {
	case "l1", "l2":
		return 1, false
	case "zl2":
		return 1, true
	case "linf", "band", "norml2":
		return 1 / math.Sqrt(fn), false
	case "norml1":
		return 1 / fn, false
	default:
		return 0, false
	}
}

// progressiveSpec wraps a compiled querySpec for cascade execution,
// computing the exemplar-side sketch and feature vector once.
func (db *DB) progressiveSpec(spec *querySpec, exemplar seq.Sequence, devKey string) *progSpec {
	ps := &progSpec{spec: spec, devKey: devKey}
	vals := exemplar.Values()
	if db.cfg.SketchBlock > 0 {
		ps.qsk = multires.BuildSketch(vals, db.cfg.SketchBlock)
	}
	if db.findex != nil {
		scale, useZ := featureScale(spec.metric, len(vals))
		if scale > 0 {
			src := vals
			if useZ {
				src = dist.ZNormalizeValues(vals)
			}
			if qf, err := dft.Features(src, db.findex.k); err == nil {
				ps.qf, ps.fscale, ps.useZ = qf, scale, useZ
			}
		}
	}
	return ps
}

// finalizeAt reports whether the cascade stops refining a record at the
// given tier: the caller capped refinement here, or the band is already
// as tight as demanded (width ≤ MaxError, which a MaxError of 0 never
// satisfies — exact answers only).
func finalizeAt(tier, maxTier Tier, band Band, maxError float64) bool {
	if tier >= maxTier {
		return true
	}
	return maxError > 0 && band.Width() <= maxError
}

// bandMatch builds the Match for a record accepted on its band alone.
// The deviation reported is the band's upper edge (the sound upper bound
// on the true distance); with an unbounded band — a tier cap over a
// sketchless record — the lower edge stands in, keeping wire encodings
// finite.
func bandMatch(id string, devKey string, band Band) *Match {
	dev := band.Hi
	if math.IsInf(dev, 1) {
		dev = band.Lo
	}
	return &Match{ID: id, Exact: band.Hi == 0, Deviations: map[string]float64{devKey: dev}}
}

// progItem is one cascade survivor between tiers.
type progItem struct {
	rec  *Record
	band Band
}

// runProgressive executes the cascade. yield is called with frames in
// tier order per record (serialized, on unspecified goroutines);
// returning false stops the query without error, as in runQuery.
func (db *DB) runProgressive(ctx context.Context, ps *progSpec, opts QueryOptions, yield func(ProgressiveMatch) bool) (QueryStats, error) {
	if err := opts.validate(); err != nil {
		return QueryStats{}, err
	}
	if opts.TopK > 0 {
		return QueryStats{}, fmt.Errorf("core: top-k is incompatible with progressive execution")
	}
	maxTier := opts.MaxTier
	if maxTier == TierNone {
		maxTier = TierExact
	}
	spec := ps.spec
	eps := spec.initEps
	stats := QueryStats{Query: spec.kind, Metric: spec.metric, Plan: PlanProgressive}
	done := ctx.Done()

	var (
		mu        sync.Mutex // serializes yield and the accept accounting
		halted    atomic.Bool
		aborted   atomic.Bool
		accepted  int
		truncated bool
		firstErr  error
	)
	stopNow := func() bool {
		if halted.Load() {
			return true
		}
		if chanClosed(done) {
			aborted.Store(true)
			halted.Store(true)
			return true
		}
		return false
	}
	emit := func(pm ProgressiveMatch) {
		mu.Lock()
		defer mu.Unlock()
		if halted.Load() {
			return
		}
		if pm.Final && pm.Match != nil && opts.Limit > 0 && accepted >= opts.Limit {
			truncated = true
			halted.Store(true)
			return
		}
		if !yield(pm) {
			halted.Store(true)
			return
		}
		if pm.Final && pm.Match != nil {
			accepted++
			if opts.Limit > 0 && accepted == opts.Limit {
				truncated = true
				halted.Store(true)
			}
		}
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		halted.Store(true)
	}

	var examined, sketched, pruned, candidates, bandAccepted atomic.Int64

	// Tier 1 — sketch: band every length-matching record against the
	// exemplar's sketch; dismiss (silently) what the band already rules
	// out, finalize what it already settles, pass the rest on.
	shardRecs := db.snapshotRecords()
	surv := make([][]progItem, len(shardRecs))
	db.forEachClaimed(len(shardRecs), func(i int) {
		var out []progItem
		var ex, sk, pr int64
		defer func() {
			examined.Add(ex)
			sketched.Add(sk)
			pruned.Add(pr)
		}()
		for _, rec := range shardRecs[i] {
			if stopNow() {
				break
			}
			ex++
			if spec.n > 0 && rec.N != spec.n {
				continue
			}
			band := Band{Lo: 0, Hi: math.Inf(1)}
			if ps.qsk != nil && rec.sketch != nil {
				if lo, hi, ok := multires.DistanceBand(ps.qsk, rec.sketch, spec.metric); ok && !math.IsNaN(lo) && !math.IsNaN(hi) {
					band = Band{Lo: lo, Hi: hi}
					sk++
				}
			}
			if band.Lo > eps {
				pr++
				continue
			}
			if finalizeAt(TierSketch, maxTier, band, opts.MaxError) {
				bandAccepted.Add(1)
				emit(ProgressiveMatch{ID: rec.ID, Tier: TierSketch, Band: band, Final: true,
					Match: bandMatch(rec.ID, ps.devKey, band)})
				continue
			}
			emit(ProgressiveMatch{ID: rec.ID, Tier: TierSketch, Band: band})
			out = append(out, progItem{rec: rec, band: band})
		}
		surv[i] = out
	})
	items := make([]progItem, 0)
	for _, s := range surv {
		items = append(items, s...)
	}

	// Tier 2 — candidate: tighten each survivor's lower edge with the
	// scaled DFT feature distance. Runs only when the feature index is up
	// and the metric admits a sound scaling; records without feature
	// vectors pass through untouched (and unannounced).
	if len(items) > 0 && ps.qf != nil && ps.fscale > 0 {
		next := make([]progItem, len(items))
		db.forEachClaimed(len(items), func(i int) {
			if stopNow() {
				return
			}
			it := items[i]
			feats := it.rec.feats
			if ps.useZ {
				feats = it.rec.zfeats
			}
			if feats == nil {
				next[i] = it
				return
			}
			band := it.band
			if flo := bandFloor(dft.FeatureDist(ps.qf, feats) * ps.fscale); flo > band.Lo {
				if flo > band.Hi {
					flo = band.Hi // both edges are slacked; never invert the band
				}
				band.Lo = flo
			}
			if band.Lo > eps {
				pruned.Add(1)
				emit(ProgressiveMatch{ID: it.rec.ID, Tier: TierCandidate, Band: band, Final: true})
				return
			}
			if finalizeAt(TierCandidate, maxTier, band, opts.MaxError) {
				bandAccepted.Add(1)
				emit(ProgressiveMatch{ID: it.rec.ID, Tier: TierCandidate, Band: band, Final: true,
					Match: bandMatch(it.rec.ID, ps.devKey, band)})
				return
			}
			emit(ProgressiveMatch{ID: it.rec.ID, Tier: TierCandidate, Band: band})
			next[i] = progItem{rec: it.rec, band: band}
		})
		items = items[:0]
		for _, it := range next {
			if it.rec != nil {
				items = append(items, it)
			}
		}
	} else if maxTier == TierCandidate && len(items) > 0 {
		// The candidate tier cannot run (no index or no sound scaling)
		// but the caller capped refinement here: finalize on the sketch
		// bands, which is the best information this configuration has.
		for _, it := range items {
			bandAccepted.Add(1)
			emit(ProgressiveMatch{ID: it.rec.ID, Tier: TierCandidate, Band: it.band, Final: true,
				Match: bandMatch(it.rec.ID, ps.devKey, it.band)})
		}
		items = items[:0]
	}
	if maxTier != TierExact {
		items = items[:0]
	}

	// Tier 3 — exact: verify the remaining survivors against their exact
	// samples through the query's verification kernel; every survivor
	// gets its final frame, accepted or not.
	db.forEachClaimed(len(items), func(i int) {
		if stopNow() {
			return
		}
		it := items[i]
		candidates.Add(1)
		m, ok, err := spec.verify(it.rec, eps)
		if err != nil {
			fail(err)
			return
		}
		if !ok {
			emit(ProgressiveMatch{ID: it.rec.ID, Tier: TierExact, Band: it.band, Final: true})
			return
		}
		d := m.Deviations[ps.devKey]
		emit(ProgressiveMatch{ID: m.ID, Tier: TierExact, Band: Band{Lo: d, Hi: d}, Final: true, Match: &m})
	})

	mu.Lock()
	err := firstErr
	stats.Matches, stats.Truncated = accepted, truncated
	mu.Unlock()
	if err != nil {
		return QueryStats{}, err
	}
	if aborted.Load() {
		if cerr := ctx.Err(); cerr != nil {
			return QueryStats{}, cerr
		}
		return QueryStats{}, context.Canceled
	}
	stats.Examined = int(examined.Load())
	stats.Sketched = int(sketched.Load())
	stats.Pruned = int(pruned.Load())
	stats.Candidates = int(candidates.Load())
	stats.BandAccepted = int(bandAccepted.Load())
	return stats, nil
}

// DistanceQueryProgressive runs a distance query as a progressive
// cascade: frames stream through yield with per-record error bands that
// tighten from the sketch tier through candidate pruning to exact
// verification (see ProgressiveMatch for the frame contract and the file
// comment for the guarantee). opts.MaxError and opts.MaxTier control how
// early answers may finalize; opts.TopK is rejected. eps may be
// math.Inf(1) to band every record.
func (db *DB) DistanceQueryProgressive(ctx context.Context, exemplar seq.Sequence, m dist.Metric, eps float64, opts QueryOptions, yield func(ProgressiveMatch) bool) (QueryStats, error) {
	spec, err := db.distanceSpec(exemplar, m, eps)
	if err != nil {
		return QueryStats{}, err
	}
	return db.runProgressive(ctx, db.progressiveSpec(spec, exemplar, m.Name()), opts, yield)
}

// ValueQueryProgressive is the progressive form of the ±eps band query
// (see DistanceQueryProgressive); bands bound the maximum per-sample
// deviation, the "value" deviation exact verification reports.
func (db *DB) ValueQueryProgressive(ctx context.Context, exemplar seq.Sequence, eps float64, opts QueryOptions, yield func(ProgressiveMatch) bool) (QueryStats, error) {
	spec, err := db.valueSpec(exemplar, eps)
	if err != nil {
		return QueryStats{}, err
	}
	return db.runProgressive(ctx, db.progressiveSpec(spec, exemplar, "value"), opts, yield)
}
