package core

import (
	"hash/maphash"
	"sync"

	"seqrep/internal/dft"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// featIndex is the DB's whole-sequence DFT feature index: per sequence,
// the first-IndexCoeffs-DFT-coefficient feature vectors of the comparison
// form (the exact samples queries verify against — archive raws when an
// archive is configured, representation reconstructions otherwise) and of
// its z-normalized variant. By Parseval the Euclidean distance between
// two feature vectors lower-bounds the Euclidean distance between the
// underlying sample vectors, so the planner can discard sequences whose
// feature distance already exceeds a query's tolerance without reading
// them — with zero false dismissals (the Agrawal/Faloutsos/Swami
// F-index guarantee; see internal/dft).
//
// The index is lock-striped like the record store, and grouped by
// sequence length within each stripe because whole-sequence queries only
// ever compare equal lengths. Every committed record of the database is
// present in its length group; a record whose comparison form could not
// be read at build time carries nil feature vectors and is simply never
// pruned. Mutations follow the record store: link adds, Remove deletes.
type featIndex struct {
	k       int // DFT coefficient count (feature vectors are 2k wide)
	seed    maphash.Seed
	stripes []*featStripe
}

type featStripe struct {
	mu    sync.RWMutex
	byLen map[int]map[string]*Record
}

func newFeatIndex(k, stripes int, seed maphash.Seed) *featIndex {
	ix := &featIndex{k: k, seed: seed, stripes: make([]*featStripe, stripes)}
	for i := range ix.stripes {
		ix.stripes[i] = &featStripe{byLen: make(map[int]map[string]*Record)}
	}
	return ix
}

func (ix *featIndex) stripeOf(id string) *featStripe {
	return ix.stripes[maphash.String(ix.seed, id)%uint64(len(ix.stripes))]
}

// add registers a committed record under its comparison length. Records
// are immutable after commit, so the index stores the pointer.
func (ix *featIndex) add(rec *Record) {
	st := ix.stripeOf(rec.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	group := st.byLen[rec.N]
	if group == nil {
		group = make(map[string]*Record)
		st.byLen[rec.N] = group
	}
	group[rec.ID] = rec
}

// remove drops a record from its length group.
func (ix *featIndex) remove(rec *Record) {
	st := ix.stripeOf(rec.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	group := st.byLen[rec.N]
	delete(group, rec.ID)
	if len(group) == 0 {
		delete(st.byLen, rec.N)
	}
}

// snapshotLen copies the record pointers of one length group, stripe by
// stripe, for lock-free filtering (mirrors DB.snapshotRecords).
func (ix *featIndex) snapshotLen(n int) [][]*Record {
	out := make([][]*Record, len(ix.stripes))
	for i, st := range ix.stripes {
		st.mu.RLock()
		group := st.byLen[n]
		recs := make([]*Record, 0, len(group))
		for _, rec := range group {
			recs = append(recs, rec)
		}
		st.mu.RUnlock()
		out[i] = recs
	}
	return out
}

// indexedCount reports how many records carry feature vectors.
func (ix *featIndex) indexedCount() int {
	n := 0
	for _, st := range ix.stripes {
		st.mu.RLock()
		for _, group := range st.byLen {
			for _, rec := range group {
				if rec.feats != nil {
					n++
				}
			}
		}
		st.mu.RUnlock()
	}
	return n
}

// computeFeatures derives a record's feature vectors from its comparison
// form. vals must be the exact samples queries verify the record against.
func (ix *featIndex) computeFeatures(rec *Record, vals []float64) {
	feats, err := dft.Features(vals, ix.k)
	if err != nil {
		return // k is validated at construction; defensive only
	}
	zfeats, err := dft.Features(dist.ZNormalizeValues(vals), ix.k)
	if err != nil {
		return
	}
	rec.feats, rec.zfeats = feats, zfeats
}

// comparisonValues returns the samples queries verify rec against: the
// archived raw sequence when an archive is configured, the representation
// reconstruction otherwise. The bool reports success; on failure the
// record stays unindexed (nil features) and is always a verification
// candidate, so the planner's behaviour degrades to the scan's for
// exactly the records the scan would also have trouble reading.
func (db *DB) comparisonValues(rec *Record, raw seq.Sequence) ([]float64, bool) {
	if db.cfg.Archive != nil {
		if raw == nil {
			got, err := db.cfg.Archive.Get(rec.ID)
			if err != nil {
				return nil, false
			}
			raw = got
		}
		return raw.Values(), true
	}
	rec2, err := rec.Rep.Reconstruct()
	if err != nil {
		return nil, false
	}
	return rec2.Values(), true
}
