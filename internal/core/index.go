package core

import (
	"sync"

	"seqrep/internal/dft"
	"seqrep/internal/dist"
	"seqrep/internal/seq"
)

// featIndex is the DB's whole-sequence DFT feature index: per sequence,
// the first-IndexCoeffs-DFT-coefficient feature vectors of the comparison
// form (the exact samples queries verify against — archive raws when an
// archive is configured, representation reconstructions otherwise) and of
// its z-normalized variant. By Parseval the Euclidean distance between
// two feature vectors lower-bounds the Euclidean distance between the
// underlying sample vectors, so the planner can discard sequences whose
// feature distance already exceeds a query's tolerance without reading
// them — with zero false dismissals (the Agrawal/Faloutsos/Swami
// F-index guarantee; see internal/dft).
//
// Storage is columnar and grouped by sequence length (whole-sequence
// queries only ever compare equal lengths): each length group holds one
// contiguous []float64 of feature rows plus a parallel record table, and
// lazily builds a vantage-point tree (dft.VPTree) over those rows so
// candidate generation is sub-linear in the group size instead of a
// per-id map walk. Mutations are cheap against the trees: adds append
// rows past the tree's coverage (scanned linearly until the next
// rebuild), removals tombstone their row, and a group rebuilds its store
// and trees only when the overlay grows past a fraction of its size.
// A record whose comparison form could not be read at build time carries
// nil feature vectors, lives in the group's unindexed set, and is simply
// never pruned.
type featIndex struct {
	k    int // DFT coefficient count (feature rows are 2k wide)
	dim  int
	leaf int // VP-tree leaf size; negative pins groups to the linear scan

	mu     sync.RWMutex // guards the groups map (not group contents)
	groups map[int]*featGroup
}

// featGroup is one length group: the columnar feature store, its search
// trees, and the mutation overlays.
type featGroup struct {
	mu sync.RWMutex

	// retired marks a drained group that has been unlinked from the
	// groups map; writers that captured it before the unlink must
	// re-look-up instead of inserting into an orphan. Set only while
	// holding both ix.mu and g.mu, always empty when set.
	retired bool

	// Columnar store: row i of feats/zfeats belongs to recs[i]; ord maps
	// a live record id to its row. dead marks tombstoned rows.
	recs      []*Record
	feats     []float64
	zfeats    []float64
	ord       map[string]int
	dead      []bool
	deadCount int

	// unindexed holds committed records without feature vectors; they
	// are always verification candidates.
	unindexed map[string]*Record

	// tree/ztree cover rows [0, treeN) of feats/zfeats respectively
	// (including rows since tombstoned — the search skips them). Rows
	// appended after the last build are scanned linearly. nil = not
	// built yet, population too small, or invalidated by a rebuild
	// threshold.
	tree, ztree *dft.VPTree
	treeN       int
}

func newFeatIndex(k, leaf int) *featIndex {
	return &featIndex{k: k, dim: 2 * k, leaf: leaf, groups: make(map[int]*featGroup)}
}

// group returns the length group for n, creating it when create is set.
func (ix *featIndex) group(n int, create bool) *featGroup {
	ix.mu.RLock()
	g := ix.groups[n]
	ix.mu.RUnlock()
	if g != nil || !create {
		return g
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if g = ix.groups[n]; g == nil {
		g = &featGroup{ord: make(map[string]int), unindexed: make(map[string]*Record)}
		ix.groups[n] = g
	}
	return g
}

// live reports the number of feature-indexed live rows. Callers hold g.mu.
func (g *featGroup) live() int { return len(g.recs) - g.deadCount }

// tailMax is how many rows may sit past the trees' coverage before the
// group forces a rebuild; staleMax the tombstone budget. Both scale with
// the store so steady churn rebuilds at amortized O(log n) per mutation.
func (g *featGroup) tailMax() int  { return 32 + g.treeN/4 }
func (g *featGroup) staleMax() int { return 32 + len(g.recs)/4 }

// add registers a committed record. Records are immutable after commit,
// so the index stores the pointer and copies its feature vectors into the
// columnar rows. A group retired between lookup and lock is re-resolved.
func (ix *featIndex) add(rec *Record) {
	for {
		g := ix.group(rec.N, true)
		g.mu.Lock()
		if g.retired {
			g.mu.Unlock()
			continue
		}
		if rec.feats == nil || rec.zfeats == nil {
			g.unindexed[rec.ID] = rec
		} else {
			g.ord[rec.ID] = len(g.recs)
			g.recs = append(g.recs, rec)
			g.feats = append(g.feats, rec.feats...)
			g.zfeats = append(g.zfeats, rec.zfeats...)
			g.dead = append(g.dead, false)
			if len(g.recs)-g.treeN > g.tailMax() {
				g.invalidateTrees()
			}
		}
		g.mu.Unlock()
		return
	}
}

// remove drops a record from its length group: unindexed records leave
// immediately, stored rows are tombstoned and compacted once enough
// accumulate. A group drained to empty is retired from the groups map.
func (ix *featIndex) remove(rec *Record) {
	g := ix.group(rec.N, false)
	if g == nil {
		return
	}
	g.mu.Lock()
	if _, ok := g.unindexed[rec.ID]; ok {
		delete(g.unindexed, rec.ID)
	} else if o, ok := g.ord[rec.ID]; ok && g.recs[o] == rec {
		delete(g.ord, rec.ID)
		g.dead[o] = true
		g.deadCount++
		// Compact when tombstones pile past the rebuild budget — or past
		// the live population, so a small or fully-drained group releases
		// its record pointers instead of retaining them below the
		// threshold.
		if g.deadCount > g.staleMax() || g.deadCount > g.live() {
			g.compact(ix.dim)
		}
	}
	empty := len(g.recs) == 0 && len(g.unindexed) == 0
	g.mu.Unlock()
	if empty {
		ix.retire(rec.N, g)
	}
}

// retire unlinks a drained group from the groups map so a workload that
// cycles through many distinct lengths does not accumulate empty groups.
// Emptiness is re-checked under both locks (ix.mu before g.mu, the
// package-wide order); writers that captured the group earlier observe
// the retired flag and re-resolve.
func (ix *featIndex) retire(n int, g *featGroup) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.groups[n] != g {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.recs) == 0 && len(g.unindexed) == 0 {
		g.retired = true
		delete(ix.groups, n)
	}
}

// invalidateTrees drops both trees; the next query rebuilds on demand.
func (g *featGroup) invalidateTrees() {
	g.tree, g.ztree = nil, nil
	g.treeN = 0
}

// compact rewrites the columnar store without tombstoned rows and drops
// the trees. Callers hold g.mu.
func (g *featGroup) compact(dim int) {
	recs := make([]*Record, 0, g.live())
	feats := make([]float64, 0, g.live()*dim)
	zfeats := make([]float64, 0, g.live()*dim)
	for i, rec := range g.recs {
		if g.dead[i] {
			continue
		}
		g.ord[rec.ID] = len(recs)
		recs = append(recs, rec)
		feats = append(feats, g.feats[i*dim:(i+1)*dim]...)
		zfeats = append(zfeats, g.zfeats[i*dim:(i+1)*dim]...)
	}
	g.recs, g.feats, g.zfeats = recs, feats, zfeats
	g.dead = make([]bool, len(recs))
	g.deadCount = 0
	g.invalidateTrees()
}

// needTrees reports whether the group's population justifies trees it
// doesn't currently have. Callers hold g.mu (either mode).
func (g *featGroup) needTrees(ix *featIndex) bool {
	if ix.leaf < 0 {
		return false
	}
	leaf := ix.leaf
	if leaf == 0 {
		leaf = dft.DefaultVPLeaf
	}
	if len(g.recs) < 2*leaf {
		return false
	}
	return g.tree == nil || g.ztree == nil
}

// buildTrees constructs both trees over the current store (compacting
// first when tombstones piled up), so their row coverage — treeN — is one
// number. Callers hold g.mu for writing.
func (g *featGroup) buildTrees(ix *featIndex) {
	if !g.needTrees(ix) { // re-check under the write lock
		return
	}
	if g.deadCount > 0 {
		g.compact(ix.dim)
	}
	t, err := dft.NewVPTree(g.feats, ix.dim, max(ix.leaf, 0))
	if err != nil {
		return // dim validated at construction; defensive only
	}
	zt, err := dft.NewVPTree(g.zfeats, ix.dim, max(ix.leaf, 0))
	if err != nil {
		return
	}
	g.tree, g.ztree = t, zt
	g.treeN = len(g.recs)
}

// lockSearchable read-locks g with its trees built (briefly upgrading to
// the write lock when a build is due) and returns the tree and columnar
// rows lb selects. Callers must g.mu.RUnlock when done.
func (g *featGroup) lockSearchable(ix *featIndex, lb lowerBound) (tree *dft.VPTree, pts []float64) {
	g.mu.RLock()
	if g.needTrees(ix) {
		g.mu.RUnlock()
		g.mu.Lock()
		g.buildTrees(ix)
		g.mu.Unlock()
		g.mu.RLock()
	}
	tree, pts = g.tree, g.feats
	if lb.z {
		tree, pts = g.ztree, g.zfeats
	}
	return tree, pts
}

// collect appends every verification candidate for the exemplar's length
// group to cands: rows whose feature distance to lb.qf is within
// lb.bound (generated through the vantage-point tree when one is up,
// falling back to a linear pass over the columnar rows), rows appended
// since the last tree build, and every unindexed record. examined counts
// feature vectors actually compared; pruned those compared and
// discarded — candidates the caller never has to read. stop is the
// cooperative-cancellation probe: when it reports true the collection
// returns early with whatever it has (the caller discards the partial
// result, so over-collection is harmless and under-collection fine).
func (ix *featIndex) collect(n int, lb lowerBound, cands []*Record, stop func() bool) (_ []*Record, examined, pruned int) {
	g := ix.group(n, false)
	if g == nil {
		return cands, 0, 0
	}
	tree, pts := g.lockSearchable(ix, lb)
	defer g.mu.RUnlock()

	linearFrom := 0
	if tree != nil {
		live := 0
		// The radius is fixed at lb.bound; the probe only aborts (negative
		// radius unwinds the traversal immediately).
		radius := func() float64 {
			if stop != nil && stop() {
				return -1
			}
			return lb.bound
		}
		examined += tree.SearchShrink(lb.qf, radius, func(o int32, _ float64) {
			if !g.dead[o] {
				cands = append(cands, g.recs[o])
				live++
			}
		})
		// Tombstoned hits count as examined-and-discarded; so do the
		// vectors the tree touched and rejected.
		pruned += examined - live
		linearFrom = g.treeN
	}
	dim := ix.dim
	for o := linearFrom; o < len(g.recs); o++ {
		if stop != nil && o%64 == 0 && stop() {
			return cands, examined, pruned
		}
		if g.dead[o] {
			continue
		}
		examined++
		if dft.FeatureDist(lb.qf, pts[o*dim:(o+1)*dim]) > lb.bound {
			pruned++
			continue
		}
		cands = append(cands, g.recs[o])
	}
	for _, rec := range g.unindexed {
		examined++
		cands = append(cands, rec)
	}
	return cands, examined, pruned
}

// collectStream is collect's interleaved form for top-K searches: instead
// of materializing the candidate set, it hands each candidate to emit
// while the traversal is still running, re-reading bound() at every tree
// node so a radius the caller tightens (the best-so-far K-th distance)
// prunes subtrees mid-flight. A negative bound aborts the collection, as
// does emit returning false. Runs under the group's read lock for its
// whole duration — concurrent queries proceed, mutations of this length
// group wait.
func (ix *featIndex) collectStream(n int, lb lowerBound, bound func() float64, emit func(*Record) bool) (examined, pruned, cands int) {
	g := ix.group(n, false)
	if g == nil {
		return 0, 0, 0
	}
	tree, pts := g.lockSearchable(ix, lb)
	defer g.mu.RUnlock()

	linearFrom := 0
	if tree != nil {
		live := 0
		aborted := false
		examined += tree.SearchShrink(lb.qf, bound, func(o int32, _ float64) {
			if aborted || g.dead[o] {
				return
			}
			if !emit(g.recs[o]) {
				aborted = true
				return
			}
			live++
		})
		pruned += examined - live
		cands += live
		if aborted {
			return examined, pruned, cands
		}
		linearFrom = g.treeN
	}
	dim := ix.dim
	for o := linearFrom; o < len(g.recs); o++ {
		if g.dead[o] {
			continue
		}
		b := bound()
		if b < 0 {
			return examined, pruned, cands
		}
		examined++
		if dft.FeatureDist(lb.qf, pts[o*dim:(o+1)*dim]) > b {
			pruned++
			continue
		}
		if !emit(g.recs[o]) {
			return examined, pruned, cands
		}
		cands++
	}
	for _, rec := range g.unindexed {
		if bound() < 0 {
			return examined, pruned, cands
		}
		examined++
		if !emit(rec) {
			return examined, pruned, cands
		}
		cands++
	}
	return examined, pruned, cands
}

// indexedCount reports how many records carry feature vectors.
func (ix *featIndex) indexedCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, g := range ix.groups {
		g.mu.RLock()
		n += g.live()
		g.mu.RUnlock()
	}
	return n
}

// computeFeatures derives a record's feature vectors from its comparison
// form. vals must be the exact samples queries verify the record against.
func (ix *featIndex) computeFeatures(rec *Record, vals []float64) {
	feats, err := dft.Features(vals, ix.k)
	if err != nil {
		return // k is validated at construction; defensive only
	}
	zfeats, err := dft.Features(dist.ZNormalizeValues(vals), ix.k)
	if err != nil {
		return
	}
	rec.feats, rec.zfeats = feats, zfeats
}

// comparisonValues returns the samples queries verify rec against: the
// archived raw sequence when an archive is configured, the representation
// reconstruction otherwise. The bool reports success; on failure the
// record stays unindexed (nil features) and is always a verification
// candidate, so the planner's behaviour degrades to the scan's for
// exactly the records the scan would also have trouble reading.
func (db *DB) comparisonValues(rec *Record, raw seq.Sequence) ([]float64, bool) {
	if db.cfg.Archive != nil {
		if raw == nil {
			got, err := db.cfg.Archive.Get(rec.ID)
			if err != nil {
				return nil, false
			}
			raw = got
		}
		return raw.Values(), true
	}
	// Only called at build/adopt time, when the representation was just
	// installed — a nil pointer would mean a construction bug, and the
	// record then simply stays unindexed.
	fs := rec.rep.Load()
	if fs == nil {
		return nil, false
	}
	rec2, err := fs.Reconstruct()
	if err != nil {
		return nil, false
	}
	return rec2.Values(), true
}
