package core

// Residency subsystem tests: the pin/evict/page-in lifecycle, the
// bit-identity of paged representations, and the chaos contract on the
// cold-read path — an injected disk fault is query-scoped (ErrStorage
// for that caller), never degrades the database, and never disturbs the
// resident set.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"seqrep/internal/chaos"
)

// TestResidencyLifecycle walks a record population through the full
// paging cycle: pinned while dirty, evicted after the checkpoint that
// makes them durable, paged back in bit-identically, and recovered
// across a reboot.
func TestResidencyLifecycle(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	db, err := OpenDir(dir, Config{MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	before := map[string][]byte{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%d", i)
		mustIngest(t, db, id, durSeq(i))
		fs, err := db.Representation(id)
		if err != nil {
			t.Fatalf("Representation(%s) while dirty: %v", id, err)
		}
		before[id], err = fs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
	}

	// Dirty records are pinned: resident over budget, because their only
	// copy is RAM plus the WAL.
	st, ok := db.ResidencyStats()
	if !ok {
		t.Fatal("ResidencyStats: tracker not armed under a budget")
	}
	if st.ResidentRecords != n || st.Pinned != n {
		t.Fatalf("pre-checkpoint stats = %+v, want %d resident, all pinned", st, n)
	}

	// The checkpoint unpins; the 1-byte budget then evicts everything.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = db.ResidencyStats()
	if st.ResidentRecords != 0 || st.Pinned != 0 || st.ResidentBytes != 0 {
		t.Fatalf("post-checkpoint stats = %+v, want empty resident set", st)
	}
	if st.Evictions < n {
		t.Fatalf("evictions = %d, want >= %d", st.Evictions, n)
	}

	// Page-in returns the exact bytes that were evicted.
	for id, want := range before {
		fs, err := db.Representation(id)
		if err != nil {
			t.Fatalf("Representation(%s) after eviction: %v", id, err)
		}
		got, err := fs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: paged representation differs from the evicted one", id)
		}
	}
	st, _ = db.ResidencyStats()
	if st.ColdHits < n {
		t.Fatalf("cold hits = %d, want >= %d", st.ColdHits, n)
	}

	// Reboot: boot adoption streams through the budget, so the database
	// comes back complete but not resident.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir, Config{MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != n {
		t.Fatalf("rebooted Len = %d, want %d", db2.Len(), n)
	}
	st, _ = db2.ResidencyStats()
	if st.ResidentRecords != 0 || st.Pinned != 0 {
		t.Fatalf("boot residency = %+v, want empty (adoption evicts as it streams)", st)
	}
	for id, want := range before {
		fs, err := db2.Representation(id)
		if err != nil {
			t.Fatalf("rebooted Representation(%s): %v", id, err)
		}
		got, err := fs.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s: rebooted representation differs", id)
		}
	}
}

// TestResidencyColdReadDiskError pins the chaos contract of the paging
// path: an injected device error on a cold read surfaces as ErrStorage
// to that caller only — the database stays healthy (not degraded, no
// record lost, resident set untouched) and the next read succeeds.
func TestResidencyColdReadDiskError(t *testing.T) {
	db := pagedDB(t, Config{})
	for i := 0; i < 4; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	f := &chaos.Fault{Kind: chaos.DiskError, Count: 1}
	db.SetSegmentReadFault(f.Hook())
	_, err := db.Representation("r0")
	if !errors.Is(err, ErrStorage) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("cold read under disk fault = %v, want ErrStorage wrapping the injected error", err)
	}
	if errors.Is(err, ErrUnknownID) {
		t.Fatalf("cold read under disk fault misclassified as unknown id: %v", err)
	}

	// Query-scoped, not database-scoped: nothing degraded, nothing
	// evicted, nothing admitted by the failed pread.
	if deg := db.DegradedStatus(); deg.Degraded {
		t.Fatalf("a failed cold read degraded the database: %+v", deg)
	}
	if _, ok := db.Record("r0"); !ok {
		t.Fatal("record vanished after a failed cold read")
	}
	if st, _ := db.ResidencyStats(); st.ResidentRecords != 0 {
		t.Fatalf("failed pread changed the resident set: %+v", st)
	}

	// The fault window is over: the same read now succeeds.
	if _, err := db.Representation("r0"); err != nil {
		t.Fatalf("cold read after the fault healed: %v", err)
	}

	// Same contract through the query verification fan-out: one query
	// fails with a storage fault, the database keeps serving, and the
	// retry succeeds with the full answer.
	f2 := &chaos.Fault{Kind: chaos.DiskError, Count: 1}
	db.SetSegmentReadFault(f2.Hook())
	if _, err := db.ValueQuery(durSeq(0), 1e9); !errors.Is(err, ErrStorage) {
		t.Fatalf("query over faulted cold reads = %v, want ErrStorage", err)
	}
	db.SetSegmentReadFault(nil)
	matches, err := db.ValueQuery(durSeq(0), 1e9)
	if err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
	if len(matches) != 4 {
		t.Fatalf("query after fault returned %d matches, want 4", len(matches))
	}
	if deg := db.DegradedStatus(); deg.Degraded {
		t.Fatalf("query-path fault degraded the database: %+v", deg)
	}
}

// TestResidencyColdReadSlowRead: a gray-failure stall on the cold path
// delays the read but does not fail it — paging absorbs slowness.
func TestResidencyColdReadSlowRead(t *testing.T) {
	db := pagedDB(t, Config{})
	mustIngest(t, db, "slow", durSeq(1))
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	f := &chaos.Fault{Kind: chaos.SlowWrite, Delay: 5 * time.Millisecond, Count: 1}
	db.SetSegmentReadFault(f.Hook())
	start := time.Now()
	if _, err := db.Representation("slow"); err != nil {
		t.Fatalf("stalled cold read failed: %v", err)
	}
	if f.Trips() != 1 {
		t.Fatalf("fault trips = %d, want 1", f.Trips())
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("stall not observed: read took %v", elapsed)
	}
}

// TestResidencyResidentReadsSkipDisk: reads of resident payloads never
// touch the segment tier — under a budget large enough to hold
// everything, a permanently faulted disk is invisible to reads.
func TestResidencyResidentReadsSkipDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, Config{MemoryBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 4; i++ {
		mustIngest(t, db, fmt.Sprintf("r%d", i), durSeq(i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ := db.ResidencyStats()
	if st.ResidentRecords != 4 {
		t.Fatalf("records evicted under a sufficient budget: %+v", st)
	}

	f := &chaos.Fault{Kind: chaos.DiskError, Count: -1}
	db.SetSegmentReadFault(f.Hook())
	for i := 0; i < 4; i++ {
		if _, err := db.Representation(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatalf("resident read touched the faulted tier: %v", err)
		}
	}
	if f.Calls() != 0 {
		t.Fatalf("resident reads reached the segment tier %d times, want 0", f.Calls())
	}
}
