package core

// BenchmarkCheckpointDelta quantifies what the segment tier buys: after
// a base checkpoint of the full working set, each further checkpoint
// writes a delta segment proportional to the churn since the last one —
// not a full rewrite. The run emits BENCH_segment.json; CI gates on the
// full/delta byte ratio staying at or above the 10x floor at 1% churn.
//
// The default 2000-record working set keeps the smoke run cheap; set
// SEQREP_BENCH_100K=1 for the 100k-record acceptance configuration.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

type segmentBenchReport struct {
	Benchmark            string  `json:"benchmark"`
	Records              int     `json:"records"`
	ChurnRecords         int     `json:"churn_records"`
	FullSnapshotBytes    int64   `json:"full_snapshot_bytes"`
	DeltaCheckpointBytes int64   `json:"delta_checkpoint_bytes"`
	DeltaRatio           float64 `json:"delta_ratio"`
}

func BenchmarkCheckpointDelta(b *testing.B) {
	n := 2000
	if os.Getenv("SEQREP_BENCH_100K") != "" {
		n = 100_000
	}
	churn := n / 100
	id := func(i int) string { return fmt.Sprintf("r%08d", i) }

	// Compaction off: it would fold the deltas back into one segment
	// mid-run and muddy the per-checkpoint byte accounting.
	db, err := OpenDir(b.TempDir(), Config{Workers: 16, CompactThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	const batch = 512
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		items := make([]BatchItem, 0, hi-lo)
		for i := lo; i < hi; i++ {
			items = append(items, BatchItem{ID: id(i), Seq: durSeq(i)})
		}
		if _, err := db.IngestBatch(items); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	st, _ := db.SegmentStats()
	full := st.Bytes // the base segment holds the whole working set: the old full-snapshot cost

	// Steady-state churn: each iteration retires the oldest `churn` ids
	// and ingests as many new ones (the live set stays n records), then
	// checkpoints. Tier growth per iteration is the delta segment.
	rm, next := 0, n
	prevBytes := full
	var deltaTotal int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([]BatchItem, churn)
		for j := range items {
			items[j] = BatchItem{ID: id(next), Seq: durSeq(next)}
			next++
		}
		if _, err := db.IngestBatch(items); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < churn; j++ {
			if err := db.Remove(id(rm)); err != nil {
				b.Fatal(err)
			}
			rm++
		}
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		st, _ := db.SegmentStats()
		deltaTotal += st.Bytes - prevBytes
		prevBytes = st.Bytes
	}
	b.StopTimer()

	delta := deltaTotal / int64(b.N)
	if delta <= 0 {
		b.Fatalf("delta checkpoint wrote %d bytes for %d churned records", delta, churn)
	}
	ratio := float64(full) / float64(delta)
	b.ReportMetric(float64(delta), "delta_bytes/ckpt")
	b.ReportMetric(ratio, "full/delta")
	if ratio < 10 {
		b.Errorf("delta checkpoint ratio %.1fx is below the 10x floor (full %d bytes, delta %d bytes at %d/%d churn)",
			ratio, full, delta, churn, n)
	}

	report := segmentBenchReport{
		Benchmark:            "BenchmarkCheckpointDelta",
		Records:              n,
		ChurnRecords:         churn,
		FullSnapshotBytes:    full,
		DeltaCheckpointBytes: delta,
		DeltaRatio:           ratio,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_segment.json", append(blob, '\n'), 0o644); err != nil {
		b.Logf("BENCH_segment.json not written: %v", err)
	}
}
