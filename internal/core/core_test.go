package core

import (
	"math/rand"
	"strings"
	"testing"

	"seqrep/internal/filter"
	"seqrep/internal/seq"
	"seqrep/internal/store"
	"seqrep/internal/synth"
)

func mustDB(t testing.TB, cfg Config) *DB {
	t.Helper()
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// pagedDB opens a durable database in a throwaway directory with a
// 1-byte residency budget: once checkpointed, every clean payload is
// evicted and each exact verification pages back in from the segment
// tier — the "tiny" point of the residency test dimension.
func pagedDB(t testing.TB, cfg Config) *DB {
	t.Helper()
	cfg.MemoryBudget = 1
	db, err := OpenDir(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustIngest(t testing.TB, db *DB, id string, s seq.Sequence) {
	t.Helper()
	if err := db.Ingest(id, s); err != nil {
		t.Fatalf("ingest %q: %v", id, err)
	}
}

func feverDB(t *testing.T) *DB {
	t.Helper()
	// The archive keeps raw sequences so value-based queries compare at
	// full resolution, like the prior art the paper describes.
	db := mustDB(t, Config{Archive: store.NewMemArchive()})
	rng := rand.New(rand.NewSource(1996))
	exemplar, variants, err := synth.TwoPeakFamily(rng, 97)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "exemplar", exemplar)
	for v, s := range variants {
		mustIngest(t, db, v.String(), s)
	}
	three, err := synth.ThreePeakFever(97)
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "three-peaks", three)
	flat := synth.Const(97, 98.0)
	mustIngest(t, db, "flat", flat)
	return db
}

func TestNewDefaults(t *testing.T) {
	db := mustDB(t, Config{})
	cfg := db.Config()
	if cfg.Epsilon != 0.5 || cfg.Delta != 0.25 || cfg.BucketWidth != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.Breaker == nil {
		t.Error("no default breaker")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := New(Config{Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := New(Config{BucketWidth: -2}); err == nil {
		t.Error("negative bucket width accepted")
	}
}

func TestIngestValidation(t *testing.T) {
	db := mustDB(t, Config{})
	fever, _ := synth.Fever(synth.FeverOpts{})
	if err := db.Ingest("", fever); err == nil {
		t.Error("empty id accepted")
	}
	if err := db.Ingest("x", nil); err == nil {
		t.Error("empty sequence accepted")
	}
	bad := seq.Sequence{{T: 1, V: 0}, {T: 0, V: 0}}
	if err := db.Ingest("x", bad); err == nil {
		t.Error("invalid sequence accepted")
	}
	mustIngest(t, db, "x", fever)
	if err := db.Ingest("x", fever); err == nil {
		t.Error("duplicate id accepted")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestRecordAndIDs(t *testing.T) {
	db := feverDB(t)
	ids := db.IDs()
	if len(ids) != db.Len() {
		t.Fatalf("IDs %d vs Len %d", len(ids), db.Len())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs not sorted")
		}
	}
	rec, ok := db.Record("exemplar")
	if !ok {
		t.Fatal("exemplar missing")
	}
	if rec.N != 97 || rec.rep.Load() == nil || rec.Profile == nil {
		t.Errorf("record incomplete: %+v", rec)
	}
	if _, ok := db.Record("nope"); ok {
		t.Error("phantom record")
	}
}

func TestRemove(t *testing.T) {
	db := feverDB(t)
	before := db.Len()
	if err := db.Remove("three-peaks"); err != nil {
		t.Fatal(err)
	}
	if db.Len() != before-1 {
		t.Errorf("Len after remove = %d", db.Len())
	}
	if err := db.Remove("three-peaks"); err == nil {
		t.Error("double remove accepted")
	}
	// Interval postings for the removed id are gone.
	matches, err := db.IntervalQuery(7, 7) // wide range over fever spacing
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == "three-peaks" {
			t.Error("removed id still indexed")
		}
	}
}

func TestIngestWithArchiveAndRaw(t *testing.T) {
	arch := store.NewMemArchive()
	db := mustDB(t, Config{Archive: arch})
	fever, _ := synth.Fever(synth.FeverOpts{})
	mustIngest(t, db, "f", fever)
	raw, err := db.Raw("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(fever) {
		t.Errorf("raw %d samples", len(raw))
	}
	for i := range fever {
		if raw[i] != fever[i] {
			t.Fatal("archive lost fidelity")
		}
	}
	if err := db.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Raw("f"); err == nil {
		t.Error("archived raw survived removal")
	}
	noArch := mustDB(t, Config{})
	mustIngest(t, noArch, "f", fever)
	if _, err := noArch.Raw("f"); err == nil {
		t.Error("Raw without archive accepted")
	}
}

func TestReconstruct(t *testing.T) {
	db := mustDB(t, Config{})
	fever, _ := synth.Fever(synth.FeverOpts{})
	mustIngest(t, db, "f", fever)
	back, err := db.Reconstruct("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(fever) {
		t.Fatalf("reconstructed %d samples", len(back))
	}
	// Within ε everywhere (interpolation representation).
	for i := range fever {
		d := back[i].V - fever[i].V
		if d < 0 {
			d = -d
		}
		if d > 0.5+1e-9 {
			t.Errorf("sample %d deviates %g", i, d)
		}
	}
	if _, err := db.Reconstruct("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// The preprocessing hook: ingest normalized, verify the stored profile is
// computed on the normalized form.
func TestIngestWithPreprocess(t *testing.T) {
	chain := &filter.Chain{}
	chain.Add("normalize", func(s seq.Sequence) (seq.Sequence, error) { return s.Normalize() })
	db := mustDB(t, Config{Preprocess: chain, Epsilon: 0.05, Delta: 0.02})
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	mustIngest(t, db, "f", fever)
	rec, _ := db.Record("f")
	if len(rec.Profile.Peaks) != 2 {
		t.Errorf("normalized fever peaks = %d (symbols %q)", len(rec.Profile.Peaks), rec.Profile.Symbols)
	}
}

// A preprocessing stage that fails must abort ingestion cleanly.
func TestIngestPreprocessFailure(t *testing.T) {
	chain := &filter.Chain{}
	chain.Add("explode", func(s seq.Sequence) (seq.Sequence, error) { return nil, seq.ErrEmpty })
	db := mustDB(t, Config{Preprocess: chain})
	fever, _ := synth.Fever(synth.FeverOpts{})
	if err := db.Ingest("f", fever); err == nil {
		t.Error("failing preprocess accepted")
	}
	if db.Len() != 0 {
		t.Error("failed ingest left a record")
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := feverDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 20; j++ {
				if _, err := db.PeakCount(2, 1); err != nil {
					done <- err
					return
				}
				if _, err := db.MatchPattern("[FD]*(U+F*D[FD]*)*"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Sequences sharing a symbol string are grouped so pattern queries
// evaluate each distinct string once; removal keeps the grouping exact.
func TestSymbolInterning(t *testing.T) {
	db := mustDB(t, Config{})
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	for _, id := range []string{"a", "b", "c"} {
		// Identical shapes (shifting preserves symbols exactly).
		mustIngest(t, db, id, fever.ShiftValue(float64(len(id))))
	}
	three, _ := synth.ThreePeakFever(97)
	mustIngest(t, db, "odd", three)

	if got := len(db.symIndex); got != 2 {
		t.Fatalf("distinct symbol groups = %d, want 2", got)
	}
	ids, err := db.MatchPattern("[FD]*(U+F*D[FD]*){2}(U+F*)?")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Errorf("MatchPattern = %v", ids)
	}
	if err := db.Remove("b"); err != nil {
		t.Fatal(err)
	}
	ids, err = db.MatchPattern("[FD]*(U+F*D[FD]*){2}(U+F*)?")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("after removal: %v", ids)
	}
	if err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove("c"); err != nil {
		t.Fatal(err)
	}
	if got := len(db.symIndex); got != 1 {
		t.Errorf("empty groups retained: %d", got)
	}
}

// SearchPattern hits are ordered and carry per-sequence time spans even
// when symbol strings are shared.
func TestSearchPatternSharedSymbols(t *testing.T) {
	db := mustDB(t, Config{})
	fever, _ := synth.Fever(synth.FeverOpts{Samples: 97})
	mustIngest(t, db, "x", fever)
	mustIngest(t, db, "y", fever.ShiftTime(100)) // same symbols, shifted times
	hits, err := db.SearchPattern("U+F*D")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 { // two peaks in each
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].ID > hits[i].ID {
			t.Error("hits not ordered by id")
		}
	}
	// Time spans reflect each sequence's own axis.
	if hits[0].ID != "x" || hits[2].ID != "y" {
		t.Fatalf("hit ids: %+v", hits)
	}
	if hits[2].TimeLo < 100 {
		t.Errorf("shifted sequence hit at time %g", hits[2].TimeLo)
	}
}

func TestStats(t *testing.T) {
	db := feverDB(t)
	st := db.Stats()
	if st.Sequences != db.Len() {
		t.Errorf("Sequences = %d, Len = %d", st.Sequences, db.Len())
	}
	if st.Samples < 9*49 { // nine 97ish-sample sequences
		t.Errorf("Samples = %d", st.Samples)
	}
	if st.Segments <= st.Sequences {
		t.Errorf("Segments = %d", st.Segments)
	}
	if st.StoredFloats < st.Segments*4 {
		t.Errorf("StoredFloats = %d for %d segments", st.StoredFloats, st.Segments)
	}
	if st.SymbolGroups < 2 || st.SymbolGroups > st.Sequences {
		t.Errorf("SymbolGroups = %d", st.SymbolGroups)
	}
	if st.IntervalCount == 0 || st.IntervalBucket == 0 {
		t.Errorf("interval index empty: %+v", st)
	}
	empty := mustDB(t, Config{})
	if got := empty.Stats(); got != (Stats{Shards: 16, IndexCoeffs: 8}) {
		t.Errorf("empty stats = %+v", got)
	}
}

func TestIngestConcurrent(t *testing.T) {
	db := mustDB(t, Config{})
	fever, _ := synth.Fever(synth.FeverOpts{})
	done := make(chan error, 10)
	for i := 0; i < 10; i++ {
		go func(n int) {
			done <- db.Ingest(string(rune('a'+n)), fever)
		}(i)
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 10 {
		t.Errorf("Len = %d", db.Len())
	}
	if !strings.HasPrefix(db.IDs()[0], "a") {
		t.Errorf("IDs = %v", db.IDs())
	}
}
