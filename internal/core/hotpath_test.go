package core

// Hot-path behaviour of the columnar feature store: the vantage-point
// trees must survive mutation overlays (tombstones, appended tails,
// threshold-triggered rebuilds) without ever diverging from the scan,
// candidate generation must examine far fewer vectors than the
// population on clustered data, and the planner's per-query allocation
// cost must not grow with database size.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"seqrep/internal/dist"
)

// clusteredDB ingests n sequences of length ln in 50 well-separated
// amplitude families and returns an exemplar inside family 3.
func clusteredDB(t testing.TB, cfg Config, n, ln int) (*DB, []BatchItem) {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	db := mustDB(t, cfg)
	items := make([]BatchItem, 0, n)
	for i := 0; i < n; i++ {
		s := smoothWalk(rng, ln)
		level := float64(i%50) * 40
		for j := range s {
			s[j].V += level
		}
		items = append(items, BatchItem{ID: fmt.Sprintf("c-%05d", i), Seq: s})
	}
	if got, err := db.IngestBatch(items); err != nil || got != n {
		t.Fatalf("ingest: %d/%d, %v", got, n, err)
	}
	return db, items
}

// TestFeatureStoreChurnRebuild drives one length group through every
// overlay transition — tree build, tombstones past the compaction
// threshold, an appended tail past the invalidation threshold, rebuild —
// asserting indexed ≡ scan at each step.
func TestFeatureStoreChurnRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	db := mustDB(t, Config{IndexLeaf: 1})
	base := smoothWalk(rng, 32)
	ingest := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mustIngest(t, db, fmt.Sprintf("s-%03d", i), jitter(rng, base, 4))
		}
	}
	exemplar := jitter(rng, base, 0.5)
	check := func(stage string) QueryStats {
		t.Helper()
		indexed, stats, err := db.DistanceQueryStats(exemplar, dist.Euclidean, 6)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		scanned, _, err := db.distanceScan(exemplar, dist.Euclidean, 6)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !reflect.DeepEqual(indexed, scanned) {
			t.Fatalf("%s: indexed %+v != scan %+v", stage, indexed, scanned)
		}
		return stats
	}

	ingest(0, 200)
	check("fresh")
	g := db.findex.group(32, false)
	if g == nil || g.tree == nil || g.treeN != 200 {
		t.Fatalf("trees not built over the full group: %+v", g)
	}

	// Tombstone below the compaction threshold: rows stay, dead rise.
	for i := 0; i < 40; i++ {
		if err := db.Remove(fmt.Sprintf("s-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	check("tombstoned")
	if g.deadCount == 0 {
		t.Fatal("removals did not tombstone")
	}

	// Cross the threshold: the store compacts along the way (amortized),
	// leaving 80 live rows and fewer tombstones than removals.
	for i := 40; i < 120; i++ {
		if err := db.Remove(fmt.Sprintf("s-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if live := g.live(); live != 80 {
		t.Fatalf("live = %d after 120 removals, want 80", live)
	}
	if g.deadCount > g.staleMax() {
		t.Fatalf("tombstones never compacted: dead=%d rows=%d", g.deadCount, len(g.recs))
	}
	check("compacted") // rebuilds the trees on demand
	if g.tree == nil || g.treeN != 80 {
		t.Fatalf("trees not rebuilt after compaction: treeN=%d", g.treeN)
	}

	// Append a tail past the invalidation threshold (32 + 80/4 = 52).
	ingest(200, 260)
	if g.tree != nil {
		t.Fatal("oversized tail did not invalidate the trees")
	}
	stats := check("tail-rebuilt")
	if g.tree == nil || g.treeN != 140 {
		t.Fatalf("trees not rebuilt over the tail: treeN=%d", g.treeN)
	}
	if stats.Candidates+stats.Pruned != stats.Examined {
		t.Fatalf("stats don't add up: %+v", stats)
	}

	// Draining the group entirely must release its record pointers —
	// tombstones may never outnumber the live population — and retire
	// the empty group from the index.
	for i := 120; i < 260; i++ {
		if err := db.Remove(fmt.Sprintf("s-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.recs) != 0 || g.deadCount != 0 {
		t.Fatalf("drained group retains %d rows (%d dead)", len(g.recs), g.deadCount)
	}
	if !g.retired || db.findex.group(32, false) != nil {
		t.Fatalf("drained group not retired (retired=%v)", g.retired)
	}
	check("drained")

	// Re-ingesting at the same length creates a fresh group and the
	// planner sees the new records.
	ingest(300, 305)
	indexed, err := db.DistanceQuery(exemplar, dist.Euclidean, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed) != 5 {
		t.Fatalf("after retire+reingest: %d matches, want 5", len(indexed))
	}
	check("reborn")
}

// TestIndexedQuerySubLinear is the tentpole property: on a clustered
// corpus the tree examines a small fraction of the length group while
// returning the scan's exact answer.
func TestIndexedQuerySubLinear(t *testing.T) {
	const n = 4000
	db, items := clusteredDB(t, Config{}, n, 64)
	exemplar := items[3].Seq // family 3
	indexed, stats, err := db.DistanceQueryStats(exemplar, dist.Euclidean, 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan != PlanIndex {
		t.Fatalf("plan = %q", stats.Plan)
	}
	if len(indexed) == 0 {
		t.Fatal("query found nothing in its own family")
	}
	if stats.Examined >= n/4 {
		t.Errorf("examined %d of %d vectors: candidate generation is not sub-linear", stats.Examined, n)
	}
	scanned, _, err := db.distanceScan(exemplar, dist.Euclidean, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indexed, scanned) {
		t.Fatalf("indexed != scan on clustered corpus")
	}
}

// TestIndexedQueryAllocs guards the planner's per-query allocation cost:
// over a 2000-sequence database the indexed path must stay within a
// fixed budget — query features, pooled candidate scratch, the worker
// fan-out and the matches themselves; nothing proportional to N.
func TestIndexedQueryAllocs(t *testing.T) {
	db, items := clusteredDB(t, Config{Workers: 2}, 2000, 64)
	exemplar := items[3].Seq
	m := dist.Euclidean
	if _, _, err := db.DistanceQueryStats(exemplar, m, 2); err != nil { // warm: trees + pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := db.DistanceQueryStats(exemplar, m, 2); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 60
	if allocs > budget {
		t.Errorf("indexed DistanceQueryStats allocates %.0f per op over 2000 sequences, budget %d", allocs, budget)
	}
}
