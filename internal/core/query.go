package core

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"seqrep/internal/dist"
	"seqrep/internal/feature"
	"seqrep/internal/pattern"
	"seqrep/internal/rep"
	"seqrep/internal/seq"
)

// Match is one query result. Exact matches are members of the query's
// sequence set (§2.2 item 4); approximate matches deviate from it along
// named feature dimensions, each within its tolerance. Deviations maps
// dimension name to the observed deviation (0 for exact dimensions).
type Match struct {
	ID         string
	Exact      bool
	Deviations map[string]float64
}

// matchLess orders matches: exact first, then by total deviation, then id.
func matchLess(a, b Match) bool {
	if a.Exact != b.Exact {
		return a.Exact
	}
	da, dbv := totalDeviation(a), totalDeviation(b)
	if da != dbv {
		return da < dbv
	}
	return a.ID < b.ID
}

// matchCompare is matchLess as a three-way comparison for slices.SortFunc,
// evaluating each key once per comparison (matchLess twice would walk the
// Deviations maps up to four times).
func matchCompare(a, b Match) int {
	if a.Exact != b.Exact {
		if a.Exact {
			return -1
		}
		return 1
	}
	if da, db := totalDeviation(a), totalDeviation(b); da != db {
		if da < db {
			return -1
		}
		return 1
	}
	return strings.Compare(a.ID, b.ID)
}

func totalDeviation(m Match) float64 {
	t := 0.0
	for _, d := range m.Deviations {
		t += d
	}
	return t
}

// SortMatches orders matches the way every materialized query returns
// them: exact matches first, then by total deviation, ties broken by id.
// Callers of the streaming query forms (which yield in discovery order
// unless TopK is set) use it to restore the canonical order.
func SortMatches(matches []Match) {
	slices.SortFunc(matches, matchCompare)
}

// storedSequence reads the comparison form of a record: raw samples from
// the archive when one is configured, the representation reconstruction
// otherwise. Under a memory budget the representation may be cold —
// materialize pages it back in from the segment tier, so this is the
// one place the query verification fan-out touches disk. A failure here
// is a storage fault, not a bad query — the record is committed but its
// comparison form is unreadable — so the error wraps ErrStorage for
// callers (the serving layer) to classify; a record removed mid-scan
// surfaces the fault-in's ErrUnknownID, which verifyReadError turns
// into a skip.
func (db *DB) storedSequence(rec *Record) (seq.Sequence, error) {
	if db.cfg.Archive != nil {
		s, err := db.Raw(rec.ID)
		if err != nil {
			return nil, fmt.Errorf("core: %w: %w", ErrStorage, err)
		}
		return s, nil
	}
	fs, err := db.materialize(rec)
	if err != nil {
		return nil, err
	}
	s, err := fs.Reconstruct()
	if err != nil {
		return nil, fmt.Errorf("core: %w: %w", ErrStorage, err)
	}
	return s, nil
}

// ValueQuery implements the prior-art semantics the paper generalizes away
// from (their Figure 1): a stored sequence matches when every sample lies
// within ±eps of the exemplar's corresponding sample. Only sequences of
// the exemplar's length participate; comparison uses raw samples from the
// archive when available and representation reconstructions otherwise.
//
// The query is routed through the planner (see ValueQueryStats): when the
// feature index is enabled, candidates are pruned by the DFT lower bound
// before the early-abandoning band verification; otherwise the query runs
// as a shard-parallel scan.
func (db *DB) ValueQuery(exemplar seq.Sequence, eps float64) ([]Match, error) {
	matches, _, err := db.ValueQueryStats(exemplar, eps)
	return matches, err
}

// valueScan is ValueQuery's full-scan plan: shard-parallel across the
// configured worker pool, early-abandoning each candidate at the first
// sample outside the band. It exists for tests and benchmarks that pin
// the scan plan regardless of the index configuration.
func (db *DB) valueScan(exemplar seq.Sequence, eps float64) ([]Match, QueryStats, error) {
	spec, err := db.valueSpec(exemplar, eps)
	if err != nil {
		return nil, QueryStats{}, err
	}
	spec.lb = nil // pin the scan plan
	return db.collectSorted(context.Background(), spec, QueryOptions{})
}

// DistanceQuery queries the database under an arbitrary distance metric
// (see package dist): a stored sequence matches when m's distance from
// the exemplar is at most eps. Like ValueQuery it compares raw samples
// when an archive is configured and reconstructions otherwise, and skips
// sequences whose length differs from the exemplar's.
//
// The query is routed through the planner (see DistanceQueryStats):
// metrics with a feature-space lower bound (l2, zl2) run through the DFT
// feature index, everything else as a shard-parallel scan.
func (db *DB) DistanceQuery(exemplar seq.Sequence, m dist.Metric, eps float64) ([]Match, error) {
	matches, _, err := db.DistanceQueryStats(exemplar, m, eps)
	return matches, err
}

// distanceScan is DistanceQuery's full-scan plan, shard-parallel across
// the configured worker pool. It exists for tests and benchmarks that
// pin the scan plan regardless of the index configuration.
func (db *DB) distanceScan(exemplar seq.Sequence, m dist.Metric, eps float64) ([]Match, QueryStats, error) {
	spec, err := db.distanceSpec(exemplar, m, eps)
	if err != nil {
		return nil, QueryStats{}, err
	}
	spec.lb = nil // pin the scan plan
	return db.collectSorted(context.Background(), spec, QueryOptions{})
}

// MatchPattern returns the ids of sequences whose whole slope-sign symbol
// string matches the pattern — the §4.4 query mechanism. The pattern uses
// the U/F/D alphabet (see package pattern; helpers such as
// pattern.TwoPeak() build the paper's canned queries). Each distinct
// symbol string in the database is evaluated once, however many sequences
// share it.
func (db *DB) MatchPattern(src string) ([]string, error) {
	p, err := pattern.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	db.imu.RLock()
	groups := make(map[string][]string, len(db.symIndex))
	for symbols, ids := range db.symIndex {
		// Deep-copy: insertSorted/removeSorted mutate the backing
		// arrays in place under the write lock.
		groups[symbols] = append([]string(nil), ids...)
	}
	db.imu.RUnlock()
	var out []string
	for symbols, ids := range groups {
		if p.Match(symbols) {
			out = append(out, ids...)
		}
	}
	sort.Strings(out)
	return out, nil
}

// PatternHit locates one occurrence of a pattern inside a sequence's
// symbol string, mapped back to the time span of the matched segments.
type PatternHit struct {
	ID             string
	SegLo, SegHi   int     // matched segment range [SegLo, SegHi)
	TimeLo, TimeHi float64 // time span covered by those segments
}

// SearchPattern finds every occurrence of the pattern within each stored
// symbol string (leftmost-longest, non-overlapping), for queries like the
// seismic "sudden vigorous activity" that target subsequences rather than
// whole sequences. Occurrence spans are computed once per distinct symbol
// string and mapped back to each sharing sequence's own time axis. Hits
// are ordered by (id, segment).
func (db *DB) SearchPattern(src string) ([]PatternHit, error) {
	p, err := pattern.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	db.imu.RLock()
	groups := make(map[string][]string, len(db.symIndex))
	for symbols, ids := range db.symIndex {
		// Deep-copy: insertSorted/removeSorted mutate the backing
		// arrays in place under the write lock.
		groups[symbols] = append([]string(nil), ids...)
	}
	db.imu.RUnlock()
	var out []PatternHit
	for symbols, ids := range groups {
		spans := p.FindAll(symbols)
		if len(spans) == 0 {
			continue
		}
		for _, id := range ids {
			rec, ok := db.Record(id)
			if !ok {
				continue
			}
			// The hit spans are mapped to time through the representation,
			// which may need paging in; a record removed mid-walk is
			// skipped, a genuine read fault aborts the search.
			fs, err := db.materialize(rec)
			if err != nil {
				if err = db.verifyReadError(rec, err); err != nil {
					return nil, fmt.Errorf("core: pattern search reading %q: %w", id, err)
				}
				continue
			}
			for _, span := range spans {
				lo, hi := span[0], span[1]
				if hi <= lo {
					continue
				}
				out = append(out, PatternHit{
					ID:     id,
					SegLo:  lo,
					SegHi:  hi,
					TimeLo: fs.Segments[lo].StartT,
					TimeHi: fs.Segments[hi-1].EndT,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].SegLo < out[j].SegLo
	})
	return out, nil
}

// PeakCount answers "sequences with exactly k peaks" with a tolerance on
// the count dimension: matches with |peaks - k| == 0 are exact; deviations
// up to tol are approximate (§2.2's example of deviating "in the number of
// peaks" dimension).
func (db *DB) PeakCount(k, tol int) ([]Match, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: negative peak count %d", k)
	}
	if tol < 0 {
		return nil, fmt.Errorf("core: negative tolerance %d", tol)
	}
	var out []Match
	for _, id := range db.IDs() {
		rec, ok := db.Record(id)
		if !ok {
			continue
		}
		dev := math.Abs(float64(len(rec.Profile.Peaks) - k))
		if dev <= float64(tol) {
			out = append(out, Match{
				ID:         id,
				Exact:      dev == 0,
				Deviations: map[string]float64{"peaks": dev},
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return matchLess(out[i], out[j]) })
	return out, nil
}

// IntervalMatch is one result of an interval query: the sequence and the
// positions (gap numbers) whose peak-to-peak interval fell in range.
type IntervalMatch struct {
	ID        string
	Positions []int
	Intervals []float64
}

// IntervalQuery answers the paper's §5.2 R-R query "find all sequences
// with an inter-peak interval of n ± eps" through the inverted index
// (Figure 10). Results are ordered by id.
func (db *DB) IntervalQuery(n, eps float64) ([]IntervalMatch, error) {
	if eps < 0 {
		return nil, fmt.Errorf("core: negative tolerance %g", eps)
	}
	db.imu.RLock()
	refs, err := db.rrIndex.Query(n-eps, n+eps)
	db.imu.RUnlock()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var out []IntervalMatch
	for _, ref := range refs {
		rec, ok := db.Record(ref.ID)
		if !ok {
			continue
		}
		pos := int(ref.Pos)
		if pos < 0 || pos >= len(rec.Profile.Intervals) {
			continue
		}
		if len(out) == 0 || out[len(out)-1].ID != ref.ID {
			out = append(out, IntervalMatch{ID: ref.ID})
		}
		m := &out[len(out)-1]
		m.Positions = append(m.Positions, pos)
		m.Intervals = append(m.Intervals, rec.Profile.Intervals[pos])
	}
	return out, nil
}

// ShapeTolerance sets the per-dimension error tolerances of a generalized
// approximate query (§2.2: "The error tolerance must be a metric function
// defined over each dimension"). Zero tolerances demand exact feature
// agreement.
type ShapeTolerance struct {
	// Peaks tolerates a difference in peak count.
	Peaks int
	// Height tolerates relative deviation of peak heights above baseline
	// (0.2 = 20%).
	Height float64
	// Spacing tolerates relative deviation of normalized peak spacing
	// (dilation-invariant).
	Spacing float64
}

// ShapeQuery is the generalized approximate query: the exemplar denotes
// the whole equivalence class of sequences sharing its feature profile
// under feature-preserving transformations (time/amplitude shift, scaling,
// dilation). The exemplar is pushed through the same representation
// pipeline as stored data; candidates are compared feature-wise with
// per-dimension tolerances. The candidate scan is shard-parallel across
// the configured worker pool; ShapeQueryCtx adds cancellation and result
// bounds.
func (db *DB) ShapeQuery(exemplar seq.Sequence, tol ShapeTolerance) ([]Match, error) {
	matches, _, err := db.ShapeQueryCtx(context.Background(), exemplar, tol, QueryOptions{})
	return matches, err
}

// shapeVerify compares one record's feature signature against the
// exemplar's — ShapeQuery's verification kernel. fs is the record's
// materialized representation (span and baseline read segment
// boundaries, which are not part of the resident profile).
func shapeVerify(rec *Record, fs *rep.FunctionSeries, qSig sig, tol ShapeTolerance) (Match, bool, error) {
	span := fs.Segments[len(fs.Segments)-1].EndT - fs.Segments[0].StartT
	base := baselineOf(fs)
	rSig, err := shapeSignature(peakPoints(rec.Profile), span, base)
	if err != nil {
		return Match{}, false, nil // featureless sequence cannot match a shaped exemplar
	}

	devPeaks := math.Abs(float64(len(rSig.spacing)+1) - float64(len(qSig.spacing)+1))
	if devPeaks > float64(tol.Peaks) {
		return Match{}, false, nil
	}
	devHeight, devSpacing := 0.0, 0.0
	if devPeaks == 0 {
		devHeight = relDeviation(qSig.heights, rSig.heights)
		devSpacing = relDeviation(qSig.spacing, rSig.spacing)
		if devHeight > tol.Height+1e-12 || devSpacing > tol.Spacing+1e-12 {
			return Match{}, false, nil
		}
	}
	const exactSlack = 1e-9
	return Match{
		ID:    rec.ID,
		Exact: devPeaks == 0 && devHeight <= exactSlack && devSpacing <= exactSlack,
		Deviations: map[string]float64{
			"peaks":   devPeaks,
			"height":  devHeight,
			"spacing": devSpacing,
		},
	}, true, nil
}

// queryProfile carries the exemplar's extracted features.
type queryProfile struct {
	peaks []peakPoint
	span  float64
	base  float64
}

type peakPoint struct {
	t, v float64
}

// profileOf runs the exemplar through the ingestion pipeline (without
// storing it) and extracts peak features.
func (db *DB) profileOf(exemplar seq.Sequence) (*queryProfile, error) {
	if len(exemplar) == 0 {
		return nil, fmt.Errorf("core: empty exemplar")
	}
	work := exemplar
	if db.cfg.Preprocess != nil {
		pre, err := db.cfg.Preprocess.Run(exemplar)
		if err != nil {
			return nil, fmt.Errorf("core: preprocessing exemplar: %w", err)
		}
		work = pre
	}
	segs, err := db.cfg.Breaker.Break(work)
	if err != nil {
		return nil, fmt.Errorf("core: breaking exemplar: %w", err)
	}
	fs, err := rep.Build(work, segs, db.cfg.Representer)
	if err != nil {
		return nil, fmt.Errorf("core: representing exemplar: %w", err)
	}
	profile, err := feature.Extract(fs, db.cfg.Delta)
	if err != nil {
		return nil, fmt.Errorf("core: extracting exemplar features: %w", err)
	}
	span := fs.Segments[len(fs.Segments)-1].EndT - fs.Segments[0].StartT
	return &queryProfile{peaks: peakPoints(profile), span: span, base: baselineOf(fs)}, nil
}

// shapeSignature normalizes peaks into transformation-invariant vectors:
// spacing as fractions of the time span (invariant to time shift and
// dilation) and heights above baseline normalized by the tallest peak
// (invariant to amplitude shift and scaling).
type sig struct {
	spacing []float64
	heights []float64
}

func shapeSignature(peaks []peakPoint, span, base float64) (sig, error) {
	if len(peaks) == 0 {
		return sig{}, fmt.Errorf("no peaks")
	}
	if span <= 0 {
		return sig{}, fmt.Errorf("empty time span")
	}
	s := sig{heights: make([]float64, len(peaks))}
	tallest := 0.0
	for i, p := range peaks {
		h := p.v - base
		s.heights[i] = h
		if h > tallest {
			tallest = h
		}
	}
	if tallest <= 0 {
		return sig{}, fmt.Errorf("peaks not above baseline")
	}
	for i := range s.heights {
		s.heights[i] /= tallest
	}
	for i := 1; i < len(peaks); i++ {
		s.spacing = append(s.spacing, (peaks[i].t-peaks[i-1].t)/span)
	}
	return s, nil
}

// relDeviation returns the largest absolute difference between paired
// entries, as a fraction relative to a unit-normalized signature.
func relDeviation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func peakPoints(p *feature.Profile) []peakPoint {
	out := make([]peakPoint, 0, len(p.Peaks))
	for _, pk := range p.Peaks {
		out = append(out, peakPoint{t: pk.Time, v: pk.Value})
	}
	return out
}

// baselineOf estimates a sequence's resting level from its representation:
// the minimum boundary value across segments.
func baselineOf(fs *rep.FunctionSeries) float64 {
	base := math.Inf(1)
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		if sg.StartV < base {
			base = sg.StartV
		}
		if sg.EndV < base {
			base = sg.EndV
		}
	}
	return base
}
