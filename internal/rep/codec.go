package rep

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"seqrep/internal/fit"
)

// Binary codec for FunctionSeries. The format is versioned and validated
// on decode so corrupt archives fail loudly rather than producing garbage
// representations.
//
//	magic   "SREP" (4 bytes)
//	version u8 (currently 1)
//	n       u32 (original sample count)
//	k       u32 (segment count)
//	per segment:
//	  lo, hi          u32, u32
//	  startT, startV  f64, f64
//	  endT, endV      f64, f64
//	  kind            u8
//	  paramCount      u16
//	  params          f64 × paramCount

var codecMagic = [4]byte{'S', 'R', 'E', 'P'}

const codecVersion = 1

// maxParams bounds the per-segment parameter count accepted by the
// decoder; no supported curve family comes close.
const maxParams = 256

// Encode writes the representation to w in the binary format.
func (fs *FunctionSeries) Encode(w io.Writer) error {
	if err := fs.Validate(); err != nil {
		return fmt.Errorf("rep: refusing to encode invalid series: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(codecMagic[:]); err != nil {
		return fmt.Errorf("rep: encode: %w", err)
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return fmt.Errorf("rep: encode: %w", err)
	}
	var u32 [4]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	var u64 [8]byte
	putF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v))
		_, err := bw.Write(u64[:])
		return err
	}
	if err := putU32(uint32(fs.N)); err != nil {
		return fmt.Errorf("rep: encode: %w", err)
	}
	if err := putU32(uint32(len(fs.Segments))); err != nil {
		return fmt.Errorf("rep: encode: %w", err)
	}
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		if err := putU32(uint32(sg.Lo)); err != nil {
			return fmt.Errorf("rep: encode: %w", err)
		}
		if err := putU32(uint32(sg.Hi)); err != nil {
			return fmt.Errorf("rep: encode: %w", err)
		}
		for _, v := range []float64{sg.StartT, sg.StartV, sg.EndT, sg.EndV} {
			if err := putF64(v); err != nil {
				return fmt.Errorf("rep: encode: %w", err)
			}
		}
		if err := bw.WriteByte(byte(sg.Kind)); err != nil {
			return fmt.Errorf("rep: encode: %w", err)
		}
		if len(sg.Params) > maxParams {
			return fmt.Errorf("rep: segment %d has %d params, max %d", i, len(sg.Params), maxParams)
		}
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], uint16(len(sg.Params)))
		if _, err := bw.Write(u16[:]); err != nil {
			return fmt.Errorf("rep: encode: %w", err)
		}
		for _, v := range sg.Params {
			if err := putF64(v); err != nil {
				return fmt.Errorf("rep: encode: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("rep: encode: %w", err)
	}
	return nil
}

// Decode reads a representation from r, validating structure.
func Decode(r io.Reader) (*FunctionSeries, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("rep: decode magic: %w", err)
	}
	if magic != codecMagic {
		return nil, fmt.Errorf("rep: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("rep: decode version: %w", err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("rep: unsupported version %d", version)
	}
	var u32 [4]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	var u64 [8]byte
	getF64 := func() (float64, error) {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(u64[:])), nil
	}
	n, err := getU32()
	if err != nil {
		return nil, fmt.Errorf("rep: decode n: %w", err)
	}
	k, err := getU32()
	if err != nil {
		return nil, fmt.Errorf("rep: decode segment count: %w", err)
	}
	if k == 0 || k > n {
		return nil, fmt.Errorf("rep: implausible segment count %d for %d samples", k, n)
	}
	fs := &FunctionSeries{N: int(n), Segments: make([]Segment, 0, k)}
	for i := uint32(0); i < k; i++ {
		var sg Segment
		lo, err := getU32()
		if err != nil {
			return nil, fmt.Errorf("rep: decode segment %d: %w", i, err)
		}
		hi, err := getU32()
		if err != nil {
			return nil, fmt.Errorf("rep: decode segment %d: %w", i, err)
		}
		sg.Lo, sg.Hi = int(lo), int(hi)
		for _, dst := range []*float64{&sg.StartT, &sg.StartV, &sg.EndT, &sg.EndV} {
			if *dst, err = getF64(); err != nil {
				return nil, fmt.Errorf("rep: decode segment %d: %w", i, err)
			}
		}
		kindByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("rep: decode segment %d kind: %w", i, err)
		}
		sg.Kind = fit.Kind(kindByte)
		var u16 [2]byte
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return nil, fmt.Errorf("rep: decode segment %d param count: %w", i, err)
		}
		pc := binary.LittleEndian.Uint16(u16[:])
		if pc > maxParams {
			return nil, fmt.Errorf("rep: segment %d claims %d params, max %d", i, pc, maxParams)
		}
		sg.Params = make([]float64, pc)
		for j := range sg.Params {
			if sg.Params[j], err = getF64(); err != nil {
				return nil, fmt.Errorf("rep: decode segment %d param %d: %w", i, j, err)
			}
		}
		fs.Segments = append(fs.Segments, sg)
	}
	if err := fs.Validate(); err != nil {
		return nil, fmt.Errorf("rep: decoded series invalid: %w", err)
	}
	return fs, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (fs *FunctionSeries) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := fs.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (fs *FunctionSeries) UnmarshalBinary(data []byte) error {
	decoded, err := Decode(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*fs = *decoded
	return nil
}
