// Package rep defines the compact approximate representation at the centre
// of the paper (§4): a sequence of real-valued functions, one per
// subsequence, together with the subsequence boundary points. This is what
// the database stores, indexes and queries instead of raw samples; raw
// sequences remain in archival storage for when finer resolution is needed.
//
// A line segment stores four coefficients-and-breakpoints parameters plus
// its endpoints — the accounting behind the paper's ~17× space reduction
// claim for 540-point ECGs (§5.2).
package rep

import (
	"fmt"
	"math"

	"seqrep/internal/breaking"
	"seqrep/internal/fit"
	"seqrep/internal/seq"
)

// Segment is one represented subsequence: its sample range, its boundary
// points (the paper keeps start/end points with any representation — they
// feed the peak table of their Table 1), and the fitted function.
type Segment struct {
	Lo, Hi         int     // inclusive sample index range in the original sequence
	StartT, StartV float64 // first sample of the subsequence
	EndT, EndV     float64 // last sample of the subsequence
	Kind           fit.Kind
	Params         []float64
}

// Curve reconstructs the segment's fitted function.
func (sg *Segment) Curve() (fit.Curve, error) {
	return fit.Decode(sg.Kind, sg.Params)
}

// Len returns the number of samples the segment covers.
func (sg *Segment) Len() int { return sg.Hi - sg.Lo + 1 }

// Slope returns the segment's characteristic slope: the line slope for
// line segments, and the chord slope (ΔV/ΔT between the boundary points)
// for other families. A zero-duration segment has slope 0.
func (sg *Segment) Slope() float64 {
	if sg.Kind == fit.KindLine && len(sg.Params) == 2 {
		return sg.Params[0]
	}
	if sg.EndT == sg.StartT {
		return 0
	}
	return (sg.EndV - sg.StartV) / (sg.EndT - sg.StartT)
}

// FunctionSeries is the compact representation of one sequence: an ordered
// list of represented subsequences covering all N original samples.
type FunctionSeries struct {
	N        int // original sample count
	Segments []Segment
}

// Build constructs the representation from a segmentation. When representer
// is nil each segment keeps the breaking algorithm's byproduct curve; the
// paper instead breaks with interpolation lines and *represents* with
// regression lines (§4.4), which a non-nil representer refits.
func Build(s seq.Sequence, segs []breaking.Segment, representer fit.Fitter) (*FunctionSeries, error) {
	if err := breaking.Validate(segs, len(s)); err != nil {
		return nil, fmt.Errorf("rep: %w", err)
	}
	fs := &FunctionSeries{N: len(s), Segments: make([]Segment, 0, len(segs))}
	for _, g := range segs {
		curve := g.Curve
		if representer != nil {
			refit, err := representer.Fit(s[g.Lo : g.Hi+1])
			if err != nil {
				return nil, fmt.Errorf("rep: refitting [%d,%d]: %w", g.Lo, g.Hi, err)
			}
			curve = refit
		}
		first, last := s[g.Lo], s[g.Hi]
		params := curve.Params()
		cp := make([]float64, len(params))
		copy(cp, params)
		fs.Segments = append(fs.Segments, Segment{
			Lo: g.Lo, Hi: g.Hi,
			StartT: first.T, StartV: first.V,
			EndT: last.T, EndV: last.V,
			Kind: curve.Kind(), Params: cp,
		})
	}
	return fs, nil
}

// NumSegments returns the number of represented subsequences.
func (fs *FunctionSeries) NumSegments() int { return len(fs.Segments) }

// Validate checks structural invariants of the representation.
func (fs *FunctionSeries) Validate() error {
	if fs.N <= 0 {
		return fmt.Errorf("rep: non-positive sample count %d", fs.N)
	}
	if len(fs.Segments) == 0 {
		return fmt.Errorf("rep: no segments")
	}
	prev := -1
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		if sg.Lo != prev+1 {
			return fmt.Errorf("rep: segment %d starts at %d, want %d", i, sg.Lo, prev+1)
		}
		if sg.Lo > sg.Hi {
			return fmt.Errorf("rep: segment %d inverted [%d,%d]", i, sg.Lo, sg.Hi)
		}
		if sg.Lo > 0 && sg.StartT <= fs.Segments[i-1].EndT {
			return fmt.Errorf("rep: segment %d starts at time %g, not after %g", i, sg.StartT, fs.Segments[i-1].EndT)
		}
		if _, err := sg.Curve(); err != nil {
			return fmt.Errorf("rep: segment %d: %w", i, err)
		}
		prev = sg.Hi
	}
	if prev != fs.N-1 {
		return fmt.Errorf("rep: segments end at %d, want %d", prev, fs.N-1)
	}
	return nil
}

// Reconstruct evaluates the represented functions at the original sample
// times (reconstructed by uniform spacing within each segment, exact for
// uniformly sampled data) — the paper's point that continuity of the
// representation "allows interpolation of unsampled points".
func (fs *FunctionSeries) Reconstruct() (seq.Sequence, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	out := make(seq.Sequence, 0, fs.N)
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		curve, err := sg.Curve()
		if err != nil {
			return nil, err
		}
		n := sg.Len()
		for j := 0; j < n; j++ {
			t := sg.StartT
			if n > 1 {
				t += (sg.EndT - sg.StartT) * float64(j) / float64(n-1)
			}
			out = append(out, seq.Point{T: t, V: curve.Eval(t)})
		}
	}
	return out, nil
}

// ValueAt evaluates the representation at an arbitrary time, choosing the
// segment whose [StartT, EndT] span contains t (predicting unsampled
// points). Times outside the represented span clamp to the span's ends;
// the curves are never extrapolated.
func (fs *FunctionSeries) ValueAt(t float64) (float64, error) {
	if len(fs.Segments) == 0 {
		return 0, fmt.Errorf("rep: empty representation")
	}
	lo, hi := 0, len(fs.Segments)-1
	if first := &fs.Segments[0]; t <= first.EndT {
		if t < first.StartT {
			t = first.StartT
		}
		c, err := first.Curve()
		if err != nil {
			return 0, err
		}
		return c.Eval(t), nil
	}
	if last := &fs.Segments[hi]; t >= last.StartT {
		if t > last.EndT {
			t = last.EndT
		}
		c, err := last.Curve()
		if err != nil {
			return 0, err
		}
		return c.Eval(t), nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if fs.Segments[mid].StartT <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	pick := lo
	if t > fs.Segments[lo].EndT {
		pick = hi
	}
	c, err := fs.Segments[pick].Curve()
	if err != nil {
		return 0, err
	}
	return c.Eval(t), nil
}

// ErrorAgainst returns the RMSE and maximum absolute vertical error of the
// representation against the original sequence it was built from.
func (fs *FunctionSeries) ErrorAgainst(s seq.Sequence) (rmse, linf float64, err error) {
	if len(s) != fs.N {
		return 0, 0, fmt.Errorf("rep: sequence has %d samples, representation built from %d", len(s), fs.N)
	}
	var sse float64
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		curve, err := sg.Curve()
		if err != nil {
			return 0, 0, err
		}
		for _, p := range s[sg.Lo : sg.Hi+1] {
			d := math.Abs(p.V - curve.Eval(p.T))
			if d > linf {
				linf = d
			}
			sse += d * d
		}
	}
	return math.Sqrt(sse / float64(fs.N)), linf, nil
}

// StoredFloats counts every float64 the representation stores: the four
// boundary coordinates plus the function parameters, per segment.
func (fs *FunctionSeries) StoredFloats() int {
	total := 0
	for i := range fs.Segments {
		total += 4 + len(fs.Segments[i].Params)
	}
	return total
}

// ParamFloats counts floats under the paper's accounting — "each
// representation requires 4 parameters (such as function coefficients and
// breakpoints)" — i.e. function coefficients plus the two boundary times.
func (fs *FunctionSeries) ParamFloats() int {
	total := 0
	for i := range fs.Segments {
		total += 2 + len(fs.Segments[i].Params)
	}
	return total
}

// CompressionRatio is original samples per stored float (full accounting).
func (fs *FunctionSeries) CompressionRatio() float64 {
	if sf := fs.StoredFloats(); sf > 0 {
		return float64(fs.N) / float64(sf)
	}
	return 0
}

// PaperCompressionRatio mirrors the paper's §5.2 accounting (4 parameters
// per line segment), the figure behind their "factor of ~17" claim.
func (fs *FunctionSeries) PaperCompressionRatio() float64 {
	if pf := fs.ParamFloats(); pf > 0 {
		return float64(fs.N) / float64(pf)
	}
	return 0
}

// Slopes returns every segment's characteristic slope in order, the raw
// material for the slope-sign indexing of §4.4.
func (fs *FunctionSeries) Slopes() []float64 {
	out := make([]float64, len(fs.Segments))
	for i := range fs.Segments {
		out[i] = fs.Segments[i].Slope()
	}
	return out
}
