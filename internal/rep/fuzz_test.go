package rep

import (
	"bytes"
	"math/rand"
	"testing"

	"seqrep/internal/breaking"
	"seqrep/internal/synth"
)

// Decode must never panic: random corruptions of a valid blob either decode
// to a valid series or fail with an error.
func TestDecodeRobustToRandomCorruption(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := breaking.Interpolation(0.5).Break(fever)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Build(fever, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := fs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), blob...)
		// Flip 1-4 random bytes.
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		decoded, err := Decode(bytes.NewReader(mutated))
		if err != nil {
			continue // rejection is fine
		}
		// If it decoded, it must satisfy the validator (i.e. mutation hit
		// payload floats, not structure).
		if err := decoded.Validate(); err != nil {
			t.Fatalf("trial %d: Decode returned invalid series: %v", trial, err)
		}
	}
}

// Decode must also survive entirely random input.
func TestDecodeRobustToRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		if fs, err := Decode(bytes.NewReader(buf)); err == nil {
			if err := fs.Validate(); err != nil {
				t.Fatalf("trial %d: random bytes decoded to invalid series", trial)
			}
		}
	}
}

// Truncation at every byte offset must error, never panic or hang.
func TestDecodeEveryTruncation(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{Samples: 49})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := breaking.Interpolation(0.5).Break(fever)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Build(fever, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := fs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := Decode(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(blob))
		}
	}
}
