package rep

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"seqrep/internal/breaking"
	"seqrep/internal/fit"
	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

func buildFever(t *testing.T, representer fit.Fitter) (seq.Sequence, *FunctionSeries) {
	t.Helper()
	fever, err := synth.Fever(synth.FeverOpts{Samples: 97})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := breaking.Interpolation(0.5).Break(fever)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Build(fever, segs, representer)
	if err != nil {
		t.Fatal(err)
	}
	return fever, fs
}

func TestBuildKeepsByproductCurves(t *testing.T) {
	fever, fs := buildFever(t, nil)
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
	if fs.N != len(fever) {
		t.Errorf("N = %d", fs.N)
	}
	if fs.NumSegments() < 4 {
		t.Errorf("segments = %d", fs.NumSegments())
	}
	// Byproduct interpolation lines pass through segment boundary points.
	for i := range fs.Segments {
		sg := &fs.Segments[i]
		c, err := sg.Curve()
		if err != nil {
			t.Fatal(err)
		}
		if sg.Len() >= 2 {
			if math.Abs(c.Eval(sg.StartT)-sg.StartV) > 1e-9 {
				t.Errorf("segment %d: curve misses start point", i)
			}
			if math.Abs(c.Eval(sg.EndT)-sg.EndV) > 1e-9 {
				t.Errorf("segment %d: curve misses end point", i)
			}
		}
	}
}

func TestBuildRefitsWithRepresenter(t *testing.T) {
	// The paper's §4.4 flow: break with interpolation, represent with
	// regression.
	fever, fs := buildFever(t, fit.RegressionFitter{})
	rmse, linf, err := fs.ErrorAgainst(fever)
	if err != nil {
		t.Fatal(err)
	}
	if rmse <= 0 || linf < rmse {
		t.Errorf("rmse=%g linf=%g", rmse, linf)
	}
	// Regression should not be much worse than epsilon overall.
	if linf > 2 {
		t.Errorf("regression representation linf = %g", linf)
	}
	// Regression lines generally do NOT pass through the endpoints —
	// check the representation retained the true sample endpoints anyway.
	first := fs.Segments[0]
	if first.StartT != fever[0].T || first.StartV != fever[0].V {
		t.Error("boundary points lost in refit")
	}
}

func TestBuildRejectsInvalidSegmentation(t *testing.T) {
	fever, err := synth.Fever(synth.FeverOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(fever, nil, nil); err == nil {
		t.Error("nil segmentation accepted")
	}
	bad := []breaking.Segment{{Lo: 0, Hi: 10, Curve: fit.Line{}}}
	if _, err := Build(fever, bad, nil); err == nil {
		t.Error("non-covering segmentation accepted")
	}
}

func TestReconstructMatchesEpsilon(t *testing.T) {
	fever, fs := buildFever(t, nil)
	back, err := fs.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(fever) {
		t.Fatalf("reconstructed %d samples, want %d", len(back), len(fever))
	}
	// Interpolation representation: reconstruction within ε of original.
	for i := range fever {
		if d := math.Abs(back[i].V - fever[i].V); d > 0.5+1e-9 {
			t.Errorf("sample %d deviates %g > eps", i, d)
		}
		if math.Abs(back[i].T-fever[i].T) > 1e-9 {
			t.Errorf("sample %d time %g, want %g", i, back[i].T, fever[i].T)
		}
	}
}

func TestValueAt(t *testing.T) {
	fever, fs := buildFever(t, nil)
	// Interior, boundary and clamped times.
	for _, tt := range []float64{-1, 0, 3.17, 12, 23.9, 24, 99} {
		got, err := fs.ValueAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fever.ValueAt(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.8 {
			t.Errorf("ValueAt(%g) = %g, raw interpolation %g", tt, got, want)
		}
	}
	empty := &FunctionSeries{}
	if _, err := empty.ValueAt(0); err == nil {
		t.Error("empty representation accepted")
	}
}

func TestErrorAgainstLengthMismatch(t *testing.T) {
	fever, fs := buildFever(t, nil)
	if _, _, err := fs.ErrorAgainst(fever[:10]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCompressionAccounting(t *testing.T) {
	_, fs := buildFever(t, nil)
	k := fs.NumSegments()
	if got := fs.StoredFloats(); got != k*(4+2) {
		t.Errorf("StoredFloats = %d, want %d (line segments)", got, k*6)
	}
	if got := fs.ParamFloats(); got != k*(2+2) {
		t.Errorf("ParamFloats = %d, want %d", got, k*4)
	}
	if r := fs.CompressionRatio(); r <= 0 {
		t.Errorf("CompressionRatio = %g", r)
	}
	if r := fs.PaperCompressionRatio(); r <= fs.CompressionRatio() {
		t.Errorf("paper ratio %g should exceed full ratio %g", fs.PaperCompressionRatio(), fs.CompressionRatio())
	}
	empty := &FunctionSeries{N: 5}
	if empty.CompressionRatio() != 0 || empty.PaperCompressionRatio() != 0 {
		t.Error("empty series ratios should be 0")
	}
}

// The paper's headline compression claim (E11): a 540-point ECG compresses
// by an order of magnitude; with their 4-parameter accounting the ratio is
// in the double digits.
func TestECGCompressionShape(t *testing.T) {
	ecg, _, err := synth.ECG(nil, synth.ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	segs, err := breaking.Interpolation(10).Break(ecg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Build(ecg, segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := fs.PaperCompressionRatio(); r < 5 {
		t.Errorf("paper-accounting compression ratio %g too low (%d segments)", r, fs.NumSegments())
	}
}

func TestSlopes(t *testing.T) {
	_, fs := buildFever(t, nil)
	slopes := fs.Slopes()
	if len(slopes) != fs.NumSegments() {
		t.Fatalf("slope count %d", len(slopes))
	}
	// The fever curve rises to the first peak: first segment slope > 0.
	if slopes[0] <= 0 {
		t.Errorf("first slope = %g, want rising", slopes[0])
	}
}

func TestSegmentSlopeFallback(t *testing.T) {
	sg := Segment{StartT: 0, StartV: 0, EndT: 2, EndV: 6, Kind: fit.KindBezier, Params: make([]float64, 8)}
	if got := sg.Slope(); got != 3 {
		t.Errorf("chord slope = %g, want 3", got)
	}
	zero := Segment{StartT: 1, EndT: 1, Kind: fit.KindBezier}
	if got := zero.Slope(); got != 0 {
		t.Errorf("zero-span slope = %g", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	_, fs := buildFever(t, fit.RegressionFitter{})
	data, err := fs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back FunctionSeries
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.N != fs.N || back.NumSegments() != fs.NumSegments() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", back.N, back.NumSegments(), fs.N, fs.NumSegments())
	}
	for i := range fs.Segments {
		a, b := fs.Segments[i], back.Segments[i]
		if a.Lo != b.Lo || a.Hi != b.Hi || a.Kind != b.Kind {
			t.Errorf("segment %d header mismatch", i)
		}
		if a.StartT != b.StartT || a.StartV != b.StartV || a.EndT != b.EndT || a.EndV != b.EndV {
			t.Errorf("segment %d boundary mismatch", i)
		}
		for j := range a.Params {
			if a.Params[j] != b.Params[j] {
				t.Errorf("segment %d param %d mismatch", i, j)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, fs := buildFever(t, nil)
	data, err := fs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func() []byte{
		"empty":       func() []byte { return nil },
		"bad magic":   func() []byte { d := clone(data); d[0] = 'X'; return d },
		"bad version": func() []byte { d := clone(data); d[4] = 99; return d },
		"truncated":   func() []byte { return data[:len(data)/2] },
		"zero segments": func() []byte {
			d := clone(data)
			// segment count lives at offset 4(magic)+1(version)+4(n)
			d[9], d[10], d[11], d[12] = 0, 0, 0, 0
			return d
		},
		"huge segment count": func() []byte {
			d := clone(data)
			d[9], d[10], d[11], d[12] = 0xff, 0xff, 0xff, 0xff
			return d
		},
	}
	for name, mk := range cases {
		var back FunctionSeries
		if err := back.UnmarshalBinary(mk()); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	_, fs := buildFever(t, nil)
	mangled := *fs
	mangled.Segments = make([]Segment, len(fs.Segments))
	copy(mangled.Segments, fs.Segments)
	mangled.Segments[0].Kind = fit.Kind(200)
	// Encode refuses invalid series.
	var buf bytes.Buffer
	if err := mangled.Encode(&buf); err == nil {
		t.Error("encode accepted invalid kind")
	}
}

func TestEncodeToFailingWriter(t *testing.T) {
	_, fs := buildFever(t, nil)
	// bufio batches small writes, so fail from the very first Write call
	// (which happens at Flush for a representation this small).
	w := &failingWriter{failAfter: 0}
	if err := fs.Encode(w); err == nil {
		t.Error("write failure not propagated")
	}
}

type failingWriter struct {
	n         int
	failAfter int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > w.failAfter {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

func TestValidateCatchesTimeOverlap(t *testing.T) {
	fs := &FunctionSeries{N: 4, Segments: []Segment{
		{Lo: 0, Hi: 1, StartT: 0, EndT: 5, Kind: fit.KindLine, Params: []float64{1, 0}},
		{Lo: 2, Hi: 3, StartT: 4, EndT: 9, Kind: fit.KindLine, Params: []float64{1, 0}},
	}}
	if err := fs.Validate(); err == nil || !strings.Contains(err.Error(), "not after") {
		t.Errorf("time overlap not caught: %v", err)
	}
}
