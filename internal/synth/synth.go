// Package synth generates the deterministic synthetic datasets used by the
// experiments. It substitutes for data the paper obtained externally:
//
//   - 24-hour temperature logs exhibiting "goal-post fever" (their Figs 2-7),
//   - digitized electrocardiogram segments of 540 points (their Fig 9),
//   - the seismic and stock-market workloads their introduction motivates.
//
// All generators are pure functions of their parameters; where randomness
// is involved the caller supplies a *rand.Rand so every experiment is
// reproducible from a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"seqrep/internal/seq"
)

// Peak describes one smooth bump added on top of a baseline: a Gaussian
// centred at Center with the given Height and Width (standard deviation,
// in time units).
type Peak struct {
	Center float64
	Height float64
	Width  float64
}

// Bumps samples a baseline-plus-Gaussian-peaks curve at n uniformly spaced
// times across [t0, t1]. It is the workhorse behind the fever generators.
// It returns an error if n < 2 or the time span is empty.
func Bumps(t0, t1 float64, n int, baseline float64, peaks []Peak) (seq.Sequence, error) {
	if n < 2 {
		return nil, fmt.Errorf("synth: need at least 2 samples, got %d", n)
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("synth: empty time span [%g,%g]", t0, t1)
	}
	s := make(seq.Sequence, n)
	step := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*step
		v := baseline
		for _, p := range peaks {
			d := (t - p.Center) / p.Width
			v += p.Height * math.Exp(-0.5*d*d)
		}
		s[i] = seq.Point{T: t, V: v}
	}
	return s, nil
}

// FeverOpts parameterizes a goal-post fever curve: a 24-hour temperature
// log whose shape peaks exactly twice (the paper's Figure 3).
type FeverOpts struct {
	Samples    int     // number of samples across the 24 hours (default 49)
	Baseline   float64 // resting temperature (default 97.0, the paper plots 95-107 °F)
	PeakHeight float64 // peak rise above baseline (default 8)
	PeakWidth  float64 // Gaussian width of each peak in hours (default 1.8)
	FirstPeak  float64 // hour of the first peak (default 8)
	SecondPeak float64 // hour of the second peak (default 16)
}

func (o *FeverOpts) defaults() {
	if o.Samples == 0 {
		o.Samples = 49
	}
	if o.Baseline == 0 {
		o.Baseline = 97.0
	}
	if o.PeakHeight == 0 {
		o.PeakHeight = 8
	}
	if o.PeakWidth == 0 {
		o.PeakWidth = 1.8
	}
	if o.FirstPeak == 0 {
		o.FirstPeak = 8
	}
	if o.SecondPeak == 0 {
		o.SecondPeak = 16
	}
}

// Fever generates a two-peaked 24-hour temperature curve.
func Fever(opts FeverOpts) (seq.Sequence, error) {
	opts.defaults()
	return Bumps(0, 24, opts.Samples, opts.Baseline, []Peak{
		{Center: opts.FirstPeak, Height: opts.PeakHeight, Width: opts.PeakWidth},
		{Center: opts.SecondPeak, Height: opts.PeakHeight, Width: opts.PeakWidth},
	})
}

// ThreePeakFever generates a fever-like curve with exactly three peaks; the
// goal-post query must reject it. Mirrors the paper's Figure 6 input, which
// has more than two prominent extrema.
func ThreePeakFever(samples int) (seq.Sequence, error) {
	return Bumps(0, 24, samples, 97, []Peak{
		{Center: 5, Height: 8, Width: 1.4},
		{Center: 12, Height: 7, Width: 1.4},
		{Center: 19, Height: 8.5, Width: 1.4},
	})
}

// TwoPeakVariant names one member of the paper's Figure 5 family: two-peaked
// sequences produced from an exemplar by feature-preserving transformations
// that value-based ±ε matching fails to recognize.
type TwoPeakVariant int

// The transformation family of the paper's §2.2 / Figure 5.
const (
	VariantContraction TwoPeakVariant = iota // frequency increase: squeezed in time
	VariantDilation                          // frequency reduction: stretched in time
	VariantTimeShift                         // both peaks displaced in time
	VariantAmplitudeUp                       // whole curve translated upward
	VariantScaledUp                          // peak heights scaled about the baseline
	VariantNoisy                             // small bounded pointwise deviations
	numTwoPeakVariants                       // count; keep last
)

// String returns the variant's human-readable name.
func (v TwoPeakVariant) String() string {
	switch v {
	case VariantContraction:
		return "contraction"
	case VariantDilation:
		return "dilation"
	case VariantTimeShift:
		return "time-shift"
	case VariantAmplitudeUp:
		return "amplitude-shift"
	case VariantScaledUp:
		return "amplitude-scale"
	case VariantNoisy:
		return "bounded-noise"
	default:
		return fmt.Sprintf("TwoPeakVariant(%d)", int(v))
	}
}

// TwoPeakVariants lists the full Figure 5 family.
func TwoPeakVariants() []TwoPeakVariant {
	vs := make([]TwoPeakVariant, numTwoPeakVariants)
	for i := range vs {
		vs[i] = TwoPeakVariant(i)
	}
	return vs
}

// TwoPeakFamily generates the exemplar fever curve plus every Figure 5
// variant, all still exhibiting exactly two peaks. The returned map is keyed
// by variant. rng seeds only the bounded-noise variant.
func TwoPeakFamily(rng *rand.Rand, samples int) (exemplar seq.Sequence, variants map[TwoPeakVariant]seq.Sequence, err error) {
	exemplar, err = Fever(FeverOpts{Samples: samples})
	if err != nil {
		return nil, nil, err
	}
	variants = make(map[TwoPeakVariant]seq.Sequence, numTwoPeakVariants)
	for _, v := range TwoPeakVariants() {
		switch v {
		case VariantContraction:
			// Squeeze the peaks closer: same span, peaks at 10 and 14.
			variants[v], err = Bumps(0, 24, samples, 97, []Peak{
				{Center: 10, Height: 8, Width: 1.1},
				{Center: 14, Height: 8, Width: 1.1},
			})
		case VariantDilation:
			// Spread the peaks: peaks at 5 and 19, wider.
			variants[v], err = Bumps(0, 24, samples, 97, []Peak{
				{Center: 5, Height: 8, Width: 2.6},
				{Center: 19, Height: 8, Width: 2.6},
			})
		case VariantTimeShift:
			variants[v], err = Fever(FeverOpts{Samples: samples, FirstPeak: 11, SecondPeak: 19})
		case VariantAmplitudeUp:
			variants[v] = exemplar.ShiftValue(2.5)
		case VariantScaledUp:
			variants[v] = exemplar.ScaleAbout(97, 1.5)
		case VariantNoisy:
			variants[v] = exemplar.AddNoise(rng, 0.15)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	return exemplar, variants, nil
}
