package synth

import (
	"fmt"
	"math"
	"math/rand"

	"seqrep/internal/seq"
)

// ECGOpts parameterizes the synthetic electrocardiogram generator, which
// substitutes for the paper's digitized 540-point ECG segments (their
// Figure 9, retrieved from a since-defunct wustl.edu archive). Each heart
// beat is modelled as a sum of Gaussian deflections — the standard P, Q, R,
// S and T waves — so the sharp R peaks that the paper's breaking algorithm
// locates are present with controllable spacing and amplitude.
type ECGOpts struct {
	Samples    int     // total samples (default 540, matching the paper)
	RRInterval float64 // mean distance between R peaks, in samples (default 130)
	RRJitter   float64 // std-dev of per-beat RR variation in samples (default 0: perfectly regular)
	Amplitude  float64 // R-peak amplitude (default 150, the paper's plots span ±150)
	NoiseStd   float64 // additive Gaussian noise std-dev (default 0)
	Wander     float64 // baseline wander amplitude (slow sinusoid, default 0)
	FirstR     float64 // position of the first R peak in samples (default 65)
}

func (o *ECGOpts) defaults() {
	if o.Samples == 0 {
		o.Samples = 540
	}
	if o.RRInterval == 0 {
		o.RRInterval = 130
	}
	if o.Amplitude == 0 {
		o.Amplitude = 150
	}
	if o.FirstR == 0 {
		o.FirstR = 65
	}
}

// wave is one deflection relative to the R peak.
type wave struct {
	offset   float64 // position relative to R, as a fraction of the RR interval
	height   float64 // amplitude as a fraction of the R amplitude
	width    float64 // spread as a fraction of the RR interval (std-dev for Gaussians, half-width for triangles)
	triangle bool    // triangular instead of Gaussian deflection
}

// The canonical PQRST morphology. Offsets/widths are fractions of the RR
// interval; heights are fractions of the R amplitude. The non-R deflections
// are kept below 10% of the R amplitude so that, as in the paper's Figure 9
// traces, only the R spikes exceed the ε=10 breaking tolerance and the
// signal between beats reads as near-flat. The R wave itself is triangular,
// matching the piecewise-linear QRS flanks visible in the paper's plots
// (their annotated beat is exactly flat line, ~21x rise, ~-15x fall).
var pqrst = []wave{
	{offset: -0.22, height: 0.025, width: 0.028},              // P wave
	{offset: -0.10, height: -0.02, width: 0.015},              // Q dip
	{offset: 0.0, height: 1.00, width: 0.058, triangle: true}, // R spike: linear flanks over ~7-8 samples
	{offset: 0.10, height: -0.03, width: 0.016},               // S dip
	{offset: 0.30, height: 0.03, width: 0.055},                // T wave
}

// ECG generates a synthetic electrocardiogram. rng may be nil when both
// RRJitter and NoiseStd are zero; otherwise it must be non-nil.
// The returned R positions are the exact sample-time locations of the
// generated R peaks, usable as ground truth by tests and experiments.
func ECG(rng *rand.Rand, opts ECGOpts) (s seq.Sequence, rPeaks []float64, err error) {
	opts.defaults()
	if opts.Samples < 2 {
		return nil, nil, fmt.Errorf("synth: ECG needs at least 2 samples, got %d", opts.Samples)
	}
	if opts.RRInterval <= 0 {
		return nil, nil, fmt.Errorf("synth: non-positive RR interval %g", opts.RRInterval)
	}
	if (opts.RRJitter > 0 || opts.NoiseStd > 0) && rng == nil {
		return nil, nil, fmt.Errorf("synth: ECG with jitter or noise requires a random source")
	}

	// Place R peaks until past the end of the window.
	r := opts.FirstR
	for r < float64(opts.Samples)+opts.RRInterval {
		rPeaks = append(rPeaks, r)
		step := opts.RRInterval
		if opts.RRJitter > 0 {
			step += rng.NormFloat64() * opts.RRJitter
			if step < opts.RRInterval/2 {
				step = opts.RRInterval / 2 // keep beats physically separated
			}
		}
		r += step
	}

	s = make(seq.Sequence, opts.Samples)
	for i := 0; i < opts.Samples; i++ {
		t := float64(i)
		v := 0.0
		for _, rp := range rPeaks {
			for _, w := range pqrst {
				center := rp + w.offset*opts.RRInterval
				spread := w.width * opts.RRInterval
				d := (t - center) / spread
				if w.triangle {
					if d > 1 || d < -1 {
						continue
					}
					v += w.height * opts.Amplitude * (1 - math.Abs(d))
					continue
				}
				if d > 6 || d < -6 {
					continue // negligible contribution
				}
				v += w.height * opts.Amplitude * math.Exp(-0.5*d*d)
			}
		}
		if opts.Wander > 0 {
			v += opts.Wander * math.Sin(2*math.Pi*t/float64(opts.Samples))
		}
		if opts.NoiseStd > 0 {
			v += rng.NormFloat64() * opts.NoiseStd
		}
		s[i] = seq.Point{T: t, V: v}
	}

	// Trim ground-truth peaks to those inside the sampled window.
	in := rPeaks[:0]
	for _, rp := range rPeaks {
		if rp >= 0 && rp < float64(opts.Samples) {
			in = append(in, rp)
		}
	}
	return s, in, nil
}

// PaperECGPair generates the two 540-point ECG segments of the paper's
// Figure 9: the first perfectly regular with four R peaks, the second with
// slightly irregular RR spacing (their bottom trace shows varying intervals,
// which the RR-interval query of Figure 10 then discriminates).
func PaperECGPair(rng *rand.Rand) (top, bottom seq.Sequence, topR, bottomR []float64, err error) {
	top, topR, err = ECG(nil, ECGOpts{Samples: 540, RRInterval: 145, FirstR: 70})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// The bottom trace has tighter, irregular beats (the paper reports
	// intervals near 136/133/137 samples).
	bottom, bottomR, err = ECG(rng, ECGOpts{Samples: 540, RRInterval: 135, RRJitter: 2.5, FirstR: 55})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return top, bottom, topR, bottomR, nil
}
