package synth

import (
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/seq"
)

// countProminentPeaks is a reference peak counter for validating generator
// ground truth. It uses topographic prominence: for each local maximum, the
// reference level on each side is the minimum value between the peak and the
// nearest strictly higher point (or the sequence end); the prominence is the
// peak height above the higher of the two reference levels.
func countProminentPeaks(s seq.Sequence, minProminence float64) int {
	count := 0
	n := len(s)
	for i := 1; i < n-1; i++ {
		if !(s[i].V > s[i-1].V && s[i].V >= s[i+1].V) {
			continue
		}
		left := s[i].V
		for j := i - 1; j >= 0; j-- {
			if s[j].V > s[i].V {
				break
			}
			if s[j].V < left {
				left = s[j].V
			}
		}
		right := s[i].V
		for j := i + 1; j < n; j++ {
			if s[j].V > s[i].V {
				break
			}
			if s[j].V < right {
				right = s[j].V
			}
		}
		if s[i].V-math.Max(left, right) >= minProminence {
			count++
		}
	}
	return count
}

func TestBumpsErrors(t *testing.T) {
	if _, err := Bumps(0, 24, 1, 0, nil); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Bumps(5, 5, 10, 0, nil); err == nil {
		t.Error("empty span accepted")
	}
	if _, err := Bumps(5, 4, 10, 0, nil); err == nil {
		t.Error("inverted span accepted")
	}
}

func TestFeverShape(t *testing.T) {
	s, err := Fever(FeverOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 49 {
		t.Fatalf("default samples = %d, want 49", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s[0].T != 0 || s[len(s)-1].T != 24 {
		t.Errorf("time span [%g,%g], want [0,24]", s[0].T, s[len(s)-1].T)
	}
	if got := countProminentPeaks(s, 3); got != 2 {
		t.Errorf("fever has %d prominent peaks, want 2", got)
	}
	// Range should resemble the paper's 95-107 °F plots.
	_, lo, _ := s.Min()
	_, hi, _ := s.Max()
	if lo < 95 || hi > 107 {
		t.Errorf("fever range [%g,%g] outside plausible bounds", lo, hi)
	}
}

func TestThreePeakFever(t *testing.T) {
	s, err := ThreePeakFever(97)
	if err != nil {
		t.Fatal(err)
	}
	if got := countProminentPeaks(s, 3); got != 3 {
		t.Errorf("three-peak fever has %d prominent peaks", got)
	}
}

func TestTwoPeakFamilyAllTwoPeaked(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	exemplar, variants, err := TwoPeakFamily(rng, 97)
	if err != nil {
		t.Fatal(err)
	}
	if got := countProminentPeaks(exemplar, 3); got != 2 {
		t.Fatalf("exemplar peaks = %d", got)
	}
	if len(variants) != int(numTwoPeakVariants) {
		t.Fatalf("got %d variants, want %d", len(variants), numTwoPeakVariants)
	}
	for v, s := range variants {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: invalid: %v", v, err)
		}
		if got := countProminentPeaks(s, 3); got != 2 {
			t.Errorf("%v: %d prominent peaks, want 2", v, got)
		}
	}
}

func TestTwoPeakVariantString(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range TwoPeakVariants() {
		name := v.String()
		if seen[name] {
			t.Errorf("duplicate variant name %q", name)
		}
		seen[name] = true
	}
	if TwoPeakVariant(99).String() != "TwoPeakVariant(99)" {
		t.Error("unknown variant String")
	}
}

func TestECGDefaults(t *testing.T) {
	s, peaks, err := ECG(nil, ECGOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 540 {
		t.Fatalf("samples = %d, want 540", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 4 {
		t.Errorf("R peaks = %d, want 4 (540 samples / RR 130, first at 65)", len(peaks))
	}
	// R-peak amplitude should dominate: max value near Amplitude.
	_, hi, _ := s.Max()
	if hi < 120 || hi > 160 {
		t.Errorf("max amplitude %g, want near 150", hi)
	}
	// Ground-truth peaks must be near local maxima of the signal.
	for _, rp := range peaks {
		i := int(rp)
		win := s[maxInt(0, i-3):minInt(len(s), i+4)]
		_, localMax, _ := win.Max()
		if localMax < 100 {
			t.Errorf("no tall peak near reported R at %g (local max %g)", rp, localMax)
		}
	}
}

func TestECGJitterDeterminism(t *testing.T) {
	a, pa, err := ECG(rand.New(rand.NewSource(7)), ECGOpts{RRJitter: 5, NoiseStd: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, pb, err := ECG(rand.New(rand.NewSource(7)), ECGOpts{RRJitter: 5, NoiseStd: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pa) != len(pb) {
		t.Fatalf("peak counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different ECGs at %d", i)
		}
	}
}

func TestECGErrors(t *testing.T) {
	if _, _, err := ECG(nil, ECGOpts{RRJitter: 1}); err == nil {
		t.Error("jitter without rng accepted")
	}
	if _, _, err := ECG(nil, ECGOpts{NoiseStd: 1}); err == nil {
		t.Error("noise without rng accepted")
	}
	if _, _, err := ECG(nil, ECGOpts{Samples: 1}); err == nil {
		t.Error("1 sample accepted")
	}
	if _, _, err := ECG(nil, ECGOpts{RRInterval: -5}); err == nil {
		t.Error("negative RR accepted")
	}
}

func TestPaperECGPair(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	top, bottom, topR, bottomR, err := PaperECGPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 540 || len(bottom) != 540 {
		t.Fatalf("lengths %d/%d, want 540", len(top), len(bottom))
	}
	if len(topR) < 3 || len(bottomR) < 3 {
		t.Fatalf("too few R peaks: %d/%d", len(topR), len(bottomR))
	}
	// Top trace is regular: RR spacing constant.
	for i := 2; i < len(topR); i++ {
		d1 := topR[i] - topR[i-1]
		d0 := topR[i-1] - topR[i-2]
		if math.Abs(d1-d0) > 1e-9 {
			t.Errorf("top ECG irregular: %g vs %g", d0, d1)
		}
	}
}

func TestSeismic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, starts, err := Seismic(rng, SeismicOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2000 || len(starts) != 2 {
		t.Fatalf("len=%d starts=%d", len(s), len(starts))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bursts are much louder than background.
	_, hi, _ := s.Max()
	if hi < 10 {
		t.Errorf("burst amplitude %g too small", hi)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Errorf("burst starts not increasing: %v", starts)
		}
	}
	if _, _, err := Seismic(nil, SeismicOpts{}); err == nil {
		t.Error("nil rng accepted")
	}
	// Separation holds for every seed, not by luck.
	for seed := int64(0); seed < 50; seed++ {
		_, st, err := Seismic(rand.New(rand.NewSource(seed)), SeismicOpts{Samples: 2000, Events: 3, MinSeparation: 300})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(st); i++ {
			if st[i]-st[i-1] < 300 {
				t.Fatalf("seed %d: bursts %v closer than separation", seed, st)
			}
		}
	}
	if _, _, err := Seismic(rng, SeismicOpts{Samples: 100, Events: 5, MinSeparation: 50}); err == nil {
		t.Error("overcrowded events accepted")
	}
}

func TestStock(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s, err := Stock(rng, 500, 100, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 500 {
		t.Fatalf("len = %d", len(s))
	}
	_, lo, _ := s.Min()
	if lo < 1 {
		t.Errorf("price fell below floor: %g", lo)
	}
	if _, err := Stock(nil, 10, 100, 0, 1); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := Stock(rng, 1, 100, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Stock(rng, 10, 0, 0, 1); err == nil {
		t.Error("zero start price accepted")
	}
}

func TestDeterministicShapes(t *testing.T) {
	if s := Sine(100, 2, 25, 0); len(s) != 100 {
		t.Error("Sine length")
	} else {
		_, hi, _ := s.Max()
		if math.Abs(hi-2) > 0.05 {
			t.Errorf("Sine max = %g, want ~2", hi)
		}
	}
	l := Line(10, 3, 1)
	if l[9].V != 28 {
		t.Errorf("Line end = %g, want 28", l[9].V)
	}
	c := Const(5, 7)
	for _, p := range c {
		if p.V != 7 {
			t.Errorf("Const value %g", p.V)
		}
	}
	saw := Sawtooth(40, 5, 10)
	if got := countProminentPeaks(saw, 5); got != 4 {
		t.Errorf("sawtooth peaks = %d, want 4", got)
	}
	sawDegenerate := Sawtooth(10, 0, 1) // halfPeriod clamped to 1
	if err := sawDegenerate.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := RandomWalk(rng, 100)
	if err != nil || len(s) != 100 {
		t.Fatalf("RandomWalk: %v len=%d", err, len(s))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
