package synth

import (
	"math/rand"
	"testing"
)

func TestMelodyRenderingStaircase(t *testing.T) {
	s, err := Melody([]int{2, -1, 0}, MelodyOpts{SamplesPerBeat: 4, BasePitch: 60, GlideSamples: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 16 { // 4 notes x 4 samples, no glides
		t.Fatalf("len = %d", len(s))
	}
	wantPitches := []float64{60, 62, 61, 61}
	for note := 0; note < 4; note++ {
		for i := 0; i < 4; i++ {
			if got := s[note*4+i].V; got != wantPitches[note] {
				t.Errorf("note %d sample %d = %g, want %g", note, i, got, wantPitches[note])
			}
		}
	}
}

func TestMelodyGlides(t *testing.T) {
	s, err := Melody([]int{2}, MelodyOpts{SamplesPerBeat: 3, BasePitch: 60, GlideSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 plateau + 2 glide + 3 plateau.
	if len(s) != 8 {
		t.Fatalf("len = %d", len(s))
	}
	want := []float64{60, 60, 60, 60 + 2.0/3, 60 + 4.0/3, 62, 62, 62}
	for i := range want {
		if diff := s[i].V - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("sample %d = %g, want %g", i, s[i].V, want[i])
		}
	}
	// Repeated notes glide nothing.
	r, err := Melody([]int{0}, MelodyOpts{SamplesPerBeat: 3, GlideSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 6 {
		t.Errorf("repeat note len = %d", len(r))
	}
}

func TestMelodyValidation(t *testing.T) {
	if _, err := Melody(nil, MelodyOpts{}); err == nil {
		t.Error("empty melody accepted")
	}
	if _, err := Melody([]int{1}, MelodyOpts{SamplesPerBeat: -2}); err == nil {
		t.Error("negative resolution accepted")
	}
}

func TestRandomMelody(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	iv, err := RandomMelody(rng, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(iv) != 11 {
		t.Fatalf("intervals = %d", len(iv))
	}
	// No triple repeats by construction.
	for i := 2; i < len(iv); i++ {
		if iv[i] == 0 && iv[i-1] == 0 && iv[i-2] == 0 {
			t.Error("three consecutive repeats")
		}
	}
	if _, err := RandomMelody(nil, 5); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := RandomMelody(rng, 1); err == nil {
		t.Error("single note accepted")
	}
}

func TestTransposeAndTempo(t *testing.T) {
	s, err := Melody([]int{2, 2, -4}, MelodyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	up := Transpose(s, 5)
	if up[0].V != s[0].V+5 {
		t.Errorf("transpose: %g", up[0].V)
	}
	slow, err := ChangeTempo(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) < len(s)*2-2 {
		t.Errorf("tempo change length %d from %d", len(slow), len(s))
	}
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ChangeTempo(s, 0); err == nil {
		t.Error("zero factor accepted")
	}
}
