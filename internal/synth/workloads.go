package synth

import (
	"fmt"
	"math"
	"math/rand"

	"seqrep/internal/seq"
)

// This file generates the application workloads the paper's introduction
// motivates beyond medicine: seismology ("sudden vigorous seismic
// activity"), stock markets ("rises and drops of stock values"), and plain
// deterministic shapes used as fixtures by tests.

// SeismicOpts parameterizes a synthetic seismogram: quiet background noise
// with a number of transient high-energy bursts.
type SeismicOpts struct {
	Samples       int     // total samples (default 2000)
	Background    float64 // background noise std-dev (default 1)
	Events        int     // number of bursts (default 2)
	EventAmp      float64 // peak amplitude of each burst envelope (default 40)
	EventLen      int     // samples per burst (default 120)
	EventPeriod   float64 // oscillation period within a burst, in samples (default 9)
	MinSeparation int     // minimum samples between burst starts (default 300)
}

func (o *SeismicOpts) defaults() {
	if o.Samples == 0 {
		o.Samples = 2000
	}
	if o.Background == 0 {
		o.Background = 1
	}
	if o.Events == 0 {
		o.Events = 2
	}
	if o.EventAmp == 0 {
		o.EventAmp = 40
	}
	if o.EventLen == 0 {
		o.EventLen = 120
	}
	if o.EventPeriod == 0 {
		o.EventPeriod = 9
	}
	if o.MinSeparation == 0 {
		o.MinSeparation = 300
	}
}

// Seismic generates a synthetic seismogram and returns the burst start
// indexes as ground truth.
func Seismic(rng *rand.Rand, opts SeismicOpts) (seq.Sequence, []int, error) {
	opts.defaults()
	if rng == nil {
		return nil, nil, fmt.Errorf("synth: Seismic requires a random source")
	}
	need := opts.Events * opts.MinSeparation
	if need >= opts.Samples {
		return nil, nil, fmt.Errorf("synth: %d events with separation %d do not fit in %d samples",
			opts.Events, opts.MinSeparation, opts.Samples)
	}
	vals := make([]float64, opts.Samples)
	for i := range vals {
		vals[i] = rng.NormFloat64() * opts.Background
	}
	starts := make([]int, 0, opts.Events)
	prev := -opts.MinSeparation
	for e := 0; e < opts.Events; e++ {
		// The start must sit MinSeparation after the previous burst and
		// leave room for the remaining ones.
		lo := prev + opts.MinSeparation
		if lo < 1 {
			lo = 1
		}
		hi := opts.Samples - (opts.Events-e)*opts.MinSeparation
		start := lo
		if hi > lo {
			start = lo + rng.Intn(hi-lo)
		}
		prev = start
		starts = append(starts, start)
		for i := 0; i < opts.EventLen && start+i < opts.Samples; i++ {
			// Rayleigh-like envelope: sharp attack, exponential decay.
			frac := float64(i) / float64(opts.EventLen)
			env := opts.EventAmp * frac * math.Exp(1-6*frac) * math.E
			vals[start+i] += env * math.Sin(2*math.Pi*float64(i)/opts.EventPeriod)
		}
	}
	return seq.New(vals), starts, nil
}

// Stock generates a random-walk price series with drift, the stock-market
// workload of the paper's introduction. s0 is the starting price; prices
// are floored at 1% of s0 so runs remain positive.
func Stock(rng *rand.Rand, n int, s0, drift, volatility float64) (seq.Sequence, error) {
	if rng == nil {
		return nil, fmt.Errorf("synth: Stock requires a random source")
	}
	if n < 2 {
		return nil, fmt.Errorf("synth: need at least 2 samples, got %d", n)
	}
	if s0 <= 0 {
		return nil, fmt.Errorf("synth: non-positive starting price %g", s0)
	}
	vals := make([]float64, n)
	vals[0] = s0
	floor := s0 / 100
	for i := 1; i < n; i++ {
		v := vals[i-1] + drift + rng.NormFloat64()*volatility
		if v < floor {
			v = floor
		}
		vals[i] = v
	}
	return seq.New(vals), nil
}

// Sine samples amplitude*sin(2πt/period + phase) at n unit-spaced times.
func Sine(n int, amplitude, period, phase float64) seq.Sequence {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = amplitude * math.Sin(2*math.Pi*float64(i)/period+phase)
	}
	return seq.New(vals)
}

// Line samples v = slope*t + intercept at n unit-spaced times.
func Line(n int, slope, intercept float64) seq.Sequence {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = slope*float64(i) + intercept
	}
	return seq.New(vals)
}

// Const samples a constant value at n unit-spaced times.
func Const(n int, v float64) seq.Sequence {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = v
	}
	return seq.New(vals)
}

// Sawtooth produces a triangle wave of the given half-period and amplitude:
// it rises linearly for half a period, then falls, repeatedly. Useful as a
// worst case for fragmentation experiments.
func Sawtooth(n, halfPeriod int, amplitude float64) seq.Sequence {
	if halfPeriod < 1 {
		halfPeriod = 1
	}
	vals := make([]float64, n)
	for i := range vals {
		phase := i % (2 * halfPeriod)
		if phase < halfPeriod {
			vals[i] = amplitude * float64(phase) / float64(halfPeriod)
		} else {
			vals[i] = amplitude * float64(2*halfPeriod-phase) / float64(halfPeriod)
		}
	}
	return seq.New(vals)
}

// RandomWalk produces a zero-drift unit-step random walk, a generic fixture
// for property tests and benchmarks.
func RandomWalk(rng *rand.Rand, n int) (seq.Sequence, error) {
	return Stock(rng, n, 1000, 0, 1)
}
