package synth

import (
	"fmt"
	"math/rand"

	"seqrep/internal/seq"
)

// This file generates the music workload of the paper's introduction: "in
// a music database we look for a melody regardless of key and tempo". A
// melody is rendered as a piecewise-constant pitch curve (one plateau per
// note). Its slope-sign symbol string is then exactly the melodic contour
// (the Parsons code), which is invariant under transposition (amplitude
// shift) and tempo change (dilation) — the two transformations the paper
// names.

// MelodyOpts parameterizes melody rendering.
type MelodyOpts struct {
	// SamplesPerBeat controls the temporal resolution (default 8).
	SamplesPerBeat int
	// BasePitch is the pitch of the first note in semitones (default 60,
	// MIDI middle C).
	BasePitch float64
	// GlideSamples is the number of intermediate samples interpolated
	// between consecutive notes, making each transition a genuine rising
	// or falling segment (as a sung or bowed pitch contour would be).
	// 0 means the default of 2; negative disables glides entirely,
	// producing a pure staircase whose note changes are discontinuities.
	GlideSamples int
}

func (o *MelodyOpts) defaults() {
	if o.SamplesPerBeat == 0 {
		o.SamplesPerBeat = 8
	}
	if o.BasePitch == 0 {
		o.BasePitch = 60
	}
	if o.GlideSamples == 0 {
		o.GlideSamples = 2
	}
	if o.GlideSamples < 0 {
		o.GlideSamples = 0 // explicit staircase
	}
}

// Melody renders a note sequence as a sampled pitch curve. Each element of
// intervals is the semitone step from the previous note (0 repeats the
// note); each note lasts one beat, with a short glide between different
// pitches. At least one interval is required.
func Melody(intervals []int, opts MelodyOpts) (seq.Sequence, error) {
	opts.defaults()
	if len(intervals) == 0 {
		return nil, fmt.Errorf("synth: empty melody")
	}
	if opts.SamplesPerBeat < 1 {
		return nil, fmt.Errorf("synth: samples per beat %d < 1", opts.SamplesPerBeat)
	}
	pitch := opts.BasePitch
	vals := make([]float64, 0, (len(intervals)+1)*(opts.SamplesPerBeat+opts.GlideSamples))
	for i := 0; i < opts.SamplesPerBeat; i++ {
		vals = append(vals, pitch)
	}
	for _, step := range intervals {
		next := pitch + float64(step)
		if step != 0 {
			for g := 1; g <= opts.GlideSamples; g++ {
				frac := float64(g) / float64(opts.GlideSamples+1)
				vals = append(vals, pitch+frac*(next-pitch))
			}
		}
		pitch = next
		for i := 0; i < opts.SamplesPerBeat; i++ {
			vals = append(vals, pitch)
		}
	}
	return seq.New(vals), nil
}

// RandomMelody draws n-1 intervals from a small musical range, avoiding
// long runs of repeats so the contour stays informative.
func RandomMelody(rng *rand.Rand, n int) ([]int, error) {
	if rng == nil {
		return nil, fmt.Errorf("synth: RandomMelody requires a random source")
	}
	if n < 2 {
		return nil, fmt.Errorf("synth: melody needs at least 2 notes, got %d", n)
	}
	steps := []int{-4, -3, -2, -1, 1, 2, 3, 4}
	intervals := make([]int, n-1)
	repeats := 0
	for i := range intervals {
		if repeats < 1 && rng.Intn(5) == 0 {
			intervals[i] = 0
			repeats++
			continue
		}
		repeats = 0
		intervals[i] = steps[rng.Intn(len(steps))]
	}
	return intervals, nil
}

// Transpose returns the melody shifted by semitones (a key change).
func Transpose(s seq.Sequence, semitones float64) seq.Sequence {
	return s.ShiftValue(semitones)
}

// ChangeTempo resamples the melody to a different number of samples per
// beat (tempo change); factor > 1 slows it down. The result stays
// piecewise constant, so the contour is untouched.
func ChangeTempo(s seq.Sequence, factor float64) (seq.Sequence, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("synth: non-positive tempo factor %g", factor)
	}
	n := int(float64(len(s))*factor + 0.5)
	if n < 2 {
		n = 2
	}
	stretched := s.Dilate(factor)
	return stretched.Resample(n)
}
