// Package pattern implements the pattern language of the paper's §4.4: a
// regular-expression engine over the slope-sign alphabet produced by
// package feature. The goal-post fever query, for instance, is the regular
// expression (in the paper's notation)
//
//	(1 0* -1)(0 | -1)* (1 0* -1)
//
// which this package spells "UF*D(F|D)*UF*D".
//
// The engine is self-contained (no dependency on regexp, whose semantics
// over bytes would admit no counted slope classes): patterns are parsed by
// recursive descent into a syntax tree, compiled to a Thompson NFA with
// ε-transitions, and simulated breadth-first — linear in input length,
// immune to catastrophic backtracking.
//
// Supported syntax: literals, '.' (any symbol), character classes
// "[UD]" / negated "[^U]", grouping "(..)", alternation '|', and the
// postfix operators '*', '+', '?', "{m}", "{m,}", "{m,n}".
package pattern

import (
	"fmt"
	"strings"
)

// maxCountedRepeat bounds {m,n} expansion so a hostile pattern cannot blow
// up the compiled NFA.
const maxCountedRepeat = 256

// Pattern is a compiled pattern, safe for concurrent use.
type Pattern struct {
	src    string
	states []state
	start  int
	accept int
}

// state is one NFA state: either a consuming state with a byte-class edge,
// or a split state with up to two ε-edges.
type state struct {
	// class is non-nil for consuming states; the single out edge is next1.
	class *classSet
	// next1/next2 are successor state indexes (-1 = none). Split states
	// use both; consuming states use next1 only.
	next1, next2 int
}

// classSet is a 256-bit byte membership set.
type classSet struct {
	bits [4]uint64
}

func (c *classSet) add(b byte)      { c.bits[b>>6] |= 1 << (b & 63) }
func (c *classSet) has(b byte) bool { return c.bits[b>>6]&(1<<(b&63)) != 0 }
func (c *classSet) negate() {
	for i := range c.bits {
		c.bits[i] = ^c.bits[i]
	}
}

// String returns the source pattern.
func (p *Pattern) String() string { return p.src }

// MustCompile is Compile that panics on error, for package-level patterns.
func MustCompile(src string) *Pattern {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Compile parses and compiles the pattern.
func Compile(src string) (*Pattern, error) {
	ps := &parser{src: src}
	ast, err := ps.parseAlternation()
	if err != nil {
		return nil, err
	}
	if ps.pos != len(src) {
		return nil, fmt.Errorf("pattern: unexpected %q at position %d", src[ps.pos], ps.pos)
	}
	c := &compiler{}
	frag := c.compile(ast)
	accept := c.newState(state{next1: -1, next2: -1})
	c.patch(frag.out, accept)
	return &Pattern{src: src, states: c.states, start: frag.start, accept: accept}, nil
}

// ---- parser ----

// node is the pattern syntax tree.
type node interface{}

type litNode struct{ class classSet }

type concatNode struct{ parts []node }

type altNode struct{ choices []node }

// repeatNode repeats child between min and max times; max < 0 = unbounded.
type repeatNode struct {
	child    node
	min, max int
}

type parser struct {
	src string
	pos int
}

func (p *parser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) parseAlternation() (node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	choices := []node{first}
	for {
		b, ok := p.peek()
		if !ok || b != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		choices = append(choices, next)
	}
	if len(choices) == 1 {
		return first, nil
	}
	return altNode{choices: choices}, nil
}

func (p *parser) parseConcat() (node, error) {
	var parts []node
	for {
		b, ok := p.peek()
		if !ok || b == '|' || b == ')' {
			break
		}
		atom, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	return concatNode{parts: parts}, nil
}

func (p *parser) parseRepeat() (node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		b, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch b {
		case '*':
			p.pos++
			atom = repeatNode{child: atom, min: 0, max: -1}
		case '+':
			p.pos++
			atom = repeatNode{child: atom, min: 1, max: -1}
		case '?':
			p.pos++
			atom = repeatNode{child: atom, min: 0, max: 1}
		case '{':
			rep, err := p.parseCount()
			if err != nil {
				return nil, err
			}
			rep.child = atom
			atom = rep
		default:
			return atom, nil
		}
	}
}

// parseCount parses "{m}", "{m,}" or "{m,n}" starting at '{'.
func (p *parser) parseCount() (repeatNode, error) {
	open := p.pos
	p.pos++ // consume '{'
	m, ok := p.parseInt()
	if !ok {
		return repeatNode{}, fmt.Errorf("pattern: bad repeat count at position %d", open)
	}
	rep := repeatNode{min: m, max: m}
	if b, ok := p.peek(); ok && b == ',' {
		p.pos++
		if b2, ok := p.peek(); ok && b2 == '}' {
			rep.max = -1
		} else {
			n, ok := p.parseInt()
			if !ok {
				return repeatNode{}, fmt.Errorf("pattern: bad repeat bound at position %d", p.pos)
			}
			rep.max = n
		}
	}
	b, ok := p.peek()
	if !ok || b != '}' {
		return repeatNode{}, fmt.Errorf("pattern: unterminated repeat at position %d", open)
	}
	p.pos++
	if rep.min < 0 || (rep.max >= 0 && rep.max < rep.min) {
		return repeatNode{}, fmt.Errorf("pattern: invalid repeat bounds {%d,%d}", rep.min, rep.max)
	}
	if rep.min > maxCountedRepeat || rep.max > maxCountedRepeat {
		return repeatNode{}, fmt.Errorf("pattern: repeat bound exceeds %d", maxCountedRepeat)
	}
	return rep, nil
}

func (p *parser) parseInt() (int, bool) {
	start := p.pos
	v := 0
	for {
		b, ok := p.peek()
		if !ok || b < '0' || b > '9' {
			break
		}
		v = v*10 + int(b-'0')
		if v > maxCountedRepeat+1 {
			return v, p.pos > start // report overflow via bounds check later
		}
		p.pos++
	}
	return v, p.pos > start
}

func (p *parser) parseAtom() (node, error) {
	b, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("pattern: unexpected end of pattern")
	}
	switch b {
	case '(':
		open := p.pos
		p.pos++
		inner, err := p.parseAlternation()
		if err != nil {
			return nil, err
		}
		if nb, ok := p.peek(); !ok || nb != ')' {
			return nil, fmt.Errorf("pattern: unclosed group at position %d", open)
		}
		p.pos++
		return inner, nil
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		var cs classSet
		cs.negate() // everything
		return litNode{class: cs}, nil
	case '*', '+', '?', '{', '|', ')':
		return nil, fmt.Errorf("pattern: unexpected %q at position %d", b, p.pos)
	case ']', '}':
		return nil, fmt.Errorf("pattern: unmatched %q at position %d", b, p.pos)
	default:
		p.pos++
		var cs classSet
		cs.add(b)
		return litNode{class: cs}, nil
	}
}

func (p *parser) parseClass() (node, error) {
	open := p.pos
	p.pos++ // consume '['
	var cs classSet
	negated := false
	if b, ok := p.peek(); ok && b == '^' {
		negated = true
		p.pos++
	}
	count := 0
	for {
		b, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("pattern: unclosed class at position %d", open)
		}
		if b == ']' {
			p.pos++
			break
		}
		cs.add(b)
		count++
		p.pos++
	}
	if count == 0 {
		return nil, fmt.Errorf("pattern: empty class at position %d", open)
	}
	if negated {
		cs.negate()
	}
	return litNode{class: cs}, nil
}

// ---- compiler (Thompson construction) ----

// frag is an NFA fragment: a start state and a list of dangling out-edges
// (state index + which edge) awaiting patching.
type frag struct {
	start int
	out   []patchPoint
}

type patchPoint struct {
	state int
	slot  int // 1 = next1, 2 = next2
}

type compiler struct {
	states []state
}

func (c *compiler) newState(s state) int {
	c.states = append(c.states, s)
	return len(c.states) - 1
}

func (c *compiler) patch(points []patchPoint, target int) {
	for _, pp := range points {
		if pp.slot == 1 {
			c.states[pp.state].next1 = target
		} else {
			c.states[pp.state].next2 = target
		}
	}
}

func (c *compiler) compile(n node) frag {
	switch v := n.(type) {
	case litNode:
		cls := v.class
		id := c.newState(state{class: &cls, next1: -1, next2: -1})
		return frag{start: id, out: []patchPoint{{id, 1}}}
	case concatNode:
		if len(v.parts) == 0 {
			// ε: a split state with one dangling edge.
			id := c.newState(state{next1: -1, next2: -1})
			return frag{start: id, out: []patchPoint{{id, 1}}}
		}
		cur := c.compile(v.parts[0])
		for _, part := range v.parts[1:] {
			next := c.compile(part)
			c.patch(cur.out, next.start)
			cur = frag{start: cur.start, out: next.out}
		}
		return cur
	case altNode:
		frags := make([]frag, len(v.choices))
		for i, ch := range v.choices {
			frags[i] = c.compile(ch)
		}
		cur := frags[len(frags)-1]
		for i := len(frags) - 2; i >= 0; i-- {
			split := c.newState(state{next1: frags[i].start, next2: cur.start})
			cur = frag{start: split, out: append(frags[i].out, cur.out...)}
		}
		return cur
	case repeatNode:
		return c.compileRepeat(v)
	default:
		panic(fmt.Sprintf("pattern: unknown node %T", n))
	}
}

func (c *compiler) compileRepeat(r repeatNode) frag {
	if r.max < 0 {
		// min copies followed by a Kleene star.
		star := c.compileStar(r.child)
		cur := star
		for i := 0; i < r.min; i++ {
			pre := c.compile(r.child)
			c.patch(pre.out, cur.start)
			cur = frag{start: pre.start, out: cur.out}
		}
		return cur
	}
	// Exactly min copies, then (max-min) optional copies, right to left.
	id := c.newState(state{next1: -1, next2: -1}) // ε landing pad
	cur := frag{start: id, out: []patchPoint{{id, 1}}}
	for i := 0; i < r.max-r.min; i++ {
		body := c.compile(r.child)
		c.patch(body.out, cur.start)
		split := c.newState(state{next1: body.start, next2: cur.start})
		cur = frag{start: split, out: cur.out}
	}
	for i := 0; i < r.min; i++ {
		body := c.compile(r.child)
		c.patch(body.out, cur.start)
		cur = frag{start: body.start, out: cur.out}
	}
	return cur
}

func (c *compiler) compileStar(child node) frag {
	body := c.compile(child)
	split := c.newState(state{next1: body.start, next2: -1})
	c.patch(body.out, split)
	return frag{start: split, out: []patchPoint{{split, 2}}}
}

// ---- simulation ----

// addClosure adds state id and everything ε-reachable from it to the set.
func (p *Pattern) addClosure(set []bool, id int) {
	stack := []int{id}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s < 0 || set[s] {
			continue
		}
		set[s] = true
		st := &p.states[s]
		if st.class == nil { // split / ε state
			stack = append(stack, st.next1, st.next2)
		}
	}
}

// Match reports whether the pattern matches the whole input.
func (p *Pattern) Match(input string) bool {
	cur := make([]bool, len(p.states))
	next := make([]bool, len(p.states))
	p.addClosure(cur, p.start)
	for i := 0; i < len(input); i++ {
		b := input[i]
		any := false
		for s := range next {
			next[s] = false
		}
		for s, on := range cur {
			if !on {
				continue
			}
			st := &p.states[s]
			if st.class != nil && st.class.has(b) {
				p.addClosure(next, st.next1)
				any = true
			}
		}
		cur, next = next, cur
		if !any {
			return false
		}
	}
	return cur[p.accept]
}

// FindAll returns the leftmost-longest non-overlapping matches as
// [start, end) index pairs over the input.
func (p *Pattern) FindAll(input string) [][2]int {
	var out [][2]int
	cur := make([]bool, len(p.states))
	next := make([]bool, len(p.states))
	for start := 0; start <= len(input); {
		for s := range cur {
			cur[s] = false
		}
		p.addClosure(cur, p.start)
		end := -1
		if cur[p.accept] {
			end = start
		}
		for i := start; i < len(input); i++ {
			b := input[i]
			alive := false
			for s := range next {
				next[s] = false
			}
			for s, on := range cur {
				if !on {
					continue
				}
				st := &p.states[s]
				if st.class != nil && st.class.has(b) {
					p.addClosure(next, st.next1)
					alive = true
				}
			}
			cur, next = next, cur
			if !alive {
				break
			}
			if cur[p.accept] {
				end = i + 1
			}
		}
		if end > start {
			out = append(out, [2]int{start, end})
			start = end
		} else {
			start++ // empty or no match here; advance
		}
	}
	return out
}

// Contains reports whether the pattern matches anywhere in the input.
func (p *Pattern) Contains(input string) bool {
	return len(p.FindAll(input)) > 0
}

// ---- canned patterns of the paper ----

// PeakUnit is one peak in slope symbols: a rise, optional flats, a descent
// (the paper's "1 0* -1").
const PeakUnit = "U+F*D"

// TwoPeak returns the goal-post fever pattern of §4.4: exactly two peaks
// with anything non-rising before, between and after.
func TwoPeak() string { return ExactlyPeaks(2) }

// ExactlyPeaks builds a full-match pattern accepting symbol strings with
// exactly k peaks (k >= 1): non-rising prefix, k peak units separated by
// non-rising runs, and an optional trailing rise that never descends.
func ExactlyPeaks(k int) string {
	if k < 1 {
		k = 1
	}
	unit := PeakUnit + "[FD]*"
	var b strings.Builder
	b.WriteString("[FD]*")
	for i := 0; i < k; i++ {
		b.WriteString("(" + unit + ")")
	}
	b.WriteString("(U+F*)?")
	return b.String()
}

// AtLeastPeaks builds a full-match pattern accepting symbol strings with k
// or more peaks: the counted repetition is simply unbounded above.
func AtLeastPeaks(k int) string {
	if k < 1 {
		k = 1
	}
	return fmt.Sprintf("[FD]*(%s[FD]*){%d,}(U+F*)?", PeakUnit, k)
}
