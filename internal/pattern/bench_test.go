package pattern

import (
	"math/rand"
	"strings"
	"testing"
)

func randomSymbols(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte("UFD"[rng.Intn(3)])
	}
	return b.String()
}

func BenchmarkCompileTwoPeak(b *testing.B) {
	src := TwoPeak()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchTwoPeak(b *testing.B) {
	p := MustCompile(TwoPeak())
	input := "FUUDDFFUUDDF" // a typical fever symbol string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Match(input) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkMatchLongInput(b *testing.B) {
	p := MustCompile(AtLeastPeaks(3))
	input := randomSymbols(1000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Match(input)
	}
}

func BenchmarkFindAll(b *testing.B) {
	p := MustCompile(PeakUnit)
	input := randomSymbols(1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FindAll(input)
	}
}

// The pathological pattern that kills backtracking engines stays linear.
func BenchmarkPathological(b *testing.B) {
	p := MustCompile("(U*)*D")
	input := strings.Repeat("U", 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Match(input) {
			b.Fatal("should not match")
		}
	}
}
