package pattern

import (
	"math/rand"
	"strings"
	"testing"
)

func TestLiteralMatch(t *testing.T) {
	p := MustCompile("UFD")
	if !p.Match("UFD") {
		t.Error("exact literal rejected")
	}
	for _, bad := range []string{"", "UF", "UFDD", "FUD", "ufd"} {
		if p.Match(bad) {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestOperators(t *testing.T) {
	cases := []struct {
		pat     string
		yes, no []string
	}{
		{"UF*D", []string{"UD", "UFD", "UFFFD"}, []string{"UFF", "FD", "UFDF"}},
		{"UF+D", []string{"UFD", "UFFD"}, []string{"UD", "UFF"}},
		{"UF?D", []string{"UD", "UFD"}, []string{"UFFD"}},
		{"U|D", []string{"U", "D"}, []string{"F", "UD", ""}},
		{"(UD)+", []string{"UD", "UDUD"}, []string{"", "U", "UDU"}},
		{".", []string{"U", "F", "D", "x"}, []string{"", "UU"}},
		{"[UD]+", []string{"U", "DU", "UUDD"}, []string{"", "F", "UFD"}},
		{"[^U]+", []string{"FD", "DDD"}, []string{"U", "FU", ""}},
		{"U{3}", []string{"UUU"}, []string{"UU", "UUUU", ""}},
		{"U{2,3}", []string{"UU", "UUU"}, []string{"U", "UUUU"}},
		{"U{2,}", []string{"UU", "UUUUU"}, []string{"U", ""}},
		{"U{0,2}", []string{"", "U", "UU"}, []string{"UUU"}},
		{"", []string{""}, []string{"U"}},
		{"(U|F)(D|F)", []string{"UD", "UF", "FD", "FF"}, []string{"DU", "U"}},
	}
	for _, c := range cases {
		p, err := Compile(c.pat)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.pat, err)
		}
		for _, in := range c.yes {
			if !p.Match(in) {
				t.Errorf("%q should match %q", c.pat, in)
			}
		}
		for _, in := range c.no {
			if p.Match(in) {
				t.Errorf("%q should not match %q", c.pat, in)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"(", ")", "(U", "U)", "[", "[]", "[^]", "U{", "U{2", "U{a}",
		"U{3,2}", "*U", "+", "?", "|*", "U{999}", "U{1,999}", "]", "}",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) accepted", src)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile("(")
}

func TestStringReturnsSource(t *testing.T) {
	if MustCompile("UF*D").String() != "UF*D" {
		t.Error("String")
	}
}

func TestFindAll(t *testing.T) {
	p := MustCompile("UF*D")
	hits := p.FindAll("FFUDFFUFFDU")
	want := [][2]int{{2, 4}, {6, 10}}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("hit %d = %v, want %v", i, hits[i], want[i])
		}
	}
	if !p.Contains("FFUD") {
		t.Error("Contains failed")
	}
	if p.Contains("FFFF") {
		t.Error("Contains false positive")
	}
	if got := p.FindAll(""); got != nil {
		t.Errorf("FindAll on empty = %v", got)
	}
}

func TestFindAllLeftmostLongest(t *testing.T) {
	p := MustCompile("U+")
	hits := p.FindAll("UUUFUU")
	want := [][2]int{{0, 3}, {4, 6}}
	if len(hits) != 2 || hits[0] != want[0] || hits[1] != want[1] {
		t.Errorf("hits = %v, want %v", hits, want)
	}
}

// The goal-post fever pattern (§4.4): exactly two peaks.
func TestTwoPeakPattern(t *testing.T) {
	p := MustCompile(TwoPeak())
	yes := []string{
		"UDUD",      // minimal two peaks
		"UFDUFD",    // flats at the crests
		"FUDFUDF",   // flats around
		"UUDDUUDD",  // multi-segment flanks
		"DUDUD",     // leading descent
		"UDFDUFDDU", // trailing rise without descent is not a third peak
	}
	no := []string{
		"",        // nothing
		"UD",      // one peak
		"UDUDUD",  // three peaks
		"FFFF",    // no peaks
		"UDUDUDU", // three peaks plus tail
		"DDFF",    // no rise at all
	}
	for _, in := range yes {
		if !p.Match(in) {
			t.Errorf("two-peak should accept %q", in)
		}
	}
	for _, in := range no {
		if p.Match(in) {
			t.Errorf("two-peak should reject %q", in)
		}
	}
}

func TestExactlyPeaksClampsK(t *testing.T) {
	if ExactlyPeaks(0) != ExactlyPeaks(1) {
		t.Error("k<1 not clamped")
	}
}

func TestAtLeastPeaks(t *testing.T) {
	p := MustCompile(AtLeastPeaks(2))
	for _, in := range []string{"UDUD", "UDUDUD", "FUDUFDFUD"} {
		if !p.Match(in) {
			t.Errorf("at-least-2 should accept %q", in)
		}
	}
	for _, in := range []string{"UD", "FFF", ""} {
		if p.Match(in) {
			t.Errorf("at-least-2 should reject %q", in)
		}
	}
	if AtLeastPeaks(0) != AtLeastPeaks(1) {
		t.Error("k<1 not clamped")
	}
}

// naiveMatch is an exponential-time reference matcher used to cross-check
// the NFA on random small inputs.
func naiveMatch(n node, input string) bool {
	ends := naiveEnds(n, input, 0)
	for _, e := range ends {
		if e == len(input) {
			return true
		}
	}
	return false
}

// naiveEnds returns all positions the node can consume to, starting at pos.
func naiveEnds(n node, input string, pos int) []int {
	switch v := n.(type) {
	case litNode:
		if pos < len(input) && v.class.has(input[pos]) {
			return []int{pos + 1}
		}
		return nil
	case concatNode:
		positions := []int{pos}
		for _, part := range v.parts {
			var next []int
			seen := map[int]bool{}
			for _, p := range positions {
				for _, e := range naiveEnds(part, input, p) {
					if !seen[e] {
						seen[e] = true
						next = append(next, e)
					}
				}
			}
			positions = next
			if len(positions) == 0 {
				return nil
			}
		}
		return positions
	case altNode:
		seen := map[int]bool{}
		var out []int
		for _, ch := range v.choices {
			for _, e := range naiveEnds(ch, input, pos) {
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
		return out
	case repeatNode:
		// BFS over repetition counts.
		current := map[int]bool{pos: true}
		reached := map[int]map[int]bool{0: current}
		count := 0
		for {
			if v.max >= 0 && count >= v.max {
				break
			}
			nextSet := map[int]bool{}
			for p := range reached[count] {
				for _, e := range naiveEnds(v.child, input, p) {
					nextSet[e] = true
				}
			}
			// Drop positions already reached at a lower count to ensure
			// termination on ε-loops.
			progress := false
			for e := range nextSet {
				fresh := true
				for c := 0; c <= count; c++ {
					if reached[c][e] {
						fresh = false
						break
					}
				}
				if fresh {
					progress = true
				}
			}
			count++
			reached[count] = nextSet
			if len(nextSet) == 0 || (!progress && v.max < 0) {
				break
			}
			if count > len(input)+2 && v.max < 0 {
				break
			}
		}
		seen := map[int]bool{}
		var out []int
		for c, set := range reached {
			if c < v.min {
				continue
			}
			for e := range set {
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// Property: NFA simulation agrees with the naive reference matcher on
// random patterns and inputs over the slope alphabet.
func TestNFAAgreesWithNaiveMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	patterns := []string{
		"UF*D", "U+F*D", "(U|D)*", "U?D?F?", "[UD]+F", "U{2,3}D",
		"((U|F)+D)*", "U(FD)*U?", "[^F]+", "(UD|DU){1,2}",
	}
	alphabet := "UFD"
	for _, src := range patterns {
		p, err := Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		ps := &parser{src: src}
		ast, err := ps.parseAlternation()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(8)
			var b strings.Builder
			for i := 0; i < n; i++ {
				b.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			in := b.String()
			got := p.Match(in)
			want := naiveMatch(ast, in)
			if got != want {
				t.Errorf("pattern %q input %q: NFA %v, naive %v", src, in, got, want)
			}
		}
	}
}

// The NFA must be immune to patterns that would blow up a backtracker.
func TestNoCatastrophicBacktracking(t *testing.T) {
	p := MustCompile("(U*)*D")
	input := strings.Repeat("U", 2000) // no trailing D: must fail fast
	if p.Match(input) {
		t.Error("should not match")
	}
	long := strings.Repeat("U", 2000) + "D"
	if !p.Match(long) {
		t.Error("should match")
	}
}

func TestCountedRepetitionExpansionBound(t *testing.T) {
	if _, err := Compile("U{256}"); err != nil {
		t.Errorf("U{256} should compile: %v", err)
	}
	if _, err := Compile("U{257}"); err == nil {
		t.Error("U{257} should exceed the bound")
	}
}
