package pattern

import (
	"sync"
	"testing"
)

// A compiled Pattern is documented as safe for concurrent use: hammer one
// instance from many goroutines (run with -race).
func TestPatternConcurrentUse(t *testing.T) {
	p := MustCompile(TwoPeak())
	inputs := []struct {
		s    string
		want bool
	}{
		{"UDUD", true},
		{"FUDFUDF", true},
		{"UDUDUD", false},
		{"FFFF", false},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, in := range inputs {
					if got := p.Match(in.s); got != in.want {
						t.Errorf("Match(%q) = %v, want %v", in.s, got, in.want)
						return
					}
				}
				_ = p.FindAll("FFUDFFUFFDU")
			}
		}()
	}
	wg.Wait()
}
