// Package wal implements the write-ahead log behind the durable ingest
// path (docs/DURABILITY.md): a segmented, append-only, CRC-framed log
// whose Append only returns once the record is fsync-durable, with group
// commit so one fsync amortizes over every append that was in flight
// while the previous fsync ran.
//
// # On-disk layout
//
// A log is a directory of segment files named wal-<base>.log, where
// <base> is the 16-hex-digit LSN of the segment's first record. Each
// segment starts with a fixed header:
//
//	magic   "SWAL" (4 bytes)
//	version u8 (currently 1)
//	base    u64 (LSN of the first record)
//
// followed by frames, one per record:
//
//	crc  u32 (CRC-32C over the body)
//	blen u32 (body length)
//	body: op u8 | gen u64 | payload
//
// Records never span segments. The op byte and payload are opaque to
// this package — the database layer (internal/core) defines them; gen is
// the writer's mutation generation at append time, a debugging aid that
// ties each record back to the in-memory state that produced it.
//
// # Recovery
//
// Replay streams every record back in LSN order, verifying each frame's
// CRC. A torn frame (truncated header, truncated body, or CRC mismatch —
// what a crash mid-write leaves behind) is tolerated only at the tail of
// the final segment: the file is truncated back to the last whole record
// and appends continue from there. The same damage anywhere else is real
// corruption and fails Replay, because every record before the tail was
// fsync-acknowledged and must not silently vanish.
//
// # Group commit
//
// Appenders serialize frame bytes into a shared buffer under the log
// mutex, register a waiter, and block. A single background syncer drains
// all pending waiters at once: one buffer flush, one fsync, then every
// covered waiter is released. Under concurrency (e.g. a worker-pool
// IngestBatch) the fsync cost is paid once per group rather than once
// per record; a lone appender degrades to one fsync per append.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	headerSize = 4 + 1 + 8 // magic, version, base LSN
	frameHead  = 4 + 4     // crc, body length
	version    = 1

	// DefaultSegmentBytes rotates segments at 64 MiB so checkpoint
	// truncation reclaims space in bounded chunks.
	DefaultSegmentBytes = 64 << 20

	// maxBody bounds one record's body so a corrupt length field cannot
	// drive a multi-gigabyte allocation during replay.
	maxBody = 1 << 30
)

var (
	segMagic = [4]byte{'S', 'W', 'A', 'L'}
	crcTable = crc32.MakeTable(crc32.Castagnoli)

	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrCorrupt reports damage that recovery must not repair silently: a
	// torn or CRC-failing frame anywhere but the tail of the final
	// segment, or a malformed segment header.
	ErrCorrupt = errors.New("wal: corrupt log")
)

// Record is one logged operation. Op and Payload are opaque to this
// package; Gen is the writer's mutation generation at append time; LSN
// is the record's log sequence number (assigned by Append, contiguous
// from 1).
type Record struct {
	Op      byte
	Gen     uint64
	Payload []byte
	LSN     uint64
}

// Options tune a log. The zero value is production-ready.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (0 = DefaultSegmentBytes). Rotation also happens explicitly at
	// every checkpoint via Rotate.
	SegmentBytes int64
	// NoSync skips every fsync — appends are still framed and flushed
	// but durability is left to the OS. Only for benchmarks measuring
	// the framing overhead and tests that do not care about crashes.
	NoSync bool
}

// WAL is a segmented write-ahead log. It is safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File      // active segment
	w        *bufio.Writer // buffers frames into f
	segBase  uint64        // LSN of the active segment's first record
	segSize  int64         // bytes written to the active segment
	segGen   uint64        // bumped whenever f is flushed+fsynced and retired (rotation, close)
	nextLSN  uint64        // LSN the next Append will take
	truncLSN uint64        // every record with LSN < truncLSN is checkpointed away
	sealed   []sealedSeg   // older segments, ascending by base
	waiters  []chan error  // appends waiting for the next fsync
	err      error         // first fatal I/O error; poisons the log
	closed   bool
	replayed bool

	// hookWrite and hookSync are fault-injection points (SetFault): when
	// armed, hookWrite is consulted before each frame write and hookSync
	// before each data fsync; a non-nil return stands in for the device
	// failing. Guarded by mu.
	hookWrite func() error
	hookSync  func() error

	// syncPass serializes whole group-commit passes (including the fsync
	// that runs outside mu) against Reset, which must not clear the poison
	// while an fsync whose outcome is unknown is still in flight. Lock
	// order: syncPass before mu.
	syncPass sync.Mutex

	syncReq chan struct{} // wakes the syncer; buffered(1)
	done    chan struct{} // syncer exited
}

type sealedSeg struct {
	base uint64
	path string
	size int64
}

// Open opens (creating if needed) the log directory. Existing segments
// are scanned but not read: call Replay before the first Append to
// stream the retained records back and repair any torn tail.
func Open(dir string, opts Options) (*WAL, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []sealedSeg
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: unparseable base LSN: %w", name, err)
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		segs = append(segs, sealedSeg{base: base, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	w := &WAL{
		dir:     dir,
		opts:    opts,
		syncReq: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if len(segs) == 0 {
		// Fresh log: one empty segment starting at LSN 1; nothing to
		// replay.
		w.nextLSN, w.truncLSN = 1, 1
		if err := w.openSegment(1); err != nil {
			return nil, err
		}
		w.replayed = true
	} else {
		w.sealed = segs
		w.truncLSN = segs[0].base
	}
	go w.syncer()
	return w, nil
}

// Replay streams every retained record to fn in LSN order, then prepares
// the final segment for appending. A torn tail (crash mid-append) is
// truncated back to the last whole record; damage anywhere else fails
// with ErrCorrupt. fn returning an error aborts the replay. Replay must
// be called (once) before the first Append on a log that had segments on
// disk; a fresh log needs no Replay but tolerates one.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.replayed {
		return nil
	}
	segs := w.sealed
	w.sealed = nil
	lsn := segs[0].base
	for i, seg := range segs {
		final := i == len(segs)-1
		end, n, err := w.replaySegment(seg, lsn, final, fn)
		if final && errors.Is(err, errTornHeader) && seg.base == lsn {
			// A crash during segment creation (rotation or first open)
			// tore the header before any record could land: recreate the
			// segment in place. Records, if any, could only follow a
			// complete, synced header.
			if rmErr := os.Remove(seg.path); rmErr != nil {
				return fmt.Errorf("wal: removing torn segment %s: %w", seg.path, rmErr)
			}
			if !w.opts.NoSync {
				if sErr := syncDir(w.dir); sErr != nil {
					return sErr
				}
			}
			if oErr := w.openSegment(lsn); oErr != nil {
				return oErr
			}
			w.nextLSN = lsn
			w.replayed = true
			return nil
		}
		if err != nil {
			return err
		}
		lsn += uint64(n)
		if final {
			// Continue appending into the recovered segment.
			f, err := os.OpenFile(seg.path, os.O_WRONLY, 0)
			if err != nil {
				return fmt.Errorf("wal: reopening %s: %w", seg.path, err)
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("wal: seeking %s: %w", seg.path, err)
			}
			w.f = f
			w.w = bufio.NewWriter(f)
			w.segBase = seg.base
			w.segSize = end
		} else {
			w.sealed = append(w.sealed, seg)
		}
	}
	w.nextLSN = lsn
	w.replayed = true
	return nil
}

// errTornHeader reports a segment whose fixed header is incomplete or
// inconsistent — in the final segment, the leavings of a crash during
// segment creation (recoverable); anywhere else, corruption.
var errTornHeader = errors.New("torn segment header")

// errBadCRC tags a CRC mismatch so recovery can tell a torn tail frame
// (nothing after it) from mid-file corruption (intact bytes follow).
var errBadCRC = errors.New("crc mismatch")

// errBadLen and errTornBody tag a frame whose length field is implausible
// or points past the readable bytes. Either is what a torn tail looks
// like when the crash cut inside the frame header or body — but it is
// also what bit rot in a mid-file frame's length field looks like, where
// the bogus length swallows the intact frames that follow. Recovery
// distinguishes them by probing the remaining bytes for whole frames.
var (
	errBadLen   = errors.New("implausible body length")
	errTornBody = errors.New("torn frame body")
)

// replaySegment streams one segment's records to fn. It returns the
// offset just past the last whole record and the record count. In the
// final segment a torn tail is truncated (file shortened and synced);
// elsewhere it is ErrCorrupt.
func (w *WAL) replaySegment(seg sealedSeg, lsn uint64, final bool, fn func(Record) error) (int64, int, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: opening %s: %w", seg.path, err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("%w (%s): short header (%v): %w", ErrCorrupt, seg.path, err, errTornHeader)
	}
	if [4]byte(hdr[:4]) != segMagic {
		return 0, 0, fmt.Errorf("%w (%s): bad magic %q: %w", ErrCorrupt, seg.path, hdr[:4], errTornHeader)
	}
	if hdr[4] != version {
		return 0, 0, fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, seg.path, hdr[4])
	}
	if got := binary.LittleEndian.Uint64(hdr[5:]); got != seg.base {
		return 0, 0, fmt.Errorf("%w (%s): header base %d disagrees with filename base %d: %w", ErrCorrupt, seg.path, got, seg.base, errTornHeader)
	}
	if lsn != seg.base {
		return 0, 0, fmt.Errorf("%w: %s starts at LSN %d, want %d (missing segment?)", ErrCorrupt, seg.path, seg.base, lsn)
	}
	offset := int64(headerSize)
	count := 0
	for {
		rec, frameLen, err := readFrame(br)
		if err == io.EOF {
			return offset, count, nil
		}
		if err != nil {
			// A crash tears the tail: a short frame, a garbage length, or
			// a CRC-failing frame with nothing after it. Intact data after
			// the damage is different — it means mid-file corruption (bit
			// rot, truncated copy), and "repairing" it would silently drop
			// acknowledged records. For a CRC failure any byte past the
			// frame's end proves that; for a corrupted length field the
			// frame's end is itself a lie (a bogus length swallows the
			// following frames as body, or points past them), so probe the
			// remaining bytes for a whole CRC-valid frame instead.
			torn := final
			if torn && errors.Is(err, errBadCRC) {
				if _, e := br.ReadByte(); e == nil {
					torn = false
				}
			}
			if torn && (errors.Is(err, errBadCRC) || errors.Is(err, errBadLen) || errors.Is(err, errTornBody)) {
				// A CRC failure with nothing after it still probes: a
				// corrupted length can swallow the following frames as
				// body exactly to EOF, failing their CRC collectively.
				intact, perr := tailHoldsFrames(seg.path, offset)
				if perr != nil {
					return 0, 0, perr
				}
				if intact {
					torn = false
				}
			}
			if !torn {
				return 0, 0, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, seg.path, offset, err)
			}
			// Torn tail of the final segment: drop the partial frame so
			// the next append starts on a clean boundary. The truncation
			// is synced — recovery must not itself be torn by a crash.
			f.Close()
			if err := truncateTo(seg.path, offset); err != nil {
				return 0, 0, err
			}
			return offset, count, nil
		}
		rec.LSN = lsn + uint64(count)
		if err := fn(rec); err != nil {
			return 0, 0, err
		}
		offset += frameLen
		count++
	}
}

// readFrame reads one frame. io.EOF means a clean end; any other error
// means a torn or corrupt frame at the current offset.
func readFrame(br *bufio.Reader) (Record, int64, error) {
	var head [frameHead]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, fmt.Errorf("torn frame header: %w", err)
	}
	crc := binary.LittleEndian.Uint32(head[:4])
	blen := binary.LittleEndian.Uint32(head[4:])
	if blen < 1+8 || blen > maxBody {
		return Record{}, 0, fmt.Errorf("%w %d", errBadLen, blen)
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(br, body); err != nil {
		return Record{}, 0, fmt.Errorf("%w: %w", errTornBody, err)
	}
	if got := crc32.Checksum(body, crcTable); got != crc {
		return Record{}, 0, fmt.Errorf("%w: stored %08x, computed %08x", errBadCRC, crc, got)
	}
	return Record{
		Op:      body[0],
		Gen:     binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}, int64(frameHead) + int64(blen), nil
}

// tailHoldsFrames reports whether a whole, CRC-valid frame starts
// anywhere strictly after the damaged frame at offset — evidence that
// the damage is a corrupted length field in an acknowledged frame (bit
// rot) rather than a tail torn by a crash, so truncating would drop the
// intact records behind it. A bogus length leaves no trustworthy frame
// boundary to resume from, so every byte position is probed; the CRC is
// only computed for lengths that fit the remaining bytes, which random
// torn-frame garbage rarely satisfies.
func tailHoldsFrames(path string, offset int64) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: reopening %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return false, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	tail, err := io.ReadAll(f)
	if err != nil {
		return false, fmt.Errorf("wal: reading tail of %s: %w", path, err)
	}
	for p := 1; p+frameHead+1+8 <= len(tail); p++ {
		crc := binary.LittleEndian.Uint32(tail[p : p+4])
		blen := binary.LittleEndian.Uint32(tail[p+4 : p+8])
		if blen < 1+8 || int64(blen) > int64(len(tail)-p-frameHead) {
			continue
		}
		body := tail[p+frameHead : p+frameHead+int(blen)]
		if crc32.Checksum(body, crcTable) == crc {
			return true, nil
		}
	}
	return false, nil
}

func truncateTo(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: truncating %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Truncate(offset); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncated %s: %w", path, err)
	}
	return nil
}

// openSegment creates the segment whose first record will carry base,
// writes its header, and syncs the directory so the file's existence
// survives a crash. Caller holds w.mu (or is initializing).
func (w *WAL) openSegment(base uint64) error {
	path := w.segPath(base)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], segMagic[:])
	hdr[4] = version
	binary.LittleEndian.PutUint64(hdr[5:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.segBase = base
	w.segSize = headerSize
	return nil
}

func (w *WAL) segPath(base uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix))
}

// Append logs one record and blocks until it is durable (fsync'd),
// sharing that fsync with every other append in flight. It returns the
// record's LSN. A log with segments on disk must be Replayed first.
func (w *WAL) Append(op byte, gen uint64, payload []byte) (uint64, error) {
	if len(payload) > maxBody-(1+8) {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record cap", len(payload), maxBody-(1+8))
	}
	body := make([]byte, 1+8+len(payload))
	body[0] = op
	binary.LittleEndian.PutUint64(body[1:9], gen)
	copy(body[9:], payload)
	var head [frameHead]byte
	binary.LittleEndian.PutUint32(head[:4], crc32.Checksum(body, crcTable))
	binary.LittleEndian.PutUint32(head[4:], uint32(len(body)))

	w.mu.Lock()
	if err := w.appendable(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if w.segSize > w.opts.SegmentBytes && w.segSize > headerSize {
		// Seal the oversized segment before this record. rotateLocked
		// flushes, syncs and releases the current waiters itself, so no
		// acknowledged bytes are left behind in the old file. An empty
		// segment is never rotated (mirroring Rotate): its successor
		// would claim the same base LSN.
		if err := w.rotateLocked(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	if w.hookWrite != nil {
		if err := w.hookWrite(); err != nil {
			w.fail(err)
			w.mu.Unlock()
			return 0, err
		}
	}
	if _, err := w.w.Write(head[:]); err != nil {
		w.fail(err)
		w.mu.Unlock()
		return 0, err
	}
	if _, err := w.w.Write(body); err != nil {
		w.fail(err)
		w.mu.Unlock()
		return 0, err
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.segSize += int64(frameHead) + int64(len(body))
	if w.opts.NoSync {
		w.mu.Unlock()
		return lsn, nil
	}
	ch := make(chan error, 1)
	w.waiters = append(w.waiters, ch)
	w.mu.Unlock()
	select {
	case w.syncReq <- struct{}{}:
	default: // syncer already signalled
	}
	return lsn, <-ch
}

// appendable reports why the log cannot accept writes, if it cannot.
// Caller holds w.mu.
func (w *WAL) appendable() error {
	switch {
	case w.closed:
		return ErrClosed
	case w.err != nil:
		return fmt.Errorf("wal: log failed: %w", w.err)
	case !w.replayed:
		return fmt.Errorf("wal: Append before Replay")
	}
	return nil
}

// fail poisons the log: after an I/O error the on-disk tail is
// unknowable, so no further append may be acknowledged. Caller holds
// w.mu.
func (w *WAL) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Err returns the poison error — the first fatal I/O fault — or nil
// while the log is healthy. Callers use it to tell a poisoned log (the
// device failed; Reset can try to restore service) from transient
// per-call failures.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// SetFault arms (or, with nils, disarms) the log's fault-injection
// hooks: write is consulted before every frame write, sync before every
// data fsync; a non-nil return is treated exactly like the device
// failing at that point, poisoning the log. For chaos tests only.
func (w *WAL) SetFault(write, sync func() error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hookWrite, w.hookSync = write, sync
}

// syncLocked runs the armed fault hook, then fsyncs the active segment.
// Caller holds w.mu.
func (w *WAL) syncLocked() error {
	if w.hookSync != nil {
		if err := w.hookSync(); err != nil {
			return err
		}
	}
	return w.f.Sync()
}

// syncer is the group-commit loop: each pass flushes the shared buffer,
// fsyncs once, and releases every waiter that registered before the
// flush. Appends arriving during the fsync pile into the next group.
func (w *WAL) syncer() {
	defer close(w.done)
	for range w.syncReq {
		// Let every runnable appender buffer and register before the
		// group is cut: without this yield the syncer, woken by the
		// first appender, starts fsyncing a group of one while the rest
		// are still re-entering Append — halving (or worse) the
		// amortization the group commit exists for.
		runtime.Gosched()
		// syncPass brackets the whole pass so Reset never clears the
		// poison while an fsync with an unknown outcome is in flight.
		w.syncPass.Lock()
		w.mu.Lock()
		if w.closed {
			w.releaseLocked(ErrClosed)
			w.mu.Unlock()
			w.syncPass.Unlock()
			return
		}
		ws := w.waiters
		w.waiters = nil
		if len(ws) == 0 {
			w.mu.Unlock()
			w.syncPass.Unlock()
			continue
		}
		var err error
		if w.err != nil {
			err = w.err
		} else if err = w.w.Flush(); err != nil {
			w.fail(err)
		}
		f, gen, hook := w.f, w.segGen, w.hookSync
		w.mu.Unlock()
		// The fsync runs outside the mutex: concurrent appends keep
		// buffering (and rotation keeps its own sync) while the disk
		// works — that overlap is the whole point of group commit.
		if err == nil && hook != nil {
			// An injected fault always poisons: it simulates the device
			// failing this group's fsync, so no retirement excuse applies.
			if err = hook(); err != nil {
				w.mu.Lock()
				w.fail(err)
				w.mu.Unlock()
			}
		}
		if err == nil {
			if err = f.Sync(); err != nil {
				w.mu.Lock()
				if w.segGen != gen {
					// The segment was retired while this fsync was in
					// flight: the generation advances only after a
					// successful flush+fsync of the old file (rotation, or
					// Close's final sync), so every byte this group put in
					// f — flushed above, under the same lock hold that
					// captured gen — is already durable. The failure
					// (os.ErrClosed from the retirer's Close) is benign;
					// poisoning the log here would fail durable appends
					// forever.
					err = nil
				} else {
					w.fail(err)
				}
				w.mu.Unlock()
			}
		}
		for _, ch := range ws {
			ch <- err
		}
		w.syncPass.Unlock()
	}
}

// releaseLocked fails every parked waiter. Caller holds w.mu.
func (w *WAL) releaseLocked(err error) {
	for _, ch := range w.waiters {
		ch <- err
	}
	w.waiters = nil
}

// rotateLocked seals the active segment (flush, fsync, release current
// waiters, close) and opens a fresh one. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.w.Flush(); err != nil {
		w.fail(err)
		w.releaseLocked(err)
		return err
	}
	if !w.opts.NoSync {
		if err := w.syncLocked(); err != nil {
			w.fail(err)
			w.releaseLocked(err)
			return err
		}
	}
	// Everything buffered so far is durable: the waiters' records all
	// live in the just-synced file. Advance the generation before the
	// close so an in-flight group-commit fsync on this file knows its
	// bytes were covered and treats a closed-file failure as success.
	w.releaseLocked(nil)
	w.segGen++
	if err := w.f.Close(); err != nil {
		w.fail(err)
		return err
	}
	w.sealed = append(w.sealed, sealedSeg{base: w.segBase, path: w.segPath(w.segBase), size: w.segSize})
	if err := w.openSegment(w.nextLSN); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// Rotate seals the active segment and starts a new one, returning the
// new segment's base LSN: after the caller persists a snapshot covering
// every record below that LSN, TruncateBefore(base) reclaims the sealed
// segments. Rotating an empty segment is a no-op returning the same
// boundary.
func (w *WAL) Rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendable(); err != nil {
		return 0, err
	}
	if w.segSize == headerSize {
		return w.segBase, nil
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.segBase, nil
}

// TruncateBefore deletes sealed segments every record of which has
// LSN < base — the checkpoint's garbage collection. The active segment
// is never touched.
func (w *WAL) TruncateBefore(base uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	keep := w.sealed[:0]
	var firstErr error
	for _, seg := range w.sealed {
		next := seg.base + 1 // conservative: without reading, a sealed segment holds at least one record
		if end, ok := w.sealedEnd(seg); ok {
			next = end
		}
		if next <= base && seg.base < base {
			if err := os.Remove(seg.path); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal: removing %s: %w", seg.path, err)
				keep = append(keep, seg)
				continue
			}
			continue
		}
		keep = append(keep, seg)
	}
	w.sealed = keep
	if base > w.truncLSN {
		w.truncLSN = min(base, w.segBase)
	}
	if firstErr != nil {
		return firstErr
	}
	if w.opts.NoSync {
		return nil
	}
	return syncDir(w.dir)
}

// sealedEnd returns the LSN one past seg's last record, derived from the
// next segment's base (segments are contiguous).
func (w *WAL) sealedEnd(seg sealedSeg) (uint64, bool) {
	for _, s := range w.sealed {
		if s.base > seg.base {
			return s.base, true
		}
	}
	if w.segBase > seg.base {
		return w.segBase, true
	}
	return 0, false
}

// Stats describes the log's retained (not yet checkpointed) state.
type Stats struct {
	// Records is the number of records a crash right now would replay:
	// everything appended since the last completed checkpoint.
	Records uint64
	// Bytes is the on-disk size of the retained segments (headers
	// included).
	Bytes int64
	// Segments is the retained segment file count (sealed + active).
	Segments int
	// NextLSN is the LSN the next append will take.
	NextLSN uint64
}

// Stats returns a point-in-time view of the log's depth.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Segments: len(w.sealed) + 1,
		Bytes:    w.segSize,
		NextLSN:  w.nextLSN,
	}
	if w.f == nil {
		st.Segments-- // not yet replayed: no active segment
		st.Bytes = 0
	}
	for _, seg := range w.sealed {
		st.Bytes += seg.size
	}
	if w.nextLSN > w.truncLSN {
		st.Records = w.nextLSN - w.truncLSN
	}
	return st
}

// Sync flushes and fsyncs the active segment. Appends do this
// themselves; Sync exists for NoSync logs and shutdown paths.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.fail(err)
		return err
	}
	if err := w.syncLocked(); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// Close flushes, syncs and closes the log. Appends racing with Close
// fail with ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.f != nil && w.err == nil {
		if err = w.w.Flush(); err == nil && !w.opts.NoSync {
			err = w.syncLocked()
		}
		if err == nil {
			// As in rotation: the file is fully flushed (+fsynced), so a
			// group-commit fsync racing this Close reports success to its
			// waiters instead of a spurious closed-file error.
			w.segGen++
		}
	}
	w.releaseLocked(ErrClosed)
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	w.mu.Unlock()
	// Wake the syncer so it observes closed and exits. The channel is
	// never closed — a racing Append may still try to signal it.
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
	<-w.done
	return err
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable (see store.SyncDir; duplicated here to keep wal dependency-
// free).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}
