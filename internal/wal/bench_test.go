package wal

// BenchmarkWALIngest measures the group commit at the log layer: many
// concurrent appenders sharing fsyncs against one appender paying a full
// fsync per record. The workload is pure append — the payload is a
// typical small ingest record — so the ratio isolates what group commit
// buys the durable write path. The run emits BENCH_wal.json; CI gates on
// group_commit_speedup >= 5.
//
// (internal/core's BenchmarkDurableIngest measures the same two shapes
// end-to-end through the ingest pipeline, where representation building
// shares the clock with the fsyncs.)

import (
	"bytes"
	"encoding/json"
	"os"
	"sync/atomic"
	"testing"
)

type benchWALReport struct {
	Benchmark         string  `json:"benchmark"`
	PayloadBytes      int     `json:"payload_bytes"`
	Appenders         int     `json:"appenders"`
	GroupNsPerRecord  float64 `json:"group_ns_per_record"`
	SerialNsPerRecord float64 `json:"serial_ns_per_record"`
	GroupSpeedup      float64 `json:"group_commit_speedup"`
}

func BenchmarkWALIngest(b *testing.B) {
	const appenders = 16
	payload := bytes.Repeat([]byte{0x42}, 256)
	report := benchWALReport{Benchmark: "WALIngest", PayloadBytes: len(payload), Appenders: appenders}

	open := func(b *testing.B) *WAL {
		b.Helper()
		w, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		return w
	}

	b.Run("GroupCommit", func(b *testing.B) {
		w := open(b)
		var gen atomic.Uint64
		b.SetParallelism(appenders)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := w.Append(1, gen.Add(1), payload); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		report.GroupNsPerRecord = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(report.GroupNsPerRecord, "ns/record")
	})
	b.Run("PerWriteFsync", func(b *testing.B) {
		w := open(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.Append(1, uint64(i), payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		report.SerialNsPerRecord = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(report.SerialNsPerRecord, "ns/record")
	})

	if report.GroupNsPerRecord > 0 && report.SerialNsPerRecord > 0 {
		report.GroupSpeedup = report.SerialNsPerRecord / report.GroupNsPerRecord
		b.ReportMetric(report.GroupSpeedup, "group_commit_speedup")
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_wal.json", append(blob, '\n'), 0o644); err != nil {
			b.Logf("BENCH_wal.json not written: %v", err)
		}
	}
}
