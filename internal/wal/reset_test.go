package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

var errInjected = errors.New("injected: device error")

func TestProbeReflectsFault(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Probe(); err != nil {
		t.Fatalf("probe on healthy log: %v", err)
	}
	w.SetFault(func() error { return errInjected }, nil)
	if err := w.Probe(); !errors.Is(err, errInjected) {
		t.Fatalf("probe with write fault = %v, want errInjected", err)
	}
	w.SetFault(nil, func() error { return errInjected })
	if err := w.Probe(); !errors.Is(err, errInjected) {
		t.Fatalf("probe with sync fault = %v, want errInjected", err)
	}
	w.SetFault(nil, nil)
	if err := w.Probe(); err != nil {
		t.Fatalf("probe after faults cleared: %v", err)
	}
}

// TestResetRestoresPoisonedLog poisons the log via each hook in turn,
// verifies appends fail, resets, and proves every acknowledged record —
// before and after the fault — survives a reopen.
func TestResetRestoresPoisonedLog(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(w *WAL)
	}{
		{"write-fault", func(w *WAL) { w.SetFault(func() error { return errInjected }, nil) }},
		{"sync-fault", func(w *WAL) { w.SetFault(nil, func() error { return errInjected }) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()

			var acked [][]byte
			for i := 0; i < 5; i++ {
				p := []byte(fmt.Sprintf("pre-%d", i))
				if _, err := w.Append(1, 0, p); err != nil {
					t.Fatalf("Append: %v", err)
				}
				acked = append(acked, p)
			}

			tc.arm(w)
			if _, err := w.Append(1, 0, []byte("doomed")); !errors.Is(err, errInjected) {
				t.Fatalf("append under fault = %v, want errInjected", err)
			}
			if w.Err() == nil {
				t.Fatal("log not poisoned after fault")
			}
			if _, err := w.Append(1, 0, []byte("also doomed")); err == nil {
				t.Fatal("poisoned log accepted an append")
			}

			// Reset with the fault still armed must not clear the poison
			// blindly: Probe gates it at the database layer, but Reset itself
			// only needs the file to rescan, so clear the fault first here.
			w.SetFault(nil, nil)
			if err := w.Reset(); err != nil {
				t.Fatalf("Reset: %v", err)
			}
			if w.Err() != nil {
				t.Fatalf("poison survives Reset: %v", w.Err())
			}

			for i := 0; i < 3; i++ {
				p := []byte(fmt.Sprintf("post-%d", i))
				if _, err := w.Append(1, 0, p); err != nil {
					t.Fatalf("append after Reset: %v", err)
				}
				acked = append(acked, p)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			w2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			recs := collect(t, w2)
			// Every acknowledged payload must be present, in order, as a
			// subsequence-free exact prefix set: the write-fault case never
			// put "doomed" on disk; the sync-fault case may have (fsync
			// outcome unknowable), in which case it replays between the pre
			// and post records — allowed, it was simply never acknowledged.
			var got [][]byte
			for _, r := range recs {
				got = append(got, append([]byte(nil), r.Payload...))
			}
			wantAt := 0
			for _, g := range got {
				if wantAt < len(acked) && bytes.Equal(g, acked[wantAt]) {
					wantAt++
				} else if !bytes.HasPrefix(g, []byte("doomed")) && !bytes.Equal(g, []byte("also doomed")) {
					t.Fatalf("unexpected replayed payload %q", g)
				}
			}
			if wantAt != len(acked) {
				t.Fatalf("replay kept %d of %d acknowledged records: %q", wantAt, len(acked), got)
			}
		})
	}
}

// TestResetDuringRotationFault drives the awkward shape where the fault
// hits inside a rotation: the old segment is sealed but the new one may
// not exist, and Reset must start a fresh active segment at nextLSN.
func TestResetDuringRotationFault(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendAll(t, w, [][]byte{[]byte("a"), []byte("b")})

	// Rotation syncs the outgoing segment; fail exactly that fsync.
	var calls atomic.Int64
	w.SetFault(nil, func() error {
		if calls.Add(1) == 1 {
			return errInjected
		}
		return nil
	})
	if _, err := w.Rotate(); err == nil {
		t.Fatal("rotate succeeded under sync fault")
	}
	if w.Err() == nil {
		t.Fatal("rotation fault did not poison the log")
	}
	w.SetFault(nil, nil)
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset after rotation fault: %v", err)
	}
	if _, err := w.Append(1, 0, []byte("c")); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var seen []string
	for _, r := range collect(t, w2) {
		seen = append(seen, string(r.Payload))
	}
	for _, want := range []string{"a", "b", "c"} {
		found := false
		for _, s := range seen {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("acknowledged %q missing after rotation-fault reset; replayed %q", want, seen)
		}
	}
}

// TestResetHealthyIsNoop: Reset on an unpoisoned log must change nothing.
func TestResetHealthyIsNoop(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendAll(t, w, [][]byte{[]byte("x")})
	before := w.Stats()
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset healthy: %v", err)
	}
	if after := w.Stats(); after != before {
		t.Fatalf("healthy Reset changed stats: %+v -> %+v", before, after)
	}
	if _, err := w.Append(1, 0, []byte("y")); err != nil {
		t.Fatalf("append after no-op reset: %v", err)
	}
}
