package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// appendAll logs each payload as op=1, gen=index and returns the LSNs.
func appendAll(t *testing.T, w *WAL, payloads [][]byte) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(payloads))
	for i, p := range payloads {
		lsn, err := w.Append(1, uint64(i), p)
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

// collect replays w into a slice.
func collect(t *testing.T, w *WAL) []Record {
	t.Helper()
	var recs []Record
	if err := w.Replay(func(r Record) error {
		// Payload aliases the replay buffer per record; copy for keeping.
		r.Payload = append([]byte(nil), r.Payload...)
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		nil,
		[]byte("a"),
		[]byte("hello, wal"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	lsns := appendAll(t, w, payloads)
	for i, lsn := range lsns {
		if want := uint64(i + 1); lsn != want {
			t.Errorf("LSN[%d] = %d, want %d", i, lsn, want)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Op != 1 || r.Gen != uint64(i) || r.LSN != uint64(i+1) {
			t.Errorf("record %d = op %d gen %d lsn %d", i, r.Op, r.Gen, r.LSN)
		}
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
	// The recovered log keeps accepting appends at the next LSN.
	lsn, err := w2.Append(2, 99, []byte("after recovery"))
	if err != nil {
		t.Fatalf("Append after replay: %v", err)
	}
	if want := uint64(len(payloads) + 1); lsn != want {
		t.Errorf("post-recovery LSN = %d, want %d", lsn, want)
	}
}

// TestTornTailEveryOffset is the crash-interruption property suite: a log
// of records is cut at EVERY byte offset — inside the segment header,
// inside frame headers, inside bodies, and on clean frame boundaries —
// and each prefix must (a) recover without error, (b) replay exactly the
// records whose frames lie wholly before the cut (acknowledged writes
// never vanish, partial writes never surface), and (c) accept new
// appends at the correct next LSN.
func TestTornTailEveryOffset(t *testing.T) {
	// Build the reference log. NoSync keeps the suite fast; Close flushes.
	src := t.TempDir()
	w, err := Open(src, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		[]byte("first"),
		nil,
		[]byte("third-record-with-a-longer-payload"),
		bytes.Repeat([]byte{0x5A}, 64),
		[]byte("five"),
	}
	appendAll(t, w, payloads)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segName := fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix)
	data, err := os.ReadFile(filepath.Join(src, segName))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: whole[i] is the offset at which record i is
	// wholly on disk.
	whole := make([]int64, len(payloads)+1)
	whole[0] = headerSize
	for i, p := range payloads {
		whole[i+1] = whole[i] + int64(frameHead+1+8+len(p))
	}
	if whole[len(payloads)] != int64(len(data)) {
		t.Fatalf("frame accounting: computed end %d, file is %d bytes", whole[len(payloads)], len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wc, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		recs := collect(t, wc)

		wantN := 0
		for wantN < len(payloads) && whole[wantN+1] <= int64(cut) {
			wantN++
		}
		if len(recs) != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(recs[i].Payload, payloads[i]) || recs[i].LSN != uint64(i+1) {
				t.Fatalf("cut %d: record %d corrupted by recovery", cut, i)
			}
		}
		// Recovery truncated the torn bytes; the next append must land
		// on a clean boundary and survive its own replay.
		lsn, err := wc.Append(7, 7, []byte("resumed"))
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if want := uint64(wantN + 1); lsn != want {
			t.Fatalf("cut %d: resumed LSN = %d, want %d", cut, lsn, want)
		}
		if err := wc.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		wr, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		recs = collect(t, wr)
		if len(recs) != wantN+1 || string(recs[wantN].Payload) != "resumed" {
			t.Fatalf("cut %d: after resume replayed %d records", cut, len(recs))
		}
		wr.Close()
	}
}

// TestCorruptMiddleFails: the torn-tail tolerance must not extend to
// damage before the tail — a flipped byte in an interior record is real
// corruption and recovery must refuse, not silently drop the record.
func TestCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, [][]byte{[]byte("one"), []byte("two"), []byte("three")})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's body (offset headerSize +
	// frameHead lands on its op byte).
	data[headerSize+frameHead] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wc, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	// The damaged record is followed by intact frames, so this is not a
	// crash tear: truncating here would silently drop the acknowledged
	// records behind it. Recovery must refuse.
	if err := wc.Replay(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay of interior damage: %v, want ErrCorrupt", err)
	}
}

// TestCorruptLastFrameTruncates: a CRC failure on the physically last
// frame IS a crash tear (out-of-order page writeback can persist a
// frame's length before its body) and recovery truncates it, keeping
// everything before.
func TestCorruptLastFrameTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, [][]byte{[]byte("one"), []byte("two"), []byte("three")})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // inside the last record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wc, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	recs := collect(t, wc)
	if len(recs) != 2 || string(recs[0].Payload) != "one" || string(recs[1].Payload) != "two" {
		t.Fatalf("after tail-frame damage replayed %d records", len(recs))
	}
	if lsn, err := w.Append(1, 0, nil); err == nil || lsn != 0 {
		t.Fatalf("Append on the closed source log: lsn %d, err %v", lsn, err)
	}
	if lsn, err := wc.Append(1, 9, []byte("resumed")); err != nil || lsn != 3 {
		t.Fatalf("resume after tail truncation: lsn %d, err %v", lsn, err)
	}
}

// TestCorruptNonFinalSegmentFails: damage in a sealed (non-final)
// segment is never repairable — every record there was acknowledged.
func TestCorruptNonFinalSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, [][]byte{[]byte("one"), []byte("two")})
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, [][]byte{[]byte("three")})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Shear the tail off the FIRST segment.
	path := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	wc, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if err := wc.Replay(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay of sheared sealed segment: %v, want ErrCorrupt", err)
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny SegmentBytes forces organic rotation as well.
	var payloads [][]byte
	for i := 0; i < 20; i++ {
		payloads = append(payloads, bytes.Repeat([]byte{byte(i)}, 16))
	}
	appendAll(t, w, payloads)
	st := w.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want rotation to have happened", st.Segments)
	}
	if st.Records != 20 || st.NextLSN != 21 {
		t.Fatalf("Stats = %+v", st)
	}

	// Checkpoint protocol: rotate, then truncate everything below the
	// returned base.
	base, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if base != 21 {
		t.Fatalf("Rotate base = %d, want 21", base)
	}
	if err := w.TruncateBefore(base); err != nil {
		t.Fatal(err)
	}
	st = w.Stats()
	if st.Records != 0 || st.Segments != 1 {
		t.Fatalf("after truncation Stats = %+v", st)
	}

	// Post-truncation appends continue the LSN sequence and survive
	// reopen; the truncated records are gone.
	lsn, err := w.Append(1, 0, []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 21 {
		t.Fatalf("post-truncation LSN = %d, want 21", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs := collect(t, w2)
	if len(recs) != 1 || string(recs[0].Payload) != "fresh" || recs[0].LSN != 21 {
		t.Fatalf("after truncation replay = %+v", recs)
	}
}

// TestRotateEmptySegment: rotating an empty segment is a no-op so
// back-to-back checkpoints do not litter empty files.
func TestRotateEmptySegment(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b1, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if b1 != 1 || b2 != 1 {
		t.Fatalf("empty rotations returned %d, %d, want 1, 1", b1, b2)
	}
	if st := w.Stats(); st.Segments != 1 {
		t.Fatalf("empty rotations created segments: %+v", st)
	}
}

// TestGroupCommitConcurrent exercises the group-commit path with real
// fsyncs: concurrent appenders must each get a unique LSN and every
// acknowledged record must replay. Run under -race this also checks the
// waiter/syncer handoff.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	lsns := make([][]uint64, writers)
	errs := make([]error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := []byte(fmt.Sprintf("writer %d record %d", g, i))
				lsn, err := w.Append(1, uint64(g), payload)
				if err != nil {
					errs[g] = err
					return
				}
				lsns[g] = append(lsns[g], lsn)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	seen := make(map[uint64]bool)
	for _, ls := range lsns {
		for _, l := range ls {
			if seen[l] {
				t.Fatalf("duplicate LSN %d", l)
			}
			seen[l] = true
		}
	}
	if len(seen) != writers*each {
		t.Fatalf("%d unique LSNs, want %d", len(seen), writers*each)
	}
	for l := uint64(1); l <= writers*each; l++ {
		if !seen[l] {
			t.Fatalf("LSN %d missing: sequence not contiguous", l)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if recs := collect(t, w2); len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
}

func TestAppendBeforeReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, [][]byte{[]byte("x")})
	w.Close()

	w2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Append(1, 0, nil); err == nil {
		t.Fatal("Append before Replay on a non-empty log succeeded")
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := w.Append(1, 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v, want ErrClosed", err)
	}
	if _, err := w.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate on closed log: %v, want ErrClosed", err)
	}
	if err := w.Replay(func(Record) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay on closed log: %v, want ErrClosed", err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-zzzz.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open with unparseable segment name succeeded")
	}
}

func TestStatsFresh(t *testing.T) {
	w, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st := w.Stats()
	if st.Records != 0 || st.Segments != 1 || st.NextLSN != 1 || st.Bytes != headerSize {
		t.Fatalf("fresh Stats = %+v", st)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync on fresh log: %v", err)
	}
}

// TestCorruptLengthFieldFails: bit rot in a non-tail frame's length
// field must not pass as a torn tail. A bogus length swallows the
// intact frames behind it as body (or points past them), so naive
// torn-tail truncation would silently drop acknowledged records;
// recovery must probe the remaining bytes for whole frames and refuse.
func TestCorruptLengthFieldFails(t *testing.T) {
	build := func(t *testing.T) (string, []byte, []int) {
		dir := t.TempDir()
		w, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		payloads := [][]byte{[]byte("one"), []byte("two-longer"), []byte("three")}
		appendAll(t, w, payloads)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		offs := make([]int, len(payloads)+1)
		offs[0] = headerSize
		for i, p := range payloads {
			offs[i+1] = offs[i] + frameHead + 1 + 8 + len(p)
		}
		return dir, data, offs
	}
	cases := []struct {
		name string
		blen func(data []byte, offs []int) uint32
	}{
		// Too small to hold op+gen: fails the plausibility check while
		// the intact frames sit right behind the lying header.
		{"tiny", func([]byte, []int) uint32 { return 0 }},
		// Far past EOF: the swallowed read hits EOF mid-"body".
		{"huge", func([]byte, []int) uint32 { return maxBody }},
		// Exactly to EOF: the remaining frames are consumed as one body
		// whose CRC fails with no trailing byte to betray it.
		{"exact", func(data []byte, offs []int) uint32 {
			return uint32(len(data) - offs[1] - frameHead)
		}},
		// Partway into the next frame: CRC fails with bytes following.
		{"partial", func(data []byte, offs []int) uint32 {
			return uint32(offs[2]-offs[1]-frameHead) + 4
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, data, offs := build(t)
			// Overwrite the SECOND frame's length field (the first and
			// third frames stay intact and acknowledged).
			blen := tc.blen(data, offs)
			data[offs[1]+4] = byte(blen)
			data[offs[1]+5] = byte(blen >> 8)
			data[offs[1]+6] = byte(blen >> 16)
			data[offs[1]+7] = byte(blen >> 24)
			path := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 1, segSuffix))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			wc, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer wc.Close()
			if err := wc.Replay(func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Replay with corrupted length: %v, want ErrCorrupt", err)
			}
			// Nothing may have been truncated away by the refused replay.
			if got, err := os.ReadFile(path); err != nil || len(got) != len(data) {
				t.Fatalf("refused replay changed the file: %d -> %d bytes (%v)", len(data), len(got), err)
			}
		})
	}
}

// TestRotationDuringGroupCommit hammers the race between segment
// rotation (which fsyncs, releases and CLOSES the active file under the
// log mutex) and the group-commit syncer (which fsyncs the file it
// captured outside the mutex): a rotation completing between capture
// and fsync used to surface as a spurious "file already closed" error
// that poisoned the log for every later append, even though rotation
// had already made the group's bytes durable.
func TestRotationDuringGroupCommit(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 forces a rotation before every append, maximizing
	// collisions with in-flight group fsyncs. Syncs stay ON — the race
	// lives between two real fsync paths.
	w, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := w.Append(1, uint64(g), []byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					errs <- fmt.Errorf("writer %d append %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Every acknowledged append must replay.
	wr, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close()
	if recs := collect(t, wr); len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
}
