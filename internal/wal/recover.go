package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Disk-recovery path (docs/RELIABILITY.md): a poisoned log — one that
// took a write or fsync error, after which the on-disk tail is
// unknowable — normally stays failed forever, because acknowledging any
// further append over an unknown tail could lose it. Probe and Reset
// together give the database layer a supervised way back: Probe tests
// the device with a scratch append+fsync that touches no log state, and
// Reset rebuilds the active segment's known-good prefix from disk
// (rescan, truncate the damage, reopen) before clearing the poison.
// Every record that was ever acknowledged was fsync-durable, so the
// rescan always finds it; only unacknowledged tail bytes can be
// discarded.

// probeFileName is the scratch file Probe writes inside the log
// directory. It never collides with a segment (segments are wal-*.log).
const probeFileName = "probe.tmp"

// Probe tests whether the log's device accepts durable writes again: it
// creates a scratch file in the log directory, writes a page, fsyncs,
// and removes it. No log state is touched, so Probe is safe at any time
// — including while the log is poisoned or healthy. Armed fault hooks
// (SetFault) apply, so an injected fault keeps probes failing until it
// is cleared, exactly like a still-broken disk.
func (w *WAL) Probe() error {
	w.mu.Lock()
	hookWrite, hookSync := w.hookWrite, w.hookSync
	closed := w.closed
	w.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if hookWrite != nil {
		if err := hookWrite(); err != nil {
			return fmt.Errorf("wal: probe: %w", err)
		}
	}
	path := filepath.Join(w.dir, probeFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: probe: %w", err)
	}
	defer os.Remove(path)
	page := make([]byte, 4096)
	if _, err := f.Write(page); err != nil {
		f.Close()
		return fmt.Errorf("wal: probe: %w", err)
	}
	if hookSync != nil {
		if err := hookSync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: probe: %w", err)
		}
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: probe: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: probe: %w", err)
	}
	return nil
}

// Reset restores a poisoned log to service once the device works again
// (callers should Probe first). The active segment's tail is unknowable
// after the fault — buffered frames may have been lost, a frame may be
// torn — so Reset re-derives the truth from disk: it closes the dead
// handle, rescans the active segment for its whole-frame prefix,
// truncates everything after it, reopens for append there, and only
// then clears the poison. Every acknowledged record was fsync-durable
// before the fault, so the rescan keeps all of them; what truncation
// drops was never acknowledged. A healthy log resets to a no-op.
func (w *WAL) Reset() error {
	// Taking syncPass first (the syncer's lock order) guarantees no
	// group-commit fsync with an unknown outcome is in flight while the
	// poison is cleared.
	w.syncPass.Lock()
	defer w.syncPass.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.closed:
		return ErrClosed
	case w.err == nil:
		return nil
	case !w.replayed:
		return fmt.Errorf("wal: reset before replay")
	}
	// Any parked appends belong to the failed era: their durability is
	// unknown, so they must fail (they were never acknowledged).
	w.releaseLocked(fmt.Errorf("wal: log failed: %w", w.err))
	if w.f != nil {
		w.f.Close() // dead handle; the on-disk bytes are what count
		w.f = nil
	}

	// A fault inside rotation can die after sealing the old segment but
	// before the new one exists: the "active" base is then already in the
	// sealed list. Start the replacement segment at nextLSN instead of
	// rescanning a sealed file out from under TruncateBefore.
	for _, s := range w.sealed {
		if s.base == w.segBase {
			if err := os.Remove(w.segPath(w.nextLSN)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("wal: reset: %w", err)
			}
			if err := w.openSegment(w.nextLSN); err != nil {
				return err
			}
			w.segGen++
			w.err = nil
			return nil
		}
	}

	seg := sealedSeg{base: w.segBase, path: w.segPath(w.segBase)}
	end, n, err := w.replaySegment(seg, seg.base, true, func(Record) error { return nil })
	if errors.Is(err, errTornHeader) {
		// The crash-during-creation shape: no record ever landed here.
		// Recreate the segment in place (mirroring Replay).
		if rmErr := os.Remove(seg.path); rmErr != nil {
			return fmt.Errorf("wal: reset: removing torn segment %s: %w", seg.path, rmErr)
		}
		if !w.opts.NoSync {
			if sErr := syncDir(w.dir); sErr != nil {
				return sErr
			}
		}
		if oErr := w.openSegment(w.segBase); oErr != nil {
			return oErr
		}
		w.nextLSN = w.segBase
		w.segGen++
		w.err = nil
		return nil
	}
	if err != nil {
		return err // still poisoned: the device (or the file) is not back
	}
	f, err := os.OpenFile(seg.path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: reset: reopening %s: %w", seg.path, err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: reset: seeking %s: %w", seg.path, err)
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.segSize = end
	w.nextLSN = w.segBase + uint64(n)
	w.segGen++
	w.err = nil
	return nil
}
