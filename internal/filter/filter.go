// Package filter implements the preprocessing steps the paper applies to
// raw sequences before breaking (§4.3 footnote and §7): noise filtering,
// normalization to mean 0 / variance 1, and data reduction. Preprocessing
// is what makes the breaking algorithms robust in practice and removes
// differences between sequences that are linear transformations of each
// other.
package filter

import (
	"fmt"
	"sort"

	"seqrep/internal/seq"
)

// MovingAverage returns s smoothed with a centred moving-average window of
// the given odd width. Window edges shrink near the sequence boundaries so
// the output has the same length and sample times as the input.
// It returns an error if width is even or < 1.
func MovingAverage(s seq.Sequence, width int) (seq.Sequence, error) {
	if width < 1 || width%2 == 0 {
		return nil, fmt.Errorf("filter: moving average width must be odd and >= 1, got %d", width)
	}
	half := width / 2
	out := s.Clone()
	for i := range s {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(s)-1 {
			hi = len(s) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += s[j].V
		}
		out[i].V = sum / float64(hi-lo+1)
	}
	return out, nil
}

// Median returns s filtered with a centred running-median window of the
// given odd width — the classic impulse ("spike") noise remover that, unlike
// the moving average, preserves edges and therefore peaks.
func Median(s seq.Sequence, width int) (seq.Sequence, error) {
	if width < 1 || width%2 == 0 {
		return nil, fmt.Errorf("filter: median width must be odd and >= 1, got %d", width)
	}
	half := width / 2
	out := s.Clone()
	buf := make([]float64, 0, width)
	for i := range s {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(s)-1 {
			hi = len(s) - 1
		}
		buf = buf[:0]
		for j := lo; j <= hi; j++ {
			buf = append(buf, s[j].V)
		}
		sort.Float64s(buf)
		m := len(buf) / 2
		if len(buf)%2 == 1 {
			out[i].V = buf[m]
		} else {
			out[i].V = (buf[m-1] + buf[m]) / 2
		}
	}
	return out, nil
}

// ExpSmooth returns s smoothed by simple exponential smoothing with factor
// alpha in (0, 1]: out[0] = s[0]; out[i] = alpha*s[i] + (1-alpha)*out[i-1].
// alpha = 1 is the identity.
func ExpSmooth(s seq.Sequence, alpha float64) (seq.Sequence, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("filter: smoothing factor must be in (0,1], got %g", alpha)
	}
	out := s.Clone()
	for i := 1; i < len(out); i++ {
		out[i].V = alpha*s[i].V + (1-alpha)*out[i-1].V
	}
	return out, nil
}

// Downsample keeps every k-th sample of s starting from the first.
// It returns an error if k < 1.
func Downsample(s seq.Sequence, k int) (seq.Sequence, error) {
	if k < 1 {
		return nil, fmt.Errorf("filter: downsample factor must be >= 1, got %d", k)
	}
	out := make(seq.Sequence, 0, (len(s)+k-1)/k)
	for i := 0; i < len(s); i += k {
		out = append(out, s[i])
	}
	return out, nil
}

// Clip returns s with every value limited to [lo, hi].
// It returns an error if lo > hi.
func Clip(s seq.Sequence, lo, hi float64) (seq.Sequence, error) {
	if lo > hi {
		return nil, fmt.Errorf("filter: clip bounds inverted [%g,%g]", lo, hi)
	}
	out := s.Clone()
	for i := range out {
		if out[i].V < lo {
			out[i].V = lo
		} else if out[i].V > hi {
			out[i].V = hi
		}
	}
	return out, nil
}

// Chain is a reusable preprocessing pipeline: each stage transforms the
// sequence in order. The zero value is an identity pipeline.
type Chain struct {
	stages []Stage
}

// Stage is one preprocessing step.
type Stage struct {
	Name  string
	Apply func(seq.Sequence) (seq.Sequence, error)
}

// Add appends a stage and returns the chain for fluent construction.
func (c *Chain) Add(name string, f func(seq.Sequence) (seq.Sequence, error)) *Chain {
	c.stages = append(c.stages, Stage{Name: name, Apply: f})
	return c
}

// Len reports the number of stages.
func (c *Chain) Len() int { return len(c.stages) }

// Names returns the stage names in order.
func (c *Chain) Names() []string {
	names := make([]string, len(c.stages))
	for i, st := range c.stages {
		names[i] = st.Name
	}
	return names
}

// Run applies every stage in order, wrapping any stage error with its name.
func (c *Chain) Run(s seq.Sequence) (seq.Sequence, error) {
	cur := s
	for _, st := range c.stages {
		next, err := st.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("filter: stage %q: %w", st.Name, err)
		}
		cur = next
	}
	return cur, nil
}

// Standard builds the paper's default preprocessing chain: median despike,
// moving-average smoothing, and z-score normalization.
func Standard(medianWidth, smoothWidth int) *Chain {
	c := &Chain{}
	c.Add("median", func(s seq.Sequence) (seq.Sequence, error) { return Median(s, medianWidth) })
	c.Add("smooth", func(s seq.Sequence) (seq.Sequence, error) { return MovingAverage(s, smoothWidth) })
	c.Add("normalize", func(s seq.Sequence) (seq.Sequence, error) { return s.Normalize() })
	return c
}
