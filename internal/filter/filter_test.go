package filter

import (
	"math"
	"math/rand"
	"testing"

	"seqrep/internal/seq"
)

func TestMovingAverage(t *testing.T) {
	s := seq.New([]float64{0, 3, 6, 9, 12})
	out, err := MovingAverage(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3, 6, 9, 10.5} // edges shrink
	for i := range want {
		if math.Abs(out[i].V-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out[i].V, want[i])
		}
	}
	if out[0].T != s[0].T || len(out) != len(s) {
		t.Error("times or length changed")
	}
	for _, w := range []int{0, 2, -3} {
		if _, err := MovingAverage(s, w); err == nil {
			t.Errorf("width %d accepted", w)
		}
	}
	// width 1 is the identity.
	id, err := MovingAverage(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if id[i] != s[i] {
			t.Error("width-1 moving average is not identity")
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	noisy := seq.New(make([]float64, 200)).AddNoise(rng, 5)
	sm, err := MovingAverage(noisy, 9)
	if err != nil {
		t.Fatal(err)
	}
	vn, _ := noisy.Var()
	vs, _ := sm.Var()
	if vs >= vn/2 {
		t.Errorf("smoothing did not reduce variance: %g -> %g", vn, vs)
	}
}

func TestMedianRemovesSpikes(t *testing.T) {
	vals := []float64{1, 1, 1, 50, 1, 1, 1}
	s := seq.New(vals)
	out, err := Median(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[3].V != 1 {
		t.Errorf("spike survived median filter: %g", out[3].V)
	}
	// Step edges are preserved (unlike a moving average).
	step := seq.New([]float64{0, 0, 0, 10, 10, 10})
	ms, err := Median(step, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ms[2].V != 0 || ms[3].V != 10 {
		t.Errorf("median blurred a step: %v", ms.Values())
	}
	if _, err := Median(s, 4); err == nil {
		t.Error("even width accepted")
	}
}

func TestExpSmooth(t *testing.T) {
	s := seq.New([]float64{0, 10, 10, 10})
	out, err := ExpSmooth(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 7.5, 8.75}
	for i := range want {
		if math.Abs(out[i].V-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, out[i].V, want[i])
		}
	}
	// alpha = 1 is identity.
	id, _ := ExpSmooth(s, 1)
	for i := range s {
		if id[i] != s[i] {
			t.Error("alpha=1 not identity")
		}
	}
	for _, a := range []float64{0, -0.1, 1.1} {
		if _, err := ExpSmooth(s, a); err == nil {
			t.Errorf("alpha %g accepted", a)
		}
	}
}

func TestDownsample(t *testing.T) {
	s := seq.New([]float64{0, 1, 2, 3, 4, 5, 6})
	out, err := Downsample(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].V != 0 || out[1].V != 3 || out[2].V != 6 {
		t.Errorf("downsample: %v", out.Values())
	}
	id, _ := Downsample(s, 1)
	if len(id) != len(s) {
		t.Error("k=1 changed length")
	}
	if _, err := Downsample(s, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestClip(t *testing.T) {
	s := seq.New([]float64{-5, 0, 5, 10})
	out, err := Clip(s, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 5, 5}
	for i := range want {
		if out[i].V != want[i] {
			t.Errorf("clip[%d] = %g", i, out[i].V)
		}
	}
	if _, err := Clip(s, 5, 0); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestChain(t *testing.T) {
	var c Chain
	if got, err := c.Run(seq.New([]float64{1, 2})); err != nil || len(got) != 2 {
		t.Fatalf("empty chain: %v %v", got, err)
	}
	c.Add("double", func(s seq.Sequence) (seq.Sequence, error) {
		return s.ScaleValue(2), nil
	}).Add("shift", func(s seq.Sequence) (seq.Sequence, error) {
		return s.ShiftValue(1), nil
	})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if names := c.Names(); names[0] != "double" || names[1] != "shift" {
		t.Errorf("Names = %v", names)
	}
	out, err := c.Run(seq.New([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].V != 3 || out[1].V != 5 {
		t.Errorf("chain result: %v", out.Values())
	}
}

func TestChainErrorWrapsStageName(t *testing.T) {
	var c Chain
	c.Add("explode", func(s seq.Sequence) (seq.Sequence, error) {
		return nil, seq.ErrEmpty
	})
	_, err := c.Run(seq.New([]float64{1}))
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); !contains(got, "explode") {
		t.Errorf("error %q does not name the stage", got)
	}
}

func TestStandardChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := seq.New([]float64{10, 12, 14, 90, 16, 18, 20, 22, 24, 26, 28}).AddNoise(rng, 0.1)
	out, err := Standard(3, 3).Run(s)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := out.Mean()
	v, _ := out.Var()
	if math.Abs(m) > 1e-9 || math.Abs(v-1) > 1e-9 {
		t.Errorf("standard chain output mean=%g var=%g", m, v)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
