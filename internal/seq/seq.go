// Package seq provides the fundamental sampled-sequence data type used
// throughout seqrep, together with statistics and validation helpers.
//
// A Sequence models one time series: a finite list of (time, value) samples
// ordered by strictly increasing time. The representation is deliberately
// plain — most algorithms in the library (breaking, fitting, feature
// extraction) operate on Sequence values directly.
package seq

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
)

// Point is a single sample of a sequence: a value observed at a time.
type Point struct {
	T float64 // sample time (or position)
	V float64 // sampled value (amplitude)
}

// Sequence is an ordered series of samples. The zero value is an empty,
// ready-to-use sequence. Times must be strictly increasing; Validate
// reports violations.
type Sequence []Point

// New builds a uniformly sampled sequence from values, with times
// 0, 1, 2, ... len(values)-1.
func New(values []float64) Sequence {
	s := make(Sequence, len(values))
	for i, v := range values {
		s[i] = Point{T: float64(i), V: v}
	}
	return s
}

// FromSamples builds a sequence from parallel time and value slices.
// It returns an error if the slices differ in length.
func FromSamples(times, values []float64) (Sequence, error) {
	if len(times) != len(values) {
		return nil, fmt.Errorf("seq: %d times but %d values", len(times), len(values))
	}
	s := make(Sequence, len(times))
	for i := range times {
		s[i] = Point{T: times[i], V: values[i]}
	}
	return s, nil
}

// Clone returns a deep copy of s.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// Values returns the sampled values in order.
func (s Sequence) Values() []float64 {
	vs := make([]float64, len(s))
	for i, p := range s {
		vs[i] = p.V
	}
	return vs
}

// AppendValues appends the sampled values in order to dst and returns the
// extended slice — the buffer-reuse variant of Values for hot paths that
// extract values repeatedly and must not allocate per call. Typical use:
// keep a scratch slice and call AppendValues(scratch[:0]).
func (s Sequence) AppendValues(dst []float64) []float64 {
	dst = slices.Grow(dst, len(s))
	for _, p := range s {
		dst = append(dst, p.V)
	}
	return dst
}

// Times returns the sample times in order.
func (s Sequence) Times() []float64 {
	ts := make([]float64, len(s))
	for i, p := range s {
		ts[i] = p.T
	}
	return ts
}

// Slice returns the subsequence s[i:j] (half open, like Go slicing).
// The result shares storage with s.
func (s Sequence) Slice(i, j int) Sequence { return s[i:j] }

// ErrEmpty is returned by statistics that are undefined on empty sequences.
var ErrEmpty = errors.New("seq: empty sequence")

// Mean returns the arithmetic mean of the values.
// It returns an error for an empty sequence.
func (s Sequence) Mean() (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, p := range s {
		sum += p.V
	}
	return sum / float64(len(s)), nil
}

// Var returns the population variance of the values.
// It returns an error for an empty sequence.
func (s Sequence) Var() (float64, error) {
	m, err := s.Mean()
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, p := range s {
		d := p.V - m
		ss += d * d
	}
	return ss / float64(len(s)), nil
}

// Std returns the population standard deviation of the values.
func (s Sequence) Std() (float64, error) {
	v, err := s.Var()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the index and value of the minimum sample.
// It returns an error for an empty sequence.
func (s Sequence) Min() (int, float64, error) {
	if len(s) == 0 {
		return 0, 0, ErrEmpty
	}
	idx, best := 0, s[0].V
	for i, p := range s {
		if p.V < best {
			idx, best = i, p.V
		}
	}
	return idx, best, nil
}

// Max returns the index and value of the maximum sample.
// It returns an error for an empty sequence.
func (s Sequence) Max() (int, float64, error) {
	if len(s) == 0 {
		return 0, 0, ErrEmpty
	}
	idx, best := 0, s[0].V
	for i, p := range s {
		if p.V > best {
			idx, best = i, p.V
		}
	}
	return idx, best, nil
}

// Duration returns the time span covered by the sequence
// (time of last sample minus time of first). Empty and singleton
// sequences have duration 0.
func (s Sequence) Duration() float64 {
	if len(s) < 2 {
		return 0
	}
	return s[len(s)-1].T - s[0].T
}

// Validate checks structural invariants: strictly increasing times and
// finite (non-NaN, non-Inf) times and values. It returns a descriptive
// error for the first violation found, or nil.
func (s Sequence) Validate() error {
	for i, p := range s {
		if math.IsNaN(p.T) || math.IsInf(p.T, 0) {
			return fmt.Errorf("seq: non-finite time at index %d", i)
		}
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			return fmt.Errorf("seq: non-finite value at index %d", i)
		}
		if i > 0 && p.T <= s[i-1].T {
			return fmt.Errorf("seq: times not strictly increasing at index %d (%g after %g)", i, p.T, s[i-1].T)
		}
	}
	return nil
}

// String renders a short human-readable form, eliding long sequences.
func (s Sequence) String() string {
	const headTail = 3
	var b strings.Builder
	fmt.Fprintf(&b, "Sequence[%d]{", len(s))
	elide := len(s) > 2*headTail+1
	for i, p := range s {
		if elide && i >= headTail && i < len(s)-headTail {
			if i == headTail {
				b.WriteString(" ...")
			}
			continue
		}
		fmt.Fprintf(&b, " (%.3g,%.3g)", p.T, p.V)
	}
	b.WriteString(" }")
	return b.String()
}
