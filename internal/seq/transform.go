package seq

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements the paper's family of feature-preserving
// transformations (Shatkay & Zdonik §2.2): translation in time and
// amplitude, dilation and contraction (frequency changes), amplitude
// scaling, bounded pointwise deviation, and resampling. A generalized
// approximate query denotes a set of sequences closed under these
// transformations; the tests and experiments use them to build the
// two-peak family of the paper's Figure 5.

// ShiftTime returns a copy of s with dt added to every sample time.
func (s Sequence) ShiftTime(dt float64) Sequence {
	c := s.Clone()
	for i := range c {
		c[i].T += dt
	}
	return c
}

// ShiftValue returns a copy of s with dv added to every sample value
// (translation in amplitude).
func (s Sequence) ShiftValue(dv float64) Sequence {
	c := s.Clone()
	for i := range c {
		c[i].V += dv
	}
	return c
}

// ScaleValue returns a copy of s with every value multiplied by f
// (amplitude scaling). Values are scaled about zero; combine with
// ShiftValue to scale about another level.
func (s Sequence) ScaleValue(f float64) Sequence {
	c := s.Clone()
	for i := range c {
		c[i].V *= f
	}
	return c
}

// ScaleAbout returns a copy of s with values scaled by f about level c0:
// v' = c0 + f*(v-c0). This models amplitude scaling of, e.g., fever curves
// about the baseline temperature.
func (s Sequence) ScaleAbout(c0, f float64) Sequence {
	c := s.Clone()
	for i := range c {
		c[i].V = c0 + f*(c[i].V-c0)
	}
	return c
}

// Dilate returns a copy of s with sample times stretched by factor f > 0
// about the first sample's time. f > 1 slows the sequence down (frequency
// reduction); f < 1 is a contraction (frequency increase). Sample count is
// unchanged; only the time axis is rescaled.
func (s Sequence) Dilate(f float64) Sequence {
	c := s.Clone()
	if len(c) == 0 {
		return c
	}
	t0 := c[0].T
	for i := range c {
		c[i].T = t0 + f*(c[i].T-t0)
	}
	return c
}

// Contract is Dilate(1/f); it is provided for readability at call sites
// that mirror the paper's terminology.
func (s Sequence) Contract(f float64) Sequence { return s.Dilate(1 / f) }

// AddNoise returns a copy of s with independent Gaussian noise of the given
// standard deviation added to each value. rng must be non-nil so that all
// randomness in the library is caller-seeded and deterministic.
func (s Sequence) AddNoise(rng *rand.Rand, stddev float64) Sequence {
	c := s.Clone()
	for i := range c {
		c[i].V += rng.NormFloat64() * stddev
	}
	return c
}

// Resample returns s resampled at n uniformly spaced times across its time
// span using linear interpolation between neighbouring samples. It is the
// discrete realization of dilation/contraction when a fixed sampling rate
// must be preserved. It returns an error if s has fewer than two points or
// n < 2.
func (s Sequence) Resample(n int) (Sequence, error) {
	if len(s) < 2 {
		return nil, fmt.Errorf("seq: cannot resample %d-point sequence", len(s))
	}
	if n < 2 {
		return nil, fmt.Errorf("seq: cannot resample to %d points", n)
	}
	out := make(Sequence, n)
	t0, t1 := s[0].T, s[len(s)-1].T
	step := (t1 - t0) / float64(n-1)
	j := 0
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*step
		if i == n-1 {
			t = t1 // avoid floating point drift at the end
		}
		for j < len(s)-2 && s[j+1].T < t {
			j++
		}
		a, b := s[j], s[j+1]
		frac := 0.0
		if b.T != a.T {
			frac = (t - a.T) / (b.T - a.T)
		}
		out[i] = Point{T: t, V: a.V + frac*(b.V-a.V)}
	}
	return out, nil
}

// ValueAt linearly interpolates the sequence's value at time t. Times
// outside the sampled span clamp to the first/last sample value.
// It returns an error for an empty sequence.
func (s Sequence) ValueAt(t float64) (float64, error) {
	if len(s) == 0 {
		return 0, ErrEmpty
	}
	if t <= s[0].T {
		return s[0].V, nil
	}
	if t >= s[len(s)-1].T {
		return s[len(s)-1].V, nil
	}
	// Binary search for the bracketing pair.
	lo, hi := 0, len(s)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := s[lo], s[hi]
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V), nil
}

// Normalize returns a copy of s normalized to mean 0 and variance 1,
// the preprocessing step of §7 that eliminates differences between
// sequences that are linear transformations of each other. A constant
// sequence (zero variance) normalizes to all zeros. It returns an error
// for an empty sequence.
func (s Sequence) Normalize() (Sequence, error) {
	m, err := s.Mean()
	if err != nil {
		return nil, err
	}
	sd, err := s.Std()
	if err != nil {
		return nil, err
	}
	c := s.Clone()
	for i := range c {
		if sd == 0 {
			c[i].V = 0
		} else {
			c[i].V = (c[i].V - m) / sd
		}
	}
	return c, nil
}

// Insert returns a copy of s with point p inserted at its time-ordered
// position. It is used by the robustness experiments (§4.3), which insert
// behaviour-preserving elements and check that breakpoints barely move.
// It returns an error if p's time collides with an existing sample time.
func (s Sequence) Insert(p Point) (Sequence, error) {
	if math.IsNaN(p.T) || math.IsInf(p.T, 0) {
		return nil, fmt.Errorf("seq: insert with non-finite time")
	}
	pos := len(s)
	for i, q := range s {
		if q.T == p.T {
			return nil, fmt.Errorf("seq: insert at duplicate time %g", p.T)
		}
		if q.T > p.T {
			pos = i
			break
		}
	}
	out := make(Sequence, 0, len(s)+1)
	out = append(out, s[:pos]...)
	out = append(out, p)
	out = append(out, s[pos:]...)
	return out, nil
}

// Delete returns a copy of s with the sample at index i removed.
// It returns an error if i is out of range.
func (s Sequence) Delete(i int) (Sequence, error) {
	if i < 0 || i >= len(s) {
		return nil, fmt.Errorf("seq: delete index %d out of range [0,%d)", i, len(s))
	}
	out := make(Sequence, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out, nil
}
