package seq

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewUniformTimes(t *testing.T) {
	s := New([]float64{5, 7, 9})
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	for i, p := range s {
		if p.T != float64(i) {
			t.Errorf("time[%d] = %g, want %d", i, p.T, i)
		}
	}
	if s[1].V != 7 {
		t.Errorf("value[1] = %g, want 7", s[1].V)
	}
}

func TestFromSamples(t *testing.T) {
	s, err := FromSamples([]float64{0, 2, 4}, []float64{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s[2] != (Point{4, 5}) {
		t.Errorf("s[2] = %v", s[2])
	}
	if _, err := FromSamples([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not reported")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New([]float64{1, 2, 3})
	c := s.Clone()
	c[0].V = 99
	if s[0].V == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestSlice(t *testing.T) {
	s := New([]float64{0, 1, 2, 3, 4})
	sub := s.Slice(1, 4)
	if len(sub) != 3 || sub[0].V != 1 || sub[2].V != 3 {
		t.Errorf("Slice = %v", sub)
	}
	// Slices share storage by contract.
	sub[0].V = 99
	if s[1].V != 99 {
		t.Error("Slice does not share storage")
	}
}

func TestStats(t *testing.T) {
	s := New([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	m, err := s.Mean()
	if err != nil || m != 5 {
		t.Errorf("Mean = %g, %v; want 5", m, err)
	}
	v, err := s.Var()
	if err != nil || v != 4 {
		t.Errorf("Var = %g, %v; want 4", v, err)
	}
	sd, err := s.Std()
	if err != nil || sd != 2 {
		t.Errorf("Std = %g, %v; want 2", sd, err)
	}
	if i, val, _ := s.Min(); i != 0 || val != 2 {
		t.Errorf("Min = (%d,%g), want (0,2)", i, val)
	}
	if i, val, _ := s.Max(); i != 7 || val != 9 {
		t.Errorf("Max = (%d,%g), want (7,9)", i, val)
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Sequence
	if _, err := s.Mean(); err == nil {
		t.Error("Mean of empty should error")
	}
	if _, err := s.Var(); err == nil {
		t.Error("Var of empty should error")
	}
	if _, _, err := s.Min(); err == nil {
		t.Error("Min of empty should error")
	}
	if _, _, err := s.Max(); err == nil {
		t.Error("Max of empty should error")
	}
}

func TestValidate(t *testing.T) {
	good := New([]float64{1, 2, 3})
	if err := good.Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	cases := map[string]Sequence{
		"nan value":      {{0, math.NaN()}},
		"inf value":      {{0, math.Inf(1)}},
		"nan time":       {{math.NaN(), 0}},
		"dup time":       {{0, 1}, {0, 2}},
		"decreasing":     {{1, 0}, {0, 0}},
		"late violation": {{0, 1}, {1, 2}, {1, 3}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid sequence", name)
		}
	}
}

func TestDuration(t *testing.T) {
	if d := New([]float64{1}).Duration(); d != 0 {
		t.Errorf("singleton duration = %g", d)
	}
	s, _ := FromSamples([]float64{2, 5, 11}, []float64{0, 0, 0})
	if d := s.Duration(); d != 9 {
		t.Errorf("duration = %g, want 9", d)
	}
}

func TestShifts(t *testing.T) {
	s := New([]float64{1, 2, 3})
	st := s.ShiftTime(10)
	if st[0].T != 10 || st[2].T != 12 {
		t.Errorf("ShiftTime wrong: %v", st)
	}
	sv := s.ShiftValue(-1)
	if sv[0].V != 0 || sv[2].V != 2 {
		t.Errorf("ShiftValue wrong: %v", sv)
	}
	// Original untouched.
	if s[0].T != 0 || s[0].V != 1 {
		t.Error("transform mutated receiver")
	}
}

func TestScale(t *testing.T) {
	s := New([]float64{1, 2, 3})
	sc := s.ScaleValue(2)
	if sc[2].V != 6 {
		t.Errorf("ScaleValue: %v", sc)
	}
	sa := s.ScaleAbout(2, 3) // 2 + 3*(v-2)
	want := []float64{-1, 2, 5}
	for i := range want {
		if sa[i].V != want[i] {
			t.Errorf("ScaleAbout[%d] = %g, want %g", i, sa[i].V, want[i])
		}
	}
}

func TestDilateContract(t *testing.T) {
	s, _ := FromSamples([]float64{5, 6, 7}, []float64{1, 2, 3})
	d := s.Dilate(2)
	wantT := []float64{5, 7, 9}
	for i := range wantT {
		if d[i].T != wantT[i] {
			t.Errorf("Dilate T[%d] = %g, want %g", i, d[i].T, wantT[i])
		}
	}
	c := d.Contract(2)
	for i := range s {
		if !almostEq(c[i].T, s[i].T, 1e-12) {
			t.Errorf("Contract does not invert Dilate at %d: %g vs %g", i, c[i].T, s[i].T)
		}
	}
}

func TestResample(t *testing.T) {
	s, _ := FromSamples([]float64{0, 1, 2}, []float64{0, 10, 20})
	r, err := s.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	wantV := []float64{0, 5, 10, 15, 20}
	for i := range wantV {
		if !almostEq(r[i].V, wantV[i], 1e-9) {
			t.Errorf("Resample V[%d] = %g, want %g", i, r[i].V, wantV[i])
		}
	}
	if r[4].T != 2 {
		t.Errorf("last time = %g, want 2", r[4].T)
	}
	if _, err := New([]float64{1}).Resample(5); err == nil {
		t.Error("resampling singleton should error")
	}
	if _, err := s.Resample(1); err == nil {
		t.Error("resampling to 1 point should error")
	}
}

func TestResampleIdentity(t *testing.T) {
	s := New([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	r, err := s.Resample(len(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if !almostEq(r[i].V, s[i].V, 1e-9) {
			t.Errorf("identity resample changed V[%d]: %g vs %g", i, r[i].V, s[i].V)
		}
	}
}

func TestValueAt(t *testing.T) {
	s, _ := FromSamples([]float64{0, 10, 20}, []float64{0, 100, 0})
	cases := []struct{ t, want float64 }{
		{-5, 0}, {0, 0}, {5, 50}, {10, 100}, {15, 50}, {20, 0}, {25, 0},
	}
	for _, c := range cases {
		got, err := s.ValueAt(c.t)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("ValueAt(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	var empty Sequence
	if _, err := empty.ValueAt(0); err == nil {
		t.Error("ValueAt on empty should error")
	}
}

func TestNormalize(t *testing.T) {
	s := New([]float64{2, 4, 6, 8})
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := n.Mean()
	v, _ := n.Var()
	if !almostEq(m, 0, 1e-12) || !almostEq(v, 1, 1e-12) {
		t.Errorf("normalized mean=%g var=%g", m, v)
	}
	c := New([]float64{5, 5, 5})
	nc, err := c.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range nc {
		if p.V != 0 {
			t.Errorf("constant normalize gave %g", p.V)
		}
	}
}

// Normalization eliminates linear transformations (§7): scale+shift of a
// sequence normalizes to the same sequence.
func TestNormalizeKillsLinearTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New([]float64{1, 4, 2, 8, 5, 7, 1, 3}).AddNoise(rng, 0.5)
	tr := s.ScaleValue(3.7).ShiftValue(-11)
	n1, _ := s.Normalize()
	n2, _ := tr.Normalize()
	for i := range n1 {
		if !almostEq(n1[i].V, n2[i].V, 1e-9) {
			t.Fatalf("normalization not invariant at %d: %g vs %g", i, n1[i].V, n2[i].V)
		}
	}
}

func TestInsertDelete(t *testing.T) {
	s := New([]float64{0, 10, 20}) // times 0,1,2
	in, err := s.Insert(Point{T: 0.5, V: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 4 || in[1] != (Point{0.5, 5}) {
		t.Errorf("Insert result %v", in)
	}
	if err := in.Validate(); err != nil {
		t.Errorf("insert broke ordering: %v", err)
	}
	if _, err := s.Insert(Point{T: 1, V: 0}); err == nil {
		t.Error("duplicate-time insert should error")
	}
	if _, err := s.Insert(Point{T: math.NaN(), V: 0}); err == nil {
		t.Error("NaN-time insert should error")
	}
	del, err := in.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(del) != 3 || del[1] != (Point{1, 10}) {
		t.Errorf("Delete result %v", del)
	}
	if _, err := s.Delete(-1); err == nil {
		t.Error("negative delete should error")
	}
	if _, err := s.Delete(3); err == nil {
		t.Error("out-of-range delete should error")
	}
}

func TestInsertAtEnds(t *testing.T) {
	s := New([]float64{1, 2}) // times 0,1
	front, err := s.Insert(Point{T: -1, V: 0})
	if err != nil || front[0].T != -1 {
		t.Errorf("front insert: %v %v", front, err)
	}
	back, err := s.Insert(Point{T: 5, V: 0})
	if err != nil || back[len(back)-1].T != 5 {
		t.Errorf("back insert: %v %v", back, err)
	}
}

func TestString(t *testing.T) {
	short := New([]float64{1, 2})
	if !strings.Contains(short.String(), "Sequence[2]") {
		t.Errorf("String: %s", short.String())
	}
	long := New(make([]float64, 100))
	str := long.String()
	if !strings.Contains(str, "...") || !strings.Contains(str, "Sequence[100]") {
		t.Errorf("long String not elided: %s", str)
	}
}

// Property: Dilate(f) followed by Contract(f) is identity on times.
func TestDilateContractProperty(t *testing.T) {
	f := func(vals []float64, factorRaw float64) bool {
		if len(vals) == 0 {
			return true
		}
		factor := 0.1 + math.Mod(math.Abs(factorRaw), 10) // (0.1, 10.1)
		if math.IsNaN(factor) {
			return true
		}
		s := New(vals)
		rt := s.Dilate(factor).Contract(factor)
		for i := range s {
			if !almostEq(rt[i].T, s[i].T, 1e-6*(1+math.Abs(s[i].T))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ShiftValue(a).ShiftValue(-a) is identity.
func TestShiftRoundTripProperty(t *testing.T) {
	f := func(vals []float64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1e9)
		s := make([]float64, len(vals))
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s[i] = math.Mod(v, 1e9)
		}
		orig := New(s)
		rt := orig.ShiftValue(a).ShiftValue(-a)
		for i := range orig {
			diff := math.Abs(rt[i].V - orig[i].V)
			if diff > 1e-6*(1+math.Abs(orig[i].V)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
