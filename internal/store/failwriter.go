package store

import (
	"fmt"
	"io"
	"sync"
)

// ErrInjectedWrite is the failure a FailAfterWriter injects, so tests can
// assert the error path they triggered is the one that surfaced.
var ErrInjectedWrite = fmt.Errorf("store: injected write failure")

// FailAfterWriter wraps an io.Writer and fails every write after a byte
// budget is spent — the write-side sibling of CountingArchive, used to
// prove that multi-stage writers (snapshot save, archive spill) leave
// existing data intact when the medium dies mid-stream. Safe for
// concurrent use.
type FailAfterWriter struct {
	// Inner receives the bytes that fit the budget.
	Inner io.Writer

	mu        sync.Mutex
	remaining int64
	written   int64
}

// NewFailAfterWriter wraps inner with a budget of n bytes: the first n
// bytes pass through, everything after fails with ErrInjectedWrite.
func NewFailAfterWriter(inner io.Writer, n int64) *FailAfterWriter {
	return &FailAfterWriter{Inner: inner, remaining: n}
}

// Write implements io.Writer. A write that exceeds the remaining budget
// passes the bytes that fit through and fails with ErrInjectedWrite; once
// the budget is spent every write fails outright.
func (w *FailAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.remaining <= 0 {
		return 0, ErrInjectedWrite
	}
	trunc := false
	if int64(len(p)) > w.remaining {
		p = p[:w.remaining]
		trunc = true
	}
	n, err := w.Inner.Write(p)
	w.remaining -= int64(n)
	w.written += int64(n)
	if err == nil && trunc {
		err = ErrInjectedWrite
	}
	return n, err
}

// Written returns the bytes that passed through before the budget ran
// out.
func (w *FailAfterWriter) Written() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}
