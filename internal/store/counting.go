package store

import (
	"sync"
	"time"

	"seqrep/internal/seq"
)

// CountingArchive wraps any Archive with traffic counters and optional
// simulated media latency, so the storage experiments work identically
// over the in-memory and file-backed stores.
type CountingArchive struct {
	// Inner is the wrapped archive.
	Inner Archive
	// ReadLatency is added to every Get.
	ReadLatency time.Duration
	// WriteLatency is added to every Put.
	WriteLatency time.Duration

	mu    sync.Mutex
	stats Stats
}

// NewCountingArchive wraps inner with zero latency.
func NewCountingArchive(inner Archive) *CountingArchive {
	return &CountingArchive{Inner: inner}
}

// Put implements Archive.
func (a *CountingArchive) Put(id string, s seq.Sequence) error {
	if a.WriteLatency > 0 {
		time.Sleep(a.WriteLatency)
	}
	if err := a.Inner.Put(id, s); err != nil {
		return err
	}
	a.mu.Lock()
	a.stats.Writes++
	a.stats.BytesWritten += bytesOf(s)
	a.mu.Unlock()
	return nil
}

// Get implements Archive.
func (a *CountingArchive) Get(id string) (seq.Sequence, error) {
	if a.ReadLatency > 0 {
		time.Sleep(a.ReadLatency)
	}
	s, err := a.Inner.Get(id)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.stats.Reads++
	a.stats.BytesRead += bytesOf(s)
	a.mu.Unlock()
	return s, nil
}

// Delete implements Archive.
func (a *CountingArchive) Delete(id string) error { return a.Inner.Delete(id) }

// List implements Archive.
func (a *CountingArchive) List() ([]string, error) { return a.Inner.List() }

// Stats returns a snapshot of the traffic counters.
func (a *CountingArchive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats zeroes the traffic counters.
func (a *CountingArchive) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{}
}
