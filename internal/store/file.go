package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"seqrep/internal/seq"
)

// FileArchive stores each sequence as one file in a directory, in a small
// versioned binary format. It implements Archive.
type FileArchive struct {
	dir string
	mu  sync.Mutex

	// WrapWriter, when non-nil, decorates the temp-file writer on every
	// Put — the fault-injection hook used by the dying-writer tests (in
	// the style of FileSnapshotter.WrapWriter and CountingArchive).
	// Production callers leave it nil.
	WrapWriter func(io.Writer) io.Writer
}

// Raw-sequence file format:
//
//	magic   "SRAW" (4 bytes)
//	version u8 (currently 1)
//	n       u32
//	samples (t f64, v f64) × n
var rawMagic = [4]byte{'S', 'R', 'A', 'W'}

const rawVersion = 1

// fsyncFile is an indirection over (*os.File).Sync so the fault tests
// can fail or observe the sync that must precede every rename (compare
// FailAfterWriter). Production code never replaces it.
var fsyncFile = (*os.File).Sync

// SyncDir fsyncs a directory, making the renames, creates and removes
// inside it durable. A rename alone moves bytes safely, but the new
// directory entry lives in the directory's own metadata — without this
// sync a power loss can forget the rename even though the file's
// contents were fsync'd, leaving the old name (or nothing) behind.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := fsyncFile(d); err != nil {
		return fmt.Errorf("store: syncing dir %s: %w", dir, err)
	}
	return nil
}

// NewFileArchive opens (creating if needed) a directory-backed archive.
func NewFileArchive(dir string) (*FileArchive, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty archive directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating archive dir: %w", err)
	}
	return &FileArchive{dir: dir}, nil
}

// path maps an id to its file, rejecting ids that would escape the
// directory.
func (a *FileArchive) path(id string) (string, error) {
	if id == "" {
		return "", fmt.Errorf("store: empty sequence id")
	}
	if strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return "", fmt.Errorf("store: invalid sequence id %q", id)
	}
	return filepath.Join(a.dir, id+".sraw"), nil
}

// Put implements Archive. The write is atomic AND durable: data lands in
// a temp file that is fsync'd before the rename (a rename of un-synced
// bytes can surface a zero-length or partial file under the final name
// after a power loss), and the directory is fsync'd after it so the new
// entry itself survives the crash.
func (a *FileArchive) Put(id string, s seq.Sequence) error {
	p, err := a.path(id)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	tmp, err := os.CreateTemp(a.dir, "put-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	var w io.Writer = tmp
	if a.WrapWriter != nil {
		w = a.WrapWriter(tmp)
	}
	if err := writeRaw(w, s); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %q: %w", id, err)
	}
	if err := fsyncFile(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %q: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %q: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: committing %q: %w", id, err)
	}
	return SyncDir(a.dir)
}

// Get implements Archive.
func (a *FileArchive) Get(id string) (seq.Sequence, error) {
	p, err := a.path(id)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := os.Open(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return nil, fmt.Errorf("store: opening %q: %w", id, err)
	}
	defer f.Close()
	s, err := readRaw(f)
	if err != nil {
		return nil, fmt.Errorf("store: reading %q: %w", id, err)
	}
	return s, nil
}

// Delete implements Archive.
func (a *FileArchive) Delete(id string) error {
	p, err := a.path(id)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := os.Remove(p); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return fmt.Errorf("store: deleting %q: %w", id, err)
	}
	return nil
}

// List implements Archive.
func (a *FileArchive) List() ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing archive: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".sraw") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".sraw"))
	}
	sort.Strings(ids)
	return ids, nil
}

func writeRaw(w io.Writer, s seq.Sequence) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(rawMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(rawVersion); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(s)))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for _, p := range s {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.T))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.V))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readRaw(r io.Reader) (seq.Sequence, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if magic != rawMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("reading version: %w", err)
	}
	if version != rawVersion {
		return nil, fmt.Errorf("unsupported version %d", version)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("reading count: %w", err)
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	const maxSamples = 1 << 28 // 256M samples ~ 4GB: fail loudly on corrupt counts
	if n > maxSamples {
		return nil, fmt.Errorf("implausible sample count %d", n)
	}
	s := make(seq.Sequence, 0, n)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("reading sample %d: %w", i, err)
		}
		t := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("reading sample %d: %w", i, err)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		s = append(s, seq.Point{T: t, V: v})
	}
	return s, nil
}
