package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqrep/internal/seq"
)

func durSample() seq.Sequence {
	s := make(seq.Sequence, 32)
	for i := range s {
		s[i] = seq.Point{T: float64(i), V: float64(i % 5)}
	}
	return s
}

// TestPutSyncsBeforeRename pins the fsync ordering of the atomic write:
// the temp file's bytes must be durable BEFORE the rename publishes the
// final name (renaming un-synced bytes can surface an empty or partial
// file under the final name after a power loss), and the directory must
// be fsync'd after it.
func TestPutSyncsBeforeRename(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	orig := fsyncFile
	defer func() { fsyncFile = orig }()

	final := filepath.Join(dir, "ecg.sraw")
	var calls []string
	finalExistedAtFileSync := false
	fsyncFile = func(f *os.File) error {
		calls = append(calls, f.Name())
		if len(calls) == 1 {
			if _, err := os.Stat(final); err == nil {
				finalExistedAtFileSync = true
			}
		}
		return orig(f)
	}
	if err := a.Put("ecg", durSample()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if len(calls) != 2 {
		t.Fatalf("fsync called %d times (%v), want temp file then directory", len(calls), calls)
	}
	if !strings.HasPrefix(filepath.Base(calls[0]), "put-") {
		t.Errorf("first fsync hit %q, want the temp file", calls[0])
	}
	if calls[1] != dir {
		t.Errorf("second fsync hit %q, want the directory %q", calls[1], dir)
	}
	if finalExistedAtFileSync {
		t.Error("final name already existed when the data fsync ran: rename preceded sync")
	}
}

// TestPutFsyncFailureKeepsOldValue: when the data fsync fails, Put must
// fail without touching the final name — the previously stored value
// stays readable and no temp litter is left behind.
func TestPutFsyncFailureKeepsOldValue(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := durSample()
	if err := a.Put("ecg", old); err != nil {
		t.Fatal(err)
	}

	orig := fsyncFile
	defer func() { fsyncFile = orig }()
	injected := errors.New("injected fsync failure")
	fsyncFile = func(f *os.File) error { return injected }

	replacement := durSample()
	replacement[0].V = 999
	if err := a.Put("ecg", replacement); !errors.Is(err, injected) {
		t.Fatalf("Put with failing fsync: %v, want the injected error", err)
	}
	fsyncFile = orig

	got, err := a.Get("ecg")
	if err != nil {
		t.Fatalf("Get after failed Put: %v", err)
	}
	if got[0].V != old[0].V {
		t.Fatalf("failed Put replaced the stored value: V[0] = %v", got[0].V)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "put-") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}

// TestPutDyingWriterNeverSurfaces drives Put through the dying-writer
// harness: a write stream that fails mid-body must never let the partial
// file reach the final name, and must leave an existing value intact.
func TestPutDyingWriterNeverSurfaces(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := durSample()
	if err := a.Put("ecg", old); err != nil {
		t.Fatal(err)
	}

	a.WrapWriter = func(w io.Writer) io.Writer { return NewFailAfterWriter(w, 11) }
	replacement := durSample()
	replacement[0].V = 999
	if err := a.Put("ecg", replacement); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("Put through dying writer: %v, want ErrInjectedWrite", err)
	}
	a.WrapWriter = nil

	got, err := a.Get("ecg")
	if err != nil {
		t.Fatalf("Get after dying-writer Put: %v", err)
	}
	if len(got) != len(old) || got[0].V != old[0].V {
		t.Fatal("partial write surfaced under the final name")
	}

	// And for a brand-new id the failure must leave nothing at all.
	a.WrapWriter = func(w io.Writer) io.Writer { return NewFailAfterWriter(w, 11) }
	if err := a.Put("fresh", durSample()); !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("Put through dying writer: %v", err)
	}
	a.WrapWriter = nil
	if _, err := a.Get("fresh"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of never-committed id: %v, want ErrNotFound", err)
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
