package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seqrep/internal/seq"
	"seqrep/internal/synth"
)

// archiveContract runs the behaviour shared by all Archive implementations.
func archiveContract(t *testing.T, a Archive) {
	t.Helper()
	s1 := synth.Sine(50, 2, 10, 0)
	s2 := synth.Line(30, 1, 5)

	if err := a.Put("alpha", s1); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("beta", s2); err != nil {
		t.Fatal(err)
	}

	got, err := a.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s1) {
		t.Fatalf("Get returned %d samples, want %d", len(got), len(s1))
	}
	for i := range s1 {
		if got[i] != s1[i] {
			t.Fatalf("sample %d: %v vs %v", i, got[i], s1[i])
		}
	}

	// Overwrite.
	if err := a.Put("alpha", s2); err != nil {
		t.Fatal(err)
	}
	got, err = a.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s2) {
		t.Errorf("overwrite kept %d samples", len(got))
	}

	// Missing id.
	if _, err := a.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v", err)
	}

	// List is sorted.
	ids, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Errorf("List = %v", ids)
	}

	// Delete.
	if err := a.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("alpha"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	if _, err := a.Get("alpha"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted id still readable")
	}

	// Empty id rejected.
	if err := a.Put("", s1); err == nil {
		t.Error("empty id accepted")
	}
}

func TestMemArchiveContract(t *testing.T) {
	archiveContract(t, NewMemArchive())
}

func TestFileArchiveContract(t *testing.T) {
	a, err := NewFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	archiveContract(t, a)
}

func TestMemArchiveIsolation(t *testing.T) {
	a := NewMemArchive()
	s := synth.Const(5, 1)
	if err := a.Put("x", s); err != nil {
		t.Fatal(err)
	}
	s[0].V = 999 // mutate the caller's copy
	got, err := a.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].V == 999 {
		t.Error("archive shares storage with caller")
	}
	got[0].V = -1 // mutate the returned copy
	got2, _ := a.Get("x")
	if got2[0].V == -1 {
		t.Error("archive shares storage with reader")
	}
}

func TestMemArchiveStats(t *testing.T) {
	a := NewMemArchive()
	s := synth.Const(10, 0) // 10 samples = 160 bytes
	if err := a.Put("x", s); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("x"); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Writes != 1 || st.Reads != 2 {
		t.Errorf("stats %+v", st)
	}
	if st.BytesWritten != 160 || st.BytesRead != 320 {
		t.Errorf("bytes %+v", st)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
}

func TestMemArchiveLatency(t *testing.T) {
	a := NewMemArchive()
	a.ReadLatency = 20 * time.Millisecond
	if err := a.Put("x", synth.Const(2, 0)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.Get("x"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("read latency not applied: %v", elapsed)
	}
}

func TestMemArchiveConcurrent(t *testing.T) {
	a := NewMemArchive()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id := string(rune('a' + n))
			s := synth.Const(20, float64(n))
			for j := 0; j < 50; j++ {
				if err := a.Put(id, s); err != nil {
					t.Error(err)
					return
				}
				if _, err := a.Get(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	ids, err := a.List()
	if err != nil || len(ids) != 8 {
		t.Errorf("List after concurrency: %v %v", ids, err)
	}
}

func TestFileArchivePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	a1, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := synth.Sine(64, 3, 16, 0.5)
	if err := a1.Put("persisted", s); err != nil {
		t.Fatal(err)
	}
	a2, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a2.Get("persisted")
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("sample %d: %v vs %v", i, got[i], s[i])
		}
	}
}

func TestFileArchiveRejectsTraversal(t *testing.T) {
	a, err := NewFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"../escape", "a/b", "a\\b", ".", ".."} {
		if err := a.Put(id, synth.Const(2, 0)); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestFileArchiveCorruptFile(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.sraw"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("bad"); err == nil {
		t.Error("corrupt file accepted")
	}
	// Truncated but valid header.
	if err := a.Put("trunc", synth.Const(100, 1)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "trunc.sraw")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("trunc"); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestFileArchiveListIgnoresStrangers(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir.sraw"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := a.Put("real", synth.Const(2, 0)); err != nil {
		t.Fatal(err)
	}
	ids, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "real" {
		t.Errorf("List = %v", ids)
	}
}

func TestNewFileArchiveValidation(t *testing.T) {
	if _, err := NewFileArchive(""); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestRawRoundTripEmptySequence(t *testing.T) {
	a, err := NewFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("empty", seq.Sequence{}); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty round trip: %v", got)
	}
}
