package store

import (
	"bytes"
	"errors"
	"testing"
)

func TestFailAfterWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewFailAfterWriter(&buf, 10)

	n, err := w.Write([]byte("01234"))
	if n != 5 || err != nil {
		t.Fatalf("first write = (%d, %v), want (5, nil)", n, err)
	}
	// Exceeds the budget: the 5 remaining bytes land, then the failure.
	n, err = w.Write([]byte("56789abc"))
	if n != 5 || !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("overflowing write = (%d, %v), want (5, ErrInjectedWrite)", n, err)
	}
	// Spent: everything fails, nothing passes through.
	if n, err = w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("post-budget write = (%d, %v), want (0, ErrInjectedWrite)", n, err)
	}
	if got := buf.String(); got != "0123456789" {
		t.Fatalf("inner received %q, want the first 10 bytes", got)
	}
	if w.Written() != 10 {
		t.Fatalf("Written() = %d, want 10", w.Written())
	}
}
