package store

import (
	"errors"
	"testing"
	"time"

	"seqrep/internal/synth"
)

func TestCountingArchiveContract(t *testing.T) {
	inner, err := NewFileArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	archiveContract(t, NewCountingArchive(inner))
}

func TestCountingArchiveStats(t *testing.T) {
	a := NewCountingArchive(NewMemArchive())
	s := synth.Const(10, 0) // 160 bytes
	if err := a.Put("x", s); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("x"); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 160 || st.BytesRead != 160 {
		t.Errorf("stats %+v", st)
	}
	// Failed reads are not counted.
	if _, err := a.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unexpected error %v", err)
	}
	if got := a.Stats().Reads; got != 1 {
		t.Errorf("failed read counted: %d", got)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
}

func TestCountingArchiveLatency(t *testing.T) {
	a := NewCountingArchive(NewMemArchive())
	a.ReadLatency = 15 * time.Millisecond
	if err := a.Put("x", synth.Const(2, 0)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := a.Get("x"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("latency not applied")
	}
}
