// Package store provides archival storage for raw sequences. The paper's
// motivating observation (§1) is that raw sequence data lives on very slow
// media — "obtaining raw seismic data can take several days" — while the
// compact function representation can be kept local; raw data is consulted
// only when finer resolution is required.
//
// The package offers an in-memory archive with injectable latency (so
// experiments can reproduce the slow-archive/fast-representation trade-off
// deterministically) and a file-backed archive with the same interface.
package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"seqrep/internal/seq"
)

// ErrNotFound is returned when a sequence id is absent from an archive.
var ErrNotFound = fmt.Errorf("store: sequence not found")

// Archive stores raw sequences by id. Implementations are safe for
// concurrent use.
type Archive interface {
	// Put stores s under id, replacing any previous contents.
	Put(id string, s seq.Sequence) error
	// Get retrieves the sequence stored under id; errors.Is(err,
	// ErrNotFound) reports absence.
	Get(id string) (seq.Sequence, error)
	// Delete removes the sequence; deleting an absent id is an error.
	Delete(id string) error
	// List returns all stored ids in sorted order.
	List() ([]string, error)
}

// Stats counts archive traffic, the measure the latency experiments report.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// MemArchive is an in-memory archive with optional simulated access
// latency, standing in for the paper's magnetic-tape archive.
type MemArchive struct {
	// ReadLatency is added to every Get, simulating slow archival media.
	ReadLatency time.Duration
	// WriteLatency is added to every Put.
	WriteLatency time.Duration

	mu    sync.Mutex
	data  map[string]seq.Sequence
	stats Stats
}

// NewMemArchive returns an empty in-memory archive with no latency.
func NewMemArchive() *MemArchive {
	return &MemArchive{data: make(map[string]seq.Sequence)}
}

// bytesOf estimates the raw storage footprint of a sequence: two float64
// per sample.
func bytesOf(s seq.Sequence) int64 { return int64(len(s)) * 16 }

// Put implements Archive.
func (a *MemArchive) Put(id string, s seq.Sequence) error {
	if id == "" {
		return fmt.Errorf("store: empty sequence id")
	}
	if a.WriteLatency > 0 {
		time.Sleep(a.WriteLatency)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.data[id] = s.Clone()
	a.stats.Writes++
	a.stats.BytesWritten += bytesOf(s)
	return nil
}

// Get implements Archive.
func (a *MemArchive) Get(id string) (seq.Sequence, error) {
	if a.ReadLatency > 0 {
		time.Sleep(a.ReadLatency)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.data[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	a.stats.Reads++
	a.stats.BytesRead += bytesOf(s)
	return s.Clone(), nil
}

// Delete implements Archive.
func (a *MemArchive) Delete(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.data[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(a.data, id)
	return nil
}

// List implements Archive.
func (a *MemArchive) List() ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.data))
	for id := range a.data {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Stats returns a snapshot of the traffic counters.
func (a *MemArchive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats zeroes the traffic counters.
func (a *MemArchive) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = Stats{}
}
